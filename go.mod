module gpsdl

go 1.22
