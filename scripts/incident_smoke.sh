#!/bin/bash
# End-to-end smoke test for the black-box flight journal and automatic
# incident capture: boots gpsserve (built with -race) in engine mode
# with -journal and -incident-dir, schedules a RAIM-evading step fault
# on PRN 14 that burns the chi-square SLO budget, and asserts the
# forensics contract:
#   - an SLO page produces a self-contained incident bundle on disk
#   - /debug/incidents lists it and /metrics carries the journal and
#     incident counters
#   - gpsinspect replay reproduces every captured epoch in the bundle
#     bit-for-bit from the journal alone
#   - gpsinspect attribute names PRN 14 as the dominant budget burner
# Needs curl.
set -euo pipefail

GO=${GO:-go}
workdir=$(mktemp -d)
log="$workdir/gpsserve.log"
serve="$workdir/gpsserve"
inspect="$workdir/gpsinspect"
incidents="$workdir/incidents"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1"
    echo "--- server log ---"
    cat "$log"
    exit 1
}

# wait_grep FILE PATTERN DESC: poll up to 15 s for PATTERN in FILE.
wait_grep() {
    for _ in $(seq 1 150); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        [ -n "${pid:-}" ] && ! kill -0 "$pid" 2>/dev/null && fail "server exited early waiting for $3"
        sleep 0.1
    done
    fail "$3 never appeared"
}

"$GO" build -race -o "$serve" ./cmd/gpsserve
"$GO" build -o "$inspect" ./cmd/gpsinspect
mkdir -p "$incidents"

# Short SLO windows at 200 epochs/s so the budget burns within seconds;
# the step fault lands at epoch 900, past the first clean window span.
"$serve" -receivers 2 -station all -rate 200 -seed 7 \
    -faults 'step:prn=14,bias=30,from=900,until=1000000' -fault-seed 99 \
    -quality-window 300 -slo 'chi2>=95@300' \
    -journal "$workdir/flight.gpsj" \
    -incident-dir "$incidents" -incident-interval 5s \
    -addr 127.0.0.1:0 -admin 127.0.0.1:0 >"$log" 2>&1 &
pid=$!
wait_grep "$log" '^gpsserve: admin on' "admin banner"
admin=$(sed -n 's|^gpsserve: admin on http://\([^ ]*\).*|\1|p' "$log")
[ -n "$admin" ] || fail "could not parse admin address"

# The page must capture a bundle. Poll the incident dir for it.
bundle=""
for _ in $(seq 1 300); do
    bundle=$(find "$incidents" -mindepth 1 -maxdepth 1 -type d ! -name '.*' | head -1)
    [ -n "$bundle" ] && break
    kill -0 "$pid" 2>/dev/null || fail "server exited before capturing an incident"
    sleep 0.1
done
[ -n "$bundle" ] || fail "no incident bundle appeared in $incidents"

# The bundle must be self-contained.
for f in incident.json journal.gpsj checkpoint.ckpt status.json config.json; do
    [ -s "$bundle/$f" ] || fail "bundle missing $f"
done
grep -q '"slo_page"' "$bundle/incident.json" || fail "incident.json is not an slo_page"

# The admin surface must list the bundle and export the counters.
listing=$(curl -fsS "http://$admin/debug/incidents")
printf '%s\n' "$listing" | grep -q '"enabled": true' || fail "/debug/incidents reports capture disabled"
printf '%s\n' "$listing" | grep -q "$(basename "$bundle")" || fail "/debug/incidents does not list $(basename "$bundle")"
metrics=$(curl -fsS "http://$admin/metrics")
for name in gps_journal_bytes_written_total gps_journal_fsyncs_total engine_incidents_captured_total; do
    printf '%s\n' "$metrics" | grep -q "^$name" || fail "/metrics missing $name"
done
printf '%s\n' "$metrics" | grep '^gps_journal_bytes_written_total' | grep -qv ' 0$' ||
    fail "journal wrote no bytes"
printf '%s\n' "$metrics" | grep '^engine_incidents_captured_total' | grep -qv ' 0$' ||
    fail "incident capture counter still zero"

kill -TERM "$pid"
wait "$pid" || fail "server exited non-zero on SIGTERM"
pid=
grep -q '^gpsserve: journal closed:' "$log" || fail "journal was not closed on drain"

# Offline forensics on the bundle: every captured epoch must replay
# bit-for-bit, and the faulted satellite must own the budget burn.
"$inspect" info "$bundle" >"$workdir/info.log" 2>&1 || { cat "$workdir/info.log"; fail "gpsinspect info failed on the bundle"; }
grep -q 'torn tail' "$workdir/info.log" && fail "bundle journal reported torn"
"$inspect" replay "$bundle" >"$workdir/replay.log" 2>&1 || { cat "$workdir/replay.log"; fail "bundle exemplar epochs did not replay"; }
grep -q 'replayed bit-identically' "$workdir/replay.log" || fail "replay verdict missing"
"$inspect" attribute "$bundle" >"$workdir/attr.log" 2>&1 || { cat "$workdir/attr.log"; fail "gpsinspect attribute failed"; }
grep -q '^PRN 14 contributed' "$workdir/attr.log" || { cat "$workdir/attr.log"; fail "attribution did not name PRN 14"; }

# The full on-disk journal must also be inspectable after shutdown.
"$inspect" info "$workdir/flight.gpsj" >"$workdir/full.log" 2>&1 || { cat "$workdir/full.log"; fail "gpsinspect info failed on the full journal"; }
grep -q 'torn tail' "$workdir/full.log" && fail "cleanly closed journal reported torn"

echo "incident smoke OK ($(basename "$bundle"): $(tail -1 "$workdir/replay.log"); $(grep '^PRN 14' "$workdir/attr.log"))"
