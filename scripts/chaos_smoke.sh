#!/bin/bash
# Chaos smoke test for the supervised engine: boots gpsserve (built with
# -race) in engine mode with an injected worker panic and checkpointing
# on, attaches one healthy and one permanently stalled NMEA client,
# SIGTERMs the server mid-run, and asserts the graceful-drain contract:
#   - the panic was supervised (counted on /healthz, server kept serving)
#   - the stalled client was evicted with reason "slow" after shedding
#     its backlog oldest-first, while the healthy client kept receiving
#   - shutdown printed a conserved batch summary and wrote a final
#     checkpoint
#   - a restart with -restore resumes from that checkpoint
#   - a flipped checkpoint byte degrades -restore to a logged cold
#     start, not a crash
# Needs bash (the stalled client is a /dev/tcp redirection) and curl.
set -euo pipefail

GO=${GO:-go}
workdir=$(mktemp -d)
log="$workdir/gpsserve.log"
bin="$workdir/gpsserve"
ckpt="$workdir/gps.ckpt"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    exec 3<&- 3>&- 4<&- 4>&- 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1"
    echo "--- server log ---"
    cat "$log"
    exit 1
}

# wait_grep FILE PATTERN DESC: poll up to 15 s for PATTERN in FILE.
wait_grep() {
    for _ in $(seq 1 150); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        [ -n "${pid:-}" ] && ! kill -0 "$pid" 2>/dev/null && fail "server exited early waiting for $3"
        sleep 0.1
    done
    fail "$3 never appeared"
}

start_server() {
    "$bin" "$@" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
        -checkpoint "$ckpt" -checkpoint-every 10 -checkpoint-interval 200ms \
        >"$log" 2>&1 &
    pid=$!
    wait_grep "$log" '^gpsserve: admin on' "admin banner"
    admin=$(sed -n 's|^gpsserve: admin on http://\([^ ]*\).*|\1|p' "$log")
    serve=$(sed -n 's|^gpsserve: engine mode.* on \([0-9.:]*\) (.*|\1|p' "$log")
    [ -n "$admin" ] && [ -n "$serve" ] || fail "could not parse listen addresses"
}

# healthz_field NAME: numeric field from /healthz; empty (not a pipefail
# abort) while the server is still coming up or the field is absent.
healthz_field() {
    { curl -sS "http://$admin/healthz" | grep -o "\"$1\":[0-9.-]*" | head -1 | cut -d: -f2; } || true
}

"$GO" build -race -o "$bin" ./cmd/gpsserve

# ---- Phase 1: panic isolation + backpressure + SIGTERM drain ----------
# Every receiver panics once at T=30 (epoch 30 at 1 s steps); the
# supervisor must convert both panics into quarantine+restart and keep
# the server up. The rate is high so the stalled client's kernel socket
# buffers saturate within seconds and the eviction path actually fires.
start_server -receivers 2 -station all -rate 500 -faults 'panic:at=30,until=31'

# Stalled client: opens the NMEA port and never reads.
exec 3<>"/dev/tcp/${serve%:*}/${serve#*:}"

# Healthy client: must keep receiving sentences throughout the chaos.
exec 4<>"/dev/tcp/${serve%:*}/${serve#*:}"
got=0
for _ in $(seq 1 100); do
    if IFS= read -r -t 5 line <&4 && [ -n "$line" ]; then got=$((got + 1)); fi
    [ "$got" -ge 5 ] && break
done
[ "$got" -ge 5 ] || fail "healthy client starved ($got sentences)"

# The injected panics must show up as supervised restarts on /healthz.
for _ in $(seq 1 150); do
    p=$(healthz_field panics)
    [ "${p:-0}" -ge 2 ] 2>/dev/null && break
    sleep 0.1
done
[ "${p:-0}" -ge 2 ] || fail "/healthz panics=$p, want >= 2"
r=$(healthz_field restarts)
[ "${r:-0}" -ge 2 ] || fail "/healthz restarts=$r, want >= 2"

# The stalled client must be evicted (reason "slow") after drop-oldest
# shed its backlog; the healthy client must still be connected.
for _ in $(seq 1 600); do
    c=$(healthz_field clients)
    [ "${c:-2}" -le 1 ] 2>/dev/null && break
    sleep 0.1
done
[ "${c:-2}" -le 1 ] || fail "stalled client was never dropped (clients=$c)"
metrics=$(curl -fsS "http://$admin/metrics")
printf '%s\n' "$metrics" | grep 'gpsserve_drops_total{reason="slow"}' | grep -qv ' 0$' ||
    fail "no slow-reason drop in /metrics"
printf '%s\n' "$metrics" | grep 'gpsserve_sentences_dropped_total' | grep -qv ' 0$' ||
    fail "drop-oldest shed no sentences"
if ! IFS= read -r -t 5 line <&4 || [ -z "$line" ]; then
    fail "healthy client stopped receiving after the stalled client was evicted"
fi

# Mid-run SIGTERM: graceful drain — conserved batches, final checkpoint.
kill -TERM "$pid"
if ! wait "$pid"; then fail "server exited non-zero on SIGTERM"; fi
pid=
grep -q 'gpsserve: drained: .*conserved=true' "$log" || fail "no conserved drain summary"
[ -s "$ckpt" ] || fail "no checkpoint written on shutdown"
exec 3<&- 3>&- 4<&- 4>&-

# ---- Phase 2: kill-and-restore ----------------------------------------
start_server -receivers 2 -station all -rate 500 -restore
grep -q 'gpsserve: restored 2 sessions' "$log" || fail "restart did not restore the checkpoint"
kill -TERM "$pid"
wait "$pid" || fail "restored server exited non-zero on SIGTERM"
pid=

# ---- Phase 3: corrupt checkpoint falls back to cold start -------------
printf 'X' | dd of="$ckpt" bs=1 seek=12 count=1 conv=notrunc 2>/dev/null
start_server -receivers 2 -station all -rate 500 -restore
wait_grep "$log" 'cold start' "cold-start fallback log"
grep -q 'gpsserve: restored' "$log" && fail "corrupt checkpoint was restored"
kill -TERM "$pid"
wait "$pid" || fail "cold-start server exited non-zero on SIGTERM"
pid=

echo "chaos smoke OK (panic supervised, slow client evicted, drain conserved, restore + corrupt fallback verified)"
