#!/bin/bash
# Throughput regression gate: re-runs the fix-engine benchmark sweep and
# compares fixes/sec per receiver count against the committed baseline
# (BENCH_engine.json). A fresh point more than TOLERANCE_PCT below its
# baseline fails the gate; faster is always fine. The committed file is
# refreshed by `make bench-json` — run that (on the reference machine)
# after a deliberate perf change, and commit the delta alongside it.
set -euo pipefail

GO=${GO:-go}
TOLERANCE_PCT=${TOLERANCE_PCT:-15}
baseline=${BASELINE:-BENCH_engine.json}

[ -f "$baseline" ] || { echo "FAIL: baseline $baseline missing (run: make bench-json)"; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM
fresh="$workdir/fresh.json"

# Mirror the baseline's sweep so the points line up.
receivers=$(grep -o '"receivers": [0-9]*' "$baseline" | awk '{print $2}' | paste -sd, -)
[ -n "$receivers" ] || { echo "FAIL: no series points in $baseline"; exit 1; }

"$GO" run ./cmd/gpsbench -engine -engine-receivers "$receivers" -engine-json "$fresh" >"$workdir/bench.out" 2>&1 ||
    { echo "FAIL: benchmark run failed"; cat "$workdir/bench.out"; exit 1; }

# extract FILE: one "receivers fixes_per_sec" pair per line, series order.
extract() {
    paste -d' ' \
        <(grep -o '"receivers": [0-9]*' "$1" | awk '{print $2}') \
        <(grep -o '"fixes_per_sec": [0-9.]*' "$1" | awk '{print $2}')
}

status=0
while read -r recv base fresh_rate; do
    verdict=$(awk -v b="$base" -v f="$fresh_rate" -v tol="$TOLERANCE_PCT" 'BEGIN {
        floor = b * (1 - tol / 100)
        printf "%s %.0f", (f >= floor) ? "ok" : "REGRESSED", floor
    }')
    printf 'receivers=%-3s baseline=%-10.0f fresh=%-10.0f floor=%s -> %s\n' \
        "$recv" "$base" "$fresh_rate" "${verdict#* }" "${verdict% *}"
    [ "${verdict% *}" = ok ] || status=1
done < <(join <(extract "$baseline") <(extract "$fresh"))

if [ "$status" -ne 0 ]; then
    echo "FAIL: engine throughput regressed more than ${TOLERANCE_PCT}% below $baseline"
    exit 1
fi
echo "bench gate OK (within ${TOLERANCE_PCT}% of $baseline)"
