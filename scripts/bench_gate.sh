#!/bin/bash
# Throughput regression gate: re-runs the fix-engine benchmark sweep and
# compares fixes/sec per arm against the committed baseline
# (BENCH_engine.json). Points are keyed "arm:receivers" — the
# pregenerated sweep is arm "pregen", the live-generation arms carry
# their own names ("live-p1", "live-cache-p4", ...), so cached and
# uncached serving throughput are both gated. A fresh point more than
# TOLERANCE_PCT below its baseline fails the gate; faster is always
# fine. The committed file is refreshed by `make bench-json` — run that
# (on the reference machine) after a deliberate perf change, and commit
# the delta alongside it. The gate mirrors the baseline's pregenerated
# sweep and uses gpsbench's default live-arm settings, matching how
# `make bench-json` produces the baseline.
set -euo pipefail

GO=${GO:-go}
TOLERANCE_PCT=${TOLERANCE_PCT:-15}
baseline=${BASELINE:-BENCH_engine.json}

[ -f "$baseline" ] || { echo "FAIL: baseline $baseline missing (run: make bench-json)"; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM
fresh="$workdir/fresh.json"

# extract FILE: one "arm:receivers fixes_per_sec" line per series point,
# in series order. Points before the first "arm" key are the
# pregenerated sweep; each live point emits its "arm" before its metrics
# (field order is part of the JSON contract, see engineLivePoint).
extract() {
    awk '
        BEGIN              { arm = "pregen" }
        /"arm":/           { v = $2; gsub(/[",]/, "", v); arm = v }
        /"receivers":/     { v = $2; gsub(/,/, "", v); r = v }
        /"fixes_per_sec":/ { v = $2; gsub(/,/, "", v); printf "%s:%s %s\n", arm, r, v }
    ' "$1"
}

# Mirror the baseline's pregenerated sweep so the points line up.
receivers=$(extract "$baseline" | awk -F'[: ]' '$1 == "pregen" { print $2 }' | paste -sd, -)
[ -n "$receivers" ] || { echo "FAIL: no pregenerated series points in $baseline"; exit 1; }

"$GO" run ./cmd/gpsbench -engine -engine-receivers "$receivers" -engine-json "$fresh" >"$workdir/bench.out" 2>&1 ||
    { echo "FAIL: benchmark run failed"; cat "$workdir/bench.out"; exit 1; }

status=0
while read -r key base fkey fresh_rate; do
    if [ "$key" != "$fkey" ] || [ -z "$fresh_rate" ]; then
        echo "FAIL: series shape mismatch: baseline point '$key' vs fresh point '$fkey'"
        status=1
        break
    fi
    verdict=$(awk -v b="$base" -v f="$fresh_rate" -v tol="$TOLERANCE_PCT" 'BEGIN {
        floor = b * (1 - tol / 100)
        printf "%s %.0f", (f >= floor) ? "ok" : "REGRESSED", floor
    }')
    printf '%-18s baseline=%-10.0f fresh=%-10.0f floor=%s -> %s\n' \
        "$key" "$base" "$fresh_rate" "${verdict#* }" "${verdict% *}"
    [ "${verdict% *}" = ok ] || status=1
done < <(paste -d' ' <(extract "$baseline") <(extract "$fresh"))

if [ "$status" -ne 0 ]; then
    echo "FAIL: engine throughput regressed more than ${TOLERANCE_PCT}% below $baseline"
    exit 1
fi
echo "bench gate OK (within ${TOLERANCE_PCT}% of $baseline)"

# Serving fan-out gate: the broadcast benchmark's bytes-per-fix is a
# property of the encodings, not the machine, so it is gated tightly in
# the growth direction — a frame that gets bigger is an encoding
# regression (shrinking is fine). Throughput is deliberately NOT gated
# here: the fan-out loops run in microseconds and their rates are
# timer-resolution noise. Skipped when no baseline is committed.
bbaseline=${BROADCAST_BASELINE:-BENCH_broadcast.json}
btol=${BROADCAST_TOLERANCE_PCT:-10}
if [ -f "$bbaseline" ]; then
    bfresh="$workdir/broadcast.json"
    "$GO" run ./cmd/gpsbench -broadcast -broadcast-trials 2 -broadcast-json "$bfresh" \
        >"$workdir/broadcast.out" 2>&1 ||
        { echo "FAIL: broadcast benchmark run failed"; cat "$workdir/broadcast.out"; exit 1; }

    # bextract FILE: one "arm:clients bytes_per_fix" line per series
    # point (field order: arm, clients, ..., bytes_per_fix).
    bextract() {
        awk '
            /"arm":/           { v = $2; gsub(/[",]/, "", v); arm = v }
            /"clients":/       { v = $2; gsub(/,/, "", v); c = v }
            /"bytes_per_fix":/ { v = $2; gsub(/,/, "", v); printf "%s:%s %s\n", arm, c, v }
        ' "$1"
    }

    while read -r key base fkey fresh_bpf; do
        if [ "$key" != "$fkey" ] || [ -z "$fresh_bpf" ]; then
            echo "FAIL: broadcast series shape mismatch: baseline '$key' vs fresh '$fkey'"
            status=1
            break
        fi
        verdict=$(awk -v b="$base" -v f="$fresh_bpf" -v tol="$btol" 'BEGIN {
            ceil = b * (1 + tol / 100)
            printf "%s %.1f", (f <= ceil) ? "ok" : "GREW", ceil
        }')
        printf '%-12s baseline=%-8.1f fresh=%-8.1f ceiling=%s bytes/fix -> %s\n' \
            "$key" "$base" "$fresh_bpf" "${verdict#* }" "${verdict% *}"
        [ "${verdict% *}" = ok ] || status=1
    done < <(paste -d' ' <(bextract "$bbaseline") <(bextract "$bfresh"))

    # The claim the wire protocol exists for must keep holding: binary
    # frames at least 2x smaller than the text sentences per fix.
    read -r nmea_bpf wire_bpf < <(bextract "$bfresh" | awk '
        /^nmea:/ { n = $2 } /^wire:/ { w = $2 } END { print n, w }')
    if ! awk -v n="$nmea_bpf" -v w="$wire_bpf" 'BEGIN { exit !(w * 2 <= n) }'; then
        echo "FAIL: wire frames ($wire_bpf bytes/fix) no longer at least 2x smaller than NMEA ($nmea_bpf bytes/fix)"
        status=1
    fi

    if [ "$status" -ne 0 ]; then
        echo "FAIL: broadcast encoding regressed against $bbaseline"
        exit 1
    fi
    echo "broadcast gate OK (bytes/fix within ${btol}% of $bbaseline, wire >= 2x smaller than NMEA)"
else
    echo "broadcast gate skipped: no $bbaseline baseline"
fi
