#!/bin/bash
# Smoke test for the gpsserve flight recorder: start the server with
# tracing and a 1 ns exemplar threshold, scrape /debug/trace (expecting
# the pipeline span names), /debug/trace/chrome (expecting a loadable
# trace_event document), and /debug/trace/exemplars, then replay the
# captured exemplars through gpsrun -replay. Exits non-zero on any miss.
set -euo pipefail

GO=${GO:-go}
workdir=$(mktemp -d)
log="$workdir/gpsserve.log"
serve="$workdir/gpsserve"
run="$workdir/gpsrun"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$serve" ./cmd/gpsserve
"$GO" build -o "$run" ./cmd/gpsrun

# A 1 ns slow threshold turns every fix into an exemplar, so the replay
# leg always has material to work with.
"$serve" -station YYR1 -solver dlg -rate 50 -addr 127.0.0.1:0 \
    -admin 127.0.0.1:0 -trace 128 -trace-slow 1ns >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^gpsserve: admin on http://\([^ ]*\).*|\1|p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "gpsserve exited early:"; cat "$log"; exit 1; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "admin banner never appeared:"
    cat "$log"
    exit 1
fi

# Let the stream produce fixes (DLG needs predictor warm-up first).
traces=""
for _ in $(seq 1 50); do
    traces=$(curl -fsS "http://$addr/debug/trace")
    case $traces in
    *'"nmea/encode"'*) break ;;
    esac
    sleep 0.1
done

status=0
for span in epoch/generate clock/predict solve/dlg dop/compute nmea/encode broadcast; do
    case $traces in
    *"\"$span\""*) ;;
    *)
        echo "FAIL: /debug/trace missing span $span"
        status=1
        ;;
    esac
done

chrome=$(curl -fsS "http://$addr/debug/trace/chrome")
case $chrome in
*'"traceEvents"'*) ;;
*)
    echo "FAIL: /debug/trace/chrome is not a trace_event document"
    status=1
    ;;
esac

exemplars="$workdir/exemplars.json"
curl -fsS "http://$addr/debug/trace/exemplars" >"$exemplars"
if ! grep -q '"input"' "$exemplars"; then
    echo "FAIL: /debug/trace/exemplars captured nothing"
    status=1
elif ! "$run" -replay "$exemplars" >"$workdir/replay.log" 2>&1; then
    echo "FAIL: gpsrun -replay did not reproduce the captured fixes:"
    cat "$workdir/replay.log"
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "trace smoke OK ($addr; $(tail -1 "$workdir/replay.log"))"
fi
exit $status
