#!/bin/bash
# Smoke test for the gpsserve admin endpoint, in two phases:
#   1. single-receiver stream mode: scrape /metrics and /healthz and
#      assert the key solver metric families are exposed
#   2. engine mode with -journal and -incident-dir: assert the flight
#      journal and incident counters are exported
# Exits non-zero on any miss.
set -euo pipefail

GO=${GO:-go}
workdir=$(mktemp -d)
log="$workdir/gpsserve.log"
bin="$workdir/gpsserve"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$bin" ./cmd/gpsserve

# wait_admin: poll the startup banner ("gpsserve: admin on http://ADDR")
# for up to 5 s and echo the admin address.
wait_admin() {
    local a=""
    for _ in $(seq 1 50); do
        a=$(sed -n 's|^gpsserve: admin on http://\([^ ]*\).*|\1|p' "$log")
        [ -n "$a" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "gpsserve exited early:" >&2; cat "$log" >&2; exit 1; }
        sleep 0.1
    done
    if [ -z "$a" ]; then
        echo "admin banner never appeared:" >&2
        cat "$log" >&2
        exit 1
    fi
    printf '%s' "$a"
}

status=0

# Phase 1: single-receiver stream mode.
"$bin" -station YYR1 -rate 10 -addr 127.0.0.1:0 -admin 127.0.0.1:0 >"$log" 2>&1 &
pid=$!
addr=$(wait_admin)

metrics=$(curl -fsS "http://$addr/metrics")
health=$(curl -sS "http://$addr/healthz")

for name in gps_solve_seconds gps_solve_failures_total gps_nr_iterations_total \
    gps_clock_resets_total gpsserve_clients gpsserve_epochs_total; do
    if ! printf '%s\n' "$metrics" | grep -q "$name"; then
        echo "FAIL: /metrics missing $name"
        status=1
    fi
done
case $health in
*'"status"'*) ;;
*)
    echo "FAIL: /healthz returned no status: $health"
    status=1
    ;;
esac

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=

# Phase 2: engine mode with the flight journal and incident capture on;
# the journal/incident counter families must register at startup.
: >"$log"
"$bin" -receivers 2 -station all -rate 50 -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -journal "$workdir/flight.gpsj" -incident-dir "$workdir/incidents" >"$log" 2>&1 &
pid=$!
addr=$(wait_admin)

emetrics=$(curl -fsS "http://$addr/metrics")
for name in gps_journal_bytes_written_total gps_journal_fsyncs_total \
    engine_incidents_captured_total engine_incidents_dropped_total; do
    if ! printf '%s\n' "$emetrics" | grep -q "^$name"; then
        echo "FAIL: engine-mode /metrics missing $name"
        status=1
    fi
done
if ! printf '%s\n' "$emetrics" | grep '^gps_journal_bytes_written_total' | grep -qv ' 0$'; then
    echo "FAIL: flight journal wrote no bytes"
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "metrics smoke OK ($addr; healthz: $health; journal+incident counters exported)"
fi
exit $status
