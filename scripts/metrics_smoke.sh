#!/bin/sh
# Smoke test for the gpsserve admin endpoint: start the server with
# -admin on an ephemeral port, scrape /metrics and /healthz, and assert
# that the key metric families are exposed. Exits non-zero on any miss.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
log="$workdir/gpsserve.log"
bin="$workdir/gpsserve"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$bin" ./cmd/gpsserve

# Ephemeral ports for both listeners; the admin address is parsed from
# the startup banner ("gpsserve: admin on http://ADDR (...)").
"$bin" -station YYR1 -rate 10 -addr 127.0.0.1:0 -admin 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^gpsserve: admin on http://\([^ ]*\).*|\1|p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "gpsserve exited early:"; cat "$log"; exit 1; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "admin banner never appeared:"
    cat "$log"
    exit 1
fi

metrics=$(curl -fsS "http://$addr/metrics")
health=$(curl -sS "http://$addr/healthz")

status=0
for name in gps_solve_seconds gps_solve_failures_total gps_nr_iterations_total \
    gps_clock_resets_total gpsserve_clients gpsserve_epochs_total; do
    if ! printf '%s\n' "$metrics" | grep -q "$name"; then
        echo "FAIL: /metrics missing $name"
        status=1
    fi
done
case $health in
*'"status"'*) ;;
*)
    echo "FAIL: /healthz returned no status: $health"
    status=1
    ;;
esac

if [ "$status" -eq 0 ]; then
    echo "metrics smoke OK ($addr; healthz: $health)"
fi
exit $status
