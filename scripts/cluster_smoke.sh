#!/bin/bash
# Node-kill chaos test for the multi-node serving tier: two race-built
# gpsserve nodes behind a gpsproxy, one gpsclient streaming session 1
# through the proxy on its resume token, then kill -9 of the node
# hosting that session mid-stream. Asserts the failover contract:
#   - the proxy declares the node dead and re-homes its sessions onto
#     the survivor by checkpoint handoff (survivor restore outcome "ok",
#     not a cold start)
#   - the client's stream stays strictly consecutive across the kill:
#     zero duplicated epochs, zero silently-skipped epochs
#   - every fix delivered across the failover is bit-identical to an
#     uninterrupted same-seed run of the session
#   - the failover/handoff counters move on the proxy and the survivor
# Needs bash and curl.
set -euo pipefail

GO=${GO:-go}
seed=11
rate=150
count=600
workdir=$(mktemp -d)

cleanup() {
    for p in "${pid_a:-}" "${pid_b:-}" "${pid_p:-}" "${pid_ref:-}" "${pid_client:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1"
    for f in node_a node_b proxy client.events; do
        [ -f "$workdir/$f.log" ] && { echo "--- $f ---"; tail -40 "$workdir/$f.log"; }
    done
    exit 1
}

# wait_grep FILE PATTERN DESC: poll up to 15 s for PATTERN in FILE.
wait_grep() {
    for _ in $(seq 1 150); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    fail "$3 never appeared"
}

"$GO" build -race -o "$workdir/gpsserve" ./cmd/gpsserve
"$GO" build -race -o "$workdir/gpsproxy" ./cmd/gpsproxy
"$GO" build -race -o "$workdir/gpsclient" ./cmd/gpsclient

# start_node NAME SESSION_IDS: boots one serving node and parses its
# wire/admin addresses from the banners into wire_NAME / admin_NAME.
start_node() {
    local name=$1 ids=$2 log="$workdir/node_$1.log"
    "$workdir/gpsserve" -session-ids "$ids" -seed "$seed" -rate "$rate" \
        -checkpoint-every 50 -addr 127.0.0.1:0 -wire 127.0.0.1:0 -admin 127.0.0.1:0 \
        >"$log" 2>&1 &
    eval "pid_$name=$!"
    disown %% # silence bash's job-control obituary for the kill -9 victim
    wait_grep "$log" '^gpsserve: wire fix streams on' "node $name wire banner"
    wait_grep "$log" '^gpsserve: admin on' "node $name admin banner"
    eval "wire_$name=$(sed -n 's|^gpsserve: wire fix streams on \([0-9.:]*\).*|\1|p' "$log")"
    eval "admin_$name=$(sed -n 's|^gpsserve: admin on http://\([^ ]*\).*|\1|p' "$log")"
}

# ---- Topology: a hosts the victim session, b survives ------------------
start_node a 0,1
start_node b 2,3

"$workdir/gpsproxy" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -node "a=$wire_a,http://$admin_a" -node "b=$wire_b,http://$admin_b" \
    -health-interval 200ms -health-threshold 3 -poll-interval 200ms \
    -retry-budget 50 >"$workdir/proxy.log" 2>&1 &
pid_p=$!
wait_grep "$workdir/proxy.log" '^gpsproxy: relaying fix streams on' "proxy banner"
proxy=$(sed -n 's|^gpsproxy: relaying fix streams on \([0-9.:]*\) .*|\1|p' "$workdir/proxy.log")
padmin=$(sed -n 's|^gpsproxy: admin on http://\([^ ]*\) .*|\1|p' "$workdir/proxy.log")

# ---- Chaos stream: session 1 from epoch 1 through the proxy ------------
"$workdir/gpsclient" -addr "$proxy" -session 1 -resume 0 -count "$count" \
    -events >"$workdir/client.out" 2>"$workdir/client.events.log" &
pid_client=$!

# Let the stream pass epoch 250 so node a has refreshed checkpoints
# (every 50 epochs) and the proxy's 200 ms poll has cached one.
for _ in $(seq 1 300); do
    lines=$(wc -l <"$workdir/client.out" 2>/dev/null || echo 0)
    [ "$lines" -ge 250 ] && break
    kill -0 "$pid_client" 2>/dev/null || fail "client died before the kill point"
    sleep 0.1
done
[ "${lines:-0}" -ge 250 ] || fail "stream never reached epoch 250 (at $lines)"

# ---- kill -9 the node hosting the streamed session ---------------------
kill -9 "$pid_a"
pid_a=

# The proxy must declare a dead and fail its sessions over.
for _ in $(seq 1 150); do
    fo=$(curl -fsS "http://$padmin/metrics" 2>/dev/null |
        awk '$1 == "gpsproxy_failovers_total" { print $2 }')
    [ "${fo:-0}" -ge 1 ] 2>/dev/null && break
    sleep 0.1
done
[ "${fo:-0}" -ge 1 ] || fail "gpsproxy_failovers_total never moved after kill -9"

# The client must ride the failover to completion.
if ! wait "$pid_client"; then
    pid_client=
    fail "client did not survive the failover"
fi
pid_client=

# ---- Verdicts ----------------------------------------------------------
# Strictly consecutive epochs 1..count: no duplicates, no silent skips.
awk -v want="$count" '
    { split($2, kv, "="); epoch = kv[2]
      if (epoch != NR) { printf "epoch %s at line %d (want %d)\n", epoch, NR, NR; bad = 1; exit 1 } }
    END { if (!bad && NR != want) { printf "stream ended at %d of %d\n", NR, want; exit 1 } }
' "$workdir/client.out" || fail "client stream not gapless across the kill"

# The survivor adopted by checkpoint handoff, not cold start.
hz=$(curl -fsS "http://$admin_b/healthz")
printf '%s' "$hz" | grep -q '"outcome":"ok"' ||
    fail "survivor restore outcome not ok: $hz"
curl -fsS "http://$admin_b/cluster/sessions" | grep -q '"id":1' ||
    fail "survivor does not host session 1"
bh=$(curl -fsS "http://$admin_b/metrics" |
    awk '$1 == "gps_cluster_handoffs_total" { print $2 }')
[ "${bh:-0}" -ge 1 ] || fail "survivor gps_cluster_handoffs_total=$bh, want >= 1"
ph=$(curl -fsS "http://$padmin/metrics" |
    awk '$1 == "gpsproxy_handoffs_total" { print $2 }')
[ "${ph:-0}" -ge 1 ] || fail "gpsproxy_handoffs_total=$ph, want >= 1"
curl -fsS "http://$padmin/healthz" | grep -q '"status":"degraded"' ||
    fail "proxy /healthz is not degraded with one node down"

# ---- Bit-identity: interrupted == uninterrupted ------------------------
# Session content depends only on (session id, seed), not placement, so
# a fresh single-node run of session 1 is the uninterrupted reference.
start_node ref 1
"$workdir/gpsclient" -addr "$wire_ref" -session 1 -resume 0 -count "$count" \
    >"$workdir/ref.out" 2>/dev/null ||
    fail "reference client failed"
cmp -s "$workdir/client.out" "$workdir/ref.out" || {
    diff "$workdir/client.out" "$workdir/ref.out" | head -10
    fail "fixes across the failover differ from the uninterrupted run"
}

echo "cluster smoke OK (kill -9 failover: gapless resume, checkpoint handoff on survivor, $count fixes bit-identical to uninterrupted run)"
