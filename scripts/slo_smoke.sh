#!/bin/bash
# SLO smoke test for the quality/error-budget surface: boots gpsserve
# (built with -race) in engine mode with a wideband noise burst scheduled
# mid-run, and asserts the observability contract end to end:
#   - /debug/status reports the fleet SLO verdict "ok" while the sky is
#     clean and the windows are filling
#   - once the burst lands, the verdict flips to "page" and the paging
#     objective's error budget is spent
#   - the SLO engine forced session health downgrades
#     (engine_slo_downgrades_total > 0 on /metrics, worst-state gauge
#     at page level)
#   - the ?format=text rendering carries the objective table
# Needs curl.
set -euo pipefail

GO=${GO:-go}
workdir=$(mktemp -d)
log="$workdir/gpsserve.log"
bin="$workdir/gpsserve"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1"
    echo "--- server log ---"
    cat "$log"
    exit 1
}

# wait_grep FILE PATTERN DESC: poll up to 15 s for PATTERN in FILE.
wait_grep() {
    for _ in $(seq 1 150); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        [ -n "${pid:-}" ] && ! kill -0 "$pid" 2>/dev/null && fail "server exited early waiting for $3"
        sleep 0.1
    done
    fail "$3 never appeared"
}

# verdict: the fleet SLO verdict from /debug/status (first "worst" key is
# the fleet-level one; sessions follow).
verdict() {
    { curl -sS "http://$admin/debug/status" |
        grep -o '"worst": "[a-z]*"' | head -1 | cut -d'"' -f4; } || true
}

# wait_verdict STATE: poll up to 15 s for the fleet verdict to read STATE.
wait_verdict() {
    for _ in $(seq 1 150); do
        v=$(verdict || true)
        [ "$v" = "$1" ] && return 0
        [ -n "${pid:-}" ] && ! kill -0 "$pid" 2>/dev/null && fail "server exited early waiting for verdict $1"
        sleep 0.1
    done
    fail "fleet verdict never reached $1 (last: ${v:-none})"
}

"$GO" build -race -o "$bin" ./cmd/gpsserve

# Short windows so budgets fill and burn within seconds: 300-epoch SLO
# windows at 200 epochs/s, with a sigma=10 burst landing at epoch 900 —
# well past the window span, so the clean verdict is observed first.
"$bin" -receivers 2 -station all -rate 200 -seed 7 \
    -faults 'burst:sigma=10,from=900,until=1000000' -fault-seed 99 \
    -quality-window 300 -slo 'availability>=99@300,p99_rms<=13@300,chi2>=95@300' \
    -addr 127.0.0.1:0 -admin 127.0.0.1:0 >"$log" 2>&1 &
pid=$!
wait_grep "$log" '^gpsserve: admin on' "admin banner"
admin=$(sed -n 's|^gpsserve: admin on http://\([^ ]*\).*|\1|p' "$log")
[ -n "$admin" ] || fail "could not parse admin address"

# Clean phase: the fleet verdict must read ok before the burst lands.
wait_verdict ok

# Degraded phase: the burst must page within the fast-burn horizon.
wait_verdict page

# The page must be visible across the whole surface: worst-state gauge,
# spent error budget, and forced health downgrades.
status=$(curl -sS "http://$admin/debug/status")
printf '%s\n' "$status" | grep -q '"enabled": true' || fail "quality block missing from /debug/status"
metrics=$(curl -fsS "http://$admin/metrics")
printf '%s\n' "$metrics" | grep -q '^engine_slo_worst_state 2$' ||
    fail "engine_slo_worst_state gauge is not at page level"
printf '%s\n' "$metrics" | grep 'engine_slo_downgrades_total' | grep -qv ' 0$' ||
    fail "SLO page forced no session health downgrades"

# The operator rendering must carry the objective table and the verdict.
text=$(curl -sS "http://$admin/debug/status?format=text")
printf '%s\n' "$text" | grep -q 'OBJECTIVE' || fail "text rendering lost the objective table"
printf '%s\n' "$text" | grep -q 'slo verdict[[:space:]]*page' || fail "text rendering lost the page verdict"

kill -TERM "$pid"
wait "$pid" || fail "server exited non-zero on SIGTERM"
pid=

echo "slo smoke OK (clean verdict ok, burst paged, budgets spent, downgrades forced, text surface intact)"
