// Cross-module integration tests: full pipelines that no single package
// test exercises end to end.
package gpsdl_test

import (
	"bytes"
	"math"
	"testing"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/dgps"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/orbit"
	"gpsdl/internal/rinex"
	"gpsdl/internal/scenario"
	"gpsdl/internal/smoothing"
	"gpsdl/internal/tracking"
)

// Pipeline 1: generate → RINEX → reload → position. The solution from the
// reconstructed dataset must match the original to well under the
// measurement noise.
func TestPipelineRINEXRoundTripPositioning(t *testing.T) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(99))
	ds, err := g.GenerateRange(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	var obsBuf, navBuf bytes.Buffer
	if err := rinex.WriteObs(&obsBuf, ds); err != nil {
		t.Fatal(err)
	}
	if err := rinex.WriteNav(&navBuf, orbit.DefaultConstellation().Satellites()); err != nil {
		t.Fatal(err)
	}
	obsFile, err := rinex.ReadObs(&obsBuf)
	if err != nil {
		t.Fatal(err)
	}
	sats, err := rinex.ReadNav(&navBuf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rinex.ToDataset(obsFile, sats)
	if err != nil {
		t.Fatal(err)
	}
	var nr core.NRSolver
	for i := range ds.Epochs {
		orig, err1 := nr.Solve(ds.Epochs[i].T, adaptEpoch(ds.Epochs[i]))
		rec, err2 := nr.Solve(back.Epochs[i].T, adaptEpoch(back.Epochs[i]))
		if err1 != nil || err2 != nil {
			t.Fatalf("epoch %d solves: %v, %v", i, err1, err2)
		}
		if d := orig.Pos.DistanceTo(rec.Pos); d > 0.05 {
			t.Errorf("epoch %d: reconstructed fix differs by %v m", i, d)
		}
	}
}

// Pipeline 2: RAIM on top of injected faults — the integrity stack finds
// the faulty satellite the generator corrupted.
func TestPipelineFaultInjectionRAIM(t *testing.T) {
	st, err := scenario.StationByID("SRZN")
	if err != nil {
		t.Fatal(err)
	}
	// Pick a PRN that is visible at t = 1000.
	probe := scenario.NewGenerator(st, scenario.DefaultConfig(3))
	e, err := probe.EpochAt(1000)
	if err != nil {
		t.Fatal(err)
	}
	victim := e.Obs[2].PRN
	g := scenario.NewGenerator(st, scenario.DefaultConfig(3),
		scenario.WithFaults([]scenario.Fault{{PRN: victim, From: 900, Until: 1100, Bias: 400}}))
	r := &core.RAIM{Solver: &core.NRSolver{}}

	inFault, err := g.EpochAt(1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Check(1000, adaptEpoch(inFault))
	if err != nil {
		t.Fatalf("RAIM in fault window: %v", err)
	}
	if res.Excluded < 0 || inFault.Obs[res.Excluded].PRN != victim {
		t.Errorf("RAIM excluded index %d, want PRN %d", res.Excluded, victim)
	}
	if d := res.Solution.Pos.DistanceTo(st.Pos); d > 25 {
		t.Errorf("post-exclusion error %v m", d)
	}

	afterFault, err := g.EpochAt(1200)
	if err != nil {
		t.Fatal(err)
	}
	res, err = r.Check(1200, adaptEpoch(afterFault))
	if err != nil {
		t.Fatalf("RAIM after fault window: %v", err)
	}
	if res.Excluded != -1 {
		t.Errorf("RAIM excluded %d on a clean epoch", res.Excluded)
	}
}

// Pipeline 3: DGPS + Hatch smoothing + DLG stack — all three layers
// compose and each one helps.
func TestPipelineDGPSSmoothedDLG(t *testing.T) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(42)
	cfg.IonoRemainder = 1.0 // uncorrected receivers: DGPS's use case
	refGen := scenario.NewGenerator(st, cfg)
	rover := st
	rover.ID = "ROVR"
	rover.Pos = geo.FromENU(st.Pos, geo.ENU{E: 8000, N: 5000})
	roverGen := scenario.NewGenerator(rover, cfg)

	ref := dgps.NewReference(st.Pos)
	hatch := smoothing.NewHatch(100)
	pred := eval.DefaultPredictor(st.Clock)
	var nr core.NRSolver
	dlg := core.NewDLGSolver(pred)

	var sumPlain, sumStacked float64
	var n int
	for i := 0; i < 900; i++ {
		tt := float64(i)
		refEpoch, err := refGen.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		roverEpoch, err := roverGen.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := ref.ComputeCorrections(refEpoch)
		if err != nil {
			continue
		}
		stackedEpoch := hatch.Smooth(dgps.Apply(roverEpoch, corr))
		if nrSol, err := nr.Solve(tt, adaptEpoch(stackedEpoch)); err == nil {
			pred.Observe(clock.Fix{T: tt, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}
		if i < 400 {
			continue // smoother + predictor warm-up
		}
		plainSol, err1 := nr.Solve(tt, adaptEpoch(roverEpoch))
		stackSol, err2 := dlg.Solve(tt, adaptEpoch(stackedEpoch))
		if err1 != nil || err2 != nil {
			continue
		}
		sumPlain += plainSol.Pos.DistanceTo(rover.Pos)
		sumStacked += stackSol.Pos.DistanceTo(rover.Pos)
		n++
	}
	if n < 300 {
		t.Fatalf("only %d epochs", n)
	}
	plain, stacked := sumPlain/float64(n), sumStacked/float64(n)
	t.Logf("rover error: raw NR %.3f m, DGPS+Hatch+DLG %.3f m over %d epochs", plain, stacked, n)
	if stacked > plain*0.5 {
		t.Errorf("stacked pipeline %.3f m did not halve raw %.3f m", stacked, plain)
	}
}

// Pipeline 4: DLG snapshot → EKF with Doppler → velocity solver cross
// check. The two independent velocity estimates must agree.
func TestPipelineVelocityConsistency(t *testing.T) {
	st, err := scenario.StationByID("KYCP")
	if err != nil {
		t.Fatal(err)
	}
	traj := scenario.LinearTrajectory(st.Pos, geo.ENU{E: 25, N: -10})
	g := scenario.NewGenerator(st, scenario.DefaultConfig(66), scenario.WithTrajectory(traj))
	f := tracking.NewFilter(tracking.Config{})
	var nr core.NRSolver

	epoch0, err := g.EpochAt(0)
	if err != nil {
		t.Fatal(err)
	}
	sol0, err := nr.Solve(0, adaptEpoch(epoch0))
	if err != nil {
		t.Fatal(err)
	}
	f.Init(sol0, 0)
	var lastEpoch scenario.Epoch
	for i := 1; i <= 90; i++ {
		tt := float64(i)
		epoch, err := g.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Step(tt, adaptEpoch(epoch)); err != nil {
			t.Fatal(err)
		}
		vel := make([]core.VelObservation, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			vel = append(vel, core.VelObservation{Pos: o.Pos, Vel: o.Vel, RangeRate: o.Doppler})
		}
		if err := f.UpdateDoppler(vel); err != nil {
			t.Fatal(err)
		}
		lastEpoch = epoch
	}
	ekfState, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	// Independent snapshot velocity from the same last epoch.
	nrSol, err := nr.Solve(90, adaptEpoch(lastEpoch))
	if err != nil {
		t.Fatal(err)
	}
	vel := make([]core.VelObservation, 0, len(lastEpoch.Obs))
	for _, o := range lastEpoch.Obs {
		vel = append(vel, core.VelObservation{Pos: o.Pos, Vel: o.Vel, RangeRate: o.Doppler})
	}
	snap, err := core.SolveVelocity(nrSol.Pos, vel)
	if err != nil {
		t.Fatal(err)
	}
	if d := ekfState.Vel.Sub(snap.Vel).Norm(); d > 0.5 {
		t.Errorf("EKF and snapshot velocities differ by %v m/s", d)
	}
	truthSpeed := math.Hypot(25, 10)
	if d := math.Abs(ekfState.Vel.Norm() - truthSpeed); d > 0.5 {
		t.Errorf("EKF speed %.2f, truth %.2f", ekfState.Vel.Norm(), truthSpeed)
	}
}

func adaptEpoch(e scenario.Epoch) []core.Observation {
	obs := make([]core.Observation, 0, len(e.Obs))
	for _, o := range e.Obs {
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	return obs
}
