# Standard development entry points. Everything is stdlib-only Go; no
# tools beyond the Go toolchain are required.

GO ?= go
# Per-target budget for the fuzz smoke pass (Go -fuzztime syntax).
FUZZTIME ?= 30s

.PHONY: all build vet lint test race bench bench-json bench-broadcast bench-quality bench-faults bench-recovery bench-gate bench-journal determinism fault-determinism fuzz-smoke figures ablations cover test-cover metrics-smoke trace-smoke chaos-smoke slo-smoke incident-smoke cluster-smoke clean

all: build vet test determinism fault-determinism race fuzz-smoke metrics-smoke trace-smoke chaos-smoke slo-smoke incident-smoke cluster-smoke bench-json bench-broadcast bench-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static checks beyond vet: gofmt cleanliness everywhere, plus
# staticcheck when (and only when) it is installed — the repo must stay
# buildable with the bare Go toolchain.
lint: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; else echo "staticcheck not installed; skipped"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable fix-engine throughput curve (fixes/sec vs receiver
# count); the series EXPERIMENTS.md tracks.
bench-json:
	$(GO) run ./cmd/gpsbench -engine -engine-receivers 1,2,4,8 -engine-json BENCH_engine.json

# Serving fan-out comparison: NMEA text vs binary delta frames across
# subscriber counts (delivered fixes/sec, bytes/sec, bytes/fix), written
# to BENCH_broadcast.json. The bytes-per-fix series is gated by
# bench-gate; a frame-size growth fails the build.
bench-broadcast:
	$(GO) run ./cmd/gpsbench -broadcast -broadcast-json BENCH_broadcast.json

# Solution-quality sweep: each solver through the canonical degradation
# scenarios (clean/burst/step/shrink/clockjump) with the quality layer
# and default SLOs enabled, written to BENCH_quality.json.
bench-quality:
	$(GO) run ./cmd/gpsbench -quality -quality-json BENCH_quality.json

# Throughput regression gate: re-runs the engine sweep and fails if any
# receiver count lands more than 15% below the committed
# BENCH_engine.json baseline (override with TOLERANCE_PCT).
bench-gate:
	GO="$(GO)" ./scripts/bench_gate.sh

# Flight-journal overhead: paired journal-off/on engine runs (median of
# interleaved trials), written to BENCH_journal.json. Budget: < 5%.
bench-journal:
	$(GO) run ./cmd/gpsbench -journal -journal-json BENCH_journal.json

# Degradation curve under the composite fault program: accuracy rate η
# and availability vs fault intensity, written to BENCH_faults.json.
bench-faults:
	$(GO) run ./cmd/gpsbench -faults

# Checkpoint-recovery comparison: cold restart (NR re-warm-up) vs
# -restore from a checkpoint, written to BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/gpsbench -recovery

# Timebase determinism property: serial and parallel generation agree
# bit-for-bit for awkward step sizes (0.1, 1/3, 86400/7).
determinism:
	$(GO) test -run Determinism ./internal/scenario/...

# Fault-injection determinism: the same (program, seed) pair mutates the
# observation stream identically on every worker count, so degradation
# runs stay byte-replayable.
fault-determinism:
	$(GO) test -run Determinism ./internal/fault/ ./internal/engine/

# Short native-fuzzing pass over every parser facing external input
# (RINEX obs/nav, YUMA almanacs, NMEA sentences). Each target gets
# FUZZTIME; seed corpora and past crashers live under testdata/fuzz/.
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadObs -fuzztime=$(FUZZTIME) ./internal/rinex/
	$(GO) test -fuzz=FuzzReadNav -fuzztime=$(FUZZTIME) ./internal/rinex/
	$(GO) test -fuzz=FuzzReadYuma -fuzztime=$(FUZZTIME) ./internal/orbit/
	$(GO) test -fuzz=FuzzValidate -fuzztime=$(FUZZTIME) ./internal/nmea/
	$(GO) test -fuzz=FuzzParseGGA -fuzztime=$(FUZZTIME) ./internal/nmea/
	$(GO) test -fuzz=FuzzFrameReader -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -fuzz=FuzzRankOneApplyInv -fuzztime=$(FUZZTIME) ./internal/lsq/

# Regenerate every table and figure of the paper at full 24 h × 1 Hz
# scale (a few minutes), plus the ablations.
figures:
	$(GO) run ./cmd/gpsbench -fig all -duration 86400 -step 1

ablations:
	$(GO) run ./cmd/gpsbench -ablation all -duration 86400 -step 5

cover:
	$(GO) test ./... -cover

# Full coverage profile with a per-function breakdown, plus hard floors
# on the numerical packages the weighted solve paths lean on: a drop
# below 85% statement coverage in internal/lsq or internal/core fails
# the target.
test-cover:
	$(GO) test ./... -coverprofile=coverage.out
	$(GO) tool cover -func=coverage.out | tail -n 20
	@for pkg in gpsdl/internal/lsq gpsdl/internal/core; do \
		pct=$$($(GO) test -cover $$pkg | awk '{ for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) { sub(/%/, "", $$i); print $$i } }'); \
		echo "$$pkg coverage: $$pct% (floor 85%)"; \
		awk -v p="$$pct" 'BEGIN { exit !(p < 85) }' && { echo "FAIL: $$pkg below the 85% coverage floor"; exit 1; } || true; \
	done

# End-to-end check of the gpsserve admin endpoint: boots the server with
# -admin, scrapes /metrics and /healthz, and asserts the key metric
# families are exposed.
metrics-smoke:
	GO="$(GO)" ./scripts/metrics_smoke.sh

# End-to-end check of the flight recorder: boots gpsserve with tracing,
# asserts /debug/trace carries the pipeline spans and /debug/trace/chrome
# is a trace_event document, then replays the captured exemplars through
# gpsrun -replay.
trace-smoke:
	GO="$(GO)" ./scripts/trace_smoke.sh

# Chaos end-to-end check of the supervised engine (race-built gpsserve):
# injected worker panic, stalled NMEA client, mid-run SIGTERM with
# graceful drain, restart with -restore, and a corrupt-checkpoint
# cold-start fallback.
chaos-smoke:
	GO="$(GO)" ./scripts/chaos_smoke.sh

# End-to-end check of the quality/SLO surface (race-built gpsserve): a
# scheduled noise burst must flip the /debug/status fleet verdict from
# ok to page, spend the error budget, and force health downgrades.
slo-smoke:
	GO="$(GO)" ./scripts/slo_smoke.sh

# Node-kill chaos check of the multi-node serving tier (race-built
# gpsserve x2 + gpsproxy + gpsclient): kill -9 one node mid-stream; the
# proxy must re-home its sessions onto the survivor by checkpoint
# handoff, clients must resume with strictly consecutive epochs, and
# every fix delivered across the failover must be bit-identical to an
# uninterrupted same-seed run.
cluster-smoke:
	GO="$(GO)" ./scripts/cluster_smoke.sh

# End-to-end check of the black-box forensics loop (race-built gpsserve):
# a RAIM-evading step fault must page, capture a self-contained incident
# bundle, and the bundle must replay bit-for-bit and attribute the burn
# to the faulted satellite through gpsinspect.
incident-smoke:
	GO="$(GO)" ./scripts/incident_smoke.sh

clean:
	$(GO) clean ./...
