# Standard development entry points. Everything is stdlib-only Go; no
# tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build vet test race bench bench-json determinism figures ablations cover metrics-smoke trace-smoke clean

all: build vet test determinism race metrics-smoke trace-smoke bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable fix-engine throughput curve (fixes/sec vs receiver
# count); the series EXPERIMENTS.md tracks.
bench-json:
	$(GO) run ./cmd/gpsbench -engine -engine-receivers 1,2,4,8 -engine-json BENCH_engine.json

# Timebase determinism property: serial and parallel generation agree
# bit-for-bit for awkward step sizes (0.1, 1/3, 86400/7).
determinism:
	$(GO) test -run Determinism ./internal/scenario/...

# Regenerate every table and figure of the paper at full 24 h × 1 Hz
# scale (a few minutes), plus the ablations.
figures:
	$(GO) run ./cmd/gpsbench -fig all -duration 86400 -step 1

ablations:
	$(GO) run ./cmd/gpsbench -ablation all -duration 86400 -step 5

cover:
	$(GO) test ./... -cover

# End-to-end check of the gpsserve admin endpoint: boots the server with
# -admin, scrapes /metrics and /healthz, and asserts the key metric
# families are exposed.
metrics-smoke:
	GO="$(GO)" ./scripts/metrics_smoke.sh

# End-to-end check of the flight recorder: boots gpsserve with tracing,
# asserts /debug/trace carries the pipeline spans and /debug/trace/chrome
# is a trace_event document, then replays the captured exemplars through
# gpsrun -replay.
trace-smoke:
	GO="$(GO)" ./scripts/trace_smoke.sh

clean:
	$(GO) clean ./...
