// Command gpsgen generates the paper's evaluation datasets (Table 5.1):
// synthetic 24-hour observation sets for the four CORS stations, written
// as JSON-lines datasets and/or RINEX 2.11 observation + navigation files.
//
// Usage:
//
//	gpsgen -table                         # print Table 5.1
//	gpsgen -station YYR1 -duration 3600   # one hour for one station
//	gpsgen -station all -out data/        # all four stations
//	gpsgen -station SRZN -format rinex    # RINEX obs + nav instead of JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpsdl/internal/eval"
	"gpsdl/internal/orbit"
	"gpsdl/internal/rinex"
	"gpsdl/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gpsgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gpsgen", flag.ContinueOnError)
	var (
		station  = fs.String("station", "all", "station ID (SRZN, YYR1, FAI1, KYCP) or 'all'")
		seed     = fs.Int64("seed", 2009, "generation seed")
		duration = fs.Float64("duration", 86400, "dataset length in seconds (paper: 86400)")
		step     = fs.Float64("step", 1, "epoch spacing in seconds (paper: 1)")
		format   = fs.String("format", "json", "output format: json, bin or rinex")
		outDir   = fs.String("out", ".", "output directory")
		table    = fs.Bool("table", false, "print Table 5.1 and exit")
		almanac  = fs.Bool("almanac", false, "also write the constellation as a YUMA almanac")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *table {
		return eval.FormatTable51(os.Stdout, scenario.Table51Stations())
	}
	stations, err := resolveStations(*station)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	if *almanac {
		path := filepath.Join(*outDir, "constellation.alm")
		if err := writeFile(path, func(f *os.File) error {
			return orbit.WriteYuma(f, orbit.DefaultConstellation().Satellites())
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (YUMA almanac, %d satellites)\n", path, orbit.DefaultSatCount)
	}
	for _, st := range stations {
		cfg := scenario.DefaultConfig(*seed)
		cfg.Step = *step
		g := scenario.NewGenerator(st, cfg)
		fmt.Printf("generating %s: %s clock, %.0f s at %.0f s steps...\n",
			st.ID, st.Clock, *duration, *step)
		ds, err := g.GenerateRangeParallel(0, *duration, 0)
		if err != nil {
			return fmt.Errorf("generate %s: %w", st.ID, err)
		}
		switch *format {
		case "json":
			path := filepath.Join(*outDir, strings.ToLower(st.ID)+".jsonl")
			if err := ds.SaveFile(path); err != nil {
				return err
			}
			fmt.Printf("  wrote %s (%d epochs, %d-%d satellites)\n",
				path, ds.Len(), ds.MinSatCount(), ds.MaxSatCount())
		case "bin":
			path := filepath.Join(*outDir, strings.ToLower(st.ID)+".bin")
			if err := ds.SaveBinaryFile(path); err != nil {
				return err
			}
			fmt.Printf("  wrote %s (%d epochs, %d-%d satellites)\n",
				path, ds.Len(), ds.MinSatCount(), ds.MaxSatCount())
		case "rinex":
			obsPath := filepath.Join(*outDir, strings.ToLower(st.ID)+".09o")
			if err := writeFile(obsPath, func(f *os.File) error {
				return rinex.WriteObs(f, ds)
			}); err != nil {
				return err
			}
			navPath := filepath.Join(*outDir, strings.ToLower(st.ID)+".09n")
			if err := writeFile(navPath, func(f *os.File) error {
				return rinex.WriteNav(f, orbit.DefaultConstellation().Satellites())
			}); err != nil {
				return err
			}
			fmt.Printf("  wrote %s + %s (%d epochs)\n", obsPath, navPath, ds.Len())
		default:
			return fmt.Errorf("unknown format %q (want json, bin or rinex)", *format)
		}
	}
	return nil
}

func resolveStations(arg string) ([]scenario.Station, error) {
	if arg == "all" {
		return scenario.Table51Stations(), nil
	}
	st, err := scenario.StationByID(strings.ToUpper(arg))
	if err != nil {
		return nil, err
	}
	return []scenario.Station{st}, nil
}

func writeFile(path string, fill func(*os.File) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return fill(f)
}
