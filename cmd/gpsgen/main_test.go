package main

import (
	"os"
	"path/filepath"
	"testing"

	"gpsdl/internal/orbit"
	"gpsdl/internal/rinex"
	"gpsdl/internal/scenario"
)

func TestRunTable(t *testing.T) {
	if err := run([]string{"-table"}); err != nil {
		t.Fatalf("run(-table): %v", err)
	}
}

func TestRunGeneratesJSON(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-station", "YYR1", "-duration", "30", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := scenario.LoadFile(filepath.Join(dir, "yyr1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 30 {
		t.Errorf("dataset has %d epochs, want 30", ds.Len())
	}
	if ds.Station.ID != "YYR1" {
		t.Errorf("station = %q", ds.Station.ID)
	}
}

func TestRunGeneratesRINEX(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-station", "SRZN", "-duration", "10", "-format", "rinex", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	obsF, err := os.Open(filepath.Join(dir, "srzn.09o"))
	if err != nil {
		t.Fatal(err)
	}
	defer obsF.Close()
	obs, err := rinex.ReadObs(obsF)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Epochs) != 10 {
		t.Errorf("obs has %d epochs, want 10", len(obs.Epochs))
	}
	navF, err := os.Open(filepath.Join(dir, "srzn.09n"))
	if err != nil {
		t.Fatal(err)
	}
	defer navF.Close()
	sats, err := rinex.ReadNav(navF)
	if err != nil {
		t.Fatal(err)
	}
	if len(sats) != 31 {
		t.Errorf("nav has %d satellites, want 31", len(sats))
	}
}

func TestRunAllStations(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-station", "all", "-duration", "5", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"srzn", "yyr1", "fai1", "kycp"} {
		if _, err := os.Stat(filepath.Join(dir, name+".jsonl")); err != nil {
			t.Errorf("missing %s.jsonl: %v", name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown station", []string{"-station", "NOPE", "-duration", "1"}},
		{"bad format", []string{"-station", "YYR1", "-duration", "1", "-format", "xml"}},
		{"bad flag", []string{"-bogus"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestRunWritesAlmanac(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-station", "YYR1", "-duration", "2", "-out", dir, "-almanac"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "constellation.alm"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sats, err := orbit.ReadYuma(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sats) != 31 {
		t.Errorf("almanac has %d satellites", len(sats))
	}
}

func TestRunGeneratesBinary(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-station", "KYCP", "-duration", "15", "-format", "bin", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	ds, err := scenario.LoadBinaryFile(filepath.Join(dir, "kycp.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 15 {
		t.Errorf("binary dataset has %d epochs", ds.Len())
	}
}
