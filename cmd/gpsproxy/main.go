// Command gpsproxy fronts a set of gpsserve cluster nodes: it routes
// each binary fix subscriber to the node hosting its session, health-
// checks every node, and on a node death re-homes the orphaned sessions
// onto survivors by checkpoint handoff — clients ride across the
// failover on their resume tokens without duplicated or silently
// skipped fixes.
//
//	gpsserve -session-ids 0,1 -wire :7101 -admin :7201 &
//	gpsserve -session-ids 2,3 -wire :7102 -admin :7202 &
//	gpsproxy -addr :7100 -admin :7200 \
//	    -node a=127.0.0.1:7101,http://127.0.0.1:7201 \
//	    -node b=127.0.0.1:7102,http://127.0.0.1:7202
//	gpsclient -addr 127.0.0.1:7100 -session 2
//
// The admin endpoint serves /metrics (relay/failover counters),
// /healthz (per-node up/down), and /cluster/owners (the session
// routing table).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"gpsdl/internal/cluster"
	"gpsdl/internal/telemetry"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:]); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "gpsproxy:", err)
		os.Exit(1)
	}
}

// parseNode parses one -node value: name=wireAddr,adminURL.
func parseNode(v string) (name string, addr cluster.NodeAddr, err error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || strings.TrimSpace(name) == "" {
		return "", addr, fmt.Errorf("want name=wireAddr,adminURL, have %q", v)
	}
	wire, admin, ok := strings.Cut(rest, ",")
	if !ok || strings.TrimSpace(wire) == "" || strings.TrimSpace(admin) == "" {
		return "", addr, fmt.Errorf("want name=wireAddr,adminURL, have %q", v)
	}
	return strings.TrimSpace(name), cluster.NodeAddr{
		Wire:  strings.TrimSpace(wire),
		Admin: strings.TrimSpace(admin),
	}, nil
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gpsproxy", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7100", "binary fix-stream listen address clients connect to")
		adminAddr  = fs.String("admin", "", "admin HTTP listen address serving /metrics, /healthz and /cluster/owners (disabled when empty)")
		replicas   = fs.Int("replicas", 0, "hash-ring virtual nodes per serving node (0 uses the default)")
		hcInterval = fs.Duration("health-interval", 500*time.Millisecond, "per-node /healthz probe interval")
		hcTimeout  = fs.Duration("health-timeout", 2*time.Second, "per-probe timeout")
		hcBad      = fs.Int("health-threshold", 3, "consecutive probe failures that declare a node dead and trigger failover")
		pollEvery  = fs.Duration("poll-interval", time.Second, "session-discovery and checkpoint-cache poll interval")
		budget     = fs.Int("retry-budget", 16, "consecutive upstream failures tolerated per client relay before it is dropped")
		logLevel   = fs.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat  = fs.String("log-format", "text", "log format: text or json")
	)
	nodes := make(map[string]cluster.NodeAddr)
	fs.Func("node", "serving node as name=wireAddr,adminURL (repeatable)", func(v string) error {
		name, na, err := parseNode(v)
		if err != nil {
			return err
		}
		if _, dup := nodes[name]; dup {
			return fmt.Errorf("duplicate node name %q", name)
		}
		nodes[name] = na
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("at least one -node name=wireAddr,adminURL is required")
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logs, err := telemetry.NewLogging(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg)
	p, err := cluster.NewProxy(cluster.ProxyConfig{
		Nodes:    nodes,
		Replicas: *replicas,
		Health: cluster.HealthConfig{
			Interval:  *hcInterval,
			Timeout:   *hcTimeout,
			Threshold: *hcBad,
		},
		PollInterval: *pollEvery,
		RetryBudget:  *budget,
		Registry:     reg,
		Log:          logs.Component("proxy"),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("gpsproxy: relaying fix streams on %s across %d nodes (%s)\n",
		ln.Addr(), len(nodes), strings.Join(names, ", "))

	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("admin listen %s: %w", *adminAddr, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler(reg))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			up := p.Monitor().UpNodes()
			sort.Strings(up)
			body := struct {
				Status string   `json:"status"` // ok | degraded | isolated
				Nodes  int      `json:"nodes"`
				Up     []string `json:"up"`
			}{Nodes: len(nodes), Up: up}
			code := http.StatusOK
			switch {
			case len(up) == 0:
				body.Status = "isolated"
				code = http.StatusServiceUnavailable
			case len(up) < len(nodes):
				body.Status = "degraded"
			default:
				body.Status = "ok"
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(code)
			_ = json.NewEncoder(w).Encode(body)
		})
		mux.HandleFunc("/cluster/owners", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = json.NewEncoder(w).Encode(p.Owners())
		})
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		stop := context.AfterFunc(ctx, func() { srv.Close() })
		defer stop()
		go func() { _ = srv.Serve(aln) }()
		fmt.Printf("gpsproxy: admin on http://%s (/metrics /healthz /cluster/owners)\n", aln.Addr())
	}

	go p.Run(ctx)
	err = p.ServeWire(ctx, ln)
	if err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
