package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Short end-to-end runs of every figure and ablation path: they must
// complete without error on a small window. Output goes to stdout (the
// test harness captures it).
func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("gpsbench end-to-end runs take seconds")
	}
	for _, fig := range []string{"table", "5.1", "5.2"} {
		t.Run(fig, func(t *testing.T) {
			if err := run([]string{"-fig", fig, "-duration", "900", "-step", "10"}); err != nil {
				t.Errorf("run(-fig %s): %v", fig, err)
			}
		})
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("gpsbench end-to-end runs take seconds")
	}
	for _, abl := range []string{"base", "clock", "gls", "direct", "dgps", "smoothing", "noise", "selection"} {
		t.Run(abl, func(t *testing.T) {
			if err := run([]string{"-ablation", abl, "-duration", "900", "-step", "10"}); err != nil {
				t.Errorf("run(-ablation %s): %v", abl, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown fig", []string{"-fig", "9.9"}},
		{"unknown ablation", []string{"-ablation", "nothing"}},
		{"bad flag", []string{"-zap"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestRunWritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end")
	}
	dir := t.TempDir()
	if err := run([]string{"-fig", "5.1", "-duration", "600", "-step", "20", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"srzn", "yyr1", "fai1", "kycp"} {
		data, err := os.ReadFile(filepath.Join(dir, "sweep_"+id+".csv"))
		if err != nil {
			t.Errorf("missing CSV for %s: %v", id, err)
			continue
		}
		if !strings.HasPrefix(string(data), "sats,epochs") {
			t.Errorf("%s CSV header wrong", id)
		}
	}
}

// -metrics-out must dump a Prometheus snapshot covering every solver arm
// the sweeps exercised.
func TestRunWritesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end")
	}
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := run([]string{"-fig", "5.1", "-duration", "600", "-step", "20", "-metrics-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		"# TYPE gps_solve_seconds histogram",
		`gps_solve_seconds_count{solver="NR"}`,
		`gps_solve_seconds_count{solver="DLG"}`,
		"gps_nr_iterations_total",
		"gps_clock_calibrations_total",
		`gps_dlg_solves_total{path="paper"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}

func TestRunPlotFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end")
	}
	if err := run([]string{"-fig", "5.2", "-duration", "600", "-step", "20", "-plot"}); err != nil {
		t.Fatal(err)
	}
}
