// Engine throughput mode: -engine sweeps the multi-receiver fix engine
// over a list of receiver counts and reports steady-state fixes/sec for
// each. Epochs are pregenerated so the measurement isolates the solver
// hot path (linearize → solve → DOP → NMEA) from scenario synthesis,
// and every session is warmed past the clock predictor's calibration
// window before the timed run. -engine-json writes the series as a
// machine-readable file (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gpsdl/internal/engine"
)

// engineBenchConfig holds the -engine-* flag values.
type engineBenchConfig struct {
	receivers []int
	epochs    int
	warmup    int
	solver    string
	workers   int
	seed      int64
	jsonPath  string

	// Live-generation arms: epochs synthesized during the timed run
	// (no pregeneration), with the shared epoch cache off and on, at
	// GOMAXPROCS 1 and 4.
	live          bool
	liveReceivers int
	liveEpochs    int
}

// engineBenchPoint is one receiver-count measurement in the JSON series.
type engineBenchPoint struct {
	Receivers     int     `json:"receivers"`
	Workers       int     `json:"workers"`
	Fixes         uint64  `json:"fixes"`
	SolveFailures uint64  `json:"solve_failures"`
	EpochErrors   uint64  `json:"epoch_errors"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	FixesPerSec   float64 `json:"fixes_per_sec"`
}

// engineLivePoint is one live-generation arm: scenario synthesis runs
// inside the timed loop, isolating the epoch cache's effect on serving
// throughput. Arm is the first field on purpose — scripts/bench_gate.sh
// keys points by the "arm" value preceding their metrics.
type engineLivePoint struct {
	Arm           string  `json:"arm"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Receivers     int     `json:"receivers"`
	Workers       int     `json:"workers"`
	EpochCache    bool    `json:"epoch_cache"`
	Fixes         uint64  `json:"fixes"`
	SolveFailures uint64  `json:"solve_failures"`
	EpochErrors   uint64  `json:"epoch_errors"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	FixesPerSec   float64 `json:"fixes_per_sec"`
}

// engineBenchReport is the -engine-json document.
type engineBenchReport struct {
	Benchmark  string             `json:"benchmark"`
	Solver     string             `json:"solver"`
	Epochs     int                `json:"epochs_per_receiver"`
	Warmup     int                `json:"warmup_epochs"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Series     []engineBenchPoint `json:"series"`
	// LiveSeries must stay after Series: the bench gate treats points
	// before the first "arm" key as the pregenerated sweep.
	LiveSeries []engineLivePoint `json:"live_series,omitempty"`
}

// parseReceiverList parses a comma-separated list of receiver counts.
func parseReceiverList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad receiver count %q (want positive integers, e.g. \"1,2,4,8\")", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty receiver list")
	}
	return out, nil
}

// runEngineBench sweeps the engine across receiver counts and prints a
// fixes/sec table; with cfg.jsonPath it also writes the series as JSON.
func runEngineBench(cfg engineBenchConfig) error {
	report := engineBenchReport{
		Benchmark:  "engine",
		Solver:     cfg.solver,
		Epochs:     cfg.epochs,
		Warmup:     cfg.warmup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Series:     make([]engineBenchPoint, 0, len(cfg.receivers)),
	}
	fmt.Printf("engine throughput: solver=%s epochs/receiver=%d warmup=%d GOMAXPROCS=%d\n",
		cfg.solver, cfg.epochs, cfg.warmup, report.GOMAXPROCS)
	fmt.Printf("%10s %8s %12s %10s %14s\n", "receivers", "workers", "fixes", "elapsed", "fixes/sec")
	for _, r := range cfg.receivers {
		pt, err := benchEngineOnce(cfg, r)
		if err != nil {
			return fmt.Errorf("receivers=%d: %w", r, err)
		}
		report.Series = append(report.Series, pt)
		fmt.Printf("%10d %8d %12d %9.3fs %14.0f\n",
			pt.Receivers, pt.Workers, pt.Fixes, pt.ElapsedSec, pt.FixesPerSec)
	}
	if cfg.live {
		fmt.Printf("live generation: receivers=%d epochs/receiver=%d (no pregeneration)\n",
			cfg.liveReceivers, cfg.liveEpochs)
		fmt.Printf("%14s %6s %8s %12s %10s %14s\n", "arm", "procs", "cache", "fixes", "elapsed", "fixes/sec")
		for _, procs := range []int{1, 4} {
			for _, cache := range []bool{false, true} {
				pt, err := benchEngineLiveOnce(cfg, procs, cache)
				if err != nil {
					return fmt.Errorf("live procs=%d cache=%v: %w", procs, cache, err)
				}
				report.LiveSeries = append(report.LiveSeries, pt)
				fmt.Printf("%14s %6d %8v %12d %9.3fs %14.0f\n",
					pt.Arm, pt.GOMAXPROCS, pt.EpochCache, pt.Fixes, pt.ElapsedSec, pt.FixesPerSec)
			}
		}
	}
	if cfg.live && cfg.solver == "dlg" {
		// DLG covariance-route arms: pregenerated epochs, so the delta
		// between the O(m) Sherman–Morrison fast path (the engine default)
		// and the paper's dense-Cholesky route is the per-fix DLG cost.
		fmt.Printf("DLG covariance routes: receivers=%d epochs/receiver=%d (pregenerated)\n",
			cfg.liveReceivers, cfg.epochs)
		fmt.Printf("%14s %12s %10s %14s\n", "arm", "fixes", "elapsed", "fixes/sec")
		for _, variant := range []string{"fast", "paper"} {
			pt, err := benchEngineVariantOnce(cfg, variant)
			if err != nil {
				return fmt.Errorf("variant %s: %w", variant, err)
			}
			report.LiveSeries = append(report.LiveSeries, pt)
			fmt.Printf("%14s %12d %9.3fs %14.0f\n", pt.Arm, pt.Fixes, pt.ElapsedSec, pt.FixesPerSec)
		}
	}
	if cfg.jsonPath != "" {
		if err := writeEngineJSON(cfg.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// benchEngineLiveOnce measures one live-generation arm: no pregenerated
// epochs, so each timed step pays constellation propagation, visibility,
// light-time emission and noise synthesis before solving. Cache on vs
// off isolates the shared per-epoch snapshot's contribution; GOMAXPROCS
// is pinned per arm and restored afterwards.
func benchEngineLiveOnce(cfg engineBenchConfig, procs int, cache bool) (engineLivePoint, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	eng, err := engine.New(engine.Config{
		Receivers:         cfg.liveReceivers,
		Workers:           procs,
		Solver:            cfg.solver,
		Seed:              cfg.seed,
		DisableEpochCache: !cache,
		Sink:              func(engine.FixEvent) {},
	})
	if err != nil {
		return engineLivePoint{}, err
	}
	ctx := context.Background()
	if cfg.warmup > 0 {
		if err := eng.Run(ctx, cfg.warmup); err != nil {
			return engineLivePoint{}, err
		}
	}
	before := eng.Stats()
	start := time.Now()
	if err := eng.Run(ctx, cfg.liveEpochs); err != nil {
		return engineLivePoint{}, err
	}
	elapsed := time.Since(start).Seconds()
	after := eng.Stats()
	arm := fmt.Sprintf("live-p%d", procs)
	if cache {
		arm = fmt.Sprintf("live-cache-p%d", procs)
	}
	pt := engineLivePoint{
		Arm:           arm,
		GOMAXPROCS:    procs,
		Receivers:     cfg.liveReceivers,
		Workers:       eng.Workers(),
		EpochCache:    cache,
		Fixes:         after.Fixes - before.Fixes,
		SolveFailures: after.SolveFailures - before.SolveFailures,
		EpochErrors:   after.EpochErrors - before.EpochErrors,
		ElapsedSec:    elapsed,
	}
	if elapsed > 0 {
		pt.FixesPerSec = float64(pt.Fixes) / elapsed
	}
	return pt, nil
}

// benchEngineVariantOnce measures one DLG covariance route over
// pregenerated epochs, isolating the solver hot path exactly like the
// main sweep; the series point reuses the live-arm JSON shape so the
// bench gate keys it by its arm name ("dlg-fast", "dlg-paper").
func benchEngineVariantOnce(cfg engineBenchConfig, variant string) (engineLivePoint, error) {
	eng, err := engine.New(engine.Config{
		Receivers:  cfg.liveReceivers,
		Workers:    cfg.workers,
		Solver:     cfg.solver,
		DLGVariant: variant,
		Seed:       cfg.seed,
		Sink:       func(engine.FixEvent) {},
	})
	if err != nil {
		return engineLivePoint{}, err
	}
	pre := cfg.epochs
	if cfg.warmup > pre {
		pre = cfg.warmup
	}
	if err := eng.Pregenerate(pre); err != nil {
		return engineLivePoint{}, err
	}
	ctx := context.Background()
	if cfg.warmup > 0 {
		if err := eng.Run(ctx, cfg.warmup); err != nil {
			return engineLivePoint{}, err
		}
	}
	before := eng.Stats()
	start := time.Now()
	if err := eng.Run(ctx, cfg.epochs); err != nil {
		return engineLivePoint{}, err
	}
	elapsed := time.Since(start).Seconds()
	after := eng.Stats()
	pt := engineLivePoint{
		Arm:           "dlg-" + variant,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Receivers:     cfg.liveReceivers,
		Workers:       eng.Workers(),
		Fixes:         after.Fixes - before.Fixes,
		SolveFailures: after.SolveFailures - before.SolveFailures,
		EpochErrors:   after.EpochErrors - before.EpochErrors,
		ElapsedSec:    elapsed,
	}
	if elapsed > 0 {
		pt.FixesPerSec = float64(pt.Fixes) / elapsed
	}
	return pt, nil
}

// benchEngineOnce measures one receiver count: build, pregenerate, warm
// every session past the predictor calibration window, then time a full
// run. The warm-up epochs are excluded from the timed stats by diffing
// the cumulative counters around the measured run.
func benchEngineOnce(cfg engineBenchConfig, receivers int) (engineBenchPoint, error) {
	eng, err := engine.New(engine.Config{
		Receivers: receivers,
		Workers:   cfg.workers,
		Solver:    cfg.solver,
		Seed:      cfg.seed,
		Sink:      func(engine.FixEvent) {},
	})
	if err != nil {
		return engineBenchPoint{}, err
	}
	pre := cfg.epochs
	if cfg.warmup > pre {
		pre = cfg.warmup
	}
	if err := eng.Pregenerate(pre); err != nil {
		return engineBenchPoint{}, err
	}
	ctx := context.Background()
	// Epoch indices restart at 0 every Run, so the warm-up pass trains
	// the clock predictors on the same epochs the timed pass replays.
	if cfg.warmup > 0 {
		if err := eng.Run(ctx, cfg.warmup); err != nil {
			return engineBenchPoint{}, err
		}
	}
	before := eng.Stats()
	start := time.Now()
	if err := eng.Run(ctx, cfg.epochs); err != nil {
		return engineBenchPoint{}, err
	}
	elapsed := time.Since(start).Seconds()
	after := eng.Stats()
	pt := engineBenchPoint{
		Receivers:     receivers,
		Workers:       eng.Workers(),
		Fixes:         after.Fixes - before.Fixes,
		SolveFailures: after.SolveFailures - before.SolveFailures,
		EpochErrors:   after.EpochErrors - before.EpochErrors,
		ElapsedSec:    elapsed,
	}
	if elapsed > 0 {
		pt.FixesPerSec = float64(pt.Fixes) / elapsed
	}
	return pt, nil
}

// writeEngineJSON dumps the throughput series for EXPERIMENTS.md /
// regression tracking.
func writeEngineJSON(path string, report engineBenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
