// Engine throughput mode: -engine sweeps the multi-receiver fix engine
// over a list of receiver counts and reports steady-state fixes/sec for
// each. Epochs are pregenerated so the measurement isolates the solver
// hot path (linearize → solve → DOP → NMEA) from scenario synthesis,
// and every session is warmed past the clock predictor's calibration
// window before the timed run. -engine-json writes the series as a
// machine-readable file (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gpsdl/internal/engine"
)

// engineBenchConfig holds the -engine-* flag values.
type engineBenchConfig struct {
	receivers []int
	epochs    int
	warmup    int
	solver    string
	workers   int
	seed      int64
	jsonPath  string
}

// engineBenchPoint is one receiver-count measurement in the JSON series.
type engineBenchPoint struct {
	Receivers     int     `json:"receivers"`
	Workers       int     `json:"workers"`
	Fixes         uint64  `json:"fixes"`
	SolveFailures uint64  `json:"solve_failures"`
	EpochErrors   uint64  `json:"epoch_errors"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	FixesPerSec   float64 `json:"fixes_per_sec"`
}

// engineBenchReport is the -engine-json document.
type engineBenchReport struct {
	Benchmark  string             `json:"benchmark"`
	Solver     string             `json:"solver"`
	Epochs     int                `json:"epochs_per_receiver"`
	Warmup     int                `json:"warmup_epochs"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Series     []engineBenchPoint `json:"series"`
}

// parseReceiverList parses a comma-separated list of receiver counts.
func parseReceiverList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad receiver count %q (want positive integers, e.g. \"1,2,4,8\")", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty receiver list")
	}
	return out, nil
}

// runEngineBench sweeps the engine across receiver counts and prints a
// fixes/sec table; with cfg.jsonPath it also writes the series as JSON.
func runEngineBench(cfg engineBenchConfig) error {
	report := engineBenchReport{
		Benchmark:  "engine",
		Solver:     cfg.solver,
		Epochs:     cfg.epochs,
		Warmup:     cfg.warmup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Series:     make([]engineBenchPoint, 0, len(cfg.receivers)),
	}
	fmt.Printf("engine throughput: solver=%s epochs/receiver=%d warmup=%d GOMAXPROCS=%d\n",
		cfg.solver, cfg.epochs, cfg.warmup, report.GOMAXPROCS)
	fmt.Printf("%10s %8s %12s %10s %14s\n", "receivers", "workers", "fixes", "elapsed", "fixes/sec")
	for _, r := range cfg.receivers {
		pt, err := benchEngineOnce(cfg, r)
		if err != nil {
			return fmt.Errorf("receivers=%d: %w", r, err)
		}
		report.Series = append(report.Series, pt)
		fmt.Printf("%10d %8d %12d %9.3fs %14.0f\n",
			pt.Receivers, pt.Workers, pt.Fixes, pt.ElapsedSec, pt.FixesPerSec)
	}
	if cfg.jsonPath != "" {
		if err := writeEngineJSON(cfg.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// benchEngineOnce measures one receiver count: build, pregenerate, warm
// every session past the predictor calibration window, then time a full
// run. The warm-up epochs are excluded from the timed stats by diffing
// the cumulative counters around the measured run.
func benchEngineOnce(cfg engineBenchConfig, receivers int) (engineBenchPoint, error) {
	eng, err := engine.New(engine.Config{
		Receivers: receivers,
		Workers:   cfg.workers,
		Solver:    cfg.solver,
		Seed:      cfg.seed,
		Sink:      func(engine.FixEvent) {},
	})
	if err != nil {
		return engineBenchPoint{}, err
	}
	pre := cfg.epochs
	if cfg.warmup > pre {
		pre = cfg.warmup
	}
	if err := eng.Pregenerate(pre); err != nil {
		return engineBenchPoint{}, err
	}
	ctx := context.Background()
	// Epoch indices restart at 0 every Run, so the warm-up pass trains
	// the clock predictors on the same epochs the timed pass replays.
	if cfg.warmup > 0 {
		if err := eng.Run(ctx, cfg.warmup); err != nil {
			return engineBenchPoint{}, err
		}
	}
	before := eng.Stats()
	start := time.Now()
	if err := eng.Run(ctx, cfg.epochs); err != nil {
		return engineBenchPoint{}, err
	}
	elapsed := time.Since(start).Seconds()
	after := eng.Stats()
	pt := engineBenchPoint{
		Receivers:     receivers,
		Workers:       eng.Workers(),
		Fixes:         after.Fixes - before.Fixes,
		SolveFailures: after.SolveFailures - before.SolveFailures,
		EpochErrors:   after.EpochErrors - before.EpochErrors,
		ElapsedSec:    elapsed,
	}
	if elapsed > 0 {
		pt.FixesPerSec = float64(pt.Fixes) / elapsed
	}
	return pt, nil
}

// writeEngineJSON dumps the throughput series for EXPERIMENTS.md /
// regression tracking.
func writeEngineJSON(path string, report engineBenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
