// Fault-degradation mode: -faults sweeps a fault program over increasing
// intensity (Program.Scale) and measures how gracefully each solver
// degrades: availability (epochs that produced a real fix), coasting and
// failure rates, mean position error of the surviving fixes, and the
// paper's accuracy rate η (eq. 5-2) against the NR baseline at the same
// intensity. -faults-json writes the series as BENCH_faults.json.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"gpsdl/internal/engine"
	"gpsdl/internal/eval"
	"gpsdl/internal/fault"
	"gpsdl/internal/scenario"
)

// faultSweepIntensities is the x-axis of the degradation sweep: 0 is the
// fault-free baseline, 1 is the program as written.
var faultSweepIntensities = []float64{0, 0.25, 0.5, 0.75, 1}

// faultSweepSolvers are the chain primaries compared per intensity. NR is
// the eq. 5-2 reference; DLG is the paper's headline algorithm; "dlg-w"
// is DLG with C/N0 weighting plus the innovation-outlier disruption
// detector — the arm that survives the multi-satellite spoof and jam
// segments single-exclusion RAIM cannot resolve.
var faultSweepSolvers = []string{"nr", "dlg", "dlg-w"}

// defaultFaultSpec is the reference adversarial program: a satellite
// dropout, a gross step fault (RAIM bait), a diverging ramp, a wideband
// multipath burst, a receiver clock jump, an occlusion shrinking the sky
// below the 4-satellite solver minimum, a two-satellite coherent spoof
// (defeats single-fault exclusion), and a wideband jam that degrades
// both the pseudo-ranges and the advertised C/N0.
const defaultFaultSpec = "drop:prn=7,from=60,until=180;" +
	"step:prn=12,bias=350,from=120,until=240;" +
	"ramp:prn=5,rate=2,from=150,until=300;" +
	"burst:sigma=10,from=200,until=280;" +
	"clockjump:at=260,bias=2e-4;" +
	"shrink:n=3,from=320,until=380;" +
	"spoof:n=2,bias=300,from=400,until=480;" +
	"jam:sigma=15,from=500,until=560"

// faultBenchConfig holds the -faults-* flag values.
type faultBenchConfig struct {
	spec      string
	receivers int
	epochs    int
	workers   int
	seed      int64
	faultSeed int64
	jsonPath  string
}

// faultBenchPoint is one (intensity, solver) measurement.
type faultBenchPoint struct {
	Intensity      float64 `json:"intensity"`
	Solver         string  `json:"solver"`
	Epochs         int     `json:"epochs"` // epoch slots across all receivers
	Fixes          uint64  `json:"fixes"`
	CoastFixes     uint64  `json:"coast_fixes"`
	SolveFailures  uint64  `json:"solve_failures"`
	FaultEvents    uint64  `json:"fault_events"`
	Fallbacks      uint64  `json:"fallbacks"`
	SuspectFixes   uint64  `json:"suspect_fixes"`
	RAIMExclusions uint64  `json:"raim_exclusions"`
	// AvailabilityPct counts epochs that produced a real (non-coast)
	// fix; coasting epochs are flagged dead reckoning, not availability.
	AvailabilityPct float64 `json:"availability_pct"`
	// MeanErrorM is the mean 3D position error of the real fixes against
	// the receiver's ground-truth station.
	MeanErrorM float64 `json:"mean_error_m"`
	// EtaPct is eq. 5-2's accuracy rate against the NR arm at the same
	// intensity (100 for the NR rows themselves).
	EtaPct float64 `json:"eta_pct"`
}

// faultBenchReport is the -faults-json document.
type faultBenchReport struct {
	Benchmark   string            `json:"benchmark"`
	Spec        string            `json:"spec"`
	Seed        int64             `json:"seed"`
	FaultSeed   int64             `json:"fault_seed"`
	Receivers   int               `json:"receivers"`
	Epochs      int               `json:"epochs_per_receiver"`
	Intensities []float64         `json:"intensities"`
	Series      []faultBenchPoint `json:"series"`
}

// runFaultBench sweeps the program over intensity × solver and prints the
// degradation table; with cfg.jsonPath it also writes the series as JSON.
func runFaultBench(cfg faultBenchConfig) error {
	prog, err := fault.ParseSpec(cfg.spec)
	if err != nil {
		return fmt.Errorf("-faults-spec: %w", err)
	}
	report := faultBenchReport{
		Benchmark:   "faults",
		Spec:        prog.String(),
		Seed:        cfg.seed,
		FaultSeed:   cfg.faultSeed,
		Receivers:   cfg.receivers,
		Epochs:      cfg.epochs,
		Intensities: faultSweepIntensities,
	}
	fmt.Printf("fault degradation sweep: receivers=%d epochs/receiver=%d seed=%d fault-seed=%d\n",
		cfg.receivers, cfg.epochs, cfg.seed, cfg.faultSeed)
	fmt.Printf("program: %s\n", report.Spec)
	fmt.Printf("%9s %7s %8s %7s %6s %8s %10s %8s %8s %10s %9s\n",
		"intensity", "solver", "fixes", "coast", "fail", "avail%", "d_err(m)", "eta%", "faults", "fallbacks", "suspects")
	for _, s := range faultSweepIntensities {
		var nrErr float64
		for _, solver := range faultSweepSolvers {
			pt, err := benchFaultsOnce(cfg, prog.Scale(s), s, solver)
			if err != nil {
				return fmt.Errorf("intensity=%g solver=%s: %w", s, solver, err)
			}
			if solver == "nr" {
				nrErr = pt.MeanErrorM
			}
			pt.EtaPct = eval.AccuracyRate(pt.MeanErrorM, nrErr)
			report.Series = append(report.Series, pt)
			fmt.Printf("%9.2f %7s %8d %7d %6d %7.2f%% %10.3f %8.1f %8d %10d %9d\n",
				pt.Intensity, pt.Solver, pt.Fixes, pt.CoastFixes, pt.SolveFailures,
				pt.AvailabilityPct, pt.MeanErrorM, pt.EtaPct,
				pt.FaultEvents, pt.Fallbacks, pt.SuspectFixes)
		}
	}
	if cfg.jsonPath != "" {
		if err := writeFaultJSON(cfg.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// benchFaultsOnce runs one (program, solver) combination through the fix
// engine and reduces the fix stream to a degradation point. The sink is
// called from shard goroutines, but a receiver is pinned to one shard, so
// the per-receiver accumulators need no locking.
func benchFaultsOnce(cfg faultBenchConfig, prog fault.Program, intensity float64, solver string) (faultBenchPoint, error) {
	stations := scenario.Table51Stations()
	errSum := make([]float64, cfg.receivers)
	errN := make([]int, cfg.receivers)
	// "dlg-w" is the weighted arm: a DLG primary with C/N0 → σ mapping
	// and the disruption detector down-weighting innovation outliers.
	primary, weighted := solver, false
	if solver == "dlg-w" {
		primary, weighted = "dlg", true
	}
	eng, err := engine.New(engine.Config{
		Receivers:  cfg.receivers,
		Workers:    cfg.workers,
		Solver:     primary,
		Weighting:  weighted,
		Disruption: weighted,
		Seed:       cfg.seed,
		Stations:   stations,
		Faults:     prog,
		FaultSeed:  cfg.faultSeed,
		Sink: func(e engine.FixEvent) {
			if e.Err != nil || e.Coast {
				return
			}
			truth := stations[e.Receiver%len(stations)].Pos
			errSum[e.Receiver] += e.Sol.Pos.DistanceTo(truth)
			errN[e.Receiver]++
		},
	})
	if err != nil {
		return faultBenchPoint{}, err
	}
	if err := eng.Pregenerate(cfg.epochs); err != nil {
		return faultBenchPoint{}, err
	}
	if err := eng.Run(context.Background(), cfg.epochs); err != nil {
		return faultBenchPoint{}, err
	}
	st := eng.Stats()
	total := cfg.epochs * cfg.receivers
	pt := faultBenchPoint{
		Intensity:      intensity,
		Solver:         solver,
		Epochs:         total,
		Fixes:          st.Fixes,
		CoastFixes:     st.CoastFixes,
		SolveFailures:  st.SolveFailures,
		FaultEvents:    st.FaultEvents,
		Fallbacks:      st.Fallbacks,
		SuspectFixes:   st.SuspectFixes,
		RAIMExclusions: st.RAIMExclusions,
	}
	if total > 0 {
		pt.AvailabilityPct = 100 * float64(st.Fixes) / float64(total)
	}
	var sum float64
	var n int
	for r := range errSum {
		sum += errSum[r]
		n += errN[r]
	}
	if n > 0 {
		pt.MeanErrorM = sum / float64(n)
	}
	return pt, nil
}

// writeFaultJSON dumps the degradation series (BENCH_faults.json).
func writeFaultJSON(path string, report faultBenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
