// Journal overhead mode: -journal runs the engine twice over identical
// pregenerated epochs — flight journal off, then on (recording to a
// real file, fsyncs included) — and reports the throughput cost of
// always-on black-box recording. The acceptance budget is < 5%;
// -journal-json writes both arms plus the computed overhead as
// BENCH_journal.json for regression tracking.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"gpsdl/internal/engine"
	"gpsdl/internal/journal"
)

// journalBenchConfig holds the -journal-* flag values.
type journalBenchConfig struct {
	receivers int
	epochs    int
	warmup    int
	solver    string
	workers   int
	syncEvery int
	trials    int
	seed      int64
	jsonPath  string
}

// journalBenchArm is one measured arm (journal off or on).
type journalBenchArm struct {
	Journal       bool    `json:"journal"`
	Fixes         uint64  `json:"fixes"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	FixesPerSec   float64 `json:"fixes_per_sec"`
	JournalBytes  uint64  `json:"journal_bytes,omitempty"`
	JournalFrames uint64  `json:"journal_frames,omitempty"`
	Records       uint64  `json:"journal_records,omitempty"`
}

// journalBenchReport is the -journal-json document.
type journalBenchReport struct {
	Benchmark   string          `json:"benchmark"`
	Solver      string          `json:"solver"`
	Receivers   int             `json:"receivers"`
	Epochs      int             `json:"epochs_per_receiver"`
	Warmup      int             `json:"warmup_epochs"`
	Trials      int             `json:"trials"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Off         journalBenchArm `json:"off"`
	On          journalBenchArm `json:"on"`
	OverheadPct float64         `json:"overhead_pct"`
}

// runJournalBench measures the journal-on/off pair and reports. Each
// trial runs the two arms back to back and yields one paired overhead
// figure; the median trial is reported. Pairing cancels machine-load
// drift (both arms of a trial see the same conditions) and the median
// sheds one-sided outliers that best-of-N would keep.
func runJournalBench(cfg journalBenchConfig) error {
	if cfg.trials < 1 {
		cfg.trials = 1
	}
	fmt.Printf("journal overhead: solver=%s receivers=%d epochs/receiver=%d warmup=%d trials=%d GOMAXPROCS=%d\n",
		cfg.solver, cfg.receivers, cfg.epochs, cfg.warmup, cfg.trials, runtime.GOMAXPROCS(0))
	dir, err := os.MkdirTemp("", "gpsbench-journal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	type pairedTrial struct {
		off, on  journalBenchArm
		overhead float64
	}
	trials := make([]pairedTrial, 0, cfg.trials)
	for trial := 0; trial < cfg.trials; trial++ {
		o, err := benchJournalArm(cfg, "")
		if err != nil {
			return fmt.Errorf("journal off: %w", err)
		}
		j, err := benchJournalArm(cfg, filepath.Join(dir, fmt.Sprintf("bench-%d.gpsj", trial)))
		if err != nil {
			return fmt.Errorf("journal on: %w", err)
		}
		pt := pairedTrial{off: o, on: j}
		if o.FixesPerSec > 0 {
			pt.overhead = 100 * (o.FixesPerSec - j.FixesPerSec) / o.FixesPerSec
		}
		fmt.Printf("  trial %d: off %.0f fixes/sec, on %.0f fixes/sec, overhead %.2f%%\n",
			trial+1, o.FixesPerSec, j.FixesPerSec, pt.overhead)
		trials = append(trials, pt)
	}
	sort.Slice(trials, func(i, j int) bool { return trials[i].overhead < trials[j].overhead })
	median := trials[len(trials)/2]
	off, on := median.off, median.on
	report := journalBenchReport{
		Benchmark:  "journal",
		Solver:     cfg.solver,
		Receivers:  cfg.receivers,
		Epochs:     cfg.epochs,
		Warmup:     cfg.warmup,
		Trials:     cfg.trials,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Off:        off,
		On:         on,
	}
	report.OverheadPct = median.overhead
	fmt.Printf("%8s %12s %10s %14s %14s\n", "journal", "fixes", "elapsed", "fixes/sec", "bytes")
	for _, arm := range []journalBenchArm{off, on} {
		fmt.Printf("%8v %12d %9.3fs %14.0f %14d\n",
			arm.Journal, arm.Fixes, arm.ElapsedSec, arm.FixesPerSec, arm.JournalBytes)
	}
	fmt.Printf("journal overhead: %.2f%% (budget < 5%%)\n", report.OverheadPct)
	if cfg.jsonPath != "" {
		if err := writeJournalJSON(cfg.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// benchJournalArm times one engine run; journalPath == "" is the
// control arm. Both arms run with the quality layer on — the gpsserve
// engine-mode default — so the delta isolates what journaling itself
// adds (per-satellite residual capture, delta/varint encoding, framed
// file writes and fsyncs) rather than re-measuring the shared fix-
// quality assessment.
func benchJournalArm(cfg journalBenchConfig, journalPath string) (journalBenchArm, error) {
	ecfg := engine.Config{
		Receivers: cfg.receivers,
		Workers:   cfg.workers,
		Solver:    cfg.solver,
		Seed:      cfg.seed,
		Quality:   &engine.QualityConfig{},
		Sink:      func(engine.FixEvent) {},
	}
	arm := journalBenchArm{Journal: journalPath != ""}
	if journalPath != "" {
		f, err := os.Create(journalPath)
		if err != nil {
			return arm, err
		}
		defer f.Close()
		ecfg.JournalSink = f
		ecfg.JournalOptions = journal.Options{SyncEvery: cfg.syncEvery}
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return arm, err
	}
	pre := cfg.epochs
	if cfg.warmup > pre {
		pre = cfg.warmup
	}
	if err := eng.Pregenerate(pre); err != nil {
		return arm, err
	}
	ctx := context.Background()
	if cfg.warmup > 0 {
		if err := eng.Run(ctx, cfg.warmup); err != nil {
			return arm, err
		}
	}
	before := eng.Stats()
	start := time.Now()
	if err := eng.Run(ctx, cfg.epochs); err != nil {
		return arm, err
	}
	arm.ElapsedSec = time.Since(start).Seconds()
	after := eng.Stats()
	arm.Fixes = after.Fixes - before.Fixes
	if arm.ElapsedSec > 0 {
		arm.FixesPerSec = float64(arm.Fixes) / arm.ElapsedSec
	}
	if jw := eng.Journal(); jw != nil {
		if err := jw.Close(); err != nil {
			return arm, err
		}
		arm.JournalFrames, arm.Records, arm.JournalBytes = jw.Stats()
	}
	return arm, nil
}

// writeJournalJSON dumps the overhead comparison.
func writeJournalJSON(path string, report journalBenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
