// Broadcast fan-out mode: -broadcast compares the two serving
// encodings the repo ships — NMEA text (one GGA+RMC pair per fix,
// re-materialized per epoch the way the TCP broadcaster serves it) and
// the binary delta-encoded wire protocol (encode once per epoch into a
// shared buffer, write the same frame to every subscriber) — across a
// sweep of subscriber counts. The fix set is produced once by a real
// engine run, so both arms serve byte-for-byte the same epochs; the
// timed loops then do exactly the per-epoch serving work: materialize
// the payload, then copy it into every client's buffer. Reported per
// arm × client count: delivered fixes/sec and payload bytes/sec, plus
// the bytes-per-fix ratio the delta encoding buys. -broadcast-json
// writes the sweep as BENCH_broadcast.json for regression tracking.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"gpsdl/internal/engine"
	"gpsdl/internal/wire"
)

// broadcastBenchConfig holds the -broadcast-* flag values.
type broadcastBenchConfig struct {
	receivers int
	epochs    int
	clients   []int
	trials    int
	seed      int64
	jsonPath  string
}

// broadcastEvent is one epoch's payload in both encodings' source form.
type broadcastEvent struct {
	gga, rmc []byte
	fix      wire.Fix
}

// broadcastPoint is one measured (arm, clients) cell.
type broadcastPoint struct {
	Arm          string  `json:"arm"` // "nmea" | "wire"
	Clients      int     `json:"clients"`
	Fixes        uint64  `json:"fixes"` // delivered = epochs × clients
	ElapsedSec   float64 `json:"elapsed_sec"`
	FixesPerSec  float64 `json:"fixes_per_sec"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
	BytesPerFix  float64 `json:"bytes_per_fix"`
	PayloadBytes uint64  `json:"payload_bytes"`
}

// broadcastReport is the -broadcast-json document.
type broadcastReport struct {
	Benchmark  string           `json:"benchmark"`
	Receivers  int              `json:"receivers"`
	Epochs     int              `json:"epochs_per_receiver"`
	Events     int              `json:"events"`
	Trials     int              `json:"trials"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Series     []broadcastPoint `json:"series"`
}

// collectBroadcastEvents runs the engine once and snapshots every good
// fix in both source encodings. GGA/RMC point into per-session reused
// buffers, so they are copied here; the wire.Fix is built through the
// same converter the serving node publishes with.
func collectBroadcastEvents(cfg broadcastBenchConfig) ([]broadcastEvent, error) {
	var mu sync.Mutex
	var events []broadcastEvent
	ecfg := engine.Config{
		Receivers: cfg.receivers,
		Seed:      cfg.seed,
		Sink: func(e engine.FixEvent) {
			if e.Err != nil {
				return
			}
			ev := broadcastEvent{
				gga: append([]byte(nil), e.GGA...),
				rmc: append([]byte(nil), e.RMC...),
				fix: e.Wire(),
			}
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return nil, err
	}
	if err := eng.Pregenerate(cfg.epochs); err != nil {
		return nil, err
	}
	if err := eng.Run(context.Background(), cfg.epochs); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("engine produced no fixes")
	}
	return events, nil
}

// benchBroadcastArm times one (arm, clients) cell: per event,
// materialize the payload the way that serving path does, then copy it
// into every client's buffer. The per-client copy is the fan-out cost
// both paths share; the arms differ in what gets materialized (two
// fresh text strings vs one delta frame in a reused buffer) and in how
// many bytes each client must absorb.
func benchBroadcastArm(arm string, events []broadcastEvent, clients int) broadcastPoint {
	pt := broadcastPoint{Arm: arm, Clients: clients}
	// Size each client's slab for the largest single payload; copying
	// into it models the per-subscriber queue/socket write.
	maxPayload := 0
	for _, ev := range events {
		if n := len(ev.gga) + len(ev.rmc); n > maxPayload {
			maxPayload = n
		}
	}
	// A framed FIX is far smaller than any sentence pair; leave
	// generous headroom so the slab never bounds either arm.
	maxPayload += 256
	slabs := make([][]byte, clients)
	for i := range slabs {
		slabs[i] = make([]byte, maxPayload)
	}
	var payload uint64
	start := time.Now()
	switch arm {
	case "nmea":
		for _, ev := range events {
			// The text broadcaster re-materializes each sentence as a
			// string before enqueueing it (one alloc per sentence).
			gga, rmc := string(ev.gga), string(ev.rmc)
			n := len(gga) + len(rmc)
			for _, slab := range slabs {
				copy(slab, gga)
				copy(slab[len(gga):], rmc)
			}
			payload += uint64(n) * uint64(clients)
		}
	case "wire":
		enc := &wire.FixEncoder{}
		var buf []byte
		for i := range events {
			// Encode once into the shared buffer; every subscriber gets
			// the same frame bytes.
			buf, _ = enc.AppendFix(buf[:0], &events[i].fix)
			for _, slab := range slabs {
				copy(slab, buf)
			}
			payload += uint64(len(buf)) * uint64(clients)
		}
	}
	pt.ElapsedSec = time.Since(start).Seconds()
	pt.Fixes = uint64(len(events)) * uint64(clients)
	pt.PayloadBytes = payload
	if pt.ElapsedSec > 0 {
		pt.FixesPerSec = float64(pt.Fixes) / pt.ElapsedSec
		pt.BytesPerSec = float64(payload) / pt.ElapsedSec
	}
	if pt.Fixes > 0 {
		pt.BytesPerFix = float64(payload) / float64(pt.Fixes)
	}
	return pt
}

// runBroadcastBench sweeps both arms across the client counts. Each
// cell keeps its fastest of -broadcast-trials runs (pure CPU loops, so
// best-of-N discards scheduler noise rather than hiding real cost).
func runBroadcastBench(cfg broadcastBenchConfig) error {
	if cfg.trials < 1 {
		cfg.trials = 1
	}
	fmt.Printf("broadcast fan-out: receivers=%d epochs/receiver=%d clients=%v trials=%d GOMAXPROCS=%d\n",
		cfg.receivers, cfg.epochs, cfg.clients, cfg.trials, runtime.GOMAXPROCS(0))
	events, err := collectBroadcastEvents(cfg)
	if err != nil {
		return err
	}
	report := broadcastReport{
		Benchmark:  "broadcast",
		Receivers:  cfg.receivers,
		Epochs:     cfg.epochs,
		Events:     len(events),
		Trials:     cfg.trials,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%6s %8s %12s %10s %14s %14s %12s\n",
		"arm", "clients", "delivered", "elapsed", "fixes/sec", "bytes/sec", "bytes/fix")
	for _, arm := range []string{"nmea", "wire"} {
		for _, clients := range cfg.clients {
			best := broadcastPoint{}
			for trial := 0; trial < cfg.trials; trial++ {
				pt := benchBroadcastArm(arm, events, clients)
				if trial == 0 || pt.FixesPerSec > best.FixesPerSec {
					best = pt
				}
			}
			report.Series = append(report.Series, best)
			fmt.Printf("%6s %8d %12d %9.3fs %14.0f %14.0f %12.1f\n",
				best.Arm, best.Clients, best.Fixes, best.ElapsedSec,
				best.FixesPerSec, best.BytesPerSec, best.BytesPerFix)
		}
	}
	// The headline the wire protocol exists for: the same fixes in a
	// fraction of the bytes.
	ratio := bytesPerFix(report.Series, "nmea") / bytesPerFix(report.Series, "wire")
	fmt.Printf("wire frames carry the same fixes in %.1fx fewer bytes than NMEA text\n", ratio)
	if cfg.jsonPath != "" {
		if err := writeBroadcastJSON(cfg.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// bytesPerFix averages an arm's bytes-per-fix across its client counts.
func bytesPerFix(series []broadcastPoint, arm string) float64 {
	var sum float64
	var n int
	for _, pt := range series {
		if pt.Arm == arm {
			sum += pt.BytesPerFix
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// writeBroadcastJSON dumps the sweep.
func writeBroadcastJSON(path string, report broadcastReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// parseClientList parses the -broadcast-clients csv.
func parseClientList(s string) ([]int, error) {
	counts, err := parseReceiverList(s)
	if err != nil {
		return nil, err
	}
	sort.Ints(counts)
	return counts, nil
}
