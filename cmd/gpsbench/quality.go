// Solution-quality mode: -quality runs each solver through a set of
// canonical degradation scenarios (clean sky, wideband noise burst,
// gross step fault, sky occlusion, clock jump) with the engine's quality
// layer enabled, and reports the resulting quality digests and SLO
// verdicts: availability, χ² consistency pass rate, residual-RMS
// quantiles, DOP, clock-innovation extremes, and whether the default
// error budgets would have paged. -quality-json writes the series as
// BENCH_quality.json (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gpsdl/internal/engine"
	"gpsdl/internal/fault"
	"gpsdl/internal/quality"
	"gpsdl/internal/slo"
)

// qualityScenario is one degradation class of the sweep. The fault
// windows are expressed as fractions of the run so the sweep scales with
// -quality-epochs.
type qualityScenario struct {
	name string
	spec func(epochs int) string // fault spec; "" = clean
}

// qualitySweepScenarios spans the canonical failure classes: quiet
// quality rot (burst), a RAIM-visible gross fault (step), geometry
// collapse (shrink), and a timebase discontinuity (clockjump), bracketed
// by the clean-sky baseline.
var qualitySweepScenarios = []qualityScenario{
	{"clean", func(int) string { return "" }},
	{"burst", func(n int) string {
		return fmt.Sprintf("burst:sigma=10,from=%d,until=%d", n/6, 5*n/6)
	}},
	// PRN 14 is visible from every Table 5.1 station, so the step fault
	// bites at all receivers.
	{"step", func(n int) string {
		return fmt.Sprintf("step:prn=14,bias=350,from=%d,until=%d", n/6, 5*n/6)
	}},
	{"shrink", func(n int) string {
		return fmt.Sprintf("shrink:n=4,from=%d,until=%d", n/6, 5*n/6)
	}},
	{"clockjump", func(n int) string {
		return fmt.Sprintf("clockjump:at=%d,bias=2e-4;clockjump:at=%d,bias=-1e-4", n/4, n/2)
	}},
}

// qualityBenchConfig holds the -quality-* flag values.
type qualityBenchConfig struct {
	receivers int
	epochs    int
	solvers   []string
	workers   int
	seed      int64
	faultSeed int64
	jsonPath  string
}

// qualityBenchPoint is one (scenario, solver) measurement: the fleet
// quality digest over the whole run plus the SLO verdict it produced.
type qualityBenchPoint struct {
	Scenario string `json:"scenario"`
	Spec     string `json:"spec,omitempty"`
	Solver   string `json:"solver"`
	// Digest is the fleet-merged quality window reduction (the window
	// spans the entire run, so nothing is evicted).
	Digest quality.Digest `json:"digest"`
	// Worst and Objectives are the SLO verdict under the default error
	// budgets at the end of the run.
	Worst      slo.State    `json:"worst"`
	Objectives []slo.Status `json:"objectives"`
	// SLODowngrades counts healthy→degraded transitions forced by a
	// paging objective during the run.
	SLODowngrades uint64 `json:"slo_downgrades"`
}

// qualityBenchReport is the -quality-json document.
type qualityBenchReport struct {
	Benchmark string              `json:"benchmark"`
	Seed      int64               `json:"seed"`
	FaultSeed int64               `json:"fault_seed"`
	Receivers int                 `json:"receivers"`
	Epochs    int                 `json:"epochs_per_receiver"`
	Series    []qualityBenchPoint `json:"series"`
}

// runQualityBench sweeps scenario × solver and prints the quality table;
// with cfg.jsonPath it also writes the series as JSON.
func runQualityBench(cfg qualityBenchConfig) error {
	report := qualityBenchReport{
		Benchmark: "quality",
		Seed:      cfg.seed,
		FaultSeed: cfg.faultSeed,
		Receivers: cfg.receivers,
		Epochs:    cfg.epochs,
	}
	fmt.Printf("solution-quality sweep: receivers=%d epochs/receiver=%d seed=%d fault-seed=%d\n",
		cfg.receivers, cfg.epochs, cfg.seed, cfg.faultSeed)
	fmt.Printf("%10s %9s %7s %7s %7s %7s %7s %6s %6s %8s %6s %10s\n",
		"scenario", "solver", "avail%", "chi2%", "p50(m)", "p95(m)", "p99(m)",
		"pdop", "excl%", "clkmax", "slo", "downgrades")
	for _, sc := range qualitySweepScenarios {
		spec := sc.spec(cfg.epochs)
		for _, solver := range cfg.solvers {
			pt, err := benchQualityOnce(cfg, sc.name, spec, solver)
			if err != nil {
				return fmt.Errorf("scenario=%s solver=%s: %w", sc.name, solver, err)
			}
			report.Series = append(report.Series, pt)
			d := pt.Digest
			fmt.Printf("%10s %9s %6.2f%% %6.2f%% %7.2f %7.2f %7.2f %6.2f %5.2f%% %8.2f %6s %10d\n",
				pt.Scenario, pt.Solver,
				100*float64(d.Availability), 100*float64(d.Chi2PassRate),
				float64(d.RMSP50), float64(d.RMSP95), float64(d.RMSP99),
				float64(d.PDOPMean), 100*float64(d.ExcludedRate), float64(d.ClockMax),
				pt.Worst, pt.SLODowngrades)
		}
	}
	if cfg.jsonPath != "" {
		if err := writeQualityJSON(cfg.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// benchQualityOnce measures one (scenario, solver) cell: the quality
// window spans the whole run and snapshots publish every epoch, so the
// digest is the exact distribution over all epochs of all receivers.
func benchQualityOnce(cfg qualityBenchConfig, name, spec, solver string) (qualityBenchPoint, error) {
	var prog fault.Program
	if spec != "" {
		var err error
		prog, err = fault.ParseSpec(spec)
		if err != nil {
			return qualityBenchPoint{}, err
		}
	}
	objs := slo.DefaultObjectives()
	eng, err := engine.New(engine.Config{
		Receivers: cfg.receivers,
		Workers:   cfg.workers,
		Solver:    solver,
		Seed:      cfg.seed,
		Faults:    prog,
		FaultSeed: cfg.faultSeed,
		Quality: &engine.QualityConfig{
			Window:     cfg.epochs,
			EvalEvery:  1,
			Objectives: objs,
		},
	})
	if err != nil {
		return qualityBenchPoint{}, err
	}
	if err := eng.Run(context.Background(), cfg.epochs); err != nil {
		return qualityBenchPoint{}, err
	}
	fq := eng.Quality(1)
	return qualityBenchPoint{
		Scenario:      name,
		Spec:          spec,
		Solver:        solver,
		Digest:        fq.Digest,
		Worst:         fq.Worst,
		Objectives:    fq.Objectives,
		SLODowngrades: eng.Stats().SLODowngrades,
	}, nil
}

// writeQualityJSON dumps the sweep report.
func writeQualityJSON(path string, report qualityBenchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// parseSolverList parses a comma-separated solver list.
func parseSolverList(s string) ([]string, error) {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(strings.ToLower(f))
		if f == "" {
			continue
		}
		switch f {
		case "nr", "dlo", "dlg", "bancroft":
			out = append(out, f)
		default:
			return nil, fmt.Errorf("unknown solver %q (want nr, dlo, dlg or bancroft)", f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty solver list")
	}
	return out, nil
}
