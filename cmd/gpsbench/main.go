// Command gpsbench regenerates every table and figure of the paper's
// evaluation (Section 5) plus the ablation studies of the Section 6
// extensions:
//
//	gpsbench -fig table          # Table 5.1 (dataset specifications)
//	gpsbench -fig 5.1            # Fig 5.1 a-d (execution time rates)
//	gpsbench -fig 5.2            # Fig 5.2 a-d (accuracy rates)
//	gpsbench -fig all            # everything above
//	gpsbench -ablation base      # A1: base-satellite selection
//	gpsbench -ablation clock     # A2: clock-predictor quality
//	gpsbench -ablation gls       # A3: GLS covariance fast paths
//	gpsbench -ablation direct    # A4: direct baselines + NR robustness
//	gpsbench -ablation dgps      # A5: differential corrections (§3.3)
//	gpsbench -ablation smoothing # A6: Hatch carrier smoothing
//	gpsbench -ablation noise     # A7: noise sensitivity of eta
//	gpsbench -ablation selection # A8: satellite-subset policy
//	gpsbench -ablation all
//
// The paper processes 86 400 epochs per station; the default here is a
// 2-hour window at 5-second steps so the full suite runs in seconds.
// Raise -duration/-step for publication-grade runs.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gpsdl/internal/eval"
	"gpsdl/internal/scenario"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gpsbench:", err)
		os.Exit(1)
	}
}

type benchConfig struct {
	duration float64
	step     float64
	seed     int64
	epochs   int
	plot     bool
	csvDir   string
	// registry, when non-nil, collects solver/clock metrics across every
	// sweep the run performs (-metrics-out).
	registry *telemetry.Registry
	// recorder, when non-nil, collects per-epoch traces across the figure
	// sweeps for the Chrome trace_event export (-trace-out).
	recorder *trace.Recorder
}

func run(args []string) error {
	fs := flag.NewFlagSet("gpsbench", flag.ContinueOnError)
	var (
		fig             = fs.String("fig", "", "figure to reproduce: table, 5.1, 5.2 or all")
		ablation        = fs.String("ablation", "", "ablation to run: base, clock, gls, direct, dgps, smoothing, noise, selection or all")
		duration        = fs.Float64("duration", 7200, "seconds of data per station")
		step            = fs.Float64("step", 5, "epoch spacing in seconds")
		seed            = fs.Int64("seed", 2009, "generation seed")
		epochs          = fs.Int("epochs", 0, "max epochs per satellite count (0 = all)")
		plot            = fs.Bool("plot", false, "render ASCII charts of the figure curves")
		csvDir          = fs.String("csv", "", "also write the figure series as CSV files into this directory")
		engineOn        = fs.Bool("engine", false, "benchmark the multi-receiver fix engine (fixes/sec vs receiver count)")
		engineReceivers = fs.String("engine-receivers", "1,2,4,8", "comma-separated receiver counts for -engine")
		engineEpochs    = fs.Int("engine-epochs", 2000, "timed epochs per receiver for -engine")
		engineWarmup    = fs.Int("engine-warmup", 300, "warm-up epochs (clock-predictor calibration) before timing for -engine")
		engineSolver    = fs.String("engine-solver", "dlg", "solver for -engine: nr, dlo, dlg or bancroft")
		engineWorkers   = fs.Int("engine-workers", 0, "engine shard count for -engine (0 = GOMAXPROCS)")
		engineJSON      = fs.String("engine-json", "", "write the -engine throughput series as JSON to this file")
		engineLive      = fs.Bool("engine-live", true, "also run the live-generation arms (epoch cache off/on at GOMAXPROCS 1 and 4) for -engine")
		engineLiveRecv  = fs.Int("engine-live-receivers", 8, "receiver count for the -engine live-generation arms")
		engineLiveEp    = fs.Int("engine-live-epochs", 800, "timed epochs per receiver for the -engine live-generation arms")
		faultsOn        = fs.Bool("faults", false, "run the fault-degradation sweep (availability and eta vs fault intensity)")
		faultsSpec      = fs.String("faults-spec", defaultFaultSpec, "fault program for -faults (fault spec grammar)")
		faultsReceivers = fs.Int("faults-receivers", 4, "receiver sessions for -faults (round-robin over the Table 5.1 stations)")
		faultsEpochs    = fs.Int("faults-epochs", 600, "epochs per receiver for -faults")
		faultsSeed      = fs.Int64("fault-seed", 1, "fault-injector seed for -faults")
		faultsJSON      = fs.String("faults-json", "BENCH_faults.json", "write the -faults degradation series as JSON to this file (empty disables)")
		qualityOn       = fs.Bool("quality", false, "run the solution-quality sweep (quality digests and SLO verdicts per solver across degradation scenarios)")
		qualityRecv     = fs.Int("quality-receivers", 4, "receiver sessions for -quality (round-robin over the Table 5.1 stations)")
		qualityEpochs   = fs.Int("quality-epochs", 600, "epochs per receiver for -quality")
		qualitySolvers  = fs.String("quality-solvers", "nr,dlg", "comma-separated solvers for -quality")
		qualityWorkers  = fs.Int("quality-workers", 0, "engine shard count for -quality (0 = GOMAXPROCS)")
		qualityJSON     = fs.String("quality-json", "BENCH_quality.json", "write the -quality sweep as JSON to this file (empty disables)")
		recoveryOn      = fs.Bool("recovery", false, "run the checkpoint-recovery benchmark (cold NR re-warm-up vs restored clock calibration)")
		recoveryRecv    = fs.Int("recovery-receivers", 4, "receiver sessions for -recovery (round-robin over the Table 5.1 stations)")
		recoveryCut     = fs.Int("recovery-cut", 300, "epoch the serving engine is killed (and checkpointed) at for -recovery")
		recoveryEpochs  = fs.Int("recovery-epochs", 600, "total epochs for -recovery; [cut, epochs) is the measured restart window")
		recoverySolver  = fs.String("recovery-solver", "dlg", "primary solver for -recovery: nr, dlo, dlg or bancroft")
		recoveryJSON    = fs.String("recovery-json", "BENCH_recovery.json", "write the -recovery comparison as JSON to this file (empty disables)")
		journalOn       = fs.Bool("journal", false, "run the flight-journal overhead benchmark (engine throughput with journaling off vs on)")
		journalRecv     = fs.Int("journal-receivers", 8, "receiver sessions for -journal")
		journalEpochs   = fs.Int("journal-epochs", 2000, "timed epochs per receiver for -journal")
		journalWarmup   = fs.Int("journal-warmup", 300, "warm-up epochs before timing for -journal")
		journalSolver   = fs.String("journal-solver", "dlg", "solver for -journal: nr, dlo, dlg or bancroft")
		journalWorkers  = fs.Int("journal-workers", 0, "engine shard count for -journal (0 = GOMAXPROCS)")
		journalSync     = fs.Int("journal-sync", 0, "record frames between journal sync points for -journal (0 = default, negative disables fsync)")
		journalTrials   = fs.Int("journal-trials", 5, "interleaved trials per arm for -journal; the fastest run of each arm is compared")
		journalJSON     = fs.String("journal-json", "BENCH_journal.json", "write the -journal overhead comparison as JSON to this file (empty disables)")
		broadcastOn     = fs.Bool("broadcast", false, "run the serving fan-out benchmark (NMEA text vs binary delta frames across subscriber counts)")
		broadcastRecv   = fs.Int("broadcast-receivers", 4, "receiver sessions generating the fix set for -broadcast")
		broadcastEpochs = fs.Int("broadcast-epochs", 1500, "epochs per receiver for -broadcast")
		broadcastCli    = fs.String("broadcast-clients", "1,4,16,64", "comma-separated subscriber counts for -broadcast")
		broadcastTrials = fs.Int("broadcast-trials", 5, "runs per (arm, clients) cell for -broadcast; the fastest is kept")
		broadcastJSON   = fs.String("broadcast-json", "BENCH_broadcast.json", "write the -broadcast sweep as JSON to this file (empty disables)")
		metricsOut      = fs.String("metrics-out", "", "write a final Prometheus-format metrics snapshot to this file")
		traceOut        = fs.String("trace-out", "", "write the figure sweeps' epoch traces as a Chrome trace_event file (open in Perfetto)")
		traceN          = fs.Int("trace", 4096, "epoch traces retained for -trace-out")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engineOn {
		receivers, err := parseReceiverList(*engineReceivers)
		if err != nil {
			return fmt.Errorf("-engine-receivers: %w", err)
		}
		if *engineEpochs < 1 {
			return fmt.Errorf("-engine-epochs must be positive, have %d", *engineEpochs)
		}
		if *engineWarmup < 0 {
			return fmt.Errorf("-engine-warmup must be non-negative, have %d", *engineWarmup)
		}
		if *engineLive && (*engineLiveRecv < 1 || *engineLiveEp < 1) {
			return fmt.Errorf("-engine-live-receivers and -engine-live-epochs must be positive, have %d and %d",
				*engineLiveRecv, *engineLiveEp)
		}
		if err := runEngineBench(engineBenchConfig{
			receivers: receivers,
			epochs:    *engineEpochs,
			warmup:    *engineWarmup,
			solver:    *engineSolver,
			workers:   *engineWorkers,
			seed:      *seed,
			jsonPath:  *engineJSON,

			live:          *engineLive,
			liveReceivers: *engineLiveRecv,
			liveEpochs:    *engineLiveEp,
		}); err != nil {
			return err
		}
	}
	if *faultsOn {
		if *faultsEpochs < 1 {
			return fmt.Errorf("-faults-epochs must be positive, have %d", *faultsEpochs)
		}
		if *faultsReceivers < 1 {
			return fmt.Errorf("-faults-receivers must be positive, have %d", *faultsReceivers)
		}
		if err := runFaultBench(faultBenchConfig{
			spec:      *faultsSpec,
			receivers: *faultsReceivers,
			epochs:    *faultsEpochs,
			seed:      *seed,
			faultSeed: *faultsSeed,
			jsonPath:  *faultsJSON,
		}); err != nil {
			return err
		}
	}
	if *qualityOn {
		if *qualityEpochs < 60 {
			return fmt.Errorf("-quality-epochs must be >= 60, have %d", *qualityEpochs)
		}
		if *qualityRecv < 1 {
			return fmt.Errorf("-quality-receivers must be positive, have %d", *qualityRecv)
		}
		solvers, err := parseSolverList(*qualitySolvers)
		if err != nil {
			return fmt.Errorf("-quality-solvers: %w", err)
		}
		if err := runQualityBench(qualityBenchConfig{
			receivers: *qualityRecv,
			epochs:    *qualityEpochs,
			solvers:   solvers,
			workers:   *qualityWorkers,
			seed:      *seed,
			faultSeed: *faultsSeed,
			jsonPath:  *qualityJSON,
		}); err != nil {
			return err
		}
	}
	if *recoveryOn {
		if *recoveryRecv < 1 {
			return fmt.Errorf("-recovery-receivers must be positive, have %d", *recoveryRecv)
		}
		if *recoveryCut < 1 {
			return fmt.Errorf("-recovery-cut must be positive, have %d", *recoveryCut)
		}
		if *recoveryEpochs <= *recoveryCut {
			return fmt.Errorf("-recovery-epochs (%d) must exceed -recovery-cut (%d)", *recoveryEpochs, *recoveryCut)
		}
		if err := runRecoveryBench(recoveryBenchConfig{
			receivers: *recoveryRecv,
			cut:       *recoveryCut,
			epochs:    *recoveryEpochs,
			solver:    *recoverySolver,
			seed:      *seed,
			jsonPath:  *recoveryJSON,
		}); err != nil {
			return err
		}
	}
	if *journalOn {
		if *journalRecv < 1 {
			return fmt.Errorf("-journal-receivers must be positive, have %d", *journalRecv)
		}
		if *journalEpochs < 1 {
			return fmt.Errorf("-journal-epochs must be positive, have %d", *journalEpochs)
		}
		if *journalWarmup < 0 {
			return fmt.Errorf("-journal-warmup must be non-negative, have %d", *journalWarmup)
		}
		if err := runJournalBench(journalBenchConfig{
			receivers: *journalRecv,
			epochs:    *journalEpochs,
			warmup:    *journalWarmup,
			solver:    *journalSolver,
			workers:   *journalWorkers,
			syncEvery: *journalSync,
			trials:    *journalTrials,
			seed:      *seed,
			jsonPath:  *journalJSON,
		}); err != nil {
			return err
		}
	}
	if *broadcastOn {
		if *broadcastRecv < 1 {
			return fmt.Errorf("-broadcast-receivers must be positive, have %d", *broadcastRecv)
		}
		if *broadcastEpochs < 1 {
			return fmt.Errorf("-broadcast-epochs must be positive, have %d", *broadcastEpochs)
		}
		clients, err := parseClientList(*broadcastCli)
		if err != nil {
			return fmt.Errorf("-broadcast-clients: %w", err)
		}
		if err := runBroadcastBench(broadcastBenchConfig{
			receivers: *broadcastRecv,
			epochs:    *broadcastEpochs,
			clients:   clients,
			trials:    *broadcastTrials,
			seed:      *seed,
			jsonPath:  *broadcastJSON,
		}); err != nil {
			return err
		}
	}
	if *fig == "" && *ablation == "" && !*engineOn && !*faultsOn && !*recoveryOn && !*qualityOn && !*journalOn && !*broadcastOn {
		*fig = "all"
	}
	cfg := benchConfig{duration: *duration, step: *step, seed: *seed, epochs: *epochs, plot: *plot, csvDir: *csvDir}
	if *metricsOut != "" {
		cfg.registry = telemetry.NewRegistry()
	}
	if *traceOut != "" {
		if *traceN <= 0 {
			return fmt.Errorf("-trace must be positive with -trace-out, have %d", *traceN)
		}
		cfg.recorder = trace.New(trace.Config{Capacity: *traceN})
	}
	switch *fig {
	case "":
	case "table":
		if err := eval.FormatTable51(os.Stdout, scenario.Table51Stations()); err != nil {
			return err
		}
	case "5.1", "5.2", "all":
		if err := runFigures(cfg, *fig); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	single := map[string]func(benchConfig) error{
		"base": runAblationBase, "clock": runAblationClock, "gls": runAblationGLS,
		"direct": runAblationDirect, "dgps": runAblationDGPS, "smoothing": runAblationSmoothing,
		"noise": runAblationNoise, "selection": runAblationSelection,
	}
	switch {
	case *ablation == "":
	case *ablation == "all":
		for _, f := range []func(benchConfig) error{
			runAblationBase, runAblationClock, runAblationGLS, runAblationDirect,
			runAblationDGPS, runAblationSmoothing, runAblationNoise, runAblationSelection,
		} {
			if err := f(cfg); err != nil {
				return err
			}
		}
	case single[*ablation] != nil:
		if err := single[*ablation](cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -ablation %q", *ablation)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, cfg.registry); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		if err := writeTraces(*traceOut, cfg.recorder); err != nil {
			return err
		}
	}
	return nil
}

// writeTraces dumps the recorded sweep traces as a Chrome trace_event
// file loadable in Perfetto / about:tracing.
func writeTraces(path string, rec *trace.Recorder) error {
	if rec.Count() == 0 {
		return fmt.Errorf("-trace-out %s: no traces recorded (did the run include -fig sweeps?)", path)
	}
	if err := trace.WriteChromeFile(path, rec.Snapshot()); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d traces)\n", path, len(rec.Snapshot()))
	return nil
}

// writeMetrics dumps the registry's final Prometheus-format snapshot.
func writeMetrics(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeCSV dumps one station's sweep as a CSV with every per-m metric —
// the machine-readable form of both figure panels.
func writeCSV(dir string, res *eval.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, "sweep_"+strings.ToLower(res.Station.ID)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{
		"sats", "epochs", "skipped_dop", "skipped_sats", "availability_nr_pct",
		"d_nr_m", "d_dlo_m", "d_dlg_m",
		"median_nr_m", "median_dlo_m", "median_dlg_m",
		"p95_nr_m", "p95_dlo_m", "p95_dlg_m",
		"tau_nr_ns", "tau_dlo_ns", "tau_dlg_ns",
		"eta_dlo_pct", "eta_dlg_pct", "theta_dlo_pct", "theta_dlg_pct",
	}
	if err := w.Write(header); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	ftoa := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, row := range res.Rows {
		rec := []string{
			strconv.Itoa(row.M), strconv.Itoa(row.Epochs), strconv.Itoa(row.SkippedDOP),
			strconv.Itoa(row.SkippedSats), ftoa(row.Availability(row.NR)),
			ftoa(row.NR.MeanError), ftoa(row.DLO.MeanError), ftoa(row.DLG.MeanError),
			ftoa(row.NR.MedianError), ftoa(row.DLO.MedianError), ftoa(row.DLG.MedianError),
			ftoa(row.NR.P95Error), ftoa(row.DLO.P95Error), ftoa(row.DLG.P95Error),
			ftoa(row.NR.MeanNanos), ftoa(row.DLO.MeanNanos), ftoa(row.DLG.MeanNanos),
			ftoa(row.AccuracyRateDLO()), ftoa(row.AccuracyRateDLG()),
			ftoa(row.TimeRateDLO()), ftoa(row.TimeRateDLG()),
		}
		if err := w.Write(rec); err != nil {
			return fmt.Errorf("write csv row: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("flush %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// generate builds the dataset for one station under the bench config.
// Code-only generation halves the cost; pseudoranges are identical to the
// full-observable datasets (verified by TestCodeOnlyPseudorangesIdentical).
func generate(cfg benchConfig, st scenario.Station) (*scenario.Dataset, error) {
	gcfg := scenario.DefaultConfig(cfg.seed)
	gcfg.Step = cfg.step
	gcfg.CodeOnly = true
	g := scenario.NewGenerator(st, gcfg)
	return g.GenerateRangeParallel(0, cfg.duration, 0)
}

// runFigures reproduces Fig 5.1 and/or Fig 5.2 (plus Table 5.1 with "all").
func runFigures(cfg benchConfig, which string) error {
	if which == "all" {
		if err := eval.FormatTable51(os.Stdout, scenario.Table51Stations()); err != nil {
			return err
		}
		fmt.Println()
	}
	for i, st := range scenario.Table51Stations() {
		ds, err := generate(cfg, st)
		if err != nil {
			return fmt.Errorf("generate %s: %w", st.ID, err)
		}
		sweep := &eval.Sweep{
			Dataset:   ds,
			MaxEpochs: cfg.epochs,
			Seed:      cfg.seed,
			Registry:  cfg.registry,
			Recorder:  cfg.recorder,
		}
		res, err := sweep.Run()
		if err != nil {
			return fmt.Errorf("sweep %s: %w", st.ID, err)
		}
		panel := string(rune('a' + i))
		if cfg.csvDir != "" {
			if err := writeCSV(cfg.csvDir, res); err != nil {
				return err
			}
		}
		if which == "5.1" || which == "all" {
			fmt.Printf("(%s) ", panel)
			if err := eval.FormatFig51(os.Stdout, res); err != nil {
				return err
			}
			if cfg.plot {
				if err := eval.PlotFig51(os.Stdout, res); err != nil {
					return err
				}
			}
			fmt.Println()
		}
		if which == "5.2" || which == "all" {
			fmt.Printf("(%s) ", panel)
			if err := eval.FormatFig52(os.Stdout, res); err != nil {
				return err
			}
			if cfg.plot {
				if err := eval.PlotFig52(os.Stdout, res); err != nil {
					return err
				}
			}
			fmt.Println()
		}
	}
	return nil
}
