package main

import (
	"fmt"
	"os"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/dgps"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
	"gpsdl/internal/smoothing"
)

// ablationM is the satellite count the single-m ablations run at; 8 is the
// middle of the paper's 8-12 per-epoch range.
const ablationM = 8

// runAblationBase is A1 (Section 6 extension 1): does choosing a "good"
// base satellite improve accuracy over the paper's random choice? The
// ablation runs on DLO, where the OLS weighting makes the base choice
// matter; DLG with the Theorem 4.2 covariance is base-invariant (the GLS
// estimator algebraically cancels the base choice), which the final DLG
// row demonstrates.
func runAblationBase(cfg benchConfig) error {
	fmt.Println("Ablation A1 — base-satellite selection for DLO (Section 6 extension 1)")
	fmt.Printf("%-8s %-22s %-12s %-12s %-12s\n", "station", "base selector", "mean err(m)", "rms err(m)", "vs first(%)")
	for _, st := range scenario.Table51Stations() {
		ds, err := generate(cfg, st)
		if err != nil {
			return err
		}
		specs := []eval.ArmSpec{
			newDLOArm(ds, "DLO first (default)", core.BaseFirst{}),
			newDLOArm(ds, "DLO random (paper)", core.NewBaseRandom(cfg.seed)),
			newDLOArm(ds, "DLO highest elev", core.BaseHighestElevation{}),
			newDLOArm(ds, "DLO nearest", core.BaseNearest{}),
			newDLGArm(ds, "DLG random (invariant)", core.NewBaseRandom(cfg.seed+1)),
		}
		// Random per-epoch satellite selection: under the default
		// elevation-stratified selection, observation 0 is already the
		// highest-elevation satellite and the strategies coincide.
		stats, err := eval.RunArms(ds, specs, eval.ArmOptions{
			M: ablationM, MaxEpochs: cfg.epochs, Seed: cfg.seed,
			Selection: eval.SelectRandom,
		})
		if err != nil {
			return err
		}
		ref := stats[0].MeanError
		for _, s := range stats {
			fmt.Printf("%-8s %-22s %-12.3f %-12.3f %-12.1f\n",
				st.ID, s.Name, s.MeanError, s.RMSError, 100*s.MeanError/ref)
		}
	}
	fmt.Println()
	return nil
}

// newDLOArm builds a DLO arm with its own predictor for the dataset's
// clock type.
func newDLOArm(ds *scenario.Dataset, name string, base core.BaseSelector) eval.ArmSpec {
	p := eval.DefaultPredictor(ds.Station.Clock)
	return eval.ArmSpec{
		Name:      name,
		Solver:    &core.DLOSolver{Predictor: p, Base: base},
		Predictor: p,
	}
}

// newDLGArm builds a DLG arm with its own predictor for the dataset's
// clock type.
func newDLGArm(ds *scenario.Dataset, name string, base core.BaseSelector) eval.ArmSpec {
	p := eval.DefaultPredictor(ds.Station.Clock)
	return eval.ArmSpec{
		Name:      name,
		Solver:    &core.DLGSolver{Predictor: p, Base: base},
		Predictor: p,
	}
}

// runAblationClock is A2 (Section 6 extension 2): how much does clock
// prediction quality cost DLG, from no model to a perfect oracle?
func runAblationClock(cfg benchConfig) error {
	fmt.Println("Ablation A2 — clock-predictor quality for DLG (Section 6 extension 2)")
	fmt.Printf("%-8s %-22s %-12s %-12s\n", "station", "predictor", "mean err(m)", "rms err(m)")
	for _, st := range scenario.Table51Stations() {
		gcfg := scenario.DefaultConfig(cfg.seed)
		gcfg.Step = cfg.step
		g := scenario.NewGenerator(st, gcfg)
		ds, err := g.GenerateRangeParallel(0, cfg.duration, 0)
		if err != nil {
			return err
		}
		kalman := clock.NewKalmanPredictor(1e-4)
		specs := []eval.ArmSpec{
			clockArm("none (zero bias)", clock.ZeroPredictor{}),
			clockArm("linear (paper)", eval.DefaultPredictor(st.Clock)),
			clockArm("kalman [12][33]", kalman),
			clockArm("oracle (truth)", &clock.OraclePredictor{Model: g.ClockModel()}),
		}
		stats, err := eval.RunArms(ds, specs, eval.ArmOptions{M: ablationM, MaxEpochs: cfg.epochs, Seed: cfg.seed})
		if err != nil {
			return err
		}
		for _, s := range stats {
			fmt.Printf("%-8s %-22s %-12.3f %-12.3f\n", st.ID, s.Name, s.MeanError, s.RMSError)
		}
	}
	fmt.Println()
	return nil
}

func clockArm(name string, p clock.Predictor) eval.ArmSpec {
	return eval.ArmSpec{
		Name:      name,
		Solver:    &core.DLGSolver{Predictor: p},
		Predictor: p,
	}
}

// runAblationGLS is A3 (Section 6 extension 3): the three implementations
// of the DLG covariance solve — dense Cholesky (paper cost profile),
// Sherman-Morrison O(m) fast path, and the literal explicit-inverse
// formula — compared on time at equal (verified) solutions.
func runAblationGLS(cfg benchConfig) error {
	fmt.Println("Ablation A3 — GLS covariance implementation (Section 6 extension 3)")
	st := scenario.Table51Stations()[1] // YYR1
	ds, err := generate(cfg, st)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-18s %-18s %-18s\n", "sats", "paper dense (ns)", "sherman-morrison", "explicit inverse")
	for _, m := range []int{4, 6, 8, 10} {
		specs := make([]eval.ArmSpec, 0, 3)
		for _, v := range []core.DLGVariant{core.VariantPaper, core.VariantFast, core.VariantExplicit} {
			p := eval.DefaultPredictor(st.Clock)
			specs = append(specs, eval.ArmSpec{
				Name:      v.String(),
				Solver:    &core.DLGSolver{Predictor: p, Variant: v},
				Predictor: p,
			})
		}
		stats, err := eval.RunArms(ds, specs, eval.ArmOptions{M: m, MaxEpochs: cfg.epochs, Seed: cfg.seed})
		if err != nil {
			return err
		}
		if stats[0].Fixes == 0 {
			continue
		}
		// The three variants must agree on accuracy; report if they drift.
		if d := stats[0].MeanError - stats[1].MeanError; d > 1e-3 || d < -1e-3 {
			fmt.Fprintf(os.Stderr, "warning: variant accuracy drift at m=%d: %.6f m\n", m, d)
		}
		fmt.Printf("%-6d %-18.0f %-18.0f %-18.0f\n",
			m, stats[0].MeanNanos, stats[1].MeanNanos, stats[2].MeanNanos)
	}
	fmt.Println()
	return nil
}

// runAblationDirect is A4: the classic Bancroft direct solver as an extra
// baseline, plus NR's sensitivity to bad initial guesses (the
// non-convergence risk direct methods avoid; Section 1/2).
func runAblationDirect(cfg benchConfig) error {
	fmt.Println("Ablation A4 — direct-method baselines and NR robustness")
	st := scenario.Table51Stations()[0] // SRZN
	ds, err := generate(cfg, st)
	if err != nil {
		return err
	}
	dloP := eval.DefaultPredictor(st.Clock)
	dlgP := eval.DefaultPredictor(st.Clock)
	triP := eval.DefaultPredictor(st.Clock)
	specs := []eval.ArmSpec{
		{Name: "NR", Solver: &core.NRSolver{}},
		{Name: "NR elev-weighted", Solver: &core.NRSolver{Weight: core.ElevationWeight}},
		{Name: "Bancroft [2]", Solver: core.BancroftSolver{}},
		{Name: "DLO", Solver: &core.DLOSolver{Predictor: dloP}, Predictor: dloP},
		{Name: "DLG", Solver: &core.DLGSolver{Predictor: dlgP}, Predictor: dlgP},
		// TriSat uses only the first 3 of the selected satellites plus
		// the clock prediction (paper §2 ref [30]).
		{Name: "TriSat [30]", Solver: &core.TriSatSolver{Predictor: triP}, Predictor: triP},
	}
	stats, err := eval.RunArms(ds, specs, eval.ArmOptions{
		M: ablationM, MaxEpochs: cfg.epochs, Seed: cfg.seed, CollectErrors: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-12s %-12s %-12s %-12s %-10s %s\n",
		"algorithm", "mean err(m)", "median(m)", "p95(m)", "time (ns)", "mean iters", "eta vs NR (95% CI)")
	nrErrors := stats[0].Errors
	for i, s := range stats {
		ci := "-"
		if i > 0 {
			if lo, hi, err := eval.BootstrapRatioCI(s.Errors, nrErrors, 2000, 0.95, cfg.seed); err == nil {
				ci = fmt.Sprintf("[%.1f%%, %.1f%%]", lo, hi)
			}
		}
		fmt.Printf("%-18s %-12.3f %-12.3f %-12.3f %-12.0f %-10.2f %s\n",
			s.Name, s.MeanError, s.MedianError, s.P95Error, s.MeanNanos, s.MeanIterations, ci)
	}

	// NR initial-guess sensitivity: cold start (paper's 0,0,0,0), warm
	// start from truth, and adversarial starts far from Earth.
	fmt.Println("\nNR initial-guess sensitivity (iteration budget 20):")
	fmt.Printf("%-34s %-10s %-12s\n", "initial guess", "converged", "mean iters")
	guesses := []struct {
		name string
		sol  *core.Solution
	}{
		{"(0,0,0,0) — paper default", nil},
		{"truth (warm start)", &core.Solution{Pos: st.Pos}},
		{"1e9 m away", &core.Solution{Pos: st.Pos.Add(farOffset(1e9))}},
		{"1e12 m away", &core.Solution{Pos: st.Pos.Add(farOffset(1e12))}},
	}
	for _, g := range guesses {
		solver := &core.NRSolver{InitialGuess: g.sol}
		var converged, total, iters int
		for i := 60; i < ds.Len() && total < 200; i += 7 {
			obs := firstM(ds.Epochs[i], ablationM)
			if obs == nil {
				continue
			}
			total++
			sol, err := solver.Solve(ds.Epochs[i].T, obs)
			if err == nil {
				converged++
				iters += sol.Iterations
			}
		}
		meanIters := 0.0
		if converged > 0 {
			meanIters = float64(iters) / float64(converged)
		}
		fmt.Printf("%-34s %3d/%-6d %-12.2f\n", g.name, converged, total, meanIters)
	}
	fmt.Println()
	return nil
}

func farOffset(d float64) geo.ECEF {
	return geo.ECEF{X: d, Y: d / 2, Z: -d / 3}
}

// firstM adapts the first m observations of an epoch.
func firstM(e scenario.Epoch, m int) []core.Observation {
	if len(e.Obs) < m {
		return nil
	}
	out := make([]core.Observation, 0, m)
	for _, o := range e.Obs[:m] {
		out = append(out, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	return out
}

// runAblationDGPS is A5 (paper §3.3): how much do differential
// corrections from a reference station help a rover that applies no
// broadcast atmospheric model? The reference sits at the YYR1 coordinates
// and the rover ~19 km away.
func runAblationDGPS(cfg benchConfig) error {
	fmt.Println("Ablation A5 — differential GPS corrections (paper §3.3)")
	st := scenario.Table51Stations()[1] // YYR1 as the reference site
	gcfg := scenario.DefaultConfig(cfg.seed)
	gcfg.Step = cfg.step
	// Classic DGPS use case: rover without broadcast atmospheric
	// corrections, so the shared error component dominates.
	gcfg.IonoRemainder = 1.0
	gcfg.TropoRemainder = 0.5
	refGen := scenario.NewGenerator(st, gcfg)

	rover := st
	rover.ID = "ROVR"
	rover.Pos = geo.FromENU(st.Pos, geo.ENU{E: 15000, N: 12000, U: 20})
	roverGen := scenario.NewGenerator(rover, gcfg)

	ref := dgps.NewReference(st.Pos)
	var plainNR, corrNR core.NRSolver
	var sumPlain, sumCorr float64
	var n int
	end := cfg.duration
	if end > 14400 {
		end = 14400 // a few hours suffice for stable means
	}
	warmup := 900.0 // three smoothing time constants
	if warmup > end/3 {
		warmup = end / 3
	}
	for t := 0.0; t < end; t += cfg.step {
		refEpoch, err := refGen.EpochAt(t)
		if err != nil {
			return err
		}
		roverEpoch, err := roverGen.EpochAt(t)
		if err != nil {
			return err
		}
		corrections, err := ref.ComputeCorrections(refEpoch)
		if err != nil {
			continue
		}
		if t < warmup {
			continue // correction-smoother warm-up
		}
		applied := dgps.Apply(roverEpoch, corrections)
		if len(applied.Obs) < 4 {
			continue
		}
		pSol, err1 := plainNR.Solve(t, firstM(roverEpoch, len(roverEpoch.Obs)))
		cSol, err2 := corrNR.Solve(t, firstM(applied, len(applied.Obs)))
		if err1 != nil || err2 != nil {
			continue
		}
		sumPlain += pSol.Pos.DistanceTo(rover.Pos)
		sumCorr += cSol.Pos.DistanceTo(rover.Pos)
		n++
	}
	if n == 0 {
		return fmt.Errorf("dgps ablation produced no comparable epochs")
	}
	fmt.Printf("rover 19 km from reference, %d epochs (uncorrected-receiver error model):\n", n)
	fmt.Printf("  %-24s %8.3f m\n", "NR without corrections", sumPlain/float64(n))
	fmt.Printf("  %-24s %8.3f m\n", "NR with DGPS", sumCorr/float64(n))
	fmt.Printf("  improvement              %7.1f%%\n", 100*(1-sumCorr/sumPlain))
	fmt.Println()
	return nil
}

// runAblationSmoothing is A6: carrier-smoothed (Hatch-filtered)
// pseudo-ranges under the paper's algorithms. Smoothing is a
// measurement-layer upgrade, so every solver benefits while the paper's
// relative ordering (η, θ) is preserved.
func runAblationSmoothing(cfg benchConfig) error {
	fmt.Println("Ablation A6 — carrier smoothing (Hatch filter) under NR/DLO/DLG")
	st := scenario.Table51Stations()[0] // SRZN
	gcfg := scenario.DefaultConfig(cfg.seed)
	gcfg.Step = cfg.step
	g := scenario.NewGenerator(st, gcfg)

	hatch := smoothing.NewHatch(100)
	pRawDLO := eval.DefaultPredictor(st.Clock)
	pRawDLG := eval.DefaultPredictor(st.Clock)
	pSmDLO := eval.DefaultPredictor(st.Clock)
	pSmDLG := eval.DefaultPredictor(st.Clock)
	var nrRaw, nrSm core.NRSolver
	dloRaw := &core.DLOSolver{Predictor: pRawDLO}
	dlgRaw := &core.DLGSolver{Predictor: pRawDLG}
	dloSm := &core.DLOSolver{Predictor: pSmDLO}
	dlgSm := &core.DLGSolver{Predictor: pSmDLG}

	type acc struct {
		sum float64
		n   int
	}
	var stats [6]acc // nrRaw, dloRaw, dlgRaw, nrSm, dloSm, dlgSm
	record := func(i int, sol core.Solution, err error) {
		if err != nil {
			return
		}
		stats[i].sum += sol.Pos.DistanceTo(st.Pos)
		stats[i].n++
	}
	end := cfg.duration
	if end > 14400 {
		end = 14400
	}
	warmup := 300.0
	if warmup > end/3 {
		warmup = end / 3
	}
	for t := 0.0; t < end; t += cfg.step {
		epoch, err := g.EpochAt(t)
		if err != nil {
			return err
		}
		smoothed := hatch.Smooth(epoch)
		rawObs := firstM(epoch, ablationM)
		smObs := firstM(smoothed, ablationM)
		if rawObs == nil || smObs == nil {
			continue
		}
		// NR drives both predictor chains (fed from its own stream).
		nrRawSol, err1 := nrRaw.Solve(t, rawObs)
		if err1 == nil {
			fix := clock.Fix{T: t, Bias: nrRawSol.ClockBias / geo.SpeedOfLight}
			pRawDLO.Observe(fix)
			pRawDLG.Observe(fix)
		}
		nrSmSol, err2 := nrSm.Solve(t, smObs)
		if err2 == nil {
			fix := clock.Fix{T: t, Bias: nrSmSol.ClockBias / geo.SpeedOfLight}
			pSmDLO.Observe(fix)
			pSmDLG.Observe(fix)
		}
		if t < warmup {
			continue // filter + predictor warm-up
		}
		record(0, nrRawSol, err1)
		record(3, nrSmSol, err2)
		sol, err := dloRaw.Solve(t, rawObs)
		record(1, sol, err)
		sol, err = dlgRaw.Solve(t, rawObs)
		record(2, sol, err)
		sol, err = dloSm.Solve(t, smObs)
		record(4, sol, err)
		sol, err = dlgSm.Solve(t, smObs)
		record(5, sol, err)
	}
	names := [3]string{"NR", "DLO", "DLG"}
	fmt.Printf("%-6s %-14s %-16s %-12s\n", "algo", "raw err (m)", "smoothed err (m)", "reduction")
	for i := 0; i < 3; i++ {
		if stats[i].n == 0 || stats[i+3].n == 0 {
			continue
		}
		raw := stats[i].sum / float64(stats[i].n)
		sm := stats[i+3].sum / float64(stats[i+3].n)
		fmt.Printf("%-6s %-14.3f %-16.3f %.1f%%\n", names[i], raw, sm, 100*(1-sm/raw))
	}
	fmt.Println()
	return nil
}

// runAblationNoise is A7: sensitivity of the paper's accuracy rates to
// the pseudo-range noise level. η_DLO's degradation is driven by how the
// differenced system amplifies noise, so it should persist across noise
// scales while absolute errors track σ.
func runAblationNoise(cfg benchConfig) error {
	fmt.Println("Ablation A7 — noise sensitivity of the accuracy rates (m = 8)")
	st := scenario.Table51Stations()[1] // YYR1
	fmt.Printf("%-12s %-10s %-10s %-10s %-10s %-10s\n",
		"sigma (m)", "d_NR(m)", "d_DLO(m)", "d_DLG(m)", "eta_DLO", "eta_DLG")
	for _, sigma := range []float64{0.5, 1, 2, 4, 8} {
		gcfg := scenario.DefaultConfig(cfg.seed)
		gcfg.Step = cfg.step
		gcfg.NoiseSigma = sigma
		g := scenario.NewGenerator(st, gcfg)
		end := cfg.duration
		if end > 7200 {
			end = 7200
		}
		ds, err := g.GenerateRangeParallel(0, end, 0)
		if err != nil {
			return err
		}
		sweep := &eval.Sweep{Dataset: ds, SatCounts: []int{8}, Seed: cfg.seed, MaxEpochs: cfg.epochs, Registry: cfg.registry}
		res, err := sweep.Run()
		if err != nil {
			return err
		}
		row := res.Rows[0]
		if row.Epochs == 0 {
			continue
		}
		fmt.Printf("%-12.1f %-10.3f %-10.3f %-10.3f %-10.1f %-10.1f\n",
			sigma, row.NR.MeanError, row.DLO.MeanError, row.DLG.MeanError,
			row.AccuracyRateDLO(), row.AccuracyRateDLG())
	}
	fmt.Println()
	return nil
}

// runAblationSelection is A8: how much the satellite-subset policy itself
// matters. The paper controls the number of satellites but (like most
// receivers with more channels than needed) never says how the subset is
// picked; this quantifies that free variable at the sweep's hardest
// (m = 5) and easiest (m = 8) points.
func runAblationSelection(cfg benchConfig) error {
	fmt.Println("Ablation A8 — satellite-subset selection policy (NR error)")
	st := scenario.Table51Stations()[1] // YYR1
	ds, err := generate(cfg, st)
	if err != nil {
		return err
	}
	modes := []struct {
		name string
		mode eval.SelectionMode
	}{
		{"stratified (default)", eval.SelectStratified},
		{"highest elevation", eval.SelectTop},
		{"random", eval.SelectRandom},
		{"greedy best-DOP", eval.SelectBestDOP},
	}
	fmt.Printf("%-22s %-14s %-14s\n", "policy", "m=5 err (m)", "m=8 err (m)")
	for _, md := range modes {
		var cells [2]string
		for i, m := range []int{5, 8} {
			spec := []eval.ArmSpec{{Name: "NR", Solver: &core.NRSolver{}}}
			stats, err := eval.RunArms(ds, spec, eval.ArmOptions{
				M: m, MaxEpochs: cfg.epochs, Seed: cfg.seed, Selection: md.mode,
			})
			if err != nil {
				return err
			}
			cells[i] = fmt.Sprintf("%.3f", stats[0].MeanError)
		}
		fmt.Printf("%-22s %-14s %-14s\n", md.name, cells[0], cells[1])
	}
	fmt.Println()
	return nil
}
