// Recovery mode: -recovery prices what a checkpoint is worth. A serving
// engine is killed at a cut epoch; the benchmark then races two restart
// arms over the same post-cut window. The cold arm loses the clock
// calibration and must re-warm its predictors through the NR fallback
// (the expensive recalibration case the paper's Section 5 prices);
// the restored arm resumes from the checkpointed D and r of eq. 4-3 and
// produces primary-solver fixes immediately. BENCH_recovery.json records
// the recovery gap in epochs, both arms' accuracy, their ratio on the
// eq. 5-2 scale, and the checkpoint's save/load cost.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/engine"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

// recoveryBenchConfig holds the -recovery-* flag values.
type recoveryBenchConfig struct {
	receivers int
	cut       int // epoch the serving process dies at
	epochs    int // total epochs; [cut, epochs) is the measured window
	solver    string
	seed      int64
	jsonPath  string
}

// recoveryArm summarizes one restart strategy over the post-cut window.
type recoveryArm struct {
	Arm string `json:"arm"` // "cold" | "restored"
	// RecoveryEpochs is how many epochs past the cut the slowest
	// receiver needed before its primary solver produced a fix again
	// (-1: some receiver never recovered). The cold arm pays the clock
	// predictor's full calibration window here; the restored arm should
	// be at or near zero.
	RecoveryEpochs int `json:"recovery_epochs"`
	// FirstPrimaryFix is the absolute epoch of each receiver's first
	// post-cut primary-solver fix (-1: never).
	FirstPrimaryFix []int `json:"first_primary_fix"`
	// Fixes and MeanErrorM cover every non-coast fix in the window,
	// fallback fixes included — exactly what a client would have seen.
	Fixes      uint64  `json:"fixes"`
	MeanErrorM float64 `json:"mean_error_m"`
}

// recoveryReport is the -recovery-json document.
type recoveryReport struct {
	Benchmark string `json:"benchmark"`
	Solver    string `json:"solver"`
	Receivers int    `json:"receivers"`
	CutEpoch  int    `json:"cut_epoch"`
	Epochs    int    `json:"epochs"`
	Seed      int64  `json:"seed"`
	// Checkpoint cost: encoded size and wall-clock for the atomic save
	// and the load+verify, measured through a real temp file.
	CheckpointBytes  int64       `json:"checkpoint_bytes"`
	SaveMillis       float64     `json:"save_millis"`
	LoadMillis       float64     `json:"load_millis"`
	RestoredSessions int         `json:"restored_sessions"`
	Cold             recoveryArm `json:"cold"`
	Restored         recoveryArm `json:"restored"`
	// EtaPct is eq. 5-2 applied to the two arms (100·d_restored/d_cold):
	// below 100 means the restored arm was more accurate over the window.
	EtaPct float64 `json:"eta_pct"`
	// RecoveryAdvantageEpochs is the warm-up the checkpoint saved:
	// cold recovery epochs minus restored recovery epochs.
	RecoveryAdvantageEpochs int `json:"recovery_advantage_epochs"`
}

// primaryName maps a -recovery-solver value to the fallback-chain member
// name FixEvent.Solver reports for the primary.
func primaryName(solver string) string {
	switch solver {
	case "nr":
		return "NR"
	case "dlo":
		return "DLO"
	case "bancroft":
		return "Bancroft"
	default:
		return "DLG"
	}
}

// recoveryCollector accumulates per-receiver outcomes. Each receiver is
// owned by exactly one shard, so indexing by receiver is race-free.
type recoveryCollector struct {
	primary string
	truth   []geo.ECEF
	first   []int // epoch of the first primary fix, -1 until seen
	sumErr  []float64
	fixes   []uint64
}

func newRecoveryCollector(primary string, truth []geo.ECEF) *recoveryCollector {
	c := &recoveryCollector{
		primary: primary,
		truth:   truth,
		first:   make([]int, len(truth)),
		sumErr:  make([]float64, len(truth)),
		fixes:   make([]uint64, len(truth)),
	}
	for i := range c.first {
		c.first[i] = -1
	}
	return c
}

func (c *recoveryCollector) sink(e engine.FixEvent) {
	if e.Err != nil || e.Coast {
		return
	}
	r := e.Receiver
	if c.first[r] < 0 && e.Solver == c.primary {
		c.first[r] = e.Epoch
	}
	c.sumErr[r] += e.Sol.Pos.DistanceTo(c.truth[r])
	c.fixes[r]++
}

// arm folds the collector into the report form.
func (c *recoveryCollector) arm(name string, cut int) recoveryArm {
	a := recoveryArm{Arm: name, FirstPrimaryFix: c.first, RecoveryEpochs: -1}
	var sum float64
	worst := -1
	for r := range c.first {
		a.Fixes += c.fixes[r]
		sum += c.sumErr[r]
		if c.first[r] < 0 {
			worst = -1
			break
		}
		if d := c.first[r] - cut; d > worst {
			worst = d
		}
	}
	a.RecoveryEpochs = worst
	if a.Fixes > 0 {
		a.MeanErrorM = sum / float64(a.Fixes)
	}
	return a
}

// runRecoveryBench runs the kill-and-restart experiment and prints (and
// optionally writes) the comparison.
func runRecoveryBench(cfg recoveryBenchConfig) error {
	stations := scenario.Table51Stations()
	truth := make([]geo.ECEF, cfg.receivers)
	for r := range truth {
		truth[r] = stations[r%len(stations)].Pos
	}
	base := engine.Config{
		Receivers: cfg.receivers,
		Solver:    cfg.solver,
		Seed:      cfg.seed,
		Stations:  stations,
	}
	ctx := context.Background()

	// Serve until the cut, then checkpoint the dying process's state.
	serving, err := engine.New(base)
	if err != nil {
		return err
	}
	if err := serving.Run(ctx, cfg.cut); err != nil {
		return err
	}
	state := serving.SnapshotFinal()
	path := filepath.Join(os.TempDir(), fmt.Sprintf("gpsbench-recovery-%d.ckpt", os.Getpid()))
	defer os.Remove(path)
	start := time.Now()
	if err := checkpoint.Save(path, state); err != nil {
		return err
	}
	saveMs := float64(time.Since(start).Nanoseconds()) / 1e6
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	start = time.Now()
	loaded, err := checkpoint.Load(path)
	if err != nil {
		return err
	}
	loadMs := float64(time.Since(start).Nanoseconds()) / 1e6

	primary := primaryName(cfg.solver)
	runArm := func(name string, restore *checkpoint.State) (recoveryArm, int, error) {
		col := newRecoveryCollector(primary, truth)
		c := base
		c.Sink = col.sink
		eng, err := engine.New(c)
		if err != nil {
			return recoveryArm{}, 0, err
		}
		restored := 0
		if restore != nil {
			if restored, err = eng.Restore(restore); err != nil {
				return recoveryArm{}, 0, err
			}
		}
		if err := eng.RunRange(ctx, cfg.cut, cfg.epochs); err != nil {
			return recoveryArm{}, 0, err
		}
		return col.arm(name, cfg.cut), restored, nil
	}
	cold, _, err := runArm("cold", nil)
	if err != nil {
		return fmt.Errorf("cold arm: %w", err)
	}
	restoredArm, nRestored, err := runArm("restored", loaded)
	if err != nil {
		return fmt.Errorf("restored arm: %w", err)
	}

	report := recoveryReport{
		Benchmark:        "recovery",
		Solver:           cfg.solver,
		Receivers:        cfg.receivers,
		CutEpoch:         cfg.cut,
		Epochs:           cfg.epochs,
		Seed:             cfg.seed,
		CheckpointBytes:  info.Size(),
		SaveMillis:       saveMs,
		LoadMillis:       loadMs,
		RestoredSessions: nRestored,
		Cold:             cold,
		Restored:         restoredArm,
		EtaPct:           eval.AccuracyRate(restoredArm.MeanErrorM, cold.MeanErrorM),
	}
	if cold.RecoveryEpochs >= 0 && restoredArm.RecoveryEpochs >= 0 {
		report.RecoveryAdvantageEpochs = cold.RecoveryEpochs - restoredArm.RecoveryEpochs
	}
	fmt.Printf("recovery: solver=%s receivers=%d cut=%d window=[%d,%d) checkpoint=%dB save=%.2fms load=%.2fms\n",
		cfg.solver, cfg.receivers, cfg.cut, cfg.cut, cfg.epochs, info.Size(), saveMs, loadMs)
	fmt.Printf("%10s %16s %12s %14s\n", "arm", "recovery_epochs", "fixes", "mean_error_m")
	for _, a := range []recoveryArm{cold, restoredArm} {
		fmt.Printf("%10s %16d %12d %14.3f\n", a.Arm, a.RecoveryEpochs, a.Fixes, a.MeanErrorM)
	}
	fmt.Printf("eta (restored vs cold, eq. 5-2 scale) = %.1f%%, warm-up saved = %d epochs\n",
		report.EtaPct, report.RecoveryAdvantageEpochs)
	if cfg.jsonPath != "" {
		if err := writeRecoveryJSON(cfg.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// writeRecoveryJSON dumps the recovery comparison for EXPERIMENTS.md /
// regression tracking.
func writeRecoveryJSON(path string, report recoveryReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
