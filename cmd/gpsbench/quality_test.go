package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gpsdl/internal/fault"
)

func TestParseSolverList(t *testing.T) {
	got, err := parseSolverList(" NR, dlg ")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"nr", "dlg"}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseSolverList = %v, want %v", got, want)
	}
	for _, bad := range []string{"", ",,", "nr,klobuchar"} {
		if _, err := parseSolverList(bad); err == nil {
			t.Errorf("parseSolverList(%q) succeeded, want error", bad)
		}
	}
}

// Every scenario's fault spec must parse under the real grammar for any
// plausible epoch count.
func TestQualityScenarioSpecsParse(t *testing.T) {
	for _, sc := range qualitySweepScenarios {
		for _, n := range []int{60, 300, 600, 86400} {
			spec := sc.spec(n)
			if spec == "" {
				continue
			}
			if _, err := fault.ParseSpec(spec); err != nil {
				t.Errorf("scenario %s epochs=%d: %v", sc.name, n, err)
			}
		}
	}
}

// End-to-end: a short -quality run must produce a parsable JSON report
// covering every scenario × solver cell, with a page verdict somewhere
// in the degraded scenarios.
func TestRunQualitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end")
	}
	path := filepath.Join(t.TempDir(), "q.json")
	err := run([]string{
		"-quality", "-quality-epochs", "120", "-quality-receivers", "2",
		"-quality-solvers", "dlg", "-quality-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report qualityBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Benchmark != "quality" {
		t.Errorf("benchmark = %q", report.Benchmark)
	}
	if len(report.Series) != len(qualitySweepScenarios) {
		t.Fatalf("%d series points, want %d", len(report.Series), len(qualitySweepScenarios))
	}
	for _, pt := range report.Series {
		if pt.Digest.Count == 0 {
			t.Errorf("scenario %s: empty digest", pt.Scenario)
		}
		if len(pt.Objectives) == 0 {
			t.Errorf("scenario %s: no SLO statuses", pt.Scenario)
		}
	}
}
