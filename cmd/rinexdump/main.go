// Command rinexdump inspects RINEX files written by this repository:
// header fields, epoch counts, satellite statistics.
//
// Usage:
//
//	rinexdump -obs srzn.09o
//	rinexdump -nav srzn.09n
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rinexdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rinexdump", flag.ContinueOnError)
	var (
		obsPath = fs.String("obs", "", "RINEX observation file to dump")
		navPath = fs.String("nav", "", "RINEX navigation file to dump")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *obsPath == "" && *navPath == "" {
		return fmt.Errorf("one of -obs or -nav is required")
	}
	if *obsPath != "" {
		if err := dumpObs(*obsPath); err != nil {
			return err
		}
	}
	if *navPath != "" {
		if err := dumpNav(*navPath); err != nil {
			return err
		}
	}
	return nil
}
