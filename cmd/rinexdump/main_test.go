package main

import (
	"os"
	"path/filepath"
	"testing"

	"gpsdl/internal/orbit"
	"gpsdl/internal/rinex"
	"gpsdl/internal/scenario"
)

func writeRinexPair(t *testing.T) (obsPath, navPath string) {
	t.Helper()
	st, err := scenario.StationByID("FAI1")
	if err != nil {
		t.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(4))
	ds, err := g.GenerateRange(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	obsPath = filepath.Join(dir, "fai1.09o")
	obsF, err := os.Create(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer obsF.Close()
	if err := rinex.WriteObs(obsF, ds); err != nil {
		t.Fatal(err)
	}
	navPath = filepath.Join(dir, "fai1.09n")
	navF, err := os.Create(navPath)
	if err != nil {
		t.Fatal(err)
	}
	defer navF.Close()
	if err := rinex.WriteNav(navF, orbit.DefaultConstellation().Satellites()); err != nil {
		t.Fatal(err)
	}
	return obsPath, navPath
}

func TestRunDumpsBoth(t *testing.T) {
	obsPath, navPath := writeRinexPair(t)
	if err := run([]string{"-obs", obsPath}); err != nil {
		t.Errorf("dump obs: %v", err)
	}
	if err := run([]string{"-nav", navPath}); err != nil {
		t.Errorf("dump nav: %v", err)
	}
	if err := run([]string{"-obs", obsPath, "-nav", navPath}); err != nil {
		t.Errorf("dump both: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("run with no flags succeeded")
	}
	if err := run([]string{"-obs", "/does/not/exist"}); err == nil {
		t.Error("run with missing file succeeded")
	}
	// A nav file fed as obs must fail parsing (no valid epoch lines
	// after an END OF HEADER-less scan or garbage epochs).
	_, navPath := writeRinexPair(t)
	if err := run([]string{"-obs", navPath}); err == nil {
		t.Error("nav file parsed as obs")
	}
}
