package main

import (
	"fmt"
	"math"
	"os"

	"gpsdl/internal/rinex"
)

func dumpObs(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	obs, err := rinex.ReadObs(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	fmt.Printf("observation file %s\n", path)
	fmt.Printf("  marker          %s\n", obs.Marker)
	fmt.Printf("  approx position (%.3f, %.3f, %.3f)\n", obs.ApproxPos.X, obs.ApproxPos.Y, obs.ApproxPos.Z)
	fmt.Printf("  first obs       %04d/%02d/%02d\n", obs.Year, obs.Month, obs.Day)
	fmt.Printf("  interval        %.3f s\n", obs.Interval)
	fmt.Printf("  epochs          %d\n", len(obs.Epochs))
	if len(obs.Epochs) == 0 {
		return nil
	}
	minSats, maxSats := len(obs.Epochs[0].Sats), 0
	prns := make(map[int]int)
	minPR, maxPR := math.Inf(1), math.Inf(-1)
	for _, e := range obs.Epochs {
		if n := len(e.Sats); n < minSats {
			minSats = n
		}
		if n := len(e.Sats); n > maxSats {
			maxSats = n
		}
		for _, s := range e.Sats {
			prns[s.PRN]++
			if s.C1 < minPR {
				minPR = s.C1
			}
			if s.C1 > maxPR {
				maxPR = s.C1
			}
		}
	}
	fmt.Printf("  sats per epoch  %d-%d\n", minSats, maxSats)
	fmt.Printf("  distinct PRNs   %d\n", len(prns))
	fmt.Printf("  C1 range        %.3f - %.3f m\n", minPR, maxPR)
	return nil
}

func dumpNav(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	sats, err := rinex.ReadNav(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	fmt.Printf("navigation file %s\n", path)
	fmt.Printf("  satellites %d\n", len(sats))
	fmt.Printf("  %-4s %-12s %-10s %-10s %-12s\n", "PRN", "sqrtA(m^.5)", "ecc", "inc(rad)", "period(s)")
	for _, s := range sats {
		fmt.Printf("  G%02d  %-12.3f %-10.6f %-10.6f %-12.1f\n",
			s.PRN, math.Sqrt(s.Orbit.SemiMajorAxis), s.Orbit.Eccentricity,
			s.Orbit.Inclination, s.Orbit.Period())
	}
	return nil
}
