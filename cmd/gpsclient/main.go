// Command gpsclient subscribes to one session's binary fix stream from
// a gpsserve node or a gpsproxy and prints one line per delivered fix.
// It presents a resume token on reconnect and rides node failovers with
// jittered exponential backoff, so the printed epochs are strictly
// consecutive even when the serving node is killed mid-stream — which
// makes its stdout directly diffable between an interrupted run and an
// uninterrupted one. Lifecycle events (connect, resume verdicts, gaps,
// retries) go to stderr with -events.
//
//	gpsclient -addr 127.0.0.1:7100 -session 2 -count 500
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpsdl/internal/journal"
	"gpsdl/internal/wire"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "gpsclient:", err)
		os.Exit(1)
	}
}

// fixLine renders one delivered fix as a stable, diffable line.
func fixLine(f wire.Fix) string {
	flags := ""
	if f.Miss {
		flags = " miss"
	}
	if f.Coast {
		flags += " coast"
	}
	if f.Suspect {
		flags += " suspect"
	}
	if f.Degraded {
		flags += " degraded"
	}
	return fmt.Sprintf("session=%d epoch=%d x=%.3f y=%.3f z=%.3f bias=%.3f hdop=%.2f sats=%d solver=%s state=%s%s",
		f.Session, f.Epoch, f.X, f.Y, f.Z, f.ClockBias, f.HDOP, f.Sats,
		journal.SolverName(f.Solver), journal.StateName(f.State), flags)
}

func run(ctx context.Context, args []string, out, errOut *os.File) error {
	fs := flag.NewFlagSet("gpsclient", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7100", "gpsserve -wire or gpsproxy -addr to subscribe to")
		session = fs.Int("session", 0, "global session id to stream")
		resume  = fs.Int64("resume", -1, "resume token: last acknowledged epoch (-1 subscribes live)")
		count   = fs.Int("count", 0, "exit after this many fixes (0 streams until interrupted)")
		budget  = fs.Int("retry-budget", 0, "consecutive failed reconnects before giving up (0 uses the default)")
		events  = fs.Bool("events", false, "print lifecycle events (connect/resume/gap/retry) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *session < 0 {
		return fmt.Errorf("-session must be non-negative, have %d", *session)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cfg := wire.ClientConfig{
		Addr:        *addr,
		Session:     *session,
		Resume:      *resume,
		RetryBudget: *budget,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  3 * time.Second,
	}
	if *events {
		cfg.OnEvent = func(e wire.ClientEvent) {
			line := fmt.Sprintf("# %s session=%d", e.Kind, *session)
			switch e.Kind {
			case "resume", "gap":
				line += fmt.Sprintf(" status=%d head=%d", e.Resume.Status, e.Resume.Head)
			case "retry":
				line += fmt.Sprintf(" attempt=%d sleep=%s err=%v", e.Attempt, e.Sleep, e.Err)
			case "disconnect", "give-up":
				line += fmt.Sprintf(" err=%v", e.Err)
			}
			fmt.Fprintln(errOut, line)
		}
	}
	c := wire.DialSession(cctx, cfg)
	defer c.Close()

	n := 0
	for f := range c.Fixes() {
		fmt.Fprintln(out, fixLine(f))
		n++
		if *count > 0 && n >= *count {
			return nil
		}
	}
	// The stream closed before -count was satisfied: surface why.
	if err := c.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("stream ended after %d fixes: %w", n, err)
	}
	return nil
}
