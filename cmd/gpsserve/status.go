// The /debug/status surface: one consolidated operator view merging
// epoch-loop liveness, the engine's per-shard health census,
// checkpoint/drain state, and — when the quality layer is on — SLO
// verdicts, error budgets, the fleet quality digest, and the worst
// sessions. JSON by default; ?format=text renders a terminal-friendly
// table for a human on a box with nothing but curl.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"text/tabwriter"

	"gpsdl/internal/cluster"
	"gpsdl/internal/engine"
	"gpsdl/internal/quality"
)

// statusResponse is the /debug/status JSON body.
type statusResponse struct {
	// Health is the same liveness block /healthz serves (status, fix
	// staleness, backpressure, shard census, checkpoint, drain).
	Health healthStatus `json:"health"`
	// Quality is the engine's consolidated quality/SLO verdict; absent
	// in single-receiver mode or with the quality layer disabled.
	Quality *engine.FleetQuality `json:"quality,omitempty"`
	// Cluster is the serving-tier block (-wire): hosted sessions with
	// stream heads, handoff/adoption counters, and hub fan-out stats.
	Cluster *cluster.NodeStatus `json:"cluster,omitempty"`
}

// statusTopDefault bounds the worst-sessions ranking when ?top= is
// absent.
const statusTopDefault = 5

// statusHandler serves /debug/status. Query parameters: top=K bounds
// the worst-sessions list; format=text renders a table instead of JSON.
func (st *serverTelemetry) statusHandler(w http.ResponseWriter, r *http.Request) {
	topK := statusTopDefault
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad top=%q: want a positive integer", v), http.StatusBadRequest)
			return
		}
		topK = n
	}
	resp := statusResponse{}
	resp.Health, _ = st.health.status()
	if st.eng != nil && st.eng.QualityEnabled() {
		resp.Quality = st.eng.Quality(topK)
	}
	if st.node != nil {
		ns := st.node.Status()
		resp.Cluster = &ns
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeStatusText(w, &resp)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// fmtAge renders a seconds value that uses -1 for "never".
func fmtAge(s float64) string {
	if s < 0 {
		return "never"
	}
	return fmt.Sprintf("%.1fs", s)
}

// fmtQ renders a possibly-NaN digest field to a fixed width.
func fmtQ(f quality.Float, format string) string {
	v := float64(f)
	if v != v {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// writeStatusText renders the status as aligned text tables.
func writeStatusText(w http.ResponseWriter, resp *statusResponse) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	h := &resp.Health
	fmt.Fprintf(tw, "status\t%s\n", h.Status)
	fmt.Fprintf(tw, "uptime\t%.1fs\n", h.UptimeSeconds)
	fmt.Fprintf(tw, "epochs\t%d\n", h.Epochs)
	fmt.Fprintf(tw, "fixes\t%d\n", h.Fixes)
	fmt.Fprintf(tw, "last fix\t%s ago\n", fmtAge(h.LastFixAgeSeconds))
	fmt.Fprintf(tw, "clients\t%d\tdrops\t%d\n", h.Clients, h.Drops)
	if h.Draining {
		fmt.Fprintf(tw, "draining\ttrue\n")
	}
	if h.Checkpoint != nil {
		fmt.Fprintf(tw, "checkpoint\t%s\tepoch %d\tsaved %s ago\n",
			h.Checkpoint.Path, h.Checkpoint.Epoch, fmtAge(h.Checkpoint.AgeSeconds))
	}
	if h.Restore != nil {
		line := h.Restore.Outcome
		if h.Restore.Detail != "" {
			line += " (" + h.Restore.Detail + ")"
		}
		fmt.Fprintf(tw, "restore\t%s\tsessions %d\tepoch %d\n",
			line, h.Restore.Sessions, h.Restore.Epoch)
	}
	if c := resp.Cluster; c != nil {
		fmt.Fprintf(tw, "cluster\t%d engines\thandoffs %d\tadopted %d\trestore failures %d\n",
			c.Engines, c.Handoffs, c.AdoptedSessions, c.RestoreFailures)
		fmt.Fprintf(tw, "hub\t%d sessions\t%d subscribers\t%d published\t%d replayed\t%d evicted\n",
			c.Hub.Sessions, c.Hub.Subscribers, c.Hub.Published, c.Hub.Replayed, c.Hub.Evicted)
	}
	if len(h.Shards) > 0 {
		fmt.Fprintf(tw, "\nSHARD\tHEALTHY\tDEGRADED\tCOASTING\tQUARANT\tFAILED\tBREAKER\tPANICS\tRESTARTS\n")
		for _, sh := range h.Shards {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				sh.Shard, sh.Healthy, sh.Degraded, sh.Coasting,
				sh.Quarantined, sh.Failed, sh.BreakerOpen, sh.Panics, sh.Restarts)
		}
	}
	q := resp.Quality
	if q == nil || !q.Enabled {
		fmt.Fprintf(tw, "\nquality\tdisabled\n")
		return
	}
	fmt.Fprintf(tw, "\nslo verdict\t%s\n", q.Worst)
	fmt.Fprintf(tw, "\nOBJECTIVE\tSTATE\tFAST BURN\tSLOW BURN\tBUDGET LEFT\tBAD/WINDOW\n")
	for _, o := range q.Objectives {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.0f%%\t%d/%d\n",
			o.Name, o.State, o.FastBurn, o.SlowBurn,
			100*o.BudgetRemaining, o.BadSlow, o.DenSlow)
	}
	d := &q.Digest
	fmt.Fprintf(tw, "\nfleet window\t%d samples\n", d.Count)
	fmt.Fprintf(tw, "availability\t%s\tchi2 pass\t%s\texcluded\t%s\n",
		fmtQ(d.Availability, "%.4f"), fmtQ(d.Chi2PassRate, "%.4f"), fmtQ(d.ExcludedRate, "%.4f"))
	fmt.Fprintf(tw, "rms p50/p95/p99\t%s/%s/%s m\tmean\t%s m\n",
		fmtQ(d.RMSP50, "%.2f"), fmtQ(d.RMSP95, "%.2f"), fmtQ(d.RMSP99, "%.2f"), fmtQ(d.RMSMean, "%.2f"))
	fmt.Fprintf(tw, "pdop/hdop mean\t%s/%s\tclock innov mean/max\t%s/%s m\n",
		fmtQ(d.PDOPMean, "%.2f"), fmtQ(d.HDOPMean, "%.2f"),
		fmtQ(d.ClockMean, "%.2f"), fmtQ(d.ClockMax, "%.2f"))
	if len(q.Sessions) > 0 {
		fmt.Fprintf(tw, "\nWORST\tSTATE\tRMS P99\tAVAIL\tCHI2\n")
		for _, s := range q.Sessions {
			fmt.Fprintf(tw, "recv %d\t%s\t%s\t%s\t%s\n",
				s.Receiver, s.Worst, fmtQ(s.Digest.RMSP99, "%.2f"),
				fmtQ(s.Digest.Availability, "%.4f"), fmtQ(s.Digest.Chi2PassRate, "%.4f"))
		}
	}
	if len(q.Shards) > 0 {
		var parts []string
		for _, sq := range q.Shards {
			parts = append(parts, fmt.Sprintf("%d: %s m", sq.Shard, fmtQ(sq.Digest.RMSP99, "%.2f")))
		}
		fmt.Fprintf(tw, "\nshard rms p99\t%s\n", strings.Join(parts, "  "))
	}
}
