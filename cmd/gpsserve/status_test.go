package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpsdl/internal/engine"
	"gpsdl/internal/slo"
	"gpsdl/internal/telemetry"
)

// Single-receiver mode: /debug/status serves the liveness block without
// a quality section, in both JSON and text renderings.
func TestStatusSingleMode(t *testing.T) {
	_, tel := newTestTelemetry(t, time.Hour, nil)
	tel.health.recordEpoch()
	tel.health.recordFix(1.1)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q, want application/json; charset=utf-8", ct)
	}
	var sr statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Health.Status != "ok" || sr.Health.Fixes != 1 {
		t.Errorf("health block = %+v", sr.Health)
	}
	if sr.Quality != nil {
		t.Errorf("single mode carries a quality block: %+v", sr.Quality)
	}

	text, err := http.Get(srv.URL + "/debug/status?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	if ct := text.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text Content-Type = %q, want text/plain; charset=utf-8", ct)
	}
	body, _ := io.ReadAll(text.Body)
	for _, want := range []string{"status", "ok", "quality", "disabled"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text status missing %q:\n%s", want, body)
		}
	}

	bad, err := http.Get(srv.URL + "/debug/status?top=zero")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("top=zero status = %d, want 400", bad.StatusCode)
	}
}

// Engine mode with the quality layer on: /debug/status merges shard
// health with SLO verdicts, error budgets and the worst-sessions
// ranking, and /metrics carries the build-info and SLO gauge families.
func TestStatusEngineMode(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg)
	eng, err := engine.New(engine.Config{
		Receivers: 3,
		Workers:   2,
		Seed:      5,
		Registry:  reg,
		Quality: &engine.QualityConfig{
			Window:    128,
			EvalEvery: 32,
			Objectives: []slo.Objective{
				{Name: "availability", Kind: slo.KindAvailability, Target: 99, Window: 120},
				{Name: "p99_rms", Kind: slo.KindRMSQuantile, Target: 13, Quantile: 0.99, Window: 120},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 128); err != nil {
		t.Fatal(err)
	}
	h := newHealth(reg, time.Hour, nil)
	h.shards = eng.ShardHealth
	h.recordEpoch()
	h.recordFix(1.0)
	tel := &serverTelemetry{reg: reg, health: h, eng: eng}
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/status?top=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Health.Shards) != 2 {
		t.Errorf("%d shard health entries, want 2", len(sr.Health.Shards))
	}
	q := sr.Quality
	if q == nil || !q.Enabled {
		t.Fatalf("quality block = %+v", q)
	}
	if len(q.Objectives) != 2 {
		t.Errorf("%d objectives, want 2", len(q.Objectives))
	}
	if q.Window.Count != 3*128 {
		t.Errorf("fleet window count = %d, want 384", q.Window.Count)
	}
	if len(q.Sessions) != 2 {
		t.Errorf("top=2 returned %d worst sessions", len(q.Sessions))
	}

	text, err := http.Get(srv.URL + "/debug/status?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, _ := io.ReadAll(text.Body)
	for _, want := range []string{
		"SHARD", "OBJECTIVE", "availability", "p99_rms",
		"slo verdict", "fleet window", "WORST", "rms p50/p95/p99",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text status missing %q:\n%s", want, body)
		}
	}

	metrics, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	mb, _ := io.ReadAll(metrics.Body)
	for _, want := range []string{
		telemetry.MetricBuildInfo,
		telemetry.MetricProcessStartEpoch,
		`engine_slo_state{objective="availability"}`,
		`engine_slo_budget_remaining{objective="p99_rms"}`,
		"engine_slo_worst_state",
		"engine_quality_fleet_rms_p99_meters",
		"engine_slo_downgrades_total",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// The draining flag must surface on both /healthz and /debug/status
// once shutdown starts flushing.
func TestStatusDraining(t *testing.T) {
	_, tel := newTestTelemetry(t, time.Hour, nil)
	tel.health.recordFix(1.0)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()

	get := func() statusResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr statusResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	if get().Health.Draining {
		t.Error("draining before shutdown")
	}
	tel.health.startDrain()
	if !get().Health.Draining {
		t.Error("draining flag did not surface")
	}
}
