package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/engine"
	"gpsdl/internal/eval"
	"gpsdl/internal/fault"
	"gpsdl/internal/journal"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/trace"
)

// runIncidentEngine drives a journaling engine under a paging fault
// with incident capture into dir, returning the capturer and the
// telemetry set serving /debug/incidents.
func runIncidentEngine(t *testing.T, dir string) (*incidentCapturer, *serverTelemetry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	capturer, err := newIncidentCapturer(dir, 0, reg, discardLog())
	if err != nil {
		t.Fatal(err)
	}
	var jbuf bytes.Buffer
	eng, err := engine.New(engine.Config{
		Receivers: 2, Workers: 2, Seed: 2, Registry: reg,
		Quality:         &engine.QualityConfig{},
		CheckpointEvery: 50,
		JournalSink:     &jbuf,
		Faults:          fault.Program{{Kind: fault.KindStep, PRN: 14, Bias: 30, From: 50, Until: math.Inf(1)}},
		FaultSeed:       5,
		OnIncident:      capturer.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := newHealth(reg, time.Hour, nil)
	h.shards = eng.ShardHealth
	h.recordEpoch()
	h.recordFix(1.0)
	capturer.start(eng, h, json.RawMessage(`{"receivers":2}`))
	if err := eng.Run(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	capturer.close()
	return capturer, &serverTelemetry{reg: reg, health: h, eng: eng, inc: capturer}
}

// The tentpole acceptance path: a forced SLO page must produce a
// self-contained bundle — incident provenance, a scannable journal
// segment, gpsrun-replayable exemplars that reproduce the recorded fix
// bit-for-bit, a loadable checkpoint, status and config snapshots.
func TestIncidentCaptureBundle(t *testing.T) {
	dir := t.TempDir()
	capturer, _ := runIncidentEngine(t, dir)

	if got := capturer.captured.Value(); got < 1 {
		t.Fatalf("engine_incidents_captured_total = %d, want >= 1", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bundle string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			bundle = filepath.Join(dir, e.Name())
			break
		}
	}
	if bundle == "" {
		t.Fatalf("no bundle directory in %s: %v", dir, entries)
	}

	var rec incidentRecord
	data, err := os.ReadFile(filepath.Join(bundle, incidentFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != engine.IncidentSLOPage || rec.Objective == "" {
		t.Errorf("incident.json = %+v, want an slo_page with an objective", rec)
	}
	if rec.GoVersion == "" || rec.CapturedAt == "" {
		t.Errorf("incident.json missing provenance: %+v", rec)
	}

	seg, err := os.ReadFile(filepath.Join(bundle, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	res, err := journal.ScanBytes(seg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || len(res.Records) == 0 {
		t.Fatalf("bundle journal torn=%v records=%d", res.Torn, len(res.Records))
	}

	exf, err := os.Open(filepath.Join(bundle, exemplarsFile))
	if err != nil {
		t.Fatal(err)
	}
	defer exf.Close()
	exs, err := trace.DecodeExemplars(exf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exs {
		in, err := eval.DecodeReplayInput(ex)
		if err != nil {
			t.Fatal(err)
		}
		sv := in.ReplaySolver()
		if sv == nil {
			t.Fatalf("exemplar solver %q not replayable", in.Solver)
		}
		sol, err := sv.Solve(in.T, in.Obs)
		if err != nil {
			t.Fatalf("exemplar replay (epoch %d): %v", in.EpochIndex, err)
		}
		if sol.Pos != in.Solution {
			t.Fatalf("exemplar replay not bit-identical: %+v != %+v", sol.Pos, in.Solution)
		}
	}

	if st, err := checkpoint.Load(filepath.Join(bundle, checkpointFile)); err != nil {
		t.Fatal(err)
	} else if len(st.Sessions) == 0 {
		t.Error("bundle checkpoint has no sessions")
	}
	var status statusResponse
	if data, err := os.ReadFile(filepath.Join(bundle, statusFile)); err != nil {
		t.Fatal(err)
	} else if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	} else if status.Quality == nil || !status.Quality.Enabled {
		t.Errorf("bundle status.json quality block = %+v", status.Quality)
	}
	if _, err := os.Stat(filepath.Join(bundle, configFile)); err != nil {
		t.Error(err)
	}
}

// /debug/incidents must list captured bundles newest-first, and report
// enabled=false when capture is off.
func TestIncidentsEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, tel := runIncidentEngine(t, dir)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var list incidentList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || list.Dir != dir {
		t.Errorf("listing = enabled=%v dir=%q, want enabled in %q", list.Enabled, list.Dir, dir)
	}
	if len(list.Incidents) < 1 {
		t.Fatalf("no incidents listed")
	}
	for i := 1; i < len(list.Incidents); i++ {
		if list.Incidents[i-1].Bundle < list.Incidents[i].Bundle {
			t.Errorf("incidents not newest-first: %q before %q",
				list.Incidents[i-1].Bundle, list.Incidents[i].Bundle)
		}
	}

	// The capture counter must surface on /metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"engine_incidents_captured_total",
		"gps_journal_bytes_written_total",
		"gps_journal_fsyncs_total",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Capture disabled: the endpoint still answers, explicitly off.
	_, off := newTestTelemetry(t, time.Hour, nil)
	osrv := httptest.NewServer(newAdminMux(off))
	defer osrv.Close()
	oresp, err := http.Get(osrv.URL + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer oresp.Body.Close()
	var olist incidentList
	if err := json.NewDecoder(oresp.Body).Decode(&olist); err != nil {
		t.Fatal(err)
	}
	if olist.Enabled {
		t.Error("capture reported enabled without -incident-dir")
	}
}

// The rate limit must coalesce an incident storm into one bundle.
func TestIncidentRateLimit(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	capturer, err := newIncidentCapturer(dir, time.Hour, reg, discardLog())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Receivers: 1, Workers: 1, Seed: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	capturer.start(eng, newHealth(reg, time.Hour, nil), json.RawMessage(`{}`))
	for i := 0; i < 5; i++ {
		capturer.handle(engine.Incident{Kind: engine.IncidentPanic, Receiver: 0, Epoch: uint64(i)})
	}
	capturer.close()
	if got := capturer.captured.Value(); got != 1 {
		t.Errorf("captured %d bundles under a 1h rate limit, want 1", got)
	}
	if got := capturer.dropped.Value(); got != 4 {
		t.Errorf("dropped %d incidents, want 4", got)
	}
}
