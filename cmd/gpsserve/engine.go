// Multi-receiver serving mode: -receivers N > 1 swaps the single-station
// epoch loop for internal/engine's sharded fix engine. Every receiver's
// GGA/RMC stream is fanned out through the same broadcaster, the admin
// endpoint serves the engine's per-shard metrics (fixes, queue depth,
// solve-latency histograms) next to the broadcaster/health families, and
// /healthz keeps working — fed by fix events from all receivers.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"time"

	"gpsdl/internal/engine"
	"gpsdl/internal/fault"
	"gpsdl/internal/scenario"
	"gpsdl/internal/telemetry"
)

// engineParams is the subset of gpsserve flags the engine mode consumes.
type engineParams struct {
	receivers int
	workers   int
	station   string
	solver    string
	addr      string
	adminAddr string
	rate      float64
	seed      int64
	faults    string // fault-program spec (fault.ParseSpec grammar); "" = none
	faultSeed int64
	logs      *telemetry.Logging
}

// resolveStations maps the -station flag to receiver templates: a named
// station pins every receiver to it; "all" round-robins the four Table
// 5.1 stations across receivers.
func resolveStations(id string) ([]scenario.Station, error) {
	if id == "all" || id == "ALL" {
		return scenario.Table51Stations(), nil
	}
	st, err := scenario.StationByID(id)
	if err != nil {
		return nil, err
	}
	return []scenario.Station{st}, nil
}

// runEngine serves fixes from cfg.receivers concurrent sessions, paced at
// cfg.rate epochs per second per receiver, until ctx ends.
func runEngine(ctx context.Context, p engineParams) error {
	stations, err := resolveStations(p.station)
	if err != nil {
		return err
	}
	var prog fault.Program
	if p.faults != "" {
		prog, err = fault.ParseSpec(p.faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
	}
	reg := telemetry.NewRegistry()
	b := NewBroadcaster()
	b.Metrics = NewBroadcasterMetrics(reg)
	b.Logger = p.logs.Component("broadcaster")
	maxAge := time.Duration(10 * float64(time.Second) / p.rate)
	if maxAge < 10*time.Second {
		maxAge = 10 * time.Second
	}
	h := newHealth(reg, maxAge, b)
	eng, err := engine.New(engine.Config{
		Receivers: p.receivers,
		Workers:   p.workers,
		Solver:    p.solver,
		Seed:      p.seed,
		Faults:    prog,
		FaultSeed: p.faultSeed,
		Stations:  stations,
		Registry:  reg,
		// The sink runs on shard goroutines; health counters are atomic
		// and Broadcast locks internally, so no extra synchronization is
		// needed. GGA/RMC must be copied (string conversion does) before
		// the callback returns.
		Sink: func(e engine.FixEvent) {
			h.recordEpoch()
			if e.Err != nil {
				return
			}
			h.recordFix(e.HDOP)
			b.Broadcast(string(e.GGA))
			b.Broadcast(string(e.RMC))
		},
	})
	if err != nil {
		return err
	}
	h.shards = eng.ShardHealth
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", p.addr, err)
	}
	fmt.Printf("gpsserve: engine mode, %d receivers × %s over %d workers on %s (%g epoch/s each)\n",
		p.receivers, p.solver, eng.Workers(), ln.Addr(), p.rate)
	if p.faults != "" {
		fmt.Printf("gpsserve: fault injection active: %s (seed %d)\n", prog.String(), p.faultSeed)
	}
	if p.adminAddr != "" {
		tel := &serverTelemetry{reg: reg, health: h}
		bound, err := listenAdmin(ctx, p.adminAddr, tel, p.logs.Component("admin"))
		if err != nil {
			ln.Close()
			return err
		}
		fmt.Printf("gpsserve: admin on http://%s (/metrics /healthz)\n", bound)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- b.Serve(ctx, ln) }()

	err = paceEngine(ctx, eng, p.rate, p.logs.Component("engine"))
	cancelErr := <-serveErr
	if err != nil && ctx.Err() == nil {
		return err
	}
	if cancelErr != nil && ctx.Err() == nil {
		return cancelErr
	}
	return nil
}

// paceEngine drives RunPaced off a wall-clock ticker and logs a summary
// when the run ends.
func paceEngine(ctx context.Context, eng *engine.Engine, rate float64, log *slog.Logger) error {
	ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer ticker.Stop()
	err := eng.RunPaced(ctx, ticker.C)
	st := eng.Stats()
	log.Info("engine stopped",
		"fixes", st.Fixes,
		"coast_fixes", st.CoastFixes,
		"solve_failures", st.SolveFailures,
		"epoch_errors", st.EpochErrors,
		"fault_events", st.FaultEvents,
		"fallbacks", st.Fallbacks,
		"suspect_fixes", st.SuspectFixes,
		"raim_exclusions", st.RAIMExclusions,
		"batches_done", st.BatchesDone,
		"batches_aborted", st.BatchesAborted,
		"skipped_ticks", st.SkippedTicks)
	if err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
