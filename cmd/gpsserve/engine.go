// Multi-receiver serving mode: -receivers N > 1 swaps the single-station
// epoch loop for internal/engine's sharded fix engine. Every receiver's
// GGA/RMC stream is fanned out through the same broadcaster, the admin
// endpoint serves the engine's per-shard metrics (fixes, queue depth,
// solve-latency histograms) next to the broadcaster/health families, and
// /healthz keeps working — fed by fix events from all receivers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/cluster"
	"gpsdl/internal/engine"
	"gpsdl/internal/fault"
	"gpsdl/internal/journal"
	"gpsdl/internal/scenario"
	"gpsdl/internal/slo"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/wire"
)

// engineParams is the subset of gpsserve flags the engine mode consumes.
type engineParams struct {
	receivers  int
	sessions   []int  // explicit global session ids (cluster mode); empty uses receivers
	wireAddr   string // binary fix-stream listener; "" disables the cluster tier
	workers    int
	epochCache bool // share per-epoch constellation snapshots across sessions
	station    string
	solver     string
	addr       string
	adminAddr  string
	rate       float64
	seed       int64
	faults     string // fault-program spec (fault.ParseSpec grammar); "" = none
	faultSeed  int64
	ckptPath   string        // checkpoint file; "" disables checkpointing
	ckptEvery  int           // epochs between per-session checkpoint refreshes
	ckptPeriod time.Duration // wall-clock period between file saves
	restore    bool          // resume from ckptPath at startup
	drainWait  time.Duration // shutdown budget for flushing client queues
	quality    bool          // enable quality windows + SLO evaluation
	qualityWin int           // quality sliding-window span in epochs
	sloSpec    string        // slo.ParseObjectives grammar; "" = defaults

	journalPath string        // flight-journal file; "" disables journaling
	journalSync int           // record frames between journal sync points
	incidentDir string        // incident bundle directory; "" disables capture
	incidentGap time.Duration // minimum wall-clock spacing between bundles

	dlgVariant string // DLG covariance route: fast, paper or explicit
	weighting  bool   // C/N0 → sigma weighting on the solve paths
	disruption bool   // innovation-outlier down-weighting before RAIM

	logs *telemetry.Logging
}

// servingConfig is the config.json snapshot written into every
// incident bundle: the flags that shaped this serving process, so a
// bundle is interpretable without the launch command line.
type servingConfig struct {
	Receivers     int     `json:"receivers"`
	Workers       int     `json:"workers"`
	EpochCache    bool    `json:"epoch_cache"`
	Station       string  `json:"station"`
	Solver        string  `json:"solver"`
	Rate          float64 `json:"rate"`
	Seed          int64   `json:"seed"`
	Faults        string  `json:"faults,omitempty"`
	FaultSeed     int64   `json:"fault_seed,omitempty"`
	Checkpoint    string  `json:"checkpoint,omitempty"`
	Quality       bool    `json:"quality"`
	QualityWindow int     `json:"quality_window,omitempty"`
	SLO           string  `json:"slo,omitempty"`
	Journal       string  `json:"journal,omitempty"`
	JournalSync   int     `json:"journal_sync,omitempty"`
	IncidentDir   string  `json:"incident_dir,omitempty"`
	DLGVariant    string  `json:"dlg_variant,omitempty"`
	Weights       bool    `json:"weights,omitempty"`
	Disrupt       bool    `json:"disrupt,omitempty"`
}

// configSnapshot marshals the bundle config block (errors degrade to
// an empty object; capture must not fail over provenance).
func configSnapshot(p engineParams) json.RawMessage {
	raw, err := json.Marshal(servingConfig{
		Receivers:     p.receivers,
		Workers:       p.workers,
		EpochCache:    p.epochCache,
		Station:       p.station,
		Solver:        p.solver,
		Rate:          p.rate,
		Seed:          p.seed,
		Faults:        p.faults,
		FaultSeed:     p.faultSeed,
		Checkpoint:    p.ckptPath,
		Quality:       p.quality,
		QualityWindow: p.qualityWin,
		SLO:           p.sloSpec,
		Journal:       p.journalPath,
		JournalSync:   p.journalSync,
		IncidentDir:   p.incidentDir,
		DLGVariant:    p.dlgVariant,
		Weights:       p.weighting,
		Disrupt:       p.disruption,
	})
	if err != nil {
		return json.RawMessage("{}")
	}
	return raw
}

// resolveStations maps the -station flag to receiver templates: a named
// station pins every receiver to it; "all" round-robins the four Table
// 5.1 stations across receivers.
func resolveStations(id string) ([]scenario.Station, error) {
	if id == "all" || id == "ALL" {
		return scenario.Table51Stations(), nil
	}
	st, err := scenario.StationByID(id)
	if err != nil {
		return nil, err
	}
	return []scenario.Station{st}, nil
}

// runEngine serves fixes from cfg.receivers concurrent sessions, paced at
// cfg.rate epochs per second per receiver, until ctx ends.
func runEngine(ctx context.Context, p engineParams) error {
	stations, err := resolveStations(p.station)
	if err != nil {
		return err
	}
	var prog fault.Program
	if p.faults != "" {
		prog, err = fault.ParseSpec(p.faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
	}
	var qcfg *engine.QualityConfig
	if p.quality {
		objs, err := slo.ParseObjectives(p.sloSpec)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		qcfg = &engine.QualityConfig{Window: p.qualityWin, Objectives: objs}
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg)
	b := NewBroadcaster()
	b.Metrics = NewBroadcasterMetrics(reg)
	b.Logger = p.logs.Component("broadcaster")
	maxAge := time.Duration(10 * float64(time.Second) / p.rate)
	if maxAge < 10*time.Second {
		maxAge = 10 * time.Second
	}
	h := newHealth(reg, maxAge, b)
	h.ckptPath = p.ckptPath
	ckptEvery := 0
	if p.ckptPath != "" {
		ckptEvery = p.ckptEvery
	}
	if p.incidentDir != "" && ckptEvery == 0 {
		// Incident bundles embed a live snapshot; the lock-free
		// checkpoint cells must refresh even without -checkpoint.
		ckptEvery = p.ckptEvery
	}
	if p.wireAddr != "" && ckptEvery == 0 {
		// Cluster serving needs live checkpoint cells (the handoff
		// payload) and uses the same cadence as the wire keyframe blocks,
		// so a handoff point always lands on a chain-restart boundary.
		ckptEvery = p.ckptEvery
	}
	var jfile *os.File
	if p.journalPath != "" {
		jfile, err = os.Create(p.journalPath)
		if err != nil {
			return fmt.Errorf("-journal: %w", err)
		}
		defer jfile.Close()
	}
	var capturer *incidentCapturer
	var onIncident func(engine.Incident)
	if p.incidentDir != "" {
		capturer, err = newIncidentCapturer(p.incidentDir, p.incidentGap, reg, p.logs.Component("incident"))
		if err != nil {
			return fmt.Errorf("-incident-dir: %w", err)
		}
		onIncident = capturer.handle
	}
	// node is captured by the sink closure below; it is assigned (or left
	// nil) before the engine starts running, so shard goroutines only
	// ever observe the final value.
	var node *cluster.Node
	ecfg := engine.Config{
		Receivers:         p.receivers,
		Workers:           p.workers,
		DisableEpochCache: !p.epochCache,
		Solver:            p.solver,
		Seed:              p.seed,
		Faults:            prog,
		FaultSeed:         p.faultSeed,
		Stations:          stations,
		Registry:          reg,
		CheckpointEvery:   ckptEvery,
		DLGVariant:        p.dlgVariant,
		Weighting:         p.weighting,
		Disruption:        p.disruption,
		Quality:           qcfg,
		OnIncident:        onIncident,
		// The sink runs on shard goroutines; health counters are atomic
		// and Broadcast locks internally, so no extra synchronization is
		// needed. GGA/RMC must be copied (string conversion does) before
		// the callback returns.
		Sink: func(e engine.FixEvent) {
			h.recordEpoch()
			if node != nil {
				// The wire hub gets every event, misses included: a MISS
				// frame tells subscribers "no fix this epoch" where a
				// skipped epoch would read as a stream gap.
				node.Publish(e)
			}
			if e.Err != nil {
				return
			}
			h.recordFix(e.HDOP)
			b.Broadcast(string(e.GGA))
			b.Broadcast(string(e.RMC))
		},
	}
	if len(p.sessions) > 0 {
		ecfg.Receivers = 0
		ecfg.SessionIDs = p.sessions
	}
	if jfile != nil {
		ecfg.JournalSink = jfile
		ecfg.JournalOptions = journal.Options{SyncEvery: p.journalSync}
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return err
	}
	h.shards = eng.ShardHealth
	if p.wireAddr != "" {
		// The cluster serving tier: a Node owning the wire hub plus this
		// primary engine, with the /cluster/* control plane on the admin
		// mux. Adopted engines are built from a copy of this exact config
		// (same seed/solver/stations), which is what makes handed-off
		// streams bit-identical to the dead node's.
		node = cluster.NewNode(ctx, cluster.NodeConfig{
			Base:      ecfg,
			Rate:      p.rate,
			Hub:       wire.HubConfig{KeyframeEvery: ckptEvery},
			Registry:  reg,
			Log:       p.logs.Component("cluster"),
			OnRestore: h.recordRestore,
		})
		node.Track(eng)
	}
	if capturer != nil {
		capturer.start(eng, h, configSnapshot(p))
	}
	clog := p.logs.Component("checkpoint")
	// One shared family for every restore path (startup and handoff
	// adoptions) — the registry dedupes by name, so this is the same
	// counter cluster.NewNode registered when -wire is on.
	restoreFails := reg.Counter("gps_restore_failures_total",
		"Checkpoint restore attempts that fell back to cold start (corrupt, unreadable, or rejected checkpoints).")
	if p.restore {
		restoreCheckpoint(eng, p.ckptPath, h, restoreFails, clog)
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", p.addr, err)
	}
	nSessions := p.receivers
	if len(p.sessions) > 0 {
		nSessions = len(p.sessions)
	}
	fmt.Printf("gpsserve: engine mode, %d receivers × %s over %d workers on %s (%g epoch/s each)\n",
		nSessions, p.solver, eng.Workers(), ln.Addr(), p.rate)
	if p.faults != "" {
		fmt.Printf("gpsserve: fault injection active: %s (seed %d)\n", prog.String(), p.faultSeed)
	}
	if p.journalPath != "" {
		fmt.Printf("gpsserve: flight journal -> %s\n", p.journalPath)
	}
	if p.incidentDir != "" {
		fmt.Printf("gpsserve: incident capture -> %s\n", p.incidentDir)
	}
	// The broadcaster and admin endpoint run on their own context so the
	// SIGTERM drain is ordered: the engine stops first, the final
	// checkpoint is written, queued sentences flush to well-behaved
	// clients, and only then do connections (and /healthz) go away.
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	if p.adminAddr != "" {
		tel := &serverTelemetry{reg: reg, health: h, eng: eng, inc: capturer, node: node}
		bound, err := listenAdmin(bctx, p.adminAddr, tel, p.logs.Component("admin"))
		if err != nil {
			ln.Close()
			return err
		}
		fmt.Printf("gpsserve: admin on http://%s (/metrics /healthz /debug/status /debug/incidents)\n", bound)
	}
	if node != nil {
		wln, err := net.Listen("tcp", p.wireAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("wire listen %s: %w", p.wireAddr, err)
		}
		ws := &wire.Server{Hub: node.Hub}
		go func() { _ = ws.Serve(bctx, wln) }()
		fmt.Printf("gpsserve: wire fix streams on %s (resume tokens honored)\n", wln.Addr())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- b.Serve(bctx, ln) }()

	// Periodic checkpointing off the engine's lock-free snapshot cells.
	saverStop := make(chan struct{})
	saverDone := make(chan struct{})
	go func() {
		defer close(saverDone)
		if p.ckptPath == "" {
			return
		}
		t := time.NewTicker(p.ckptPeriod)
		defer t.Stop()
		for {
			select {
			case <-saverStop:
				return
			case <-t.C:
				if node != nil {
					// The merged node snapshot covers adopted sessions too.
					saveCheckpoint(node.Snapshot(), p.ckptPath, h, clog)
				} else {
					saveCheckpoint(eng.Snapshot(), p.ckptPath, h, clog)
				}
			}
		}
	}()

	err = paceEngine(ctx, eng, p.rate, p.logs.Component("engine"))

	// Ordered drain. The engine is quiescent once RunPaced returns (and
	// adopted engines once node.Wait returns — their pacers share ctx),
	// so SnapshotFinal reads exact session state for the final checkpoint.
	close(saverStop)
	<-saverDone
	if node != nil {
		node.Wait()
	}
	if p.ckptPath != "" {
		if node != nil {
			saveCheckpoint(node.SnapshotFinal(), p.ckptPath, h, clog)
		} else {
			saveCheckpoint(eng.SnapshotFinal(), p.ckptPath, h, clog)
		}
	}
	// The engine is quiescent: no further incidents will be delivered,
	// so the capturer can drain its queue and the journal take its final
	// sync frame.
	if capturer != nil {
		capturer.close()
	}
	if jw := eng.Journal(); jw != nil {
		if cerr := jw.Close(); cerr != nil {
			p.logs.Component("journal").Warn("journal close failed", "err", cerr)
		} else {
			frames, records, bytes := jw.Stats()
			fmt.Printf("gpsserve: journal closed: %d frames, %d records, %d bytes\n", frames, records, bytes)
		}
	}
	h.startDrain()
	if node != nil {
		// Binary subscribers get their channels closed; a reconnecting
		// client carries its resume token to the node that adopts these
		// sessions.
		node.Hub.Shutdown()
	}
	flushed := b.Flush(p.drainWait)
	bcancel()
	cancelErr := <-serveErr
	st := eng.Stats()
	fmt.Printf("gpsserve: drained: batches enqueued=%d done=%d aborted=%d drained=%d conserved=%v flushed=%v\n",
		st.BatchesEnqueued, st.BatchesDone, st.BatchesAborted, st.BatchesDrained,
		st.BatchesConserved(), flushed)
	if err != nil && ctx.Err() == nil {
		return err
	}
	if cancelErr != nil && !errors.Is(cancelErr, context.Canceled) {
		return cancelErr
	}
	return nil
}

// restoreCheckpoint resumes eng from the checkpoint at path. Every
// failure mode — missing file, corrupt or truncated payload,
// configuration mismatch — degrades to a logged cold start rather than
// an error: a server that cannot resume should still serve. Failures
// are no longer silent beyond the log line: each one increments
// gps_restore_failures_total, and the outcome (ok / cold-start /
// corrupt / rejected) is recorded on the health tracker for /healthz
// and /debug/status.
func restoreCheckpoint(eng *engine.Engine, path string, h *health,
	failures *telemetry.Counter, log *slog.Logger) {
	record := func(outcome, detail string, sessions, epoch int) {
		h.recordRestore(cluster.RestoreOutcome{
			Outcome: outcome, Detail: detail, Sessions: sessions, Epoch: epoch,
		})
	}
	st, err := checkpoint.Load(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// A missing file is the normal first boot, not a failure.
		record("cold-start", "no checkpoint file", 0, 0)
		log.Info("no checkpoint; cold start", "path", path)
		return
	case errors.Is(err, checkpoint.ErrCorrupt):
		failures.Inc()
		record("corrupt", err.Error(), 0, 0)
		log.Warn("checkpoint corrupt; cold start", "path", path, "err", err)
		return
	case err != nil:
		failures.Inc()
		record("corrupt", err.Error(), 0, 0)
		log.Warn("checkpoint unreadable; cold start", "path", path, "err", err)
		return
	}
	n, err := eng.Restore(st)
	if err != nil {
		failures.Inc()
		record("rejected", err.Error(), 0, 0)
		log.Warn("checkpoint rejected; cold start", "path", path, "err", err)
		return
	}
	record("ok", "", n, st.Epoch)
	log.Info("restored from checkpoint", "path", path, "sessions", n, "epoch", st.Epoch)
	fmt.Printf("gpsserve: restored %d sessions from %s, resuming at epoch %d\n", n, path, st.Epoch)
}

// saveCheckpoint writes one checkpoint state to path and records it on
// the health tracker. An empty state (no session has completed a refresh
// interval yet) is skipped rather than overwriting a previous save.
func saveCheckpoint(st *checkpoint.State, path string, h *health, log *slog.Logger) {
	if len(st.Sessions) == 0 {
		return
	}
	if err := checkpoint.Save(path, st); err != nil {
		log.Warn("checkpoint save failed", "path", path, "err", err)
		return
	}
	h.recordCheckpoint(st.Epoch)
	log.Debug("checkpoint saved", "path", path, "epoch", st.Epoch, "sessions", len(st.Sessions))
}

// paceEngine drives RunPaced off a wall-clock ticker and logs a summary
// when the run ends.
func paceEngine(ctx context.Context, eng *engine.Engine, rate float64, log *slog.Logger) error {
	ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer ticker.Stop()
	err := eng.RunPaced(ctx, ticker.C)
	st := eng.Stats()
	log.Info("engine stopped",
		"fixes", st.Fixes,
		"coast_fixes", st.CoastFixes,
		"solve_failures", st.SolveFailures,
		"epoch_errors", st.EpochErrors,
		"fault_events", st.FaultEvents,
		"fallbacks", st.Fallbacks,
		"suspect_fixes", st.SuspectFixes,
		"raim_exclusions", st.RAIMExclusions,
		"batches_done", st.BatchesDone,
		"batches_aborted", st.BatchesAborted,
		"batches_drained", st.BatchesDrained,
		"batches_conserved", st.BatchesConserved(),
		"skipped_ticks", st.SkippedTicks,
		"panics", st.Panics,
		"restarts", st.Restarts,
		"quarantined_epochs", st.QuarantinedEpochs,
		"failed_epochs", st.FailedEpochs,
		"breaker_opens", st.BreakerOpens)
	if err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
