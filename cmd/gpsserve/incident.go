// Automatic incident capture: when the engine reports an incident (an
// SLO objective paging, a recovered panic, a session out of restarts),
// a self-contained forensics bundle is written under -incident-dir —
// the recent flight-journal segment, a checkpoint of every session, the
// operator status view, the serving configuration, build info, and
// gpsrun-replayable exemplars lifted from the journal's captured
// observation sets. Bundles appear atomically (tmp dir + rename) and
// are listed on /debug/incidents.
package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/engine"
	"gpsdl/internal/eval"
	"gpsdl/internal/journal"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/trace"
)

// Bundle file names. Every bundle directory holds incidentFile; the
// rest are best-effort (a missing journal or checkpoint never blocks
// capture of the others).
const (
	incidentFile   = "incident.json"
	journalFile    = "journal.gpsj"
	checkpointFile = "checkpoint.ckpt"
	statusFile     = "status.json"
	configFile     = "config.json"
	exemplarsFile  = "exemplars.json"
)

// incidentExemplarMax bounds how many journal-captured epochs are
// lifted into a bundle's exemplars.json (most recent first).
const incidentExemplarMax = 16

// incidentRecord is the incident.json body: the engine's incident
// event plus capture provenance.
type incidentRecord struct {
	engine.Incident
	CapturedAt string `json:"captured_at"`
	GoVersion  string `json:"go_version"`
	Build      string `json:"build,omitempty"` // main module version when stamped
	Bundle     string `json:"bundle"`          // bundle directory name
}

// incidentCapturer turns engine incidents into on-disk bundles. The
// engine delivers incidents on shard goroutines, so handle() only
// enqueues; a single worker goroutine does the file I/O, and a
// per-bundle rate limit keeps a flapping SLO from filling the disk.
type incidentCapturer struct {
	dir    string
	minGap time.Duration
	log    *slog.Logger

	// Set by start() before the worker runs.
	eng    *engine.Engine
	health *health
	config json.RawMessage

	ch   chan engine.Incident
	done chan struct{}
	seq  atomic.Uint64

	captured *telemetry.Counter
	dropped  *telemetry.Counter
}

// newIncidentCapturer prepares dir and registers the incident counters
// in reg. minGap <= 0 disables rate limiting.
func newIncidentCapturer(dir string, minGap time.Duration, reg *telemetry.Registry, log *slog.Logger) (*incidentCapturer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("incident dir: %w", err)
	}
	return &incidentCapturer{
		dir:      dir,
		minGap:   minGap,
		log:      log,
		ch:       make(chan engine.Incident, 16),
		done:     make(chan struct{}),
		captured: reg.Counter("engine_incidents_captured_total", "Incident bundles written to the incident directory."),
		dropped:  reg.Counter("engine_incidents_dropped_total", "Incidents dropped by the capture rate limit or a full queue."),
	}, nil
}

// start wires the capture sources and launches the worker. config is
// the serving configuration snapshot written into every bundle.
func (c *incidentCapturer) start(eng *engine.Engine, h *health, config json.RawMessage) {
	c.eng, c.health, c.config = eng, h, config
	go c.run()
}

// handle is the engine.Config.OnIncident hook: cheap, concurrency-safe,
// never blocks a shard goroutine.
func (c *incidentCapturer) handle(inc engine.Incident) {
	select {
	case c.ch <- inc:
	default:
		c.dropped.Inc()
	}
}

// close stops the worker after the engine has quiesced (no further
// handle calls) and waits for an in-flight capture to finish.
func (c *incidentCapturer) close() {
	close(c.ch)
	<-c.done
}

// run drains the incident queue, enforcing the bundle rate limit.
func (c *incidentCapturer) run() {
	defer close(c.done)
	var last time.Time
	for inc := range c.ch {
		if c.minGap > 0 && !last.IsZero() && time.Since(last) < c.minGap {
			c.dropped.Inc()
			continue
		}
		name, err := c.capture(inc)
		if err != nil {
			c.log.Warn("incident capture failed", "kind", inc.Kind, "err", err)
			continue
		}
		last = time.Now()
		c.captured.Inc()
		c.log.Info("incident bundle captured",
			"bundle", name, "kind", inc.Kind, "receiver", inc.Receiver, "epoch", inc.Epoch)
	}
}

// capture writes one bundle. The bundle is assembled in a hidden temp
// directory and renamed into place so observers (the admin endpoint,
// gpsinspect, an operator's rsync) never see a partial bundle.
func (c *incidentCapturer) capture(inc engine.Incident) (string, error) {
	name := fmt.Sprintf("%s-%04d-%s-r%d",
		time.Now().UTC().Format("20060102T150405"), c.seq.Add(1), inc.Kind, inc.Receiver)
	tmp, err := os.MkdirTemp(c.dir, ".tmp-"+name+"-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	rec := incidentRecord{
		Incident:   inc,
		CapturedAt: time.Now().UTC().Format(time.RFC3339Nano),
		GoVersion:  runtime.Version(),
		Bundle:     name,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		rec.Build = bi.Main.Version
	}
	if err := writeJSON(filepath.Join(tmp, incidentFile), rec); err != nil {
		return "", err
	}
	if err := writeJSON(filepath.Join(tmp, configFile), c.config); err != nil {
		return "", err
	}
	st, _ := c.health.status()
	status := statusResponse{Health: st}
	if c.eng.QualityEnabled() {
		status.Quality = c.eng.Quality(statusTopDefault)
	}
	if err := writeJSON(filepath.Join(tmp, statusFile), status); err != nil {
		return "", err
	}
	if jw := c.eng.Journal(); jw != nil {
		seg := jw.TailSegment()
		if err := os.WriteFile(filepath.Join(tmp, journalFile), seg, 0o644); err != nil {
			return "", err
		}
		if err := writeExemplars(filepath.Join(tmp, exemplarsFile), seg); err != nil {
			c.log.Warn("incident exemplar extraction failed", "err", err)
		}
	}
	if snap := c.eng.Snapshot(); len(snap.Sessions) > 0 {
		if err := checkpoint.Save(filepath.Join(tmp, checkpointFile), snap); err != nil {
			return "", err
		}
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, name)); err != nil {
		return "", err
	}
	return name, nil
}

// writeJSON writes v as indented JSON.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeExemplars lifts the journal segment's captured observation sets
// into a gpsrun -replay compatible exemplar file (most recent epochs
// first, at most incidentExemplarMax).
func writeExemplars(path string, segment []byte) error {
	res, err := journal.ScanBytes(segment)
	if err != nil {
		return err
	}
	var exs []*trace.Exemplar
	for i := len(res.Records) - 1; i >= 0 && len(exs) < incidentExemplarMax; i-- {
		rec := &res.Records[i]
		in, err := eval.ReplayInputFromRecord(&res.Meta, rec)
		if err != nil {
			continue // not a captured solve epoch
		}
		var residual float64
		if rec.Has(journal.FlagRMS) {
			residual = rec.RMS
		}
		ex, err := eval.CaptureExemplar("incident", nil, 0, residual, in)
		if err != nil {
			return err
		}
		exs = append(exs, ex)
	}
	if len(exs) == 0 {
		return nil // nothing captured in the tail; not an error
	}
	return writeJSON(path, struct {
		Exemplars []*trace.Exemplar `json:"exemplars"`
	}{exs})
}

// incidentList is the /debug/incidents response body.
type incidentList struct {
	Enabled   bool             `json:"enabled"`
	Dir       string           `json:"dir,omitempty"`
	Incidents []incidentRecord `json:"incidents"`
}

// incidentsHandler serves /debug/incidents: every bundle's
// incident.json, newest first. Unreadable entries are skipped — a
// listing must not fail because one bundle is being rsynced away.
func (st *serverTelemetry) incidentsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	out := incidentList{Incidents: []incidentRecord{}}
	if st.inc != nil {
		out.Enabled = true
		out.Dir = st.inc.dir
		entries, err := os.ReadDir(st.inc.dir)
		if err == nil {
			for _, e := range entries {
				if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
					continue
				}
				data, err := os.ReadFile(filepath.Join(st.inc.dir, e.Name(), incidentFile))
				if err != nil {
					continue
				}
				var rec incidentRecord
				if json.Unmarshal(data, &rec) != nil {
					continue
				}
				rec.Bundle = e.Name()
				out.Incidents = append(out.Incidents, rec)
			}
		}
		sort.Slice(out.Incidents, func(i, j int) bool {
			return out.Incidents[i].Bundle > out.Incidents[j].Bundle
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
