package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/scenario"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/trace"
)

// discardLog is a no-output logger for exercising streamFixes directly.
func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestTelemetry wires the full server instrument set the way run()
// does, around a DLG solver and a linear clock predictor. rec may be nil
// (tracing disabled, the default).
func newTestTelemetry(t *testing.T, maxAge time.Duration, rec *trace.Recorder) (*telemetry.Registry, *serverTelemetry) {
	t.Helper()
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	pred := clock.NewLinearPredictor(5, 1e-4)
	tel := wireTelemetry(reg, core.NewDLGSolver(pred), pred, NewBroadcaster(), nil, maxAge, rec, false, st)
	return reg, tel
}

// The acceptance criterion: /metrics must serve Prometheus text format
// containing every key metric family from startup, before any traffic.
func TestAdminMetricsEndpoint(t *testing.T) {
	_, tel := newTestTelemetry(t, 0, nil)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4; charset=utf-8", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		// Required families.
		core.MetricSolveSeconds,
		core.MetricSolveFailures,
		core.MetricNRIterations,
		clock.MetricResets,
		metricClients,
		// Per-solver histogram series in Prometheus text shape.
		`gps_solve_seconds_bucket{solver="DLG",le="`,
		`gps_solve_seconds_bucket{solver="NR",le="+Inf"} 0`,
		`gps_solve_seconds_count{solver="DLG"}`,
		`gps_solve_seconds_count{solver="NR"}`,
		`gps_solve_failures_total{solver="DLG"} 0`,
		"# TYPE gps_solve_seconds histogram",
		"# TYPE gpsserve_clients gauge",
		// Connection and epoch-loop families.
		metricConnects,
		`gpsserve_drops_total{reason="slow"}`,
		metricEpochs,
		metricFixes,
		// DLG covariance-path counters.
		`gps_dlg_solves_total{path="fast"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// /metrics must reflect recorded activity.
func TestAdminMetricsReflectActivity(t *testing.T) {
	_, tel := newTestTelemetry(t, 0, nil)
	// Fail one solve (too few satellites) and record a fix.
	if _, err := tel.solver.Solve(0, nil); err == nil {
		t.Fatal("empty solve succeeded")
	}
	tel.health.recordEpoch()
	tel.health.recordFix(1.25)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`gps_solve_failures_total{solver="DLG"} 1`,
		"gpsserve_epochs_total 1",
		"gpsserve_fixes_total 1",
		"gpsserve_hdop 1.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n%s", want, out)
		}
	}
}

func TestHealthzLifecycle(t *testing.T) {
	_, tel := newTestTelemetry(t, time.Hour, nil)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()

	get := func() (healthStatus, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("/healthz Content-Type = %q, want application/json; charset=utf-8", ct)
		}
		var hs healthStatus
		if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
			t.Fatal(err)
		}
		return hs, resp.StatusCode
	}

	// Before any fix: starting, unavailable.
	hs, code := get()
	if code != http.StatusServiceUnavailable || hs.Status != "starting" {
		t.Errorf("pre-fix healthz = %d %q, want 503 starting", code, hs.Status)
	}
	if hs.LastFixAgeSeconds != -1 {
		t.Errorf("pre-fix age = %v, want -1", hs.LastFixAgeSeconds)
	}

	// After a fix: ok.
	tel.health.recordEpoch()
	tel.health.recordFix(0.9)
	hs, code = get()
	if code != http.StatusOK || hs.Status != "ok" {
		t.Errorf("post-fix healthz = %d %q, want 200 ok", code, hs.Status)
	}
	if hs.Epochs != 1 || hs.Fixes != 1 {
		t.Errorf("healthz counters = %d epochs %d fixes", hs.Epochs, hs.Fixes)
	}
	if hs.LastFixAgeSeconds < 0 {
		t.Errorf("age = %v after a fix", hs.LastFixAgeSeconds)
	}
}

func TestHealthzStalled(t *testing.T) {
	_, tel := newTestTelemetry(t, time.Nanosecond, nil)
	tel.health.recordFix(1)
	time.Sleep(2 * time.Millisecond)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hs healthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || hs.Status != "stalled" {
		t.Errorf("stale healthz = %d %q, want 503 stalled", resp.StatusCode, hs.Status)
	}
}

// Every mounted pprof route must answer 200 with a non-empty body —
// including the named profiles the index handler dispatches to.
func TestAdminPprofRoutes(t *testing.T) {
	_, tel := newTestTelemetry(t, 0, nil)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
		"/debug/pprof/heap",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/allocs",
		"/debug/pprof/threadcreate",
		"/debug/pprof/block",
		"/debug/pprof/mutex",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s returned an empty body", path)
		}
	}
}

// /healthz must expose broadcaster backpressure: the live client count
// and the cumulative drop total.
func TestHealthzBackpressure(t *testing.T) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	pred := clock.NewLinearPredictor(5, 1e-4)
	b := NewBroadcaster()
	tel := wireTelemetry(reg, core.NewDLGSolver(pred), pred, b, nil, time.Hour, nil, false, st)
	// Register one fake client and two historical drops directly; the
	// broadcaster lifecycle itself is covered by the server tests.
	b.clients[nil] = nil
	b.Metrics.SlowDrops.Inc()
	b.Metrics.ShutdownDrops.Inc()
	tel.health.recordEpoch()
	tel.health.recordFix(1)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hs healthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	if hs.Clients != 1 {
		t.Errorf("healthz clients = %d, want 1", hs.Clients)
	}
	if hs.Drops != 2 {
		t.Errorf("healthz drops = %d, want 2", hs.Drops)
	}
}

// With a recorder wired in, the /debug/trace routes must serve the
// retained traces, the Chrome export, and the exemplar tail.
func TestAdminTraceRoutes(t *testing.T) {
	rec := trace.New(trace.Config{Capacity: 8})
	_, tel := newTestTelemetry(t, 0, rec)
	tb := rec.StartEpoch(3, 1.5)
	sp := tb.Start("solve/dlg")
	sp.End()
	tb.Finish()
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("GET %s Content-Type = %q, want application/json; charset=utf-8", path, ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/debug/trace"); !strings.Contains(out, `"solve/dlg"`) || !strings.Contains(out, `"count": 1`) {
		t.Errorf("/debug/trace body missing trace: %s", out)
	}
	chrome := get("/debug/trace/chrome")
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome), &ct); err != nil {
		t.Fatalf("/debug/trace/chrome not JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Error("/debug/trace/chrome has no traceEvents")
	}
	if out := get("/debug/trace/exemplars"); !strings.Contains(out, `"exemplars"`) {
		t.Errorf("/debug/trace/exemplars body: %s", out)
	}
}

// Without a recorder the trace routes answer 404, distinguishing
// "tracing disabled" from "no traces yet".
func TestAdminTraceDisabled(t *testing.T) {
	_, tel := newTestTelemetry(t, 0, nil)
	srv := httptest.NewServer(newAdminMux(tel))
	defer srv.Close()
	for _, path := range []string{"/debug/trace", "/debug/trace/chrome", "/debug/trace/exemplars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// streamFixes must record one trace per epoch with the full pipeline
// span set, and capture exemplars when a threshold is crossed.
func TestStreamFixesTraces(t *testing.T) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(11))
	rec := trace.New(trace.Config{Capacity: 64, SlowThreshold: time.Nanosecond})
	reg := telemetry.NewRegistry()
	pred := clock.NewLinearPredictor(5, 1e-4)
	b := NewBroadcaster()
	tel := wireTelemetry(reg, core.NewDLGSolver(pred), pred, b, nil, 0, rec, false, st)
	source := func(i int) (scenario.Epoch, error) { return g.EpochAt(float64(i)) }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- streamFixes(ctx, source, tel, pred, b, 2000, discardLog()) }()
	deadline := time.Now().Add(10 * time.Second)
	for rec.Count() < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rec.Count() < 20 {
		t.Fatalf("recorded %d traces, want >= 20", rec.Count())
	}
	// Find a successful fix (the DLG solver needs predictor warm-up, so
	// the earliest epochs fail) and check its span pipeline.
	var fix *trace.Trace
	for _, tr := range rec.Snapshot() {
		if tr.Err == "" {
			fix = tr
			break
		}
	}
	if fix == nil {
		t.Fatal("no successful fix among recorded traces")
	}
	for _, name := range []string{
		"epoch/generate", "clock/predict", "solve/dlg",
		"dop/compute", "nmea/encode", "broadcast",
	} {
		if fix.Span(name) == nil {
			t.Errorf("trace missing span %s: %+v", name, fix.Spans)
		}
	}
	if fix.T == 0 {
		t.Error("trace T not back-filled from the generated epoch")
	}
	exs := rec.Exemplars()
	if len(exs) == 0 {
		t.Fatal("1 ns slow threshold captured no exemplars")
	}
	in, err := eval.DecodeReplayInput(exs[0])
	if err != nil {
		t.Fatal(err)
	}
	if in.Solver != "DLG" || len(in.Obs) == 0 || in.Station.ID != "YYR1" {
		t.Errorf("exemplar input = %+v", in)
	}
}

// A RAIM-gated server must emit raim/check spans wrapping per-solve
// spans for the initial fix.
func TestStreamFixesRAIMSpans(t *testing.T) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(12))
	rec := trace.New(trace.Config{Capacity: 64})
	reg := telemetry.NewRegistry()
	pred := clock.NewLinearPredictor(5, 1e-4)
	b := NewBroadcaster()
	tel := wireTelemetry(reg, &core.NRSolver{}, pred, b, nil, 0, rec, true, st)
	source := func(i int) (scenario.Epoch, error) { return g.EpochAt(float64(i)) }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- streamFixes(ctx, source, tel, pred, b, 2000, discardLog()) }()
	deadline := time.Now().Add(10 * time.Second)
	for rec.Count() < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var checked *trace.Trace
	for _, tr := range rec.Snapshot() {
		if tr.Span("raim/check") != nil {
			checked = tr
			break
		}
	}
	if checked == nil {
		t.Fatal("no trace carries a raim/check span")
	}
	if checked.Span("solve/nr") == nil {
		t.Errorf("RAIM trace missing inner solve/nr span: %+v", checked.Spans)
	}
}
