package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/telemetry"
)

// newTestTelemetry wires the full server instrument set the way run()
// does, around a DLG solver and a linear clock predictor.
func newTestTelemetry(maxAge time.Duration) (*telemetry.Registry, *serverTelemetry) {
	reg := telemetry.NewRegistry()
	pred := clock.NewLinearPredictor(5, 1e-4)
	tel := wireTelemetry(reg, core.NewDLGSolver(pred), pred, NewBroadcaster(), nil, maxAge)
	return reg, tel
}

// The acceptance criterion: /metrics must serve Prometheus text format
// containing every key metric family from startup, before any traffic.
func TestAdminMetricsEndpoint(t *testing.T) {
	reg, tel := newTestTelemetry(0)
	srv := httptest.NewServer(newAdminMux(reg, tel.health))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		// Required families.
		core.MetricSolveSeconds,
		core.MetricSolveFailures,
		core.MetricNRIterations,
		clock.MetricResets,
		metricClients,
		// Per-solver histogram series in Prometheus text shape.
		`gps_solve_seconds_bucket{solver="DLG",le="`,
		`gps_solve_seconds_bucket{solver="NR",le="+Inf"} 0`,
		`gps_solve_seconds_count{solver="DLG"}`,
		`gps_solve_seconds_count{solver="NR"}`,
		`gps_solve_failures_total{solver="DLG"} 0`,
		"# TYPE gps_solve_seconds histogram",
		"# TYPE gpsserve_clients gauge",
		// Connection and epoch-loop families.
		metricConnects,
		`gpsserve_drops_total{reason="slow"}`,
		metricEpochs,
		metricFixes,
		// DLG covariance-path counters.
		`gps_dlg_solves_total{path="fast"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// /metrics must reflect recorded activity.
func TestAdminMetricsReflectActivity(t *testing.T) {
	reg, tel := newTestTelemetry(0)
	// Fail one solve (too few satellites) and record a fix.
	if _, err := tel.solver.Solve(0, nil); err == nil {
		t.Fatal("empty solve succeeded")
	}
	tel.health.recordEpoch()
	tel.health.recordFix(1.25)
	srv := httptest.NewServer(newAdminMux(reg, tel.health))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`gps_solve_failures_total{solver="DLG"} 1`,
		"gpsserve_epochs_total 1",
		"gpsserve_fixes_total 1",
		"gpsserve_hdop 1.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n%s", want, out)
		}
	}
}

func TestHealthzLifecycle(t *testing.T) {
	reg, tel := newTestTelemetry(time.Hour)
	srv := httptest.NewServer(newAdminMux(reg, tel.health))
	defer srv.Close()

	get := func() (healthStatus, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hs healthStatus
		if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
			t.Fatal(err)
		}
		return hs, resp.StatusCode
	}

	// Before any fix: starting, unavailable.
	hs, code := get()
	if code != http.StatusServiceUnavailable || hs.Status != "starting" {
		t.Errorf("pre-fix healthz = %d %q, want 503 starting", code, hs.Status)
	}
	if hs.LastFixAgeSeconds != -1 {
		t.Errorf("pre-fix age = %v, want -1", hs.LastFixAgeSeconds)
	}

	// After a fix: ok.
	tel.health.recordEpoch()
	tel.health.recordFix(0.9)
	hs, code = get()
	if code != http.StatusOK || hs.Status != "ok" {
		t.Errorf("post-fix healthz = %d %q, want 200 ok", code, hs.Status)
	}
	if hs.Epochs != 1 || hs.Fixes != 1 {
		t.Errorf("healthz counters = %d epochs %d fixes", hs.Epochs, hs.Fixes)
	}
	if hs.LastFixAgeSeconds < 0 {
		t.Errorf("age = %v after a fix", hs.LastFixAgeSeconds)
	}
}

func TestHealthzStalled(t *testing.T) {
	reg, tel := newTestTelemetry(time.Nanosecond)
	tel.health.recordFix(1)
	time.Sleep(2 * time.Millisecond)
	srv := httptest.NewServer(newAdminMux(reg, tel.health))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hs healthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || hs.Status != "stalled" {
		t.Errorf("stale healthz = %d %q, want 503 stalled", resp.StatusCode, hs.Status)
	}
}

func TestAdminPprofRoutes(t *testing.T) {
	reg, tel := newTestTelemetry(0)
	srv := httptest.NewServer(newAdminMux(reg, tel.health))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
