package main

import (
	"bufio"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gpsdl/internal/nmea"
	"gpsdl/internal/scenario"
	"gpsdl/internal/telemetry"
)

// startBroadcaster spins up a broadcaster on an ephemeral port.
func startBroadcaster(t *testing.T) (*Broadcaster, string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroadcaster()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = b.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("broadcaster did not shut down")
		}
	})
	return b, ln.Addr().String(), cancel
}

// waitForClients polls until the broadcaster sees n clients.
func waitForClients(t *testing.T, b *Broadcaster, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.ClientCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("client count %d, want %d", b.ClientCount(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBroadcastReachesAllClients(t *testing.T) {
	b, addr, _ := startBroadcaster(t)
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitForClients(t, b, 2)

	b.Broadcast("$GPGGA,test*00")
	b.Broadcast("$GPRMC,test*00")
	for i, c := range []net.Conn{c1, c2} {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		r := bufio.NewReader(c)
		l1, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("client %d read: %v", i, err)
		}
		if !strings.HasPrefix(l1, "$GPGGA") {
			t.Errorf("client %d line 1 = %q", i, l1)
		}
		l2, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("client %d read 2: %v", i, err)
		}
		if !strings.HasPrefix(l2, "$GPRMC") {
			t.Errorf("client %d line 2 = %q", i, l2)
		}
		if !strings.HasSuffix(l2, "\r\n") {
			t.Errorf("client %d missing CRLF: %q", i, l2)
		}
	}
}

func TestSlowClientIsDropped(t *testing.T) {
	b, addr, _ := startBroadcaster(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitForClients(t, b, 1)
	// Never read from c; flood well past queue + socket buffers.
	long := strings.Repeat("x", 1024)
	for i := 0; i < 20000; i++ {
		b.Broadcast(long)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.ClientCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow client was never dropped")
		}
		b.Broadcast(long)
		time.Sleep(time.Millisecond)
	}
}

func TestShutdownClosesClients(t *testing.T) {
	b, addr, cancel := startBroadcaster(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitForClients(t, b, 1)
	cancel()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("connection still open after shutdown")
	}
	// New connections must be rejected or immediately closed.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err == nil {
			t.Error("post-shutdown connection served")
		}
		conn.Close()
	}
}

// End-to-end: run the full server briefly and read real NMEA sentences.
// Engine mode end-to-end: -receivers > 1 serves interleaved NMEA from
// every session through the same broadcaster.
func TestServeEngineModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("network end-to-end")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", addr, "-rate", "50", "-receivers", "3",
			"-station", "all", "-solver", "dlg", "-admin", "127.0.0.1:0"})
	}()
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	r := bufio.NewReader(conn)
	// With three receivers at 50 Hz each, a handful of lines arrives
	// quickly; every one must be a valid GGA or RMC sentence.
	sawGGA := false
	for i := 0; i < 6; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read line %d: %v", i, err)
		}
		s := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(s, "$GPGGA"):
			if _, err := nmea.ParseGGA(s); err != nil {
				t.Errorf("invalid GGA: %v (%q)", err, s)
			}
			sawGGA = true
		case strings.HasPrefix(s, "$GPRMC"):
		default:
			t.Errorf("unexpected sentence %q", s)
		}
	}
	if !sawGGA {
		t.Error("no GGA sentence among the first 6 lines")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("server did not stop")
	}
}

func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("network end-to-end")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", addr, "-rate", "50", "-solver", "nr", "-admin", "127.0.0.1:0"})
	}()
	// Wait for the listener, then read two sentences.
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if _, err := nmea.ParseGGA(strings.TrimSpace(line)); err != nil {
		t.Errorf("first sentence not valid GGA: %v (%q)", err, line)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("server did not stop")
	}
}

// Replay mode: serve from a saved dataset file.
func TestServeReplayDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("network end-to-end")
	}
	st, err := scenario.StationByID("FAI1")
	if err != nil {
		t.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(4))
	ds, err := g.GenerateRange(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/fai1.bin"
	if err := ds.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", addr, "-rate", "100", "-solver", "nr", "-dataset", path})
	}()
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	fix, err := nmea.ParseGGA(strings.TrimSpace(line))
	if err != nil {
		t.Fatalf("not GGA: %v (%q)", err, line)
	}
	// The replayed fixes must be near the dataset's station.
	if d := fix.Pos.ToECEF().DistanceTo(st.Pos); d > 100 {
		t.Errorf("replayed fix %v m from station", d)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Error("server did not stop")
	}
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-zap"}},
		{"bad rate", []string{"-rate", "0"}},
		{"negative rate", []string{"-rate", "-3"}},
		{"empty station", []string{"-station", ""}},
		{"blank station", []string{"-station", "   "}},
		{"unknown station", []string{"-station", "NOPE"}},
		{"unknown solver", []string{"-solver", "magic"}},
		{"bad log level", []string{"-log-level", "loud"}},
		{"bad log format", []string{"-log-format", "xml"}},
		{"bad admin address", []string{"-addr", "127.0.0.1:0", "-admin", "256.256.256.256:99999"}},
		{"missing dataset", []string{"-dataset", "/does/not/exist.jsonl"}},
		{"bad listen address", []string{"-addr", "256.256.256.256:99999"}},
		{"zero receivers", []string{"-receivers", "0"}},
		{"engine with dataset", []string{"-receivers", "2", "-dataset", "/does/not/exist.jsonl"}},
		{"engine with raim", []string{"-receivers", "2", "-raim"}},
		{"engine with trace dump", []string{"-receivers", "2", "-trace", "16", "-trace-dump", "/tmp/engine-trace.json"}},
		{"engine unknown station", []string{"-receivers", "2", "-station", "NOPE"}},
		{"engine unknown solver", []string{"-receivers", "2", "-solver", "magic"}},
		{"restore without checkpoint", []string{"-restore"}},
		{"checkpoint single receiver", []string{"-checkpoint", "/tmp/gps.ckpt"}},
		{"zero checkpoint every", []string{"-checkpoint-every", "0"}},
		{"zero checkpoint interval", []string{"-checkpoint-interval", "0s"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(ctx, tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

// Gauge consistency: after N connects, M slow-client evictions, and
// shutdown, ClientCount and the connection/drop counters must agree:
// connects − drops == clients == 0, with the slow eviction attributed
// to the "slow" reason and the rest to "shutdown".
func TestBroadcasterGaugeConsistency(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroadcaster()
	b.QueueLen = 1 // tiny queue so a non-reading client evicts quickly
	b.Metrics = NewBroadcasterMetrics(telemetry.NewRegistry())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = b.Serve(ctx, ln)
	}()
	addr := ln.Addr().String()

	// Two well-behaved readers that drain until their connection dies.
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := c.Read(buf); err != nil {
					return
				}
			}
		}()
	}
	// One slow client that never reads.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	waitForClients(t, b, 3)
	if got := b.Metrics.Connects.Value(); got != 3 {
		t.Errorf("connects = %d, want 3", got)
	}
	if got := b.Metrics.Clients.Value(); got != 3 {
		t.Errorf("clients gauge = %v, want 3", got)
	}

	// Flood until the slow client overflows its 1-line queue.
	long := strings.Repeat("x", 1024)
	deadline := time.Now().Add(10 * time.Second)
	for b.ClientCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("slow client was never evicted")
		}
		b.Broadcast(long)
		time.Sleep(time.Millisecond)
	}
	if got := b.Metrics.SlowDrops.Value(); got != 1 {
		t.Errorf("slow drops = %d, want 1", got)
	}

	// Shutdown: the remaining clients drop with reason=shutdown.
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcaster did not shut down")
	}
	m := b.Metrics
	if got := m.ShutdownDrops.Value(); got != 2 {
		t.Errorf("shutdown drops = %d, want 2", got)
	}
	if b.ClientCount() != 0 {
		t.Errorf("ClientCount = %d after shutdown", b.ClientCount())
	}
	if got := m.Clients.Value(); got != 0 {
		t.Errorf("clients gauge = %v after shutdown, want 0", got)
	}
	if connects, drops := m.Connects.Value(), m.Drops(); connects != drops {
		t.Errorf("conservation violated: connects %d != drops %d at quiescence", connects, drops)
	}
	if got := m.Sentences.Value(); got == 0 {
		t.Error("no sentences counted despite broadcasts")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(1))
	ds, err := g.GenerateRange(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/empty.bin"
	if err := ds.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-dataset", path}); err == nil {
		t.Error("empty dataset accepted")
	}
}

// TestBroadcasterStatsConsistency churns connections while hammering
// Stats: because every connect/drop mutates the counters under the
// broadcaster mutex, each snapshot must satisfy the conservation law
// connects − drops == clients even mid-churn. (Reading ClientCount and
// Metrics.Drops separately, as healthz used to, violates this
// transiently.)
func TestBroadcasterStatsConsistency(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroadcaster()
	b.Metrics = NewBroadcasterMetrics(telemetry.NewRegistry())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = b.Serve(ctx, ln)
	}()
	addr := ln.Addr().String()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for w := 0; w < 4; w++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := net.Dial("tcp", addr)
				if err != nil {
					continue
				}
				time.Sleep(time.Millisecond)
				c.Close()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	checks := 0
	for time.Now().Before(deadline) {
		clients, connects, drops := b.Stats()
		if connects-drops != uint64(clients) {
			close(stop)
			churn.Wait()
			t.Fatalf("conservation violated in snapshot: connects %d − drops %d != clients %d",
				connects, drops, clients)
		}
		checks++
	}
	close(stop)
	churn.Wait()
	if checks == 0 {
		t.Fatal("no snapshots taken")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcaster did not shut down")
	}
	// Quiescent: all churned connections eventually drop.
	waitForClients(t, b, 0)
	clients, connects, drops := b.Stats()
	if clients != 0 || connects != drops {
		t.Errorf("quiescent snapshot: clients %d, connects %d, drops %d", clients, connects, drops)
	}
}
