// Admin HTTP endpoint: /metrics (Prometheus text format), /healthz
// (epoch-loop liveness with last-fix age and broadcaster backpressure),
// /debug/trace* (the flight recorder: JSON, Chrome trace_event, and
// replayable exemplars), and /debug/pprof/* for live profiling. Enabled
// with -admin addr; everything is stdlib-only.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/cluster"
	"gpsdl/internal/core"
	"gpsdl/internal/engine"
	"gpsdl/internal/eval"
	"gpsdl/internal/scenario"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/trace"
)

// health tracks epoch-loop liveness for /healthz: how many epochs have
// been processed, how many produced broadcast fixes, and how stale the
// latest fix is.
type health struct {
	// maxAge is the last-fix staleness above which the server reports
	// unhealthy; 0 means 10 s.
	maxAge time.Duration

	started      time.Time
	lastFixNanos atomic.Int64 // wall-clock ns of the last fix; 0 = none yet

	// epochs/fixes also back gpsserve_epochs_total / gpsserve_fixes_total.
	epochs *telemetry.Counter
	fixes  *telemetry.Counter
	hdop   *telemetry.Gauge

	// b, when non-nil, contributes broadcaster backpressure (current
	// client count and cumulative drops) to the health JSON, so a
	// degraded broadcaster is visible without scraping /metrics.
	b *Broadcaster

	// shards, when non-nil (engine mode), contributes the per-shard
	// session-state census so /healthz shows which shards are degraded
	// or coasting under fault injection.
	shards func() []engine.ShardHealth

	// ckptPath, when non-empty, surfaces checkpoint liveness on
	// /healthz: the file path, the epoch of the last successful save,
	// and its wall-clock age.
	ckptPath      string
	lastCkptNanos atomic.Int64 // wall-clock ns of the last save; 0 = none yet
	lastCkptEpoch atomic.Int64

	// draining flips once shutdown starts flushing client queues, so
	// /healthz and /debug/status distinguish a deliberate drain from a
	// stall during the grace window.
	draining atomic.Bool

	// lastRestore holds the most recent checkpoint-restore verdict —
	// startup -restore or a cluster handoff adoption — so a node that
	// silently fell back to cold start is visible on /healthz.
	lastRestore atomic.Pointer[cluster.RestoreOutcome]
}

// newHealth returns a tracker whose instruments are registered in reg
// (nil reg leaves them disabled; liveness still works).
func newHealth(reg *telemetry.Registry, maxAge time.Duration, b *Broadcaster) *health {
	return &health{
		maxAge:  maxAge,
		started: time.Now(),
		epochs:  reg.Counter(metricEpochs, "Epochs pulled from the observation source."),
		fixes:   reg.Counter(metricFixes, "Epochs that produced a broadcast fix."),
		hdop:    reg.Gauge(metricHDOP, "HDOP of the most recent fix."),
		b:       b,
	}
}

// recordEpoch notes one epoch-loop tick.
func (h *health) recordEpoch() {
	if h != nil {
		h.epochs.Inc()
	}
}

// recordFix notes one successful broadcast fix and its HDOP.
func (h *health) recordFix(hdop float64) {
	if h == nil {
		return
	}
	h.fixes.Inc()
	h.hdop.Set(hdop)
	h.lastFixNanos.Store(time.Now().UnixNano())
}

// startDrain marks the server as draining (shutdown flush in progress).
func (h *health) startDrain() {
	if h != nil {
		h.draining.Store(true)
	}
}

// recordRestore notes a checkpoint-restore outcome (startup or handoff).
func (h *health) recordRestore(o cluster.RestoreOutcome) {
	if h != nil {
		h.lastRestore.Store(&o)
	}
}

// recordCheckpoint notes one successful checkpoint save.
func (h *health) recordCheckpoint(epoch int) {
	if h == nil {
		return
	}
	h.lastCkptEpoch.Store(int64(epoch))
	h.lastCkptNanos.Store(time.Now().UnixNano())
}

// checkpointStatus is the /healthz checkpoint block (engine mode with
// -checkpoint only).
type checkpointStatus struct {
	Path string `json:"path"`
	// Epoch is the engine epoch of the last successful save; AgeSeconds
	// its wall-clock age (-1 before the first save).
	Epoch      int     `json:"epoch"`
	AgeSeconds float64 `json:"age_seconds"`
}

// healthStatus is the /healthz response body.
type healthStatus struct {
	Status            string  `json:"status"` // ok | starting | stalled
	UptimeSeconds     float64 `json:"uptime_seconds"`
	Epochs            uint64  `json:"epochs"`
	Fixes             uint64  `json:"fixes"`
	LastFixAgeSeconds float64 `json:"last_fix_age_seconds"` // -1 before the first fix
	// Clients and Drops expose broadcaster backpressure: connected NMEA
	// clients right now, and cumulative disconnections for any reason.
	Clients int    `json:"clients"`
	Drops   uint64 `json:"drops"`
	// Draining reports that shutdown is flushing client queues; the
	// server is going away on purpose, not stalled.
	Draining bool `json:"draining,omitempty"`
	// Shards is the engine mode's per-shard session-state census
	// (healthy / degraded / coasting), absent in single-receiver mode.
	Shards []engine.ShardHealth `json:"shards,omitempty"`
	// DegradedSessions and CoastingSessions total the census across
	// shards, so a load balancer can alert on one number. The
	// supervision totals below do the same for the isolation machinery:
	// sessions in backoff quarantine after a panic, sessions whose
	// restart budget ran out, sessions behind an open circuit breaker,
	// and the cumulative worker-loop panic / restart counts.
	DegradedSessions    uint64 `json:"degraded_sessions,omitempty"`
	CoastingSessions    uint64 `json:"coasting_sessions,omitempty"`
	QuarantinedSessions uint64 `json:"quarantined_sessions,omitempty"`
	FailedSessions      uint64 `json:"failed_sessions,omitempty"`
	BreakerOpenSessions uint64 `json:"breaker_open_sessions,omitempty"`
	Panics              uint64 `json:"panics,omitempty"`
	Restarts            uint64 `json:"restarts,omitempty"`
	// Checkpoint reports checkpoint liveness when -checkpoint is set.
	Checkpoint *checkpointStatus `json:"checkpoint,omitempty"`
	// Restore is the most recent checkpoint-restore verdict (startup
	// -restore or handoff adoption); absent before any restore attempt.
	Restore *cluster.RestoreOutcome `json:"restore,omitempty"`
}

// status snapshots the current liveness verdict.
func (h *health) status() (healthStatus, int) {
	maxAge := h.maxAge
	if maxAge <= 0 {
		maxAge = 10 * time.Second
	}
	s := healthStatus{
		UptimeSeconds:     time.Since(h.started).Seconds(),
		Epochs:            h.epochs.Value(),
		Fixes:             h.fixes.Value(),
		LastFixAgeSeconds: -1,
		Draining:          h.draining.Load(),
	}
	if h.b != nil {
		// One locked snapshot keeps clients and drops mutually
		// consistent (connects − drops == clients).
		s.Clients, _, s.Drops = h.b.Stats()
	}
	if h.shards != nil {
		s.Shards = h.shards()
		for _, sh := range s.Shards {
			s.DegradedSessions += sh.Degraded
			s.CoastingSessions += sh.Coasting
			s.QuarantinedSessions += sh.Quarantined
			s.FailedSessions += sh.Failed
			s.BreakerOpenSessions += sh.BreakerOpen
			s.Panics += sh.Panics
			s.Restarts += sh.Restarts
		}
	}
	s.Restore = h.lastRestore.Load()
	if h.ckptPath != "" {
		cs := &checkpointStatus{Path: h.ckptPath, AgeSeconds: -1}
		if last := h.lastCkptNanos.Load(); last != 0 {
			cs.Epoch = int(h.lastCkptEpoch.Load())
			cs.AgeSeconds = time.Since(time.Unix(0, last)).Seconds()
		}
		s.Checkpoint = cs
	}
	last := h.lastFixNanos.Load()
	if last == 0 {
		s.Status = "starting"
		return s, http.StatusServiceUnavailable
	}
	age := time.Since(time.Unix(0, last))
	s.LastFixAgeSeconds = age.Seconds()
	if age > maxAge {
		s.Status = "stalled"
		return s, http.StatusServiceUnavailable
	}
	s.Status = "ok"
	return s, http.StatusOK
}

// handler serves /healthz.
func (h *health) handler(w http.ResponseWriter, _ *http.Request) {
	body, code := h.status()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// newAdminMux wires the admin routes. st.rec may be nil (tracing
// disabled: the /debug/trace routes answer 404); st.eng may be nil
// (single-receiver mode: /debug/status serves liveness without the
// quality/SLO block).
func newAdminMux(st *serverTelemetry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(st.reg))
	mux.HandleFunc("/healthz", st.health.handler)
	mux.HandleFunc("/debug/status", st.statusHandler)
	mux.HandleFunc("/debug/incidents", st.incidentsHandler)
	mux.Handle("/debug/trace", trace.Handler(st.rec))
	mux.Handle("/debug/trace/chrome", trace.ChromeHandler(st.rec))
	mux.Handle("/debug/trace/exemplars", trace.ExemplarsHandler(st.rec))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if st.node != nil {
		// Cluster control plane: session discovery, checkpoint fetch,
		// and handoff adoption (gpsproxy drives these).
		st.node.Routes(mux)
	}
	return mux
}

// serveAdmin runs the admin HTTP server on ln until ctx ends.
func serveAdmin(ctx context.Context, ln net.Listener, handler http.Handler, log *slog.Logger) {
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	stop := context.AfterFunc(ctx, func() { srv.Close() })
	defer stop()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && ctx.Err() == nil && log != nil {
		log.Error("admin server failed", "err", err)
	}
}

// serverTelemetry is the full gpsserve instrument set: the primary and
// warm-up solvers wrapped with per-solver metrics, clock-predictor
// counters, broadcaster connection metrics, the health tracker, and the
// optional flight recorder and RAIM integrity gate. One constructor so
// run() and the admin tests register identical families — every
// required /metrics name exists from startup, before traffic.
type serverTelemetry struct {
	reg     *telemetry.Registry
	solver  core.Solver // instrumented primary solver
	warm    core.Solver // instrumented NR warm-up / clock-feed solver
	raim    *core.RAIM  // non-nil when -raim integrity gating is on
	rec     *trace.Recorder
	station scenario.Station // ground truth for exemplar residuals
	health  *health
	eng     *engine.Engine    // engine mode only; nil for the single-receiver loop
	inc     *incidentCapturer // engine mode with -incident-dir; nil otherwise
	node    *cluster.Node     // cluster serving tier (-wire); nil otherwise
}

// wireTelemetry instruments the server around registry reg. logs may be
// nil (silent); rec may be nil (tracing disabled).
func wireTelemetry(reg *telemetry.Registry, solver core.Solver, pred clock.Predictor,
	b *Broadcaster, logs *telemetry.Logging, fixMaxAge time.Duration,
	rec *trace.Recorder, withRAIM bool, st scenario.Station) *serverTelemetry {
	telemetry.RegisterBuildInfo(reg)
	if lp, ok := pred.(*clock.LinearPredictor); ok {
		lp.Metrics = clock.NewMetrics(reg)
	} else if reg != nil {
		// Keep gps_clock_* families present even with oracle/Kalman
		// predictors, so dashboards never miss series.
		clock.NewMetrics(reg)
	}
	if dlg, ok := solver.(*core.DLGSolver); ok {
		dlg.Metrics = core.NewGLSMetrics(reg)
	}
	b.Metrics = NewBroadcasterMetrics(reg)
	b.Logger = logs.Component("broadcaster")
	tel := &serverTelemetry{
		reg:     reg,
		solver:  core.Instrument(solver, reg),
		warm:    core.Instrument(&core.NRSolver{}, reg),
		rec:     rec,
		station: st,
		health:  newHealth(reg, fixMaxAge, b),
	}
	if withRAIM {
		tel.raim = &core.RAIM{Solver: tel.solver, Metrics: core.NewRAIMMetrics(reg)}
	}
	return tel
}

// captureExemplar classifies a finished fix against the recorder's
// thresholds and, when it crosses one, captures the complete trace plus
// the serialized input epoch for offline replay (gpsrun -replay). The
// clock estimate is read back from the predictor before the next epoch's
// Observe, so it is exactly the value the solver subtracted.
func (st *serverTelemetry) captureExemplar(tr *trace.Trace, obs []core.Observation,
	sol core.Solution, pred clock.Predictor) {
	if st.rec == nil || tr == nil {
		return
	}
	var solve time.Duration
	if sp := tr.Span(core.SpanName(st.solver)); sp != nil {
		solve = time.Duration(sp.DurNs)
	}
	residual := sol.Pos.DistanceTo(st.station.Pos)
	reason := st.rec.ExemplarReason(solve, residual)
	if reason == "" {
		return
	}
	bias, err := pred.PredictBias(tr.T)
	if err != nil {
		bias = 0
	}
	in := &eval.ReplayInput{
		Station:    st.station,
		EpochIndex: tr.Epoch,
		T:          tr.T,
		Obs:        append([]core.Observation(nil), obs...),
		Solver:     st.solver.Name(),
		ClockBias:  bias,
		Solution:   sol.Pos,
	}
	ex, err := eval.CaptureExemplar(reason, tr, solve, residual, in)
	if err != nil {
		return
	}
	st.rec.AddExemplar(ex)
}

// listenAdmin binds the admin address and starts the admin server,
// returning the bound address (useful with ":0").
func listenAdmin(ctx context.Context, addr string, st *serverTelemetry, log *slog.Logger) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listen %s: %w", addr, err)
	}
	mux := newAdminMux(st)
	go serveAdmin(ctx, ln, mux, log)
	return ln.Addr(), nil
}
