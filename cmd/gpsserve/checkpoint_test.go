package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpsdl/internal/checkpoint"
)

// freeAddr reserves an ephemeral port and releases it for run() to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitForListener polls until the server accepts on addr.
func waitForListener(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeEngineCheckpointKillRestore is the kill-and-restore demo as a
// test: run the engine with checkpointing, cancel mid-run (the SIGTERM
// path), verify the shutdown wrote a final checkpoint, then start a new
// server with -restore and verify it resumed from that epoch rather
// than re-warming from zero.
func TestServeEngineCheckpointKillRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("network end-to-end")
	}
	ckpt := filepath.Join(t.TempDir(), "gps.ckpt")
	args := func(extra ...string) []string {
		base := []string{"-rate", "500", "-receivers", "2", "-station", "all",
			"-solver", "dlg", "-checkpoint", ckpt,
			"-checkpoint-every", "10", "-checkpoint-interval", "50ms",
			"-drain-timeout", "500ms"}
		return append(base, extra...)
	}

	// Run 1: produce epochs until a periodic checkpoint lands, then cancel.
	addr := freeAddr(t)
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() { done1 <- run(ctx1, args("-addr", addr)) }()
	waitForListener(t, addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, err := checkpoint.Load(ckpt); err == nil && st.Epoch >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint reached epoch 50")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel1()
	if err := <-done1; err != nil {
		t.Fatalf("run 1: %v", err)
	}
	st1, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint of run 1: %v", err)
	}
	if len(st1.Sessions) != 2 {
		t.Fatalf("final checkpoint has %d sessions, want 2", len(st1.Sessions))
	}

	// Run 2: restore and run briefly. A successful resume continues from
	// st1.Epoch, so even this short run checkpoints at or past it; a cold
	// start in the same wall-clock window could not get close.
	addr2 := freeAddr(t)
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() { done2 <- run(ctx2, args("-addr", addr2, "-restore")) }()
	waitForListener(t, addr2)
	time.Sleep(100 * time.Millisecond)
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("run 2: %v", err)
	}
	st2, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint of run 2: %v", err)
	}
	if st2.Epoch < st1.Epoch {
		t.Errorf("restored run checkpointed epoch %d < %d — it cold-started instead of resuming",
			st2.Epoch, st1.Epoch)
	}
	for _, s := range st2.Sessions {
		if s.Clock.Kind == "" {
			t.Errorf("receiver %d checkpoint carries no clock snapshot", s.Receiver)
		}
	}
}

// TestServeEngineCheckpointCorruptFallsBack feeds -restore a corrupt
// checkpoint file: the server must log a cold start and serve anyway,
// then overwrite the garbage with a valid checkpoint on shutdown.
func TestServeEngineCheckpointCorruptFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("network end-to-end")
	}
	ckpt := filepath.Join(t.TempDir(), "gps.ckpt")
	if err := os.WriteFile(ckpt, []byte("GPSCKPT 1 deadbeef 9\nnot-json!"), 0o644); err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", addr, "-rate", "200", "-receivers", "2",
			"-station", "all", "-checkpoint", ckpt, "-checkpoint-interval", "50ms",
			"-restore", "-drain-timeout", "200ms"})
	}()
	waitForListener(t, addr)
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run with corrupt checkpoint: %v", err)
	}
	st, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatalf("checkpoint still unreadable after run: %v", err)
	}
	if len(st.Sessions) != 2 {
		t.Errorf("rewritten checkpoint has %d sessions, want 2", len(st.Sessions))
	}
}
