package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"gpsdl/internal/telemetry"
)

// Metric names exported by the gpsserve broadcaster and epoch loop.
const (
	metricClients          = "gpsserve_clients"
	metricConnects         = "gpsserve_connects_total"
	metricDrops            = "gpsserve_drops_total"
	metricSentences        = "gpsserve_sentences_total"
	metricSentencesDropped = "gpsserve_sentences_dropped_total"
	metricEpochs           = "gpsserve_epochs_total"
	metricFixes            = "gpsserve_fixes_total"
	metricHDOP             = "gpsserve_hdop"
)

// BroadcasterMetrics instruments the connection lifecycle. The
// conservation law the gauge-consistency test pins down:
//
//	Connects − (SlowDrops + WriteDrops + ShutdownDrops) == Clients
//
// holds at every quiescent moment. A nil *BroadcasterMetrics records
// nothing.
type BroadcasterMetrics struct {
	// Clients is the currently connected client count (gpsserve_clients).
	Clients *telemetry.Gauge
	// Connects counts accepted connections (gpsserve_connects_total).
	Connects *telemetry.Counter
	// SlowDrops, WriteDrops, and ShutdownDrops split
	// gpsserve_drops_total by reason: queue overflow, socket write
	// failure, and server shutdown.
	SlowDrops     *telemetry.Counter
	WriteDrops    *telemetry.Counter
	ShutdownDrops *telemetry.Counter
	// Sentences counts broadcast NMEA sentences (gpsserve_sentences_total).
	Sentences *telemetry.Counter
	// SentencesDropped counts sentences discarded by the per-client
	// drop-oldest policy (gpsserve_sentences_dropped_total): a stalled
	// client sheds its backlog one oldest line at a time instead of
	// back-pressuring the fix loop.
	SentencesDropped *telemetry.Counter
}

// NewBroadcasterMetrics registers the broadcaster instruments under
// reg. Nil registry yields nil (recording disabled).
func NewBroadcasterMetrics(reg *telemetry.Registry) *BroadcasterMetrics {
	if reg == nil {
		return nil
	}
	reason := func(v string) telemetry.Label { return telemetry.Label{Key: "reason", Value: v} }
	const dropHelp = "Client disconnections by reason."
	return &BroadcasterMetrics{
		Clients:       reg.Gauge(metricClients, "Currently connected NMEA clients."),
		Connects:      reg.Counter(metricConnects, "Accepted client connections."),
		SlowDrops:     reg.Counter(metricDrops, dropHelp, reason("slow")),
		WriteDrops:    reg.Counter(metricDrops, dropHelp, reason("write")),
		ShutdownDrops: reg.Counter(metricDrops, dropHelp, reason("shutdown")),
		Sentences:     reg.Counter(metricSentences, "NMEA sentences fanned out to clients."),
		SentencesDropped: reg.Counter(metricSentencesDropped,
			"Sentences discarded oldest-first from stalled clients' queues."),
	}
}

// Drops returns the total disconnections across every reason.
func (m *BroadcasterMetrics) Drops() uint64 {
	if m == nil {
		return 0
	}
	return m.SlowDrops.Value() + m.WriteDrops.Value() + m.ShutdownDrops.Value()
}

func (m *BroadcasterMetrics) connect() {
	if m != nil {
		m.Connects.Inc()
		m.Clients.Inc()
	}
}

func (m *BroadcasterMetrics) drop(reason string) {
	if m == nil {
		return
	}
	m.Clients.Dec()
	switch reason {
	case dropSlow:
		m.SlowDrops.Inc()
	case dropShutdown:
		m.ShutdownDrops.Inc()
	default:
		m.WriteDrops.Inc()
	}
}

func (m *BroadcasterMetrics) sentence() {
	if m != nil {
		m.Sentences.Inc()
	}
}

func (m *BroadcasterMetrics) sentenceDropped() {
	if m != nil {
		m.SentencesDropped.Inc()
	}
}

// Drop reasons (the reason label values of gpsserve_drops_total).
const (
	dropSlow     = "slow"
	dropWrite    = "write"
	dropShutdown = "shutdown"
)

// Broadcaster fans NMEA sentences out to every connected TCP client —
// the raw-NMEA service gpsd exposes on port 2947. A stalled consumer can
// never back-pressure the fix loop: its bounded queue sheds the oldest
// sentence to admit the newest (a late NMEA reader wants current fixes,
// not a stale backlog), every socket write carries a deadline, and a
// client that stays saturated for DropBudget consecutive broadcasts is
// disconnected.
type Broadcaster struct {
	// QueueLen is each client's pending-line buffer; when full, the
	// oldest queued sentence is dropped for the newest. 0 means 64.
	QueueLen int
	// DropBudget is how many consecutive overflowing broadcasts a client
	// survives before it is dropped with reason "slow". Any broadcast
	// enqueued without shedding resets the streak. 0 means 256.
	DropBudget int
	// WriteTimeout bounds each TCP write. 0 means 5 s.
	WriteTimeout time.Duration
	// Metrics, when non-nil, tracks connects, drops, and the live
	// client gauge (see NewBroadcasterMetrics).
	Metrics *BroadcasterMetrics
	// Logger records connection lifecycle events; nil stays silent.
	Logger *slog.Logger

	mu      sync.Mutex
	clients map[net.Conn]*client
	closed  bool
}

// client is one connection's send queue plus its consecutive-overflow
// streak (the drop-budget counter).
type client struct {
	ch       chan string
	overflow int
}

// NewBroadcaster returns a broadcaster with default limits.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{clients: make(map[net.Conn]*client)}
}

// Serve accepts clients on the listener until the context is cancelled,
// then closes every connection. It always returns the reason the accept
// loop ended (ctx.Err after cancellation).
func (b *Broadcaster) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	// Close the listener when the context ends so Accept unblocks.
	stop := context.AfterFunc(ctx, func() { ln.Close() }) //nolint:errcheck
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				b.shutdown()
				wg.Wait()
				return ctx.Err()
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			b.shutdown()
			wg.Wait()
			return fmt.Errorf("gpsserve: accept: %w", err)
		}
		ch := b.register(conn)
		if ch == nil {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.writeLoop(conn, ch)
		}()
	}
}

// register adds a client and returns its queue (nil if shut down).
func (b *Broadcaster) register(conn net.Conn) chan string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	qlen := b.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	ch := make(chan string, qlen)
	b.clients[conn] = &client{ch: ch}
	b.Metrics.connect()
	if b.Logger != nil {
		b.Logger.Info("client connected", "remote", conn.RemoteAddr().String(), "clients", len(b.clients))
	}
	return ch
}

// remove drops a client, attributing the disconnect to reason;
// idempotent (only the first removal counts).
func (b *Broadcaster) remove(conn net.Conn, reason string) {
	b.mu.Lock()
	if cl, ok := b.clients[conn]; ok {
		delete(b.clients, conn)
		close(cl.ch)
		b.Metrics.drop(reason)
		if b.Logger != nil {
			b.Logger.Info("client dropped", "remote", conn.RemoteAddr().String(),
				"reason", reason, "clients", len(b.clients))
		}
	}
	b.mu.Unlock()
	conn.Close()
}

// shutdown closes all connections and stops accepting broadcasts.
func (b *Broadcaster) shutdown() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	if b.Logger != nil && len(b.clients) > 0 {
		b.Logger.Info("shutting down", "clients", len(b.clients))
	}
	for conn, cl := range b.clients {
		delete(b.clients, conn)
		close(cl.ch)
		conn.Close()
		b.Metrics.drop(dropShutdown)
	}
}

// writeLoop drains one client's queue onto its socket.
func (b *Broadcaster) writeLoop(conn net.Conn, ch chan string) {
	timeout := b.WriteTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	// Reached on write failure; when the queue was closed by an evict
	// or shutdown, the client is already gone from the map and this
	// removal is an uncounted no-op.
	defer b.remove(conn, dropWrite)
	for line := range ch {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
		if _, err := conn.Write([]byte(line + "\r\n")); err != nil {
			return
		}
	}
}

// Broadcast enqueues a sentence for every client. A full queue sheds its
// oldest sentence to admit this one (counted in sentences_dropped); a
// client that overflows DropBudget broadcasts in a row is evicted with
// reason "slow". Broadcast itself never blocks, so a stalled client
// cannot apply backpressure to the fix loop.
func (b *Broadcaster) Broadcast(line string) {
	b.mu.Lock()
	budget := b.DropBudget
	if budget <= 0 {
		budget = 256
	}
	var evict []net.Conn
	for conn, cl := range b.clients {
		select {
		case cl.ch <- line:
			cl.overflow = 0
			continue
		default:
		}
		// Queue full: drop-oldest, then enqueue the fresh line. (The
		// writeLoop may have drained a slot between the two selects —
		// then nothing is shed and the enqueue simply succeeds.)
		select {
		case <-cl.ch:
			b.Metrics.sentenceDropped()
		default:
		}
		select {
		case cl.ch <- line:
		default:
		}
		cl.overflow++
		if cl.overflow >= budget {
			evict = append(evict, conn)
		}
	}
	b.Metrics.sentence()
	b.mu.Unlock()
	for _, conn := range evict {
		b.remove(conn, dropSlow)
	}
}

// Flush waits until every connected client's queue has drained or the
// timeout elapses — the graceful-drain path calls it so the final fixes
// reach well-behaved clients before their connections are closed. It
// reports whether all queues emptied in time (a stalled client's backlog
// keeps it false; the shutdown proceeds regardless).
func (b *Broadcaster) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		b.mu.Lock()
		for _, cl := range b.clients {
			pending += len(cl.ch)
		}
		b.mu.Unlock()
		if pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ClientCount returns the number of connected clients.
func (b *Broadcaster) ClientCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// Stats returns a mutually consistent snapshot of the connection
// counters. Every connect and drop mutates the metrics while holding
// b.mu, so snapshotting under the same lock guarantees the conservation
// law connects − drops == clients within one snapshot — reading the
// counters individually (ClientCount + Metrics.Drops) can catch a
// connect or drop mid-transition and transiently violate it.
func (b *Broadcaster) Stats() (clients int, connects, drops uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	clients = len(b.clients)
	if m := b.Metrics; m != nil {
		connects = m.Connects.Value()
		drops = m.SlowDrops.Value() + m.WriteDrops.Value() + m.ShutdownDrops.Value()
	}
	return clients, connects, drops
}
