package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"gpsdl/internal/telemetry"
)

// Metric names exported by the gpsserve broadcaster and epoch loop.
const (
	metricClients   = "gpsserve_clients"
	metricConnects  = "gpsserve_connects_total"
	metricDrops     = "gpsserve_drops_total"
	metricSentences = "gpsserve_sentences_total"
	metricEpochs    = "gpsserve_epochs_total"
	metricFixes     = "gpsserve_fixes_total"
	metricHDOP      = "gpsserve_hdop"
)

// BroadcasterMetrics instruments the connection lifecycle. The
// conservation law the gauge-consistency test pins down:
//
//	Connects − (SlowDrops + WriteDrops + ShutdownDrops) == Clients
//
// holds at every quiescent moment. A nil *BroadcasterMetrics records
// nothing.
type BroadcasterMetrics struct {
	// Clients is the currently connected client count (gpsserve_clients).
	Clients *telemetry.Gauge
	// Connects counts accepted connections (gpsserve_connects_total).
	Connects *telemetry.Counter
	// SlowDrops, WriteDrops, and ShutdownDrops split
	// gpsserve_drops_total by reason: queue overflow, socket write
	// failure, and server shutdown.
	SlowDrops     *telemetry.Counter
	WriteDrops    *telemetry.Counter
	ShutdownDrops *telemetry.Counter
	// Sentences counts broadcast NMEA sentences (gpsserve_sentences_total).
	Sentences *telemetry.Counter
}

// NewBroadcasterMetrics registers the broadcaster instruments under
// reg. Nil registry yields nil (recording disabled).
func NewBroadcasterMetrics(reg *telemetry.Registry) *BroadcasterMetrics {
	if reg == nil {
		return nil
	}
	reason := func(v string) telemetry.Label { return telemetry.Label{Key: "reason", Value: v} }
	const dropHelp = "Client disconnections by reason."
	return &BroadcasterMetrics{
		Clients:       reg.Gauge(metricClients, "Currently connected NMEA clients."),
		Connects:      reg.Counter(metricConnects, "Accepted client connections."),
		SlowDrops:     reg.Counter(metricDrops, dropHelp, reason("slow")),
		WriteDrops:    reg.Counter(metricDrops, dropHelp, reason("write")),
		ShutdownDrops: reg.Counter(metricDrops, dropHelp, reason("shutdown")),
		Sentences:     reg.Counter(metricSentences, "NMEA sentences fanned out to clients."),
	}
}

// Drops returns the total disconnections across every reason.
func (m *BroadcasterMetrics) Drops() uint64 {
	if m == nil {
		return 0
	}
	return m.SlowDrops.Value() + m.WriteDrops.Value() + m.ShutdownDrops.Value()
}

func (m *BroadcasterMetrics) connect() {
	if m != nil {
		m.Connects.Inc()
		m.Clients.Inc()
	}
}

func (m *BroadcasterMetrics) drop(reason string) {
	if m == nil {
		return
	}
	m.Clients.Dec()
	switch reason {
	case dropSlow:
		m.SlowDrops.Inc()
	case dropShutdown:
		m.ShutdownDrops.Inc()
	default:
		m.WriteDrops.Inc()
	}
}

func (m *BroadcasterMetrics) sentence() {
	if m != nil {
		m.Sentences.Inc()
	}
}

// Drop reasons (the reason label values of gpsserve_drops_total).
const (
	dropSlow     = "slow"
	dropWrite    = "write"
	dropShutdown = "shutdown"
)

// Broadcaster fans NMEA sentences out to every connected TCP client —
// the raw-NMEA service gpsd exposes on port 2947. Slow consumers are
// disconnected rather than allowed to stall the epoch loop: each client
// gets a bounded queue and a write deadline.
type Broadcaster struct {
	// QueueLen is each client's pending-line budget; a client whose
	// queue overflows is dropped. 0 means 64.
	QueueLen int
	// WriteTimeout bounds each TCP write. 0 means 5 s.
	WriteTimeout time.Duration
	// Metrics, when non-nil, tracks connects, drops, and the live
	// client gauge (see NewBroadcasterMetrics).
	Metrics *BroadcasterMetrics
	// Logger records connection lifecycle events; nil stays silent.
	Logger *slog.Logger

	mu      sync.Mutex
	clients map[net.Conn]chan string
	closed  bool
}

// NewBroadcaster returns a broadcaster with default limits.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{clients: make(map[net.Conn]chan string)}
}

// Serve accepts clients on the listener until the context is cancelled,
// then closes every connection. It always returns the reason the accept
// loop ended (ctx.Err after cancellation).
func (b *Broadcaster) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	// Close the listener when the context ends so Accept unblocks.
	stop := context.AfterFunc(ctx, func() { ln.Close() }) //nolint:errcheck
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				b.shutdown()
				wg.Wait()
				return ctx.Err()
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			b.shutdown()
			wg.Wait()
			return fmt.Errorf("gpsserve: accept: %w", err)
		}
		ch := b.register(conn)
		if ch == nil {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.writeLoop(conn, ch)
		}()
	}
}

// register adds a client and returns its queue (nil if shut down).
func (b *Broadcaster) register(conn net.Conn) chan string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	qlen := b.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	ch := make(chan string, qlen)
	b.clients[conn] = ch
	b.Metrics.connect()
	if b.Logger != nil {
		b.Logger.Info("client connected", "remote", conn.RemoteAddr().String(), "clients", len(b.clients))
	}
	return ch
}

// remove drops a client, attributing the disconnect to reason;
// idempotent (only the first removal counts).
func (b *Broadcaster) remove(conn net.Conn, reason string) {
	b.mu.Lock()
	if ch, ok := b.clients[conn]; ok {
		delete(b.clients, conn)
		close(ch)
		b.Metrics.drop(reason)
		if b.Logger != nil {
			b.Logger.Info("client dropped", "remote", conn.RemoteAddr().String(),
				"reason", reason, "clients", len(b.clients))
		}
	}
	b.mu.Unlock()
	conn.Close()
}

// shutdown closes all connections and stops accepting broadcasts.
func (b *Broadcaster) shutdown() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	if b.Logger != nil && len(b.clients) > 0 {
		b.Logger.Info("shutting down", "clients", len(b.clients))
	}
	for conn, ch := range b.clients {
		delete(b.clients, conn)
		close(ch)
		conn.Close()
		b.Metrics.drop(dropShutdown)
	}
}

// writeLoop drains one client's queue onto its socket.
func (b *Broadcaster) writeLoop(conn net.Conn, ch chan string) {
	timeout := b.WriteTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	// Reached on write failure; when the queue was closed by an evict
	// or shutdown, the client is already gone from the map and this
	// removal is an uncounted no-op.
	defer b.remove(conn, dropWrite)
	for line := range ch {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
		if _, err := conn.Write([]byte(line + "\r\n")); err != nil {
			return
		}
	}
}

// Broadcast enqueues a sentence for every client. Clients whose queue is
// full are dropped (they cannot keep up with the epoch rate).
func (b *Broadcaster) Broadcast(line string) {
	b.mu.Lock()
	var evict []net.Conn
	for conn, ch := range b.clients {
		select {
		case ch <- line:
		default:
			evict = append(evict, conn)
		}
	}
	b.Metrics.sentence()
	b.mu.Unlock()
	for _, conn := range evict {
		b.remove(conn, dropSlow)
	}
}

// ClientCount returns the number of connected clients.
func (b *Broadcaster) ClientCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// Stats returns a mutually consistent snapshot of the connection
// counters. Every connect and drop mutates the metrics while holding
// b.mu, so snapshotting under the same lock guarantees the conservation
// law connects − drops == clients within one snapshot — reading the
// counters individually (ClientCount + Metrics.Drops) can catch a
// connect or drop mid-transition and transiently violate it.
func (b *Broadcaster) Stats() (clients int, connects, drops uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	clients = len(b.clients)
	if m := b.Metrics; m != nil {
		connects = m.Connects.Value()
		drops = m.SlowDrops.Value() + m.WriteDrops.Value() + m.ShutdownDrops.Value()
	}
	return clients, connects, drops
}
