package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Broadcaster fans NMEA sentences out to every connected TCP client —
// the raw-NMEA service gpsd exposes on port 2947. Slow consumers are
// disconnected rather than allowed to stall the epoch loop: each client
// gets a bounded queue and a write deadline.
type Broadcaster struct {
	// QueueLen is each client's pending-line budget; a client whose
	// queue overflows is dropped. 0 means 64.
	QueueLen int
	// WriteTimeout bounds each TCP write. 0 means 5 s.
	WriteTimeout time.Duration

	mu      sync.Mutex
	clients map[net.Conn]chan string
	closed  bool
}

// NewBroadcaster returns a broadcaster with default limits.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{clients: make(map[net.Conn]chan string)}
}

// Serve accepts clients on the listener until the context is cancelled,
// then closes every connection. It always returns the reason the accept
// loop ended (ctx.Err after cancellation).
func (b *Broadcaster) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	// Close the listener when the context ends so Accept unblocks.
	stop := context.AfterFunc(ctx, func() { ln.Close() }) //nolint:errcheck
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				b.shutdown()
				wg.Wait()
				return ctx.Err()
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			b.shutdown()
			wg.Wait()
			return fmt.Errorf("gpsserve: accept: %w", err)
		}
		ch := b.register(conn)
		if ch == nil {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.writeLoop(conn, ch)
		}()
	}
}

// register adds a client and returns its queue (nil if shut down).
func (b *Broadcaster) register(conn net.Conn) chan string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	qlen := b.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	ch := make(chan string, qlen)
	b.clients[conn] = ch
	return ch
}

// remove drops a client; idempotent.
func (b *Broadcaster) remove(conn net.Conn) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.clients[conn]; ok {
		delete(b.clients, conn)
		close(ch)
	}
	conn.Close()
}

// shutdown closes all connections and stops accepting broadcasts.
func (b *Broadcaster) shutdown() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for conn, ch := range b.clients {
		delete(b.clients, conn)
		close(ch)
		conn.Close()
	}
}

// writeLoop drains one client's queue onto its socket.
func (b *Broadcaster) writeLoop(conn net.Conn, ch chan string) {
	timeout := b.WriteTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	defer b.remove(conn)
	for line := range ch {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
		if _, err := conn.Write([]byte(line + "\r\n")); err != nil {
			return
		}
	}
}

// Broadcast enqueues a sentence for every client. Clients whose queue is
// full are dropped (they cannot keep up with the epoch rate).
func (b *Broadcaster) Broadcast(line string) {
	b.mu.Lock()
	var evict []net.Conn
	for conn, ch := range b.clients {
		select {
		case ch <- line:
		default:
			evict = append(evict, conn)
		}
	}
	b.mu.Unlock()
	for _, conn := range evict {
		b.remove(conn)
	}
}

// ClientCount returns the number of connected clients.
func (b *Broadcaster) ClientCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}
