package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"gpsdl/internal/telemetry"
)

// healthz fetches and decodes the /healthz JSON from the admin mux.
func healthz(t *testing.T, url string) healthStatus {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hs healthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	return hs
}

// readLine reads one CRLF-terminated sentence from a client connection.
func readLine(t *testing.T, r *bufio.Reader, c net.Conn) string {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

// TestBroadcasterClientLifecycle walks one client through the full
// lifecycle — connect → stall → drop (reason "slow") → reconnect — and
// checks that /healthz reports the matching counters at each stage, the
// drop-oldest policy counted shed sentences, a reconnecting client
// receives current fixes (not the stale backlog), and that the whole
// apparatus winds down without leaking goroutines.
func TestBroadcasterClientLifecycle(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg := telemetry.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroadcaster()
	b.QueueLen = 4
	b.DropBudget = 8 // evict a saturated client quickly
	b.Metrics = NewBroadcasterMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = b.Serve(ctx, ln)
	}()

	h := newHealth(reg, 0, b)
	h.recordFix(1.0) // healthz "ok" needs a recent fix
	admin := httptest.NewServer(newAdminMux(&serverTelemetry{reg: reg, health: h}))

	// Stage 1: connect and receive normally.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitForClients(t, b, 1)
	b.Broadcast("$GPGGA,alive*00")
	if got := readLine(t, bufio.NewReader(conn), conn); got != "$GPGGA,alive*00" {
		t.Fatalf("connected client read %q", got)
	}
	if hs := healthz(t, admin.URL); hs.Clients != 1 || hs.Drops != 0 {
		t.Fatalf("after connect: clients=%d drops=%d, want 1/0", hs.Clients, hs.Drops)
	}

	// Stage 2: stall. Stop reading and flood until the drop budget
	// evicts the client with reason "slow". The filler is long enough
	// that the kernel socket buffers saturate and the queue backs up.
	long := strings.Repeat("x", 4096)
	deadline := time.Now().Add(10 * time.Second)
	for b.ClientCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled client was never dropped")
		}
		b.Broadcast(long)
	}
	conn.Close()
	if v := b.Metrics.SlowDrops.Value(); v != 1 {
		t.Errorf("slow drops = %d, want 1", v)
	}
	if v := b.Metrics.SentencesDropped.Value(); v == 0 {
		t.Error("drop-oldest shed no sentences while the client was stalled")
	}
	if hs := healthz(t, admin.URL); hs.Clients != 0 || hs.Drops != 1 {
		t.Fatalf("after stall drop: clients=%d drops=%d, want 0/1", hs.Clients, hs.Drops)
	}

	// Stage 3: reconnect. The fresh connection gets a fresh queue — it
	// must receive the next broadcast, not the evicted backlog.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitForClients(t, b, 1)
	b.Broadcast("$GPGGA,back*00")
	if got := readLine(t, bufio.NewReader(conn2), conn2); got != "$GPGGA,back*00" {
		t.Fatalf("reconnected client read %q, want the fresh sentence", got)
	}
	hs := healthz(t, admin.URL)
	if hs.Clients != 1 || hs.Drops != 1 {
		t.Fatalf("after reconnect: clients=%d drops=%d, want 1/1", hs.Clients, hs.Drops)
	}
	if clients, connects, drops := b.Stats(); uint64(clients) != connects-drops {
		t.Errorf("conservation violated: connects %d - drops %d != clients %d", connects, drops, clients)
	}

	// Stage 4: shutdown. Every goroutine this test started (accept
	// loop, write loops, admin server) must exit.
	conn2.Close()
	cancel()
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcaster did not shut down")
	}
	admin.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutine leak: %d after shutdown, baseline %d", n, baseline)
	}
}
