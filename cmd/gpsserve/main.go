// Command gpsserve streams live NMEA fixes over TCP, the way gpsd's raw
// mode does: it generates (or replays) observation epochs, positions the
// receiver with one of the repository's solvers, and broadcasts GGA + RMC
// sentences to every connected client.
//
//	gpsserve -station YYR1 -solver dlg -addr 127.0.0.1:2947 -rate 10
//	nc 127.0.0.1 2947          # watch the sentences
//
// With -admin, an HTTP endpoint exposes Prometheus metrics, liveness,
// and pprof:
//
//	gpsserve -station YYR1 -admin 127.0.0.1:8080
//	curl 127.0.0.1:8080/metrics
//	curl 127.0.0.1:8080/healthz
//	go tool pprof 127.0.0.1:8080/debug/pprof/profile
//
// Stop with Ctrl-C; clients are disconnected cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/cluster"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/nmea"
	"gpsdl/internal/scenario"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/trace"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:]); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "gpsserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gpsserve", flag.ContinueOnError)
	var (
		stationID  = fs.String("station", "YYR1", "Table 5.1 station to simulate")
		dataset    = fs.String("dataset", "", "replay a gpsgen dataset file instead of live generation")
		solver     = fs.String("solver", "dlg", "positioning algorithm: nr, dlo, dlg or bancroft")
		addr       = fs.String("addr", "127.0.0.1:2947", "TCP listen address")
		adminAddr  = fs.String("admin", "", "admin HTTP listen address serving /metrics, /healthz and /debug/pprof (disabled when empty)")
		rate       = fs.Float64("rate", 1, "epochs per second to stream")
		seed       = fs.Int64("seed", 2009, "generation seed")
		logLevel   = fs.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat  = fs.String("log-format", "text", "log format: text or json")
		traceN     = fs.Int("trace", 256, "epoch traces retained in the flight recorder (0 disables tracing)")
		traceSlow  = fs.Duration("trace-slow", 5*time.Millisecond, "solve latency above which a fix is captured as a replayable exemplar (0 disables)")
		traceResid = fs.Float64("trace-residual", 100, "position residual in meters above which a fix is captured as an exemplar (0 disables)")
		traceDump  = fs.String("trace-dump", "", "write a flight-recorder dump (traces + exemplars) to this file on shutdown")
		withRAIM   = fs.Bool("raim", false, "run RAIM integrity checks around each fix (needs >= 5 satellites)")
		receivers  = fs.Int("receivers", 1, "independent receiver sessions; > 1 serves via the sharded fix engine (-station all round-robins the Table 5.1 stations)")
		workers    = fs.Int("workers", 0, "engine shard count when -receivers > 1; 0 means GOMAXPROCS")
		epochCache = fs.Bool("epoch-cache", true, "share one per-epoch constellation snapshot across engine receivers (needs -receivers > 1)")
		faults     = fs.String("faults", "", "fault-injection program for engine mode, e.g. 'drop:prn=3,from=10,until=40;burst:sigma=8,from=60' (needs -receivers > 1)")
		faultSeed  = fs.Int64("fault-seed", 1, "fault-injector seed (burst noise stream) for -faults")
		ckptPath   = fs.String("checkpoint", "", "engine-mode checkpoint file: clock calibration, health state and last fix per session are saved here periodically and on shutdown (needs -receivers > 1)")
		ckptEvery  = fs.Int("checkpoint-every", 100, "epochs between per-session checkpoint refreshes (with -checkpoint)")
		ckptPeriod = fs.Duration("checkpoint-interval", 5*time.Second, "wall-clock period between checkpoint file saves (with -checkpoint)")
		restore    = fs.Bool("restore", false, "resume from the -checkpoint file at startup; a missing, corrupt, or mismatched checkpoint falls back to a cold start")
		drainWait  = fs.Duration("drain-timeout", 2*time.Second, "how long shutdown waits for connected clients to drain their queued sentences")
		qualityOn  = fs.Bool("quality", true, "engine-mode solution-quality windows and SLO/error-budget evaluation, surfaced on /debug/status (needs -receivers > 1)")
		qualityWin = fs.Int("quality-window", 600, "quality sliding-window span in epochs (with -quality)")
		sloSpec    = fs.String("slo", "", "SLO objectives for -quality, e.g. 'availability>=99.9@600,p99_rms<=13@600,chi2>=95@600' (empty uses those defaults)")
		jrnlPath   = fs.String("journal", "", "engine-mode black-box flight journal file: every session-epoch is appended as a CRC-framed binary record for offline forensics with gpsinspect (needs -receivers > 1)")
		jrnlSync   = fs.Int("journal-sync", 0, "record frames between journal sync points / fsyncs (with -journal; 0 uses the default, negative disables)")
		incDir     = fs.String("incident-dir", "", "engine-mode incident bundle directory: SLO pages, recovered panics and failed sessions are captured here as self-contained forensics bundles (needs -receivers > 1)")
		incGap     = fs.Duration("incident-interval", 30*time.Second, "minimum wall-clock spacing between incident bundles (with -incident-dir; 0 disables rate limiting)")
		dlgVariant = fs.String("dlg-variant", "fast", "DLG covariance route: fast (O(m) Sherman-Morrison), paper (dense Cholesky) or explicit (eq. 4-21 reference)")
		weights    = fs.Bool("weights", false, "map each satellite's C/N0 to a pseudo-range sigma and run the weighted solve paths (needs -receivers > 1)")
		disrupt    = fs.Bool("disrupt", false, "down-weight satellites whose pseudo-range innovations are robust outliers before RAIM excludes; implies weighted solving (needs -receivers > 1)")
		wireAddr   = fs.String("wire", "", "binary fix-stream listener address for cluster serving (resume tokens, delta frames); enables engine mode")
		sessions   = fs.String("session-ids", "", "comma-separated global session ids this node hosts, e.g. '0,1' (cluster mode; replaces -receivers); enables engine mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive, have %g", *rate)
	}
	if *receivers < 1 {
		return fmt.Errorf("-receivers must be >= 1, have %d", *receivers)
	}
	if *traceN < 0 {
		return fmt.Errorf("-trace must be >= 0, have %d", *traceN)
	}
	if *traceDump != "" && *traceN == 0 {
		return fmt.Errorf("-trace-dump needs tracing enabled (-trace > 0)")
	}
	if *dataset == "" && strings.TrimSpace(*stationID) == "" {
		return fmt.Errorf("-station must not be empty (or use -dataset to replay a file)")
	}
	if *ckptEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, have %d", *ckptEvery)
	}
	if *ckptPeriod <= 0 {
		return fmt.Errorf("-checkpoint-interval must be positive, have %v", *ckptPeriod)
	}
	if *restore && *ckptPath == "" {
		return fmt.Errorf("-restore needs a -checkpoint file to resume from")
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logs, err := telemetry.NewLogging(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}
	var sessionIDs []int
	if *sessions != "" {
		if setFlags["receivers"] {
			return fmt.Errorf("-session-ids replaces -receivers (a cluster node hosts explicit global ids); drop one")
		}
		sessionIDs, err = cluster.ParseSessionIDs(*sessions)
		if err != nil {
			return fmt.Errorf("-session-ids: %v", err)
		}
	}
	if *receivers > 1 || *wireAddr != "" || len(sessionIDs) > 0 {
		// Engine mode runs many sessions; the single-receiver-only
		// features must be explicitly absent rather than silently off.
		switch {
		case *dataset != "":
			return fmt.Errorf("-dataset replay supports a single receiver; drop -receivers/-session-ids/-wire")
		case *withRAIM:
			return fmt.Errorf("-raim supports a single receiver; drop -receivers/-session-ids/-wire")
		case *traceDump != "":
			return fmt.Errorf("-trace-dump supports a single receiver; drop -receivers/-session-ids/-wire")
		}
		if *qualityWin < 10 {
			return fmt.Errorf("-quality-window must be >= 10 epochs, have %d", *qualityWin)
		}
		return runEngine(ctx, engineParams{
			receivers:   *receivers,
			sessions:    sessionIDs,
			wireAddr:    *wireAddr,
			workers:     *workers,
			epochCache:  *epochCache,
			station:     strings.ToUpper(strings.TrimSpace(*stationID)),
			solver:      strings.ToLower(*solver),
			addr:        *addr,
			adminAddr:   *adminAddr,
			rate:        *rate,
			seed:        *seed,
			faults:      *faults,
			faultSeed:   *faultSeed,
			ckptPath:    *ckptPath,
			ckptEvery:   *ckptEvery,
			ckptPeriod:  *ckptPeriod,
			restore:     *restore,
			drainWait:   *drainWait,
			quality:     *qualityOn,
			qualityWin:  *qualityWin,
			sloSpec:     *sloSpec,
			journalPath: *jrnlPath,
			journalSync: *jrnlSync,
			incidentDir: *incDir,
			incidentGap: *incGap,
			dlgVariant:  *dlgVariant,
			weighting:   *weights,
			disruption:  *disrupt,
			logs:        logs,
		})
	}
	if *weights || *disrupt {
		return fmt.Errorf("-weights/-disrupt configure the fix engine's weighted solve paths; use -receivers > 1")
	}
	if *faults != "" {
		return fmt.Errorf("-faults needs the fix engine's degradation machinery; use -receivers > 1")
	}
	if *ckptPath != "" {
		return fmt.Errorf("-checkpoint snapshots engine sessions; use -receivers > 1")
	}
	if setFlags["quality"] || setFlags["quality-window"] || setFlags["slo"] {
		return fmt.Errorf("-quality/-quality-window/-slo configure the fix engine's quality layer; use -receivers > 1")
	}
	if setFlags["epoch-cache"] {
		return fmt.Errorf("-epoch-cache shares constellation snapshots across engine sessions; use -receivers > 1")
	}
	if *jrnlPath != "" || setFlags["journal-sync"] {
		return fmt.Errorf("-journal records the fix engine's flight journal; use -receivers > 1")
	}
	if *incDir != "" || setFlags["incident-interval"] {
		return fmt.Errorf("-incident-dir captures fix-engine incidents; use -receivers > 1")
	}
	var (
		source epochSource
		st     scenario.Station
	)
	if *dataset != "" {
		var ds *scenario.Dataset
		var err error
		if strings.HasSuffix(*dataset, ".bin") {
			ds, err = scenario.LoadBinaryFile(*dataset)
		} else {
			ds, err = scenario.LoadFile(*dataset)
		}
		if err != nil {
			return err
		}
		if ds.Len() == 0 {
			return fmt.Errorf("dataset %s has no epochs", *dataset)
		}
		st = ds.Station
		source = replaySource(ds)
	} else {
		var err error
		st, err = scenario.StationByID(strings.ToUpper(*stationID))
		if err != nil {
			return err
		}
		gen := scenario.NewGenerator(st, scenario.DefaultConfig(*seed))
		source = func(i int) (scenario.Epoch, error) { return gen.EpochAt(float64(i)) }
	}
	pred := eval.DefaultPredictor(st.Clock)
	var s core.Solver
	switch strings.ToLower(*solver) {
	case "nr":
		s = &core.NRSolver{}
	case "dlo":
		s = core.NewDLOSolver(pred)
	case "dlg":
		v, err := parseDLGVariant(*dlgVariant)
		if err != nil {
			return err
		}
		s = &core.DLGSolver{Predictor: pred, Variant: v}
	case "bancroft":
		s = core.BancroftSolver{}
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	fmt.Printf("gpsserve: streaming %s fixes for %s on %s (%g epoch/s)\n",
		s.Name(), st.ID, ln.Addr(), *rate)

	b := NewBroadcaster()
	// A fix is stale once ~10 epoch periods have passed without one
	// (floored at 10 s so slow streaming rates are not declared dead).
	maxAge := time.Duration(10 * float64(time.Second) / *rate)
	if maxAge < 10*time.Second {
		maxAge = 10 * time.Second
	}
	reg := telemetry.NewRegistry()
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.New(trace.Config{
			Capacity:          *traceN,
			SlowThreshold:     *traceSlow,
			ResidualThreshold: *traceResid,
		})
	}
	if *traceDump != "" {
		// Runs on every exit path, including SIGTERM/SIGINT cancellation.
		defer func() {
			if err := rec.DumpFile(*traceDump); err != nil {
				logs.Component("trace").Error("flight-recorder dump failed", "err", err)
				return
			}
			fmt.Printf("gpsserve: wrote flight-recorder dump %s\n", *traceDump)
		}()
	}
	tel := wireTelemetry(reg, s, pred, b, logs, maxAge, rec, *withRAIM, st)
	if *adminAddr != "" {
		bound, err := listenAdmin(ctx, *adminAddr, tel, logs.Component("admin"))
		if err != nil {
			ln.Close()
			return err
		}
		fmt.Printf("gpsserve: admin on http://%s (/metrics /healthz /debug/status /debug/trace /debug/pprof)\n", bound)
		logs.Component("admin").Info("admin endpoint up", "addr", bound.String())
	}

	// The broadcaster runs on its own context so shutdown is ordered:
	// the fix loop stops first, queued sentences flush to well-behaved
	// clients, and only then are connections closed.
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- b.Serve(bctx, ln) }()

	err = streamFixes(ctx, source, tel, pred, b, *rate, logs.Component("solver"))
	tel.health.startDrain()
	b.Flush(*drainWait)
	bcancel()
	cancelErr := <-serveErr
	if err != nil {
		return err
	}
	if cancelErr != nil && !errors.Is(cancelErr, context.Canceled) {
		return cancelErr
	}
	return nil
}

// parseDLGVariant resolves the -dlg-variant flag for the single-receiver
// path (engine mode validates the string itself via engine.Config).
func parseDLGVariant(name string) (core.DLGVariant, error) {
	switch strings.ToLower(name) {
	case "", "fast":
		return core.VariantFast, nil
	case "paper":
		return core.VariantPaper, nil
	case "explicit":
		return core.VariantExplicit, nil
	default:
		return 0, fmt.Errorf("unknown DLG variant %q (want fast, paper or explicit)", name)
	}
}

// epochSource supplies the i-th epoch to stream.
type epochSource func(i int) (scenario.Epoch, error)

// replaySource cycles through a loaded dataset's epochs.
func replaySource(ds *scenario.Dataset) epochSource {
	return func(i int) (scenario.Epoch, error) {
		return ds.Epochs[i%ds.Len()], nil
	}
}

// ctxSolver forwards Solve through core.SolveTraced so every internal
// solve of a RAIM pass (initial fix + per-exclusion re-solves) emits its
// own solve/* span on the epoch's trace.
type ctxSolver struct {
	core.Solver
	ctx context.Context
}

func (c ctxSolver) Solve(t float64, obs []core.Observation) (core.Solution, error) {
	return core.SolveTraced(c.ctx, c.Solver, t, obs)
}

// streamFixes runs the epoch loop until the context ends, reporting
// liveness and per-solver metrics through tel and recording one flight-
// recorder trace per epoch (generate → clock → solve → dop → encode →
// broadcast) when tracing is enabled.
func streamFixes(ctx context.Context, source epochSource, tel *serverTelemetry,
	pred clock.Predictor, b *Broadcaster, rate float64, log *slog.Logger) error {
	ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer ticker.Stop()
	i := 0
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		// The trace opens before the epoch exists: generation (orbits,
		// atmosphere, noise) is the first traced stage. T is back-filled
		// once known. tb is nil when tracing is off; every use no-ops.
		tb := tel.rec.StartEpoch(i, 0)
		ectx := trace.With(ctx, tb)
		gen := tb.Start("epoch/generate")
		epoch, err := source(i)
		if err != nil {
			return err
		}
		gen.SetAttr(trace.Int("sats", len(epoch.Obs)))
		gen.End()
		tb.SetT(epoch.T)
		i++
		tel.health.recordEpoch()
		obs := make([]core.Observation, 0, len(epoch.Obs))
		sats := make([]geo.ECEF, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
			sats = append(sats, o.Pos)
		}
		cp := tb.Start("clock/predict")
		if nrSol, err := tel.warm.Solve(epoch.T, obs); err == nil {
			pred.Observe(clock.Fix{T: epoch.T, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}
		if bias, err := pred.PredictBias(epoch.T); err == nil {
			cp.SetAttr(trace.Float("bias_s", bias))
		}
		cp.End()
		var sol core.Solution
		if tel.raim != nil && len(obs) >= 5 {
			// Copy the RAIM config per epoch so the context-carrying
			// solver wrapper never outlives its trace.
			raim := *tel.raim
			if tb != nil {
				raim.Solver = ctxSolver{Solver: raim.Solver, ctx: ectx}
			}
			res, rerr := raim.CheckCtx(ectx, epoch.T, obs)
			sol, err = res.Solution, rerr
			if rerr == nil && res.Excluded >= 0 {
				// The fix came from the reduced set; capture that set so
				// an exemplar replay reproduces it exactly.
				obs = append(obs[:res.Excluded:res.Excluded], obs[res.Excluded+1:]...)
			}
		} else {
			sol, err = core.SolveTraced(ectx, tel.solver, epoch.T, obs)
		}
		if err != nil {
			// Predictor warming up or degenerate epoch; the wrapper
			// already counted the failure.
			tb.SetErr(err)
			tb.Finish()
			log.Debug("solve failed", "epoch", i, "err", err)
			continue
		}
		dsp := tb.Start("dop/compute")
		hdop := 0.0
		if dop, err := core.ComputeDOP(sol.Pos, sats); err == nil {
			hdop = dop.HDOP
		}
		dsp.SetAttr(trace.Float("hdop", hdop))
		dsp.End()
		tel.health.recordFix(hdop)
		esp := tb.Start("nmea/encode")
		fix := nmea.Fix{
			TimeOfDay: epoch.T,
			Pos:       sol.Pos.ToLLA(),
			Quality:   nmea.QualityGPS,
			NumSats:   len(obs),
			HDOP:      hdop,
		}
		gga, rmc := nmea.GGA(fix), nmea.RMC(fix)
		esp.End()
		bsp := tb.Start("broadcast")
		b.Broadcast(gga)
		b.Broadcast(rmc)
		bsp.End()
		tel.captureExemplar(tb.Finish(), obs, sol, pred)
	}
}
