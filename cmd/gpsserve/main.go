// Command gpsserve streams live NMEA fixes over TCP, the way gpsd's raw
// mode does: it generates (or replays) observation epochs, positions the
// receiver with one of the repository's solvers, and broadcasts GGA + RMC
// sentences to every connected client.
//
//	gpsserve -station YYR1 -solver dlg -addr 127.0.0.1:2947 -rate 10
//	nc 127.0.0.1 2947          # watch the sentences
//
// Stop with Ctrl-C; clients are disconnected cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/nmea"
	"gpsdl/internal/scenario"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:]); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "gpsserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gpsserve", flag.ContinueOnError)
	var (
		stationID = fs.String("station", "YYR1", "Table 5.1 station to simulate")
		dataset   = fs.String("dataset", "", "replay a gpsgen dataset file instead of live generation")
		solver    = fs.String("solver", "dlg", "positioning algorithm: nr, dlo, dlg or bancroft")
		addr      = fs.String("addr", "127.0.0.1:2947", "TCP listen address")
		rate      = fs.Float64("rate", 1, "epochs per second to stream")
		seed      = fs.Int64("seed", 2009, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive")
	}
	var (
		source epochSource
		st     scenario.Station
	)
	if *dataset != "" {
		var ds *scenario.Dataset
		var err error
		if strings.HasSuffix(*dataset, ".bin") {
			ds, err = scenario.LoadBinaryFile(*dataset)
		} else {
			ds, err = scenario.LoadFile(*dataset)
		}
		if err != nil {
			return err
		}
		if ds.Len() == 0 {
			return fmt.Errorf("dataset %s has no epochs", *dataset)
		}
		st = ds.Station
		source = replaySource(ds)
	} else {
		var err error
		st, err = scenario.StationByID(strings.ToUpper(*stationID))
		if err != nil {
			return err
		}
		gen := scenario.NewGenerator(st, scenario.DefaultConfig(*seed))
		source = func(i int) (scenario.Epoch, error) { return gen.EpochAt(float64(i)) }
	}
	pred := eval.DefaultPredictor(st.Clock)
	var s core.Solver
	switch strings.ToLower(*solver) {
	case "nr":
		s = &core.NRSolver{}
	case "dlo":
		s = core.NewDLOSolver(pred)
	case "dlg":
		s = core.NewDLGSolver(pred)
	case "bancroft":
		s = core.BancroftSolver{}
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	fmt.Printf("gpsserve: streaming %s fixes for %s on %s (%g epoch/s)\n",
		s.Name(), st.ID, ln.Addr(), *rate)

	b := NewBroadcaster()
	serveErr := make(chan error, 1)
	go func() { serveErr <- b.Serve(ctx, ln) }()

	err = streamFixes(ctx, source, s, pred, b, *rate)
	cancelErr := <-serveErr
	if err != nil {
		return err
	}
	if cancelErr != nil && ctx.Err() == nil {
		return cancelErr
	}
	return nil
}

// epochSource supplies the i-th epoch to stream.
type epochSource func(i int) (scenario.Epoch, error)

// replaySource cycles through a loaded dataset's epochs.
func replaySource(ds *scenario.Dataset) epochSource {
	return func(i int) (scenario.Epoch, error) {
		return ds.Epochs[i%ds.Len()], nil
	}
}

// streamFixes runs the epoch loop until the context ends.
func streamFixes(ctx context.Context, source epochSource, s core.Solver,
	pred clock.Predictor, b *Broadcaster, rate float64) error {
	var nr core.NRSolver
	ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer ticker.Stop()
	i := 0
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		epoch, err := source(i)
		if err != nil {
			return err
		}
		i++
		obs := make([]core.Observation, 0, len(epoch.Obs))
		sats := make([]geo.ECEF, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
			sats = append(sats, o.Pos)
		}
		if nrSol, err := nr.Solve(epoch.T, obs); err == nil {
			pred.Observe(clock.Fix{T: epoch.T, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}
		sol, err := s.Solve(epoch.T, obs)
		if err != nil {
			continue // predictor warming up or degenerate epoch
		}
		hdop := 0.0
		if dop, err := core.ComputeDOP(sol.Pos, sats); err == nil {
			hdop = dop.HDOP
		}
		fix := nmea.Fix{
			TimeOfDay: epoch.T,
			Pos:       sol.Pos.ToLLA(),
			Quality:   nmea.QualityGPS,
			NumSats:   len(obs),
			HDOP:      hdop,
		}
		b.Broadcast(nmea.GGA(fix))
		b.Broadcast(nmea.RMC(fix))
	}
}
