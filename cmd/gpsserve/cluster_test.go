// Cluster serving-tier lifecycle tests: the real run() with -wire and
// -session-ids, driven over real sockets — binary subscribe/resume
// semantics, the unknown-session verdict, the /cluster/* control plane
// on the admin mux, and the restore-outcome observability.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpsdl/internal/cluster"
	"gpsdl/internal/wire"
)

func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never answered: %v", url, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeWireClusterTier(t *testing.T) {
	if testing.Short() {
		t.Skip("network end-to-end")
	}
	nmeaAddr, wireAddr, adminAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", nmeaAddr, "-wire", wireAddr, "-admin", adminAddr,
			"-session-ids", "1,3", "-rate", "100", "-seed", "5",
		})
	}()
	admin := "http://" + adminAddr
	waitHTTP(t, admin+"/healthz")

	// Binary subscribe on a hosted session delivers strictly
	// consecutive epochs.
	cctx, ccancel := context.WithTimeout(ctx, 20*time.Second)
	defer ccancel()
	c := wire.DialSession(cctx, wire.ClientConfig{Addr: wireAddr, Session: 3, Resume: -1})
	var got []wire.Fix
	for len(got) < 20 {
		f, ok := <-c.Fixes()
		if !ok {
			t.Fatalf("client stopped after %d fixes: %v", len(got), c.Err())
		}
		got = append(got, f)
	}
	c.Close()
	for i := 1; i < len(got); i++ {
		if got[i].Epoch != got[i-1].Epoch+1 {
			t.Fatalf("stream hole: %d -> %d", got[i-1].Epoch, got[i].Epoch)
		}
	}

	// A reconnect presenting the resume token continues exactly one
	// epoch past the ack — no duplicates, no silent skips.
	ack := int64(got[len(got)-1].Epoch)
	c2 := wire.DialSession(cctx, wire.ClientConfig{Addr: wireAddr, Session: 3, Resume: ack})
	f, ok := <-c2.Fixes()
	if !ok {
		t.Fatalf("resumed client stopped: %v", c2.Err())
	}
	c2.Close()
	if f.Epoch != uint64(ack)+1 {
		t.Fatalf("resume with ack %d delivered epoch %d, want %d", ack, f.Epoch, ack+1)
	}

	// A session this node does not host is answered StatusUnknown
	// immediately — the documented verdict, not a hang.
	raw, err := net.Dial("tcp", wireAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(wire.AppendSubscribe(nil, 9, 123)); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	pl, err := wire.NewFrameReader(raw).Next()
	if err != nil {
		t.Fatal(err)
	}
	res, err := wire.DecodeResume(pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusUnknown {
		t.Fatalf("unhosted session answered status %d, want StatusUnknown", res.Status)
	}

	// The admin mux carries the cluster control plane and status block.
	resp, err := http.Get(admin + "/cluster/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var sessions struct {
		Sessions []wire.SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sessions.Sessions) != 2 || sessions.Sessions[0].ID != 1 || sessions.Sessions[1].ID != 3 {
		t.Fatalf("/cluster/sessions = %+v, want ids 1 and 3", sessions.Sessions)
	}
	resp, err = http.Get(admin + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Cluster *cluster.NodeStatus `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Cluster == nil || status.Cluster.Engines != 1 {
		t.Fatalf("/debug/status cluster block = %+v", status.Cluster)
	}

	// Graceful degradation end-to-end: a handoff with corrupt
	// checkpoint bytes cold-starts the session, reports the downgrade
	// on /healthz, and moves gps_restore_failures_total.
	hr, err := http.Post(admin+"/cluster/handoff?sessions=7&resume=50",
		"application/octet-stream", strings.NewReader("not a checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	var out cluster.RestoreOutcome
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if out.Outcome != "corrupt" {
		t.Fatalf("handoff outcome = %q, want corrupt", out.Outcome)
	}
	resp, err = http.Get(admin + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Restore *cluster.RestoreOutcome `json:"restore"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Restore == nil || hz.Restore.Outcome != "corrupt" {
		t.Fatalf("/healthz restore block = %+v, want corrupt", hz.Restore)
	}
	resp, err = http.Get(admin + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("gps_restore_failures_total 1")) {
		t.Fatalf("/metrics missing gps_restore_failures_total 1:\n%s",
			firstMatching(metrics, "gps_restore_failures"))
	}
	if !bytes.Contains(metrics, []byte("gps_cluster_handoffs_total 1")) {
		t.Fatalf("/metrics missing gps_cluster_handoffs_total 1:\n%s",
			firstMatching(metrics, "gps_cluster"))
	}

	// The adopted session serves from its cold-start resume point.
	c3 := wire.DialSession(cctx, wire.ClientConfig{Addr: wireAddr, Session: 7, Resume: -1})
	f3, ok := <-c3.Fixes()
	if !ok {
		t.Fatalf("adopted session never served: %v", c3.Err())
	}
	c3.Close()
	if f3.Epoch < 50 {
		t.Fatalf("cold-started session served epoch %d before its resume point 50", f3.Epoch)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("server did not stop")
	}
}

// firstMatching extracts the metrics lines containing sub, for
// failure messages.
func firstMatching(metrics []byte, sub string) string {
	var hits []string
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.Contains(line, sub) {
			hits = append(hits, line)
		}
	}
	if len(hits) == 0 {
		return fmt.Sprintf("(no lines containing %q)", sub)
	}
	return strings.Join(hits, "\n")
}

// TestServeSessionIDsFlagErrors: the -session-ids grammar and the
// -receivers exclusivity are refused loudly.
func TestServeSessionIDsFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"with-receivers": {"-session-ids", "0,1", "-receivers", "2"},
		"bad-grammar":    {"-session-ids", "1,x"},
		"duplicate":      {"-session-ids", "2,2"},
		"raim":           {"-wire", "127.0.0.1:0", "-raim"},
		"dataset":        {"-session-ids", "0", "-dataset", "nope.json"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("%s: run accepted %v", name, args)
		}
	}
}
