package main

import (
	"path/filepath"
	"testing"

	"gpsdl/internal/scenario"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	st, err := scenario.StationByID("KYCP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(3)
	cfg.Step = 5
	g := scenario.NewGenerator(st, cfg)
	ds, err := g.GenerateRange(0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kycp.jsonl")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllSolvers(t *testing.T) {
	path := writeDataset(t)
	for _, solver := range []string{"nr", "dlo", "dlg", "bancroft", "trisat"} {
		t.Run(solver, func(t *testing.T) {
			if err := run([]string{"-dataset", path, "-solver", solver, "-sats", "6"}); err != nil {
				t.Errorf("run(%s): %v", solver, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDataset(t)
	tests := []struct {
		name string
		args []string
	}{
		{"missing dataset flag", nil},
		{"unknown solver", []string{"-dataset", path, "-solver", "magic"}},
		{"missing file", []string{"-dataset", path + ".nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestRunEmitsNMEA(t *testing.T) {
	path := writeDataset(t)
	if err := run([]string{"-dataset", path, "-solver", "dlg", "-sats", "6", "-nmea", "3"}); err != nil {
		t.Fatalf("run with -nmea: %v", err)
	}
}

func TestRunLoadsBinaryDataset(t *testing.T) {
	st, err := scenario.StationByID("SRZN")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(3)
	cfg.Step = 10
	g := scenario.NewGenerator(st, cfg)
	ds, err := g.GenerateRange(0, 900)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "srzn.bin")
	if err := ds.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", path, "-solver", "nr", "-sats", "6"}); err != nil {
		t.Fatal(err)
	}
}
