package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpsdl/internal/eval"
	"gpsdl/internal/scenario"
	"gpsdl/internal/trace"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	st, err := scenario.StationByID("KYCP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(3)
	cfg.Step = 5
	g := scenario.NewGenerator(st, cfg)
	ds, err := g.GenerateRange(0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kycp.jsonl")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllSolvers(t *testing.T) {
	path := writeDataset(t)
	for _, solver := range []string{"nr", "dlo", "dlg", "bancroft", "trisat"} {
		t.Run(solver, func(t *testing.T) {
			if err := run([]string{"-dataset", path, "-solver", solver, "-sats", "6"}); err != nil {
				t.Errorf("run(%s): %v", solver, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDataset(t)
	tests := []struct {
		name string
		args []string
	}{
		{"missing dataset flag", nil},
		{"unknown solver", []string{"-dataset", path, "-solver", "magic"}},
		{"missing file", []string{"-dataset", path + ".nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestRunEmitsNMEA(t *testing.T) {
	path := writeDataset(t)
	if err := run([]string{"-dataset", path, "-solver", "dlg", "-sats", "6", "-nmea", "3"}); err != nil {
		t.Fatalf("run with -nmea: %v", err)
	}
}

// writeExemplars captures real exemplars through an instrumented sweep
// and writes them as a flight-recorder dump.
func writeExemplars(t *testing.T) string {
	t.Helper()
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(9)
	cfg.Step = 5
	g := scenario.NewGenerator(st, cfg)
	ds, err := g.GenerateRange(0, 900)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(trace.Config{Capacity: 64, Exemplars: 16, SlowThreshold: time.Nanosecond})
	sweep := &eval.Sweep{Dataset: ds, SatCounts: []int{8}, InitEpochs: 30, MaxEpochs: 5, Seed: 1, Recorder: rec}
	if _, err := sweep.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Exemplars()) == 0 {
		t.Fatal("sweep captured no exemplars")
	}
	path := filepath.Join(t.TempDir(), "exemplars.json")
	if err := rec.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// -replay must re-run every captured exemplar and report byte-identical
// reproduction of the captured solver's fix.
func TestRunReplayExemplars(t *testing.T) {
	path := writeExemplars(t)
	if err := run([]string{"-replay", path}); err != nil {
		t.Fatalf("run -replay: %v", err)
	}
}

// A tampered solution must be detected as a replay mismatch.
func TestRunReplayDetectsMismatch(t *testing.T) {
	path := writeExemplars(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Exemplars []*trace.Exemplar `json:"exemplars"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	in, err := eval.DecodeReplayInput(dump.Exemplars[0])
	if err != nil {
		t.Fatal(err)
	}
	in.Solution.X += 0.5
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	dump.Exemplars[0].Input = raw
	tampered := filepath.Join(t.TempDir(), "tampered.json")
	out, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tampered, out, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-replay", tampered})
	if err == nil || !strings.Contains(err.Error(), "byte-identically") {
		t.Fatalf("tampered replay error = %v, want mismatch", err)
	}
}

func TestRunReplayErrors(t *testing.T) {
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing replay file succeeded")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-replay", empty}); err == nil {
		t.Error("empty replay file succeeded")
	}
}

func TestRunLoadsBinaryDataset(t *testing.T) {
	st, err := scenario.StationByID("SRZN")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(3)
	cfg.Step = 10
	g := scenario.NewGenerator(st, cfg)
	ds, err := g.GenerateRange(0, 900)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "srzn.bin")
	if err := ds.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", path, "-solver", "nr", "-sats", "6"}); err != nil {
		t.Fatal(err)
	}
}
