// Command gpsrun processes a dataset with one positioning algorithm and
// prints fix statistics: per-epoch error distribution, solve times, DOP.
//
// Usage:
//
//	gpsrun -dataset yyr1.jsonl -solver dlg
//	gpsrun -dataset yyr1.jsonl -solver nr -sats 6 -epochs 1000
//	gpsrun -replay exemplars.json   # re-run captured slow-fix exemplars
//
// -replay takes a flight-recorder exemplar file (a gpsserve -trace-dump,
// a /debug/trace/exemplars scrape, or a bare exemplar array) and re-runs
// each captured epoch through all four solvers with the captured clock
// estimate pinned, verifying the original solver reproduces the recorded
// solution bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/fault"
	"gpsdl/internal/geo"
	"gpsdl/internal/nmea"
	"gpsdl/internal/scenario"
	"gpsdl/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gpsrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gpsrun", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", "", "path to a JSON-lines dataset from gpsgen (required)")
		solver    = fs.String("solver", "dlg", "algorithm: nr, dlo, dlg, bancroft or trisat")
		sats      = fs.Int("sats", 8, "satellites per epoch (4-12)")
		epochs    = fs.Int("epochs", 0, "max epochs to process (0 = all)")
		seed      = fs.Int64("seed", 1, "satellite-selection seed")
		nmeaN     = fs.Int("nmea", 0, "emit NMEA GGA/RMC sentences for the first N fixes")
		replay    = fs.String("replay", "", "replay a captured exemplar file (trace dump, /debug/trace/exemplars body, or exemplar array) through all solvers")
		faults    = fs.String("faults", "", "apply a fault-injection program to the dataset first, e.g. 'step:prn=7,bias=400,from=100;burst:sigma=8'")
		faultSeed = fs.Int64("fault-seed", 1, "fault-injector seed (burst noise stream) for -faults")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replay != "" {
		return replayExemplars(os.Stdout, *replay)
	}
	if *dataset == "" {
		return fmt.Errorf("-dataset is required (or -replay an exemplar file)")
	}
	ds, err := loadDataset(*dataset)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: station %s (%s clock), %d epochs, %d-%d satellites\n",
		*dataset, ds.Station.ID, ds.Station.Clock, ds.Len(), ds.MinSatCount(), ds.MaxSatCount())
	if *faults != "" {
		prog, err := fault.ParseSpec(*faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		var log []fault.Event
		ds, log = fault.ApplyDataset(ds, prog, *faultSeed)
		byKind := map[string]int{}
		for _, ev := range log {
			byKind[ev.Kind.String()]++
		}
		fmt.Printf("faults applied: %s (seed %d): %d events", prog.String(), *faultSeed, len(log))
		for _, k := range []string{"drop", "step", "ramp", "burst", "clockjump", "shrink"} {
			if byKind[k] > 0 {
				fmt.Printf(" %s=%d", k, byKind[k])
			}
		}
		fmt.Println()
	}

	pred := eval.DefaultPredictor(ds.Station.Clock)
	var s core.Solver
	switch strings.ToLower(*solver) {
	case "nr":
		s = &core.NRSolver{}
	case "dlo":
		s = &core.DLOSolver{Predictor: pred}
	case "dlg":
		s = &core.DLGSolver{Predictor: pred}
	case "bancroft":
		s = core.BancroftSolver{}
	case "trisat":
		s = &core.TriSatSolver{Predictor: pred}
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}
	stats, err := eval.RunArms(ds, []eval.ArmSpec{{Name: s.Name(), Solver: s, Predictor: predictorFor(s, pred)}},
		eval.ArmOptions{M: *sats, MaxEpochs: *epochs, Seed: *seed})
	if err != nil {
		return err
	}
	st := stats[0]
	fmt.Printf("%s over %d epochs (m=%d):\n", st.Name, st.Fixes+st.Failures, *sats)
	fmt.Printf("  mean error      %8.3f m\n", st.MeanError)
	fmt.Printf("  rms error       %8.3f m\n", st.RMSError)
	fmt.Printf("  max error       %8.3f m\n", st.MaxError)
	fmt.Printf("  mean solve time %8.0f ns\n", st.MeanNanos)
	fmt.Printf("  mean iterations %8.2f\n", st.MeanIterations)
	fmt.Printf("  fixes/failures  %d/%d\n", st.Fixes, st.Failures)
	if *nmeaN > 0 {
		return emitNMEA(ds, s, pred, *nmeaN)
	}
	return nil
}

// emitNMEA streams the first n fixes as NMEA GGA + RMC sentences.
func emitNMEA(ds *scenario.Dataset, s core.Solver, pred clock.Predictor, n int) error {
	var nr core.NRSolver
	emitted := 0
	for i := range ds.Epochs {
		if emitted >= n {
			break
		}
		e := &ds.Epochs[i]
		obs := make([]core.Observation, 0, len(e.Obs))
		sats := make([]geo.ECEF, 0, len(e.Obs))
		for _, o := range e.Obs {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
			sats = append(sats, o.Pos)
		}
		// Maintain the predictor for direct solvers.
		if nrSol, err := nr.Solve(e.T, obs); err == nil {
			pred.Observe(clock.Fix{T: e.T, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}
		sol, err := s.Solve(e.T, obs)
		if err != nil {
			continue
		}
		hdop := 0.0
		if dop, err := core.ComputeDOP(sol.Pos, sats); err == nil {
			hdop = dop.HDOP
		}
		fix := nmea.Fix{
			TimeOfDay: e.T,
			Pos:       sol.Pos.ToLLA(),
			Quality:   nmea.QualityGPS,
			NumSats:   len(obs),
			HDOP:      hdop,
		}
		fmt.Println(nmea.GGA(fix))
		fmt.Println(nmea.RMC(fix))
		emitted++
	}
	return nil
}

// replayExemplars re-runs every captured exemplar in the file through
// all four solvers with the captured clock estimate pinned. It fails if
// the originally captured solver does not reproduce the recorded
// solution bit-for-bit — the flight recorder's determinism guarantee.
func replayExemplars(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	exs, err := trace.DecodeExemplars(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replaying %d exemplar(s) from %s\n", len(exs), path)
	var mismatches int
	for idx, ex := range exs {
		in, err := eval.DecodeReplayInput(ex)
		if err != nil {
			return fmt.Errorf("exemplar %d: %w", idx+1, err)
		}
		fmt.Fprintf(w, "\nexemplar %d: station %s epoch %d t=%.1f s, %d sats, reason=%s solve=%v residual=%.2f m, captured by %s\n",
			idx+1, in.Station.ID, in.EpochIndex, in.T, len(in.Obs),
			ex.Reason, time.Duration(ex.SolveNanos), ex.ResidualMeters, in.Solver)
		matched := false
		for _, s := range in.Solvers() {
			sol, err := s.Solve(in.T, in.Obs)
			if err != nil {
				fmt.Fprintf(w, "  %-9s solve failed: %v\n", s.Name(), err)
				continue
			}
			fmt.Fprintf(w, "  %-9s error vs truth %9.3f m, vs captured fix %.6g m",
				s.Name(), sol.Pos.DistanceTo(in.Station.Pos), sol.Pos.DistanceTo(in.Solution))
			if s.Name() == in.Solver {
				matched = true
				if sol.Pos == in.Solution {
					fmt.Fprintf(w, "  [byte-identical replay]")
				} else {
					mismatches++
					fmt.Fprintf(w, "  [MISMATCH: %+v != captured %+v]", sol.Pos, in.Solution)
				}
			}
			fmt.Fprintln(w)
		}
		if !matched {
			return fmt.Errorf("exemplar %d: captured solver %q did not produce a fix on replay", idx+1, in.Solver)
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d exemplar(s) did not replay byte-identically", mismatches)
	}
	fmt.Fprintf(w, "\nall %d exemplar(s) replayed byte-identically\n", len(exs))
	return nil
}

// loadDataset loads a dataset in either on-disk format by extension.
func loadDataset(path string) (*scenario.Dataset, error) {
	if strings.HasSuffix(path, ".bin") {
		return scenario.LoadBinaryFile(path)
	}
	return scenario.LoadFile(path)
}

// predictorFor returns the predictor to feed NR fixes to, or nil for
// algorithms that do not use one.
func predictorFor(s core.Solver, p clock.Predictor) clock.Predictor {
	switch s.(type) {
	case *core.DLOSolver, *core.DLGSolver, *core.TriSatSolver:
		return p
	default:
		return nil
	}
}
