package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpsdl/internal/engine"
	"gpsdl/internal/fault"
)

// writeJournal runs a journaling engine with a RAIM-evading step fault
// on PRN 14 and returns the journal path.
func writeJournal(t *testing.T, name string, seed int64, epochs int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{
		Receivers: 2, Workers: 2, Seed: seed,
		Quality:             &engine.QualityConfig{},
		JournalSink:         f,
		JournalCaptureEvery: 32,
		Faults:              fault.Program{{Kind: fault.KindStep, PRN: 14, Bias: 30, From: 100, Until: math.Inf(1)}},
		FaultSeed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	if err := eng.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInfoTimelineAttribute(t *testing.T) {
	path := writeJournal(t, "flight.gpsj", 21, 300)

	var out bytes.Buffer
	if err := run(&out, []string{"info", path}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"receivers=2", "epochs: [0, 299]", "chi2 failures", "sync points"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("info missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "torn tail") {
		t.Errorf("clean journal reported torn:\n%s", out.String())
	}

	out.Reset()
	if err := run(&out, []string{"timeline", "-recv", "0", path}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EPOCH", "chi2=FAIL", "matching records shown"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("timeline missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run(&out, []string{"attribute", "-from", "100", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PRN 14 contributed") {
		t.Errorf("attribute did not name PRN 14:\n%s", out.String())
	}
	// The faulted satellite must dominate the budget burn.
	line := ""
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(l, "PRN 14 contributed") {
			line = l
		}
	}
	var prn int
	var share float64
	if _, err := fmt.Sscanf(line, "PRN %d contributed %f%%", &prn, &share); err != nil || prn != 14 || share < 50 {
		t.Errorf("attribution verdict %q: prn=%d share=%v%%, want PRN 14 >= 50%%", line, prn, share)
	}
}

func TestDiffAndReplay(t *testing.T) {
	a := writeJournal(t, "a.gpsj", 21, 200)
	b := writeJournal(t, "b.gpsj", 21, 200)
	c := writeJournal(t, "c.gpsj", 22, 200)

	var out bytes.Buffer
	if err := run(&out, []string{"diff", a, b}); err != nil {
		t.Fatalf("identical-seed journals differ: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "journals are record-identical") {
		t.Errorf("diff verdict missing:\n%s", out.String())
	}

	out.Reset()
	if err := run(&out, []string{"diff", a, c}); err == nil {
		t.Fatalf("different-seed journals reported identical:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "differ") {
		t.Errorf("diff output missing differ counts:\n%s", out.String())
	}

	out.Reset()
	if err := run(&out, []string{"replay", a}); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replayed bit-identically") {
		t.Errorf("replay verdict missing:\n%s", out.String())
	}
}

// A truncated journal must still be inspectable, reporting exactly one
// torn tail.
func TestTornJournalInspectable(t *testing.T) {
	path := writeJournal(t, "flight.gpsj", 5, 200)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.gpsj")
	if err := os.WriteFile(torn, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, []string{"info", torn}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "torn tail") {
		t.Errorf("torn journal not reported:\n%s", out.String())
	}
}

func TestBundleDirAccepted(t *testing.T) {
	path := writeJournal(t, "journal.gpsj", 9, 150)
	bundle := filepath.Dir(path) // the temp dir acts as the bundle
	var out bytes.Buffer
	if err := run(&out, []string{"info", bundle}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "receivers=2") {
		t.Errorf("bundle info:\n%s", out.String())
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, nil); err == nil {
		t.Error("no command accepted")
	}
	out.Reset()
	if err := run(&out, []string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	out.Reset()
	if err := run(&out, []string{"help"}); err != nil {
		t.Error(err)
	}
	if !strings.Contains(out.String(), "attribute") {
		t.Errorf("usage missing commands:\n%s", out.String())
	}
}
