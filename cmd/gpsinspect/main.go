// Command gpsinspect is the offline forensics companion to the flight
// journal: it answers "what happened to this receiver" from a journal
// file or an incident bundle, with no running server.
//
//	gpsinspect info incident-dir/20260809T120000-0001-slo_page-r3
//	gpsinspect timeline -recv 3 flight.gpsj
//	gpsinspect attribute -from 100 flight.gpsj   # χ² budget burn per PRN
//	gpsinspect diff a.gpsj b.gpsj                # determinism check
//	gpsinspect replay flight.gpsj                # bit-identical re-solve
//
// Every subcommand accepts either a journal file or an incident bundle
// directory (the bundle's journal.gpsj is used). A torn tail — the
// expected state after a crash — is reported, never fatal: forensics
// tools must work best on the files that matter most.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"gpsdl/internal/eval"
	"gpsdl/internal/journal"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gpsinspect:", err)
		os.Exit(1)
	}
}

const usage = `usage: gpsinspect <command> [flags] <journal-or-bundle> [...]

commands:
  info       header, coverage and integrity summary
  timeline   per-receiver event timeline (state changes, χ² failures, exclusions)
  attribute  per-satellite share of the χ² budget burn
  diff       compare two journals record by record
  replay     re-solve captured epochs and verify bit-identical fixes
`

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		fmt.Fprint(w, usage)
		return fmt.Errorf("a command is required")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "info":
		return runInfo(w, rest)
	case "timeline":
		return runTimeline(w, rest)
	case "attribute":
		return runAttribute(w, rest)
	case "diff":
		return runDiff(w, rest)
	case "replay":
		return runReplay(w, rest)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(w, usage)
		return nil
	default:
		fmt.Fprint(w, usage)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// load scans a journal file, or the journal.gpsj inside an incident
// bundle directory.
func load(path string) (*journal.ScanResult, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		path = filepath.Join(path, "journal.gpsj")
	}
	return journal.ScanFile(path)
}

// recordFilter is the shared -recv/-from/-to selection.
type recordFilter struct {
	recv     int
	from, to uint64
}

func filterFlags(fs *flag.FlagSet) *recordFilter {
	f := &recordFilter{}
	fs.IntVar(&f.recv, "recv", -1, "restrict to one receiver (-1 means all)")
	fs.Uint64Var(&f.from, "from", 0, "first epoch to consider")
	f.to = math.MaxUint64
	fs.Uint64Var(&f.to, "to", math.MaxUint64, "last epoch to consider (inclusive)")
	return f
}

func (f *recordFilter) keep(r *journal.Record) bool {
	if f.recv >= 0 && r.Receiver != f.recv {
		return false
	}
	return r.Epoch >= f.from && r.Epoch <= f.to
}

// reportTear prints the torn-tail verdict a crash leaves behind.
func reportTear(w io.Writer, res *journal.ScanResult) {
	if res.Torn {
		fmt.Fprintf(w, "torn tail: %s at offset %d (all complete frames recovered)\n",
			res.TornReason, res.TornOffset)
	}
}

// ---- info ----

func runInfo(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gpsinspect info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info takes exactly one journal or bundle, have %d", fs.NArg())
	}
	res, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	m := &res.Meta
	fmt.Fprintf(w, "journal: solver=%s seed=%d step=%gs receivers=%d capture_every=%d\n",
		m.Solver, m.Seed, m.Step, m.Receivers, m.CaptureEvery)
	if m.Created != "" {
		fmt.Fprintf(w, "created: %s\n", m.Created)
	}
	if len(m.Stations) > 0 {
		fmt.Fprintf(w, "stations: %s\n", strings.Join(m.Stations, " "))
	}
	fmt.Fprintf(w, "frames: %d record frames, %d sync points, %d records\n",
		res.Frames, len(res.SyncPoints), len(res.Records))
	if len(res.Records) > 0 {
		lo, hi := uint64(math.MaxUint64), uint64(0)
		perRecv := map[int]int{}
		var fixes, coasts, misses, captured, excluded, chi2fail int
		for i := range res.Records {
			r := &res.Records[i]
			if r.Epoch < lo {
				lo = r.Epoch
			}
			if r.Epoch > hi {
				hi = r.Epoch
			}
			perRecv[r.Receiver]++
			switch {
			case r.Has(journal.FlagFix | journal.FlagCoast):
				coasts++
			case r.Has(journal.FlagFix):
				fixes++
			default:
				misses++
			}
			if r.Flags&journal.FlagObs != 0 {
				captured++
			}
			if r.Flags&journal.FlagExcluded != 0 {
				excluded++
			}
			if r.Has(journal.FlagChi2Valid) && !r.Has(journal.FlagChi2Pass) {
				chi2fail++
			}
		}
		fmt.Fprintf(w, "epochs: [%d, %d], %d receivers seen\n", lo, hi, len(perRecv))
		fmt.Fprintf(w, "records: %d fixes, %d coasts, %d misses; %d chi2 failures, %d RAIM exclusions, %d captured obs sets\n",
			fixes, coasts, misses, chi2fail, excluded, captured)
	}
	if len(res.SyncPoints) > 0 {
		sp := res.SyncPoints[len(res.SyncPoints)-1]
		fmt.Fprintf(w, "last sync point: epoch %d after %d frames / %d records\n",
			sp.MaxEpoch, sp.Frames, sp.Records)
	}
	reportTear(w, res)
	return nil
}

// ---- timeline ----

// flagsLabel renders a record's noteworthy flags compactly.
func flagsLabel(r *journal.Record) string {
	var parts []string
	switch {
	case r.Has(journal.FlagFix | journal.FlagCoast):
		parts = append(parts, "coast")
	case r.Has(journal.FlagFix):
		parts = append(parts, "fix")
	default:
		parts = append(parts, "miss")
	}
	if r.Has(journal.FlagChi2Valid) {
		if r.Has(journal.FlagChi2Pass) {
			parts = append(parts, "chi2=pass")
		} else {
			parts = append(parts, "chi2=FAIL")
		}
	}
	if r.Flags&journal.FlagExcluded != 0 {
		parts = append(parts, fmt.Sprintf("excluded=PRN%d", r.ExcludedPRN))
	}
	if r.Flags&journal.FlagSuspect != 0 {
		parts = append(parts, "suspect")
	}
	if r.Flags&journal.FlagObs != 0 {
		parts = append(parts, "obs-captured")
	}
	return strings.Join(parts, " ")
}

// eventful reports whether a record belongs on the default (compressed)
// timeline: anything other than a plain healthy fix.
func eventful(r *journal.Record) bool {
	if r.Flags&(journal.FlagStateChange|journal.FlagExcluded|journal.FlagSuspect|journal.FlagCoast) != 0 {
		return true
	}
	if r.Has(journal.FlagChi2Valid) && !r.Has(journal.FlagChi2Pass) {
		return true
	}
	return r.Flags&journal.FlagFix == 0 // miss
}

func runTimeline(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gpsinspect timeline", flag.ContinueOnError)
	f := filterFlags(fs)
	all := fs.Bool("all", false, "print every record, not just events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("timeline takes exactly one journal or bundle, have %d", fs.NArg())
	}
	res, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "EPOCH\tRECV\tSTATE\tSOLVER\tCHAIN\tEVENT\tRMS\tPDOP\n")
	shown, matched := 0, 0
	for i := range res.Records {
		r := &res.Records[i]
		if !f.keep(r) {
			continue
		}
		matched++
		if !*all && !eventful(r) {
			continue
		}
		shown++
		rms, pdop := "-", "-"
		if r.Has(journal.FlagRMS) {
			rms = fmt.Sprintf("%.2f", r.RMS)
		}
		if r.Has(journal.FlagDOP) {
			pdop = fmt.Sprintf("%.2f", r.PDOP)
		}
		solver := journal.SolverName(r.Solver)
		if solver == "" {
			solver = "-"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%d\t%s\t%s\t%s\n",
			r.Epoch, r.Receiver, journal.StateName(r.State), solver, r.Chain, flagsLabel(r), rms, pdop)
	}
	tw.Flush()
	fmt.Fprintf(w, "%d of %d matching records shown\n", shown, matched)
	reportTear(w, res)
	return nil
}

// ---- attribute ----

// defaultSigma mirrors the engine's default measurement noise when the
// journal header carries none.
const defaultSigma = 5.0

func runAttribute(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gpsinspect attribute", flag.ContinueOnError)
	f := filterFlags(fs)
	top := fs.Int("top", 8, "satellites to rank")
	allEpochs := fs.Bool("all-epochs", false, "attribute over every epoch with residuals, not just chi2 failures")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("attribute takes exactly one journal or bundle, have %d", fs.NArg())
	}
	res, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	sigma := res.Meta.Sigma
	if sigma <= 0 {
		sigma = defaultSigma
	}
	type satBurn struct {
		prn    int
		burn   float64 // Σ (v/σ)² — this satellite's χ² contribution
		worst  float64 // largest |v| seen
		epochs int
	}
	byPRN := map[int]*satBurn{}
	var total float64
	epochs := 0
	for i := range res.Records {
		r := &res.Records[i]
		if !f.keep(r) || len(r.Residuals) == 0 {
			continue
		}
		if !*allEpochs && !(r.Has(journal.FlagChi2Valid) && !r.Has(journal.FlagChi2Pass)) {
			continue
		}
		epochs++
		for _, sr := range r.Residuals {
			sb := byPRN[sr.PRN]
			if sb == nil {
				sb = &satBurn{prn: sr.PRN}
				byPRN[sr.PRN] = sb
			}
			n := (sr.Meters / sigma) * (sr.Meters / sigma)
			sb.burn += n
			total += n
			sb.epochs++
			if v := math.Abs(sr.Meters); v > sb.worst {
				sb.worst = v
			}
		}
	}
	scope := "chi2-failed"
	if *allEpochs {
		scope = "residual-carrying"
	}
	if total == 0 {
		fmt.Fprintf(w, "no %s epochs with residuals in the selection\n", scope)
		reportTear(w, res)
		return nil
	}
	ranked := make([]*satBurn, 0, len(byPRN))
	for _, sb := range byPRN {
		ranked = append(ranked, sb)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].burn != ranked[j].burn {
			return ranked[i].burn > ranked[j].burn
		}
		return ranked[i].prn < ranked[j].prn
	})
	fmt.Fprintf(w, "χ² budget burn over %d %s epochs (σ=%g m):\n", epochs, scope, sigma)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "PRN\tSHARE\tBURN\tWORST RESID\tEPOCHS\n")
	for i, sb := range ranked {
		if i >= *top {
			break
		}
		fmt.Fprintf(tw, "%d\t%.1f%%\t%.1f\t%.2f m\t%d\n",
			sb.prn, 100*sb.burn/total, sb.burn, sb.worst, sb.epochs)
	}
	tw.Flush()
	lead := ranked[0]
	fmt.Fprintf(w, "PRN %d contributed %.0f%% of the χ² budget burn\n",
		lead.prn, 100*lead.burn/total)
	reportTear(w, res)
	return nil
}

// ---- diff ----

// recordKey orders records for the pairwise diff.
type recordKey struct {
	recv  int
	epoch uint64
}

func indexRecords(res *journal.ScanResult) map[recordKey]*journal.Record {
	idx := make(map[recordKey]*journal.Record, len(res.Records))
	for i := range res.Records {
		r := &res.Records[i]
		idx[recordKey{r.Receiver, r.Epoch}] = r
	}
	return idx
}

// recordsEqual compares the full decoded record, bit-level for floats.
func recordsEqual(a, b *journal.Record) bool {
	if a.Flags != b.Flags || a.State != b.State || a.Chain != b.Chain ||
		a.Solver != b.Solver || a.ExcludedPRN != b.ExcludedPRN ||
		a.Pos != b.Pos || a.ClockBias != b.ClockBias ||
		a.RMS != b.RMS || a.PDOP != b.PDOP || a.HDOP != b.HDOP ||
		a.ClockInnov != b.ClockInnov || a.PredBias != b.PredBias ||
		len(a.Residuals) != len(b.Residuals) || len(a.Obs) != len(b.Obs) {
		return false
	}
	for i := range a.Residuals {
		if a.Residuals[i] != b.Residuals[i] {
			return false
		}
	}
	for i := range a.Obs {
		if a.Obs[i] != b.Obs[i] {
			return false
		}
	}
	return true
}

func runDiff(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gpsinspect diff", flag.ContinueOnError)
	f := filterFlags(fs)
	limit := fs.Int("limit", 10, "differing records to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff takes exactly two journals or bundles, have %d", fs.NArg())
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	am, bm := metaComparable(a.Meta), metaComparable(b.Meta)
	if am != bm {
		fmt.Fprintf(w, "meta differs:\n  a: %+v\n  b: %+v\n", am, bm)
	}
	ai, bi := indexRecords(a), indexRecords(b)
	keys := make([]recordKey, 0, len(ai))
	for k := range ai {
		keys = append(keys, k)
	}
	for k := range bi {
		if _, ok := ai[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].recv != keys[j].recv {
			return keys[i].recv < keys[j].recv
		}
		return keys[i].epoch < keys[j].epoch
	})
	var onlyA, onlyB, differ, same, shown int
	for _, k := range keys {
		ra, oka := ai[k]
		rb, okb := bi[k]
		if oka && !f.keep(ra) || !oka && !f.keep(rb) {
			continue
		}
		switch {
		case !okb:
			onlyA++
			if shown < *limit {
				fmt.Fprintf(w, "recv %d epoch %d: only in %s\n", k.recv, k.epoch, fs.Arg(0))
				shown++
			}
		case !oka:
			onlyB++
			if shown < *limit {
				fmt.Fprintf(w, "recv %d epoch %d: only in %s\n", k.recv, k.epoch, fs.Arg(1))
				shown++
			}
		case !recordsEqual(ra, rb):
			differ++
			if shown < *limit {
				fmt.Fprintf(w, "recv %d epoch %d differs:\n  a: %s pos=%v rms=%.3f\n  b: %s pos=%v rms=%.3f\n",
					k.recv, k.epoch, flagsLabel(ra), ra.Pos, ra.RMS, flagsLabel(rb), rb.Pos, rb.RMS)
				shown++
			}
		default:
			same++
		}
	}
	fmt.Fprintf(w, "%d records identical, %d differ, %d only in a, %d only in b\n",
		same, differ, onlyA, onlyB)
	reportTear(w, a)
	reportTear(w, b)
	if differ+onlyA+onlyB > 0 {
		return fmt.Errorf("journals differ")
	}
	fmt.Fprintln(w, "journals are record-identical")
	return nil
}

// comparableMeta is the subset of the journal header two runs of the
// same configuration must agree on — the capture timestamp legitimately
// differs, and stations are compared through the records themselves.
type comparableMeta struct {
	Solver       string
	Seed         int64
	Step         float64
	Receivers    int
	Sigma        float64
	CaptureEvery int
	Stations     string
}

func metaComparable(m journal.Meta) comparableMeta {
	return comparableMeta{
		Solver:       m.Solver,
		Seed:         m.Seed,
		Step:         m.Step,
		Receivers:    m.Receivers,
		Sigma:        m.Sigma,
		CaptureEvery: m.CaptureEvery,
		Stations:     strings.Join(m.Stations, " "),
	}
}

// ---- replay ----

func runReplay(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gpsinspect replay", flag.ContinueOnError)
	f := filterFlags(fs)
	verbose := fs.Bool("v", false, "print every replayed epoch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay takes exactly one journal or bundle, have %d", fs.NArg())
	}
	res, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	var replayed, mismatches, failures int
	for i := range res.Records {
		r := &res.Records[i]
		if !f.keep(r) || r.Flags&journal.FlagObs == 0 || r.Flags&journal.FlagCoast != 0 {
			continue
		}
		in, err := eval.ReplayInputFromRecord(&res.Meta, r)
		if err != nil {
			return fmt.Errorf("recv %d epoch %d: %w", r.Receiver, r.Epoch, err)
		}
		sv := in.ReplaySolver()
		if sv == nil {
			return fmt.Errorf("recv %d epoch %d: captured solver %q is not replayable", r.Receiver, r.Epoch, in.Solver)
		}
		sol, err := sv.Solve(in.T, in.Obs)
		if err != nil {
			failures++
			fmt.Fprintf(w, "recv %d epoch %d: %s replay failed: %v\n", r.Receiver, r.Epoch, in.Solver, err)
			continue
		}
		replayed++
		if sol.Pos != in.Solution {
			mismatches++
			fmt.Fprintf(w, "recv %d epoch %d: MISMATCH %s: %+v != captured %+v\n",
				r.Receiver, r.Epoch, in.Solver, sol.Pos, in.Solution)
		} else if *verbose {
			fmt.Fprintf(w, "recv %d epoch %d: %s byte-identical (%d sats, err vs truth %.3f m)\n",
				r.Receiver, r.Epoch, in.Solver, len(in.Obs), sol.Pos.DistanceTo(in.Station.Pos))
		}
	}
	reportTear(w, res)
	if replayed == 0 && failures == 0 {
		return fmt.Errorf("no captured observation sets in the selection")
	}
	if mismatches > 0 || failures > 0 {
		return fmt.Errorf("%d of %d captured epochs did not replay bit-identically (%d solve failures)",
			mismatches, replayed, failures)
	}
	fmt.Fprintf(w, "all %d captured epochs replayed bit-identically\n", replayed)
	return nil
}
