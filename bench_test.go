// Benchmarks regenerating the timing side of every table and figure in the
// paper's evaluation (Section 5), plus the ablation benches DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Mapping:
//
//	Table 5.1  -> BenchmarkTable51_DatasetGeneration
//	Fig 5.1    -> BenchmarkFig51_* (θ = ns/op ratios across solvers)
//	Fig 5.2    -> BenchmarkFig52_AccuracySweep (reports η via custom metrics)
//	Ablation A1 -> BenchmarkAblation_BaseSelection
//	Ablation A3 -> BenchmarkAblation_GLSFastPath
//	Ablation A4 -> BenchmarkAblation_DirectBaselines, BenchmarkNR_WarmVsCold
//	Design choice 1 -> BenchmarkOLS_NormalVsQR
//	Receiver stack  -> BenchmarkSubsystems (Hatch, EKF, velocity, NMEA, RAIM)
//	I/O substrate   -> BenchmarkRINEX, BenchmarkGeodesy
package gpsdl_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/lsq"
	"gpsdl/internal/mat"
	"gpsdl/internal/nmea"
	"gpsdl/internal/rinex"
	"gpsdl/internal/scenario"
	"gpsdl/internal/smoothing"
	"gpsdl/internal/tracking"
)

// benchEpoch builds one epoch with exactly m satellites at a Table 5.1
// station, plus an oracle clock predictor (no warm-up needed in benches).
func benchEpoch(b *testing.B, m int) ([]core.Observation, clock.Predictor) {
	b.Helper()
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := scenario.DefaultConfig(2009)
	cfg.ElevMaskDeg = 0 // ensure >= 10 in view
	// A jitter-free clock model: the default steering model derives its
	// jitter from a fresh PRNG per call, which would dominate the timing
	// of the direct solvers' oracle predictions.
	clk := &clock.SteeringModel{Offset: 2e-8}
	g := scenario.NewGenerator(st, cfg, scenario.WithClockModel(clk))
	epoch, err := g.EpochAt(4321)
	if err != nil {
		b.Fatal(err)
	}
	if len(epoch.Obs) < m {
		b.Fatalf("only %d satellites in view, need %d", len(epoch.Obs), m)
	}
	obs := make([]core.Observation, 0, m)
	for _, o := range epoch.Obs[:m] {
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	pred := &clock.OraclePredictor{Model: clk}
	return obs, pred
}

// BenchmarkTable51_DatasetGeneration measures epoch generation for each
// Table 5.1 station — the workload-generator side of the evaluation.
func BenchmarkTable51_DatasetGeneration(b *testing.B) {
	for _, st := range scenario.Table51Stations() {
		b.Run(st.ID, func(b *testing.B) {
			g := scenario.NewGenerator(st, scenario.DefaultConfig(2009))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.EpochAt(float64(i % 86400)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// solverBench runs one solver across the Fig 5.1 satellite counts.
func solverBench(b *testing.B, mk func(p clock.Predictor) core.Solver) {
	for m := 4; m <= 10; m++ {
		b.Run(fmt.Sprintf("sats=%d", m), func(b *testing.B) {
			obs, pred := benchEpoch(b, m)
			s := mk(pred)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(4321, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig51_NR is the τ_NR series of Fig 5.1.
func BenchmarkFig51_NR(b *testing.B) {
	solverBench(b, func(clock.Predictor) core.Solver { return &core.NRSolver{} })
}

// BenchmarkFig51_DLO is the τ_DLO series of Fig 5.1 (θ_DLO = this / NR).
func BenchmarkFig51_DLO(b *testing.B) {
	solverBench(b, func(p clock.Predictor) core.Solver { return core.NewDLOSolver(p) })
}

// BenchmarkFig51_DLG is the τ_DLG series of Fig 5.1 (θ_DLG = this / NR).
func BenchmarkFig51_DLG(b *testing.B) {
	solverBench(b, func(p clock.Predictor) core.Solver { return core.NewDLGSolver(p) })
}

// BenchmarkFig52_AccuracySweep runs the accuracy comparison of Fig 5.2 on
// a short dataset and reports η as custom metrics (errors don't depend on
// b.N; the loop re-runs the sweep to give a stable time-per-sweep figure).
func BenchmarkFig52_AccuracySweep(b *testing.B) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := scenario.DefaultConfig(2009)
	cfg.Step = 30
	g := scenario.NewGenerator(st, cfg)
	ds, err := g.GenerateRange(0, 3600)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		sweep := &eval.Sweep{Dataset: ds, SatCounts: []int{8}, InitEpochs: 30, Seed: 1, TimingReps: 1}
		res, err = sweep.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res != nil && len(res.Rows) > 0 {
		b.ReportMetric(res.Rows[0].AccuracyRateDLO(), "etaDLO_%")
		b.ReportMetric(res.Rows[0].AccuracyRateDLG(), "etaDLG_%")
		b.ReportMetric(res.Rows[0].NR.MeanError, "dNR_m")
	}
}

// BenchmarkAblation_GLSFastPath compares the three DLG covariance
// implementations (A3 / Section 6 extension 3) at m = 10.
func BenchmarkAblation_GLSFastPath(b *testing.B) {
	variants := []core.DLGVariant{core.VariantPaper, core.VariantFast, core.VariantExplicit}
	for _, v := range variants {
		b.Run(v.String(), func(b *testing.B) {
			obs, pred := benchEpoch(b, 10)
			s := &core.DLGSolver{Predictor: pred, Variant: v}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(4321, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_BaseSelection times DLO under each base-selection
// strategy (A1 / Section 6 extension 1); the accuracy side is in
// cmd/gpsbench -ablation base.
func BenchmarkAblation_BaseSelection(b *testing.B) {
	selectors := []struct {
		name string
		sel  core.BaseSelector
	}{
		{"first", core.BaseFirst{}},
		{"random", core.NewBaseRandom(1)},
		{"highest-elevation", core.BaseHighestElevation{}},
		{"nearest", core.BaseNearest{}},
	}
	for _, tt := range selectors {
		b.Run(tt.name, func(b *testing.B) {
			obs, pred := benchEpoch(b, 8)
			s := &core.DLOSolver{Predictor: pred, Base: tt.sel}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(4321, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DirectBaselines times Bancroft next to the paper's
// algorithms (A4).
func BenchmarkAblation_DirectBaselines(b *testing.B) {
	obs, pred := benchEpoch(b, 8)
	arms := []core.Solver{
		&core.NRSolver{},
		core.BancroftSolver{},
		core.NewDLOSolver(pred),
		core.NewDLGSolver(pred),
	}
	for _, s := range arms {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(4321, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNR_WarmVsCold shows the warm-start effect on the NR baseline
// (A4: tracking receivers warm-start; the paper's cold (0,0,0,0) start is
// the worst case).
func BenchmarkNR_WarmVsCold(b *testing.B) {
	obs, _ := benchEpoch(b, 8)
	st, _ := scenario.StationByID("YYR1")
	b.Run("cold", func(b *testing.B) {
		s := &core.NRSolver{}
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(4321, obs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := &core.NRSolver{InitialGuess: &core.Solution{Pos: st.Pos}}
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(4321, obs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOLS_NormalVsQR is design choice 1 of DESIGN.md: normal
// equations vs Householder QR for the over-determined least squares.
func BenchmarkOLS_NormalVsQR(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := mat.NewDense(10, 4)
	rhs := make([]float64, 10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		rhs[i] = rng.NormFloat64()
	}
	b.Run("normal-equations", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lsq.OLS(a, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("householder-qr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lsq.OLSQR(a, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGeodesy covers the coordinate substrate's hot paths.
func BenchmarkGeodesy(b *testing.B) {
	p := geo.ECEF{X: 1885341.558, Y: -3321428.098, Z: 5091171.168}
	sat := geo.ECEF{X: 1.5e7, Y: -1.2e7, Z: 1.9e7}
	b.Run("ECEFToLLA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = p.ToLLA()
		}
	})
	b.Run("ElevationAzimuth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = geo.ElevationAzimuth(p, sat)
		}
	})
}

// BenchmarkSubsystems covers the per-epoch cost of the receiver-stack
// layers that run alongside the positioning algorithms.
func BenchmarkSubsystems(b *testing.B) {
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		b.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(2009))
	epoch, err := g.EpochAt(4321)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("HatchSmooth", func(b *testing.B) {
		h := smoothing.NewHatch(100)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = h.Smooth(epoch)
		}
	})
	b.Run("EKFStep", func(b *testing.B) {
		f := tracking.NewFilter(tracking.Config{})
		var nr core.NRSolver
		obs := make([]core.Observation, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange})
		}
		sol, err := nr.Solve(epoch.T, obs)
		if err != nil {
			b.Fatal(err)
		}
		f.Init(sol, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Step(float64(i+1), obs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("VelocitySolve", func(b *testing.B) {
		vel := make([]core.VelObservation, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			vel = append(vel, core.VelObservation{Pos: o.Pos, Vel: o.Vel, RangeRate: o.Doppler})
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveVelocity(st.Pos, vel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NMEARender", func(b *testing.B) {
		fix := nmea.Fix{TimeOfDay: 3723.5, Pos: st.Pos.ToLLA(), Quality: nmea.QualityGPS, NumSats: 9, HDOP: 1.2}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = nmea.GGA(fix)
		}
	})
	b.Run("RAIMCheck", func(b *testing.B) {
		obs := make([]core.Observation, 0, 8)
		for _, o := range epoch.Obs[:8] {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
		}
		r := &core.RAIM{Solver: &core.NRSolver{}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Check(epoch.T, obs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRINEX covers the I/O substrate.
func BenchmarkRINEX(b *testing.B) {
	st, _ := scenario.StationByID("SRZN")
	g := scenario.NewGenerator(st, scenario.DefaultConfig(2009))
	ds, err := g.GenerateRange(0, 10)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rinex.WriteObs(&buf, ds); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run("WriteObs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := rinex.WriteObs(&w, ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ReadObs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rinex.ReadObs(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
