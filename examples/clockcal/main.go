// Clock calibration: the paper's Section 4.2/5.2.2 machinery in isolation.
// Shows the two receiver-clock disciplines of Table 5.1 (steering and
// threshold), the linear predictor ε̂ᴿ = c(D + r·tₑ) tracking them from
// noisy NR-style fixes, reset detection on the threshold clock, and the
// Kalman-filter extension (Section 6) side by side.
//
//	go run ./examples/clockcal
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"gpsdl/internal/clock"
	"gpsdl/internal/geo"
)

// fixNoise is the quality of an NR-derived clock fix (~15 ns ≈ 4.5 m).
const fixNoise = 15e-9

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clockcal:", err)
		os.Exit(1)
	}
}

func run() error {
	steering := &clock.SteeringModel{
		Offset:    30e-9,
		Amplitude: 4e-9,
		Period:    7200,
		Jitter:    1e-9,
	}
	threshold := &clock.ThresholdModel{
		Offset:    2e-5,
		Drift:     1e-7, // 0.1 ppm quartz
		Threshold: 1e-3, // 1 ms receiver slew
	}

	fmt.Println("=== steering clock (CORS discipline: bias held near a constant) ===")
	if err := track("steering", steering, newSteeringPredictors()); err != nil {
		return err
	}
	fmt.Println("\n=== threshold clock (free-running quartz, 1 ms reset slews) ===")
	resets := threshold.ResetTimes(0, 86400)
	fmt.Printf("truth resets over 24 h: %d (every %.0f s)\n", len(resets), 1e-3/1e-7)
	return track("threshold", threshold, newThresholdPredictors())
}

type arm struct {
	name string
	p    clock.Predictor
}

func newSteeringPredictors() []arm {
	lin := clock.NewLinearPredictor(60, 0)
	lin.DriftFloor = 1e-9
	lin.Refit = true
	lin.OutlierTol = 1e-6
	return []arm{
		{"linear (paper 4-3)", lin},
		{"kalman [12][33]", clock.NewKalmanPredictor(0)},
	}
}

func newThresholdPredictors() []arm {
	lin := clock.NewLinearPredictor(60, 1e-4)
	lin.Refit = true
	lin.RoundJumpTo = 1e-3
	lin.OutlierTol = 1e-6
	return []arm{
		{"linear (paper 4-3)", lin},
		{"kalman [12][33]", clock.NewKalmanPredictor(1e-4)},
	}
}

// track feeds a day of noisy fixes to each predictor and reports the
// range-domain prediction error it would inject into DLO/DLG.
func track(label string, model clock.Model, arms []arm) error {
	rng := rand.New(rand.NewSource(3))
	type acc struct {
		sum, worst float64
		n          int
	}
	accs := make([]acc, len(arms))
	const stepSec = 10.0
	for i := 0; i <= int(86400/stepSec); i++ {
		t := float64(i) * stepSec
		fix := clock.Fix{T: t, Bias: model.BiasAt(t) + fixNoise*rng.NormFloat64()}
		for j, a := range arms {
			a.p.Observe(fix)
			// Evaluate prediction at the *next* epoch (what DLO/DLG use).
			pt := t + stepSec/2
			got, err := a.p.PredictBias(pt)
			if err != nil {
				continue // warming up
			}
			e := math.Abs(got-model.BiasAt(pt)) * geo.SpeedOfLight
			accs[j].sum += e
			accs[j].n++
			if e > accs[j].worst {
				accs[j].worst = e
			}
		}
	}
	for j, a := range arms {
		if accs[j].n == 0 {
			return fmt.Errorf("%s/%s produced no predictions", label, a.name)
		}
		fmt.Printf("  %-20s mean range error %7.3f m, worst %8.3f m over 24 h\n",
			a.name, accs[j].sum/float64(accs[j].n), accs[j].worst)
		if lp, ok := a.p.(*clock.LinearPredictor); ok {
			d, r, err := lp.Coefficients()
			if err == nil {
				fmt.Printf("  %-20s fitted D = %.3g s, r = %.3g s/s, resets detected: %d\n",
					"", d, r, lp.Recalibrations)
			}
		}
	}
	return nil
}
