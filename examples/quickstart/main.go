// Quickstart: generate one epoch of GPS observations at a Table 5.1
// station and position the receiver with all four algorithms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Pick a station from the paper's Table 5.1 and build a generator.
	station, err := scenario.StationByID("YYR1")
	if err != nil {
		return err
	}
	gen := scenario.NewGenerator(station, scenario.DefaultConfig(42))
	fmt.Printf("station %s at %v (%s clock)\n\n", station.ID, station.Pos, station.Clock)

	// 2. Calibrate the clock predictor from NR fixes over the first
	//    minute (Section 5.2.2 of the paper).
	pred := eval.DefaultPredictor(station.Clock)
	var nr core.NRSolver
	for t := 0.0; t < 60; t++ {
		epoch, err := gen.EpochAt(t)
		if err != nil {
			return err
		}
		sol, err := nr.Solve(t, adapt(epoch))
		if err != nil {
			return err
		}
		pred.Observe(clock.Fix{T: t, Bias: sol.ClockBias / geo.SpeedOfLight})
	}

	// 3. Solve a half-minute of epochs with each algorithm and compare
	//    average accuracy (single epochs vary a lot: satellite-coherent
	//    atmospheric biases make some epochs 3-5x worse than the mean).
	solvers := []core.Solver{
		&core.NRSolver{},        // the classic iterative baseline
		core.NewDLOSolver(pred), // direct linearization + OLS
		core.NewDLGSolver(pred), // direct linearization + GLS
		core.BancroftSolver{},   // classic algebraic direct method
	}
	const (
		start  = 120.0
		epochs = 30
	)
	sums := make([]float64, len(solvers))
	iters := make([]int, len(solvers))
	var obs []core.Observation
	for i := 0; i < epochs; i++ {
		t := start + float64(i)
		epoch, err := gen.EpochAt(t)
		if err != nil {
			return err
		}
		obs = adapt(epoch)
		for j, s := range solvers {
			sol, err := s.Solve(t, obs)
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name(), err)
			}
			sums[j] += sol.Pos.DistanceTo(station.Pos)
			iters[j] += sol.Iterations
		}
	}
	fmt.Printf("%d satellites in view; mean over %d epochs:\n\n", len(obs), epochs)
	fmt.Printf("%-10s %-14s %s\n", "solver", "mean err (m)", "mean iterations")
	for j, s := range solvers {
		fmt.Printf("%-10s %-14.3f %.1f\n",
			s.Name(), sums[j]/epochs, float64(iters[j])/epochs)
	}

	// 4. Geometry quality of the epoch.
	sats := make([]geo.ECEF, len(obs))
	for i, o := range obs {
		sats[i] = o.Pos
	}
	dop, err := core.ComputeDOP(station.Pos, sats)
	if err != nil {
		return err
	}
	fmt.Printf("\ngeometry: GDOP %.2f, PDOP %.2f, HDOP %.2f, VDOP %.2f\n",
		dop.GDOP, dop.PDOP, dop.HDOP, dop.VDOP)

	// 5. What a receiver would report as its own accuracy: the post-fit
	//    residual scatter scaled by the geometry.
	var nrAgain core.NRSolver
	sol, err := nrAgain.Solve(start+epochs-1, obs)
	if err != nil {
		return err
	}
	est, err := core.EstimateAccuracy(sol, obs)
	if err != nil {
		return err
	}
	fmt.Printf("formal accuracy (last NR fix): sigma %.2f m, horizontal %.2f m, vertical %.2f m\n",
		est.SigmaUERE, est.Horizontal, est.Vertical)
	return nil
}

// adapt converts scenario observations to solver inputs.
func adapt(e scenario.Epoch) []core.Observation {
	obs := make([]core.Observation, 0, len(e.Obs))
	for _, o := range e.Obs {
		obs = append(obs, core.Observation{
			Pos:         o.Pos,
			Pseudorange: o.Pseudorange,
			Elevation:   o.Elevation,
		})
	}
	return obs
}
