// Station survey: process hours of observations at a CORS-style static
// station — the paper's evaluation workload — and watch the surveyed
// (time-averaged) position converge toward the published coordinates.
//
//	go run ./examples/stationsurvey                # YYR1, 2 hours
//	go run ./examples/stationsurvey -station KYCP -hours 6
package main

import (
	"flag"
	"fmt"
	"os"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stationsurvey:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		stationID = flag.String("station", "YYR1", "Table 5.1 station ID")
		hours     = flag.Float64("hours", 2, "survey length in hours")
		step      = flag.Float64("step", 5, "epoch spacing in seconds")
	)
	flag.Parse()
	station, err := scenario.StationByID(*stationID)
	if err != nil {
		return err
	}
	cfg := scenario.DefaultConfig(7)
	cfg.Step = *step
	gen := scenario.NewGenerator(station, cfg)
	fmt.Printf("surveying %s (%s clock) for %.1f h at %.0f s epochs\n\n",
		station.ID, station.Clock, *hours, *step)

	pred := eval.DefaultPredictor(station.Clock)
	var nr core.NRSolver
	dlg := core.NewDLGSolver(pred)

	var (
		sum        geo.ECEF
		fixes      int
		sumErr     float64
		worst      float64
		printEvery = int(1800 / *step) // progress twice an hour
	)
	end := *hours * 3600
	i := 0
	for t := 0.0; t < end; t += *step {
		epoch, err := gen.EpochAt(t)
		if err != nil {
			return err
		}
		obs := make([]core.Observation, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
		}
		// NR maintains the clock predictor (Section 5.2.2 protocol)...
		nrSol, err := nr.Solve(t, obs)
		if err == nil {
			pred.Observe(clock.Fix{T: t, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}
		// ...and DLG produces the survey fixes.
		sol, err := dlg.Solve(t, obs)
		if err != nil {
			continue // predictor warming up
		}
		d := sol.Pos.DistanceTo(station.Pos)
		sum = sum.Add(sol.Pos)
		fixes++
		sumErr += d
		if d > worst {
			worst = d
		}
		if i++; i%printEvery == 0 {
			avg := sum.Scale(1 / float64(fixes))
			fmt.Printf("t=%5.0f min: %6d fixes, mean epoch error %6.2f m, surveyed position off by %6.3f m\n",
				t/60, fixes, sumErr/float64(fixes), avg.DistanceTo(station.Pos))
		}
	}
	if fixes == 0 {
		return fmt.Errorf("no fixes produced")
	}
	avg := sum.Scale(1 / float64(fixes))
	enu := geo.ToENU(station.Pos, avg)
	fmt.Printf("\nfinal survey over %d fixes:\n", fixes)
	fmt.Printf("  mean per-epoch error  %8.3f m (worst %.3f m)\n", sumErr/float64(fixes), worst)
	fmt.Printf("  surveyed position     %8.3f m from published coordinates\n", avg.DistanceTo(station.Pos))
	fmt.Printf("  offset ENU            (%.3f, %.3f, %.3f) m\n", enu.E, enu.N, enu.U)
	lat, lon := avg.ToLLA().Degrees()
	fmt.Printf("  geodetic              %.6f°, %.6f°, %.1f m\n", lat, lon, avg.ToLLA().Alt)
	return nil
}
