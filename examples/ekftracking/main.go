// EKF tracking: the production architecture for the paper's high-speed
// scenario. A snapshot solver (DLG — the paper's fast fix) initializes an
// 8-state pseudo-range EKF, which then fuses every epoch at a fraction of
// the error of per-epoch snapshots, estimates velocity, and coasts
// through a complete signal outage.
//
//	go run ./examples/ekftracking
package main

import (
	"fmt"
	"math"
	"os"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
	"gpsdl/internal/tracking"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ekftracking:", err)
		os.Exit(1)
	}
}

func run() error {
	station, err := scenario.StationByID("KYCP")
	if err != nil {
		return err
	}
	const speed = 60.0 // m/s — high-speed rail
	traj := scenario.CircularTrajectory(station.Pos, 20000, speed)
	gen := scenario.NewGenerator(station, scenario.DefaultConfig(5), scenario.WithTrajectory(traj))
	fmt.Printf("receiver at %.0f m/s on a 20 km circle near %s (%s clock)\n\n",
		speed, station.ID, station.Clock)

	// Snapshot pipeline: DLG with the paper's clock predictor.
	pred := eval.DefaultPredictor(station.Clock)
	var nr core.NRSolver
	dlg := core.NewDLGSolver(pred)

	// Tracking pipeline: EKF initialized from the first NR fix.
	filter := tracking.NewFilter(tracking.Config{AccelSigma: 1})

	var (
		initialized     bool
		sumSnap, sumEKF float64
		speedErrSum     float64
		n               int
	)
	const duration = 600
	for t := 0.0; t < duration; t++ {
		epoch, err := gen.EpochAt(t)
		if err != nil {
			return err
		}
		obs := make([]core.Observation, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
		}
		nrSol, err := nr.Solve(t, obs)
		if err != nil {
			continue
		}
		pred.Observe(clock.Fix{T: t, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		if !initialized {
			filter.Init(nrSol, t)
			initialized = true
			continue
		}

		// Simulate a 15-second tunnel at t in [300, 315): no measurements.
		var st tracking.State
		if t >= 300 && t < 315 {
			if err := filter.Predict(t); err != nil {
				return err
			}
			st, err = filter.State()
		} else {
			st, err = filter.Step(t, obs)
		}
		if err != nil {
			return err
		}
		truth := gen.TruthPosition(t)
		if t == 310 {
			fmt.Printf("t=%3.0f s  (in tunnel, coasting)   EKF error %6.2f m\n",
				t, st.Pos.DistanceTo(truth))
		}
		if t < 60 || (t >= 300 && t < 330) {
			continue // skip convergence and tunnel windows in the stats
		}
		snapSol, err := dlg.Solve(t, obs)
		if err != nil {
			continue
		}
		sumSnap += snapSol.Pos.DistanceTo(truth)
		sumEKF += st.Pos.DistanceTo(truth)
		speedErrSum += math.Abs(st.Vel.Norm() - speed)
		n++
	}
	if n == 0 {
		return fmt.Errorf("no fixes")
	}
	fmt.Printf("\nover %d epochs (excluding warm-up and tunnel):\n", n)
	fmt.Printf("  snapshot DLG mean error  %6.2f m\n", sumSnap/float64(n))
	fmt.Printf("  EKF track mean error     %6.2f m\n", sumEKF/float64(n))
	fmt.Printf("  EKF speed error          %6.2f m/s (true %.0f m/s)\n", speedErrSum/float64(n), speed)
	return nil
}
