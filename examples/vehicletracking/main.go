// Vehicle tracking: the paper's motivating scenario — "in many application
// systems, the object to be positioned may move at a high speed. It is
// then necessary to reduce the computation time overhead in order to
// provide real-time response" (Section 1).
//
// A receiver circles a track at aircraft speed while NR and DLG position
// it each epoch; the example reports both tracking accuracy and the
// per-fix latency that determines how stale each fix is at speed.
//
//	go run ./examples/vehicletracking
//	go run ./examples/vehicletracking -speed 300 -radius 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vehicletracking:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		speed    = flag.Float64("speed", 250, "vehicle speed in m/s")
		radius   = flag.Float64("radius", 10000, "track radius in meters")
		duration = flag.Float64("duration", 600, "tracking time in seconds")
	)
	flag.Parse()
	station, err := scenario.StationByID("SRZN")
	if err != nil {
		return err
	}
	traj := scenario.CircularTrajectory(station.Pos, *radius, *speed)
	gen := scenario.NewGenerator(station, scenario.DefaultConfig(11), scenario.WithTrajectory(traj))
	fmt.Printf("vehicle on a %.1f km circle at %.0f m/s near %s\n\n", *radius/1000, *speed, station.ID)

	pred := eval.DefaultPredictor(station.Clock)
	var nr core.NRSolver
	dlg := core.NewDLGSolver(pred)

	type trackStats struct {
		sumErr, sumNanos float64
		fixes            int
	}
	var nrStats, dlgStats trackStats
	for t := 0.0; t < *duration; t++ {
		epoch, err := gen.EpochAt(t)
		if err != nil {
			return err
		}
		obs := make([]core.Observation, 0, len(epoch.Obs))
		for _, o := range epoch.Obs {
			obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
		}
		truth := gen.TruthPosition(t)

		start := time.Now()
		nrSol, nrErr := nr.Solve(t, obs)
		nrNanos := float64(time.Since(start).Nanoseconds())
		if nrErr == nil {
			nrStats.sumErr += nrSol.Pos.DistanceTo(truth)
			nrStats.sumNanos += nrNanos
			nrStats.fixes++
			pred.Observe(clock.Fix{T: t, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}

		start = time.Now()
		dlgSol, dlgErr := dlg.Solve(t, obs)
		dlgNanos := float64(time.Since(start).Nanoseconds())
		if dlgErr == nil {
			dlgStats.sumErr += dlgSol.Pos.DistanceTo(truth)
			dlgStats.sumNanos += dlgNanos
			dlgStats.fixes++
		}
	}
	if nrStats.fixes == 0 || dlgStats.fixes == 0 {
		return fmt.Errorf("no fixes produced (NR %d, DLG %d)", nrStats.fixes, dlgStats.fixes)
	}
	report := func(name string, s trackStats) {
		meanNanos := s.sumNanos / float64(s.fixes)
		// At v m/s, a fix computed in τ ns describes a position that is
		// v·τ meters stale by the time it is available.
		staleness := *speed * meanNanos * 1e-9
		fmt.Printf("%-4s %6d fixes  mean error %6.2f m  mean latency %7.0f ns  motion staleness %.2g mm\n",
			name, s.fixes, s.sumErr/float64(s.fixes), meanNanos, staleness*1000)
	}
	report("NR", nrStats)
	report("DLG", dlgStats)
	fmt.Println("(DLG produces no fixes during its ~60 s clock-predictor calibration window.)")
	fmt.Printf("\nDLG delivers each fix in %.0f%% of NR's time — the paper's headline claim,\n",
		100*dlgStats.sumNanos/nrStats.sumNanos)
	fmt.Println("which compounds when a tracking loop re-solves at high rate or on slow hardware.")
	return nil
}
