// Urban canyon: buildings occlude whole azimuth sectors, often leaving
// fewer than the 4 satellites every standard algorithm needs. This
// example drives a day of street-canyon epochs and shows how coverage
// recovers when a well-calibrated clock predictor unlocks 3-satellite
// fixes (paper §2, ref [30]: "GPS navigation using three satellites and a
// precise clock").
//
//	go run ./examples/urbancanyon
package main

import (
	"fmt"
	"math"
	"os"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "urbancanyon:", err)
		os.Exit(1)
	}
}

func run() error {
	station, err := scenario.StationByID("SRZN")
	if err != nil {
		return err
	}
	// A north-south street: ±25° openings along the axis, 55° roofline.
	mask := scenario.CanyonMask(0, 25*math.Pi/180, 55*math.Pi/180)
	canyon := scenario.NewGenerator(station, scenario.DefaultConfig(9),
		scenario.WithVisibility(mask))
	// The clock predictor calibrates on open-sky epochs (e.g. before the
	// vehicle enters the canyon).
	open := scenario.NewGenerator(station, scenario.DefaultConfig(9))
	pred := eval.DefaultPredictor(station.Clock)
	var nr core.NRSolver
	for t := 0.0; t < 120; t++ {
		epoch, err := open.EpochAt(t)
		if err != nil {
			return err
		}
		if sol, err := nr.Solve(t, adapt(epoch)); err == nil {
			pred.Observe(clock.Fix{T: t, Bias: sol.ClockBias / geo.SpeedOfLight})
		}
	}

	dlg := core.NewDLGSolver(pred)
	tri := &core.TriSatSolver{Predictor: pred}
	type acc struct {
		fixes int
		sum   float64
	}
	var (
		epochs, under3, exactly3 int
		dlgAcc, triAcc, bothAcc  acc
	)
	for t := 120.0; t < 86400; t += 30 {
		epoch, err := canyon.EpochAt(t)
		if err != nil {
			return err
		}
		epochs++
		n := len(epoch.Obs)
		if n < 3 {
			under3++
			continue
		}
		obs := adapt(epoch)
		if n >= 4 {
			if sol, err := dlg.Solve(t, obs); err == nil {
				dlgAcc.fixes++
				dlgAcc.sum += sol.Pos.DistanceTo(station.Pos)
			}
		} else {
			exactly3++
		}
		// TriSat runs whenever >= 3 are visible.
		if sol, err := tri.Solve(t, obs); err == nil {
			triAcc.fixes++
			triAcc.sum += sol.Pos.DistanceTo(station.Pos)
			if n >= 3 {
				bothAcc.fixes++
				bothAcc.sum += sol.Pos.DistanceTo(station.Pos)
			}
		}
	}
	fmt.Printf("street canyon, %d epochs over 24 h:\n", epochs)
	fmt.Printf("  epochs with <3 satellites        %5d (no fix possible)\n", under3)
	fmt.Printf("  epochs with exactly 3            %5d (4-sat algorithms blind)\n", exactly3)
	fmt.Printf("  DLG fixes (needs >= 4)           %5d, mean error %6.1f m\n",
		dlgAcc.fixes, mean(dlgAcc))
	fmt.Printf("  TriSat fixes (needs 3 + clock)   %5d, mean error %6.1f m\n",
		triAcc.fixes, mean(triAcc))
	gain := float64(triAcc.fixes-dlgAcc.fixes) / float64(epochs) * 100
	fmt.Printf("\nclock-aided 3-satellite positioning recovers %.0f%% more epochs;\n", gain)
	fmt.Println("accuracy is worse (weak geometry), but a degraded fix beats none.")
	return nil
}

func mean(a struct {
	fixes int
	sum   float64
}) float64 {
	if a.fixes == 0 {
		return 0
	}
	return a.sum / float64(a.fixes)
}

func adapt(e scenario.Epoch) []core.Observation {
	obs := make([]core.Observation, 0, len(e.Obs))
	for _, o := range e.Obs {
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	return obs
}
