// Package checkpoint persists engine session state across process
// restarts. The motivating cost model is the paper's Section 4.2: DLO/DLG
// only beat Newton–Raphson while the clock model Δt̂ = D + r·tₑ (eq. 4-3)
// stays calibrated, and recalibrating costs a full NR warm-up window per
// receiver. A process restart without a checkpoint therefore forces the
// worst case the paper warns about — mass recalibration of every session
// at once. Restoring a checkpoint skips that entirely: each session
// resumes with its fitted (D, r), health state, and last fix.
//
// File format (version 1):
//
//	GPSCKPT 1 <crc32-ieee-hex> <payload-len>\n
//	<payload-len bytes of JSON>
//
// The header is ASCII so a truncated or torn file fails parsing loudly,
// and the CRC covers the payload so a flipped byte is detected rather
// than deserialized into plausible-looking garbage calibration. Writers
// use write-to-temp + fsync + rename, so a crash mid-save leaves either
// the previous complete checkpoint or none — never a partial one.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"gpsdl/internal/clock"
	"gpsdl/internal/geo"
)

// Version is the current checkpoint format version. Load rejects any
// other version: calibration state from an incompatible layout is worse
// than a cold start.
const Version = 1

// magic is the file-type tag leading every checkpoint header.
const magic = "GPSCKPT"

// ErrCorrupt reports a checkpoint that exists but cannot be trusted —
// bad magic, wrong version, short payload, or checksum mismatch. Callers
// should treat it exactly like a missing checkpoint (cold start), never
// as fatal: a stale process must not be wedged by a torn file.
var ErrCorrupt = errors.New("checkpoint: corrupt or incompatible file")

// Fix is the last good solution a session produced, kept so a restored
// session can resume coasting (and report a sane /healthz last-fix age)
// before its first post-restore solve completes.
type Fix struct {
	// T is the receiver epoch time of the fix (seconds).
	T float64 `json:"t"`
	// Pos is the solved ECEF position (meters).
	Pos geo.ECEF `json:"pos"`
	// ClockBias is the solved receiver clock range bias (meters).
	ClockBias float64 `json:"clock_bias"`
}

// Session is one receiver's persisted state.
type Session struct {
	// Receiver is the engine receiver index the state belongs to.
	Receiver int `json:"receiver"`
	// Station names the scenario station the receiver was generated
	// from. Restore refuses a checkpoint whose station doesn't match the
	// running configuration — the calibration would be for a different
	// clock model entirely.
	Station string `json:"station"`
	// State is the session health state name ("healthy", "degraded",
	// "coasting", ...) at snapshot time.
	State string `json:"state"`
	// HaveFix reports whether LastFix holds a real solution.
	HaveFix bool `json:"have_fix"`
	// LastFix is the most recent good solution.
	LastFix Fix `json:"last_fix"`
	// Epoch is the next epoch index the session expects to process.
	Epoch int `json:"epoch"`
	// Clock is the predictor calibration snapshot — the (D, r) fit of
	// eq. 4-3 plus refit sums, the state whose loss forces NR warm-up.
	Clock clock.Snapshot `json:"clock"`
}

// State is a whole-engine checkpoint. The configuration echo fields let
// Restore verify the checkpoint was produced by a compatible run.
type State struct {
	// Solver, Seed, Step, and Receivers echo the engine configuration
	// the checkpoint was taken under.
	Solver    string  `json:"solver"`
	Seed      int64   `json:"seed"`
	Step      float64 `json:"step"`
	Receivers int     `json:"receivers"`
	// Epoch is the highest epoch index covered by the checkpoint (max
	// over sessions). gpsserve resumes its epoch counter here.
	Epoch int `json:"epoch"`
	// Sessions holds one entry per receiver session.
	Sessions []Session `json:"sessions"`
}

// Filter returns a copy of st containing only the session records
// whose Receiver id is in ids, with the Receivers echo rewritten to
// len(ids) — the shape a checkpoint handoff sends to a survivor node
// that will host exactly those sessions. Ids with no record in st are
// simply absent from the result (the adopting engine cold-starts
// them); the Epoch echo is kept, since it is the cluster-wide resume
// point, not a per-session property.
func (s *State) Filter(ids []int) *State {
	want := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		want[id] = struct{}{}
	}
	out := *s
	out.Receivers = len(ids)
	out.Sessions = nil
	for i := range s.Sessions {
		if _, ok := want[s.Sessions[i].Receiver]; ok {
			out.Sessions = append(out.Sessions, s.Sessions[i])
		}
	}
	return &out
}

// Encode renders the state in checkpoint file format (header + JSON).
func Encode(s *State) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %d %08x %d\n", magic, Version, crc32.ChecksumIEEE(payload), len(payload))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// Decode parses checkpoint bytes, verifying version and checksum. Any
// mismatch returns an error wrapping ErrCorrupt.
func Decode(data []byte) (*State, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: no header line", ErrCorrupt)
	}
	var (
		gotMagic string
		version  int
		sum      uint32
		plen     int
	)
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %x %d", &gotMagic, &version, &sum, &plen); err != nil {
		return nil, fmt.Errorf("%w: malformed header: %v", ErrCorrupt, err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, gotMagic)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	payload := data[nl+1:]
	if len(payload) != plen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorrupt, len(payload), plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrCorrupt, got, sum)
	}
	var s State
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("%w: payload JSON: %v", ErrCorrupt, err)
	}
	return &s, nil
}

// Save atomically writes the state to path: encode, write to a temp file
// in the same directory, fsync, rename. Concurrent readers always see
// either the previous checkpoint or the new one, never a torn mix.
func Save(path string, s *State) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// Load reads and decodes the checkpoint at path. A missing file returns
// an error satisfying os.IsNotExist / errors.Is(err, os.ErrNotExist); a
// damaged file returns an error wrapping ErrCorrupt. Both should fall
// back to cold start.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
