package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gpsdl/internal/clock"
	"gpsdl/internal/geo"
)

func sampleState() *State {
	return &State{
		Solver:    "dlg",
		Seed:      42,
		Step:      1,
		Receivers: 2,
		Epoch:     360,
		Sessions: []Session{
			{
				Receiver: 0,
				Station:  "beijing-threshold",
				State:    "healthy",
				HaveFix:  true,
				LastFix:  Fix{T: 359, Pos: geo.ECEF{X: -2.1e6, Y: 4.4e6, Z: 4.0e6}, ClockBias: 91.4},
				Epoch:    360,
				Clock: clock.Snapshot{
					Kind: clock.KindLinear, Calibrated: true,
					D: 3.05e-7, R: 1.2e-9, LastT: 359,
					N: 360, ST: 64620, SB: 1.1e-4, STT: 1.55e7, STB: 2.2e-2,
				},
			},
			{
				Receiver: 1,
				Station:  "sydney-steering",
				State:    "coasting",
				HaveFix:  false,
				Epoch:    360,
				Clock:    clock.Snapshot{Kind: clock.KindLinear},
			},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.ckpt")
	want := sampleState()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Solver != want.Solver || got.Seed != want.Seed || got.Step != want.Step ||
		got.Receivers != want.Receivers || got.Epoch != want.Epoch {
		t.Errorf("header fields differ: got %+v", got)
	}
	if len(got.Sessions) != len(want.Sessions) {
		t.Fatalf("got %d sessions, want %d", len(got.Sessions), len(want.Sessions))
	}
	for i := range want.Sessions {
		if got.Sessions[i] != want.Sessions[i] {
			t.Errorf("session %d:\n  got  %+v\n  want %+v", i, got.Sessions[i], want.Sessions[i])
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v, want os.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("missing file reported as corrupt; callers distinguish the two in logs")
	}
}

// TestLoadFlippedByte is the acceptance criterion: a single flipped byte
// anywhere in the file must yield ErrCorrupt, not garbage calibration.
func TestLoadFlippedByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.ckpt")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in each region: magic, version/checksum digits, and a
	// spread of payload offsets.
	offsets := []int{0, 8, 10, len(data) / 2, len(data) - 1}
	for _, off := range offsets {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at offset %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}

func TestLoadTruncated(t *testing.T) {
	full, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 7, len(full) / 2, len(full) - 1} {
		if _, err := Decode(full[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	// Trailing junk after the declared payload length is also a torn
	// write, not a valid checkpoint.
	if _, err := Decode(append(append([]byte(nil), full...), "junk"...)); !errors.Is(err, ErrCorrupt) {
		t.Error("trailing junk accepted")
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	data[8] = '9' // "GPSCKPT 1 ..." → "GPSCKPT 9 ..."
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Errorf("version 9 accepted: err = %v", err)
	}
}

// TestSaveAtomicReplace verifies an existing checkpoint is replaced in
// one step: no moment where the path holds a partial file, and no temp
// files left behind.
func TestSaveAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "engine.ckpt")
	first := sampleState()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleState()
	second.Epoch = 720
	second.Sessions[0].Epoch = 720
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 720 {
		t.Errorf("loaded epoch %d, want 720", got.Epoch)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only engine.ckpt (temp files must be cleaned up)", names)
	}
}
