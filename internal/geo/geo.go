// Package geo provides WGS-84 geodesy for the GPS substrate: ECEF/geodetic
// conversions, local ENU frames, satellite elevation/azimuth, and the
// Earth-rotation (Sagnac) correction applied to signal propagation.
package geo

import (
	"fmt"
	"math"
)

// Physical and WGS-84 constants.
const (
	// SpeedOfLight is c in m/s, the value GPS uses for range conversion.
	SpeedOfLight = 299792458.0
	// SemiMajorAxis is the WGS-84 ellipsoid semi-major axis a in meters.
	SemiMajorAxis = 6378137.0
	// Flattening is the WGS-84 ellipsoid flattening f.
	Flattening = 1.0 / 298.257223563
	// EarthRotationRate is the WGS-84 value of ωe in rad/s.
	EarthRotationRate = 7.2921151467e-5
	// GM is the WGS-84 Earth gravitational constant in m³/s².
	GM = 3.986005e14
)

// Derived ellipsoid parameters.
var (
	// semiMinorAxis is b = a(1−f).
	semiMinorAxis = SemiMajorAxis * (1 - Flattening)
	// ecc2 is the first eccentricity squared e² = f(2−f).
	ecc2 = Flattening * (2 - Flattening)
	// eccPrime2 is the second eccentricity squared e'² = e²/(1−e²).
	eccPrime2 = ecc2 / (1 - ecc2)
)

// ECEF is an Earth-Centered Earth-Fixed cartesian position in meters.
type ECEF struct {
	X, Y, Z float64
}

// Add returns p+q.
func (p ECEF) Add(q ECEF) ECEF { return ECEF{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p−q.
func (p ECEF) Sub(q ECEF) ECEF { return ECEF{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns s·p.
func (p ECEF) Scale(s float64) ECEF { return ECEF{s * p.X, s * p.Y, s * p.Z} }

// Dot returns the dot product p·q.
func (p ECEF) Dot(q ECEF) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Norm returns the Euclidean length of p.
func (p ECEF) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// DistanceTo returns the Euclidean distance ‖p−q‖, the geometric range of
// paper eq. 3-1.
func (p ECEF) DistanceTo(q ECEF) float64 { return p.Sub(q).Norm() }

// String renders the position for logs.
func (p ECEF) String() string {
	return fmt.Sprintf("ECEF(%.3f, %.3f, %.3f)", p.X, p.Y, p.Z)
}

// LLA is a geodetic position: latitude and longitude in radians, height
// above the WGS-84 ellipsoid in meters.
type LLA struct {
	Lat, Lon, Alt float64
}

// Degrees returns latitude and longitude in degrees.
func (l LLA) Degrees() (latDeg, lonDeg float64) {
	return l.Lat * 180 / math.Pi, l.Lon * 180 / math.Pi
}

// FromDegrees builds an LLA from degree inputs.
func FromDegrees(latDeg, lonDeg, alt float64) LLA {
	return LLA{Lat: latDeg * math.Pi / 180, Lon: lonDeg * math.Pi / 180, Alt: alt}
}

// ToECEF converts geodetic coordinates to ECEF.
func (l LLA) ToECEF() ECEF {
	sinLat, cosLat := math.Sincos(l.Lat)
	sinLon, cosLon := math.Sincos(l.Lon)
	// Prime vertical radius of curvature.
	n := SemiMajorAxis / math.Sqrt(1-ecc2*sinLat*sinLat)
	return ECEF{
		X: (n + l.Alt) * cosLat * cosLon,
		Y: (n + l.Alt) * cosLat * sinLon,
		Z: (n*(1-ecc2) + l.Alt) * sinLat,
	}
}

// ToLLA converts an ECEF position to geodetic coordinates using Bowring's
// closed-form approximation followed by two fixed-point refinements, giving
// sub-millimeter accuracy for terrestrial and orbital altitudes.
func (p ECEF) ToLLA() LLA {
	lon := math.Atan2(p.Y, p.X)
	rho := math.Hypot(p.X, p.Y)
	if rho == 0 {
		// On the polar axis.
		lat := math.Pi / 2
		if p.Z < 0 {
			lat = -lat
		}
		return LLA{Lat: lat, Lon: 0, Alt: math.Abs(p.Z) - semiMinorAxis}
	}
	// Bowring's initial parametric latitude.
	beta := math.Atan2(p.Z*SemiMajorAxis, rho*semiMinorAxis)
	sinB, cosB := math.Sincos(beta)
	lat := math.Atan2(p.Z+eccPrime2*semiMinorAxis*sinB*sinB*sinB,
		rho-ecc2*SemiMajorAxis*cosB*cosB*cosB)
	// Two refinement passes.
	for iter := 0; iter < 2; iter++ {
		sinL, cosL := math.Sincos(lat)
		n := SemiMajorAxis / math.Sqrt(1-ecc2*sinL*sinL)
		beta = math.Atan2((1-Flattening)*sinL, cosL)
		sinB, cosB = math.Sincos(beta)
		lat = math.Atan2(p.Z+eccPrime2*semiMinorAxis*sinB*sinB*sinB,
			rho-ecc2*SemiMajorAxis*cosB*cosB*cosB)
		_ = n
	}
	sinL, cosL := math.Sincos(lat)
	n := SemiMajorAxis / math.Sqrt(1-ecc2*sinL*sinL)
	var alt float64
	if math.Abs(cosL) > 1e-10 {
		alt = rho/cosL - n
	} else {
		alt = math.Abs(p.Z)/math.Abs(sinL) - n*(1-ecc2)
	}
	return LLA{Lat: lat, Lon: lon, Alt: alt}
}

// ENU is a local East-North-Up offset in meters relative to some origin.
type ENU struct {
	E, N, U float64
}

// Norm returns the Euclidean length of the ENU vector.
func (e ENU) Norm() float64 { return math.Sqrt(e.E*e.E + e.N*e.N + e.U*e.U) }

// ToENU expresses target relative to the origin (an ECEF point) in the
// origin's local East-North-Up frame.
func ToENU(origin, target ECEF) ENU {
	f := NewENUFrame(origin)
	return f.ToENU(target)
}

// ENUFrame is the local East-North-Up frame at a fixed origin with the
// origin's geodetic rotation terms precomputed. Converting one origin's
// view of many targets (a receiver looking at a whole constellation)
// through a frame pays the iterative ECEF→LLA conversion once instead of
// once per target; the per-target arithmetic is identical to ToENU /
// ElevationAzimuth, so results are bit-identical.
type ENUFrame struct {
	origin                         ECEF
	sinLat, cosLat, sinLon, cosLon float64
}

// NewENUFrame builds the local frame at origin.
func NewENUFrame(origin ECEF) ENUFrame {
	ll := origin.ToLLA()
	f := ENUFrame{origin: origin}
	f.sinLat, f.cosLat = math.Sincos(ll.Lat)
	f.sinLon, f.cosLon = math.Sincos(ll.Lon)
	return f
}

// ToENU expresses target relative to the frame origin.
func (f *ENUFrame) ToENU(target ECEF) ENU {
	d := target.Sub(f.origin)
	return ENU{
		E: -f.sinLon*d.X + f.cosLon*d.Y,
		N: -f.sinLat*f.cosLon*d.X - f.sinLat*f.sinLon*d.Y + f.cosLat*d.Z,
		U: f.cosLat*f.cosLon*d.X + f.cosLat*f.sinLon*d.Y + f.sinLat*d.Z,
	}
}

// ElevationAzimuth returns the look angles (radians) from the frame
// origin to the target, bit-identical to the package-level function.
func (f *ENUFrame) ElevationAzimuth(target ECEF) (elev, azim float64) {
	enu := f.ToENU(target)
	horiz := math.Hypot(enu.E, enu.N)
	elev = math.Atan2(enu.U, horiz)
	azim = math.Atan2(enu.E, enu.N)
	if azim < 0 {
		azim += 2 * math.Pi
	}
	return elev, azim
}

// FromENU converts a local ENU offset at origin back to an ECEF position.
func FromENU(origin ECEF, offset ENU) ECEF {
	ll := origin.ToLLA()
	sinLat, cosLat := math.Sincos(ll.Lat)
	sinLon, cosLon := math.Sincos(ll.Lon)
	return ECEF{
		X: origin.X - sinLon*offset.E - sinLat*cosLon*offset.N + cosLat*cosLon*offset.U,
		Y: origin.Y + cosLon*offset.E - sinLat*sinLon*offset.N + cosLat*sinLon*offset.U,
		Z: origin.Z + cosLat*offset.N + sinLat*offset.U,
	}
}

// ElevationAzimuth returns the elevation and azimuth (radians) of the
// satellite as seen from the receiver. Azimuth is measured clockwise from
// north; elevation from the local horizon.
func ElevationAzimuth(receiver, satellite ECEF) (elev, azim float64) {
	enu := ToENU(receiver, satellite)
	horiz := math.Hypot(enu.E, enu.N)
	elev = math.Atan2(enu.U, horiz)
	azim = math.Atan2(enu.E, enu.N)
	if azim < 0 {
		azim += 2 * math.Pi
	}
	return elev, azim
}

// RotateEarth rotates an ECEF position about the Z axis by the Earth's
// rotation over dt seconds. This implements the Sagnac correction: a signal
// emitted at satellite position p arrives after travel time τ in a frame
// that has rotated by ωe·τ, so the emission position must be expressed in
// the reception-time frame as RotateEarth(p, τ).
func RotateEarth(p ECEF, dt float64) ECEF {
	theta := EarthRotationRate * dt
	sinT, cosT := math.Sincos(theta)
	return ECEF{
		X: cosT*p.X + sinT*p.Y,
		Y: -sinT*p.X + cosT*p.Y,
		Z: p.Z,
	}
}
