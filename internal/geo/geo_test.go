package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	posTol = 1e-6 // meters, for round-trip position checks
	angTol = 1e-9 // radians
)

func TestVectorOps(t *testing.T) {
	p := ECEF{1, 2, 3}
	q := ECEF{4, 5, 6}
	if got := p.Add(q); got != (ECEF{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (ECEF{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (ECEF{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := (ECEF{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := p.DistanceTo(q); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Errorf("DistanceTo = %v", got)
	}
}

func TestLLAToECEFKnownPoints(t *testing.T) {
	tests := []struct {
		name string
		lla  LLA
		want ECEF
		tol  float64
	}{
		{
			name: "equator prime meridian",
			lla:  FromDegrees(0, 0, 0),
			want: ECEF{SemiMajorAxis, 0, 0},
			tol:  1e-6,
		},
		{
			name: "north pole",
			lla:  FromDegrees(90, 0, 0),
			want: ECEF{0, 0, 6356752.314245},
			tol:  1e-3,
		},
		{
			name: "equator 90E",
			lla:  FromDegrees(0, 90, 0),
			want: ECEF{0, SemiMajorAxis, 0},
			tol:  1e-6,
		},
		{
			name: "equator with altitude",
			lla:  FromDegrees(0, 0, 1000),
			want: ECEF{SemiMajorAxis + 1000, 0, 0},
			tol:  1e-6,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.lla.ToECEF()
			if got.DistanceTo(tt.want) > tt.tol {
				t.Errorf("ToECEF = %v, want %v", got, tt.want)
			}
		})
	}
}

// The paper's Table 5.1 station coordinates should convert to plausible
// terrestrial geodetic positions (|lat| <= 90°, altitude within ±1 km of
// the ellipsoid for CORS ground stations).
func TestTable51StationsArePlausible(t *testing.T) {
	stations := []struct {
		id  string
		pos ECEF
	}{
		{"SRZN", ECEF{3623420.032, -5214015.434, 602359.096}},
		{"YYR1", ECEF{1885341.558, -3321428.098, 5091171.168}},
		{"FAI1", ECEF{-2304740.630, -1448716.218, 5748842.956}},
		{"KYCP", ECEF{411598.861, -5060514.896, 3847795.506}},
	}
	for _, s := range stations {
		t.Run(s.id, func(t *testing.T) {
			lla := s.pos.ToLLA()
			latDeg, lonDeg := lla.Degrees()
			if math.Abs(latDeg) > 90 || math.Abs(lonDeg) > 180 {
				t.Errorf("implausible lat/lon %v/%v", latDeg, lonDeg)
			}
			if lla.Alt < -500 || lla.Alt > 5000 {
				t.Errorf("implausible station altitude %v m", lla.Alt)
			}
			// Round trip must return the exact published coordinates.
			back := lla.ToECEF()
			if back.DistanceTo(s.pos) > posTol {
				t.Errorf("round trip error %v m", back.DistanceTo(s.pos))
			}
		})
	}
}

// Property: LLA -> ECEF -> LLA round-trips for random terrestrial points.
func TestPropLLARoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lla := LLA{
			Lat: (r.Float64() - 0.5) * math.Pi * 0.998, // avoid exact poles
			Lon: (r.Float64() - 0.5) * 2 * math.Pi,
			Alt: r.Float64()*30000 - 500,
		}
		back := lla.ToECEF().ToLLA()
		return math.Abs(back.Lat-lla.Lat) < angTol &&
			math.Abs(angleDiff(back.Lon, lla.Lon)) < angTol &&
			math.Abs(back.Alt-lla.Alt) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestECEFToLLAPolarAxis(t *testing.T) {
	north := ECEF{0, 0, 6356752.314245 + 100}
	lla := north.ToLLA()
	if math.Abs(lla.Lat-math.Pi/2) > 1e-9 {
		t.Errorf("polar lat = %v, want π/2", lla.Lat)
	}
	if math.Abs(lla.Alt-100) > 1e-3 {
		t.Errorf("polar alt = %v, want 100", lla.Alt)
	}
	south := ECEF{0, 0, -6356752.314245}
	if got := south.ToLLA().Lat; math.Abs(got+math.Pi/2) > 1e-9 {
		t.Errorf("south polar lat = %v, want -π/2", got)
	}
}

func TestENURoundTrip(t *testing.T) {
	origin := FromDegrees(40, -105, 1600).ToECEF()
	offsets := []ENU{
		{100, 0, 0},
		{0, 100, 0},
		{0, 0, 100},
		{-37.5, 1234.5, -9.25},
	}
	for _, off := range offsets {
		p := FromENU(origin, off)
		back := ToENU(origin, p)
		if math.Abs(back.E-off.E) > posTol || math.Abs(back.N-off.N) > posTol || math.Abs(back.U-off.U) > posTol {
			t.Errorf("ENU round trip %v -> %v", off, back)
		}
	}
}

func TestENUDirectionsAtEquator(t *testing.T) {
	// At (0°N, 0°E): East = +Y, North = +Z, Up = +X.
	origin := FromDegrees(0, 0, 0).ToECEF()
	east := ToENU(origin, origin.Add(ECEF{0, 1000, 0}))
	if math.Abs(east.E-1000) > 1e-6 || math.Abs(east.N) > 1e-6 {
		t.Errorf("east probe = %+v", east)
	}
	north := ToENU(origin, origin.Add(ECEF{0, 0, 1000}))
	if math.Abs(north.N-1000) > 1e-6 {
		t.Errorf("north probe = %+v", north)
	}
	up := ToENU(origin, origin.Add(ECEF{1000, 0, 0}))
	if math.Abs(up.U-1000) > 1e-6 {
		t.Errorf("up probe = %+v", up)
	}
}

func TestElevationAzimuth(t *testing.T) {
	origin := FromDegrees(45, 7, 300).ToECEF()
	tests := []struct {
		name     string
		offset   ENU
		wantElev float64
		wantAzim float64
	}{
		{"zenith", ENU{0, 0, 1000}, math.Pi / 2, 0},
		{"due north at horizon", ENU{0, 1000, 0}, 0, 0},
		{"due east at horizon", ENU{1000, 0, 0}, 0, math.Pi / 2},
		{"due south 45 up", ENU{0, -1000, 1000}, math.Pi / 4, math.Pi},
		{"due west at horizon", ENU{-1000, 0, 0}, 0, 3 * math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sat := FromENU(origin, tt.offset)
			elev, azim := ElevationAzimuth(origin, sat)
			if math.Abs(elev-tt.wantElev) > 1e-6 {
				t.Errorf("elev = %v, want %v", elev, tt.wantElev)
			}
			if tt.offset.E != 0 || tt.offset.N != 0 { // azimuth undefined at zenith
				if math.Abs(angleDiff(azim, tt.wantAzim)) > 1e-6 {
					t.Errorf("azim = %v, want %v", azim, tt.wantAzim)
				}
			}
		})
	}
}

func TestRotateEarth(t *testing.T) {
	p := ECEF{SemiMajorAxis, 0, 0}
	// Zero rotation is identity.
	if got := RotateEarth(p, 0); got != p {
		t.Errorf("RotateEarth(p, 0) = %v", got)
	}
	// Rotation preserves norm and Z.
	got := RotateEarth(ECEF{1e7, 2e7, 3e6}, 0.07)
	if math.Abs(got.Norm()-(ECEF{1e7, 2e7, 3e6}).Norm()) > 1e-6 {
		t.Error("RotateEarth changed vector norm")
	}
	if got.Z != 3e6 {
		t.Error("RotateEarth changed Z")
	}
	// For a typical GPS signal travel time (~0.07 s) the correction at
	// orbit radius is tens of meters — nonzero and bounded.
	moved := got.DistanceTo(ECEF{1e7, 2e7, 3e6})
	if moved < 10 || moved > 500 {
		t.Errorf("Sagnac displacement = %v m, want tens of meters", moved)
	}
}

// Property: RotateEarth(RotateEarth(p, dt), -dt) = p.
func TestPropRotateEarthInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := ECEF{r.NormFloat64() * 1e7, r.NormFloat64() * 1e7, r.NormFloat64() * 1e7}
		dt := r.Float64() * 10
		back := RotateEarth(RotateEarth(p, dt), -dt)
		return back.DistanceTo(p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDegreesConversions(t *testing.T) {
	lla := FromDegrees(45, -120, 10)
	lat, lon := lla.Degrees()
	if math.Abs(lat-45) > 1e-12 || math.Abs(lon+120) > 1e-12 {
		t.Errorf("Degrees = %v, %v", lat, lon)
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// Property: ENU round-trips for random origins and offsets.
func TestPropENURoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		origin := LLA{
			Lat: (r.Float64() - 0.5) * math.Pi * 0.95,
			Lon: (r.Float64() - 0.5) * 2 * math.Pi,
			Alt: r.Float64() * 3000,
		}.ToECEF()
		off := ENU{
			E: (r.Float64() - 0.5) * 2e5,
			N: (r.Float64() - 0.5) * 2e5,
			U: (r.Float64() - 0.5) * 2e4,
		}
		back := ToENU(origin, FromENU(origin, off))
		return math.Abs(back.E-off.E) < 1e-5 &&
			math.Abs(back.N-off.N) < 1e-5 &&
			math.Abs(back.U-off.U) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestENUNorm(t *testing.T) {
	if got := (ENU{3, 4, 12}).Norm(); math.Abs(got-13) > 1e-12 {
		t.Errorf("ENU norm = %v, want 13", got)
	}
}
