package tracking

import (
	"errors"
	"math"
	"testing"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

// vehicleScenario builds a generator for a receiver moving east at the
// given speed, plus noise-controlled config.
func vehicleScenario(t *testing.T, speed float64) *scenario.Generator {
	t.Helper()
	st, err := scenario.StationByID("SRZN")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(21)
	traj := scenario.LinearTrajectory(st.Pos, geo.ENU{E: speed})
	return scenario.NewGenerator(st, cfg,
		scenario.WithTrajectory(traj),
		scenario.WithClockModel(&clock.ThresholdModel{Offset: 1e-5, Drift: 1e-7, Threshold: 1e-3}))
}

func adapt(e scenario.Epoch) []core.Observation {
	obs := make([]core.Observation, 0, len(e.Obs))
	for _, o := range e.Obs {
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	return obs
}

func initFilter(t *testing.T, g *scenario.Generator, f *Filter) {
	t.Helper()
	epoch, err := g.EpochAt(0)
	if err != nil {
		t.Fatal(err)
	}
	var nr core.NRSolver
	sol, err := nr.Solve(0, adapt(epoch))
	if err != nil {
		t.Fatal(err)
	}
	f.Init(sol, 0)
}

func TestFilterLifecycle(t *testing.T) {
	f := NewFilter(Config{})
	if _, err := f.State(); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("State before Init: %v", err)
	}
	if err := f.Predict(1); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("Predict before Init: %v", err)
	}
	g := vehicleScenario(t, 0)
	initFilter(t, g, f)
	if err := f.Predict(10); err != nil {
		t.Fatal(err)
	}
	if err := f.Predict(5); !errors.Is(err, ErrTimeReversal) {
		t.Errorf("time reversal: %v", err)
	}
}

func TestFilterTracksMovingVehicle(t *testing.T) {
	const speed = 30.0 // m/s, highway vehicle
	g := vehicleScenario(t, speed)
	f := NewFilter(Config{})
	initFilter(t, g, f)
	var nr core.NRSolver
	var sumEKF, sumNR float64
	var n int
	for i := 1; i <= 300; i++ {
		tt := float64(i)
		epoch, err := g.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		obs := adapt(epoch)
		st, err := f.Step(tt, obs)
		if err != nil {
			t.Fatal(err)
		}
		truth := g.TruthPosition(tt)
		if i <= 60 {
			continue // convergence
		}
		sumEKF += st.Pos.DistanceTo(truth)
		if sol, err := nr.Solve(tt, obs); err == nil {
			sumNR += sol.Pos.DistanceTo(truth)
			n++
		}
	}
	meanEKF, meanNR := sumEKF/float64(n), sumNR/float64(n)
	t.Logf("mean error over %d epochs: EKF %.2f m, snapshot NR %.2f m", n, meanEKF, meanNR)
	// The filter must beat per-epoch snapshots by a clear margin.
	if meanEKF > meanNR*0.8 {
		t.Errorf("EKF %.2f m did not improve on NR %.2f m", meanEKF, meanNR)
	}
}

func TestFilterEstimatesVelocity(t *testing.T) {
	const speed = 50.0
	g := vehicleScenario(t, speed)
	f := NewFilter(Config{})
	initFilter(t, g, f)
	for i := 1; i <= 120; i++ {
		tt := float64(i)
		epoch, err := g.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Step(tt, adapt(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Vel.Norm(); math.Abs(got-speed) > 2 {
		t.Errorf("speed estimate %.2f m/s, want %.0f ± 2", got, speed)
	}
	// Velocity direction: east in the local frame.
	origin := g.TruthPosition(0)
	endENU := geo.ToENU(origin, g.TruthPosition(120))
	votedENU := geo.ToENU(origin, origin.Add(st.Vel))
	if endENU.E <= 0 || votedENU.E <= 0 {
		t.Errorf("velocity not eastward: truth %v, est %v", endENU, votedENU)
	}
}

func TestFilterEstimatesClock(t *testing.T) {
	g := vehicleScenario(t, 0)
	f := NewFilter(Config{})
	initFilter(t, g, f)
	for i := 1; i <= 120; i++ {
		tt := float64(i)
		epoch, err := g.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Step(tt, adapt(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	wantBias := g.ClockModel().BiasAt(120) * geo.SpeedOfLight
	if math.Abs(st.ClockBias-wantBias) > 5 {
		t.Errorf("clock bias %.2f m, want %.2f ± 5", st.ClockBias, wantBias)
	}
	wantDrift := 1e-7 * geo.SpeedOfLight // ≈30 m/s
	if math.Abs(st.ClockDrift-wantDrift) > 3 {
		t.Errorf("clock drift %.2f m/s, want %.2f ± 3", st.ClockDrift, wantDrift)
	}
}

func TestFilterCoastsThroughOutage(t *testing.T) {
	const speed = 20.0
	g := vehicleScenario(t, speed)
	f := NewFilter(Config{})
	initFilter(t, g, f)
	for i := 1; i <= 120; i++ {
		tt := float64(i)
		epoch, err := g.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Step(tt, adapt(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	// 10-second total outage: predict only.
	if err := f.Predict(130); err != nil {
		t.Fatal(err)
	}
	st, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	truth := g.TruthPosition(130)
	if d := st.Pos.DistanceTo(truth); d > 25 {
		t.Errorf("coasted error after 10 s outage: %.1f m", d)
	}
	// Recovery: resume updates, error returns to normal.
	for i := 131; i <= 160; i++ {
		tt := float64(i)
		epoch, err := g.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Step(tt, adapt(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ = f.State()
	if d := st.Pos.DistanceTo(g.TruthPosition(160)); d > 6 {
		t.Errorf("post-outage recovery error %.1f m", d)
	}
}

func TestFilterStepWithNoObservationsCoasts(t *testing.T) {
	g := vehicleScenario(t, 0)
	f := NewFilter(Config{})
	initFilter(t, g, f)
	st, err := f.Step(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.T != 5 {
		t.Errorf("state time %v", st.T)
	}
}

func TestFilterRejectsCorruptMeasurements(t *testing.T) {
	g := vehicleScenario(t, 0)
	f := NewFilter(Config{})
	initFilter(t, g, f)
	epoch, err := g.EpochAt(1)
	if err != nil {
		t.Fatal(err)
	}
	obs := adapt(epoch)
	obs[0].Pseudorange = math.NaN()
	if _, err := f.Step(1, obs); err == nil {
		t.Error("NaN measurement accepted")
	}
}

func TestUpdateDopplerAcceleratesVelocityConvergence(t *testing.T) {
	const speed = 50.0
	runFilter := func(useDoppler bool) float64 {
		g := vehicleScenario(t, speed)
		f := NewFilter(Config{})
		initFilter(t, g, f)
		for i := 1; i <= 15; i++ {
			tt := float64(i)
			epoch, err := g.EpochAt(tt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Step(tt, adapt(epoch)); err != nil {
				t.Fatal(err)
			}
			if useDoppler {
				vel := make([]core.VelObservation, 0, len(epoch.Obs))
				for _, o := range epoch.Obs {
					vel = append(vel, core.VelObservation{Pos: o.Pos, Vel: o.Vel, RangeRate: o.Doppler})
				}
				if err := f.UpdateDoppler(vel); err != nil {
					t.Fatal(err)
				}
			}
		}
		st, err := f.State()
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(st.Vel.Norm() - speed)
	}
	noDop := runFilter(false)
	withDop := runFilter(true)
	t.Logf("speed error after 15 s: without Doppler %.2f m/s, with %.2f m/s", noDop, withDop)
	if withDop > 0.5 {
		t.Errorf("Doppler-aided speed error %.2f m/s after 15 s", withDop)
	}
	if withDop >= noDop {
		t.Errorf("Doppler did not accelerate convergence: %.2f vs %.2f m/s", withDop, noDop)
	}
}

func TestUpdateDopplerRequiresInit(t *testing.T) {
	f := NewFilter(Config{})
	if err := f.UpdateDoppler([]core.VelObservation{{}}); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("error = %v", err)
	}
}

func TestUpdateDopplerEmptyIsNoop(t *testing.T) {
	g := vehicleScenario(t, 0)
	f := NewFilter(Config{})
	initFilter(t, g, f)
	if err := f.UpdateDoppler(nil); err != nil {
		t.Errorf("empty Doppler update: %v", err)
	}
}
