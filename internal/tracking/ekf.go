// Package tracking implements an extended Kalman filter over raw
// pseudo-ranges for moving receivers — the high-rate tracking loop the
// paper's introduction motivates ("the object to be positioned may move
// at a high speed"). Snapshot solvers (NR/DLO/DLG) hand the filter its
// initial state; afterwards the filter fuses each epoch's measurements
// with a constant-velocity motion model, smoothing noise and carrying the
// track through short outages.
//
// State (8): position (m), velocity (m/s), clock bias (m), clock drift
// (m/s), all in ECEF.
//
// Measurements are processed as sequential scalar updates (valid because
// the measurement noise is diagonal): no matrix factorization appears on
// the hot path and a Step performs zero heap allocations.
package tracking

import (
	"errors"
	"fmt"
	"math"

	"gpsdl/internal/core"
	"gpsdl/internal/geo"
)

// Filter errors.
var (
	// ErrNotInitialized is returned by Step before Init.
	ErrNotInitialized = errors.New("tracking: filter not initialized")
	// ErrTimeReversal is returned when Step is called with a timestamp
	// earlier than the filter's current time.
	ErrTimeReversal = errors.New("tracking: time went backwards")
)

// Config sets the filter's noise model. Zero fields take defaults suited
// to a ground/air vehicle with a quartz clock.
type Config struct {
	// AccelSigma is the white-acceleration density (m/s²) driving the
	// constant-velocity model. Default 2 (maneuvering ground vehicle).
	AccelSigma float64
	// ClockDriftSigma is the clock-drift process noise (m/s per √s).
	// Default 0.1.
	ClockDriftSigma float64
	// RangeSigma is the pseudo-range measurement noise (m). Default 3.
	RangeSigma float64
}

func (c Config) withDefaults() Config {
	if c.AccelSigma <= 0 {
		c.AccelSigma = 2
	}
	if c.ClockDriftSigma <= 0 {
		c.ClockDriftSigma = 0.1
	}
	if c.RangeSigma <= 0 {
		c.RangeSigma = 3
	}
	return c
}

// State is the filter's estimate at a point in time.
type State struct {
	Pos        geo.ECEF
	Vel        geo.ECEF
	ClockBias  float64 // meters
	ClockDrift float64 // m/s
	T          float64
}

// Filter is an 8-state pseudo-range EKF. Not safe for concurrent use.
type Filter struct {
	cfg  Config
	x    [8]float64    // x y z vx vy vz b bdot
	p    [8][8]float64 // covariance
	t    float64
	init bool
}

// NewFilter returns a filter with the given configuration.
func NewFilter(cfg Config) *Filter {
	return &Filter{cfg: cfg.withDefaults()}
}

// Init seeds the filter from a snapshot fix at time t. Velocity starts at
// zero with loose covariance; the first few updates resolve it.
func (f *Filter) Init(sol core.Solution, t float64) {
	f.x = [8]float64{sol.Pos.X, sol.Pos.Y, sol.Pos.Z, 0, 0, 0, sol.ClockBias, 0}
	f.p = [8][8]float64{}
	for i := 0; i < 3; i++ {
		f.p[i][i] = 100 // 10 m position sigma
	}
	for i := 3; i < 6; i++ {
		f.p[i][i] = 400 // 20 m/s velocity sigma
	}
	f.p[6][6] = 100
	f.p[7][7] = 25
	f.t = t
	f.init = true
}

// State returns the current estimate.
func (f *Filter) State() (State, error) {
	if !f.init {
		return State{}, ErrNotInitialized
	}
	return State{
		Pos:        geo.ECEF{X: f.x[0], Y: f.x[1], Z: f.x[2]},
		Vel:        geo.ECEF{X: f.x[3], Y: f.x[4], Z: f.x[5]},
		ClockBias:  f.x[6],
		ClockDrift: f.x[7],
		T:          f.t,
	}, nil
}

// Predict propagates the state to time t without a measurement (coasting
// through an outage).
func (f *Filter) Predict(t float64) error {
	if !f.init {
		return ErrNotInitialized
	}
	if t < f.t {
		return fmt.Errorf("tracking: predict to %v from %v: %w", t, f.t, ErrTimeReversal)
	}
	f.propagate(t - f.t)
	f.t = t
	return nil
}

// Step predicts to time t and updates with the epoch's pseudo-ranges.
// At least one observation is required; more satellites tighten the fix.
func (f *Filter) Step(t float64, obs []core.Observation) (State, error) {
	if err := f.Predict(t); err != nil {
		return State{}, err
	}
	if len(obs) == 0 {
		return f.State()
	}
	if err := f.update(obs); err != nil {
		return State{}, err
	}
	return f.State()
}

// propagate applies the constant-velocity transition and process noise.
// With F = I + dt·E (E mapping velocity→position and drift→bias), the
// covariance update F·P·Fᵀ = P + dt(EP + PEᵀ) + dt²·EPEᵀ is applied in
// closed form — E has exactly four nonzero entries.
func (f *Filter) propagate(dt float64) {
	if dt <= 0 {
		return
	}
	// State transition.
	f.x[0] += f.x[3] * dt
	f.x[1] += f.x[4] * dt
	f.x[2] += f.x[5] * dt
	f.x[6] += f.x[7] * dt
	// pairs maps each integrated state to its rate state.
	pairs := [4][2]int{{0, 3}, {1, 4}, {2, 5}, {6, 7}}
	// P += dt·(E·P): row i gains dt·row rate(i).
	var ep [8][8]float64
	for _, pr := range pairs {
		for j := 0; j < 8; j++ {
			ep[pr[0]][j] = f.p[pr[1]][j]
		}
	}
	// EPEᵀ: entry (i,j) = P[rate(i)][rate(j)] for integrated i, j.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			f.p[i][j] += dt * (ep[i][j] + ep[j][i])
		}
	}
	for _, pi := range pairs {
		for _, pj := range pairs {
			f.p[pi[0]][pj[0]] += dt * dt * f.p[pi[1]][pj[1]]
		}
	}
	// Process noise.
	qa := f.cfg.AccelSigma * f.cfg.AccelSigma
	q4 := qa * dt * dt * dt * dt / 4
	q3 := qa * dt * dt * dt / 2
	q2 := qa * dt * dt
	for i := 0; i < 3; i++ {
		f.p[i][i] += q4
		f.p[i][i+3] += q3
		f.p[i+3][i] += q3
		f.p[i+3][i+3] += q2
	}
	qc := f.cfg.ClockDriftSigma * f.cfg.ClockDriftSigma
	f.p[6][6] += qc * dt * dt * dt / 3
	f.p[6][7] += qc * dt * dt / 2
	f.p[7][6] += qc * dt * dt / 2
	f.p[7][7] += qc * dt
}

// update fuses one epoch of pseudo-ranges via sequential scalar updates.
// Each measurement is linearized at the *current* state (an iterated
// flavor that slightly improves on the batch EKF for this mildly
// nonlinear problem).
func (f *Filter) update(obs []core.Observation) error {
	r2 := f.cfg.RangeSigma * f.cfg.RangeSigma
	for i, o := range obs {
		pos := geo.ECEF{X: f.x[0], Y: f.x[1], Z: f.x[2]}
		d := pos.Sub(o.Pos)
		r := d.Norm()
		if r == 0 {
			return fmt.Errorf("tracking: satellite %d coincides with state: %w", i, core.ErrDegenerateGeometry)
		}
		var h [8]float64
		h[0], h[1], h[2] = d.X/r, d.Y/r, d.Z/r
		h[6] = 1
		innov := o.Pseudorange - (r + f.x[6])
		if math.IsNaN(innov) || math.IsInf(innov, 0) {
			return fmt.Errorf("tracking: non-finite innovation for satellite %d: %w", i, core.ErrBadObservation)
		}
		f.scalarUpdate(&h, innov, r2)
	}
	return nil
}

// UpdateDoppler fuses range-rate measurements: per satellite with unit
// line-of-sight u (receiver→satellite),
//
//	rate = u·(vˢ − v) + ḃ
//
// so the measurement rows touch the velocity and clock-drift states. Call
// after Step (or Predict) for the same epoch; Doppler pins velocity far
// faster than differenced positions can.
func (f *Filter) UpdateDoppler(obs []core.VelObservation) error {
	if !f.init {
		return ErrNotInitialized
	}
	for i, o := range obs {
		pos := geo.ECEF{X: f.x[0], Y: f.x[1], Z: f.x[2]}
		vel := geo.ECEF{X: f.x[3], Y: f.x[4], Z: f.x[5]}
		los := o.Pos.Sub(pos)
		r := los.Norm()
		if r == 0 {
			return fmt.Errorf("tracking: Doppler satellite %d at state: %w", i, core.ErrDegenerateGeometry)
		}
		u := los.Scale(1 / r)
		var h [8]float64
		h[3], h[4], h[5] = -u.X, -u.Y, -u.Z
		h[7] = 1
		innov := o.RangeRate - (u.Dot(o.Vel.Sub(vel)) + f.x[7])
		if math.IsNaN(innov) || math.IsInf(innov, 0) {
			return fmt.Errorf("tracking: non-finite Doppler innovation %d: %w", i, core.ErrBadObservation)
		}
		f.scalarUpdate(&h, innov, dopplerSigma*dopplerSigma)
	}
	return nil
}

// dopplerSigma is the range-rate measurement noise (m/s).
const dopplerSigma = 0.1

// scalarUpdate applies one scalar Kalman update with measurement row h,
// innovation innov and measurement variance r2, using the Joseph form
// plus symmetrization for numerical robustness. Allocation-free.
func (f *Filter) scalarUpdate(h *[8]float64, innov, r2 float64) {
	// ph = P·hᵀ; s = h·P·hᵀ + r².
	var ph [8]float64
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 8; j++ {
			sum += f.p[i][j] * h[j]
		}
		ph[i] = sum
	}
	s := r2
	for j := 0; j < 8; j++ {
		s += h[j] * ph[j]
	}
	if s <= 0 {
		return // numerically collapsed; skip rather than divide by zero
	}
	var k [8]float64
	for i := 0; i < 8; i++ {
		k[i] = ph[i] / s
	}
	for i := 0; i < 8; i++ {
		f.x[i] += k[i] * innov
	}
	// Joseph form: P ← (I−khᵀ)P(I−khᵀ)ᵀ + r²·kkᵀ.
	// A = (I−khᵀ)P computed as P − k·(hᵀP); hᵀP = phᵀ (P symmetric).
	var a [8][8]float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			a[i][j] = f.p[i][j] - k[i]*ph[j]
		}
	}
	// P = A(I−khᵀ)ᵀ + r²kkᵀ = A − (A·h)·kᵀ + r²kkᵀ.
	var ah [8]float64
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 8; j++ {
			sum += a[i][j] * h[j]
		}
		ah[i] = sum
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			f.p[i][j] = a[i][j] - ah[i]*k[j] + r2*k[i]*k[j]
		}
	}
	// Symmetrize against drift.
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			v := 0.5 * (f.p[i][j] + f.p[j][i])
			f.p[i][j] = v
			f.p[j][i] = v
		}
	}
}
