package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gpsdl/internal/fault"
	"gpsdl/internal/scenario"
)

// collectNMEA runs the engine and returns each receiver's NMEA output
// (GGA+RMC per epoch) plus the set of solver names that produced fixes.
func collectNMEA(t *testing.T, cfg Config, epochs int) ([][]string, map[string]int) {
	t.Helper()
	out := make([][]string, cfg.Receivers)
	solvers := map[string]int{}
	var mu sync.Mutex
	cfg.Sink = func(e FixEvent) {
		mu.Lock()
		defer mu.Unlock()
		out[e.Receiver] = append(out[e.Receiver], string(e.GGA)+string(e.RMC))
		if e.Err == nil && !e.Coast {
			solvers[e.Solver]++
		}
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	return out, solvers
}

// TestEngineDefaultFlipNMEAIdentical is the flip acceptance test: with
// weighting off (the default), the engine's NMEA output is byte-identical
// whether the primary DLG runs the new default Sherman–Morrison fast
// path, the paper's dense Cholesky, or the explicit eq. 4-21 reference —
// the routes agree far below NMEA's coordinate quantization.
func TestEngineDefaultFlipNMEAIdentical(t *testing.T) {
	const receivers, epochs = 3, 60
	base := Config{Receivers: receivers, Workers: 2, Seed: 11}
	ref, refSolvers := collectNMEA(t, base, epochs)
	if refSolvers["DLG-fast"] == 0 {
		t.Fatalf("default engine did not use the fast DLG path: %v", refSolvers)
	}
	for _, variant := range []string{"paper", "explicit"} {
		cfg := base
		cfg.DLGVariant = variant
		got, gotSolvers := collectNMEA(t, cfg, epochs)
		if variant == "paper" && gotSolvers["DLG"] == 0 {
			t.Fatalf("paper arm did not use the paper DLG path: %v", gotSolvers)
		}
		for r := 0; r < receivers; r++ {
			if len(got[r]) != len(ref[r]) {
				t.Fatalf("variant %s receiver %d: %d epochs, want %d", variant, r, len(got[r]), len(ref[r]))
			}
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("variant %s receiver %d epoch %d: NMEA differs\n  fast:  %q\n  %s: %q",
						variant, r, i, ref[r][i], variant, got[r][i])
				}
			}
		}
	}
}

// positionErrors runs the engine under cfg and returns each fix's 3-D
// position error against the receiver's station truth for epochs in
// [from, until), plus how many of those epochs were flagged (degraded,
// suspect, or coasting).
func positionErrors(t *testing.T, cfg Config, epochs int, from, until float64) (errs []float64, flagged int) {
	t.Helper()
	stations := scenario.Table51Stations()
	var mu sync.Mutex
	cfg.Sink = func(e FixEvent) {
		if e.T < from || e.T >= until || e.Err != nil || e.Coast {
			if e.T >= from && e.T < until && (e.Err != nil || e.Coast) {
				mu.Lock()
				flagged++
				mu.Unlock()
			}
			return
		}
		truth := stations[e.Receiver%len(stations)].Pos
		mu.Lock()
		errs = append(errs, e.Sol.Pos.DistanceTo(truth))
		if e.State != StateHealthy || e.Suspect {
			flagged++
		}
		mu.Unlock()
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	return errs, flagged
}

// TestEngineDisruptionBeatsExclusionUnderSpoof drives the engine through
// a two-satellite coherent spoof — the case single-satellite RAIM
// exclusion cannot resolve — and checks that C/N0 weighting plus the
// disruption detector keeps the position error well below the plain
// engine's.
func TestEngineDisruptionBeatsExclusionUnderSpoof(t *testing.T) {
	// The spoof window starts after the clock predictor's 60-epoch
	// calibration, so the primary DLG route (which needs a predicted
	// bias) is live when the attack begins.
	prog, err := fault.ParseSpec("spoof:n=2,bias=500,from=70,until=130")
	if err != nil {
		t.Fatal(err)
	}
	const receivers, epochs = 2, 150
	base := Config{Receivers: receivers, Workers: 2, Seed: 17, Faults: prog, FaultSeed: 3}

	plainErrs, _ := positionErrors(t, base, epochs, 70, 130)
	armed := base
	armed.Weighting = true
	armed.Disruption = true
	armedErrs, armedFlagged := positionErrors(t, armed, epochs, 70, 130)

	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	if len(plainErrs) == 0 || len(armedErrs) == 0 {
		t.Fatalf("no fixes in the spoof window: plain %d, armed %d", len(plainErrs), len(armedErrs))
	}
	pm, am := mean(plainErrs), mean(armedErrs)
	t.Logf("spoof-window mean position error: plain %.1f m, weighted+disruption %.1f m (%d flagged epochs)", pm, am, armedFlagged)
	if am >= pm/2 {
		t.Errorf("down-weighting did not beat the plain engine: %.1f m vs %.1f m", am, pm)
	}
	if am > 25 {
		t.Errorf("weighted+disruption error %.1f m in the spoof window, want < 25 m", am)
	}
	// The detector must surface the attack in session health, not hide it.
	if armedFlagged == 0 {
		t.Error("no epoch flagged degraded while two satellites were spoofed")
	}
}

// TestEngineWeightingDeterministic: the weighted + disruption engine
// remains bit-deterministic across worker counts and batch sizes.
func TestEngineWeightingDeterministic(t *testing.T) {
	prog, err := fault.ParseSpec("spoof:n=2,bias=400,from=20,until=60;jam:sigma=15,from=70,until=90")
	if err != nil {
		t.Fatal(err)
	}
	const receivers, epochs = 4, 100
	collect := func(workers, batch int) [][]string {
		out := make([][]string, receivers)
		eng, nerr := New(Config{
			Receivers: receivers, Workers: workers, BatchSize: batch, Seed: 23,
			Faults: prog, FaultSeed: 5,
			Weighting: true, Disruption: true,
			Sink: func(e FixEvent) {
				var sb strings.Builder
				fmt.Fprintf(&sb, "%d|%s|%s|coast=%v|suspect=%v|excl=%d", e.Epoch, e.Solver, e.State, e.Coast, e.Suspect, e.Excluded)
				if e.Err != nil {
					fmt.Fprintf(&sb, "|err:%v", e.Err)
				} else {
					fmt.Fprintf(&sb, "|%s", e.GGA)
				}
				out[e.Receiver] = append(out[e.Receiver], sb.String())
			},
		})
		if nerr != nil {
			t.Fatal(nerr)
		}
		if err := eng.Run(context.Background(), epochs); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := collect(1, 32)
	for _, alt := range []struct{ workers, batch int }{{4, 32}, {2, 7}} {
		got := collect(alt.workers, alt.batch)
		for r := 0; r < receivers; r++ {
			if len(got[r]) != len(ref[r]) {
				t.Fatalf("workers=%d batch=%d receiver %d: %d events, want %d",
					alt.workers, alt.batch, r, len(got[r]), len(ref[r]))
			}
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("workers=%d batch=%d receiver %d event %d:\n  got  %s\n  want %s",
						alt.workers, alt.batch, r, i, got[r][i], ref[r][i])
				}
			}
		}
	}
}

// TestEngineRejectsBadDLGVariant: config validation catches typos.
func TestEngineRejectsBadDLGVariant(t *testing.T) {
	_, err := New(Config{Receivers: 1, DLGVariant: "cholesky"})
	if err == nil || !strings.Contains(err.Error(), "DLG variant") {
		t.Fatalf("New accepted bad DLGVariant: %v", err)
	}
}
