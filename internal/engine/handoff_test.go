package engine

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/wire"
)

// handoffKeyframeEvery matches the test's checkpoint cadence so the
// handoff point lands on a keyframe block boundary — then the wire
// byte streams are identical from the first handed-off frame, not just
// from the next block.
const handoffKeyframeEvery = 50

// wireRecorder mirrors what the serving sink does: every FixEvent
// becomes one wire frame (via FixEvent.Wire) through a per-session
// FixEncoder, recorded alongside the NMEA bytes.
type wireRecorder struct {
	mu     sync.Mutex
	gga    map[[2]int]string
	rmc    map[[2]int]string
	frames map[[2]int][]byte
	encs   map[int]*wire.FixEncoder
}

func newWireRecorder() *wireRecorder {
	return &wireRecorder{
		gga:    make(map[[2]int]string),
		rmc:    make(map[[2]int]string),
		frames: make(map[[2]int][]byte),
		encs:   make(map[int]*wire.FixEncoder),
	}
}

func (rc *wireRecorder) sink(e FixEvent) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	k := [2]int{e.Receiver, e.Epoch}
	rc.gga[k] = string(e.GGA)
	rc.rmc[k] = string(e.RMC)
	enc := rc.encs[e.Receiver]
	if enc == nil {
		enc = &wire.FixEncoder{KeyframeEvery: handoffKeyframeEvery}
		rc.encs[e.Receiver] = enc
	}
	f := e.Wire()
	frame, _ := enc.AppendFix(nil, &f)
	rc.frames[k] = frame
}

// TestEngineHandoffDeterminism is the satellite-3 law behind cluster
// failover: node A (hosting sessions 0..3) dies at epoch `head`, its
// last periodic checkpoint is from epoch `cut`; survivor node B builds
// a SessionIDs engine over the orphans {1, 3}, restores the filtered
// checkpoint, fast-forwards cut→head, and serves on. Sessions 1 and 3
// must then produce byte-identical NMEA and byte-identical wire frames
// to an uninterrupted single-node control over [cut, end) — across
// multiple survivor worker/batch shapes.
func TestEngineHandoffDeterminism(t *testing.T) {
	const cut, head, end = 200, 230, 300
	orphans := []int{1, 3}
	base := Config{Receivers: 4, Workers: 2, Seed: 42, CheckpointEvery: handoffKeyframeEvery}

	// Control: uninterrupted 4-session node over [0, end).
	control := newWireRecorder()
	ccfg := base
	ccfg.Sink = control.sink
	c, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background(), end); err != nil {
		t.Fatal(err)
	}

	// Node A: same config, killed at epoch head. The surviving
	// artifact is its periodic lock-free Snapshot — last refreshed at
	// the CheckpointEvery boundary `cut` — serialized through the file
	// codec exactly as the proxy's checkpoint cache holds it.
	a, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(context.Background(), head); err != nil {
		t.Fatal(err)
	}
	data, err := checkpoint.Encode(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	full, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if full.Epoch != cut {
		t.Fatalf("periodic snapshot epoch %d, want %d", full.Epoch, cut)
	}
	handed := full.Filter(orphans)
	if len(handed.Sessions) != len(orphans) || handed.Receivers != len(orphans) {
		t.Fatalf("filtered checkpoint: %d sessions, receivers echo %d", len(handed.Sessions), handed.Receivers)
	}

	// Survivor node B, in two different worker/batch shapes.
	for _, shape := range []struct{ workers, batch int }{{1, 32}, {2, 7}} {
		t.Run(fmt.Sprintf("w%db%d", shape.workers, shape.batch), func(t *testing.T) {
			rec := newWireRecorder()
			bcfg := base
			bcfg.Receivers = 0
			bcfg.SessionIDs = append([]int(nil), orphans...)
			bcfg.Workers = shape.workers
			bcfg.BatchSize = shape.batch
			bcfg.Sink = rec.sink
			b, err := New(bcfg)
			if err != nil {
				t.Fatal(err)
			}
			n, err := b.Restore(handed)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(orphans) {
				t.Fatalf("restored %d sessions, want %d", n, len(orphans))
			}
			if b.ResumeEpoch() != cut {
				t.Fatalf("resume epoch %d, want %d", b.ResumeEpoch(), cut)
			}
			// Catch-up to the dead node's head, then serve the tail.
			if err := b.FastForward(context.Background(), head); err != nil {
				t.Fatal(err)
			}
			if b.ResumeEpoch() != head {
				t.Fatalf("post-fast-forward resume %d, want %d", b.ResumeEpoch(), head)
			}
			if err := b.RunRange(context.Background(), head, end); err != nil {
				t.Fatal(err)
			}

			for _, r := range orphans {
				for i := cut; i < end; i++ {
					k := [2]int{r, i}
					if rec.gga[k] != control.gga[k] {
						t.Fatalf("session %d epoch %d: NMEA GGA diverged after handoff:\n  survivor %q\n  control  %q",
							r, i, rec.gga[k], control.gga[k])
					}
					if rec.rmc[k] != control.rmc[k] {
						t.Fatalf("session %d epoch %d: NMEA RMC diverged after handoff", r, i)
					}
					if !bytes.Equal(rec.frames[k], control.frames[k]) {
						t.Fatalf("session %d epoch %d: wire frame bytes diverged after handoff\n  survivor %x\n  control  %x",
							r, i, rec.frames[k], control.frames[k])
					}
				}
			}
		})
	}
}

// TestEngineSessionIDsPlacementInvariance: an engine hosting a subset
// of global ids produces bit-identical per-session output to the full
// engine, from epoch zero — the property that makes an id a stable
// address across the cluster.
func TestEngineSessionIDsPlacementInvariance(t *testing.T) {
	const end = 60
	full := newWireRecorder()
	cfgFull := Config{Receivers: 5, Workers: 3, Seed: 9, Sink: full.sink}
	ef, err := New(cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := ef.Run(context.Background(), end); err != nil {
		t.Fatal(err)
	}
	sub := newWireRecorder()
	es, err := New(Config{SessionIDs: []int{4, 0, 2}, Workers: 2, Seed: 9, Sink: sub.sink})
	if err != nil {
		t.Fatal(err)
	}
	if got := es.SessionIDs(); len(got) != 3 || got[0] != 4 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("SessionIDs() = %v", got)
	}
	if err := es.Run(context.Background(), end); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{4, 0, 2} {
		for i := 0; i < end; i++ {
			k := [2]int{r, i}
			if sub.gga[k] != full.gga[k] {
				t.Fatalf("session %d epoch %d: subset engine diverged from full engine", r, i)
			}
		}
	}
}

// TestEngineSessionIDsValidation: bad id sets are refused.
func TestEngineSessionIDsValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"empty":        {SessionIDs: []int{}},
		"dup":          {SessionIDs: []int{1, 1}},
		"negative":     {SessionIDs: []int{-1}},
		"contradictes": {SessionIDs: []int{1, 2}, Receivers: 3},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid SessionIDs", name)
		}
	}
}

// TestEngineSkipTo: the cold-start fallback moves the resume point
// forward (never backward) without running epochs.
func TestEngineSkipTo(t *testing.T) {
	e, err := New(Config{Receivers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.SkipTo(40)
	if e.ResumeEpoch() != 40 {
		t.Fatalf("resume = %d, want 40", e.ResumeEpoch())
	}
	e.SkipTo(10)
	if e.ResumeEpoch() != 40 {
		t.Fatalf("SkipTo moved the resume point backward to %d", e.ResumeEpoch())
	}
	// FastForward to a target at/behind resume is a no-op.
	if err := e.FastForward(context.Background(), 40); err != nil {
		t.Fatal(err)
	}
	if e.ResumeEpoch() != 40 {
		t.Fatalf("no-op FastForward moved resume to %d", e.ResumeEpoch())
	}
}
