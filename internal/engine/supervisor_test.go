package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/fault"
)

// recorder captures every sink event, keyed by (receiver, epoch), with
// copies of the NMEA bytes (the originals are session-owned buffers).
type recorder struct {
	mu     sync.Mutex
	gga    map[[2]int]string
	states map[[2]int]SessionState
	events int
}

func newRecorder() *recorder {
	return &recorder{gga: make(map[[2]int]string), states: make(map[[2]int]SessionState)}
}

func (rc *recorder) sink(e FixEvent) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.events++
	k := [2]int{e.Receiver, e.Epoch}
	rc.gga[k] = string(e.GGA)
	rc.states[k] = e.State
}

// checkEventConservation asserts the supervised event law: every epoch
// of every receiver produced exactly one sink call, accounted to exactly
// one of the outcome counters.
func checkEventConservation(t *testing.T, st Stats, events int) {
	t.Helper()
	got := st.Fixes + st.CoastFixes + st.SolveFailures + st.EpochErrors +
		st.Panics + st.QuarantinedEpochs + st.FailedEpochs
	if got != uint64(events) {
		t.Errorf("event conservation violated: fixes %d + coast %d + failures %d + errors %d + panics %d + quarantined %d + failed %d = %d != %d sink calls",
			st.Fixes, st.CoastFixes, st.SolveFailures, st.EpochErrors,
			st.Panics, st.QuarantinedEpochs, st.FailedEpochs, got, events)
	}
}

// TestEnginePanicIsolation is the tentpole's isolation guarantee: one
// receiver with an injected panic is quarantined, restarted, and
// recovers, while every other receiver's fix stream stays bit-identical
// to a clean run — including the panicking receiver's shard neighbour.
func TestEnginePanicIsolation(t *testing.T) {
	// 50 epochs keeps every predictor inside its 60-fix warm-up window,
	// so the three warm fixes receiver 2 loses to the panic cannot shift
	// its later solutions — recovery must be bit-identical too. (Past
	// calibration the lost fixes would legitimately perturb DLG output.)
	const epochs = 50
	base := Config{Receivers: 4, Workers: 2, Seed: 11, BatchSize: 8}

	clean := newRecorder()
	cfg := base
	cfg.Sink = clean.sink
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}

	chaos := newRecorder()
	cfg = base
	cfg.Sink = chaos.sink
	cfg.ReceiverFaults = func(r int) fault.Program {
		if r != 2 {
			return nil
		}
		return fault.Program{{Kind: fault.KindPanic, From: 10, Until: 13}}
	}
	eng2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	st := eng2.Stats()

	// Panic at epoch 10 → restart with backoff 2 → epochs 11, 12
	// quarantined → epoch 13 (outside the fault window) steps cleanly.
	if st.Panics != 1 || st.Restarts != 1 || st.QuarantinedEpochs != 2 || st.FailedEpochs != 0 {
		t.Errorf("supervision counters = panics %d restarts %d quarantined %d failed %d, want 1/1/2/0",
			st.Panics, st.Restarts, st.QuarantinedEpochs, st.FailedEpochs)
	}
	checkEventConservation(t, st, chaos.events)

	// Isolation: receivers 0, 1, 3 bit-identical to the clean run.
	for _, r := range []int{0, 1, 3} {
		for i := 0; i < epochs; i++ {
			k := [2]int{r, i}
			if clean.gga[k] != chaos.gga[k] {
				t.Fatalf("receiver %d epoch %d diverged under neighbour panic:\n  clean %q\n  chaos %q",
					r, i, clean.gga[k], chaos.gga[k])
			}
		}
	}
	// Recovery: receiver 2 produces normal fixes again after quarantine,
	// identical to its own clean-run fixes (the predictor survived).
	for i := 13; i < epochs; i++ {
		k := [2]int{2, i}
		if clean.gga[k] != chaos.gga[k] {
			t.Fatalf("receiver 2 epoch %d did not recover to the clean stream:\n  clean %q\n  chaos %q",
				i, clean.gga[k], chaos.gga[k])
		}
	}
	// Pre-calibration both runs ride the NR fallback (degraded); the
	// point is the chaos run ends in the same place, not quarantined or
	// failed.
	last := [2]int{2, epochs - 1}
	if chaos.states[last] != clean.states[last] {
		t.Errorf("receiver 2 final state %v, clean run says %v", chaos.states[last], clean.states[last])
	}
}

// TestEngineRestartBudget drives a permanently panicking session through
// its whole restart budget into StateFailed, checking the exponential
// backoff arithmetic and the failed-session census.
func TestEngineRestartBudget(t *testing.T) {
	const epochs = 50
	rec := newRecorder()
	eng, err := New(Config{
		Receivers:     1,
		Seed:          3,
		RestartBudget: 2,
		Sink:          rec.sink,
		Faults:        fault.Program{{Kind: fault.KindPanic, From: 0, Until: math.Inf(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	// Panic at 0 (backoff 2: quarantine 1–2), panic at 3 (backoff 4:
	// quarantine 4–7), panic at 8 exhausts the budget → failed for the
	// remaining 41 epochs.
	if st.Panics != 3 || st.Restarts != 2 {
		t.Errorf("panics %d restarts %d, want 3/2", st.Panics, st.Restarts)
	}
	if st.QuarantinedEpochs != 6 || st.FailedEpochs != 41 {
		t.Errorf("quarantined %d failed %d, want 6/41", st.QuarantinedEpochs, st.FailedEpochs)
	}
	if st.Fixes != 0 || st.CoastFixes != 0 {
		t.Errorf("a permanently panicking session produced %d fixes, %d coasts", st.Fixes, st.CoastFixes)
	}
	checkEventConservation(t, st, rec.events)
	sh := eng.ShardHealth()
	if len(sh) != 1 || sh[0].Failed != 1 || sh[0].Healthy != 0 {
		t.Errorf("shard census = %+v, want 1 failed session", sh)
	}
}

// TestEngineBreakerDefault: with the default probe pacing (every open
// epoch probes and still runs the full chain), the breaker opens after
// K consecutive failures, probes through the outage, closes on the
// first success — and the fix/coast counts match the breaker-free
// arithmetic exactly.
func TestEngineBreakerDefault(t *testing.T) {
	const epochs = 200
	rec := newRecorder()
	eng, err := New(Config{
		Receivers: 1,
		Seed:      5,
		Sink:      rec.sink,
		// Occlusion to 3 satellites for epochs [40, 120): no solver can
		// fix, the session coasts on its clock model.
		Faults: fault.Program{{Kind: fault.KindShrink, N: 3, From: 40, Until: 120}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.CoastFixes != 80 {
		t.Errorf("CoastFixes = %d, want 80 (the breaker must not change outcomes at default pacing)", st.CoastFixes)
	}
	if st.BreakerOpens != 1 {
		t.Errorf("BreakerOpens = %d, want 1 (failures 40–47 trip K=8)", st.BreakerOpens)
	}
	// Open epochs 48–119 probe and fail; epoch 120 probes, the chain
	// recovers, and the breaker closes.
	if st.BreakerProbes != 73 {
		t.Errorf("BreakerProbes = %d, want 73", st.BreakerProbes)
	}
	if st.BreakerSkips != 0 {
		t.Errorf("BreakerSkips = %d, want 0 at default pacing", st.BreakerSkips)
	}
	sh := eng.ShardHealth()
	if sh[0].BreakerOpen != 0 {
		t.Error("breaker still open after recovery")
	}
	if got := rec.states[[2]int{0, epochs - 1}]; got != StateHealthy {
		t.Errorf("final state %v, want healthy", got)
	}
	checkEventConservation(t, st, rec.events)
}

// TestEngineBreakerPacedProbes: with BreakerProbeEvery > 1 the open
// breaker sheds solver load — non-probe epochs coast without touching
// the fallback chain — and the session still recovers shortly after the
// outage clears.
func TestEngineBreakerPacedProbes(t *testing.T) {
	const epochs = 200
	rec := newRecorder()
	eng, err := New(Config{
		Receivers:         1,
		Seed:              5,
		BreakerProbeEvery: 4,
		Sink:              rec.sink,
		Faults:            fault.Program{{Kind: fault.KindShrink, N: 3, From: 40, Until: 120}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	// Open at epoch 47; open epochs 48–123 (the close lags the window
	// end by openEpochs%4): every 4th open epoch probes (19), the rest
	// coast without solving (57).
	if st.BreakerOpens != 1 || st.BreakerSkips != 57 || st.BreakerProbes != 19 {
		t.Errorf("opens %d skips %d probes %d, want 1/57/19", st.BreakerOpens, st.BreakerSkips, st.BreakerProbes)
	}
	// Recovery may lag by up to probeEvery−1 coasted epochs past the
	// window, but no further.
	lastCoast := 0
	for i := 0; i < epochs; i++ {
		if rec.states[[2]int{0, i}] == StateCoasting {
			lastCoast = i
		}
	}
	if lastCoast >= 124 {
		t.Errorf("still coasting at epoch %d; paced probes must recover within probeEvery of the window end", lastCoast)
	}
	if sh := eng.ShardHealth(); sh[0].BreakerOpen != 0 {
		t.Error("breaker still open after recovery")
	}
	checkEventConservation(t, st, rec.events)
}

// TestEngineCheckpointRestore is the recovery tentpole's core law: an
// engine restored from a (serialized) checkpoint at epoch E and run over
// [E, N) produces bit-identical output to an uninterrupted engine over
// [0, N) on those epochs — no NR re-warm-up, no divergence.
func TestEngineCheckpointRestore(t *testing.T) {
	const cut, end = 200, 300
	base := Config{Receivers: 3, Workers: 3, Seed: 5, CheckpointEvery: 50}

	// Arm A: run [0, cut), checkpoint, serialize through the file codec.
	cfg := base
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(context.Background(), cut); err != nil {
		t.Fatal(err)
	}
	if cells := a.Snapshot(); len(cells.Sessions) != base.Receivers {
		t.Fatalf("lock-free Snapshot has %d sessions, want %d", len(cells.Sessions), base.Receivers)
	}
	stateA := a.SnapshotFinal()
	if stateA.Epoch != cut {
		t.Fatalf("final snapshot epoch %d, want %d", stateA.Epoch, cut)
	}
	data, err := checkpoint.Encode(stateA)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	// Arm B: fresh engine, restore, run the tail.
	restoredRec := newRecorder()
	cfg = base
	cfg.Sink = restoredRec.sink
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if n != base.Receivers {
		t.Fatalf("restored %d sessions, want %d", n, base.Receivers)
	}
	if b.ResumeEpoch() != cut {
		t.Errorf("ResumeEpoch = %d, want %d", b.ResumeEpoch(), cut)
	}
	if err := b.RunRange(context.Background(), cut, end); err != nil {
		t.Fatal(err)
	}

	// Arm C: uninterrupted control run [0, end).
	controlRec := newRecorder()
	cfg = base
	cfg.Sink = controlRec.sink
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background(), end); err != nil {
		t.Fatal(err)
	}

	for r := 0; r < base.Receivers; r++ {
		for i := cut; i < end; i++ {
			k := [2]int{r, i}
			if restoredRec.gga[k] != controlRec.gga[k] {
				t.Fatalf("receiver %d epoch %d diverged after restore:\n  restored %q\n  control  %q",
					r, i, restoredRec.gga[k], controlRec.gga[k])
			}
		}
	}
}

// TestEngineRestoreMismatch: a checkpoint from an incompatible
// configuration is refused, leaving the engine cold.
func TestEngineRestoreMismatch(t *testing.T) {
	a, err := New(Config{Receivers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	state := a.SnapshotFinal()

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"seed", Config{Receivers: 2, Seed: 6}},
		{"receivers", Config{Receivers: 3, Seed: 5}},
		{"solver", Config{Receivers: 2, Seed: 5, Solver: "nr"}},
		{"step", Config{Receivers: 2, Seed: 5, Step: 30}},
	} {
		b, err := New(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Restore(state); err == nil {
			t.Errorf("%s mismatch: Restore accepted an incompatible checkpoint", tc.name)
		}
		if b.ResumeEpoch() != 0 {
			t.Errorf("%s mismatch: refused restore still moved the resume epoch", tc.name)
		}
	}
}
