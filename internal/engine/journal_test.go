package engine

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/fault"
	"gpsdl/internal/journal"
	"gpsdl/internal/scenario"
)

// runJournaled runs a journaling engine over [0, epochs) and scans the
// resulting journal.
func runJournaled(t *testing.T, cfg Config, epochs int) *journal.ScanResult {
	t.Helper()
	var buf bytes.Buffer
	cfg.JournalSink = &buf
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	if err := eng.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	res, err := journal.ScanBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatalf("journal torn after clean run: %s at %d", res.TornReason, res.TornOffset)
	}
	return res
}

// perReceiver groups records by receiver, preserving epoch order.
func perReceiver(res *journal.ScanResult) map[int][]journal.Record {
	out := map[int][]journal.Record{}
	for _, r := range res.Records {
		out[r.Receiver] = append(out[r.Receiver], r)
	}
	for _, recs := range out {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Epoch < recs[j].Epoch })
	}
	return out
}

// TestJournalCompleteAndDeterministic: every (receiver, epoch) pair is
// recorded exactly once, and per-receiver record streams are identical
// for any worker count / batch size — the engine's determinism
// guarantee extended to the journal.
func TestJournalCompleteAndDeterministic(t *testing.T) {
	const receivers, epochs = 6, 200
	base := Config{
		Receivers: receivers, Seed: 9, Quality: &QualityConfig{},
		Faults:    fault.Program{{Kind: fault.KindStep, PRN: 14, Bias: 40, From: 80, Until: 160}},
		FaultSeed: 3,
	}
	cfgA := base
	cfgA.Workers, cfgA.BatchSize = 1, 64
	cfgB := base
	cfgB.Workers, cfgB.BatchSize = 3, 7
	a := perReceiver(runJournaled(t, cfgA, epochs))
	b := perReceiver(runJournaled(t, cfgB, epochs))
	if len(a) != receivers || len(b) != receivers {
		t.Fatalf("receiver coverage: %d vs %d, want %d", len(a), len(b), receivers)
	}
	for r := 0; r < receivers; r++ {
		if len(a[r]) != epochs {
			t.Fatalf("receiver %d: %d records, want %d", r, len(a[r]), epochs)
		}
		for i := range a[r] {
			if a[r][i].Epoch != uint64(i) {
				t.Fatalf("receiver %d: record %d has epoch %d", r, i, a[r][i].Epoch)
			}
			if !reflect.DeepEqual(a[r][i], b[r][i]) {
				t.Fatalf("receiver %d epoch %d differs across worker counts:\n%+v\n%+v",
					r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestJournalCapturedObsReplayBitIdentical: a captured observation set
// replayed through the named solver (with the captured clock estimate
// pinned) reproduces the recorded solution position bit-for-bit — the
// guarantee gpsinspect replay and the incident smoke rely on.
func TestJournalCapturedObsReplayBitIdentical(t *testing.T) {
	const receivers, epochs = 2, 300
	for _, solver := range []string{"nr", "dlg", "dlo"} {
		res := runJournaled(t, Config{
			Receivers: receivers, Workers: 2, Seed: 21, Solver: solver,
			Quality:             &QualityConfig{},
			JournalCaptureEvery: 32,
			Faults:              fault.Program{{Kind: fault.KindStep, PRN: 14, Bias: 30, From: 100, Until: math.Inf(1)}},
			FaultSeed:           7,
		}, epochs)
		stations := map[string]scenario.Station{}
		for _, st := range scenario.Table51Stations() {
			stations[st.ID] = st
		}
		replayed := 0
		for _, rec := range res.Records {
			if !rec.Has(journal.FlagFix) || rec.Flags&journal.FlagObs == 0 || rec.Flags&journal.FlagCoast != 0 {
				continue
			}
			name := journal.SolverName(rec.Solver)
			in := &eval.ReplayInput{
				Station:    stations[res.Meta.Stations[rec.Receiver]],
				EpochIndex: int(rec.Epoch),
				T:          float64(rec.Epoch) * res.Meta.Step,
				Solver:     name,
				ClockBias:  rec.PredBias,
				Solution:   rec.Pos,
			}
			for _, o := range rec.Obs {
				in.Obs = append(in.Obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
			}
			var sv core.Solver
			for _, cand := range in.Solvers() {
				if cand.Name() == name {
					sv = cand
				}
			}
			if sv == nil {
				t.Fatalf("captured solver %q not replayable", name)
			}
			sol, err := sv.Solve(in.T, in.Obs)
			if err != nil {
				t.Fatalf("solver %s epoch %d: replay failed: %v", name, rec.Epoch, err)
			}
			if sol.Pos != rec.Pos {
				t.Fatalf("solver %s epoch %d recv %d: replay not bit-identical:\n%+v\n%+v",
					name, rec.Epoch, rec.Receiver, sol.Pos, rec.Pos)
			}
			replayed++
		}
		if replayed < epochs/32 {
			t.Fatalf("solver %s: only %d captured fixes replayed", solver, replayed)
		}
	}
}

// TestJournalFaultAttribution: under a step fault on PRN 14 that evades
// RAIM but fails χ², the faulted satellite must dominate the recorded
// residuals in the fault window.
func TestJournalFaultAttribution(t *testing.T) {
	res := runJournaled(t, Config{
		Receivers: 1, Workers: 1, Seed: 4, Quality: &QualityConfig{},
		Faults:    fault.Program{{Kind: fault.KindStep, PRN: 14, Bias: 30, From: 100, Until: math.Inf(1)}},
		FaultSeed: 1,
	}, 400)
	byPRN := map[int]float64{}
	var total float64
	for _, rec := range res.Records {
		if rec.Epoch < 100 || !rec.Has(journal.FlagChi2Valid) || rec.Has(journal.FlagChi2Pass) {
			continue
		}
		for _, sr := range rec.Residuals {
			byPRN[sr.PRN] += sr.Meters * sr.Meters
			total += sr.Meters * sr.Meters
		}
	}
	if total == 0 {
		t.Fatal("no chi2-failed epochs recorded under a 30 m step fault")
	}
	share := byPRN[14] / total
	if share < 0.5 {
		t.Fatalf("PRN 14 residual share %.2f, want > 0.5 (byPRN=%v)", share, byPRN)
	}
}

// TestIncidentHooks: a paging SLO and a panicking receiver must both
// surface through Config.OnIncident.
func TestIncidentHooks(t *testing.T) {
	var mu sync.Mutex
	var incidents []Incident
	cfg := Config{
		Receivers: 2, Workers: 2, Seed: 2, Quality: &QualityConfig{},
		Faults:    fault.Program{{Kind: fault.KindStep, PRN: 14, Bias: 30, From: 50, Until: math.Inf(1)}},
		FaultSeed: 5,
		ReceiverFaults: func(r int) fault.Program {
			if r == 1 {
				return fault.Program{{Kind: fault.KindPanic, From: 60, Until: 61}}
			}
			return nil
		},
		OnIncident: func(inc Incident) {
			mu.Lock()
			incidents = append(incidents, inc)
			mu.Unlock()
		},
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawPage, sawPanic bool
	for _, inc := range incidents {
		switch inc.Kind {
		case IncidentSLOPage:
			sawPage = true
			if inc.Objective == "" {
				t.Fatalf("slo_page incident without objective: %+v", inc)
			}
		case IncidentPanic, IncidentSessionFailed:
			sawPanic = true
			if inc.Receiver != 1 {
				t.Fatalf("panic incident on wrong receiver: %+v", inc)
			}
		}
	}
	if !sawPage {
		t.Fatalf("no slo_page incident; got %+v", incidents)
	}
	if !sawPanic {
		t.Fatalf("no panic incident; got %+v", incidents)
	}
}

// TestJournalTailSegmentLive: mid-run tail segments must be
// self-contained scannable journals.
func TestJournalTailSegmentLive(t *testing.T) {
	var buf bytes.Buffer
	eng, err := New(Config{
		Receivers: 2, Workers: 1, Seed: 3, JournalSink: &buf,
		JournalOptions: journal.Options{TailFrames: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	seg := eng.Journal().TailSegment()
	res, err := journal.ScanBytes(seg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatalf("tail segment torn: %s", res.TornReason)
	}
	if len(res.Records) == 0 {
		t.Fatal("tail segment has no records")
	}
	if got := res.Records[len(res.Records)-1].Epoch; got != 499 {
		t.Fatalf("tail segment last epoch %d, want 499", got)
	}
}

// BenchmarkEngineSteadyStateJournal is BenchmarkEngineSteadyState with
// the flight journal recording every epoch; the acceptance bar is
// still 0 allocs/op (encoding appends into reused buffers; framing
// happens at the simulated batch boundary).
func BenchmarkEngineSteadyStateJournal(b *testing.B) {
	for _, solver := range []string{"nr", "dlg"} {
		b.Run(solver, func(b *testing.B) {
			eng, err := New(Config{
				Receivers: 1, Workers: 1, Solver: solver, Seed: 11,
				JournalSink: io.Discard,
			})
			if err != nil {
				b.Fatal(err)
			}
			const warm = 300
			pre := warm + b.N
			if err := eng.Pregenerate(pre); err != nil {
				b.Fatal(err)
			}
			s := eng.sessions[0]
			sh := eng.shards[0]
			sh.jenc.Begin(0, 0)
			for i := 0; i < warm; i++ {
				s.step(i)
				if (i+1)%32 == 0 {
					sh.flushJournal(uint64(i))
					sh.jenc.Begin(0, uint64(i+1))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.step(warm + i)
				if (i+1)%32 == 0 {
					sh.flushJournal(uint64(warm + i))
					sh.jenc.Begin(0, uint64(warm+i+1))
				}
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions above change
