// Package engine runs many independent GPS receiver sessions — each with
// its own station, trajectory, clock predictor and solver — over a sharded
// worker pool. It is the multi-receiver serving core behind cmd/gpsserve's
// -receivers mode and cmd/gpsbench's engine mode.
//
// Sharding model: receiver r is owned by shard r mod Workers for the
// engine's whole lifetime. A shard is one goroutine that steps its
// receivers through epochs strictly in order, so all per-receiver state
// (clock predictor, solver scratch) is single-threaded and the engine
// never locks on the fix path.
//
// Scratch ownership: each session owns one core.Scratch shared by its
// warm-start NR solver and its main solver (they run sequentially within
// a step). Combined with the reusable observation and NMEA buffers, the
// steady-state per-fix hot path — generate-free step over pregenerated
// epochs: linearize, solve, DOP, NMEA — performs zero heap allocations.
//
// Constellation sharing: all sessions observe the same sky, so the engine
// builds one constellation and one epochcache.Cache over the canonical
// epoch grid (unless DisableEpochCache). Each epoch's satellite states are
// propagated once, published as an immutable snapshot, and read by every
// session on every shard; the per-receiver work (visibility mask,
// light-time/Sagnac emission, noise, solve) stays in the sessions.
//
// Determinism guarantee: every epoch is a pure function of (the receiver's
// mixed seed, station, index·Step), each receiver's epochs are processed
// in index order by exactly one shard, and batches only group consecutive
// indices for scheduling. Per-receiver output sequences are therefore
// identical for any Workers and BatchSize — and, because cached snapshots
// hold exactly the state a lone generator computes, for the epoch cache
// on or off; only interleaving across receivers varies.
package engine

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/epochcache"
	"gpsdl/internal/fault"
	"gpsdl/internal/journal"
	"gpsdl/internal/orbit"
	"gpsdl/internal/quality"
	"gpsdl/internal/scenario"
	"gpsdl/internal/slo"
	"gpsdl/internal/telemetry"
)

// FixEvent is the engine's per-epoch output. GGA, RMC and Faults point
// into session-owned buffers and are valid only for the duration of the
// sink callback; copy them to retain. Err is set (and the solution fields
// zero) when the epoch failed to solve and the session could not coast.
type FixEvent struct {
	Receiver int
	Shard    int
	Epoch    int
	T        float64
	Sol      core.Solution
	HDOP     float64
	Sats     int
	// Solver names the fallback-chain member that produced the fix
	// ("coast" for a dead-reckoning fix).
	Solver string
	// Excluded is the observation index RAIM excluded, or -1.
	Excluded int
	// Suspect marks a fix carrying an unresolved integrity fault.
	Suspect bool
	// Coast marks a position-hold fix computed from the clock model.
	Coast bool
	// State is the session's health state after this epoch.
	State SessionState
	// Quality is the per-fix quality evidence (residual RMS, χ² test).
	// Populated only when Config.Quality is set and the epoch solved;
	// zero otherwise.
	Quality core.FixQuality
	// Faults lists the fault-injector events applied to this epoch.
	Faults   []fault.Event
	Err      error
	GGA, RMC []byte
}

// FixSink receives every FixEvent. Shards call it concurrently, so it
// must be safe for concurrent use. A nil sink discards events.
type FixSink func(FixEvent)

// Config sizes and wires an Engine.
type Config struct {
	// Receivers is the number of independent receiver sessions (≥ 1).
	Receivers int
	// SessionIDs, when non-nil, names the global receiver ids this
	// engine hosts instead of the implicit 0..Receivers-1. Everything
	// derived per receiver — the mixed scenario seed, the station
	// template, fault programs, FixEvent.Receiver and checkpoint
	// records — is keyed by the global id, not the engine-local index,
	// so an engine hosting {1, 3} produces bit-identical output for
	// those receivers to a larger engine hosting {0, 1, 2, 3}. This is
	// what makes cross-node session migration possible: a survivor
	// node builds an engine over exactly the orphaned ids and restores
	// their checkpoint records. Ids must be unique and ≥ 0; Receivers
	// must be zero or match len(SessionIDs).
	SessionIDs []int
	// Workers is the shard count; ≤ 0 means GOMAXPROCS. It is clamped
	// to Receivers (a shard with no receivers would be useless).
	Workers int
	// Solver selects the per-receiver solver: "nr", "dlo", "dlg" or
	// "bancroft". Empty means "dlg" (the paper's headline algorithm).
	Solver string
	// DLGVariant selects the DLG covariance path: "fast" (Sherman–
	// Morrison, O(m) per solve), "paper" (dense Cholesky, the paper's
	// measured cost profile) or "explicit" (literal eq. 4-21 reference).
	// Empty means "fast" — the default flipped once the differential
	// harness proved the three routes numerically equivalent; "paper"
	// restores the previous behavior.
	DLGVariant string
	// Weighting maps each observation's reported C/N0 to a per-satellite
	// σ (core.SigmaFromCN0) and solves heteroscedastically: weighted
	// rows in NR, σ-scaled covariance terms in DLG. Off by default;
	// sigma-free epochs solve identically either way, so enabling it on
	// a CN0-free dataset is a no-op by construction.
	Weighting bool
	// Disruption runs the robust disruption detector before each solve:
	// pseudo-range innovations against the last good fix are scored with
	// median/MAD statistics and suspects have their σ inflated, so the
	// weighted solvers pull spoofed or jammed satellites toward
	// irrelevance without waiting for RAIM to exclude them. Implies
	// weighted solvers (the inflated σ must be honored); epochs with
	// down-weighted suspects report the session Degraded.
	Disruption bool
	// Seed is the base scenario seed; receiver r's seed is derived by
	// mixing (splitmix64), so every receiver sees distinct, reproducible
	// measurements and no (Seed, receiver) pair aliases another — the old
	// additive Seed+r scheme made e.g. Seed 7 receiver 0 identical to
	// Seed 6 receiver 1.
	Seed int64
	// Step is the epoch spacing in seconds; ≤ 0 means 1.
	Step float64
	// BatchSize is the number of consecutive epochs per scheduled job;
	// ≤ 0 means 32. It affects scheduling only, never results.
	BatchSize int
	// QueueDepth is each shard's job-channel capacity; ≤ 0 means 4.
	QueueDepth int
	// Stations supplies the receiver templates, assigned round-robin;
	// nil means scenario.Table51Stations().
	Stations []scenario.Station
	// Registry receives the engine's per-shard metrics; nil means a
	// private registry (Stats still works).
	Registry *telemetry.Registry
	// Sink receives every fix event; nil discards.
	Sink FixSink
	// SessionOptions, when non-nil, returns extra generator options for
	// receiver r (e.g. a trajectory). Must be deterministic in r.
	SessionOptions func(r int) []scenario.Option
	// Faults is an optional fault program applied to every receiver's
	// epoch stream (see internal/fault). Empty means fault-free.
	Faults fault.Program
	// FaultSeed drives the fault injector's burst noise; receiver r's
	// injector seed is mixed the same way as Seed. The same (Faults,
	// FaultSeed, Seed) triple reproduces bit-identical fix streams and
	// fault-event logs for any worker count.
	FaultSeed int64
	// ReceiverFaults, when non-nil, supplies a per-receiver fault program
	// that overrides Faults for receivers where it returns a non-nil
	// program — chaos tests use it to panic one receiver while its shard
	// neighbours run clean. Must be deterministic in r.
	ReceiverFaults func(r int) fault.Program
	// BreakerThreshold is the consecutive-failure count K that opens a
	// session's circuit breaker; ≤ 0 means 8.
	BreakerThreshold int
	// BreakerProbeEvery paces half-open probes while a breaker is open:
	// every Nth open epoch runs a cheap DLO probe and the full chain,
	// the rest coast without solving. ≤ 0 means 1 (probe every epoch),
	// which keeps the fix stream bit-identical to a breaker-free engine.
	BreakerProbeEvery int
	// RestartBudget is how many panic restarts a session gets before it
	// is failed for the rest of the run; ≤ 0 means 8.
	RestartBudget int
	// CheckpointEvery refreshes each session's lock-free checkpoint cell
	// every N epochs, making Engine.Snapshot safe mid-run; 0 disables
	// (the default: refreshing allocates, and the hot path stays
	// allocation-free without it).
	CheckpointEvery int
	// Quality enables the solution-quality observability layer (sliding
	// quality windows, SLO/error-budget evaluation, /debug/status data).
	// Nil disables it and the fix path pays nothing for it.
	Quality *QualityConfig
	// JournalSink, when non-nil, enables the black-box flight journal:
	// every session-epoch is recorded (see internal/journal), encoded
	// off the solve path and framed to the sink at shard batch
	// boundaries. Typically an *os.File; the engine writes the header
	// in New and a caller retrieves the writer via Journal() for tail
	// segments and the final Close.
	JournalSink io.Writer
	// JournalOptions tunes the journal writer (sync cadence, tail-ring
	// depth). A nil Registry inside is replaced with Config.Registry so
	// the gps_journal_* counters land in the engine's registry.
	JournalOptions journal.Options
	// JournalCaptureEvery is the per-session cadence (in epochs) of
	// full observation-set captures for offline replay; flagged epochs
	// (χ² failure, RAIM exclusion, suspect fix) are always captured.
	// ≤ 0 means 64.
	JournalCaptureEvery int
	// OnIncident, when non-nil, receives incident events (SLO page
	// transitions, recovered panics, exhausted restart budgets). See
	// Incident for the delivery contract.
	OnIncident func(Incident)
	// DisableEpochCache turns off the shared per-epoch constellation
	// snapshot cache, making every session re-propagate the constellation
	// itself (the pre-cache behavior). Output is bit-identical either
	// way; disabling only costs throughput. Exists for benchmarking the
	// cache and as an escape hatch.
	DisableEpochCache bool
	// EpochCacheSize overrides the snapshot ring capacity in epochs;
	// ≤ 0 derives it from QueueDepth and BatchSize (the bound on how far
	// shards can skew) with epochcache.DefaultCapacity as the floor.
	EpochCacheSize int
}

// job is a half-open range of epoch indices [e0, e1) for one shard.
type job struct {
	e0, e1 int
}

// shard owns a disjoint subset of the sessions and a job queue.
type shard struct {
	id       int
	sessions []*session
	jobs     chan job
	m        *shardMetrics

	// cache is the engine's shared epoch cache (nil when disabled). The
	// shard warms each epoch's snapshot once before stepping its live
	// sessions, so same-epoch solves across the shard batch against one
	// propagation.
	cache *epochcache.Cache

	// Shard-level quality window (nil when the quality layer is off).
	// It slides over the last Window epochs of every session on the
	// shard, keyed by the synthetic index epoch*len(sessions)+pos so
	// each (epoch, session) pair owns a distinct ring slot. Only the
	// shard goroutine touches qwin; qpub is its lock-free published
	// snapshot, refreshed at EvalEvery boundaries.
	qwin      *quality.Window
	qpub      atomic.Pointer[quality.Snapshot]
	evalEvery int

	// Flight journal (nil when Config.JournalSink is nil): the shard's
	// batch encoder, the shared writer it flushes to at batch
	// boundaries, and the shared write-error counter.
	jenc  *journal.Encoder
	jw    *journal.Writer
	jerrs *telemetry.Counter

	// onIncident forwards supervision incidents (nil when unset).
	onIncident func(Incident)
}

// Engine is a sharded multi-receiver fix engine. Create with New; run
// with Run or RunPaced. Runs must not overlap, but a returned engine can
// be run again (receiver state — predictors, scratch — carries over).
type Engine struct {
	cfg      Config
	shards   []*shard
	sessions []*session // all sessions, indexed by receiver
	cm       *chainMetrics
	cache    *epochcache.Cache // shared snapshot cache (nil when disabled)
	resume   int               // first epoch index for RunPaced, set by Restore

	// Quality layer (nil when Config.Quality is nil).
	qcfg *QualityConfig
	qm   *qualityMetrics

	// Flight journal (nil when Config.JournalSink is nil).
	jw *journal.Writer
}

// chainMetrics bundles the engine-wide (cross-shard) fallback, RAIM,
// DLG covariance-path and disruption counters shared by every session;
// the underlying counters are atomic, so sharing across shard
// goroutines is safe.
type chainMetrics struct {
	fallback *core.FallbackMetrics
	raim     *core.RAIMMetrics
	gls      *core.GLSMetrics
	disrupt  *core.DisruptionMetrics
}

// New builds the engine: sessions, shards, queues and metrics. It
// validates the configuration and resolves defaults as documented on
// Config.
func New(cfg Config) (*Engine, error) {
	if cfg.SessionIDs != nil {
		if len(cfg.SessionIDs) == 0 {
			return nil, fmt.Errorf("engine: SessionIDs must not be empty when set")
		}
		if cfg.Receivers != 0 && cfg.Receivers != len(cfg.SessionIDs) {
			return nil, fmt.Errorf("engine: Receivers=%d contradicts len(SessionIDs)=%d", cfg.Receivers, len(cfg.SessionIDs))
		}
		cfg.Receivers = len(cfg.SessionIDs)
		seen := make(map[int]struct{}, len(cfg.SessionIDs))
		for _, id := range cfg.SessionIDs {
			if id < 0 {
				return nil, fmt.Errorf("engine: negative session id %d", id)
			}
			if _, dup := seen[id]; dup {
				return nil, fmt.Errorf("engine: duplicate session id %d", id)
			}
			seen[id] = struct{}{}
		}
	}
	if cfg.Receivers < 1 {
		return nil, fmt.Errorf("engine: Receivers must be >= 1, have %d", cfg.Receivers)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Receivers {
		cfg.Workers = cfg.Receivers
	}
	if cfg.Solver == "" {
		cfg.Solver = "dlg"
	}
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.BreakerProbeEvery <= 0 {
		cfg.BreakerProbeEvery = 1
	}
	if cfg.RestartBudget <= 0 {
		cfg.RestartBudget = 8
	}
	if cfg.JournalCaptureEvery <= 0 {
		cfg.JournalCaptureEvery = 64
	}
	if cfg.Stations == nil {
		cfg.Stations = scenario.Table51Stations()
	}
	if len(cfg.Stations) == 0 {
		return nil, fmt.Errorf("engine: empty station list")
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if _, err := parseDLGVariant(cfg.DLGVariant); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg}
	e.cm = &chainMetrics{
		fallback: core.NewFallbackMetrics(cfg.Registry),
		raim:     core.NewRAIMMetrics(cfg.Registry),
		gls:      core.NewGLSMetrics(cfg.Registry),
		disrupt:  core.NewDisruptionMetrics(cfg.Registry),
	}
	if !cfg.DisableEpochCache {
		// One constellation, one snapshot ring, shared by every session.
		// Capacity covers the maximum epoch skew between shards (each can
		// hold QueueDepth queued batches plus one in flight) with slack.
		ccap := cfg.EpochCacheSize
		if ccap <= 0 {
			ccap = (cfg.QueueDepth + 2) * cfg.BatchSize
			if ccap < epochcache.DefaultCapacity {
				ccap = epochcache.DefaultCapacity
			}
		}
		cache, err := epochcache.New(orbit.DefaultConstellation(), 0, cfg.Step,
			epochcache.Options{Capacity: ccap, Registry: cfg.Registry})
		if err != nil {
			return nil, fmt.Errorf("engine: epoch cache: %w", err)
		}
		e.cache = cache
	}
	e.shards = make([]*shard, cfg.Workers)
	for i := range e.shards {
		e.shards[i] = &shard{
			id:    i,
			m:     newShardMetrics(cfg.Registry, strconv.Itoa(i)),
			cache: e.cache,
		}
	}
	e.sessions = make([]*session, cfg.Receivers)
	for idx := 0; idx < cfg.Receivers; idx++ {
		// The global receiver id drives all derived state (seed,
		// station, faults); the engine-local index only places the
		// session on a shard.
		id := idx
		if cfg.SessionIDs != nil {
			id = cfg.SessionIDs[idx]
		}
		sh := e.shards[idx%cfg.Workers]
		s, err := newSession(cfg, id, sh.id, sh.m, e.cm, e.cache)
		if err != nil {
			return nil, err
		}
		s.posInShard = len(sh.sessions)
		e.sessions[idx] = s
		sh.sessions = append(sh.sessions, s)
	}
	if cfg.Quality != nil {
		qc := cfg.Quality.withDefaults()
		e.qcfg = &qc
		for _, s := range e.sessions {
			ev, err := slo.NewEvaluator(qc.Objectives)
			if err != nil {
				return nil, err
			}
			s.qual = &sessionQuality{
				sigma:     qc.Sigma,
				evalEvery: uint64(qc.EvalEvery),
				win:       quality.NewWindow(qc.Window),
				eval:      ev,
			}
			if cfg.OnIncident != nil {
				wireIncidents(s, ev, cfg.OnIncident)
			}
		}
		for _, sh := range e.shards {
			sh.qwin = quality.NewWindow(qc.Window * len(sh.sessions))
			sh.evalEvery = qc.EvalEvery
		}
		e.qm = newQualityMetrics(cfg.Registry, qc.Objectives)
	}
	if cfg.OnIncident != nil {
		for _, sh := range e.shards {
			sh.onIncident = cfg.OnIncident
		}
	}
	if cfg.JournalSink != nil {
		opt := cfg.JournalOptions
		if opt.Registry == nil {
			opt.Registry = cfg.Registry
		}
		jw, err := journal.NewWriter(cfg.JournalSink, e.journalMeta(), opt)
		if err != nil {
			return nil, fmt.Errorf("engine: journal: %w", err)
		}
		e.jw = jw
		jerrs := cfg.Registry.Counter("engine_journal_write_errors_total",
			"Journal frame writes that failed (records dropped)")
		for _, sh := range e.shards {
			sh.jw = jw
			sh.jerrs = jerrs
			sh.jenc = &journal.Encoder{}
		}
		for _, s := range e.sessions {
			s.jq = &sessionJournal{
				enc:          e.shards[s.shard].jenc,
				captureEvery: uint64(cfg.JournalCaptureEvery),
			}
		}
	}
	return e, nil
}

// Pregenerate computes and caches epochs [0, n) for every session, so a
// subsequent run measures only the fix path (solve, DOP, NMEA), not
// scenario generation. Benchmarks use it; serving does not need it. The
// loop is epoch-outer so all sessions generate a given epoch back to
// back: with the shared epoch cache that is one constellation propagation
// per epoch total (session-outer order would wrap the snapshot ring
// between sessions and evict every epoch before its next reader).
func (e *Engine) Pregenerate(n int) error {
	for _, s := range e.sessions {
		s.pre = make([]scenario.Epoch, n)
	}
	for i := 0; i < n; i++ {
		for _, s := range e.sessions {
			ep, err := s.gen.EpochAt(float64(i) * s.step_)
			if err != nil {
				for _, s2 := range e.sessions {
					s2.pre = nil
				}
				return fmt.Errorf("engine: receiver %d epoch %d: %w", s.recv, i, err)
			}
			s.pre[i] = ep
		}
	}
	return nil
}

// Run processes epochs [0, epochs) on every receiver, returning when all
// work is done or ctx is canceled (then ctx.Err() is returned). Batches
// cut short by cancellation are counted aborted; batches received after
// cancellation are returned unprocessed and counted drained, so the
// conservation law enqueued == done + aborted + drained holds on return.
func (e *Engine) Run(ctx context.Context, epochs int) error {
	return e.RunRange(ctx, 0, epochs)
}

// RunRange is Run over the half-open epoch range [e0, e1). A restored
// engine resumes with RunRange(ctx, st.Epoch, end) so epoch indices —
// and therefore epoch times, fault windows, and threshold-clock resets —
// continue exactly where the checkpointed process stopped.
func (e *Engine) RunRange(ctx context.Context, e0, e1 int) error {
	wg := e.start(ctx)
enqueue:
	for start := e0; start < e1; start += e.cfg.BatchSize {
		end := start + e.cfg.BatchSize
		if end > e1 {
			end = e1
		}
		for _, sh := range e.shards {
			select {
			case sh.jobs <- job{e0: start, e1: end}:
				sh.m.enqueued.Inc()
			case <-ctx.Done():
				break enqueue
			}
		}
	}
	for _, sh := range e.shards {
		close(sh.jobs)
	}
	wg.Wait()
	return ctx.Err()
}

// RunPaced processes one epoch per tick on every receiver — the serving
// mode, where epochs arrive in real time. A shard that is still busy when
// its next tick lands skips that epoch (counted in skipped_ticks) rather
// than falling behind. Epoch indices start at the restore point (0 on a
// cold engine). Returns when ticks closes or ctx is canceled.
func (e *Engine) RunPaced(ctx context.Context, ticks <-chan time.Time) error {
	wg := e.start(ctx)
	i := e.resume
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case _, ok := <-ticks:
			if !ok {
				break loop
			}
			for _, sh := range e.shards {
				select {
				case sh.jobs <- job{e0: i, e1: i + 1}:
					sh.m.enqueued.Inc()
				default:
					sh.m.skippedTicks.Inc()
				}
			}
			i++
		}
	}
	for _, sh := range e.shards {
		close(sh.jobs)
	}
	wg.Wait()
	return ctx.Err()
}

// start gives every shard a fresh job queue and launches its goroutine,
// returning the WaitGroup the dispatcher waits on after closing the
// queues. Fresh channels per run are what make the engine re-runnable.
func (e *Engine) start(ctx context.Context) *sync.WaitGroup {
	wg := &sync.WaitGroup{}
	for _, sh := range e.shards {
		sh.jobs = make(chan job, e.cfg.QueueDepth)
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run(ctx)
		}(sh)
	}
	return wg
}

// run drains the shard's queue. A batch cut short mid-way by cancellation
// counts aborted; a batch received after cancellation is returned
// untouched and counts drained, so the dispatcher's close never strands
// a queued batch and the drain summary can tell the two apart.
func (sh *shard) run(ctx context.Context) {
	// Warm the shared epoch cache only when some session will actually
	// generate live; pregenerated sessions never read it, and warming
	// would then pay a propagation per epoch for nothing.
	warm := false
	if sh.cache != nil {
		for _, s := range sh.sessions {
			if s.pre == nil {
				warm = true
				break
			}
		}
	}
	for jb := range sh.jobs {
		sh.m.queueDepth.Set(float64(len(sh.jobs)))
		if ctx.Err() != nil {
			sh.m.drained.Inc()
			continue
		}
		aborted := false
		if sh.jenc != nil {
			sh.jenc.Begin(sh.id, uint64(jb.e0))
		}
		for i := jb.e0; i < jb.e1; i++ {
			if ctx.Err() != nil {
				aborted = true
				break
			}
			if warm {
				// One propagation covers every session on the shard for
				// this epoch (and, ring permitting, the other shards').
				// Errors are not dropped: a failed snapshot resurfaces
				// from each session's own EpochAt as an epoch error.
				_, _ = sh.cache.At(i)
			}
			for _, s := range sh.sessions {
				sh.stepSession(s, i)
			}
			if sh.qwin != nil && (i+1)%sh.evalEvery == 0 {
				snap := &quality.Snapshot{}
				sh.qwin.SnapshotInto(snap)
				sh.qpub.Store(snap)
			}
		}
		sh.flushJournal(uint64(jb.e1 - 1))
		if aborted {
			sh.m.aborted.Inc()
		} else {
			sh.m.done.Inc()
		}
	}
	sh.m.queueDepth.Set(0)
}

// stepSession is the per-epoch supervisor around session.step: it skips
// failed and quarantined sessions (one sink event and one counter each,
// keeping event conservation exact), recovers panics into isolated
// session restarts, and refreshes the session's checkpoint cell. One
// receiver panicking or backing off never disturbs its shard neighbours.
func (sh *shard) stepSession(s *session, i int) {
	if s.failed {
		sh.m.failedEpochs.Inc()
		s.observeQuality(quality.Sample{Epoch: uint64(i)})
		sh.observeQuality(s, i)
		s.journalMiss(i)
		s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i,
			T: float64(i) * s.step_, State: s.state, Err: errSessionFailed})
		return
	}
	if s.quarUntil > i {
		sh.m.quarantinedEpochs.Inc()
		s.observeQuality(quality.Sample{Epoch: uint64(i)})
		sh.observeQuality(s, i)
		s.journalMiss(i)
		s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i,
			T: float64(i) * s.step_, State: s.state, Err: errSessionQuarantined})
		return
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				sh.superviseAfterPanic(s, i, r)
			}
		}()
		s.step(i)
	}()
	sh.observeQuality(s, i)
	s.nextEpoch = i + 1
	if s.ckptEvery > 0 && (i+1)%s.ckptEvery == 0 {
		s.ckpt.Store(s.snapshot(i + 1))
	}
}

// observeQuality folds the session's last sample into the shard-level
// window under the synthetic per-(epoch, session) key. Runs on the
// shard goroutine, after the session has recorded its own sample for
// epoch i.
func (sh *shard) observeQuality(s *session, i int) {
	if sh.qwin == nil {
		return
	}
	smp := s.qual.last
	smp.Epoch = uint64(i)*uint64(len(sh.sessions)) + uint64(s.posInShard)
	sh.qwin.Observe(smp)
}

// superviseAfterPanic converts a recovered panic into an isolated
// session failure: exponential epoch-indexed backoff (2, 4, 8, …, capped
// at maxQuarantineEpochs) while the restart budget lasts, permanent
// failure after. Backoff is counted in epoch indices, never wall-clock,
// so supervision is deterministic for any worker count.
func (sh *shard) superviseAfterPanic(s *session, i int, r any) {
	sh.m.panics.Inc()
	s.restarts++
	if s.restarts > s.restartBudget {
		s.failed = true
		s.setState(StateFailed)
	} else {
		backoff := 1 << s.restarts
		if backoff > maxQuarantineEpochs {
			backoff = maxQuarantineEpochs
		}
		s.quarUntil = i + 1 + backoff
		s.setState(StateQuarantined)
		s.restart()
		sh.m.restarts.Inc()
	}
	// The panicked epoch produced no fix; record it in the quality
	// stream so availability accounting never loses an epoch. Observing
	// the same epoch twice (if the panic struck after the session's own
	// observe) just replaces the ring slot, so this is safe either way.
	s.observeQuality(quality.Sample{Epoch: uint64(i)})
	s.journalMiss(i)
	if sh.onIncident != nil {
		kind := IncidentPanic
		if s.failed {
			kind = IncidentSessionFailed
		}
		sh.onIncident(Incident{Kind: kind, Receiver: s.recv, Shard: s.shard,
			Epoch: uint64(i), Detail: fmt.Sprint(r)})
	}
	err := fmt.Errorf("engine: receiver %d panicked at epoch %d: %v", s.recv, i, r)
	func() {
		// A panicking sink must not take the supervisor down with it.
		defer func() { _ = recover() }()
		s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i,
			T: float64(i) * s.step_, State: s.state, Err: err})
	}()
}

// maxQuarantineEpochs caps post-panic backoff so a long-lived session
// with a mid-life panic streak still gets probed regularly.
const maxQuarantineEpochs = 256

// Stats is an engine-wide snapshot summed over shards.
type Stats struct {
	Fixes, CoastFixes, SolveFailures, EpochErrors uint64
	BatchesEnqueued, BatchesDone, BatchesAborted  uint64
	BatchesDrained                                uint64
	SkippedTicks                                  uint64
	FaultEvents                                   uint64
	Fallbacks, SuspectFixes, RAIMExclusions       uint64
	Panics, Restarts                              uint64
	QuarantinedEpochs, FailedEpochs               uint64
	BreakerOpens, BreakerProbes, BreakerSkips     uint64
	SLODowngrades                                 uint64
}

// Stats sums the per-shard counters. Safe to call at any time; exact once
// a run has returned.
func (e *Engine) Stats() Stats {
	var st Stats
	for _, sh := range e.shards {
		st.Fixes += sh.m.fixes.Value()
		st.CoastFixes += sh.m.coastFixes.Value()
		st.SolveFailures += sh.m.solveFailures.Value()
		st.EpochErrors += sh.m.epochErrors.Value()
		st.BatchesEnqueued += sh.m.enqueued.Value()
		st.BatchesDone += sh.m.done.Value()
		st.BatchesAborted += sh.m.aborted.Value()
		st.BatchesDrained += sh.m.drained.Value()
		st.SkippedTicks += sh.m.skippedTicks.Value()
		st.FaultEvents += sh.m.faultEvents.Value()
		st.Panics += sh.m.panics.Value()
		st.Restarts += sh.m.restarts.Value()
		st.QuarantinedEpochs += sh.m.quarantinedEpochs.Value()
		st.FailedEpochs += sh.m.failedEpochs.Value()
		st.BreakerOpens += sh.m.breakerOpens.Value()
		st.BreakerProbes += sh.m.breakerProbes.Value()
		st.BreakerSkips += sh.m.breakerSkips.Value()
		st.SLODowngrades += sh.m.sloDowngrades.Value()
	}
	st.Fallbacks = e.cm.fallback.Fallbacks.Value()
	st.SuspectFixes = e.cm.fallback.Suspects.Value()
	st.RAIMExclusions = e.cm.raim.Exclusions.Value()
	return st
}

// BatchesConserved reports the drain conservation law the graceful
// shutdown path asserts: every enqueued batch was processed, cut short,
// or drained — none stranded.
func (st Stats) BatchesConserved() bool {
	return st.BatchesEnqueued == st.BatchesDone+st.BatchesAborted+st.BatchesDrained
}

// ShardHealth is one shard's session-state census, for /healthz.
type ShardHealth struct {
	Shard       int    `json:"shard"`
	Healthy     uint64 `json:"healthy"`
	Degraded    uint64 `json:"degraded"`
	Coasting    uint64 `json:"coasting"`
	Quarantined uint64 `json:"quarantined,omitempty"`
	Failed      uint64 `json:"failed,omitempty"`
	BreakerOpen uint64 `json:"breaker_open,omitempty"`
	Panics      uint64 `json:"panics,omitempty"`
	Restarts    uint64 `json:"restarts,omitempty"`
}

// ShardHealth reports how many of each shard's sessions are currently in
// each health state, plus the shard's supervision counters. The gauges
// are updated atomically at state transitions, so this is safe to call
// while a run is in flight.
func (e *Engine) ShardHealth() []ShardHealth {
	out := make([]ShardHealth, len(e.shards))
	for i, sh := range e.shards {
		out[i] = ShardHealth{
			Shard:       sh.id,
			Healthy:     uint64(sh.m.healthySessions.Value()),
			Degraded:    uint64(sh.m.degradedSessions.Value()),
			Coasting:    uint64(sh.m.coastingSessions.Value()),
			Quarantined: uint64(sh.m.quarantinedSessions.Value()),
			Failed:      uint64(sh.m.failedSessions.Value()),
			BreakerOpen: uint64(sh.m.breakerOpenSessions.Value()),
			Panics:      sh.m.panics.Value(),
			Restarts:    sh.m.restarts.Value(),
		}
	}
	return out
}

// Workers reports the resolved shard count.
func (e *Engine) Workers() int { return len(e.shards) }

// SessionIDs reports the global receiver ids this engine hosts, in
// construction order.
func (e *Engine) SessionIDs() []int {
	ids := make([]int, len(e.sessions))
	for i, s := range e.sessions {
		ids[i] = s.recv
	}
	return ids
}

// canonicalChain is the fallback order of ISSUE 4: the iterative
// reference first, then the paper's direct methods by decreasing
// sophistication, then the predictor-free closed form as the last resort.
var canonicalChain = [4]string{"nr", "dlg", "dlo", "bancroft"}

// solverParams carries the session-wide solver options down through
// chain construction: the DLG covariance path, whether solvers honor
// per-observation σ, and the shared DLG path counters.
type solverParams struct {
	variant  core.DLGVariant
	weighted bool
	gls      *core.GLSMetrics
}

// parseDLGVariant resolves Config.DLGVariant. Empty means VariantFast:
// the O(m) Sherman–Morrison route is the engine default now that the
// differential harness pins it to the paper and explicit routes.
func parseDLGVariant(name string) (core.DLGVariant, error) {
	switch name {
	case "", "fast":
		return core.VariantFast, nil
	case "paper":
		return core.VariantPaper, nil
	case "explicit":
		return core.VariantExplicit, nil
	default:
		return 0, fmt.Errorf("engine: unknown DLG variant %q (want fast, paper or explicit)", name)
	}
}

// newChain builds the session's fallback chain: the primary solver
// followed by the remaining canonical solvers in order, all sharing the
// session scratch (they run sequentially within a step).
func newChain(primary string, pred clock.Predictor, sc *core.Scratch, sp solverParams) (*core.FallbackChain, error) {
	first, err := newSolver(primary, pred, sc, sp)
	if err != nil {
		return nil, err
	}
	solvers := make([]core.Solver, 0, len(canonicalChain))
	solvers = append(solvers, first)
	for _, name := range canonicalChain {
		if name == primary {
			continue
		}
		s, err := newSolver(name, pred, sc, sp)
		if err != nil {
			return nil, err
		}
		solvers = append(solvers, s)
	}
	return core.NewFallbackChain(solvers...)
}

// newSolver builds the per-session solver wired to the session's scratch.
func newSolver(name string, pred clock.Predictor, sc *core.Scratch, sp solverParams) (core.Solver, error) {
	switch name {
	case "nr":
		s := &core.NRSolver{Scratch: sc}
		if sp.weighted {
			s.Weight = core.SigmaWeight
		}
		return s, nil
	case "dlo":
		s := core.NewDLOSolver(pred)
		s.Scratch = sc
		return s, nil
	case "dlg":
		s := core.NewDLGSolver(pred)
		s.Scratch = sc
		s.Variant = sp.variant
		s.Weighted = sp.weighted
		s.Metrics = sp.gls
		return s, nil
	case "bancroft":
		return core.BancroftSolver{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown solver %q (want nr, dlo, dlg or bancroft)", name)
	}
}
