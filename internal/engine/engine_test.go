package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect runs an engine over epochs and returns each receiver's output
// sequence as strings ("epoch:GGA" or "epoch:err"). Receivers never share
// a shard slot, so writing to out[e.Receiver] from the sink is race-free.
func collect(t *testing.T, receivers, workers, batch, epochs int) [][]string {
	t.Helper()
	out := make([][]string, receivers)
	eng, err := New(Config{
		Receivers: receivers,
		Workers:   workers,
		BatchSize: batch,
		Seed:      42,
		Sink: func(e FixEvent) {
			if e.Err != nil {
				out[e.Receiver] = append(out[e.Receiver], fmt.Sprintf("%d:err:%v", e.Epoch, e.Err))
				return
			}
			out[e.Receiver] = append(out[e.Receiver], fmt.Sprintf("%d:%s", e.Epoch, e.GGA))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEngineDeterminism is the engine's core guarantee: per-receiver
// output sequences do not depend on worker count or batch size.
func TestEngineDeterminism(t *testing.T) {
	const receivers, epochs = 4, 90
	ref := collect(t, receivers, 1, 32, epochs)
	for _, alt := range []struct{ workers, batch int }{{4, 32}, {2, 7}, {4, 1}} {
		got := collect(t, receivers, alt.workers, alt.batch, epochs)
		for r := 0; r < receivers; r++ {
			if len(got[r]) != len(ref[r]) {
				t.Fatalf("workers=%d batch=%d receiver %d: %d events, want %d",
					alt.workers, alt.batch, r, len(got[r]), len(ref[r]))
			}
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("workers=%d batch=%d receiver %d event %d:\n  got  %s\n  want %s",
						alt.workers, alt.batch, r, i, got[r][i], ref[r][i])
				}
			}
		}
	}
	// Sanity: the run must actually produce fixes once predictors
	// calibrate, not just a wall of errors.
	fixes := 0
	for r := range ref {
		for _, ev := range ref[r] {
			if strings.Contains(ev, ":$") {
				fixes++
			}
		}
	}
	if fixes == 0 {
		t.Fatal("no successful fixes in the reference run")
	}
}

// TestEngineShutdown cancels mid-run and checks the engine winds down
// completely: no leaked goroutines and the batch conservation law
// enqueued == done + aborted.
func TestEngineShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var events atomic.Uint64
	var once sync.Once
	eng, err := New(Config{
		Receivers: 6,
		Workers:   3,
		BatchSize: 4,
		Seed:      7,
		Sink: func(e FixEvent) {
			events.Add(1)
			// Cancel from inside the run, guaranteed mid-batch.
			if events.Load() > 40 {
				once.Do(cancel)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	runErr := eng.Run(ctx, 100000)
	if runErr != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", runErr)
	}
	st := eng.Stats()
	if !st.BatchesConserved() {
		t.Errorf("batch conservation violated: enqueued %d != done %d + aborted %d + drained %d",
			st.BatchesEnqueued, st.BatchesDone, st.BatchesAborted, st.BatchesDrained)
	}
	if st.BatchesAborted == 0 {
		t.Error("cancellation mid-run aborted no batches")
	}
	if got := st.Fixes + st.CoastFixes + st.SolveFailures + st.EpochErrors; got != events.Load() {
		t.Errorf("event conservation violated: fixes %d + coast %d + failures %d + errors %d != %d sink calls",
			st.Fixes, st.CoastFixes, st.SolveFailures, st.EpochErrors, events.Load())
	}
	// All shard goroutines must exit promptly after Run returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutine leak: %d after shutdown, baseline %d", n, baseline)
	}
}

// TestEngineRunPaced drives the paced mode: every delivered tick either
// schedules an epoch on each shard or bumps the skipped-ticks counter.
func TestEngineRunPaced(t *testing.T) {
	eng, err := New(Config{Receivers: 2, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ticks := make(chan time.Time)
	done := make(chan error, 1)
	go func() { done <- eng.RunPaced(context.Background(), ticks) }()
	const n = 50
	for i := 0; i < n; i++ {
		ticks <- time.Time{}
	}
	close(ticks)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	// n ticks × 2 shards, each either enqueued or skipped.
	if got := st.BatchesEnqueued + st.SkippedTicks; got != 2*n {
		t.Errorf("paced accounting: enqueued %d + skipped %d = %d, want %d",
			st.BatchesEnqueued, st.SkippedTicks, got, 2*n)
	}
	if st.BatchesEnqueued != st.BatchesDone+st.BatchesAborted {
		t.Errorf("batch conservation violated: enqueued %d != done %d + aborted %d",
			st.BatchesEnqueued, st.BatchesDone, st.BatchesAborted)
	}
}

// TestEngineHotPathZeroAlloc pins the tentpole property: with pregenerated
// epochs and a calibrated predictor, a session step (warm NR solve,
// predictor update, DLG solve, DOP, two NMEA sentences, metrics) performs
// zero heap allocations.
func TestEngineHotPathZeroAlloc(t *testing.T) {
	for _, solver := range []string{"nr", "dlo", "dlg", "bancroft"} {
		t.Run(solver, func(t *testing.T) {
			eng, err := New(Config{Receivers: 1, Workers: 1, Solver: solver, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			const warm, measured = 300, 120
			if err := eng.Pregenerate(warm + measured + 10); err != nil {
				t.Fatal(err)
			}
			s := eng.sessions[0]
			for i := 0; i < warm; i++ {
				s.step(i)
			}
			i := warm
			if n := testing.AllocsPerRun(measured, func() {
				s.step(i)
				i++
			}); n != 0 {
				t.Errorf("solver %s: %v allocs per step, want 0", solver, n)
			}
		})
	}
}

// TestEngineConfigValidation covers the constructor's error paths.
func TestEngineConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("Receivers=0 accepted")
	}
	if _, err := New(Config{Receivers: 1, Solver: "kalman"}); err == nil {
		t.Error("unknown solver accepted")
	}
	eng, err := New(Config{Receivers: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Workers(); got != 3 {
		t.Errorf("workers not clamped to receivers: %d", got)
	}
}
