package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkEngineSteadyState measures the per-fix cost of one session's
// hot path over pregenerated epochs. The acceptance bar is 0 allocs/op.
func BenchmarkEngineSteadyState(b *testing.B) {
	for _, solver := range []string{"nr", "dlo", "dlg", "bancroft"} {
		b.Run(solver, func(b *testing.B) {
			eng, err := New(Config{Receivers: 1, Workers: 1, Solver: solver, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			const warm = 300
			pre := warm + b.N
			if err := eng.Pregenerate(pre); err != nil {
				b.Fatal(err)
			}
			s := eng.sessions[0]
			for i := 0; i < warm; i++ {
				s.step(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.step(warm + i)
			}
		})
	}
}

// BenchmarkEngineThroughput measures end-to-end fixes/sec as the worker
// count grows, with receivers fixed. On a multi-core runner throughput
// should scale near-linearly until workers approach GOMAXPROCS.
func BenchmarkEngineThroughput(b *testing.B) {
	maxw := runtime.GOMAXPROCS(0)
	const receivers = 8
	const preEpochs = 512
	for workers := 1; workers <= maxw; workers *= 2 {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := New(Config{Receivers: receivers, Workers: workers, Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Pregenerate(preEpochs); err != nil {
				b.Fatal(err)
			}
			// Warm every session so the steady state is measured.
			for _, s := range eng.sessions {
				for i := 0; i < 300; i++ {
					s.step(i)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			fixes := 0
			for i := 0; i < b.N; i++ {
				// Re-run the same pregenerated window; predictors stay
				// calibrated, so every epoch is a full hot-path fix.
				if err := eng.Run(context.Background(), preEpochs); err != nil {
					b.Fatal(err)
				}
				fixes += preEpochs * receivers
			}
			b.StopTimer()
			b.ReportMetric(float64(fixes)/b.Elapsed().Seconds(), "fixes/sec")
		})
	}
}
