package engine

import (
	"gpsdl/internal/journal"
	"gpsdl/internal/wire"
)

// Wire converts a FixEvent into its binary wire representation. This is
// the single FixEvent → wire.Fix mapping shared by the serving sink and
// the cluster handoff machinery, so "byte-identical frames after
// failover" is a property of one converter rather than two that must be
// kept in agreement by hand. Solve failures become MISS frames: the
// epoch is declared on the wire (a subscriber can distinguish "no fix"
// from "stream gap") and the delta chain is left untouched.
func (e FixEvent) Wire() wire.Fix {
	f := wire.Fix{
		Session: e.Receiver,
		Epoch:   uint64(e.Epoch),
		State:   uint8(e.State),
	}
	if e.Err != nil {
		f.Miss = true
		return f
	}
	f.X, f.Y, f.Z = e.Sol.Pos.X, e.Sol.Pos.Y, e.Sol.Pos.Z
	f.ClockBias = e.Sol.ClockBias
	f.HDOP = e.HDOP
	f.Sats = e.Sats
	f.Solver = journal.SolverIndex(e.Solver)
	f.Coast = e.Coast
	f.Suspect = e.Suspect
	f.Degraded = e.State == StateDegraded
	return f
}
