package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"gpsdl/internal/fault"
	"gpsdl/internal/nmea"
)

// faultProgram is the adversarial reference program the determinism and
// degradation tests share: a dropout, a gross step fault (RAIM bait), a
// multipath burst, a clock jump, and a shrink below the 4-satellite
// solver minimum.
func faultProgram(t *testing.T) fault.Program {
	t.Helper()
	prog, err := fault.ParseSpec(
		"drop:prn=3,from=10,until=40;step:prn=7,bias=400,from=20,until=50;" +
			"burst:sigma=12,from=45,until=60;clockjump:at=55,bias=5e-4;shrink:n=3,from=65,until=80")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// collectFaulted renders every sink event — fix or coast or failure,
// including solver name, health state, and the full fault-event log — to
// a per-receiver string sequence for bit-exact comparison.
func collectFaulted(t *testing.T, prog fault.Program, receivers, workers, batch, epochs int) [][]string {
	t.Helper()
	out := make([][]string, receivers)
	eng, err := New(Config{
		Receivers: receivers,
		Workers:   workers,
		BatchSize: batch,
		Seed:      42,
		Faults:    prog,
		FaultSeed: 1234,
		Sink: func(e FixEvent) {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d|%s|%s|coast=%v|suspect=%v|excl=%d", e.Epoch, e.Solver, e.State, e.Coast, e.Suspect, e.Excluded)
			for _, fe := range e.Faults {
				fmt.Fprintf(&sb, "|f:%s:%d:%.9g", fe.Kind, fe.PRN, fe.Delta)
			}
			if e.Err != nil {
				fmt.Fprintf(&sb, "|err:%v", e.Err)
			} else {
				fmt.Fprintf(&sb, "|%s", e.GGA)
			}
			out[e.Receiver] = append(out[e.Receiver], sb.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEngineFaultDeterminism is the acceptance criterion: same seed +
// fault spec ⇒ bit-identical fix stream and fault-event log regardless of
// worker count or batch size.
func TestEngineFaultDeterminism(t *testing.T) {
	prog := faultProgram(t)
	const receivers, epochs = 4, 100
	ref := collectFaulted(t, prog, receivers, 1, 32, epochs)
	for _, alt := range []struct{ workers, batch int }{{4, 32}, {2, 7}, {3, 1}} {
		got := collectFaulted(t, prog, receivers, alt.workers, alt.batch, epochs)
		for r := 0; r < receivers; r++ {
			if len(got[r]) != len(ref[r]) {
				t.Fatalf("workers=%d batch=%d receiver %d: %d events, want %d",
					alt.workers, alt.batch, r, len(got[r]), len(ref[r]))
			}
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("workers=%d batch=%d receiver %d event %d:\n  got  %s\n  want %s",
						alt.workers, alt.batch, r, i, got[r][i], ref[r][i])
				}
			}
		}
	}
	// The program must actually exercise the degradation machinery in the
	// reference run, or this test proves nothing.
	var sawFault, sawCoast bool
	for r := range ref {
		for _, ev := range ref[r] {
			if strings.Contains(ev, "|f:") {
				sawFault = true
			}
			if strings.Contains(ev, "coast=true") {
				sawCoast = true
			}
		}
	}
	if !sawFault {
		t.Error("fault program applied no faults")
	}
	if !sawCoast {
		t.Error("shrink-below-4 produced no coasting fixes")
	}
}

// TestEngineDropoutBelowFourCoasts is the graceful-degradation criterion:
// a constellation shrunk below 4 satellites yields coasting fixes flagged
// degraded — never a panic, an error wall, or silent garbage.
func TestEngineDropoutBelowFourCoasts(t *testing.T) {
	prog, err := fault.ParseSpec("shrink:n=2,from=40,until=70")
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		coast  bool
		state  SessionState
		sats   int
		gga    string
		failed bool
	}
	var events []rec
	eng, err := New(Config{
		Receivers: 1,
		Workers:   1,
		Seed:      42,
		Faults:    prog,
		Sink: func(e FixEvent) {
			events = append(events, rec{
				coast: e.Coast, state: e.State, sats: e.Sats,
				gga: string(e.GGA), failed: e.Err != nil,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if len(events) != 100 {
		t.Fatalf("%d events, want 100", len(events))
	}
	for i, e := range events {
		inWindow := i >= 40 && i < 70
		if inWindow {
			if e.failed {
				t.Errorf("epoch %d: failed instead of coasting", i)
				continue
			}
			if !e.coast || e.state != StateCoasting {
				t.Errorf("epoch %d: 2-satellite epoch not coasting (coast=%v state=%v sats=%d)",
					i, e.coast, e.state, e.sats)
			}
			if want := fmt.Sprintf(",%d,", int(nmea.QualityEstimated)); !strings.Contains(e.gga, want) {
				t.Errorf("epoch %d: coast GGA lacks quality %d: %s", i, int(nmea.QualityEstimated), e.gga)
			}
		} else if i >= 75 && e.coast {
			// A few epochs of slack after the window, then the session
			// must have resumed real solving.
			t.Errorf("epoch %d: still coasting after the shrink window", i)
		}
	}
	st := eng.Stats()
	if st.CoastFixes != 30 {
		t.Errorf("CoastFixes = %d, want 30", st.CoastFixes)
	}
	if got := st.Fixes + st.CoastFixes + st.SolveFailures + st.EpochErrors; got != 100 {
		t.Errorf("event conservation: %d accounted, want 100", got)
	}
}

// TestEngineShardHealthCensus drives one shard into coasting and checks
// the /healthz-facing census tracks the transition and the recovery.
func TestEngineShardHealthCensus(t *testing.T) {
	prog, err := fault.ParseSpec("shrink:n=1,from=20,until=30")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Receivers: 2, Workers: 2, Seed: 9, Faults: prog})
	if err != nil {
		t.Fatal(err)
	}
	// Before any run every session is healthy.
	total := 0
	for _, h := range eng.ShardHealth() {
		total += int(h.Healthy)
		if h.Degraded != 0 || h.Coasting != 0 {
			t.Errorf("pre-run census has degraded/coasting sessions: %+v", h)
		}
	}
	if total != 2 {
		t.Fatalf("pre-run healthy census = %d, want 2", total)
	}
	// Run only into the middle of the shrink window.
	if err := eng.Run(context.Background(), 25); err != nil {
		t.Fatal(err)
	}
	coasting := 0
	for _, h := range eng.ShardHealth() {
		coasting += int(h.Coasting)
	}
	if coasting != 2 {
		t.Errorf("mid-window coasting census = %d, want 2", coasting)
	}
	// Resume past the window: sessions recover.
	if err := eng.Run(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	healthy := 0
	for _, h := range eng.ShardHealth() {
		healthy += int(h.Healthy) + int(h.Degraded)
	}
	if healthy != 2 {
		t.Errorf("post-window recovered census = %d, want 2", healthy)
	}
}

// TestEngineFallbackKeepsUncalibratedEpochsAlive: a DLG primary cannot
// solve before its predictor calibrates; the chain must hand those early
// epochs to NR instead of failing them.
func TestEngineFallbackKeepsUncalibratedEpochsAlive(t *testing.T) {
	var failures, fixes int
	var firstSolver string
	eng, err := New(Config{
		Receivers: 1,
		Workers:   1,
		Solver:    "dlg",
		Seed:      5,
		Sink: func(e FixEvent) {
			if e.Err != nil {
				failures++
				return
			}
			if fixes == 0 {
				firstSolver = e.Solver
			}
			fixes++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 80); err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Errorf("%d failed epochs despite the fallback chain", failures)
	}
	if fixes != 80 {
		t.Errorf("%d fixes, want 80", fixes)
	}
	if firstSolver == "DLG" {
		t.Error("first epoch claims DLG before the predictor could calibrate")
	}
	if st := eng.Stats(); st.Fallbacks == 0 {
		t.Error("no fallbacks counted during DLG calibration warm-up")
	}
}
