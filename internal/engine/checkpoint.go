package engine

import (
	"context"
	"fmt"

	"gpsdl/internal/checkpoint"
)

// header fills the configuration-echo fields of a checkpoint state, so
// Restore can refuse a checkpoint taken under an incompatible run.
func (e *Engine) header() *checkpoint.State {
	return &checkpoint.State{
		Solver:    e.cfg.Solver,
		Seed:      e.cfg.Seed,
		Step:      e.cfg.Step,
		Receivers: e.cfg.Receivers,
	}
}

// Snapshot assembles a checkpoint from the sessions' lock-free cells.
// Safe to call from any goroutine while a run is in flight; requires
// Config.CheckpointEvery > 0 (otherwise the cells are never refreshed
// and the snapshot is empty). Sessions that have not completed a refresh
// interval yet are omitted — they had nothing worth persisting.
func (e *Engine) Snapshot() *checkpoint.State {
	st := e.header()
	for _, s := range e.sessions {
		cs := s.ckpt.Load()
		if cs == nil {
			continue
		}
		st.Sessions = append(st.Sessions, *cs)
		if cs.Epoch > st.Epoch {
			st.Epoch = cs.Epoch
		}
	}
	return st
}

// SnapshotFinal assembles an exact checkpoint by reading session state
// directly. It must only be called while no run is in flight (before the
// first run, or after Run/RunPaced has returned) — it takes no locks.
// The graceful-drain path uses it for the final checkpoint.
func (e *Engine) SnapshotFinal() *checkpoint.State {
	st := e.header()
	for _, s := range e.sessions {
		cs := s.snapshot(s.nextEpoch)
		st.Sessions = append(st.Sessions, *cs)
		if cs.Epoch > st.Epoch {
			st.Epoch = cs.Epoch
		}
	}
	return st
}

// Restore loads a checkpoint into a freshly built engine, before any
// run: per-session clock calibration (skipping the NR warm-up window the
// paper prices as the expensive recalibration case), last good fix, and
// health state. RunPaced resumes at the checkpoint epoch; batch mode
// should use RunRange(ctx, st.Epoch, end). It returns the number of
// sessions restored. A configuration mismatch returns an error and
// leaves the engine untouched — callers fall back to a cold start.
func (e *Engine) Restore(st *checkpoint.State) (int, error) {
	if st.Solver != e.cfg.Solver || st.Seed != e.cfg.Seed ||
		st.Step != e.cfg.Step || st.Receivers != e.cfg.Receivers {
		return 0, fmt.Errorf("engine: checkpoint for (solver=%s seed=%d step=%g receivers=%d), running (solver=%s seed=%d step=%g receivers=%d)",
			st.Solver, st.Seed, st.Step, st.Receivers,
			e.cfg.Solver, e.cfg.Seed, e.cfg.Step, e.cfg.Receivers)
	}
	byID := make(map[int]*session, len(e.sessions))
	for _, s := range e.sessions {
		byID[s.recv] = s
	}
	restored := 0
	for i := range st.Sessions {
		cs := &st.Sessions[i]
		// Checkpoint records are keyed by global receiver id; records
		// for sessions this engine does not host are skipped (a handoff
		// may filter the state, or hand a superset to a subset engine).
		s, ok := byID[cs.Receiver]
		if !ok {
			continue
		}
		if err := s.restore(cs); err != nil {
			return restored, err
		}
		restored++
	}
	e.resume = st.Epoch
	return restored, nil
}

// FastForward advances the engine from its restore point to epoch `to`
// by running the full solve path unpaced over [ResumeEpoch, to) — the
// session-migration catch-up: a survivor that restored a dead node's
// periodic checkpoint at epoch C replays C..head so its predictor,
// breaker and fix state land exactly where the dead node's were, and
// every replayed epoch flows through the Sink (the wire hub's replay
// ring plus client ack filtering turn those into dedup-able frames,
// never duplicate deliveries). Must be called before RunPaced; no-op
// when to ≤ ResumeEpoch.
func (e *Engine) FastForward(ctx context.Context, to int) error {
	if to <= e.resume {
		return nil
	}
	if err := e.RunRange(ctx, e.resume, to); err != nil {
		return err
	}
	e.resume = to
	return nil
}

// SkipTo moves the resume point forward without computing the skipped
// epochs — the graceful-degradation fallback when a handed-off
// checkpoint cannot be restored: the adopting node cold-starts the
// sessions at the cluster's current epoch instead of refusing them
// (the clients see a declared gap plus the NR re-warm-up, not a dead
// session). Must be called before any run; no-op when epoch is behind
// the current resume point.
func (e *Engine) SkipTo(epoch int) {
	if epoch > e.resume {
		e.resume = epoch
	}
}

// ResumeEpoch reports the epoch index RunPaced will start from (set by
// Restore; 0 on a cold engine).
func (e *Engine) ResumeEpoch() int { return e.resume }
