package engine

import (
	"time"

	"gpsdl/internal/core"
	"gpsdl/internal/journal"
	"gpsdl/internal/scenario"
	"gpsdl/internal/slo"
)

// Incident kinds emitted through Config.OnIncident.
const (
	IncidentSLOPage       = "slo_page"
	IncidentPanic         = "panic"
	IncidentSessionFailed = "session_failed"
)

// Incident describes one incident-worthy event: an SLO objective
// paging, a recovered panic (the session enters quarantine), or a
// session exhausting its restart budget. Incidents are delivered on
// the shard goroutine that detected them; handlers must be cheap and
// concurrency-safe, and should hand heavy work (bundle capture) to
// another goroutine.
type Incident struct {
	Kind      string `json:"kind"`
	Receiver  int    `json:"receiver"`
	Shard     int    `json:"shard"`
	Epoch     uint64 `json:"epoch"`
	Objective string `json:"objective,omitempty"` // paging objective, for slo_page
	Detail    string `json:"detail,omitempty"`    // panic value, for panic/session_failed
}

// sessionJournal is one session's flight-journal state: a reusable
// record and residual/observation buffers (so steady-state recording
// allocates nothing) plus the owning shard's batch encoder.
type sessionJournal struct {
	enc          *journal.Encoder
	captureEvery uint64
	res          []journal.SatResidual
	obs          []journal.CapturedObs
	rec          journal.Record
	prevState    SessionState
}

// journalMeta describes this engine's configuration in the journal
// file header, so offline tools can interpret and replay the records.
func (e *Engine) journalMeta() journal.Meta {
	m := journal.Meta{
		Solver:       e.cfg.Solver,
		Seed:         e.cfg.Seed,
		Step:         e.cfg.Step,
		Receivers:    e.cfg.Receivers,
		CaptureEvery: e.cfg.JournalCaptureEvery,
		Created:      time.Now().UTC().Format(time.RFC3339),
	}
	m.Stations = make([]string, e.cfg.Receivers)
	for r := 0; r < e.cfg.Receivers; r++ {
		m.Stations[r] = e.cfg.Stations[r%len(e.cfg.Stations)].ID
	}
	if e.qcfg != nil {
		m.Sigma = e.qcfg.Sigma
	}
	return m
}

// Journal returns the engine's flight-journal writer (nil when
// Config.JournalSink is nil). Callers use it for tail segments and the
// final Close; the engine itself never closes it, so a caller can
// still snapshot the tail after a run returns.
func (e *Engine) Journal() *journal.Writer { return e.jw }

// flushJournal hands the shard's accumulated batch payload to the
// writer at the batch boundary — the only place journal I/O happens,
// keeping the per-epoch solve path free of file writes and locks.
func (sh *shard) flushJournal(maxEpoch uint64) {
	if sh.jenc == nil || sh.jenc.Count() == 0 {
		return
	}
	if err := sh.jw.WriteRecords(sh.jenc.Payload(), sh.jenc.Count(), maxEpoch); err != nil {
		sh.jerrs.Inc()
	}
}

// journalFix records a solved epoch: quality evidence, per-satellite
// post-fit residuals (the attribution payload), and — on flagged
// epochs (χ² failure, RAIM exclusion, suspect fix) or every
// captureEvery-th epoch — the full observation set and predicted
// clock bias needed for bit-exact offline replay.
func (s *session) journalFix(i int, t float64, res *core.FallbackResult,
	fq *core.FixQuality, pdop, hdop float64, dopOK bool,
	clockInnov float64, clockOK bool, satObs []scenario.SatObs) {
	jq := s.jq
	if jq == nil {
		return
	}
	r := &jq.rec
	*r = journal.Record{
		Receiver: s.recv,
		Epoch:    uint64(i),
		Flags:    journal.FlagFix,
		State:    uint8(s.state),
		Chain:    uint8(res.Index),
		Solver:   journal.SolverIndex(res.Solver),
		Pos:      res.Solution.Pos,
	}
	r.ClockBias = res.Solution.ClockBias
	if res.Suspect {
		r.Flags |= journal.FlagSuspect
	}
	if fq.RMSValid {
		r.Flags |= journal.FlagRMS
		r.RMS = fq.ResidualRMS
	}
	if fq.Chi2Valid {
		r.Flags |= journal.FlagChi2Valid
		if fq.Chi2Pass {
			r.Flags |= journal.FlagChi2Pass
		}
	}
	if dopOK {
		r.Flags |= journal.FlagDOP
		r.PDOP, r.HDOP = pdop, hdop
	}
	if clockOK {
		r.Flags |= journal.FlagClock
		r.ClockInnov = clockInnov
	}
	if res.Excluded >= 0 && res.Excluded < len(satObs) {
		r.Flags |= journal.FlagExcluded
		r.ExcludedPRN = satObs[res.Excluded].PRN
	}
	if s.state != jq.prevState {
		r.Flags |= journal.FlagStateChange
		jq.prevState = s.state
	}
	// Post-fit residuals against the final solution for every
	// observation, the excluded satellite included — its residual is
	// exactly what per-PRN attribution needs.
	resid := jq.res[:0]
	for j := range s.obs {
		o := &s.obs[j]
		v := o.Pseudorange - (res.Solution.Pos.DistanceTo(o.Pos) + res.Solution.ClockBias)
		resid = append(resid, journal.SatResidual{PRN: satObs[j].PRN, Meters: v})
	}
	jq.res = resid
	r.Residuals = resid
	flagged := (fq.Chi2Valid && !fq.Chi2Pass) || res.Excluded >= 0 || res.Suspect
	if flagged || (uint64(i)+uint64(s.recv))%jq.captureEvery == 0 {
		r.Flags |= journal.FlagObs
		if bias, perr := s.pred.PredictBias(t); perr == nil {
			r.PredBias = bias
		}
		// Capture the set the recorded solution was solved from: RAIM's
		// excluded satellite (if any) is dropped, so replaying Obs
		// through the named solver reproduces Pos bit-for-bit.
		cobs := jq.obs[:0]
		for j := range satObs {
			if j == res.Excluded {
				continue
			}
			o := &satObs[j]
			cobs = append(cobs, journal.CapturedObs{
				PRN: o.PRN, Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation,
			})
		}
		jq.obs = cobs
		r.Obs = cobs
	}
	jq.enc.Add(r)
}

// journalCoast records a dead-reckoning epoch (position hold on the
// clock model).
func (s *session) journalCoast(i int, sol core.Solution) {
	jq := s.jq
	if jq == nil {
		return
	}
	r := &jq.rec
	*r = journal.Record{
		Receiver:  s.recv,
		Epoch:     uint64(i),
		Flags:     journal.FlagFix | journal.FlagCoast,
		State:     uint8(s.state),
		Solver:    journal.SolverIndex("coast"),
		Pos:       sol.Pos,
		ClockBias: sol.ClockBias,
	}
	if s.state != jq.prevState {
		r.Flags |= journal.FlagStateChange
		jq.prevState = s.state
	}
	jq.enc.Add(r)
}

// journalMiss records an epoch that produced no fix at all (solve
// failure without a coast, generation error, quarantined/failed
// session, recovered panic).
func (s *session) journalMiss(i int) {
	jq := s.jq
	if jq == nil {
		return
	}
	r := &jq.rec
	*r = journal.Record{Receiver: s.recv, Epoch: uint64(i), State: uint8(s.state)}
	if s.state != jq.prevState {
		r.Flags |= journal.FlagStateChange
		jq.prevState = s.state
	}
	jq.enc.Add(r)
}

// wireIncidents connects the per-session SLO evaluator's transition
// hook to Config.OnIncident, reporting every escalation to page.
func wireIncidents(s *session, ev *slo.Evaluator, oninc func(Incident)) {
	ev.OnTransition = func(name string, from, to slo.State) {
		if to == slo.StatePage {
			oninc(Incident{
				Kind:      IncidentSLOPage,
				Receiver:  s.recv,
				Shard:     s.shard,
				Epoch:     s.qual.last.Epoch,
				Objective: name,
			})
		}
	}
}
