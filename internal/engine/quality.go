package engine

import (
	"math"
	"sort"
	"sync/atomic"

	"gpsdl/internal/quality"
	"gpsdl/internal/slo"
	"gpsdl/internal/telemetry"
)

// QualityConfig enables the engine's solution-quality observability
// layer: per-session and per-shard sliding windows over per-fix quality
// evidence, plus SLO/error-budget evaluation that can page and downgrade
// session health. Nil (on Config.Quality) disables the layer entirely —
// the hot path then pays nothing for it.
type QualityConfig struct {
	// Window is the sliding-window span in epochs; ≤ 0 means 600
	// (10 minutes at 1 Hz).
	Window int
	// Sigma is the assumed 1σ pseudo-range measurement noise in meters
	// for the χ² consistency test; ≤ 0 means 5. The default is
	// deliberately above the 2 m thermal noise: the scenario's
	// elevation-dependent multipath and coherent iono/tropo model
	// remainders put the effective per-observation error near 4–5 m, and
	// 5 m yields a ≈ 97.6% clean-sky pass rate while a 10 m burst still
	// collapses it below 30%.
	Sigma float64
	// Objectives are the SLOs evaluated per session; nil means
	// slo.DefaultObjectives().
	Objectives []slo.Objective
	// EvalEvery is the snapshot-publication cadence in epochs; ≤ 0
	// means 64. Session and shard snapshots are published only at
	// epochs where (epoch+1) % EvalEvery == 0, which is what keeps the
	// hot path amortized allocation-free AND makes fleet digests
	// byte-identical for any worker count (every worker layout
	// publishes at the same epoch boundaries).
	EvalEvery int
}

// withDefaults resolves the zero values without mutating the caller's
// struct.
func (qc QualityConfig) withDefaults() QualityConfig {
	if qc.Window <= 0 {
		qc.Window = 600
	}
	if qc.Sigma <= 0 {
		qc.Sigma = 5
	}
	if qc.Objectives == nil {
		qc.Objectives = slo.DefaultObjectives()
	}
	if qc.EvalEvery <= 0 {
		qc.EvalEvery = 64
	}
	return qc
}

// sessionQuality is one session's quality state: window, SLO evaluator,
// the last sample (re-read by the shard window), and the lock-free
// publication cell Engine.Quality reads from any goroutine.
type sessionQuality struct {
	sigma     float64
	evalEvery uint64
	win       *quality.Window
	eval      *slo.Evaluator
	last      quality.Sample
	pub       atomic.Pointer[sessionQualitySnap]
}

// sessionQualitySnap is the immutable published snapshot of one session.
type sessionQualitySnap struct {
	Window quality.Snapshot
	SLO    []slo.Counters
	Worst  slo.State
}

// observeQuality folds one epoch's sample into the session's window and
// SLO evaluator, applies the SLO-driven health downgrade, and publishes
// a snapshot at EvalEvery boundaries. Allocation-free except at those
// boundaries (two small allocations per EvalEvery epochs).
func (s *session) observeQuality(sample quality.Sample) {
	q := s.qual
	if q == nil {
		return
	}
	q.last = sample
	q.win.Observe(sample)
	q.eval.Observe(&sample)
	// A paging objective is evidence the session is quietly serving bad
	// solutions: force at least Degraded so /healthz, the state gauges
	// and downstream consumers see it even though individual fixes look
	// clean. Worse states (coasting/quarantined/failed) are left alone.
	if s.state == StateHealthy && q.eval.Worst() == slo.StatePage {
		s.setState(StateDegraded)
		s.m.sloDowngrades.Inc()
	}
	if (sample.Epoch+1)%q.evalEvery == 0 {
		snap := &sessionQualitySnap{
			SLO:   make([]slo.Counters, len(q.eval.Objectives())),
			Worst: q.eval.Worst(),
		}
		q.win.SnapshotInto(&snap.Window)
		q.eval.CountersInto(snap.SLO)
		q.pub.Store(snap)
	}
}

// qualityMetrics is the engine-level SLO/quality instrument set,
// refreshed on every Engine.Quality call (the admin status and metrics
// paths both go through it).
type qualityMetrics struct {
	states []*telemetry.Gauge // per objective: 0 ok, 1 warn, 2 page
	fast   []*telemetry.Gauge
	slow   []*telemetry.Gauge
	budget []*telemetry.Gauge
	rmsP99 *telemetry.Gauge
	avail  *telemetry.Gauge
	chi2   *telemetry.Gauge
	worst  *telemetry.Gauge
}

func newQualityMetrics(reg *telemetry.Registry, objs []slo.Objective) *qualityMetrics {
	qm := &qualityMetrics{
		rmsP99: reg.Gauge("engine_quality_fleet_rms_p99_meters",
			"Fleet-wide p99 post-fit residual RMS over the quality window"),
		avail: reg.Gauge("engine_quality_fleet_availability",
			"Fleet-wide fix availability over the quality window"),
		chi2: reg.Gauge("engine_quality_fleet_chi2_pass_rate",
			"Fleet-wide chi-square consistency pass rate over the quality window"),
		worst: reg.Gauge("engine_slo_worst_state",
			"Most severe SLO alert state across all objectives and sessions (0 ok, 1 warn, 2 page)"),
	}
	for _, o := range objs {
		l := telemetry.Label{Key: "objective", Value: o.Name}
		qm.states = append(qm.states, reg.Gauge("engine_slo_state",
			"Objective alert state (0 ok, 1 warn, 2 page)", l))
		qm.fast = append(qm.fast, reg.Gauge("engine_slo_fast_burn",
			"Fast-window error-budget burn rate (1 = sustainable)", l))
		qm.slow = append(qm.slow, reg.Gauge("engine_slo_slow_burn",
			"Slow-window error-budget burn rate (1 = sustainable)", l))
		qm.budget = append(qm.budget, reg.Gauge("engine_slo_budget_remaining",
			"Fraction of the slow-window error budget remaining", l))
	}
	return qm
}

// SessionQuality is one session's entry in the fleet's worst-sessions
// ranking.
type SessionQuality struct {
	Receiver int            `json:"receiver"`
	Worst    slo.State      `json:"worst"`
	Digest   quality.Digest `json:"digest"`
}

// ShardQuality is one shard's window digest. Shard composition depends
// on the worker count, so this section is informational and explicitly
// NOT covered by the determinism guarantee (everything else in
// FleetQuality is).
type ShardQuality struct {
	Shard  int            `json:"shard"`
	Digest quality.Digest `json:"digest"`
}

// FleetQuality is the consolidated quality/SLO verdict Engine.Quality
// assembles from the published per-session snapshots.
type FleetQuality struct {
	Enabled bool      `json:"enabled"`
	Worst   slo.State `json:"worst"`
	// Objectives carries one evaluated status per configured SLO, with
	// counters merged across sessions in receiver order.
	Objectives []slo.Status `json:"objectives,omitempty"`
	// Window is the merged fleet window (mergeable raw form); Digest is
	// its reduction.
	Window quality.Snapshot `json:"window"`
	Digest quality.Digest   `json:"digest"`
	// Sessions ranks the worst sessions (most severe SLO state first,
	// then highest p99 RMS).
	Sessions []SessionQuality `json:"worst_sessions,omitempty"`
	// Shards holds per-shard digests; see ShardQuality for the
	// determinism caveat.
	Shards []ShardQuality `json:"shards,omitempty"`
}

// QualityEnabled reports whether the quality layer is configured.
func (e *Engine) QualityEnabled() bool { return e.qcfg != nil }

// Quality assembles the fleet quality/SLO verdict from the snapshots
// each session published at the last EvalEvery boundary, merging in
// receiver order so the result is bit-identical for any worker count
// (Shards excepted — see ShardQuality). topK bounds the worst-sessions
// list (≤ 0 means 5). Safe to call from any goroutine while a run is in
// flight; it also refreshes the engine_slo_* and engine_quality_*
// gauges.
func (e *Engine) Quality(topK int) *FleetQuality {
	if e.qcfg == nil {
		return &FleetQuality{}
	}
	if topK <= 0 {
		topK = 5
	}
	objs := e.qcfg.Objectives
	fq := &FleetQuality{Enabled: true}
	merged := make([]slo.Counters, len(objs))
	sessions := make([]SessionQuality, 0, len(e.sessions))
	for _, s := range e.sessions {
		snap := s.qual.pub.Load()
		if snap == nil {
			continue
		}
		fq.Window.Merge(&snap.Window)
		for k := range merged {
			merged[k].Merge(snap.SLO[k])
		}
		sessions = append(sessions, SessionQuality{
			Receiver: s.recv,
			Worst:    snap.Worst,
			Digest:   snap.Window.Digest(),
		})
	}
	fq.Digest = fq.Window.Digest()
	fq.Objectives = make([]slo.Status, len(objs))
	for k, o := range objs {
		fq.Objectives[k] = o.Status(merged[k])
		if st := fq.Objectives[k].State; st > fq.Worst {
			fq.Worst = st
		}
	}
	sort.SliceStable(sessions, func(i, j int) bool {
		a, b := sessions[i], sessions[j]
		if a.Worst != b.Worst {
			return a.Worst > b.Worst
		}
		ap, bp := float64(a.Digest.RMSP99), float64(b.Digest.RMSP99)
		an, bn := !math.IsNaN(ap), !math.IsNaN(bp)
		if an != bn {
			return an
		}
		if an && ap != bp {
			return ap > bp
		}
		return a.Receiver < b.Receiver
	})
	if len(sessions) > topK {
		sessions = sessions[:topK]
	}
	fq.Sessions = sessions
	for _, sh := range e.shards {
		if snap := sh.qpub.Load(); snap != nil {
			fq.Shards = append(fq.Shards, ShardQuality{Shard: sh.id, Digest: snap.Digest()})
		}
	}
	e.publishQualityMetrics(fq)
	return fq
}

// publishQualityMetrics pushes the assembled verdict into the gauges.
func (e *Engine) publishQualityMetrics(fq *FleetQuality) {
	qm := e.qm
	if qm == nil {
		return
	}
	qm.worst.Set(float64(fq.Worst))
	qm.rmsP99.Set(float64(fq.Digest.RMSP99))
	qm.avail.Set(float64(fq.Digest.Availability))
	qm.chi2.Set(float64(fq.Digest.Chi2PassRate))
	for k, st := range fq.Objectives {
		qm.states[k].Set(float64(st.State))
		qm.fast[k].Set(st.FastBurn)
		qm.slow[k].Set(st.SlowBurn)
		qm.budget[k].Set(st.BudgetRemaining)
	}
}
