package engine

import (
	"fmt"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/fault"
	"gpsdl/internal/geo"
	"gpsdl/internal/nmea"
	"gpsdl/internal/scenario"
)

// SessionState is a session's health: Healthy fixes come from a clean
// primary solve; Degraded fixes needed a fallback solver, a RAIM
// exclusion, or carry an unresolved integrity fault; Coasting fixes hold
// the last good position on the clock model because the sky (fewer than
// 4 satellites, or no solver converging) cannot support a solve.
type SessionState uint8

// Session health states, in order of increasing trouble.
const (
	StateHealthy SessionState = iota
	StateDegraded
	StateCoasting
)

// String returns the state's /healthz name.
func (st SessionState) String() string {
	switch st {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateCoasting:
		return "coasting"
	default:
		return "unknown"
	}
}

// Receiver-position plausibility band for the warm-start predictor feed:
// anything outside [Earth surface − 1000 km, +1000 km] is a poisoned
// solve (gross fault) that must not recalibrate the clock model.
const (
	minPlausibleNorm = 5.4e6
	maxPlausibleNorm = 7.4e6
)

// session is one receiver's complete state: scenario generator, fault
// injector, clock predictor, solver fallback chain, health state, and the
// reusable buffers that keep the steady-state step allocation-free. A
// session is owned by exactly one shard and never touched concurrently.
type session struct {
	recv  int
	shard int
	step_ float64 // epoch spacing (cfg.Step); step is the method

	gen   *scenario.Generator
	inj   *fault.Injector // nil when the run is fault-free
	pred  clock.Predictor
	warm  *core.NRSolver // feeds the predictor, gpsserve-style
	chain *core.FallbackChain
	sink  FixSink
	m     *shardMetrics

	state    SessionState
	lastGood core.Solution // most recent non-suspect fix, for coasting
	haveGood bool

	obs  []core.Observation // reused epoch conversion buffer
	fobs []scenario.SatObs  // reused faulted-observation buffer
	fev  []fault.Event      // reused per-epoch fault-event buffer
	buf  []byte             // reused NMEA sentence buffer
	pre  []scenario.Epoch   // optional pregenerated epochs
}

// newSession builds receiver r's session. Station templates are assigned
// round-robin and each receiver draws from its own seed stream Seed+r;
// the fault injector likewise uses FaultSeed+r so burst noise is distinct
// but reproducible per receiver.
func newSession(cfg Config, r, shardID int, m *shardMetrics, cm *chainMetrics) (*session, error) {
	st := cfg.Stations[r%len(cfg.Stations)]
	gcfg := scenario.DefaultConfig(cfg.Seed + int64(r))
	gcfg.Step = cfg.Step
	gcfg.CodeOnly = true // the fix path needs pseudoranges only
	var opts []scenario.Option
	if cfg.SessionOptions != nil {
		opts = cfg.SessionOptions(r)
	}
	s := &session{
		recv:  r,
		shard: shardID,
		step_: cfg.Step,
		gen:   scenario.NewGenerator(st, gcfg, opts...),
		pred:  eval.DefaultPredictor(st.Clock),
		sink:  cfg.Sink,
		m:     m,
		state: StateHealthy,
	}
	if len(cfg.Faults) > 0 {
		s.inj = fault.NewInjector(cfg.Faults, cfg.FaultSeed+int64(r))
	}
	sc := &core.Scratch{}
	s.warm = &core.NRSolver{Scratch: sc}
	chain, err := newChain(cfg.Solver, s.pred, sc)
	if err != nil {
		return nil, err
	}
	chain.EnableRAIM(0, cm.raim)
	chain.SetMetrics(cm.fallback)
	s.chain = chain
	m.stateGauge(StateHealthy).Inc()
	return s, nil
}

// pregenerate caches epochs [0, n) so step skips scenario generation.
// Faults are NOT baked in here: the injector runs inside step, so the
// same pregenerated epochs serve any fault program.
func (s *session) pregenerate(n int) error {
	pre := make([]scenario.Epoch, n)
	for i := 0; i < n; i++ {
		e, err := s.gen.EpochAt(float64(i) * s.step_)
		if err != nil {
			return fmt.Errorf("engine: receiver %d epoch %d: %w", s.recv, i, err)
		}
		pre[i] = e
	}
	s.pre = pre
	return nil
}

// step runs one epoch end to end: obtain observations, inject faults,
// warm-start NR to feed the clock predictor, fallback-chain solve (or
// coast), DOP, NMEA, sink. With pregenerated epochs the whole body is
// allocation-free in steady state.
func (s *session) step(i int) {
	var ep scenario.Epoch
	if s.pre != nil {
		if i >= len(s.pre) {
			s.m.epochErrors.Inc()
			s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, State: s.state, Err: errPastPregenerated})
			return
		}
		ep = s.pre[i]
	} else {
		var err error
		ep, err = s.gen.EpochAt(float64(i) * s.step_)
		if err != nil {
			s.m.epochErrors.Inc()
			s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, State: s.state, Err: err})
			return
		}
	}
	satObs := ep.Obs
	var fev []fault.Event
	if s.inj != nil {
		s.fobs, s.fev = s.inj.Apply(ep.T, ep.Obs, s.fobs[:0], s.fev[:0])
		satObs, fev = s.fobs, s.fev
		s.m.faultEvents.Add(uint64(len(fev)))
	}
	obs := s.obs[:0]
	for j := range satObs {
		o := &satObs[j]
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	s.obs = obs
	// Feed the predictor from a warm NR solve (Section 4.2's "use the
	// clock bias calculated by the NR method"), exactly as gpsserve does —
	// but gate on position plausibility so a grossly faulted epoch cannot
	// poison the clock model the coasting path depends on.
	if nrSol, err := s.warm.Solve(ep.T, obs); err == nil {
		if n := nrSol.Pos.Norm(); n >= minPlausibleNorm && n <= maxPlausibleNorm {
			s.pred.Observe(clock.Fix{T: ep.T, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}
	}
	start := time.Now()
	res, err := s.chain.Solve(ep.T, obs)
	s.m.solveSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.coastOrFail(i, ep.T, len(obs), fev, err)
		return
	}
	if !res.Suspect {
		s.lastGood = res.Solution
		s.haveGood = true
	}
	if res.Degraded() {
		s.setState(StateDegraded)
	} else {
		s.setState(StateHealthy)
	}
	hdop := 0.0
	if dop, derr := core.DOPFromObs(res.Solution.Pos, obs); derr == nil {
		hdop = dop.HDOP
	}
	fix := nmea.Fix{
		TimeOfDay: ep.T,
		Pos:       res.Solution.Pos.ToLLA(),
		Quality:   nmea.QualityGPS,
		NumSats:   len(obs),
		HDOP:      hdop,
	}
	buf := nmea.AppendGGA(s.buf[:0], fix)
	ggaLen := len(buf)
	buf = nmea.AppendRMC(buf, fix)
	s.buf = buf
	s.m.fixes.Inc()
	s.emit(FixEvent{
		Receiver: s.recv, Shard: s.shard, Epoch: i, T: ep.T,
		Sol: res.Solution, HDOP: hdop, Sats: len(obs),
		Solver: res.Solver, Excluded: res.Excluded, Suspect: res.Suspect,
		State: s.state, Faults: fev,
		GGA: buf[:ggaLen], RMC: buf[ggaLen:],
	})
}

// coastOrFail handles an epoch no solver could fix. With a previous good
// fix the session coasts: position-hold on lastGood plus the clock
// model's extrapolated bias, emitted as a QualityEstimated fix so
// downstream consumers see a flagged dead-reckoning solution instead of
// silence or garbage. Without one (cold start under fault) the epoch is
// reported failed.
func (s *session) coastOrFail(i int, t float64, sats int, fev []fault.Event, err error) {
	if !s.haveGood {
		s.setState(StateCoasting)
		s.m.solveFailures.Inc()
		s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, T: t,
			Sats: sats, State: s.state, Faults: fev, Err: err})
		return
	}
	s.setState(StateCoasting)
	sol := s.lastGood
	if bias, perr := s.pred.PredictBias(t); perr == nil {
		sol.ClockBias = bias * geo.SpeedOfLight
	}
	fix := nmea.Fix{
		TimeOfDay: t,
		Pos:       sol.Pos.ToLLA(),
		Quality:   nmea.QualityEstimated,
		NumSats:   sats,
	}
	buf := nmea.AppendGGA(s.buf[:0], fix)
	ggaLen := len(buf)
	buf = nmea.AppendRMC(buf, fix)
	s.buf = buf
	s.m.coastFixes.Inc()
	s.emit(FixEvent{
		Receiver: s.recv, Shard: s.shard, Epoch: i, T: t,
		Sol: sol, Sats: sats, Coast: true,
		Solver: "coast", Excluded: -1,
		State: s.state, Faults: fev,
		GGA: buf[:ggaLen], RMC: buf[ggaLen:],
	})
}

// setState moves the health state machine, keeping the shard's per-state
// session gauges consistent.
func (s *session) setState(next SessionState) {
	if s.state == next {
		return
	}
	s.m.stateGauge(s.state).Dec()
	s.m.stateGauge(next).Inc()
	s.state = next
}

func (s *session) emit(e FixEvent) {
	if s.sink != nil {
		s.sink(e)
	}
}

var errPastPregenerated = fmt.Errorf("engine: epoch index past pregenerated range")
