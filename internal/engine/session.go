package engine

import (
	"fmt"
	"time"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/eval"
	"gpsdl/internal/geo"
	"gpsdl/internal/nmea"
	"gpsdl/internal/scenario"
)

// session is one receiver's complete state: scenario generator, clock
// predictor, solvers, and the reusable buffers that keep the steady-state
// step allocation-free. A session is owned by exactly one shard and never
// touched concurrently.
type session struct {
	recv  int
	shard int
	step_ float64 // epoch spacing (cfg.Step); step is the method

	gen    *scenario.Generator
	pred   clock.Predictor
	warm   *core.NRSolver // feeds the predictor, gpsserve-style
	solver core.Solver
	sink   FixSink
	m      *shardMetrics

	obs []core.Observation // reused epoch conversion buffer
	buf []byte             // reused NMEA sentence buffer
	pre []scenario.Epoch   // optional pregenerated epochs
}

// newSession builds receiver r's session. Station templates are assigned
// round-robin and each receiver draws from its own seed stream Seed+r.
func newSession(cfg Config, r, shardID int, m *shardMetrics) (*session, error) {
	st := cfg.Stations[r%len(cfg.Stations)]
	gcfg := scenario.DefaultConfig(cfg.Seed + int64(r))
	gcfg.Step = cfg.Step
	gcfg.CodeOnly = true // the fix path needs pseudoranges only
	var opts []scenario.Option
	if cfg.SessionOptions != nil {
		opts = cfg.SessionOptions(r)
	}
	s := &session{
		recv:  r,
		shard: shardID,
		step_: cfg.Step,
		gen:   scenario.NewGenerator(st, gcfg, opts...),
		pred:  eval.DefaultPredictor(st.Clock),
		sink:  cfg.Sink,
		m:     m,
	}
	sc := &core.Scratch{}
	s.warm = &core.NRSolver{Scratch: sc}
	solver, err := newSolver(cfg.Solver, s.pred, sc)
	if err != nil {
		return nil, err
	}
	s.solver = solver
	return s, nil
}

// pregenerate caches epochs [0, n) so step skips scenario generation.
func (s *session) pregenerate(n int) error {
	pre := make([]scenario.Epoch, n)
	for i := 0; i < n; i++ {
		e, err := s.gen.EpochAt(float64(i) * s.step_)
		if err != nil {
			return fmt.Errorf("engine: receiver %d epoch %d: %w", s.recv, i, err)
		}
		pre[i] = e
	}
	s.pre = pre
	return nil
}

// step runs one epoch end to end: obtain observations, warm-start NR to
// feed the clock predictor, main solve, DOP, NMEA, sink. With
// pregenerated epochs the whole body is allocation-free in steady state.
func (s *session) step(i int) {
	var ep scenario.Epoch
	if s.pre != nil {
		if i >= len(s.pre) {
			s.m.epochErrors.Inc()
			s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, Err: errPastPregenerated})
			return
		}
		ep = s.pre[i]
	} else {
		var err error
		ep, err = s.gen.EpochAt(float64(i) * s.step_)
		if err != nil {
			s.m.epochErrors.Inc()
			s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, Err: err})
			return
		}
	}
	obs := s.obs[:0]
	for j := range ep.Obs {
		o := &ep.Obs[j]
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	s.obs = obs
	// Feed the predictor from a warm NR solve (Section 4.2's "use the
	// clock bias calculated by the NR method"), exactly as gpsserve does.
	if nrSol, err := s.warm.Solve(ep.T, obs); err == nil {
		s.pred.Observe(clock.Fix{T: ep.T, Bias: nrSol.ClockBias / geo.SpeedOfLight})
	}
	start := time.Now()
	sol, err := s.solver.Solve(ep.T, obs)
	s.m.solveSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.m.solveFailures.Inc()
		s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, T: ep.T, Sats: len(obs), Err: err})
		return
	}
	hdop := 0.0
	if dop, derr := core.DOPFromObs(sol.Pos, obs); derr == nil {
		hdop = dop.HDOP
	}
	fix := nmea.Fix{
		TimeOfDay: ep.T,
		Pos:       sol.Pos.ToLLA(),
		Quality:   nmea.QualityGPS,
		NumSats:   len(obs),
		HDOP:      hdop,
	}
	buf := nmea.AppendGGA(s.buf[:0], fix)
	ggaLen := len(buf)
	buf = nmea.AppendRMC(buf, fix)
	s.buf = buf
	s.m.fixes.Inc()
	s.emit(FixEvent{
		Receiver: s.recv, Shard: s.shard, Epoch: i, T: ep.T,
		Sol: sol, HDOP: hdop, Sats: len(obs),
		GGA: buf[:ggaLen], RMC: buf[ggaLen:],
	})
}

func (s *session) emit(e FixEvent) {
	if s.sink != nil {
		s.sink(e)
	}
}

var errPastPregenerated = fmt.Errorf("engine: epoch index past pregenerated range")
