package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/epochcache"
	"gpsdl/internal/eval"
	"gpsdl/internal/fault"
	"gpsdl/internal/geo"
	"gpsdl/internal/nmea"
	"gpsdl/internal/quality"
	"gpsdl/internal/rng"
	"gpsdl/internal/scenario"
)

// SessionState is a session's health: Healthy fixes come from a clean
// primary solve; Degraded fixes needed a fallback solver, a RAIM
// exclusion, or carry an unresolved integrity fault; Coasting fixes hold
// the last good position on the clock model because the sky (fewer than
// 4 satellites, or no solver converging) cannot support a solve;
// Quarantined sessions panicked and sit in exponential backoff before
// the supervisor restarts them; Failed sessions exhausted their restart
// budget and are skipped for the rest of the run.
type SessionState uint8

// Session health states, in order of increasing trouble.
const (
	StateHealthy SessionState = iota
	StateDegraded
	StateCoasting
	StateQuarantined
	StateFailed
)

// String returns the state's /healthz name.
func (st SessionState) String() string {
	switch st {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateCoasting:
		return "coasting"
	case StateQuarantined:
		return "quarantined"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// stateFromName is String's inverse, for checkpoint restore. Unknown
// names (and the transient supervision states, which do not survive a
// restart) map to StateHealthy.
func stateFromName(name string) SessionState {
	switch name {
	case "degraded":
		return StateDegraded
	case "coasting":
		return StateCoasting
	default:
		return StateHealthy
	}
}

// Receiver-position plausibility band for the warm-start predictor feed:
// anything outside [Earth surface − 1000 km, +1000 km] is a poisoned
// solve (gross fault) that must not recalibrate the clock model.
const (
	minPlausibleNorm = 5.4e6
	maxPlausibleNorm = 7.4e6
)

// defaultJournalSigma is the χ² measurement sigma the flight journal
// assumes when the quality layer is off (matches QualityConfig.Sigma's
// default).
const defaultJournalSigma = 5.0

// session is one receiver's complete state: scenario generator, fault
// injector, clock predictor, solver fallback chain, health state, and the
// reusable buffers that keep the steady-state step allocation-free. A
// session is owned by exactly one shard and never touched concurrently.
type session struct {
	recv       int
	shard      int
	posInShard int     // index within the owning shard's session slice
	step_      float64 // epoch spacing (cfg.Step); step is the method
	station    string  // scenario station ID, echoed into checkpoints

	gen    *scenario.Generator
	inj    *fault.Injector // nil when the run is fault-free
	pred   clock.Predictor
	warm   *core.NRSolver // feeds the predictor, gpsserve-style
	chain  *core.FallbackChain
	probe  core.Solver  // cheap DLO used for half-open breaker probes
	solver string       // primary solver name, kept for restart
	sp     solverParams // DLG variant, weighting, shared path counters
	cm     *chainMetrics
	sink   FixSink
	m      *shardMetrics

	// C/N0-driven weighting and the disruption detector (Config.Weighting
	// and Config.Disruption). weighting maps CN0 → Observation.Sigma;
	// disrupt, when non-nil, scores innovations and inflates suspect σ.
	weighting bool
	disrupt   *core.DisruptionDetector

	state     SessionState
	lastGood  core.Solution // most recent non-suspect fix, for coasting
	lastGoodT float64       // receiver time of lastGood
	haveGood  bool

	// Circuit breaker: consecFails counts consecutive full-chain
	// failures; at breakerK the breaker opens. While open, every
	// probeEvery-th epoch runs a cheap DLO probe (and still falls through
	// to the full chain, so default-tuned output is bit-identical to an
	// engine without a breaker); the other open epochs coast without
	// solving. Any successful solve or probe closes the breaker. All
	// bookkeeping is epoch-indexed, never wall-clock, so it is
	// deterministic for any worker count.
	breakerK   int
	probeEvery int
	consecFail int
	brkOpen    bool
	openEpochs int

	// Supervisor state: after a recovered panic the session is
	// quarantined until epoch quarUntil (exponential backoff in epochs),
	// then restarted; after restartBudget restarts it is failed for the
	// rest of the run.
	restartBudget int
	restarts      int
	quarUntil     int
	failed        bool

	// Checkpoint cell: refreshed by the owning shard every ckptEvery
	// epochs (0 = off) and read lock-free by Engine.Snapshot from any
	// goroutine. nextEpoch is shard-private bookkeeping for the exact
	// final snapshot.
	ckptEvery int
	ckpt      atomic.Pointer[checkpoint.Session]
	nextEpoch int

	// Quality/SLO layer (nil when Config.Quality is nil): sliding
	// window, objective evaluator and publication cell, all owned by
	// the shard goroutine that steps this session.
	qual *sessionQuality

	// Flight-journal state (nil when Config.JournalSink is nil),
	// owned by the shard goroutine.
	jq *sessionJournal

	obs  []core.Observation // reused epoch conversion buffer
	fobs []scenario.SatObs  // reused faulted-observation buffer
	fev  []fault.Event      // reused per-epoch fault-event buffer
	buf  []byte             // reused NMEA sentence buffer
	pre  []scenario.Epoch   // optional pregenerated epochs
}

// sessionSeed derives receiver r's seed from the base seed by double
// splitmix64 mixing. The old additive Seed+r derivation aliased across
// runs — (Seed 7, receiver 0) and (Seed 6, receiver 1) drew identical
// measurement streams, so fleet experiments with adjacent base seeds
// silently shared data. Mixing the base seed before adding r and
// finalizing again leaves no additive structure for any (seed, receiver)
// pair to collide through.
func sessionSeed(base int64, r int) int64 {
	return int64(rng.Mix64(rng.Mix64(uint64(base)) + uint64(r)))
}

// newSession builds receiver r's session. Station templates are assigned
// round-robin and each receiver draws from its own mixed seed stream (see
// sessionSeed); the fault injector's seed is mixed the same way so burst
// noise is distinct but reproducible per receiver. When the engine runs a
// shared epoch cache, its constellation and the cache itself are
// prepended to the generator options; caller-supplied SessionOptions come
// after, so a custom WithConstellation still wins (and, by pointer
// mismatch, safely disables the cache for that session).
func newSession(cfg Config, r, shardID int, m *shardMetrics, cm *chainMetrics, cache *epochcache.Cache) (*session, error) {
	st := cfg.Stations[r%len(cfg.Stations)]
	gcfg := scenario.DefaultConfig(sessionSeed(cfg.Seed, r))
	gcfg.Step = cfg.Step
	gcfg.CodeOnly = true // the fix path needs pseudoranges only
	var opts []scenario.Option
	if cache != nil {
		opts = append(opts,
			scenario.WithConstellation(cache.Constellation()),
			scenario.WithEpochCache(cache))
	}
	if cfg.SessionOptions != nil {
		opts = append(opts, cfg.SessionOptions(r)...)
	}
	variant, err := parseDLGVariant(cfg.DLGVariant)
	if err != nil {
		return nil, err
	}
	s := &session{
		recv:    r,
		shard:   shardID,
		step_:   cfg.Step,
		station: st.ID,
		gen:     scenario.NewGenerator(st, gcfg, opts...),
		pred:    eval.DefaultPredictor(st.Clock),
		solver:  cfg.Solver,
		sp: solverParams{
			variant: variant,
			// Disruption acts by inflating σ, so it needs the weighted
			// solve paths even when C/N0 weighting itself is off.
			weighted: cfg.Weighting || cfg.Disruption,
			gls:      cm.gls,
		},
		weighting:     cfg.Weighting,
		cm:            cm,
		sink:          cfg.Sink,
		m:             m,
		state:         StateHealthy,
		breakerK:      cfg.BreakerThreshold,
		probeEvery:    cfg.BreakerProbeEvery,
		restartBudget: cfg.RestartBudget,
		ckptEvery:     cfg.CheckpointEvery,
	}
	prog := cfg.Faults
	if cfg.ReceiverFaults != nil {
		if p := cfg.ReceiverFaults(r); p != nil {
			prog = p
		}
	}
	if len(prog) > 0 {
		s.inj = fault.NewInjector(prog, sessionSeed(cfg.FaultSeed, r))
	}
	if cfg.Disruption {
		s.disrupt = &core.DisruptionDetector{Metrics: cm.disrupt}
	}
	if err := s.buildSolvers(); err != nil {
		return nil, err
	}
	m.stateGauge(StateHealthy).Inc()
	return s, nil
}

// buildSolvers wires a fresh scratch, warm-start NR, fallback chain and
// breaker probe. newSession calls it once; restart calls it again after
// a panic, discarding any solver state the panic may have poisoned while
// keeping the expensive-to-recalibrate predictor.
func (s *session) buildSolvers() error {
	sc := &core.Scratch{}
	s.warm = &core.NRSolver{Scratch: sc}
	if s.sp.weighted {
		// The warm-start feed honors the same weights as the chain, so a
		// down-weighted suspect cannot drag the clock model either.
		s.warm.Weight = core.SigmaWeight
	}
	chain, err := newChain(s.solver, s.pred, sc, s.sp)
	if err != nil {
		return err
	}
	chain.EnableRAIM(0, s.cm.raim)
	chain.SetMetrics(s.cm.fallback)
	s.chain = chain
	dlo := core.NewDLOSolver(s.pred)
	dlo.Scratch = sc
	s.probe = dlo
	return nil
}

// restart rebuilds the session after a recovered panic. Solver state and
// reusable buffers are discarded (the panic may have left them torn);
// the clock predictor, generator, injector and last good fix carry over —
// losing the predictor would force exactly the NR re-warm-up the paper's
// Section 4.2 prices as the expensive case.
func (s *session) restart() {
	s.buildSolvers() // error impossible: the solver name was validated at construction
	s.obs, s.fobs, s.fev, s.buf = nil, nil, nil, nil
	s.consecFail = 0
	if s.brkOpen {
		s.brkOpen = false
		s.m.breakerOpenSessions.Dec()
	}
}

// step runs one epoch end to end: obtain observations, inject faults,
// warm-start NR to feed the clock predictor, fallback-chain solve (or
// coast), DOP, NMEA, sink. With pregenerated epochs the whole body is
// allocation-free in steady state.
func (s *session) step(i int) {
	var ep scenario.Epoch
	if s.pre != nil {
		if i >= len(s.pre) {
			s.m.epochErrors.Inc()
			s.observeQuality(quality.Sample{Epoch: uint64(i)})
			s.journalMiss(i)
			s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, State: s.state, Err: errPastPregenerated})
			return
		}
		ep = s.pre[i]
	} else {
		var err error
		ep, err = s.gen.EpochAt(float64(i) * s.step_)
		if err != nil {
			s.m.epochErrors.Inc()
			s.observeQuality(quality.Sample{Epoch: uint64(i)})
			s.journalMiss(i)
			s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, State: s.state, Err: err})
			return
		}
	}
	satObs := ep.Obs
	var fev []fault.Event
	if s.inj != nil {
		s.fobs, s.fev = s.inj.Apply(ep.T, ep.Obs, s.fobs[:0], s.fev[:0])
		satObs, fev = s.fobs, s.fev
		s.m.faultEvents.Add(uint64(len(fev)))
	}
	obs := s.obs[:0]
	for j := range satObs {
		o := &satObs[j]
		co := core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation}
		if s.weighting && o.CN0 > 0 {
			co.Sigma = core.SigmaFromCN0(o.CN0)
		}
		obs = append(obs, co)
	}
	s.obs = obs
	// Disruption scoring: innovations against the last good fix (with the
	// clock model's extrapolated bias where available). Suspects get their
	// σ inflated before the warm solve and the chain see them, so neither
	// the clock feed nor the fix trusts a spoofed satellite.
	disrupted := false
	if s.disrupt != nil && s.haveGood {
		ref := s.lastGood
		if bias, perr := s.pred.PredictBias(ep.T); perr == nil {
			ref.ClockBias = bias * geo.SpeedOfLight
		}
		disrupted = s.disrupt.Downweight(ref, obs) > 0
	}
	// Feed the predictor from a warm NR solve (Section 4.2's "use the
	// clock bias calculated by the NR method"), exactly as gpsserve does —
	// but gate on position plausibility so a grossly faulted epoch cannot
	// poison the clock model the coasting path depends on.
	if nrSol, err := s.warm.Solve(ep.T, obs); err == nil {
		if n := nrSol.Pos.Norm(); n >= minPlausibleNorm && n <= maxPlausibleNorm {
			s.pred.Observe(clock.Fix{T: ep.T, Bias: nrSol.ClockBias / geo.SpeedOfLight})
		}
	}
	start := time.Now()
	if s.brkOpen {
		s.openEpochs++
		if s.probeEvery > 1 && s.openEpochs%s.probeEvery != 0 {
			// Open breaker, not a probe epoch: coast without burning a
			// full fallback-chain attempt on a session that has failed
			// breakerK times in a row.
			s.m.breakerSkips.Inc()
			s.coastOrFail(i, ep.T, len(obs), fev, errBreakerOpen)
			return
		}
		// Half-open probe: one cheap DLO solve. Success closes the
		// breaker; either way the epoch falls through to the full chain,
		// so with the default probeEvery=1 the fix stream is bit-identical
		// to an engine without a breaker.
		s.m.breakerProbes.Inc()
		if _, perr := s.probe.Solve(ep.T, obs); perr == nil {
			s.closeBreaker()
		}
	}
	res, err := s.chain.Solve(ep.T, obs)
	s.m.solveSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.consecFail++
		if !s.brkOpen && s.consecFail >= s.breakerK {
			s.brkOpen = true
			s.openEpochs = 0
			s.m.breakerOpens.Inc()
			s.m.breakerOpenSessions.Inc()
		}
		s.coastOrFail(i, ep.T, len(obs), fev, err)
		return
	}
	s.consecFail = 0
	if s.brkOpen {
		s.closeBreaker()
	}
	if !res.Suspect {
		s.lastGood = res.Solution
		s.lastGoodT = ep.T
		s.haveGood = true
	}
	if res.Degraded() || disrupted {
		s.setState(StateDegraded)
	} else {
		s.setState(StateHealthy)
	}
	hdop, pdop, dopOK := 0.0, 0.0, false
	if dop, derr := core.DOPFromObs(res.Solution.Pos, obs); derr == nil {
		hdop, pdop, dopOK = dop.HDOP, dop.PDOP, true
	}
	var fq core.FixQuality
	var clockInnov float64
	var clockOK bool
	if s.qual != nil || s.jq != nil {
		// Residuals are evaluated against the set the solver actually
		// used: RAIM's excluded satellite (if any) is skipped. The
		// journal wants the same evidence, so it shares this assessment
		// even when the quality layer is off (default sigma then).
		sigma := defaultJournalSigma
		if s.qual != nil {
			sigma = s.qual.sigma
		}
		fq = core.AssessFixExcluding(res.Solution, obs, res.Excluded, sigma)
		// Clock innovation: how far the solved clock bias sits from the
		// predictor's model (both in meters). A drifting predictor shows
		// up here long before it breaks the coasting path.
		if bias, perr := s.pred.PredictBias(ep.T); perr == nil {
			innov := res.Solution.ClockBias - bias*geo.SpeedOfLight
			if innov < 0 {
				innov = -innov
			}
			clockInnov, clockOK = innov, true
		}
	}
	if s.qual != nil {
		sample := quality.Sample{
			Epoch: uint64(i), FixOK: true,
			RMS: fq.ResidualRMS, RMSValid: fq.RMSValid,
			Chi2Pass: fq.Chi2Pass, Chi2Valid: fq.Chi2Valid,
			PDOP: pdop, HDOP: hdop, DOPValid: dopOK,
			ChainIndex: res.Index,
			Excluded:   res.Excluded >= 0,
			ClockInnov: clockInnov, ClockValid: clockOK,
		}
		s.observeQuality(sample)
	}
	s.journalFix(i, ep.T, &res, &fq, pdop, hdop, dopOK, clockInnov, clockOK, satObs)
	fix := nmea.Fix{
		TimeOfDay: ep.T,
		Pos:       res.Solution.Pos.ToLLA(),
		Quality:   nmea.QualityGPS,
		NumSats:   len(obs),
		HDOP:      hdop,
	}
	buf := nmea.AppendGGA(s.buf[:0], fix)
	ggaLen := len(buf)
	buf = nmea.AppendRMC(buf, fix)
	s.buf = buf
	s.m.fixes.Inc()
	s.emit(FixEvent{
		Receiver: s.recv, Shard: s.shard, Epoch: i, T: ep.T,
		Sol: res.Solution, HDOP: hdop, Sats: len(obs),
		Solver: res.Solver, Excluded: res.Excluded, Suspect: res.Suspect,
		State: s.state, Quality: fq, Faults: fev,
		GGA: buf[:ggaLen], RMC: buf[ggaLen:],
	})
}

// coastOrFail handles an epoch no solver could fix. With a previous good
// fix the session coasts: position-hold on lastGood plus the clock
// model's extrapolated bias, emitted as a QualityEstimated fix so
// downstream consumers see a flagged dead-reckoning solution instead of
// silence or garbage. Without one (cold start under fault) the epoch is
// reported failed.
func (s *session) coastOrFail(i int, t float64, sats int, fev []fault.Event, err error) {
	// Quality accounting: neither a coast nor a failure is a solved fix,
	// so both burn the availability budget and contribute no residuals.
	s.observeQuality(quality.Sample{Epoch: uint64(i)})
	if !s.haveGood {
		s.setState(StateCoasting)
		s.m.solveFailures.Inc()
		s.journalMiss(i)
		s.emit(FixEvent{Receiver: s.recv, Shard: s.shard, Epoch: i, T: t,
			Sats: sats, State: s.state, Faults: fev, Err: err})
		return
	}
	s.setState(StateCoasting)
	sol := s.lastGood
	if bias, perr := s.pred.PredictBias(t); perr == nil {
		sol.ClockBias = bias * geo.SpeedOfLight
	}
	fix := nmea.Fix{
		TimeOfDay: t,
		Pos:       sol.Pos.ToLLA(),
		Quality:   nmea.QualityEstimated,
		NumSats:   sats,
	}
	buf := nmea.AppendGGA(s.buf[:0], fix)
	ggaLen := len(buf)
	buf = nmea.AppendRMC(buf, fix)
	s.buf = buf
	s.m.coastFixes.Inc()
	s.journalCoast(i, sol)
	s.emit(FixEvent{
		Receiver: s.recv, Shard: s.shard, Epoch: i, T: t,
		Sol: sol, Sats: sats, Coast: true,
		Solver: "coast", Excluded: -1,
		State: s.state, Faults: fev,
		GGA: buf[:ggaLen], RMC: buf[ggaLen:],
	})
}

// setState moves the health state machine, keeping the shard's per-state
// session gauges consistent.
func (s *session) setState(next SessionState) {
	if s.state == next {
		return
	}
	s.m.stateGauge(s.state).Dec()
	s.m.stateGauge(next).Inc()
	s.state = next
}

// closeBreaker returns the circuit breaker to closed.
func (s *session) closeBreaker() {
	s.brkOpen = false
	s.consecFail = 0
	s.m.breakerOpenSessions.Dec()
}

func (s *session) emit(e FixEvent) {
	if s.sink != nil {
		s.sink(e)
	}
}

// snapshot builds this session's checkpoint record with next as the
// resume epoch. Only the owning shard (or a quiescent engine) may call
// it: it reads predictor and fix state without locks.
func (s *session) snapshot(next int) *checkpoint.Session {
	cs := &checkpoint.Session{
		Receiver: s.recv,
		Station:  s.station,
		State:    s.state.String(),
		HaveFix:  s.haveGood,
		Epoch:    next,
	}
	if s.haveGood {
		cs.LastFix = checkpoint.Fix{T: s.lastGoodT, Pos: s.lastGood.Pos, ClockBias: s.lastGood.ClockBias}
	}
	if sn, ok := s.pred.(clock.Snapshotter); ok {
		cs.Clock = sn.Snapshot()
	}
	return cs
}

// restore loads a checkpoint record: predictor calibration, last good
// fix, and health state. The transient supervision states are not
// restored — a fresh process gets a fresh restart budget.
func (s *session) restore(cs *checkpoint.Session) error {
	if cs.Station != s.station {
		return fmt.Errorf("engine: receiver %d checkpoint is for station %q, running %q", s.recv, cs.Station, s.station)
	}
	if cs.Clock.Kind != "" {
		sn, ok := s.pred.(clock.Snapshotter)
		if !ok {
			return fmt.Errorf("engine: receiver %d predictor %T cannot restore a clock snapshot", s.recv, s.pred)
		}
		if err := sn.Restore(cs.Clock); err != nil {
			return fmt.Errorf("engine: receiver %d: %w", s.recv, err)
		}
	}
	s.haveGood = cs.HaveFix
	if cs.HaveFix {
		s.lastGood = core.Solution{Pos: cs.LastFix.Pos, ClockBias: cs.LastFix.ClockBias}
		s.lastGoodT = cs.LastFix.T
	}
	s.setState(stateFromName(cs.State))
	s.nextEpoch = cs.Epoch
	return nil
}

var (
	errPastPregenerated   = fmt.Errorf("engine: epoch index past pregenerated range")
	errBreakerOpen        = fmt.Errorf("engine: circuit breaker open, solve skipped")
	errSessionQuarantined = fmt.Errorf("engine: session quarantined after panic")
	errSessionFailed      = fmt.Errorf("engine: session failed, restart budget exhausted")
)
