package engine

import (
	"context"
	"fmt"
	"math"
	"testing"

	"gpsdl/internal/scenario"
)

// collectExact runs a live-generating engine and returns each receiver's
// fix stream with full float64 bit fidelity (position and clock bias as
// hex bit patterns), so comparisons detect even 1-ULP divergence.
func collectExact(t *testing.T, receivers, workers, batch, epochs int, disableCache bool) [][]string {
	t.Helper()
	out := make([][]string, receivers)
	eng, err := New(Config{
		Receivers:         receivers,
		Workers:           workers,
		BatchSize:         batch,
		Seed:              42,
		DisableEpochCache: disableCache,
		Sink: func(e FixEvent) {
			if e.Err != nil {
				out[e.Receiver] = append(out[e.Receiver], fmt.Sprintf("%d:err:%v", e.Epoch, e.Err))
				return
			}
			out[e.Receiver] = append(out[e.Receiver], fmt.Sprintf("%d:%s:%x:%x:%x:%x",
				e.Epoch, e.Solver,
				math.Float64bits(e.Sol.Pos.X), math.Float64bits(e.Sol.Pos.Y),
				math.Float64bits(e.Sol.Pos.Z), math.Float64bits(e.Sol.ClockBias)))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEngineEpochCacheDeterminism is the tentpole's acceptance test: a
// live engine produces bit-identical per-receiver fix streams with the
// epoch cache on and off, at every worker count and batch shape.
func TestEngineEpochCacheDeterminism(t *testing.T) {
	const receivers, epochs = 5, 70
	ref := collectExact(t, receivers, 1, 32, epochs, true) // uncached reference
	for _, alt := range []struct {
		workers, batch int
		disable        bool
	}{
		{1, 32, false}, {3, 32, false}, {3, 1, false}, {5, 7, false},
		{3, 32, true}, // uncached at another worker count, for completeness
	} {
		got := collectExact(t, receivers, alt.workers, alt.batch, epochs, alt.disable)
		for r := 0; r < receivers; r++ {
			if len(got[r]) != len(ref[r]) {
				t.Fatalf("workers=%d batch=%d cacheOff=%v receiver %d: %d events, want %d",
					alt.workers, alt.batch, alt.disable, r, len(got[r]), len(ref[r]))
			}
			for i := range ref[r] {
				if got[r][i] != ref[r][i] {
					t.Fatalf("workers=%d batch=%d cacheOff=%v receiver %d event %d:\n  got  %s\n  want %s",
						alt.workers, alt.batch, alt.disable, r, i, got[r][i], ref[r][i])
				}
			}
		}
	}
}

// TestEngineEpochCacheUsed: the default (cache-on) live engine actually
// serves generation from shared snapshots — N receivers on one worker
// must propagate each epoch once, not N times.
func TestEngineEpochCacheUsed(t *testing.T) {
	eng, err := New(Config{Receivers: 4, Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if eng.cache == nil {
		t.Fatal("default engine has no epoch cache")
	}
	const epochs = 50
	if err := eng.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	st := eng.cache.Stats()
	if st.Misses != epochs {
		t.Errorf("cache misses = %d, want %d (one propagation per epoch)", st.Misses, epochs)
	}
	// 4 receivers × 50 epochs: the shard warm takes the miss, every
	// session lookup hits.
	if want := uint64(4 * epochs); st.Hits != want {
		t.Errorf("cache hits = %d, want %d", st.Hits, want)
	}
}

// TestSessionSeedAliasing is the regression test for the additive seed
// bug: with Seed+r derivation, engine(Seed 7) receiver 0 and
// engine(Seed 6) receiver 1 drew identical measurement streams whenever
// they shared a station template. The mixed derivation must give all
// four receivers distinct streams.
func TestSessionSeedAliasing(t *testing.T) {
	if sessionSeed(7, 0) == sessionSeed(6, 1) {
		t.Fatal("sessionSeed preserves the additive (seed, receiver) aliasing")
	}
	run := func(seed int64) [][]string {
		// One station template so both receivers share it — the exact
		// configuration the additive scheme aliased.
		out := make([][]string, 2)
		eng, err := New(Config{
			Receivers: 2,
			Workers:   1,
			Seed:      seed,
			Stations:  scenario.Table51Stations()[:1],
			Sink: func(e FixEvent) {
				if e.Err == nil {
					out[e.Receiver] = append(out[e.Receiver], fmt.Sprintf("%x:%x",
						math.Float64bits(e.Sol.Pos.X), math.Float64bits(e.Sol.ClockBias)))
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(context.Background(), 40); err != nil {
			t.Fatal(err)
		}
		return out
	}
	s6, s7 := run(6), run(7)
	streams := [][]string{s6[0], s6[1], s7[0], s7[1]}
	names := []string{"seed6/r0", "seed6/r1", "seed7/r0", "seed7/r1"}
	for i := range streams {
		if len(streams[i]) == 0 {
			t.Fatalf("%s produced no fixes", names[i])
		}
		for j := i + 1; j < len(streams); j++ {
			if equalStrings(streams[i], streams[j]) {
				t.Errorf("%s and %s produced identical fix streams", names[i], names[j])
			}
		}
	}
	// Same (seed, receiver) must of course still reproduce exactly.
	again := run(6)
	if !equalStrings(s6[0], again[0]) || !equalStrings(s6[1], again[1]) {
		t.Error("re-running the same seed did not reproduce the fix streams")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
