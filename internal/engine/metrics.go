package engine

import "gpsdl/internal/telemetry"

// shardMetrics is one shard's instrument set, all labeled shard="N".
// Counters are engine-lifetime totals; the queue-depth gauge samples the
// job channel each time a batch is picked up; the session-state gauges
// track how many of the shard's sessions sit in each health state.
type shardMetrics struct {
	fixes            *telemetry.Counter
	coastFixes       *telemetry.Counter
	solveFailures    *telemetry.Counter
	epochErrors      *telemetry.Counter
	faultEvents      *telemetry.Counter
	solveSeconds     *telemetry.Histogram
	queueDepth       *telemetry.Gauge
	enqueued         *telemetry.Counter
	done             *telemetry.Counter
	aborted          *telemetry.Counter
	skippedTicks     *telemetry.Counter
	healthySessions  *telemetry.Gauge
	degradedSessions *telemetry.Gauge
	coastingSessions *telemetry.Gauge

	// Supervision instruments (PR 5).
	drained             *telemetry.Counter
	panics              *telemetry.Counter
	restarts            *telemetry.Counter
	quarantinedEpochs   *telemetry.Counter
	failedEpochs        *telemetry.Counter
	breakerOpens        *telemetry.Counter
	breakerProbes       *telemetry.Counter
	breakerSkips        *telemetry.Counter
	quarantinedSessions *telemetry.Gauge
	failedSessions      *telemetry.Gauge
	breakerOpenSessions *telemetry.Gauge

	// Quality/SLO instruments (PR 6).
	sloDowngrades *telemetry.Counter
}

func newShardMetrics(reg *telemetry.Registry, shard string) *shardMetrics {
	l := telemetry.Label{Key: "shard", Value: shard}
	return &shardMetrics{
		fixes: reg.Counter("engine_fixes_total",
			"Successful fixes produced", l),
		coastFixes: reg.Counter("engine_coast_fixes_total",
			"Dead-reckoning fixes emitted while coasting on the clock model", l),
		solveFailures: reg.Counter("engine_solve_failures_total",
			"Epochs where every fallback solver failed and no coast was possible", l),
		epochErrors: reg.Counter("engine_epoch_errors_total",
			"Epochs that failed before solving (generation errors)", l),
		faultEvents: reg.Counter("engine_fault_events_total",
			"Fault-injector events applied to this shard's epochs", l),
		solveSeconds: reg.Histogram("engine_solve_seconds",
			"Main-solver latency per fix",
			telemetry.ExponentialBuckets(1e-6, 2, 16), l),
		queueDepth: reg.Gauge("engine_queue_depth",
			"Jobs waiting in the shard queue, sampled at batch pickup", l),
		enqueued: reg.Counter("engine_batches_enqueued_total",
			"Batches handed to the shard queue", l),
		done: reg.Counter("engine_batches_done_total",
			"Batches fully processed", l),
		aborted: reg.Counter("engine_batches_aborted_total",
			"Batches cut short or drained after cancellation", l),
		skippedTicks: reg.Counter("engine_skipped_ticks_total",
			"Paced-mode ticks dropped because the shard queue was full", l),
		healthySessions: reg.Gauge("engine_sessions_healthy",
			"Sessions whose last fix was a clean primary solve", l),
		degradedSessions: reg.Gauge("engine_sessions_degraded",
			"Sessions on a fallback solver, post-exclusion, or suspect fix", l),
		coastingSessions: reg.Gauge("engine_sessions_coasting",
			"Sessions holding position on the clock model", l),
		drained: reg.Counter("engine_batches_drained_total",
			"Batches received after cancellation and returned unprocessed", l),
		panics: reg.Counter("engine_session_panics_total",
			"Panics recovered by the shard supervisor", l),
		restarts: reg.Counter("engine_session_restarts_total",
			"Session restarts performed by the supervisor after a panic", l),
		quarantinedEpochs: reg.Counter("engine_quarantined_epochs_total",
			"Epochs skipped while a session sat in post-panic backoff", l),
		failedEpochs: reg.Counter("engine_failed_epochs_total",
			"Epochs skipped on sessions whose restart budget is exhausted", l),
		breakerOpens: reg.Counter("engine_breaker_opens_total",
			"Circuit-breaker open transitions (K consecutive chain failures)", l),
		breakerProbes: reg.Counter("engine_breaker_probes_total",
			"Half-open probe solves attempted while a breaker was open", l),
		breakerSkips: reg.Counter("engine_breaker_skipped_solves_total",
			"Open-breaker epochs that coasted without attempting a solve", l),
		quarantinedSessions: reg.Gauge("engine_sessions_quarantined",
			"Sessions in post-panic backoff", l),
		failedSessions: reg.Gauge("engine_sessions_failed",
			"Sessions permanently failed after exhausting the restart budget", l),
		breakerOpenSessions: reg.Gauge("engine_breaker_open_sessions",
			"Sessions whose circuit breaker is currently open", l),
		sloDowngrades: reg.Counter("engine_slo_downgrades_total",
			"Healthy→degraded session transitions forced by a paging SLO", l),
	}
}

// stateGauge maps a session state to its census gauge.
func (m *shardMetrics) stateGauge(st SessionState) *telemetry.Gauge {
	switch st {
	case StateDegraded:
		return m.degradedSessions
	case StateCoasting:
		return m.coastingSessions
	case StateQuarantined:
		return m.quarantinedSessions
	case StateFailed:
		return m.failedSessions
	default:
		return m.healthySessions
	}
}
