package engine

import "gpsdl/internal/telemetry"

// shardMetrics is one shard's instrument set, all labeled shard="N".
// Counters are engine-lifetime totals; the queue-depth gauge samples the
// job channel each time a batch is picked up.
type shardMetrics struct {
	fixes         *telemetry.Counter
	solveFailures *telemetry.Counter
	epochErrors   *telemetry.Counter
	solveSeconds  *telemetry.Histogram
	queueDepth    *telemetry.Gauge
	enqueued      *telemetry.Counter
	done          *telemetry.Counter
	aborted       *telemetry.Counter
	skippedTicks  *telemetry.Counter
}

func newShardMetrics(reg *telemetry.Registry, shard string) *shardMetrics {
	l := telemetry.Label{Key: "shard", Value: shard}
	return &shardMetrics{
		fixes: reg.Counter("engine_fixes_total",
			"Successful fixes produced", l),
		solveFailures: reg.Counter("engine_solve_failures_total",
			"Epochs where the main solver returned an error", l),
		epochErrors: reg.Counter("engine_epoch_errors_total",
			"Epochs that failed before solving (generation errors)", l),
		solveSeconds: reg.Histogram("engine_solve_seconds",
			"Main-solver latency per fix",
			telemetry.ExponentialBuckets(1e-6, 2, 16), l),
		queueDepth: reg.Gauge("engine_queue_depth",
			"Jobs waiting in the shard queue, sampled at batch pickup", l),
		enqueued: reg.Counter("engine_batches_enqueued_total",
			"Batches handed to the shard queue", l),
		done: reg.Counter("engine_batches_done_total",
			"Batches fully processed", l),
		aborted: reg.Counter("engine_batches_aborted_total",
			"Batches cut short or drained after cancellation", l),
		skippedTicks: reg.Counter("engine_skipped_ticks_total",
			"Paced-mode ticks dropped because the shard queue was full", l),
	}
}
