package engine

import "gpsdl/internal/telemetry"

// shardMetrics is one shard's instrument set, all labeled shard="N".
// Counters are engine-lifetime totals; the queue-depth gauge samples the
// job channel each time a batch is picked up; the session-state gauges
// track how many of the shard's sessions sit in each health state.
type shardMetrics struct {
	fixes            *telemetry.Counter
	coastFixes       *telemetry.Counter
	solveFailures    *telemetry.Counter
	epochErrors      *telemetry.Counter
	faultEvents      *telemetry.Counter
	solveSeconds     *telemetry.Histogram
	queueDepth       *telemetry.Gauge
	enqueued         *telemetry.Counter
	done             *telemetry.Counter
	aborted          *telemetry.Counter
	skippedTicks     *telemetry.Counter
	healthySessions  *telemetry.Gauge
	degradedSessions *telemetry.Gauge
	coastingSessions *telemetry.Gauge
}

func newShardMetrics(reg *telemetry.Registry, shard string) *shardMetrics {
	l := telemetry.Label{Key: "shard", Value: shard}
	return &shardMetrics{
		fixes: reg.Counter("engine_fixes_total",
			"Successful fixes produced", l),
		coastFixes: reg.Counter("engine_coast_fixes_total",
			"Dead-reckoning fixes emitted while coasting on the clock model", l),
		solveFailures: reg.Counter("engine_solve_failures_total",
			"Epochs where every fallback solver failed and no coast was possible", l),
		epochErrors: reg.Counter("engine_epoch_errors_total",
			"Epochs that failed before solving (generation errors)", l),
		faultEvents: reg.Counter("engine_fault_events_total",
			"Fault-injector events applied to this shard's epochs", l),
		solveSeconds: reg.Histogram("engine_solve_seconds",
			"Main-solver latency per fix",
			telemetry.ExponentialBuckets(1e-6, 2, 16), l),
		queueDepth: reg.Gauge("engine_queue_depth",
			"Jobs waiting in the shard queue, sampled at batch pickup", l),
		enqueued: reg.Counter("engine_batches_enqueued_total",
			"Batches handed to the shard queue", l),
		done: reg.Counter("engine_batches_done_total",
			"Batches fully processed", l),
		aborted: reg.Counter("engine_batches_aborted_total",
			"Batches cut short or drained after cancellation", l),
		skippedTicks: reg.Counter("engine_skipped_ticks_total",
			"Paced-mode ticks dropped because the shard queue was full", l),
		healthySessions: reg.Gauge("engine_sessions_healthy",
			"Sessions whose last fix was a clean primary solve", l),
		degradedSessions: reg.Gauge("engine_sessions_degraded",
			"Sessions on a fallback solver, post-exclusion, or suspect fix", l),
		coastingSessions: reg.Gauge("engine_sessions_coasting",
			"Sessions holding position on the clock model", l),
	}
}

// stateGauge maps a session state to its census gauge.
func (m *shardMetrics) stateGauge(st SessionState) *telemetry.Gauge {
	switch st {
	case StateDegraded:
		return m.degradedSessions
	case StateCoasting:
		return m.coastingSessions
	default:
		return m.healthySessions
	}
}
