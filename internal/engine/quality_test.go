package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"gpsdl/internal/fault"
	"gpsdl/internal/slo"
	"gpsdl/internal/telemetry"
)

// qualityTestObjectives uses short windows so tests exercise full budget
// cycles in a few hundred epochs.
func qualityTestObjectives() []slo.Objective {
	return []slo.Objective{
		{Name: "availability", Kind: slo.KindAvailability, Target: 99, Window: 200},
		{Name: "p99_rms", Kind: slo.KindRMSQuantile, Target: 13, Quantile: 0.99, Window: 200},
		{Name: "chi2_pass", Kind: slo.KindChi2PassRate, Target: 90, Window: 200},
	}
}

// TestQualityDeterminism is the acceptance test of ISSUE 6: an identical
// scenario and seed must produce byte-identical SLO verdicts and window
// digests regardless of worker count and batch size. Per-shard digests
// are exempt (shard composition depends on the worker count) and are
// stripped before comparison.
func TestQualityDeterminism(t *testing.T) {
	prog, err := fault.ParseSpec(
		"burst:sigma=9,from=100,until=220;drop:prn=2,from=150,until=260;shrink:n=3,from=400,until=450")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers, batch int) []byte {
		eng, err := New(Config{
			Receivers: 6,
			Workers:   workers,
			BatchSize: batch,
			Seed:      42,
			Faults:    prog,
			FaultSeed: 1234,
			Quality: &QualityConfig{
				Window:     256,
				EvalEvery:  64,
				Objectives: qualityTestObjectives(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(context.Background(), 640); err != nil {
			t.Fatal(err)
		}
		fq := eng.Quality(6)
		fq.Shards = nil
		out, err := json.Marshal(fq)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1, 32)
	for _, cfg := range []struct{ workers, batch int }{{2, 32}, {3, 7}, {6, 1}} {
		got := run(cfg.workers, cfg.batch)
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d batch=%d: quality status diverged from workers=1\nref: %s\ngot: %s",
				cfg.workers, cfg.batch, ref, got)
		}
	}
}

// TestQualityPageOnDegradation proves the full coupling chain: a fault
// that degrades solution quality without killing fixes must burn the
// RMS/χ² error budgets, flip the SLO verdict ok → page, and force
// session health downgrades — while availability (which the fault does
// not touch) stays ok.
func TestQualityPageOnDegradation(t *testing.T) {
	// Burst sigma 10 m: residual RMS ≈ 10 m stays under the RAIM
	// threshold (15 m), so fixes remain "clean" — exactly the quiet
	// quality rot the SLO layer exists to catch.
	prog, err := fault.ParseSpec("burst:sigma=10,from=256,until=100000")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Receivers: 2,
		Workers:   2,
		Seed:      42,
		Faults:    prog,
		FaultSeed: 99,
		Quality: &QualityConfig{
			Window:     256,
			EvalEvery:  64,
			Objectives: qualityTestObjectives(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 256); err != nil {
		t.Fatal(err)
	}
	before := eng.Quality(5)
	if !before.Enabled {
		t.Fatal("quality layer not enabled")
	}
	if before.Worst != slo.StateOK {
		t.Fatalf("clean phase verdict = %v, want ok: %+v", before.Worst, before.Objectives)
	}
	if eng.Stats().SLODowngrades != 0 {
		t.Fatal("SLO downgrades before any degradation")
	}

	if err := eng.RunRange(context.Background(), 256, 1024); err != nil {
		t.Fatal(err)
	}
	after := eng.Quality(5)
	if after.Worst != slo.StatePage {
		t.Fatalf("degraded phase verdict = %v, want page: %+v", after.Worst, after.Objectives)
	}
	var avail, rms slo.Status
	for _, st := range after.Objectives {
		switch st.Name {
		case "availability":
			avail = st
		case "p99_rms":
			rms = st
		}
	}
	if avail.State != slo.StateOK {
		t.Errorf("availability paged under a noise-only fault: %+v", avail)
	}
	if rms.State != slo.StatePage {
		t.Errorf("p99_rms did not page: %+v", rms)
	}
	if rms.BudgetRemaining != 0 {
		t.Errorf("p99_rms budget remaining = %g under a saturating fault", rms.BudgetRemaining)
	}
	if got := float64(after.Digest.RMSP99); got < 13 {
		t.Errorf("fleet p99 RMS = %.2f m, want > 13 under sigma=10 burst", got)
	}
	if eng.Stats().SLODowngrades == 0 {
		t.Error("paging SLO forced no session health downgrades")
	}
}

// TestQualityAssembly checks the merged fleet structure: counts add up
// across sessions, worst-sessions ranking is bounded and sorted, and
// the per-shard section is populated.
func TestQualityAssembly(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng, err := New(Config{
		Receivers: 5,
		Workers:   2,
		Seed:      3,
		Registry:  reg,
		Quality: &QualityConfig{
			Window:     128,
			EvalEvery:  32,
			Objectives: qualityTestObjectives(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 256); err != nil {
		t.Fatal(err)
	}
	fq := eng.Quality(3)
	if !fq.Enabled {
		t.Fatal("not enabled")
	}
	// Each of the 5 sessions contributes a full 128-epoch window.
	if fq.Window.Count != 5*128 {
		t.Errorf("fleet window count = %d, want 640", fq.Window.Count)
	}
	if len(fq.Sessions) != 3 {
		t.Errorf("topK=3 returned %d sessions", len(fq.Sessions))
	}
	for i := 1; i < len(fq.Sessions); i++ {
		if fq.Sessions[i-1].Worst < fq.Sessions[i].Worst {
			t.Errorf("worst-sessions not sorted by severity: %+v", fq.Sessions)
		}
	}
	if len(fq.Shards) != 2 {
		t.Errorf("%d shard digests, want 2", len(fq.Shards))
	}
	var shardTotal uint64
	for _, sq := range fq.Shards {
		shardTotal += sq.Digest.Count
	}
	if shardTotal != 5*128 {
		t.Errorf("shard windows cover %d epochs, want 640", shardTotal)
	}
	if len(fq.Objectives) != 3 {
		t.Fatalf("%d objective statuses", len(fq.Objectives))
	}
	if av := float64(fq.Digest.Availability); av != 1 {
		t.Errorf("clean-run availability = %g", av)
	}
	if p99 := float64(fq.Digest.RMSP99); math.IsNaN(p99) || p99 <= 0 || p99 > 13 {
		t.Errorf("clean-run fleet p99 RMS = %g, want a small positive value", p99)
	}
	// A clean run must never page; a lingering warn is legitimate (alert
	// hysteresis holds a session at warn for Clear epochs after a
	// transient fast-burn spike).
	if fq.Worst == slo.StatePage {
		t.Errorf("clean run paged: %+v", fq.Objectives)
	}
	// Quality() refreshes the SLO gauges to match the verdict it returns.
	if g := reg.Gauge("engine_slo_worst_state", ""); g.Value() != float64(fq.Worst) {
		t.Errorf("worst-state gauge = %g, verdict %v", g.Value(), fq.Worst)
	}
	if g := reg.Gauge("engine_quality_fleet_availability", ""); g.Value() != 1 {
		t.Errorf("availability gauge = %g", g.Value())
	}
	// The whole structure must be JSON-marshalable (NaN-bearing digests
	// included) because /debug/status serves it directly.
	if _, err := json.Marshal(fq); err != nil {
		t.Errorf("marshal: %v", err)
	}
}

// TestQualityDisabled pins the off-switch: no Config.Quality, no quality
// state, zero-value FixQuality on events, and an empty verdict.
func TestQualityDisabled(t *testing.T) {
	sawQuality := false
	eng, err := New(Config{
		Receivers: 1,
		Workers:   1,
		Seed:      2,
		Sink: func(ev FixEvent) {
			if ev.Quality.RMSValid || ev.Quality.Chi2Valid {
				sawQuality = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 64); err != nil {
		t.Fatal(err)
	}
	if sawQuality {
		t.Error("FixEvent.Quality populated with the layer disabled")
	}
	if eng.QualityEnabled() {
		t.Error("QualityEnabled() with nil config")
	}
	fq := eng.Quality(5)
	if fq.Enabled || len(fq.Objectives) != 0 {
		t.Errorf("disabled Quality() = %+v", fq)
	}
}

// TestQualityEventFields checks that the per-fix quality evidence rides
// on FixEvent when the layer is on: clean epochs carry a valid,
// passing χ² verdict and a sub-sigma-scale residual RMS.
func TestQualityEventFields(t *testing.T) {
	var checked, passed int
	eng, err := New(Config{
		Receivers: 1,
		Workers:   1,
		Seed:      4,
		Quality:   &QualityConfig{Window: 64, EvalEvery: 16, Objectives: qualityTestObjectives()},
		Sink: func(ev FixEvent) {
			if ev.Err != nil || ev.Coast {
				return
			}
			if !ev.Quality.RMSValid {
				t.Errorf("epoch %d: fix without RMS (sats=%d)", ev.Epoch, ev.Sats)
				return
			}
			if ev.Quality.Chi2Valid {
				checked++
				if ev.Quality.Chi2Pass {
					passed++
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no χ²-checked fixes")
	}
	if float64(passed)/float64(checked) < 0.95 {
		t.Errorf("clean-scenario χ² pass rate %d/%d, want ≥ 95%%", passed, checked)
	}
}

// BenchmarkEngineSteadyStateQuality is BenchmarkEngineSteadyState with
// the quality layer enabled: the bar stays 0 allocs/op (publication
// allocs amortize to < 0.05/op at EvalEvery=64).
func BenchmarkEngineSteadyStateQuality(b *testing.B) {
	eng, err := New(Config{
		Receivers: 1, Workers: 1, Solver: "dlg", Seed: 11,
		Quality: &QualityConfig{},
	})
	if err != nil {
		b.Fatal(err)
	}
	const warm = 300
	pre := warm + b.N
	if err := eng.Pregenerate(pre); err != nil {
		b.Fatal(err)
	}
	s := eng.sessions[0]
	for i := 0; i < warm; i++ {
		s.step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(warm + i)
	}
}
