package wire

import (
	"sort"
	"sync"
	"sync/atomic"
)

// HubConfig sizes a Hub.
type HubConfig struct {
	// KeyframeEvery is the encoder keyframe block size; ≤ 0 means
	// DefaultKeyframeEvery.
	KeyframeEvery int
	// RingFrames is the per-session replay ring capacity in frames.
	// The ring is what lets a reconnecting client resume from its ack
	// instead of cold-starting; it is forced to at least twice the
	// keyframe block so a chain start is (almost) always available.
	// ≤ 0 means 256.
	RingFrames int
	// QueueFrames is the per-subscriber live queue headroom beyond any
	// replayed frames. A subscriber that falls this far behind is
	// disconnected — not thinned: dropping individual frames would put
	// silent holes in a delta-coded stream, while a disconnect makes
	// the client reconnect with its resume token and replay the gap.
	// ≤ 0 means 256.
	QueueFrames int
}

func (c HubConfig) withDefaults() HubConfig {
	if c.KeyframeEvery <= 0 {
		c.KeyframeEvery = DefaultKeyframeEvery
	}
	if c.RingFrames <= 0 {
		c.RingFrames = 256
	}
	if c.RingFrames < 2*c.KeyframeEvery {
		c.RingFrames = 2 * c.KeyframeEvery
	}
	if c.QueueFrames <= 0 {
		c.QueueFrames = 256
	}
	return c
}

// Hub fans encoded FIX frames out to binary subscribers. Each session
// is encoded exactly once per epoch — the same frame buffer is stored
// in the replay ring and queued to every subscriber — and the delta
// chain lives here, not per client.
type Hub struct {
	cfg HubConfig

	mu      sync.RWMutex
	streams map[int]*stream
	down    bool

	published atomic.Uint64 // frames encoded
	bytesOut  atomic.Uint64 // frame bytes queued to subscribers
	replayed  atomic.Uint64 // frames served from replay rings
	evicted   atomic.Uint64 // slow subscribers disconnected
	subs      atomic.Int64  // currently attached subscribers
}

// NewHub builds a Hub.
func NewHub(cfg HubConfig) *Hub {
	return &Hub{cfg: cfg.withDefaults(), streams: make(map[int]*stream)}
}

type ringEntry struct {
	epoch uint64
	key   bool
	frame []byte // full encoded frame (envelope included)
}

type stream struct {
	mu     sync.Mutex
	id     int
	hosted bool
	enc    FixEncoder
	head   int64 // last published epoch, −1 when none
	ring   []ringEntry
	start  int // ring index of the oldest entry
	n      int // live entries
	subs   map[*Subscriber]struct{}
}

// Subscriber is one attached binary client. Frames arrive on C in
// publish order; the channel closes when the subscriber is evicted for
// slowness or the Hub shuts down.
type Subscriber struct {
	// C delivers encoded frames (envelope included, ready to write).
	C <-chan []byte
	// Resume is the verdict the subscription was answered with.
	Resume Resume

	ch     chan []byte
	hub    *Hub
	st     *stream
	closed bool
	// awaitKey: no chain start was available; skip non-miss frames
	// until the next keyframe.
	awaitKey bool
}

// HubStats is a point-in-time snapshot of Hub counters.
type HubStats struct {
	Sessions    int
	Subscribers int64
	Published   uint64
	BytesOut    uint64
	Replayed    uint64
	Evicted     uint64
}

// Stats snapshots the Hub's counters.
func (h *Hub) Stats() HubStats {
	h.mu.RLock()
	n := len(h.streams)
	h.mu.RUnlock()
	return HubStats{
		Sessions:    n,
		Subscribers: h.subs.Load(),
		Published:   h.published.Load(),
		BytesOut:    h.bytesOut.Load(),
		Replayed:    h.replayed.Load(),
		Evicted:     h.evicted.Load(),
	}
}

func (h *Hub) getStream(id int, create bool) *stream {
	h.mu.RLock()
	st := h.streams[id]
	h.mu.RUnlock()
	if st != nil || !create {
		return st
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if st = h.streams[id]; st == nil {
		st = &stream{
			id:   id,
			enc:  FixEncoder{KeyframeEvery: h.cfg.KeyframeEvery},
			head: -1,
			ring: make([]ringEntry, h.cfg.RingFrames),
			subs: make(map[*Subscriber]struct{}),
		}
		h.streams[id] = st
	}
	return st
}

// Register marks session ids as hosted by this node. Subscriptions to
// unhosted ids still attach (frames flow if the session arrives later,
// e.g. mid-handoff) but are answered StatusUnknown.
func (h *Hub) Register(ids ...int) {
	for _, id := range ids {
		st := h.getStream(id, true)
		st.mu.Lock()
		st.hosted = true
		st.mu.Unlock()
	}
}

// SessionInfo describes one hosted session stream.
type SessionInfo struct {
	ID int `json:"id"`
	// Head is the latest published epoch, −1 when none yet.
	Head int64 `json:"head"`
}

// Sessions lists hosted sessions sorted by id.
func (h *Hub) Sessions() []SessionInfo {
	h.mu.RLock()
	out := make([]SessionInfo, 0, len(h.streams))
	for _, st := range h.streams {
		st.mu.Lock()
		if st.hosted {
			out = append(out, SessionInfo{ID: st.id, Head: st.head})
		}
		st.mu.Unlock()
	}
	h.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Head returns session id's latest published epoch (−1 when none or
// unknown).
func (h *Hub) Head(id int) int64 {
	st := h.getStream(id, false)
	if st == nil {
		return -1
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.head
}

// Publish encodes f once and fans the frame out to the session's ring
// and every subscriber. Subscribers whose queues are full are closed
// (slow-client eviction) so delta streams never develop silent holes.
func (h *Hub) Publish(f *Fix) {
	st := h.getStream(f.Session, true)
	st.mu.Lock()
	frame, key := st.enc.AppendFix(nil, f)
	st.head = int64(f.Epoch)
	// Ring push (overwrite oldest).
	if st.n == len(st.ring) {
		st.ring[st.start] = ringEntry{epoch: f.Epoch, key: key, frame: frame}
		st.start = (st.start + 1) % len(st.ring)
	} else {
		st.ring[(st.start+st.n)%len(st.ring)] = ringEntry{epoch: f.Epoch, key: key, frame: frame}
		st.n++
	}
	h.published.Add(1)
	for sub := range st.subs {
		if sub.awaitKey {
			if !key {
				continue
			}
			sub.awaitKey = false
		}
		select {
		case sub.ch <- frame:
			h.bytesOut.Add(uint64(len(frame)))
		default:
			delete(st.subs, sub)
			sub.closed = true
			close(sub.ch)
			h.evicted.Add(1)
			h.subs.Add(-1)
		}
	}
	st.mu.Unlock()
}

// Subscribe attaches a subscriber for session id with resume token ack
// (−1 for live). The returned Subscriber's Resume field is the verdict;
// replayed frames are already queued on C ahead of live frames.
//
// Resume semantics (satellite: resume tokens honored, unknown sessions
// answered, never a hang):
//
//   - hosted stream, ack covered by the replay ring → StatusReplay; the
//     subscription starts at the latest keyframe ≤ ack+1 (the client
//     re-reads ≤ one keyframe block of frames it already consumed — its
//     dedup filter drops them — so the delta chain is primed) and
//     Resume.Resume = ack+1, the first new epoch.
//   - hosted stream, ack older than the ring → StatusGap; the stream
//     starts at the oldest replayable keyframe and Resume.Resume names
//     it, so the hole is declared, never silent.
//   - hosted stream, no frames yet → StatusCold.
//   - ack < 0 → StatusLive, primed from the latest keyframe.
//   - unknown/unhosted session → StatusUnknown immediately. The
//     subscriber stays attached — if the session is adopted here later
//     (checkpoint handoff in flight) its frames start flowing — but the
//     client is told its token matched nothing and can decide to wait
//     or go elsewhere. This is the documented cold-start response.
func (h *Hub) Subscribe(id int, ack int64) *Subscriber {
	h.mu.RLock()
	down := h.down
	h.mu.RUnlock()
	st := h.getStream(id, true)
	st.mu.Lock()
	defer st.mu.Unlock()

	res := Resume{Session: id, Head: st.head}
	var replay []ringEntry
	awaitKey := false
	switch {
	case down:
		res.Status = StatusUnknown
	case !st.hosted && st.head < 0:
		res.Status = StatusUnknown
	case st.head < 0:
		res.Status = StatusCold
	default:
		target := st.head
		if ack >= 0 && ack+1 < target {
			target = ack + 1
		}
		startIdx := -1
		// Latest keyframe entry with epoch ≤ target.
		for j := st.n - 1; j >= 0; j-- {
			e := &st.ring[(st.start+j)%len(st.ring)]
			if e.key && int64(e.epoch) <= target {
				startIdx = j
				break
			}
		}
		gap := false
		if startIdx < 0 {
			// Ack predates the ring: earliest keyframe we still have.
			for j := 0; j < st.n; j++ {
				e := &st.ring[(st.start+j)%len(st.ring)]
				if e.key {
					startIdx = j
					gap = ack >= 0
					break
				}
			}
		}
		switch {
		case startIdx < 0:
			// No chain start anywhere (miss-heavy ring): attach live
			// and wait for the next keyframe. Explicitly a gap for a
			// resuming client.
			awaitKey = true
			res.Resume = uint64(st.head + 1)
			if ack < 0 {
				res.Status = StatusLive
			} else {
				res.Status = StatusGap
			}
		case gap:
			res.Status = StatusGap
			res.Resume = st.ring[(st.start+startIdx)%len(st.ring)].epoch
		case ack < 0:
			res.Status = StatusLive
			res.Resume = st.ring[(st.start+startIdx)%len(st.ring)].epoch
		case ack >= st.head:
			res.Status = StatusLive
			res.Resume = uint64(ack + 1)
		default:
			res.Status = StatusReplay
			res.Resume = uint64(ack + 1)
		}
		if startIdx >= 0 {
			for j := startIdx; j < st.n; j++ {
				replay = append(replay, st.ring[(st.start+j)%len(st.ring)])
			}
		}
	}

	ch := make(chan []byte, h.cfg.QueueFrames+len(replay))
	sub := &Subscriber{C: ch, Resume: res, ch: ch, hub: h, st: st, awaitKey: awaitKey}
	for _, e := range replay {
		ch <- e.frame
		h.replayed.Add(1)
		h.bytesOut.Add(uint64(len(e.frame)))
	}
	if down {
		sub.closed = true
		close(ch)
		return sub
	}
	st.subs[sub] = struct{}{}
	h.subs.Add(1)
	return sub
}

// Close detaches the subscriber. Safe to call more than once and
// concurrently with Publish.
func (s *Subscriber) Close() {
	s.st.mu.Lock()
	if !s.closed {
		if _, ok := s.st.subs[s]; ok {
			delete(s.st.subs, s)
			s.hub.subs.Add(-1)
		}
		s.closed = true
		close(s.ch)
	}
	s.st.mu.Unlock()
}

// Shutdown closes every subscriber and makes future Subscribes answer
// StatusUnknown on an already-closed channel.
func (h *Hub) Shutdown() {
	h.mu.Lock()
	h.down = true
	streams := make([]*stream, 0, len(h.streams))
	for _, st := range h.streams {
		streams = append(streams, st)
	}
	h.mu.Unlock()
	for _, st := range streams {
		st.mu.Lock()
		for sub := range st.subs {
			delete(st.subs, sub)
			sub.closed = true
			close(sub.ch)
			h.subs.Add(-1)
		}
		st.mu.Unlock()
	}
}
