package wire

import (
	"testing"
	"time"
)

func publishRange(h *Hub, session int, from, to uint64) {
	for e := from; e < to; e++ {
		f := synthFix(session, e)
		h.Publish(&f)
	}
}

// drain decodes every frame currently queued on sub.
func drain(t *testing.T, sub *Subscriber) []Fix {
	t.Helper()
	var dec FixDecoder
	var out []Fix
	for {
		select {
		case frame, ok := <-sub.C:
			if !ok {
				return out
			}
			f, err := dec.DecodeFix(payloadOf(t, frame))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			out = append(out, f)
		default:
			return out
		}
	}
}

// TestHubResumeHonored: satellite 2, protocol level — a subscriber that
// reconnects with ack=E receives exactly E+1, E+2, … (after
// chain-priming frames at epochs ≤ E, which a dedup filter drops), with
// zero duplicated and zero skipped epochs.
func TestHubResumeHonored(t *testing.T) {
	h := NewHub(HubConfig{KeyframeEvery: 8, RingFrames: 64})
	h.Register(4)
	publishRange(h, 4, 0, 50)

	const ack = 37
	sub := h.Subscribe(4, ack)
	if sub.Resume.Status != StatusReplay {
		t.Fatalf("status = %s, want replay", StatusName(sub.Resume.Status))
	}
	if sub.Resume.Resume != ack+1 {
		t.Fatalf("resume = %d, want %d", sub.Resume.Resume, ack+1)
	}
	if sub.Resume.Head != 49 {
		t.Fatalf("head = %d, want 49", sub.Resume.Head)
	}
	publishRange(h, 4, 50, 60)
	fixes := drain(t, sub)
	if len(fixes) == 0 {
		t.Fatal("no frames")
	}
	// First frames prime the chain from a keyframe ≤ ack+1; after the
	// dedup filter the delivered epochs are exactly ack+1..59.
	next := uint64(ack + 1)
	if fixes[0].Epoch > next {
		t.Fatalf("stream starts at %d — skipped epochs before %d", fixes[0].Epoch, next)
	}
	for _, f := range fixes {
		if f.Epoch <= uint64(ack) {
			continue // dup of already-consumed epoch: dedup filter territory
		}
		if f.Epoch != next {
			t.Fatalf("epoch %d, want %d (dup or skip)", f.Epoch, next)
		}
		next++
	}
	if next != 60 {
		t.Fatalf("delivered through %d, want 60", next-1)
	}
}

// TestHubResumeGapExplicit: an ack older than the replay ring gets
// StatusGap with the actual resume epoch — an explicit hole, not a
// silent one.
func TestHubResumeGapExplicit(t *testing.T) {
	h := NewHub(HubConfig{KeyframeEvery: 8, RingFrames: 16})
	h.Register(1)
	publishRange(h, 1, 0, 500)
	sub := h.Subscribe(1, 3) // ring holds ~[484, 500)
	if sub.Resume.Status != StatusGap {
		t.Fatalf("status = %s, want gap", StatusName(sub.Resume.Status))
	}
	if sub.Resume.Resume <= 4 {
		t.Fatalf("resume = %d, should be far beyond ack", sub.Resume.Resume)
	}
	fixes := drain(t, sub)
	if len(fixes) == 0 || fixes[0].Epoch != sub.Resume.Resume {
		t.Fatalf("first epoch %v != promised resume %d", fixes, sub.Resume.Resume)
	}
	for i := 1; i < len(fixes); i++ {
		if fixes[i].Epoch != fixes[i-1].Epoch+1 {
			t.Fatalf("post-gap stream not consecutive at %d", i)
		}
	}
}

// TestHubUnknownSession: satellite 2 — a token for an unknown session
// is answered immediately with StatusUnknown (documented cold-start
// response), and the subscription still delivers if the session is
// adopted later (the mid-handoff race).
func TestHubUnknownSession(t *testing.T) {
	h := NewHub(HubConfig{})
	sub := h.Subscribe(99, 1234)
	if sub.Resume.Status != StatusUnknown {
		t.Fatalf("status = %s, want unknown", StatusName(sub.Resume.Status))
	}
	if sub.Resume.Head != -1 {
		t.Fatalf("head = %d, want -1", sub.Resume.Head)
	}
	// Session 99 arrives by handoff afterwards: frames flow.
	h.Register(99)
	publishRange(h, 99, 200, 205)
	fixes := drain(t, sub)
	if len(fixes) != 5 || fixes[0].Epoch != 200 {
		t.Fatalf("adopted-session frames not delivered: %v", fixes)
	}
}

// TestHubColdAndLive: fresh hosted session answers cold; ack=-1 joins
// live primed from the latest keyframe.
func TestHubColdAndLive(t *testing.T) {
	h := NewHub(HubConfig{KeyframeEvery: 8, RingFrames: 64})
	h.Register(0)
	cold := h.Subscribe(0, -1)
	if cold.Resume.Status != StatusCold {
		t.Fatalf("status = %s, want cold", StatusName(cold.Resume.Status))
	}
	publishRange(h, 0, 0, 30)
	live := h.Subscribe(0, -1)
	if live.Resume.Status != StatusLive {
		t.Fatalf("status = %s, want live", StatusName(live.Resume.Status))
	}
	fixes := drain(t, live)
	if len(fixes) == 0 || fixes[0].Epoch != 24 { // latest keyframe: block 3 start
		t.Fatalf("live join primed from %v, want keyframe 24", fixes)
	}
}

// TestHubSlowSubscriberEvicted: a subscriber that stops draining is
// disconnected (channel closed), not thinned — delta streams must not
// grow silent holes.
func TestHubSlowSubscriberEvicted(t *testing.T) {
	h := NewHub(HubConfig{KeyframeEvery: 8, RingFrames: 32, QueueFrames: 4})
	h.Register(2)
	sub := h.Subscribe(2, -1)
	publishRange(h, 2, 0, 100) // queue cap 4 → overflow → eviction
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-sub.C:
			if !ok {
				if s := h.Stats(); s.Evicted != 1 {
					t.Fatalf("evicted = %d, want 1", s.Evicted)
				}
				return
			}
		case <-deadline:
			t.Fatal("slow subscriber never evicted")
		}
	}
}

// TestHubEncodeOnceSharedBuffer: all subscribers of a session receive
// the same backing frame buffer — encode once, write N times.
func TestHubEncodeOnceSharedBuffer(t *testing.T) {
	h := NewHub(HubConfig{})
	h.Register(6)
	a := h.Subscribe(6, -1)
	b := h.Subscribe(6, -1)
	f := synthFix(6, 0)
	h.Publish(&f)
	fa, fb := <-a.C, <-b.C
	if &fa[0] != &fb[0] {
		t.Fatal("subscribers received distinct frame buffers; expected one shared encode")
	}
}

// TestHubSessions: hosted inventory with heads, for /cluster/sessions.
func TestHubSessions(t *testing.T) {
	h := NewHub(HubConfig{})
	h.Register(3, 1)
	publishRange(h, 1, 0, 5)
	got := h.Sessions()
	if len(got) != 2 || got[0].ID != 1 || got[0].Head != 4 || got[1].ID != 3 || got[1].Head != -1 {
		t.Fatalf("sessions = %+v", got)
	}
	if h.Head(1) != 4 || h.Head(42) != -1 {
		t.Fatalf("Head lookup wrong")
	}
}
