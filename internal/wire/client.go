package wire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ClientConfig configures a reconnecting binary subscriber.
type ClientConfig struct {
	// Addr is the wire listener (gpsserve -wire or gpsproxy -addr).
	Addr string
	// Session is the session id to subscribe to.
	Session int
	// Resume is the initial resume token ack: the last epoch already
	// consumed in a previous life, or −1 to start live.
	Resume int64

	// BackoffBase and BackoffMax bound the jittered exponential
	// reconnect backoff (full jitter: sleep ~ U(0, min(max,
	// base·2^attempt))). Defaults 50 ms and 3 s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RetryBudget is the number of consecutive failed connection
	// attempts tolerated before the client gives up and closes Fixes
	// with an error. Any successfully decoded fix refills the budget.
	// ≤ 0 means 8.
	RetryBudget int

	// OnEvent, when set, observes connection lifecycle events
	// (connects, RESUME verdicts, gaps, disconnects, retries).
	OnEvent func(ClientEvent)

	// Dial overrides the dialer (tests). Default: net.Dialer with a
	// 2 s timeout.
	Dial func(ctx context.Context) (net.Conn, error)
	// sleep overrides backoff sleeping (tests).
	sleep func(ctx context.Context, d time.Duration) error
	// jitter overrides the backoff jitter source (tests); returns
	// values in [0, 1).
	jitter func() float64
}

// ClientEvent is one connection lifecycle observation.
type ClientEvent struct {
	Kind string // "connect", "resume", "gap", "disconnect", "retry", "give-up"
	// Resume is set for "resume" and "gap" events.
	Resume Resume
	// Err is set for "disconnect", "retry" and "give-up".
	Err error
	// Attempt is the consecutive-failure count for "retry".
	Attempt int
	// Sleep is the backoff chosen for "retry".
	Sleep time.Duration
}

// ErrRetryBudgetExhausted reports that the client gave up after
// RetryBudget consecutive failed connection attempts.
var ErrRetryBudgetExhausted = errors.New("wire: retry budget exhausted")

// Client is a reconnecting subscriber. It maintains the resume token
// across reconnects — the last epoch it delivered on Fixes — so a
// server or proxy failover is bridged with zero duplicated and zero
// silently-skipped fixes (a replay-ring gap is surfaced as a "gap"
// event, and shows as an epoch jump, never silently).
type Client struct {
	cfg    ClientConfig
	fixes  chan Fix
	cancel context.CancelFunc
	done   chan struct{}

	err       error
	delivered atomic.Int64 // last delivered epoch, −1 none
	closeOnce sync.Once
}

// DialSession starts a client. The returned Client's Fixes channel
// carries decoded, deduplicated fixes until ctx ends, Close is called,
// or the retry budget runs out (then Err explains).
func DialSession(ctx context.Context, cfg ClientConfig) *Client {
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 3 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 8
	}
	if cfg.Dial == nil {
		addr := cfg.Addr
		cfg.Dial = func(ctx context.Context) (net.Conn, error) {
			d := net.Dialer{Timeout: 2 * time.Second}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if cfg.jitter == nil {
		cfg.jitter = rand.Float64
	}
	ctx, cancel := context.WithCancel(ctx)
	c := &Client{
		cfg:    cfg,
		fixes:  make(chan Fix, 64),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	c.delivered.Store(cfg.Resume)
	go c.run(ctx)
	return c
}

// Fixes delivers decoded fixes in strictly increasing epoch order. It
// closes when the client stops; check Err then.
func (c *Client) Fixes() <-chan Fix { return c.fixes }

// LastDelivered is the resume token ack: the last epoch delivered on
// Fixes (−1 if none beyond the configured Resume).
func (c *Client) LastDelivered() int64 { return c.delivered.Load() }

// Err reports why the client stopped (nil for Close/ctx cancellation).
// Valid after Fixes closes.
func (c *Client) Err() error {
	<-c.done
	return c.err
}

// Close stops the client.
func (c *Client) Close() {
	c.closeOnce.Do(c.cancel)
	<-c.done
}

func (c *Client) event(e ClientEvent) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(e)
	}
}

// backoff returns the full-jitter sleep for consecutive failure n (1-based).
func (c *Client) backoff(n int) time.Duration {
	max := c.cfg.BackoffBase << uint(n-1)
	if max > c.cfg.BackoffMax || max <= 0 {
		max = c.cfg.BackoffMax
	}
	return time.Duration(c.cfg.jitter() * float64(max))
}

func (c *Client) run(ctx context.Context) {
	defer close(c.done)
	defer close(c.fixes)
	failures := 0
	for {
		if ctx.Err() != nil {
			return
		}
		progressed, err := c.session(ctx)
		if ctx.Err() != nil {
			return
		}
		if progressed {
			failures = 0
		}
		failures++
		if failures > c.cfg.RetryBudget {
			c.err = fmt.Errorf("%w after %d attempts: %v", ErrRetryBudgetExhausted, failures-1, err)
			c.event(ClientEvent{Kind: "give-up", Err: c.err})
			return
		}
		sleep := c.backoff(failures)
		c.event(ClientEvent{Kind: "retry", Err: err, Attempt: failures, Sleep: sleep})
		if c.cfg.sleep(ctx, sleep) != nil {
			return
		}
	}
}

// session runs one connection: dial, subscribe with the current resume
// token, then decode and deliver until the stream breaks. It reports
// whether any fix was delivered (progress refills the retry budget).
func (c *Client) session(ctx context.Context) (progressed bool, err error) {
	conn, err := c.cfg.Dial(ctx)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	// Unblock the read loop on cancellation.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	ack := c.delivered.Load()
	if _, err := conn.Write(AppendSubscribe(nil, c.cfg.Session, ack)); err != nil {
		return false, fmt.Errorf("subscribe: %w", err)
	}
	c.event(ClientEvent{Kind: "connect"})

	fr := NewFrameReader(conn)
	var dec FixDecoder
	sawResume := false
	for {
		p, err := fr.Next()
		if err != nil {
			c.event(ClientEvent{Kind: "disconnect", Err: err})
			return progressed, err
		}
		switch Kind(p) {
		case KindResume:
			r, err := DecodeResume(p)
			if err != nil {
				return progressed, err
			}
			kind := "resume"
			if r.Status == StatusGap {
				kind = "gap"
			}
			c.event(ClientEvent{Kind: kind, Resume: r})
			sawResume = true
		case KindFix:
			if !sawResume {
				return progressed, fmt.Errorf("wire: fix before resume")
			}
			f, err := dec.DecodeFix(p)
			if err != nil {
				return progressed, err
			}
			// Dedup filter: chain-priming replay covers epochs the
			// client already consumed; decode them (the delta chain
			// needs them) but do not deliver.
			if int64(f.Epoch) <= c.delivered.Load() {
				continue
			}
			select {
			case c.fixes <- f:
				c.delivered.Store(int64(f.Epoch))
				progressed = true
			case <-ctx.Done():
				return progressed, ctx.Err()
			}
		default:
			return progressed, fmt.Errorf("wire: unexpected frame kind %d", Kind(p))
		}
	}
}
