// Package wire implements the compact binary fix protocol the
// horizontal serving tier speaks between gpsserve nodes, the gpsproxy
// gateway, and subscribing clients. It is the binary sibling of the
// NMEA text broadcast: instead of fanning ~80-byte sentences to every
// client, each session-epoch is encoded once into a delta/varint frame
// (~20 bytes steady state) and the same buffer is written to every
// subscriber of that session.
//
// # Frame envelope
//
//	frame := marker 0xB5 | payloadLen uvarint | payload | crc32(payload) u32le
//
// The first payload byte is the frame kind. Every frame is
// independently checksummed, so a torn TCP stream or a flipped byte
// fails loudly at the reader instead of decoding into plausible
// garbage positions.
//
// # Frames
//
//	SUBSCRIBE (client → server): protocol version, session id, and the
//	  resume token's ack epoch — the last epoch the client has safely
//	  consumed (−1 for "no history, start live"). The server must
//	  answer with RESUME.
//	RESUME (server → client): the server's verdict on the token: the
//	  epoch the stream will resume at, the session's current head
//	  epoch, and a status byte (see Status*). A RESUME always arrives
//	  promptly — an unknown or evicted session gets StatusUnknown or a
//	  cold-start resume, never silence.
//	FIX (server → client): one session-epoch. Positions and clock bias
//	  are quantized to millimetres; a keyframe carries absolute values,
//	  every other frame carries zigzag varint deltas against the
//	  previous non-miss epoch. The keyframe rule is a pure function of
//	  the fix history — the first non-miss fix inside each
//	  KeyframeEvery-sized block of absolute epochs is a keyframe — so
//	  the byte stream for a given history is identical no matter which
//	  node encodes it (the handoff bit-identity property), and misses
//	  landing on block boundaries cannot starve the chain of keyframes.
//	  An encoder additionally forces a keyframe on its very first fix,
//	  where no delta reference exists yet; a handed-off encoder that
//	  starts mid-block therefore re-aligns with an uninterrupted
//	  encoder's bytes at the next block boundary at the latest.
//	  Epochs where no fix was produced are MISS frames (FixMiss flag):
//	  they keep the epoch sequence gapless on the wire so a client can
//	  distinguish "the solver failed" from "frames were lost".
//
// Delta decoding is stateful: a subscription always starts at a
// keyframe (the Hub guarantees it), and integer delta accumulation is
// exact, so every subscriber reconstructs bit-identical quantized
// fixes regardless of when it joined.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Protocol constants. Version bumps whenever the frame or field
// encoding changes incompatibly.
const (
	Version     = 1
	FrameMarker = 0xB5

	// Frame kinds (first payload byte).
	KindSubscribe = 1
	KindResume    = 2
	KindFix       = 3

	// MaxFramePayload bounds a single frame payload; readers reject
	// larger length prefixes as corruption.
	MaxFramePayload = 1 << 16

	// DefaultKeyframeEvery is the absolute-epoch keyframe block size:
	// the first non-miss fix of each block is encoded absolute, so
	// independently restarted encoders re-align within one block.
	DefaultKeyframeEvery = 32
)

// Subscribe statuses a RESUME frame can carry.
const (
	// StatusLive: the token was current (or absent); the stream starts
	// at the session head with no replay.
	StatusLive = iota
	// StatusReplay: the token's ack was behind the head and the replay
	// ring covered the gap; the stream resumes exactly at ack+1 (after
	// chain-priming frames the client has already consumed).
	StatusReplay
	// StatusGap: the ack was too old for the replay ring; the stream
	// resumes at the oldest replayable keyframe. The gap is explicit —
	// Resume.Resume > ack+1 — never silent.
	StatusGap
	// StatusCold: the session exists but has produced no frames yet;
	// the stream starts from its first future frame.
	StatusCold
	// StatusUnknown: the session id is not hosted here. The documented
	// cold-start response of the resume contract: the subscription
	// stays registered (frames flow if the session is adopted later,
	// e.g. mid-handoff), but the client is told its token matched
	// nothing.
	StatusUnknown
)

// StatusName renders a RESUME status byte.
func StatusName(s uint8) string {
	switch s {
	case StatusLive:
		return "live"
	case StatusReplay:
		return "replay"
	case StatusGap:
		return "gap"
	case StatusCold:
		return "cold"
	case StatusUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}

// FIX frame flag bits.
const (
	// FixKeyframe: absolute (not delta) position/bias/HDOP fields.
	FixKeyframe = 1 << iota
	// FixMiss: the epoch produced no fix (solver failure, quarantine,
	// epoch error); the frame carries no position fields.
	FixMiss
	// FixCoast: dead-reckoning position hold, not a fresh solve.
	FixCoast
	// FixSuspect: the fix carries an unresolved integrity fault.
	FixSuspect
	// FixDegraded: the session reported a degraded health state.
	FixDegraded
)

// Subscribe is the decoded SUBSCRIBE payload: the resume token.
type Subscribe struct {
	Version int
	Session int
	// Ack is the last epoch the client consumed; −1 subscribes live.
	Ack int64
}

// Resume is the decoded RESUME payload.
type Resume struct {
	Session int
	Status  uint8
	// Resume is the first epoch the stream will deliver (0 when the
	// session has no history and none is promised).
	Resume uint64
	// Head is the session's latest published epoch, −1 when none.
	Head int64
}

// Fix is one decoded session-epoch. Position, clock bias and HDOP are
// millimetre / milli-unit quantized — exactly what was on the wire, so
// two decoders that consumed the same epochs hold bit-identical values.
type Fix struct {
	Session int
	Epoch   uint64
	// X, Y, Z is the ECEF position in meters (mm resolution); Miss
	// frames carry none.
	X, Y, Z   float64
	ClockBias float64
	HDOP      float64
	Sats      int
	// State is the engine session-state ordinal (journal.StateName
	// renders it); Solver the solver-table index (journal.SolverName).
	State  uint8
	Solver uint8
	Miss   bool
	Coast  bool
	// Suspect / Degraded mirror the FixEvent integrity flags.
	Suspect  bool
	Degraded bool
}

// Flags packs the fix's boolean state into FIX frame flag bits
// (keyframe excluded — that is the encoder's choice, not the fix's).
func (f *Fix) flags() byte {
	var fl byte
	if f.Miss {
		fl |= FixMiss
	}
	if f.Coast {
		fl |= FixCoast
	}
	if f.Suspect {
		fl |= FixSuspect
	}
	if f.Degraded {
		fl |= FixDegraded
	}
	return fl
}

// Quantization: millimetre fixed point, saturating like the flight
// journal's, so non-finite or absurd inputs cannot produce unbounded
// varints.
const quantMax = 1 << 40

func quant(v float64) int64 {
	if math.IsNaN(v) {
		return 0
	}
	q := math.Round(v * 1000)
	if q > quantMax {
		return quantMax
	}
	if q < -quantMax {
		return -quantMax
	}
	return int64(q)
}

func unquant(q int64) float64 { return float64(q) / 1000 }

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendFrame wraps payload in the frame envelope and appends it.
func AppendFrame(dst, payload []byte) []byte {
	dst = append(dst, FrameMarker)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// AppendSubscribe appends a SUBSCRIBE frame for token (session, ack).
func AppendSubscribe(dst []byte, session int, ack int64) []byte {
	p := make([]byte, 0, 16)
	p = append(p, KindSubscribe, Version)
	p = binary.AppendUvarint(p, uint64(session))
	p = binary.AppendUvarint(p, zigzag(ack))
	return AppendFrame(dst, p)
}

// AppendResume appends a RESUME frame.
func AppendResume(dst []byte, r Resume) []byte {
	p := make([]byte, 0, 24)
	p = append(p, KindResume)
	p = binary.AppendUvarint(p, uint64(r.Session))
	p = append(p, r.Status)
	p = binary.AppendUvarint(p, r.Resume)
	p = binary.AppendUvarint(p, zigzag(r.Head))
	return AppendFrame(dst, p)
}

// errTruncated reports a payload shorter than its fields claim.
var errTruncated = errors.New("wire: truncated payload")

// payloadReader walks a frame payload.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.err = errTruncated
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.off += n
	return v
}

// DecodeSubscribe parses a SUBSCRIBE payload (kind byte included).
func DecodeSubscribe(p []byte) (Subscribe, error) {
	r := payloadReader{b: p}
	if k := r.byte(); k != KindSubscribe {
		return Subscribe{}, fmt.Errorf("wire: subscribe: kind %d", k)
	}
	s := Subscribe{Version: int(r.byte())}
	s.Session = int(r.uvarint())
	s.Ack = unzigzag(r.uvarint())
	if r.err != nil {
		return Subscribe{}, fmt.Errorf("wire: subscribe: %w", r.err)
	}
	if s.Version != Version {
		return Subscribe{}, fmt.Errorf("wire: subscribe: unsupported protocol version %d", s.Version)
	}
	return s, nil
}

// DecodeResume parses a RESUME payload (kind byte included).
func DecodeResume(p []byte) (Resume, error) {
	r := payloadReader{b: p}
	if k := r.byte(); k != KindResume {
		return Resume{}, fmt.Errorf("wire: resume: kind %d", k)
	}
	var res Resume
	res.Session = int(r.uvarint())
	res.Status = r.byte()
	res.Resume = r.uvarint()
	res.Head = unzigzag(r.uvarint())
	if r.err != nil {
		return Resume{}, fmt.Errorf("wire: resume: %w", r.err)
	}
	return res, nil
}

// PeekFix extracts (session, epoch, keyframe) from a FIX payload
// without delta state — what a relay needs to route and deduplicate
// frames it cannot (and must not) decode.
func PeekFix(p []byte) (session int, epoch uint64, keyframe bool, err error) {
	r := payloadReader{b: p}
	if k := r.byte(); k != KindFix {
		return 0, 0, false, fmt.Errorf("wire: fix: kind %d", k)
	}
	session = int(r.uvarint())
	epoch = r.uvarint()
	flags := r.byte()
	if r.err != nil {
		return 0, 0, false, fmt.Errorf("wire: fix: %w", r.err)
	}
	return session, epoch, flags&FixKeyframe != 0, nil
}

// FixEncoder holds one session stream's delta state. Not safe for
// concurrent use; the Hub serializes per session.
type FixEncoder struct {
	// KeyframeEvery is the absolute-epoch keyframe block size; ≤ 0
	// means DefaultKeyframeEvery.
	KeyframeEvery int

	havePrev  bool
	prevEpoch uint64   // epoch of the previous non-miss fix
	prev      [4]int64 // qx qy qz qbias
	prevHDOP  int64
}

// AppendFix encodes f as one framed FIX, appends it to dst, and
// reports whether the frame is a keyframe. The first non-miss fix
// after construction is a forced keyframe; after that, the first
// non-miss fix of each KeyframeEvery epoch block is a keyframe and
// every other epoch is a delta against the previous non-miss fix.
func (e *FixEncoder) AppendFix(dst []byte, f *Fix) ([]byte, bool) {
	every := e.KeyframeEvery
	if every <= 0 {
		every = DefaultKeyframeEvery
	}
	p := make([]byte, 0, 48)
	p = append(p, KindFix)
	p = binary.AppendUvarint(p, uint64(f.Session))
	p = binary.AppendUvarint(p, f.Epoch)
	flags := f.flags()
	if f.Miss {
		p = append(p, flags, f.State, f.Solver)
		p = binary.AppendUvarint(p, uint64(f.Sats))
		return AppendFrame(dst, p), false
	}
	q := [4]int64{quant(f.X), quant(f.Y), quant(f.Z), quant(f.ClockBias)}
	qh := quant(f.HDOP)
	key := !e.havePrev || f.Epoch/uint64(every) != e.prevEpoch/uint64(every)
	if key {
		flags |= FixKeyframe
	}
	p = append(p, flags, f.State, f.Solver)
	p = binary.AppendUvarint(p, uint64(f.Sats))
	if key {
		for _, v := range q {
			p = binary.AppendUvarint(p, zigzag(v))
		}
		p = binary.AppendUvarint(p, zigzag(qh))
	} else {
		for i, v := range q {
			p = binary.AppendUvarint(p, zigzag(v-e.prev[i]))
		}
		p = binary.AppendUvarint(p, zigzag(qh-e.prevHDOP))
	}
	e.prev, e.prevHDOP, e.havePrev, e.prevEpoch = q, qh, true, f.Epoch
	return AppendFrame(dst, p), key
}

// FixDecoder mirrors FixEncoder: it accumulates deltas exactly, so a
// decoder that consumed a stream from any keyframe holds bit-identical
// values to the encoder.
type FixDecoder struct {
	havePrev bool
	prev     [4]int64
	prevHDOP int64
}

// ErrDeltaWithoutKeyframe reports a delta frame arriving before any
// keyframe primed the chain — a subscription that did not start at a
// keyframe, which the Hub never produces.
var ErrDeltaWithoutKeyframe = errors.New("wire: delta fix before any keyframe")

// DecodeFix parses a FIX payload (kind byte included) and updates the
// delta chain.
func (d *FixDecoder) DecodeFix(p []byte) (Fix, error) {
	r := payloadReader{b: p}
	if k := r.byte(); k != KindFix {
		return Fix{}, fmt.Errorf("wire: fix: kind %d", k)
	}
	var f Fix
	f.Session = int(r.uvarint())
	f.Epoch = r.uvarint()
	flags := r.byte()
	f.State = r.byte()
	f.Solver = r.byte()
	f.Sats = int(r.uvarint())
	f.Miss = flags&FixMiss != 0
	f.Coast = flags&FixCoast != 0
	f.Suspect = flags&FixSuspect != 0
	f.Degraded = flags&FixDegraded != 0
	if f.Miss {
		if r.err != nil {
			return Fix{}, fmt.Errorf("wire: fix: %w", r.err)
		}
		return f, nil
	}
	var q [4]int64
	var qh int64
	if flags&FixKeyframe != 0 {
		for i := range q {
			q[i] = unzigzag(r.uvarint())
		}
		qh = unzigzag(r.uvarint())
	} else {
		if !d.havePrev {
			return Fix{}, ErrDeltaWithoutKeyframe
		}
		for i := range q {
			q[i] = d.prev[i] + unzigzag(r.uvarint())
		}
		qh = d.prevHDOP + unzigzag(r.uvarint())
	}
	if r.err != nil {
		return Fix{}, fmt.Errorf("wire: fix: %w", r.err)
	}
	d.prev, d.prevHDOP, d.havePrev = q, qh, true
	f.X, f.Y, f.Z = unquant(q[0]), unquant(q[1]), unquant(q[2])
	f.ClockBias = unquant(q[3])
	f.HDOP = unquant(qh)
	return f, nil
}

// FrameReader reads framed payloads off a byte stream, verifying the
// envelope CRC. The returned payload is valid until the next call.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r (buffered internally).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 4096)}
}

// ErrBadFrame reports an envelope violation: bad marker, oversized
// length prefix, or CRC mismatch. A stream that produced it cannot be
// resynchronized and should be closed.
var ErrBadFrame = errors.New("wire: bad frame")

// Next returns the next frame's payload.
func (fr *FrameReader) Next() ([]byte, error) {
	m, err := fr.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if m != FrameMarker {
		return nil, fmt.Errorf("%w: marker %#x", ErrBadFrame, m)
	}
	n, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	need := int(n) + 4
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	buf := fr.buf[:need]
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		return nil, err
	}
	payload := buf[:n]
	want := binary.LittleEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: crc %08x, frame says %08x", ErrBadFrame, got, want)
	}
	return payload, nil
}

// Kind returns a payload's frame kind (0 when empty).
func Kind(p []byte) byte {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}
