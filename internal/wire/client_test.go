package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testServer runs a Hub+Server on a loopback listener.
type testServer struct {
	hub    *Hub
	addr   string
	cancel context.CancelFunc
	done   chan struct{}
}

func startTestServer(t *testing.T, cfg HubConfig) *testServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ts := &testServer{hub: NewHub(cfg), addr: ln.Addr().String(), cancel: cancel, done: make(chan struct{})}
	srv := &Server{Hub: ts.hub}
	go func() {
		defer close(ts.done)
		srv.Serve(ctx, ln)
	}()
	t.Cleanup(ts.stop)
	return ts
}

func (ts *testServer) stop() {
	ts.cancel()
	ts.hub.Shutdown()
	<-ts.done
}

// TestClientResumeAcrossServerSwap: the client delivers a strictly
// consecutive epoch sequence across a server death + replacement,
// powered only by its resume token — no dups, no silent skips.
func TestClientResumeAcrossServerSwap(t *testing.T) {
	a := startTestServer(t, HubConfig{KeyframeEvery: 8})
	a.hub.Register(5)
	publishRange(a.hub, 5, 0, 21)

	var addr atomic.Value
	addr.Store(a.addr)
	var mu sync.Mutex
	var statuses []uint8
	c := DialSession(context.Background(), ClientConfig{
		Session: 5,
		Resume:  -1,
		Dial: func(ctx context.Context) (net.Conn, error) {
			d := net.Dialer{Timeout: time.Second}
			return d.DialContext(ctx, "tcp", addr.Load().(string))
		},
		RetryBudget: 50,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		OnEvent: func(e ClientEvent) {
			if e.Kind == "resume" || e.Kind == "gap" {
				mu.Lock()
				statuses = append(statuses, e.Resume.Status)
				mu.Unlock()
			}
		},
	})
	defer c.Close()

	var got []uint64
	collect := func(until uint64) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case f, ok := <-c.Fixes():
				if !ok {
					t.Fatalf("client stopped early: %v", c.Err())
				}
				got = append(got, f.Epoch)
				if f.Epoch == until {
					return
				}
			case <-deadline:
				t.Fatalf("timed out waiting for epoch %d; have %d fixes", until, len(got))
			}
		}
	}
	collect(20)

	// Node death: server A vanishes; replacement B (fresh process, same
	// session history continued — what checkpoint handoff guarantees)
	// comes up on a different address.
	a.stop()
	b := startTestServer(t, HubConfig{KeyframeEvery: 8})
	b.hub.Register(5)
	publishRange(b.hub, 5, 0, 36)
	addr.Store(b.addr)
	collect(35)

	for i, e := range got {
		if want := got[0] + uint64(i); e != want {
			t.Fatalf("epoch[%d] = %d, want %d (dup or skip across failover)", i, e, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, s := range statuses {
		if s == StatusGap {
			t.Fatal("failover produced a gap; replay ring should have covered the ack")
		}
	}
}

// TestClientRetryBudget: with no server at all, the client performs
// exactly RetryBudget jittered-exponential attempts then reports
// ErrRetryBudgetExhausted.
func TestClientRetryBudget(t *testing.T) {
	var mu sync.Mutex
	var sleeps []time.Duration
	const budget = 5
	base, max := 10*time.Millisecond, 80*time.Millisecond
	c := DialSession(context.Background(), ClientConfig{
		Session:     1,
		Resume:      -1,
		RetryBudget: budget,
		BackoffBase: base,
		BackoffMax:  max,
		Dial: func(ctx context.Context) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
			return nil
		},
		jitter: func() float64 { return 0.5 },
	})
	for range c.Fixes() {
		t.Fatal("no fixes possible")
	}
	if !errors.Is(c.Err(), ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", c.Err())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != budget {
		t.Fatalf("%d backoff sleeps, want %d", len(sleeps), budget)
	}
	for i, d := range sleeps {
		cap := base << uint(i)
		if cap > max {
			cap = max
		}
		if want := cap / 2; d != want { // jitter pinned at 0.5
			t.Fatalf("sleep[%d] = %v, want %v", i, d, want)
		}
	}
}

// TestClientUnknownSessionAnswered: a resume token for a session the
// node does not host is answered promptly with StatusUnknown — the
// documented cold-start response, not a hang.
func TestClientUnknownSessionAnswered(t *testing.T) {
	ts := startTestServer(t, HubConfig{})
	status := make(chan uint8, 1)
	c := DialSession(context.Background(), ClientConfig{
		Addr:    ts.addr,
		Session: 404,
		Resume:  1234,
		OnEvent: func(e ClientEvent) {
			if e.Kind == "resume" {
				select {
				case status <- e.Resume.Status:
				default:
				}
			}
		},
	})
	defer c.Close()
	select {
	case s := <-status:
		if s != StatusUnknown {
			t.Fatalf("status = %s, want unknown", StatusName(s))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscribe to unknown session hung instead of answering")
	}
}

// TestClientProgressRefillsBudget: a flapping server that accepts,
// serves one fix, then drops the connection must not exhaust the
// budget, because delivered fixes refill it.
func TestClientProgressRefillsBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for e := uint64(0); ; e++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fr := NewFrameReader(conn)
			if _, err := fr.Next(); err != nil {
				conn.Close()
				continue
			}
			conn.Write(AppendResume(nil, Resume{Session: 1, Status: StatusLive, Resume: e, Head: int64(e) - 1}))
			var enc FixEncoder
			f := synthFix(1, e)
			frame, _ := enc.AppendFix(nil, &f)
			conn.Write(frame)
			conn.Close() // flap
		}
	}()
	c := DialSession(context.Background(), ClientConfig{
		Addr:        ln.Addr().String(),
		Session:     1,
		Resume:      -1,
		RetryBudget: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	defer c.Close()
	deadline := time.After(10 * time.Second)
	for i := 0; i < 6; i++ { // 6 > budget: only survivable with refills
		select {
		case _, ok := <-c.Fixes():
			if !ok {
				t.Fatalf("client gave up after %d fixes: %v", i, c.Err())
			}
		case <-deadline:
			t.Fatal("timed out")
		}
	}
}
