package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// Server accepts binary subscribers on a listener and bridges them to
// a Hub: one SUBSCRIBE in, a RESUME verdict out, then encoded frames
// until the subscriber is evicted or the connection drops.
type Server struct {
	Hub *Hub
	// HandshakeTimeout bounds waiting for the SUBSCRIBE frame
	// (default 5 s); WriteTimeout bounds each frame write (default
	// 5 s — a stuck peer is evicted by queue overflow well before a
	// write blocks that long).
	HandshakeTimeout time.Duration
	WriteTimeout     time.Duration
	// OnError, when set, observes per-connection failures.
	OnError func(err error)

	wg sync.WaitGroup
}

// Serve accepts until ctx ends or the listener closes. It closes ln on
// ctx cancellation and returns after every connection handler exits.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.handle(ctx, conn); err != nil && s.OnError != nil {
				s.OnError(err)
			}
		}()
	}
}

func (s *Server) handle(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	ht := s.HandshakeTimeout
	if ht <= 0 {
		ht = 5 * time.Second
	}
	wt := s.WriteTimeout
	if wt <= 0 {
		wt = 5 * time.Second
	}
	conn.SetReadDeadline(time.Now().Add(ht))
	fr := NewFrameReader(conn)
	p, err := fr.Next()
	if err != nil {
		return err
	}
	req, err := DecodeSubscribe(p)
	if err != nil {
		return err
	}
	sub := s.Hub.Subscribe(req.Session, req.Ack)
	defer sub.Close()

	conn.SetWriteDeadline(time.Now().Add(wt))
	if _, err := conn.Write(AppendResume(nil, sub.Resume)); err != nil {
		return err
	}

	// Drain the read side: a client write is a protocol error, a read
	// error/EOF means the client left. Either way the writer below is
	// released by closing the connection.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		conn.SetReadDeadline(time.Time{})
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				conn.Close()
				return
			}
		}
	}()

	for {
		select {
		case frame, ok := <-sub.C:
			if !ok {
				// Evicted (slow) or hub shutdown: drop the connection;
				// the client reconnects with its resume token.
				return nil
			}
			conn.SetWriteDeadline(time.Now().Add(wt))
			if _, err := conn.Write(frame); err != nil {
				return err
			}
		case <-readDone:
			return nil
		case <-ctx.Done():
			return nil
		}
	}
}
