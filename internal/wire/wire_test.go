package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"gpsdl/internal/rng"
)

// synthFix builds a deterministic pseudo-random walk fix for session s
// at epoch e.
func synthFix(s int, e uint64) Fix {
	r := rng.New(int64(rng.Mix64(uint64(s)*911 + e)))
	return Fix{
		Session:   s,
		Epoch:     e,
		X:         1.2e6 + 40*r.NormFloat64(),
		Y:         -4.5e6 + 40*r.NormFloat64(),
		Z:         3.3e6 + 40*r.NormFloat64(),
		ClockBias: 2000 + 0.5*r.NormFloat64(),
		HDOP:      1 + r.Float64(),
		Sats:      6 + int(e%3),
		State:     uint8(e % 3),
		Solver:    uint8(e % 4),
		Coast:     e%7 == 3,
		Suspect:   e%11 == 5,
		Degraded:  e%13 == 6,
	}
}

func quantized(f Fix) Fix {
	f.X = unquant(quant(f.X))
	f.Y = unquant(quant(f.Y))
	f.Z = unquant(quant(f.Z))
	f.ClockBias = unquant(quant(f.ClockBias))
	f.HDOP = unquant(quant(f.HDOP))
	return f
}

// TestFixRoundTrip: encode → frame-read → decode reproduces every fix
// field at millimetre quantization, across keyframes, deltas and
// misses.
func TestFixRoundTrip(t *testing.T) {
	var enc FixEncoder
	var buf []byte
	var want []Fix
	for e := uint64(0); e < 200; e++ {
		f := synthFix(7, e)
		if e%17 == 9 { // sprinkle misses
			f = Fix{Session: 7, Epoch: e, Miss: true, State: 2, Solver: 1}
		}
		buf, _ = enc.AppendFix(buf, &f)
		want = append(want, quantized(f))
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	var dec FixDecoder
	for i, w := range want {
		p, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := dec.DecodeFix(p)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if w.Miss {
			w.X, w.Y, w.Z, w.ClockBias, w.HDOP, w.Sats = 0, 0, 0, 0, 0, 0
		}
		if got != w {
			t.Fatalf("fix %d mismatch:\n got %+v\nwant %+v", i, got, w)
		}
	}
}

// TestEncoderRealignsAtBlockBoundary: an encoder that starts mid-stream
// (a handed-off session) produces byte-identical frames to the
// uninterrupted encoder from the next keyframe block on — and exactly
// identical from a block boundary start.
func TestEncoderRealignsAtBlockBoundary(t *testing.T) {
	const K, cut, end = 16, 48, 120 // cut % K == 0
	fixes := make([]Fix, end)
	for e := range fixes {
		fixes[e] = synthFix(3, uint64(e))
	}
	control := FixEncoder{KeyframeEvery: K}
	var controlBytes [][]byte
	for i := range fixes {
		b, _ := control.AppendFix(nil, &fixes[i])
		controlBytes = append(controlBytes, b)
	}
	// Restarted encoder joins at the block boundary `cut`.
	restart := FixEncoder{KeyframeEvery: K}
	for e := cut; e < end; e++ {
		b, key := restart.AppendFix(nil, &fixes[e])
		if e == cut && !key {
			t.Fatalf("first fix after restart must be a keyframe")
		}
		if !bytes.Equal(b, controlBytes[e]) {
			t.Fatalf("epoch %d: restarted encoder bytes differ from control", e)
		}
	}
	// Joining mid-block: forced keyframe differs, but realigns at the
	// next block boundary.
	mid := FixEncoder{KeyframeEvery: K}
	join := cut + 5
	for e := join; e < end; e++ {
		b, _ := mid.AppendFix(nil, &fixes[e])
		next := (join/K + 1) * K
		if e >= next && !bytes.Equal(b, controlBytes[e]) {
			t.Fatalf("epoch %d: mid-block join did not realign at block boundary %d", e, next)
		}
	}
}

// TestDecoderFromAnyKeyframe: a decoder that joins at any keyframe
// reconstructs values bit-identical to one that saw the whole stream.
func TestDecoderFromAnyKeyframe(t *testing.T) {
	const K, end = 8, 80
	enc := FixEncoder{KeyframeEvery: K}
	var frames [][]byte
	var keys []bool
	for e := uint64(0); e < end; e++ {
		f := synthFix(1, e)
		b, key := enc.AppendFix(nil, &f)
		frames, keys = append(frames, b), append(keys, key)
	}
	var full FixDecoder
	var want []Fix
	for _, b := range frames {
		f, err := full.DecodeFix(payloadOf(t, b))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, f)
	}
	for start := range frames {
		if !keys[start] {
			continue
		}
		var dec FixDecoder
		for e := start; e < end; e++ {
			f, err := dec.DecodeFix(payloadOf(t, frames[e]))
			if err != nil {
				t.Fatalf("join at %d, epoch %d: %v", start, e, err)
			}
			if f != want[e] {
				t.Fatalf("join at %d, epoch %d: values differ", start, e)
			}
		}
	}
}

func payloadOf(t *testing.T, frame []byte) []byte {
	t.Helper()
	fr := NewFrameReader(bytes.NewReader(frame))
	p, err := fr.Next()
	if err != nil {
		t.Fatalf("payloadOf: %v", err)
	}
	return p
}

// TestDeltaWithoutKeyframe: a delta frame with no chain fails loudly.
func TestDeltaWithoutKeyframe(t *testing.T) {
	enc := FixEncoder{KeyframeEvery: 8}
	f0, f1 := synthFix(0, 0), synthFix(0, 1)
	enc.AppendFix(nil, &f0)
	delta, key := enc.AppendFix(nil, &f1)
	if key {
		t.Fatal("epoch 1 should be a delta")
	}
	var dec FixDecoder
	if _, err := dec.DecodeFix(payloadOf(t, delta)); !errors.Is(err, ErrDeltaWithoutKeyframe) {
		t.Fatalf("err = %v, want ErrDeltaWithoutKeyframe", err)
	}
}

// TestSubscribeResumeRoundTrip covers the control frames.
func TestSubscribeResumeRoundTrip(t *testing.T) {
	for _, ack := range []int64{-1, 0, 7, 1 << 40} {
		p := payloadOf(t, AppendSubscribe(nil, 42, ack))
		s, err := DecodeSubscribe(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Session != 42 || s.Ack != ack || s.Version != Version {
			t.Fatalf("subscribe roundtrip: %+v", s)
		}
	}
	for _, r := range []Resume{
		{Session: 3, Status: StatusLive, Resume: 10, Head: 9},
		{Session: 0, Status: StatusUnknown, Resume: 0, Head: -1},
		{Session: 9, Status: StatusGap, Resume: 512, Head: 1000},
	} {
		got, err := DecodeResume(payloadOf(t, AppendResume(nil, r)))
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Fatalf("resume roundtrip: got %+v want %+v", got, r)
		}
	}
}

// TestFrameCorruption: flipped bytes and truncations are detected, and
// PeekFix agrees with the full decoder.
func TestFrameCorruption(t *testing.T) {
	var enc FixEncoder
	f := synthFix(5, 64)
	frame, _ := enc.AppendFix(nil, &f)
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		fr := NewFrameReader(bytes.NewReader(mut))
		if p, err := fr.Next(); err == nil {
			// A flip confined to the payload must fail CRC; a flip in
			// the envelope may legally truncate the stream instead.
			var dec FixDecoder
			got, derr := dec.DecodeFix(p)
			if derr == nil && got == quantized(f) {
				t.Fatalf("flip at %d: frame decoded identically anyway", i)
			}
		}
	}
	s, e, key, err := PeekFix(payloadOf(t, frame))
	if err != nil || s != 5 || e != 64 || !key {
		t.Fatalf("PeekFix = (%d,%d,%v,%v)", s, e, key, err)
	}
}

// TestQuantSaturation: non-finite and absurd values stay bounded.
func TestQuantSaturation(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300} {
		q := quant(v)
		if q > quantMax || q < -quantMax {
			t.Fatalf("quant(%v) = %d out of range", v, q)
		}
	}
	if quant(1.0005) != 1001 && quant(1.0005) != 1000 {
		t.Fatalf("mm rounding broken: %d", quant(1.0005))
	}
}
