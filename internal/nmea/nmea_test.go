package nmea

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gpsdl/internal/geo"
)

func sampleFix() Fix {
	return Fix{
		TimeOfDay:  12*3600 + 34*60 + 56.78,
		Pos:        geo.FromDegrees(53.3086, -60.4195, 38.4),
		Quality:    QualityGPS,
		NumSats:    9,
		HDOP:       1.3,
		SpeedKnots: 12.5,
		CourseDeg:  271.0,
	}
}

func TestGGAFormat(t *testing.T) {
	s := GGA(sampleFix())
	if !strings.HasPrefix(s, "$GPGGA,123456.78,") {
		t.Errorf("GGA prefix wrong: %s", s)
	}
	if !strings.Contains(s, ",N,") || !strings.Contains(s, ",W,") {
		t.Errorf("hemispheres wrong: %s", s)
	}
	if _, err := Validate(s); err != nil {
		t.Errorf("self-validation failed: %v (%s)", err, s)
	}
}

func TestRMCFormat(t *testing.T) {
	s := RMC(sampleFix())
	if !strings.HasPrefix(s, "$GPRMC,123456.78,A,") {
		t.Errorf("RMC prefix wrong: %s", s)
	}
	if _, err := Validate(s); err != nil {
		t.Errorf("self-validation failed: %v", err)
	}
	bad := sampleFix()
	bad.Quality = QualityInvalid
	if s := RMC(bad); !strings.Contains(s, ",V,") {
		t.Errorf("invalid fix not flagged V: %s", s)
	}
}

func TestChecksumKnownValue(t *testing.T) {
	// Classic reference sentence checksum.
	body := "GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,"
	if got := Checksum(body); got != 0x47 {
		t.Errorf("Checksum = %02X, want 47", got)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		wantErr error
	}{
		{"no dollar", "GPGGA,x*00", ErrBadSentence},
		{"no star", "$GPGGA,x", ErrBadSentence},
		{"bad hex", "$GPGGA*ZZ", ErrBadSentence},
		{"wrong checksum", "$GPGGA,test*00", ErrChecksum},
		{"empty", "", ErrBadSentence},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Validate(tt.in); !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestGGARoundTrip(t *testing.T) {
	f := sampleFix()
	got, err := ParseGGA(GGA(f))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.TimeOfDay-f.TimeOfDay) > 0.011 {
		t.Errorf("time = %v, want %v", got.TimeOfDay, f.TimeOfDay)
	}
	// 4 decimal minutes ≈ 0.2 m of latitude.
	if math.Abs(got.Pos.Lat-f.Pos.Lat) > 1e-6 {
		t.Errorf("lat = %v, want %v", got.Pos.Lat, f.Pos.Lat)
	}
	if math.Abs(got.Pos.Lon-f.Pos.Lon) > 1e-6 {
		t.Errorf("lon = %v, want %v", got.Pos.Lon, f.Pos.Lon)
	}
	if math.Abs(got.Pos.Alt-f.Pos.Alt) > 0.051 {
		t.Errorf("alt = %v, want %v", got.Pos.Alt, f.Pos.Alt)
	}
	if got.Quality != f.Quality || got.NumSats != f.NumSats {
		t.Errorf("quality/sats = %v/%v", got.Quality, got.NumSats)
	}
	if math.Abs(got.HDOP-f.HDOP) > 0.051 {
		t.Errorf("hdop = %v", got.HDOP)
	}
}

// Property: GGA round-trips positions anywhere on Earth to ≈meter level.
func TestPropGGARoundTripGlobal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fix := Fix{
			TimeOfDay: r.Float64() * 86400,
			Pos: geo.LLA{
				Lat: (r.Float64() - 0.5) * math.Pi * 0.99,
				Lon: (r.Float64() - 0.5) * 2 * math.Pi * 0.999,
				Alt: r.Float64() * 5000,
			},
			Quality: QualityGPS,
			NumSats: 4 + r.Intn(9),
			HDOP:    0.5 + r.Float64()*5,
		}
		got, err := ParseGGA(GGA(fix))
		if err != nil {
			return false
		}
		// 0.0001 arc-minutes ≈ 1.9e-8 rad.
		return math.Abs(got.Pos.Lat-fix.Pos.Lat) < 2e-8+1e-12 &&
			math.Abs(got.Pos.Lon-fix.Pos.Lon) < 2e-8+1e-12 &&
			math.Abs(got.Pos.Alt-fix.Pos.Alt) < 0.051
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseGGARejectsOtherSentences(t *testing.T) {
	if _, err := ParseGGA(RMC(sampleFix())); err == nil {
		t.Error("RMC accepted as GGA")
	}
}

func TestTimeFieldWraps(t *testing.T) {
	if got := timeField(86400 + 3600); !strings.HasPrefix(got, "01") {
		t.Errorf("timeField did not wrap: %s", got)
	}
	if got := timeField(-3600); !strings.HasPrefix(got, "23") {
		t.Errorf("negative time not wrapped: %s", got)
	}
}
