package nmea

import (
	"math"
	"testing"

	"gpsdl/internal/geo"
)

// FuzzValidate checks the framing/checksum layer two ways: Validate must
// never panic on arbitrary input, and frame∘Validate is the identity on
// any body (the '*' separator is located from the end, so bodies
// containing '*' still round-trip).
func FuzzValidate(f *testing.F) {
	f.Add("$GPGGA,000000.00,4823.3820,N,00134.0000,W,1,08,1.0,35.0,M,0.0,M,,*7A")
	f.Add("GPGGA,weird*body,with,stars")
	f.Add("$*00")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = Validate(s) // must not panic, any error is fine
		body, err := Validate(frame(s))
		if err != nil {
			t.Fatalf("Validate(frame(%q)): %v", s, err)
		}
		if body != s {
			t.Fatalf("frame round trip changed body: %q != %q", body, s)
		}
	})
}

// FuzzParseGGA drives the sentence parser with arbitrary input. It must
// never panic, and every fix it accepts must re-render to a sentence the
// parser accepts again (render∘parse closure), provided the parsed
// fields are finite — ParseFloat legitimately accepts NaN/Inf spellings
// the fixed-width renderer cannot reproduce.
func FuzzParseGGA(f *testing.F) {
	f.Add(GGA(Fix{TimeOfDay: 43210, Pos: geo.LLA{Lat: 0.84, Lon: -0.02, Alt: 35}, Quality: QualityGPS, NumSats: 8, HDOP: 1.1}))
	f.Add(GGA(Fix{TimeOfDay: 86399.99, Pos: geo.LLA{Lat: -1.2, Lon: 3.1, Alt: -10}, Quality: QualityEstimated, NumSats: 3, HDOP: 9.9}))
	f.Add("$GPGGA,not,enough,fields*00")
	f.Fuzz(func(t *testing.T, s string) {
		fix, err := ParseGGA(s)
		if err != nil {
			return
		}
		for _, v := range []float64{fix.TimeOfDay, fix.Pos.Lat, fix.Pos.Lon, fix.Pos.Alt, fix.HDOP} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		again := GGA(fix)
		if _, err := ParseGGA(again); err != nil {
			t.Fatalf("re-parse of re-rendered %q (from %q): %v", again, s, err)
		}
	})
}
