package nmea

import (
	"math"
	"strconv"
)

// Allocation-free sentence encoders. AppendGGA/AppendRMC write into a
// caller-supplied buffer (append-style, like strconv.Append*), producing
// bytes identical to GGA/RMC. With a reused buffer the steady-state cost
// is zero allocations per sentence, which is what puts NMEA output on the
// fix engine's hot path.

const hexUpper = "0123456789ABCDEF"

// AppendGGA appends a $GPGGA sentence for f to dst and returns the
// extended buffer. Output is byte-identical to GGA(f).
func AppendGGA(dst []byte, f Fix) []byte {
	dst = append(dst, '$')
	body := len(dst)
	dst = append(dst, "GPGGA,"...)
	dst = appendTimeField(dst, f.TimeOfDay)
	dst = append(dst, ',')
	dst = appendLatitude(dst, f.Pos.Lat)
	dst = append(dst, ',')
	dst = appendLongitude(dst, f.Pos.Lon)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(f.Quality), 10)
	dst = append(dst, ',')
	dst = appendPad2(dst, f.NumSats)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, f.HDOP, 'f', 1, 64)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, f.Pos.Alt, 'f', 1, 64)
	dst = append(dst, ",M,0.0,M,,"...)
	return appendChecksum(dst, body)
}

// AppendRMC appends a $GPRMC sentence for f to dst and returns the
// extended buffer. Output is byte-identical to RMC(f).
func AppendRMC(dst []byte, f Fix) []byte {
	dst = append(dst, '$')
	body := len(dst)
	dst = append(dst, "GPRMC,"...)
	dst = appendTimeField(dst, f.TimeOfDay)
	if f.Quality == QualityInvalid {
		dst = append(dst, ",V,"...)
	} else {
		dst = append(dst, ",A,"...)
	}
	dst = appendLatitude(dst, f.Pos.Lat)
	dst = append(dst, ',')
	dst = appendLongitude(dst, f.Pos.Lon)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, f.SpeedKnots, 'f', 1, 64)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, f.CourseDeg, 'f', 1, 64)
	dst = append(dst, ",,,"...)
	return appendChecksum(dst, body)
}

// appendChecksum XORs dst[body:] and appends *HH.
func appendChecksum(dst []byte, body int) []byte {
	var c byte
	for _, b := range dst[body:] {
		c ^= b
	}
	return append(dst, '*', hexUpper[c>>4], hexUpper[c&0x0f])
}

// appendPad2 appends v with fmt's %02d semantics.
func appendPad2(dst []byte, v int) []byte {
	if v >= 0 && v < 10 {
		dst = append(dst, '0')
	}
	return strconv.AppendInt(dst, int64(v), 10)
}

// appendZeroPadFloat appends v with fmt's %0W.Pf semantics for
// non-negative v: fixed precision, zero-padded on the left to width
// bytes. The digits are appended in place and shifted right if padding is
// needed, so no temporary buffer is involved.
func appendZeroPadFloat(dst []byte, v float64, width, prec int) []byte {
	start := len(dst)
	dst = strconv.AppendFloat(dst, v, 'f', prec, 64)
	if n := len(dst) - start; n < width {
		pad := width - n
		for i := 0; i < pad; i++ {
			dst = append(dst, '0')
		}
		copy(dst[start+pad:], dst[start:len(dst)-pad])
		for i := 0; i < pad; i++ {
			dst[start+i] = '0'
		}
	}
	return dst
}

// appendTimeField renders hhmmss.ss from seconds of day, matching
// timeField.
func appendTimeField(dst []byte, t float64) []byte {
	t = math.Mod(t, 86400)
	if t < 0 {
		t += 86400
	}
	h := int(t) / 3600
	m := (int(t) % 3600) / 60
	s := t - float64(h*3600+m*60)
	dst = appendPad2(dst, h)
	dst = appendPad2(dst, m)
	return appendZeroPadFloat(dst, s, 5, 2)
}

// appendLatitude renders ddmm.mmmm,H matching latitude.
func appendLatitude(dst []byte, rad float64) []byte {
	hemi := byte('N')
	if rad < 0 {
		hemi = 'S'
		rad = -rad
	}
	deg := rad * 180 / math.Pi
	d := math.Floor(deg)
	minutes := (deg - d) * 60
	dst = appendZeroPadFloat(dst, d, 2, 0)
	dst = appendZeroPadFloat(dst, minutes, 7, 4)
	return append(dst, ',', hemi)
}

// appendLongitude renders dddmm.mmmm,H matching longitude.
func appendLongitude(dst []byte, rad float64) []byte {
	hemi := byte('E')
	if rad < 0 {
		hemi = 'W'
		rad = -rad
	}
	deg := rad * 180 / math.Pi
	d := math.Floor(deg)
	minutes := (deg - d) * 60
	dst = appendZeroPadFloat(dst, d, 3, 0)
	dst = appendZeroPadFloat(dst, minutes, 7, 4)
	return append(dst, ',', hemi)
}
