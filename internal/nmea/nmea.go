// Package nmea renders and parses the NMEA 0183 sentences GPS receivers
// emit — GGA (fix data) and RMC (recommended minimum). It gives the
// positioning pipeline a realistic output format: cmd/gpsrun can stream
// the fixes any downstream NMEA consumer (chart plotter, gpsd, autopilot)
// would ingest.
package nmea

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"gpsdl/internal/geo"
)

// Parse errors.
var (
	// ErrBadSentence is returned for framing problems (no $, no *).
	ErrBadSentence = errors.New("nmea: malformed sentence")
	// ErrChecksum is returned when the checksum does not match.
	ErrChecksum = errors.New("nmea: checksum mismatch")
)

// FixQuality is the GGA fix-quality field.
type FixQuality int

// GGA fix qualities.
const (
	QualityInvalid FixQuality = 0
	QualityGPS     FixQuality = 1
	QualityDGPS    FixQuality = 2
	// QualityEstimated marks a dead-reckoning (coasting) fix: the receiver
	// is holding its last position and extrapolating the clock model, not
	// solving from satellites.
	QualityEstimated FixQuality = 6
)

// Fix is the information one epoch's solution contributes to a sentence.
type Fix struct {
	// TimeOfDay is UTC seconds of day.
	TimeOfDay float64
	// Pos is the geodetic position.
	Pos geo.LLA
	// Quality is the GGA fix quality.
	Quality FixQuality
	// NumSats is the satellite count used in the fix.
	NumSats int
	// HDOP is the horizontal dilution of precision.
	HDOP float64
	// SpeedKnots and CourseDeg describe motion (RMC).
	SpeedKnots float64
	CourseDeg  float64
}

// GGA renders a $GPGGA sentence.
func GGA(f Fix) string {
	latStr, latHemi := latitude(f.Pos.Lat)
	lonStr, lonHemi := longitude(f.Pos.Lon)
	body := fmt.Sprintf("GPGGA,%s,%s,%s,%s,%s,%d,%02d,%.1f,%.1f,M,0.0,M,,",
		timeField(f.TimeOfDay), latStr, latHemi, lonStr, lonHemi,
		int(f.Quality), f.NumSats, f.HDOP, f.Pos.Alt)
	return frame(body)
}

// RMC renders a $GPRMC sentence (date fields blank: the simulation clock
// carries seconds of day, not calendar dates).
func RMC(f Fix) string {
	latStr, latHemi := latitude(f.Pos.Lat)
	lonStr, lonHemi := longitude(f.Pos.Lon)
	status := "A"
	if f.Quality == QualityInvalid {
		status = "V"
	}
	body := fmt.Sprintf("GPRMC,%s,%s,%s,%s,%s,%s,%.1f,%.1f,,,",
		timeField(f.TimeOfDay), status, latStr, latHemi, lonStr, lonHemi,
		f.SpeedKnots, f.CourseDeg)
	return frame(body)
}

// frame wraps a sentence body with $ and *checksum.
func frame(body string) string {
	return fmt.Sprintf("$%s*%02X", body, Checksum(body))
}

// Checksum returns the XOR of all bytes of the body (between $ and *).
func Checksum(body string) byte {
	var c byte
	for i := 0; i < len(body); i++ {
		c ^= body[i]
	}
	return c
}

// Validate checks framing and checksum, returning the body.
func Validate(sentence string) (string, error) {
	if len(sentence) < 4 || sentence[0] != '$' {
		return "", fmt.Errorf("nmea: %q: %w", sentence, ErrBadSentence)
	}
	star := strings.LastIndexByte(sentence, '*')
	if star < 0 || star+3 > len(sentence) {
		return "", fmt.Errorf("nmea: %q missing checksum: %w", sentence, ErrBadSentence)
	}
	body := sentence[1:star]
	want, err := strconv.ParseUint(sentence[star+1:star+3], 16, 8)
	if err != nil {
		return "", fmt.Errorf("nmea: bad checksum digits: %w", ErrBadSentence)
	}
	if Checksum(body) != byte(want) {
		return "", fmt.Errorf("nmea: body %q: %w", body, ErrChecksum)
	}
	return body, nil
}

// ParseGGA extracts the fix from a $GPGGA sentence.
func ParseGGA(sentence string) (Fix, error) {
	body, err := Validate(sentence)
	if err != nil {
		return Fix{}, err
	}
	fields := strings.Split(body, ",")
	if len(fields) < 10 || fields[0] != "GPGGA" {
		return Fix{}, fmt.Errorf("nmea: not a GGA sentence: %w", ErrBadSentence)
	}
	var f Fix
	if f.TimeOfDay, err = parseTime(fields[1]); err != nil {
		return Fix{}, err
	}
	lat, err := parseAngle(fields[2], fields[3], 2)
	if err != nil {
		return Fix{}, err
	}
	lon, err := parseAngle(fields[4], fields[5], 3)
	if err != nil {
		return Fix{}, err
	}
	q, err := strconv.Atoi(fields[6])
	if err != nil {
		return Fix{}, fmt.Errorf("nmea: quality %q: %w", fields[6], ErrBadSentence)
	}
	n, err := strconv.Atoi(fields[7])
	if err != nil {
		return Fix{}, fmt.Errorf("nmea: numsats %q: %w", fields[7], ErrBadSentence)
	}
	hdop, err := strconv.ParseFloat(fields[8], 64)
	if err != nil {
		return Fix{}, fmt.Errorf("nmea: hdop %q: %w", fields[8], ErrBadSentence)
	}
	alt, err := strconv.ParseFloat(fields[9], 64)
	if err != nil {
		return Fix{}, fmt.Errorf("nmea: altitude %q: %w", fields[9], ErrBadSentence)
	}
	f.Pos = geo.LLA{Lat: lat, Lon: lon, Alt: alt}
	f.Quality = FixQuality(q)
	f.NumSats = n
	f.HDOP = hdop
	return f, nil
}

// timeField renders hhmmss.ss from seconds of day.
func timeField(t float64) string {
	t = math.Mod(t, 86400)
	if t < 0 {
		t += 86400
	}
	h := int(t) / 3600
	m := (int(t) % 3600) / 60
	s := t - float64(h*3600+m*60)
	return fmt.Sprintf("%02d%02d%05.2f", h, m, s)
}

// parseTime inverts timeField.
func parseTime(s string) (float64, error) {
	if len(s) < 6 {
		return 0, fmt.Errorf("nmea: time %q: %w", s, ErrBadSentence)
	}
	h, err1 := strconv.Atoi(s[0:2])
	m, err2 := strconv.Atoi(s[2:4])
	sec, err3 := strconv.ParseFloat(s[4:], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("nmea: time %q: %w", s, ErrBadSentence)
	}
	return float64(h*3600+m*60) + sec, nil
}

// latitude renders ddmm.mmmm plus hemisphere.
func latitude(rad float64) (string, string) {
	hemi := "N"
	if rad < 0 {
		hemi = "S"
		rad = -rad
	}
	deg := rad * 180 / math.Pi
	d := math.Floor(deg)
	minutes := (deg - d) * 60
	return fmt.Sprintf("%02.0f%07.4f", d, minutes), hemi
}

// longitude renders dddmm.mmmm plus hemisphere.
func longitude(rad float64) (string, string) {
	hemi := "E"
	if rad < 0 {
		hemi = "W"
		rad = -rad
	}
	deg := rad * 180 / math.Pi
	d := math.Floor(deg)
	minutes := (deg - d) * 60
	return fmt.Sprintf("%03.0f%07.4f", d, minutes), hemi
}

// parseAngle inverts latitude/longitude; degDigits is 2 for latitude and
// 3 for longitude.
func parseAngle(s, hemi string, degDigits int) (float64, error) {
	if len(s) < degDigits+2 {
		return 0, fmt.Errorf("nmea: angle %q: %w", s, ErrBadSentence)
	}
	d, err1 := strconv.Atoi(s[:degDigits])
	minutes, err2 := strconv.ParseFloat(s[degDigits:], 64)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("nmea: angle %q: %w", s, ErrBadSentence)
	}
	deg := float64(d) + minutes/60
	rad := deg * math.Pi / 180
	switch hemi {
	case "N", "E":
		return rad, nil
	case "S", "W":
		return -rad, nil
	default:
		return 0, fmt.Errorf("nmea: hemisphere %q: %w", hemi, ErrBadSentence)
	}
}
