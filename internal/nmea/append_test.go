package nmea

import (
	"math"
	"math/rand"
	"testing"

	"gpsdl/internal/geo"
)

// trickyFixes covers the formatting edge cases where a hand-rolled
// encoder could drift from fmt: zero fields, hemisphere signs, rounding
// at field boundaries, padding widths, negative altitude, day wrap, and
// non-finite values.
func trickyFixes() []Fix {
	return []Fix{
		{},
		sampleFix(),
		{TimeOfDay: 86399.999, Pos: lla(89.99999, 179.99999, -12.34), Quality: QualityDGPS, NumSats: 12, HDOP: 9.96},
		{TimeOfDay: -3600, Pos: lla(-0.00001, -0.00001, 0.04), NumSats: 4, HDOP: 99.95},
		{TimeOfDay: 86400 + 3661.005, Pos: lla(-89.5, -179.5, 8848.86), Quality: QualityGPS, NumSats: 10, HDOP: 1.05},
		{TimeOfDay: 59.995, Pos: lla(0.5, 0.5, 0), NumSats: 9, SpeedKnots: 0.05, CourseDeg: 359.95},
		{TimeOfDay: 3599.999, Pos: lla(45.999999, 9.999999, 0.049), Quality: QualityGPS, NumSats: 100, HDOP: 0.549},
		{TimeOfDay: 43200, Pos: lla(0, 0, math.Inf(1)), HDOP: math.NaN()},
		{TimeOfDay: 1.25, Pos: lla(1.0/3, -1.0/3, -0.05), NumSats: 7, SpeedKnots: 123.456, CourseDeg: 0.04},
	}
}

func lla(latDeg, lonDeg, alt float64) geo.LLA {
	return geo.LLA{Lat: latDeg * math.Pi / 180, Lon: lonDeg * math.Pi / 180, Alt: alt}
}

func TestAppendMatchesSprintf(t *testing.T) {
	fixes := trickyFixes()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		fixes = append(fixes, Fix{
			TimeOfDay:  r.Float64()*2*86400 - 86400,
			Pos:        lla(r.Float64()*180-90, r.Float64()*360-180, r.Float64()*20000-1000),
			Quality:    FixQuality(r.Intn(3)),
			NumSats:    r.Intn(32),
			HDOP:       r.Float64() * 50,
			SpeedKnots: r.Float64() * 200,
			CourseDeg:  r.Float64() * 360,
		})
	}
	var buf []byte
	for i, f := range fixes {
		buf = AppendGGA(buf[:0], f)
		if got, want := string(buf), GGA(f); got != want {
			t.Errorf("fix %d GGA:\n  append  %s\n  sprintf %s", i, got, want)
		}
		buf = AppendRMC(buf[:0], f)
		if got, want := string(buf), RMC(f); got != want {
			t.Errorf("fix %d RMC:\n  append  %s\n  sprintf %s", i, got, want)
		}
	}
}

func TestAppendZeroAlloc(t *testing.T) {
	f := sampleFix()
	buf := make([]byte, 0, 128)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendGGA(buf[:0], f)
		buf = AppendRMC(buf[:0], f)
	}); n != 0 {
		t.Errorf("Append encoders allocate %v times per sentence pair, want 0", n)
	}
}

func BenchmarkAppendGGA(b *testing.B) {
	f := sampleFix()
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendGGA(buf[:0], f)
	}
	_ = buf
}
