package atmosphere

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIonoDelayDiurnalShape(t *testing.T) {
	// Peak at 14:00 local, quiet floor at night.
	peak := IonoDelay(math.Pi/2, IonoPeakLocalTime)
	night := IonoDelay(math.Pi/2, 3*3600)
	if peak <= night {
		t.Errorf("peak %v <= night %v", peak, night)
	}
	// The Klobuchar obliquity is 1.0004 (not exactly 1) at zenith, so
	// compare with a percent-level tolerance.
	if math.Abs(night-ZenithIonoQuietM) > 0.01*ZenithIonoQuietM {
		t.Errorf("night zenith delay = %v, want ≈%v", night, ZenithIonoQuietM)
	}
	wantPeak := ZenithIonoQuietM + ZenithIonoPeakM
	if math.Abs(peak-wantPeak) > 0.01*wantPeak {
		t.Errorf("peak zenith delay = %v, want ≈%v", peak, wantPeak)
	}
}

func TestIonoDelayElevationDependence(t *testing.T) {
	// Delay grows monotonically as elevation decreases.
	lt := 12 * 3600.0
	prev := IonoDelay(math.Pi/2, lt)
	for deg := 85; deg >= 5; deg -= 5 {
		e := float64(deg) * math.Pi / 180
		d := IonoDelay(e, lt)
		if d < prev-1e-12 {
			t.Fatalf("delay not monotone: %v° -> %v m < %v m", deg, d, prev)
		}
		prev = d
	}
	// Horizon delay is a few times the zenith delay, not unbounded.
	horizon := IonoDelay(0, lt)
	zenith := IonoDelay(math.Pi/2, lt)
	if horizon < 2*zenith || horizon > 5*zenith {
		t.Errorf("horizon/zenith ratio = %v, want 2-5×", horizon/zenith)
	}
}

func TestIonoDelayClampsNegativeElevation(t *testing.T) {
	if got, want := IonoDelay(-0.1, 0), IonoDelay(0, 0); got != want {
		t.Errorf("negative elevation not clamped: %v vs %v", got, want)
	}
}

func TestTropoDelayMagnitudes(t *testing.T) {
	// Zenith, sea level: ≈2.4 m.
	if got := TropoDelay(math.Pi/2, 0); math.Abs(got-ZenithTropoSeaLevelM) > 1e-9 {
		t.Errorf("zenith sea-level = %v, want %v", got, ZenithTropoSeaLevelM)
	}
	// 5° elevation: roughly 1/sin(5°) ≈ 11.5× zenith.
	e5 := 5 * math.Pi / 180
	got := TropoDelay(e5, 0)
	want := ZenithTropoSeaLevelM / math.Sin(e5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("5° slant = %v, want %v", got, want)
	}
	// Altitude thins the troposphere.
	if TropoDelay(math.Pi/2, 5000) >= TropoDelay(math.Pi/2, 0) {
		t.Error("altitude did not reduce tropo delay")
	}
}

func TestTropoDelayHorizonFloor(t *testing.T) {
	// Below 3° the mapping is floored: no singularity.
	atZero := TropoDelay(0, 0)
	atFloor := TropoDelay(3*math.Pi/180, 0)
	if atZero != atFloor {
		t.Errorf("horizon delay %v != floor delay %v", atZero, atFloor)
	}
	if math.IsInf(atZero, 0) || atZero > 60 {
		t.Errorf("horizon delay = %v, want bounded", atZero)
	}
}

func TestMultipathSigmaProfile(t *testing.T) {
	horizon := MultipathSigma(0)
	mid := MultipathSigma(math.Pi / 4)
	zenith := MultipathSigma(math.Pi / 2)
	if !(horizon > mid && mid > zenith) {
		t.Errorf("multipath not decreasing: %v, %v, %v", horizon, mid, zenith)
	}
	if zenith > 0.05 {
		t.Errorf("zenith multipath = %v m, want negligible", zenith)
	}
	if horizon < 0.5 || horizon > 3 {
		t.Errorf("horizon multipath = %v m, want O(1 m)", horizon)
	}
}

// Property: all delays are non-negative and finite over the whole domain.
func TestPropDelaysFiniteNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		elev := r.Float64() * math.Pi / 2
		lt := r.Float64() * 86400
		alt := r.Float64() * 4000
		iono := IonoDelay(elev, lt)
		tropo := TropoDelay(elev, alt)
		mp := MultipathSigma(elev)
		for _, v := range []float64{iono, tropo, mp} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResidualScaling(t *testing.T) {
	elev, lt := math.Pi/4, 43200.0
	full := IonoDelay(elev, lt)
	if got := ResidualIono(elev, lt, 0.5, 1); math.Abs(got-full/2) > 1e-12 {
		t.Errorf("ResidualIono = %v, want %v", got, full/2)
	}
	if got := ResidualIono(elev, lt, 0.5, -1); got >= 0 {
		t.Errorf("ResidualIono with u=-1 = %v, want negative", got)
	}
	if got := ResidualTropo(elev, 100, 0, 1); got != 0 {
		t.Errorf("ResidualTropo with zero remainder = %v", got)
	}
}
