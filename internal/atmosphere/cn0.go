package atmosphere

import "math"

// CN0 ↔ σ mapping. The carrier-to-noise density C/N0 the tracking loops
// report is the standard proxy for per-satellite pseudo-range quality:
// code tracking jitter scales inversely with signal amplitude, so σ
// grows 10× per 20 dB-Hz of C/N0 loss. The mapping is exactly
// invertible, so a simulated observation can advertise a C/N0 that is
// consistent with its synthesized error budget and a solver mapping it
// back recovers an honest weight. It lives here — with the other
// signal-path models — so both the scenario generator (forward) and the
// solver layer (inverse) can share it without an import cycle.
const (
	// CN0RefDBHz is the carrier-to-noise density of a nominal open-sky
	// signal near zenith.
	CN0RefDBHz = 44.0
	// SigmaAtRefM is the 1σ pseudo-range noise (meters) such a signal
	// produces.
	SigmaAtRefM = 0.8
)

// SigmaFromCN0 maps a reported carrier-to-noise density (dB-Hz) to the
// 1σ pseudo-range noise in meters. Non-positive or non-finite C/N0
// means the receiver reported nothing usable; the result is 0
// ("unknown"), which the weighted solvers treat as the homoscedastic
// default.
func SigmaFromCN0(cn0 float64) float64 {
	if cn0 <= 0 || math.IsNaN(cn0) || math.IsInf(cn0, 0) {
		return 0
	}
	return SigmaAtRefM * math.Pow(10, (CN0RefDBHz-cn0)/20)
}

// CN0FromSigma is the exact inverse of SigmaFromCN0 for positive sigma:
// the C/N0 a receiver would report for a signal whose tracking noise is
// sigma meters 1σ.
func CN0FromSigma(sigma float64) float64 {
	return CN0RefDBHz - 20*math.Log10(sigma/SigmaAtRefM)
}
