// Package atmosphere models the signal-path delays a GPS pseudo-range
// picks up between satellite and receiver: ionospheric delay (Klobuchar-
// style single-layer model), tropospheric delay (Saastamoinen-style zenith
// delay with a cosecant mapping), and elevation-dependent multipath noise.
//
// These supply the satellite-dependent error εᵢˢ of paper eq. 3-5. Real
// receivers correct most of each delay with broadcast models; what matters
// to the positioning algorithms is the *residual* after correction, so
// Residual* helpers scale the modeled delay by a configurable remainder
// fraction.
package atmosphere

import (
	"math"
)

// Model parameters with sensible mid-latitude L1 defaults.
const (
	// ZenithIonoQuietM is the quiet-time zenith ionospheric delay in
	// meters (night-time floor of the Klobuchar model, ≈5 ns).
	ZenithIonoQuietM = 1.5
	// ZenithIonoPeakM is the additional diurnal peak amplitude in meters.
	ZenithIonoPeakM = 6.0
	// IonoPeakLocalTime is the local solar time of the ionospheric peak
	// (14:00, the standard Klobuchar phase) in seconds of day.
	IonoPeakLocalTime = 50400.0
	// IonoPeriod is the Klobuchar cosine period in seconds (the model
	// uses a fixed 32 h unless broadcast says otherwise; we keep 24 h
	// periodicity for a self-consistent simulated day).
	IonoPeriod = 86400.0
	// ZenithTropoSeaLevelM is the total zenith tropospheric delay at sea
	// level in meters (hydrostatic + wet, Saastamoinen magnitude).
	ZenithTropoSeaLevelM = 2.4
	// TropoScaleHeightM is the exponential decay height of the
	// tropospheric delay with station altitude.
	TropoScaleHeightM = 8000.0
)

// IonoDelay returns the slant ionospheric group delay in meters for a
// signal at elevation elev (radians) observed at local solar time
// localTime (seconds of day). The diurnal shape is the Klobuchar
// half-cosine: quiet floor at night, peak in the early afternoon. The
// slant factor is the Klobuchar obliquity F = 1 + 16·(0.53 − E/π)³ with E
// in semicircles — here expressed directly in radians.
func IonoDelay(elev, localTime float64) float64 {
	if elev < 0 {
		elev = 0
	}
	// Diurnal vertical delay.
	x := 2 * math.Pi * (math.Mod(localTime, IonoPeriod) - IonoPeakLocalTime) / IonoPeriod
	vertical := ZenithIonoQuietM
	if math.Cos(x) > 0 {
		vertical += ZenithIonoPeakM * math.Cos(x)
	}
	// Klobuchar obliquity with elevation in semicircles.
	eSemi := elev / math.Pi
	f := 1 + 16*math.Pow(0.53-eSemi, 3)
	if f < 1 {
		f = 1
	}
	return vertical * f
}

// TropoDelay returns the slant tropospheric delay in meters at elevation
// elev (radians) for a station at altitude alt meters, using an
// exponential zenith delay and a cosecant mapping floored at 3° to avoid
// the singularity at the horizon.
func TropoDelay(elev, alt float64) float64 {
	zenith := ZenithTropoSeaLevelM * math.Exp(-math.Max(alt, 0)/TropoScaleHeightM)
	minElev := 3 * math.Pi / 180
	if elev < minElev {
		elev = minElev
	}
	return zenith / math.Sin(elev)
}

// MultipathSigma returns the standard deviation (meters) of multipath
// error at elevation elev, using the standard exponential elevation
// profile: strong near the horizon, negligible at zenith.
func MultipathSigma(elev float64) float64 {
	const (
		sigmaZero = 1.2  // meters at the horizon
		decay     = 0.25 // radians e-folding
	)
	if elev < 0 {
		elev = 0
	}
	return sigmaZero * math.Exp(-elev/decay)
}

// ResidualIono returns the post-correction ionospheric residual: the
// broadcast Klobuchar model removes roughly half the delay, so a remainder
// fraction around 0.5 is realistic; the sign/scale factor u in [-1, 1]
// captures how far the true ionosphere deviates from the broadcast model
// for this satellite pass.
func ResidualIono(elev, localTime, remainder, u float64) float64 {
	return IonoDelay(elev, localTime) * remainder * u
}

// ResidualTropo returns the post-correction tropospheric residual
// analogous to ResidualIono; tropospheric models are good, so remainder
// fractions around 0.1 are realistic.
func ResidualTropo(elev, alt, remainder, u float64) float64 {
	return TropoDelay(elev, alt) * remainder * u
}
