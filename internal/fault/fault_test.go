package fault

import (
	"math"
	"reflect"
	"testing"

	"gpsdl/internal/core"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

// testEpoch builds a small epoch with descending elevations, mirroring
// the generator's sort order.
func testEpoch(t float64) scenario.Epoch {
	ep := scenario.Epoch{T: t}
	for i, prn := range []int{7, 12, 3, 25, 30, 5} {
		ep.Obs = append(ep.Obs, scenario.SatObs{
			PRN:         prn,
			Pos:         geo.ECEF{X: 2e7 + float64(i)*1e5, Y: 1e7, Z: 5e6},
			Pseudorange: 2.2e7 + float64(i)*1e4,
			Elevation:   1.4 - 0.2*float64(i),
		})
	}
	return ep
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"drop:prn=7,from=100,until=300",
		"step:prn=3,from=50,until=250,bias=75",
		"ramp:prn=12,rate=0.5",
		"burst:from=400,until=460,sigma=15",
		"clockjump:from=500,bias=0.001",
		"shrink:n=3,from=600,until=700",
		"drop:prn=7,from=100,until=300;step:prn=3,bias=75;shrink:n=0,from=10,until=20",
	}
	for _, spec := range specs {
		prog, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		rt, err := ParseSpec(prog.String())
		if err != nil {
			t.Fatalf("ParseSpec(String(%q)) = %q: %v", spec, prog.String(), err)
		}
		if !reflect.DeepEqual(prog, rt) {
			t.Errorf("spec %q did not round-trip: %#v != %#v", spec, prog, rt)
		}
	}
}

func TestSpecAtAlias(t *testing.T) {
	a, err := ParseSpec("clockjump:at=500,bias=0.001")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("clockjump:from=500,bias=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("at= and from= parse differently: %#v vs %#v", a, b)
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		"warp:prn=1",                   // unknown kind
		"drop:prn",                     // not key=value
		"drop:satellite=1",             // unknown key
		"drop:prn=x",                   // bad int
		"step:prn=1",                   // step without bias
		"ramp:prn=1",                   // ramp without rate
		"burst:sigma=0",                // burst without positive sigma
		"clockjump:at=5",               // clockjump without bias
		"shrink:from=1",                // shrink without n
		"drop:prn=1,from=100,until=50", // inverted window
		"burst:sigma=nan,from=0",       // NaN rejected
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	if prog, err := ParseSpec("  "); err != nil || prog != nil {
		t.Errorf("blank spec: got %v, %v", prog, err)
	}
}

// TestApplyDeterminism is the injector's core guarantee: identical
// inputs give byte-identical outputs and event logs, for repeated calls
// and for epochs processed in any order.
func TestApplyDeterminism(t *testing.T) {
	prog, err := ParseSpec("drop:prn=12,from=5,until=50;step:prn=3,bias=80,from=0;burst:sigma=10,from=20,until=60;clockjump:at=40,bias=1e-3;shrink:n=4,from=70,until=90")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(prog, 99)
	times := []float64{0, 10, 25, 45, 75, 80}
	type result struct {
		ep scenario.Epoch
		ev []Event
	}
	run := func(order []int) map[float64]result {
		out := make(map[float64]result)
		for _, i := range order {
			tt := times[i]
			ep, ev := in.ApplyEpoch(testEpoch(tt))
			out[tt] = result{ep, ev}
		}
		return out
	}
	fwd := run([]int{0, 1, 2, 3, 4, 5})
	rev := run([]int{5, 4, 3, 2, 1, 0})
	for _, tt := range times {
		if !reflect.DeepEqual(fwd[tt], rev[tt]) {
			t.Errorf("t=%g: forward and reverse order disagree", tt)
		}
	}
	// A distinct injector with the same (program, seed) agrees too.
	in2 := NewInjector(prog, 99)
	for _, tt := range times {
		ep, ev := in2.ApplyEpoch(testEpoch(tt))
		if !reflect.DeepEqual(fwd[tt], result{ep, ev}) {
			t.Errorf("t=%g: fresh injector disagrees", tt)
		}
	}
	// A different seed must change the burst draws.
	in3 := NewInjector(prog, 100)
	ep3, _ := in3.ApplyEpoch(testEpoch(25))
	if reflect.DeepEqual(fwd[25].ep, ep3) {
		t.Error("seed change did not alter burst noise")
	}
}

func TestApplyDrop(t *testing.T) {
	prog, _ := ParseSpec("drop:prn=12,from=5,until=50")
	in := NewInjector(prog, 1)
	ep, ev := in.ApplyEpoch(testEpoch(10))
	if len(ep.Obs) != 5 {
		t.Fatalf("dropped epoch has %d obs, want 5", len(ep.Obs))
	}
	for _, o := range ep.Obs {
		if o.PRN == 12 {
			t.Error("PRN 12 still present inside drop window")
		}
	}
	if len(ev) != 1 || ev[0].Kind != KindDrop || ev[0].PRN != 12 {
		t.Errorf("drop events = %+v", ev)
	}
	// Outside the window nothing happens.
	ep, ev = in.ApplyEpoch(testEpoch(60))
	if len(ep.Obs) != 6 || len(ev) != 0 {
		t.Errorf("outside window: %d obs, %d events", len(ep.Obs), len(ev))
	}
}

func TestApplyStepAndRamp(t *testing.T) {
	prog, _ := ParseSpec("step:prn=3,bias=75,from=0;ramp:prn=7,rate=0.5,from=10")
	in := NewInjector(prog, 1)
	base := testEpoch(30)
	ep, ev := in.ApplyEpoch(base)
	var sawStep, sawRamp bool
	for i, o := range ep.Obs {
		switch o.PRN {
		case 3:
			if got := o.Pseudorange - base.Obs[i].Pseudorange; got != 75 {
				t.Errorf("step delta = %g, want 75", got)
			}
			sawStep = true
		case 7:
			if got := o.Pseudorange - base.Obs[i].Pseudorange; got != 0.5*(30-10) {
				t.Errorf("ramp delta = %g, want 10", got)
			}
			sawRamp = true
		default:
			if o.Pseudorange != base.Obs[i].Pseudorange {
				t.Errorf("PRN %d perturbed without a matching clause", o.PRN)
			}
		}
	}
	if !sawStep || !sawRamp {
		t.Fatal("target satellites missing from epoch")
	}
	if len(ev) != 2 {
		t.Errorf("%d events, want 2: %+v", len(ev), ev)
	}
}

func TestApplyClockJumpHitsAllSatellites(t *testing.T) {
	prog, _ := ParseSpec("clockjump:at=40,bias=1e-3")
	in := NewInjector(prog, 1)
	base := testEpoch(50)
	ep, ev := in.ApplyEpoch(base)
	want := geo.SpeedOfLight * 1e-3
	for i := range ep.Obs {
		// The addition rounds at the ~2e7 m pseudo-range magnitude, so
		// compare to within one ULP of that scale.
		if got := ep.Obs[i].Pseudorange - base.Obs[i].Pseudorange; math.Abs(got-want) > 1e-5 {
			t.Errorf("PRN %d: jump delta %g, want %g", ep.Obs[i].PRN, got, want)
		}
	}
	if len(ev) != 1 || ev[0].Kind != KindClockJump || ev[0].Delta != want {
		t.Errorf("clockjump events = %+v", ev)
	}
}

func TestApplyShrinkKeepsHighestElevation(t *testing.T) {
	prog, _ := ParseSpec("shrink:n=3,from=0")
	in := NewInjector(prog, 1)
	ep, ev := in.ApplyEpoch(testEpoch(5))
	if len(ep.Obs) != 3 {
		t.Fatalf("shrunk epoch has %d obs, want 3", len(ep.Obs))
	}
	for _, want := range []int{7, 12, 3} { // the three highest elevations
		found := false
		for _, o := range ep.Obs {
			if o.PRN == want {
				found = true
			}
		}
		if !found {
			t.Errorf("shrink removed high-elevation PRN %d", want)
		}
	}
	if len(ev) != 1 || ev[0].Delta != 3 {
		t.Errorf("shrink events = %+v", ev)
	}
}

func TestScale(t *testing.T) {
	prog, _ := ParseSpec("step:prn=3,bias=100,from=0;drop:prn=7,from=10,until=110;burst:sigma=8,from=0;ramp:prn=5,rate=2,from=0;clockjump:at=5,bias=1e-3")
	half := prog.Scale(0.5)
	if half[0].Bias != 50 {
		t.Errorf("scaled step bias = %g, want 50", half[0].Bias)
	}
	if half[1].Until != 60 { // window 100 s long → 50 s
		t.Errorf("scaled drop until = %g, want 60", half[1].Until)
	}
	if half[2].Sigma != 4 {
		t.Errorf("scaled burst sigma = %g, want 4", half[2].Sigma)
	}
	if half[3].Rate != 1 {
		t.Errorf("scaled ramp rate = %g, want 1", half[3].Rate)
	}
	if half[4].Bias != 5e-4 {
		t.Errorf("scaled clockjump bias = %g, want 5e-4", half[4].Bias)
	}
	if !math.IsInf(half[2].Until, 1) {
		t.Error("infinite window did not stay infinite")
	}
	if got := prog.Scale(0); got != nil {
		t.Errorf("Scale(0) = %v, want nil", got)
	}
	if got := prog.Scale(1); !reflect.DeepEqual(Program(got), prog) {
		t.Errorf("Scale(1) changed the program")
	}
}

func TestApplyDataset(t *testing.T) {
	ds := &scenario.Dataset{Epochs: []scenario.Epoch{testEpoch(0), testEpoch(10), testEpoch(20)}}
	prog, _ := ParseSpec("drop:prn=7,from=5,until=15")
	out, log := ApplyDataset(ds, prog, 3)
	if len(out.Epochs) != 3 {
		t.Fatalf("%d epochs, want 3", len(out.Epochs))
	}
	if len(out.Epochs[0].Obs) != 6 || len(out.Epochs[1].Obs) != 5 || len(out.Epochs[2].Obs) != 6 {
		t.Errorf("obs counts = %d/%d/%d, want 6/5/6",
			len(out.Epochs[0].Obs), len(out.Epochs[1].Obs), len(out.Epochs[2].Obs))
	}
	if len(log) != 1 || log[0].T != 10 {
		t.Errorf("log = %+v", log)
	}
	// Input untouched.
	if len(ds.Epochs[1].Obs) != 6 {
		t.Error("ApplyDataset modified its input")
	}
}

func TestApplySpoofHitsHighestElevations(t *testing.T) {
	prog, err := ParseSpec("spoof:n=2,bias=300,from=0,until=100")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(prog, 1)
	base := testEpoch(10)
	ep, ev := in.ApplyEpoch(base)
	for i, o := range ep.Obs {
		delta := o.Pseudorange - base.Obs[i].Pseudorange
		switch o.PRN {
		case 7, 12: // the two highest elevations
			if delta != 300 {
				t.Errorf("PRN %d: spoof delta %g, want 300", o.PRN, delta)
			}
		default:
			if delta != 0 {
				t.Errorf("PRN %d perturbed by spoof targeting n=2", o.PRN)
			}
		}
	}
	if len(ev) != 2 || ev[0].Kind != KindSpoof || ev[0].PRN != 7 || ev[1].PRN != 12 {
		t.Errorf("spoof events = %+v", ev)
	}
	// Outside the window nothing happens.
	if ep, ev := in.ApplyEpoch(testEpoch(150)); len(ev) != 0 || ep.Obs[0].Pseudorange != base.Obs[0].Pseudorange {
		t.Error("spoof active outside its window")
	}
	// n larger than the constellation spoofs everything without panicking.
	wide, _ := ParseSpec("spoof:n=50,bias=10,from=0")
	ep, ev = NewInjector(wide, 1).ApplyEpoch(base)
	if len(ev) != len(base.Obs) {
		t.Errorf("n=50 spoofed %d of %d satellites", len(ev), len(base.Obs))
	}
}

func TestApplyJamDegradesCN0Consistently(t *testing.T) {
	prog, err := ParseSpec("jam:sigma=20,from=0,until=100")
	if err != nil {
		t.Fatal(err)
	}
	base := testEpoch(10)
	for i := range base.Obs {
		base.Obs[i].CN0 = 45 - float64(i)
	}
	in := NewInjector(prog, 7)
	ep, ev := in.ApplyEpoch(base)
	if len(ev) != len(base.Obs) {
		t.Fatalf("%d jam events, want %d", len(ev), len(base.Obs))
	}
	perturbed := 0
	for i, o := range ep.Obs {
		if o.Pseudorange != base.Obs[i].Pseudorange {
			perturbed++
		}
		if o.CN0 >= base.Obs[i].CN0 {
			t.Errorf("PRN %d: C/N0 %g not degraded from %g", o.PRN, o.CN0, base.Obs[i].CN0)
		}
		// The reported C/N0 must match the combined noise power: jamming
		// σ=20 m on top of the pre-jam budget.
		s0 := core.SigmaFromCN0(base.Obs[i].CN0)
		want := core.CN0FromSigma(math.Sqrt(s0*s0 + 20*20))
		if math.Abs(o.CN0-want) > 1e-12 {
			t.Errorf("PRN %d: jammed C/N0 %g, want %g", o.PRN, o.CN0, want)
		}
	}
	if perturbed < len(base.Obs)-1 {
		t.Errorf("jam noise perturbed only %d of %d pseudoranges", perturbed, len(base.Obs))
	}
	// Unknown C/N0 (0) stays unknown rather than going negative.
	quiet := testEpoch(10)
	ep, _ = in.ApplyEpoch(quiet)
	for _, o := range ep.Obs {
		if o.CN0 != 0 {
			t.Errorf("PRN %d: jam invented C/N0 %g on CN0-free input", o.PRN, o.CN0)
		}
	}
	// Jam noise is independent of the burst stream at the same (seed, t).
	burst, _ := ParseSpec("burst:sigma=20,from=0,until=100")
	bp, _ := NewInjector(burst, 7).ApplyEpoch(testEpoch(10))
	jp, _ := NewInjector(prog, 7).ApplyEpoch(testEpoch(10))
	same := 0
	for i := range bp.Obs {
		if bp.Obs[i].Pseudorange == jp.Obs[i].Pseudorange {
			same++
		}
	}
	if same == len(bp.Obs) {
		t.Error("jam and burst drew identical noise from the same seed")
	}
}

func TestSpoofJamSpecAndScale(t *testing.T) {
	for _, spec := range []string{
		"spoof:n=2,from=100,until=220,bias=300",
		"jam:from=300,until=360,sigma=20",
	} {
		prog, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := prog.String(); got != spec {
			t.Errorf("canonical form %q, want %q", got, spec)
		}
	}
	for _, spec := range []string{
		"spoof:n=2",          // no bias
		"spoof:bias=300",     // no n
		"spoof:n=0,bias=300", // n < 1
		"jam:from=0",         // no sigma
		"jam:sigma=0",        // sigma not positive
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	prog, _ := ParseSpec("spoof:n=2,bias=300;jam:sigma=20")
	half := prog.Scale(0.5)
	if half[0].Bias != 150 || half[0].N != 2 {
		t.Errorf("scaled spoof = %+v", half[0])
	}
	if half[1].Sigma != 10 {
		t.Errorf("scaled jam = %+v", half[1])
	}
}
