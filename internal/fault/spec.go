package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec grammar
//
//	spec    = clause *( ";" clause )
//	clause  = kind ":" field *( "," field )   |   kind
//	field   = key "=" value
//	kind    = "drop" | "step" | "ramp" | "burst" | "clockjump" | "shrink" |
//	          "panic" | "spoof" | "jam"
//	key     = "prn" | "from" | "until" | "at" | "bias" | "rate" | "sigma" | "n"
//
// Examples:
//
//	drop:prn=7,from=100,until=300
//	step:prn=3,bias=75,from=50,until=250
//	ramp:prn=12,rate=0.5,from=0
//	burst:sigma=15,from=400,until=460
//	clockjump:at=500,bias=0.001
//	shrink:n=3,from=600,until=700
//	panic:at=50,until=53
//	spoof:n=2,bias=300,from=100,until=220
//	jam:sigma=20,from=300,until=360
//
// "at" is an alias for "from" (natural for clock jumps). A missing
// "until" means +Inf (for the rest of the run); a missing "from" means 0.

// ParseSpec parses a fault-program spec string. An empty spec yields an
// empty (fault-free) program.
func ParseSpec(spec string) (Program, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var prog Program
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		c, err := parseClause(raw)
		if err != nil {
			return nil, err
		}
		prog = append(prog, c)
	}
	return prog, nil
}

// parseClause parses one "kind:key=val,..." clause.
func parseClause(raw string) (Clause, error) {
	kindStr, rest, _ := strings.Cut(raw, ":")
	c := Clause{From: 0, Until: math.Inf(1)}
	switch strings.TrimSpace(kindStr) {
	case "drop":
		c.Kind = KindDrop
	case "step":
		c.Kind = KindStep
	case "ramp":
		c.Kind = KindRamp
	case "burst":
		c.Kind = KindBurst
	case "clockjump":
		c.Kind = KindClockJump
	case "shrink":
		c.Kind = KindShrink
	case "panic":
		c.Kind = KindPanic
	case "spoof":
		c.Kind = KindSpoof
	case "jam":
		c.Kind = KindJam
	default:
		return Clause{}, fmt.Errorf("fault: unknown kind %q in clause %q (want drop, step, ramp, burst, clockjump, shrink, panic, spoof or jam)", kindStr, raw)
	}
	c.N = -1
	for _, f := range strings.Split(rest, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Clause{}, fmt.Errorf("fault: field %q in clause %q is not key=value", f, raw)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "prn", "n":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Clause{}, fmt.Errorf("fault: bad %s %q in clause %q", key, val, raw)
			}
			if key == "prn" {
				c.PRN = n
			} else {
				c.N = n
			}
		case "from", "at", "until", "bias", "rate", "sigma":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) {
				return Clause{}, fmt.Errorf("fault: bad %s %q in clause %q", key, val, raw)
			}
			switch key {
			case "from", "at":
				c.From = v
			case "until":
				c.Until = v
			case "bias":
				c.Bias = v
			case "rate":
				c.Rate = v
			case "sigma":
				c.Sigma = v
			}
		default:
			return Clause{}, fmt.Errorf("fault: unknown key %q in clause %q", key, raw)
		}
	}
	return c, c.validate(raw)
}

// validate enforces per-kind required fields and sane windows.
func (c Clause) validate(raw string) error {
	if c.Until < c.From {
		return fmt.Errorf("fault: clause %q: until %g before from %g", raw, c.Until, c.From)
	}
	switch c.Kind {
	case KindStep:
		if c.Bias == 0 {
			return fmt.Errorf("fault: clause %q: step needs bias", raw)
		}
	case KindRamp:
		if c.Rate == 0 {
			return fmt.Errorf("fault: clause %q: ramp needs rate", raw)
		}
	case KindBurst:
		if c.Sigma <= 0 {
			return fmt.Errorf("fault: clause %q: burst needs sigma > 0", raw)
		}
	case KindClockJump:
		if c.Bias == 0 {
			return fmt.Errorf("fault: clause %q: clockjump needs bias", raw)
		}
	case KindShrink:
		if c.N < 0 {
			return fmt.Errorf("fault: clause %q: shrink needs n >= 0", raw)
		}
	case KindSpoof:
		if c.Bias == 0 {
			return fmt.Errorf("fault: clause %q: spoof needs bias", raw)
		}
		if c.N < 1 {
			return fmt.Errorf("fault: clause %q: spoof needs n >= 1", raw)
		}
	case KindJam:
		if c.Sigma <= 0 {
			return fmt.Errorf("fault: clause %q: jam needs sigma > 0", raw)
		}
	}
	return nil
}

// String renders the clause in canonical spec form; ParseSpec round-trips
// it.
func (c Clause) String() string {
	var sb strings.Builder
	sb.WriteString(c.Kind.String())
	sep := byte(':')
	field := func(key, val string) {
		sb.WriteByte(sep)
		sep = ','
		sb.WriteString(key)
		sb.WriteByte('=')
		sb.WriteString(val)
	}
	ftoa := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if c.PRN != 0 {
		field("prn", strconv.Itoa(c.PRN))
	}
	if c.N >= 0 && (c.Kind == KindShrink || c.Kind == KindSpoof) {
		field("n", strconv.Itoa(c.N))
	}
	if c.From != 0 {
		field("from", ftoa(c.From))
	}
	if !math.IsInf(c.Until, 1) {
		field("until", ftoa(c.Until))
	}
	if c.Bias != 0 {
		field("bias", ftoa(c.Bias))
	}
	if c.Rate != 0 {
		field("rate", ftoa(c.Rate))
	}
	if c.Sigma != 0 {
		field("sigma", ftoa(c.Sigma))
	}
	return sb.String()
}

// String renders the program as a spec string.
func (p Program) String() string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return strings.Join(parts, ";")
}
