// Package fault is a deterministic, seedable fault injector for scenario
// epoch streams. It applies composable fault programs — per-satellite
// dropout windows, pseudo-range step and ramp biases, multipath bursts,
// receiver clock jumps, and constellation shrink-to-N — to the
// observations of each epoch, logging every application as an Event so a
// run is byte-replayable: the same (program, seed, epoch stream) always
// yields the same faulted observations and the same event log, regardless
// of evaluation order or worker count.
//
// The injector sits between scenario generation and the solvers, which is
// where real degradations enter a receiver: the tracking loops lose a
// satellite (dropout), a reflection biases one code measurement (step /
// ramp / burst), the oscillator is slewed (clock jump), or an occlusion
// leaves too few satellites in view (shrink). Everything downstream —
// RAIM exclusion, solver fallback, clock-reset recovery, coasting — is
// exercised against these programs by internal/engine and the gpsbench
// fault sweep.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"gpsdl/internal/core"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

// Kind identifies a fault clause type.
type Kind uint8

// Fault kinds.
const (
	// KindDrop removes the target satellite's observation during the
	// window (a tracking-loop dropout).
	KindDrop Kind = iota + 1
	// KindStep adds a constant bias to the target pseudo-range during the
	// window (a multipath or ephemeris step error).
	KindStep
	// KindRamp adds a linearly growing bias Rate·(t−From) to the target
	// pseudo-range (a slowly diverging channel).
	KindRamp
	// KindBurst adds zero-mean Gaussian noise of the given sigma to every
	// pseudo-range during the window (a wideband multipath burst). Draws
	// are a pure function of (seed, PRN, t), independent of order.
	KindBurst
	// KindClockJump adds c·Bias to every pseudo-range from time From on —
	// exactly what a receiver clock step of Bias seconds does to the
	// measured code phases. This is the clock predictor's reset path.
	KindClockJump
	// KindShrink truncates the epoch to its N highest-elevation
	// satellites during the window (an occlusion shrinking the visible
	// constellation, possibly below the 4 a solver needs).
	KindShrink
	// KindPanic panics (with an InjectedPanic value) on every epoch in
	// the window, before any observation is produced. It models a
	// software fault in the per-receiver pipeline rather than a signal
	// fault, and exists so the engine supervisor's panic isolation can be
	// driven through the same deterministic spec grammar as every other
	// fault. Outside a supervised engine the panic propagates.
	KindPanic
	// KindSpoof adds a coherent Bias to the N highest-elevation
	// satellites simultaneously (a meaconing/spoofing attack repeating
	// several strong signals with a common delay). With N ≥ 2 the attack
	// defeats single-satellite RAIM exclusion — the identification loop
	// assumes one fault — which is exactly the regime residual-based
	// down-weighting still handles.
	KindSpoof
	// KindJam adds zero-mean Gaussian noise of the given Sigma to every
	// pseudo-range and degrades each reported C/N0 consistently (to the
	// value implied by the combined noise power), modeling a wideband
	// jammer raising the receiver noise floor. Honest C/N0-driven
	// weighting sees the degradation; unweighted solvers only see the
	// extra scatter.
	KindJam
)

// String returns the spec keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindStep:
		return "step"
	case KindRamp:
		return "ramp"
	case KindBurst:
		return "burst"
	case KindClockJump:
		return "clockjump"
	case KindShrink:
		return "shrink"
	case KindPanic:
		return "panic"
	case KindSpoof:
		return "spoof"
	case KindJam:
		return "jam"
	default:
		return "unknown"
	}
}

// Clause is one element of a fault program. The zero PRN targets every
// satellite (only meaningful for step/ramp; drop uses it rarely). The
// active window is [From, Until); Until = +Inf means "for the rest of the
// run".
type Clause struct {
	Kind Kind
	// PRN targets one satellite (0 = all) for drop/step/ramp.
	PRN int
	// From and Until bound the active window [From, Until) in receiver
	// seconds.
	From, Until float64
	// Bias is the step magnitude: meters for KindStep, seconds for
	// KindClockJump.
	Bias float64
	// Rate is the ramp slope in m/s (KindRamp).
	Rate float64
	// Sigma is the added noise standard deviation in meters (KindBurst,
	// KindJam).
	Sigma float64
	// N is the shrink target satellite count (KindShrink) or the number
	// of spoofed satellites (KindSpoof).
	N int
}

// active reports whether the clause applies at time t.
func (c Clause) active(t float64) bool {
	return t >= c.From && (math.IsInf(c.Until, 1) || t < c.Until)
}

// Program is an ordered list of fault clauses. Clauses compose: each
// epoch first resolves dropouts and shrink, then applies the bias terms
// to the surviving observations, in clause order.
type Program []Clause

// Scale returns a copy of the program scaled by intensity s: bias, ramp
// rate and burst sigma are multiplied by s, and dropout/shrink windows
// keep their start but have their duration multiplied by s, so s = 0
// disables every clause and s = 1 is the program as written. Infinite
// windows stay infinite for s > 0. This is the x-axis of the gpsbench
// fault sweep.
func (p Program) Scale(s float64) Program {
	if s <= 0 {
		return nil
	}
	out := make(Program, len(p))
	copy(out, p)
	for i := range out {
		c := &out[i]
		switch c.Kind {
		case KindStep, KindClockJump, KindSpoof:
			c.Bias *= s
		case KindRamp:
			c.Rate *= s
		case KindBurst, KindJam:
			c.Sigma *= s
		case KindDrop, KindShrink, KindPanic:
			if !math.IsInf(c.Until, 1) {
				c.Until = c.From + (c.Until-c.From)*s
			}
		}
	}
	return out
}

// Event is one logged fault application: at epoch time T, clause kind
// Kind touched satellite PRN (0 when the clause is not per-satellite)
// and changed its pseudo-range by Delta meters (0 for drops; the number
// of removed satellites for shrink).
type Event struct {
	T     float64 `json:"t"`
	Kind  Kind    `json:"kind"`
	PRN   int     `json:"prn"`
	Delta float64 `json:"delta"`
}

// Injector applies a program to epochs. It is stateless between calls
// (every output is a pure function of program, seed and the input
// epoch), so one injector may be shared by sequential callers; the
// convenience with-allocation methods are safe anywhere.
type Injector struct {
	prog Program
	seed int64
}

// NewInjector builds an injector for the program. The seed drives the
// burst noise stream; the same (program, seed) pair always produces
// identical faults.
func NewInjector(prog Program, seed int64) *Injector {
	owned := make(Program, len(prog))
	copy(owned, prog)
	return &Injector{prog: owned, seed: seed}
}

// Program returns a copy of the injector's program.
func (in *Injector) Program() Program {
	out := make(Program, len(in.prog))
	copy(out, in.prog)
	return out
}

// Apply filters and perturbs one epoch's observations into dst (reused;
// pass dst[:0]) and appends one Event per fault application to ev,
// returning both. The input slice is never modified. Event order is
// deterministic: survivors in input order for drops and shrink, then
// clause order × observation order for the bias terms.
func (in *Injector) Apply(t float64, obs []scenario.SatObs, dst []scenario.SatObs, ev []Event) ([]scenario.SatObs, []Event) {
	// Pass 0: injected software faults. These abort the step before any
	// observation is produced, so they log no Event here — the recovering
	// supervisor accounts for them instead.
	for _, c := range in.prog {
		if c.Kind == KindPanic && c.active(t) {
			panic(InjectedPanic{T: t})
		}
	}
	// Pass 1: dropouts.
	for i := range obs {
		dropped := false
		for _, c := range in.prog {
			if c.Kind == KindDrop && c.active(t) && (c.PRN == 0 || c.PRN == obs[i].PRN) {
				dropped = true
				ev = append(ev, Event{T: t, Kind: KindDrop, PRN: obs[i].PRN})
				break
			}
		}
		if !dropped {
			dst = append(dst, obs[i])
		}
	}
	// Pass 2: shrink-to-N (observations arrive sorted by descending
	// elevation, so keeping a prefix keeps the best geometry).
	for _, c := range in.prog {
		if c.Kind != KindShrink || !c.active(t) {
			continue
		}
		if n := c.N; n >= 0 && n < len(dst) {
			removed := len(dst) - n
			dst = dst[:n]
			ev = append(ev, Event{T: t, Kind: KindShrink, Delta: float64(removed)})
		}
	}
	// Pass 3: bias terms on the survivors.
	for _, c := range in.prog {
		if !c.active(t) {
			continue
		}
		switch c.Kind {
		case KindStep:
			for i := range dst {
				if c.PRN == 0 || c.PRN == dst[i].PRN {
					dst[i].Pseudorange += c.Bias
					ev = append(ev, Event{T: t, Kind: KindStep, PRN: dst[i].PRN, Delta: c.Bias})
				}
			}
		case KindRamp:
			delta := c.Rate * (t - c.From)
			for i := range dst {
				if c.PRN == 0 || c.PRN == dst[i].PRN {
					dst[i].Pseudorange += delta
					ev = append(ev, Event{T: t, Kind: KindRamp, PRN: dst[i].PRN, Delta: delta})
				}
			}
		case KindBurst:
			for i := range dst {
				delta := c.Sigma * gauss(in.seed, dst[i].PRN, t)
				dst[i].Pseudorange += delta
				ev = append(ev, Event{T: t, Kind: KindBurst, PRN: dst[i].PRN, Delta: delta})
			}
		case KindClockJump:
			delta := geo.SpeedOfLight * c.Bias
			for i := range dst {
				dst[i].Pseudorange += delta
			}
			// One event per epoch: the jump is a receiver-wide effect,
			// not a per-satellite one.
			ev = append(ev, Event{T: t, Kind: KindClockJump, Delta: delta})
		case KindSpoof:
			// Observations arrive sorted by descending elevation, so the
			// prefix is the N strongest (most attack-worthy) satellites.
			n := c.N
			if n > len(dst) {
				n = len(dst)
			}
			for i := 0; i < n; i++ {
				dst[i].Pseudorange += c.Bias
				ev = append(ev, Event{T: t, Kind: KindSpoof, PRN: dst[i].PRN, Delta: c.Bias})
			}
		case KindJam:
			for i := range dst {
				delta := c.Sigma * gauss(in.seed^jamStreamTag, dst[i].PRN, t)
				dst[i].Pseudorange += delta
				if cn0 := dst[i].CN0; cn0 > 0 {
					// Report the C/N0 implied by the raised noise floor:
					// the pre-jam σ combined with the jammer's σ in power.
					s0 := core.SigmaFromCN0(cn0)
					dst[i].CN0 = core.CN0FromSigma(math.Sqrt(s0*s0 + c.Sigma*c.Sigma))
				}
				ev = append(ev, Event{T: t, Kind: KindJam, PRN: dst[i].PRN, Delta: delta})
			}
		}
	}
	return dst, ev
}

// ApplyEpoch returns a faulted copy of the epoch and its event log.
func (in *Injector) ApplyEpoch(ep scenario.Epoch) (scenario.Epoch, []Event) {
	obs, ev := in.Apply(ep.T, ep.Obs, make([]scenario.SatObs, 0, len(ep.Obs)), nil)
	return scenario.Epoch{T: ep.T, Obs: obs}, ev
}

// ApplyDataset returns a faulted copy of the dataset plus the full event
// log, epoch by epoch in order. The input dataset is not modified.
func ApplyDataset(ds *scenario.Dataset, prog Program, seed int64) (*scenario.Dataset, []Event) {
	in := NewInjector(prog, seed)
	out := &scenario.Dataset{Station: ds.Station, Config: ds.Config, Epochs: make([]scenario.Epoch, len(ds.Epochs))}
	var log []Event
	for i := range ds.Epochs {
		out.Epochs[i], log = applyAppend(in, ds.Epochs[i], log)
	}
	return out, log
}

// applyAppend is ApplyEpoch appending to an existing log.
func applyAppend(in *Injector, ep scenario.Epoch, log []Event) (scenario.Epoch, []Event) {
	obs, log := in.Apply(ep.T, ep.Obs, make([]scenario.SatObs, 0, len(ep.Obs)), log)
	return scenario.Epoch{T: ep.T, Obs: obs}, log
}

// InjectedPanic is the value a KindPanic clause panics with. It
// implements error so recovered values format cleanly in supervisor
// logs and health reports.
type InjectedPanic struct {
	// T is the epoch time the panic fired at.
	T float64
}

// Error implements error.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic at t=%g", p.T)
}

// jamStreamTag separates the jam noise stream from the burst stream, so
// overlapping burst and jam clauses draw independent noise.
const jamStreamTag = 0x5A4D5EED

// gauss returns a standard normal draw that is a pure function of
// (seed, prn, t) — the same splitmix64 stream-splitting scheme the
// scenario generator uses, so burst noise is identical no matter which
// worker processes the epoch or in what order.
func gauss(seed int64, prn int, t float64) float64 {
	z := uint64(seed) ^ (uint64(prn) * 0x9E3779B97F4A7C15) ^ math.Float64bits(t) ^ 0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z))).NormFloat64()
}
