package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// HealthConfig tunes a Monitor.
type HealthConfig struct {
	// Interval between probes per node (≤ 0 means 500 ms).
	Interval time.Duration
	// Timeout per probe (≤ 0 means 2 s).
	Timeout time.Duration
	// Threshold is the consecutive-failure count that declares a node
	// down (≤ 0 means 3). One failed scrape is noise; Threshold in a
	// row is a death certificate.
	Threshold int
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Monitor probes each node's /healthz and reports up/down transitions.
// A node is up until Threshold consecutive probes fail; it is down
// until one probe succeeds again.
type Monitor struct {
	cfg   HealthConfig
	urls  map[string]string // node → healthz URL
	mu    sync.Mutex
	state map[string]*nodeHealth

	// OnDown/OnUp observe transitions; called from the probe loop, at
	// most once per transition.
	OnDown func(node string)
	OnUp   func(node string)
}

type nodeHealth struct {
	failures int
	down     bool
	probes   uint64
}

// NewMonitor builds a Monitor over node → healthz-URL pairs. All nodes
// start up (innocent until probed guilty).
func NewMonitor(urls map[string]string, cfg HealthConfig) *Monitor {
	m := &Monitor{cfg: cfg.withDefaults(), urls: make(map[string]string), state: make(map[string]*nodeHealth)}
	for n, u := range urls {
		m.urls[n] = u
		m.state[n] = &nodeHealth{}
	}
	return m
}

// Up reports whether node is currently considered healthy.
func (m *Monitor) Up(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.state[node]
	return ok && !st.down
}

// UpNodes lists currently healthy nodes.
func (m *Monitor) UpNodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.state))
	for n, st := range m.state {
		if !st.down {
			out = append(out, n)
		}
	}
	return out
}

// Probes returns the total probe count for node (test visibility).
func (m *Monitor) Probes(node string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.state[node]; ok {
		return st.probes
	}
	return 0
}

// probe performs one health check.
func (m *Monitor) probe(ctx context.Context, node string) bool {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.urls[node], nil)
	if err != nil {
		return false
	}
	resp, err := m.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Observe folds one probe result in and fires transition callbacks.
// Exposed so tests (and synchronous probes) can drive the state
// machine directly.
func (m *Monitor) Observe(node string, ok bool) {
	m.mu.Lock()
	st, known := m.state[node]
	if !known {
		m.mu.Unlock()
		return
	}
	st.probes++
	var fire func(string)
	if ok {
		st.failures = 0
		if st.down {
			st.down = false
			fire = m.OnUp
		}
	} else {
		st.failures++
		if !st.down && st.failures >= m.cfg.Threshold {
			st.down = true
			fire = m.OnDown
		}
	}
	m.mu.Unlock()
	if fire != nil {
		fire(node)
	}
}

// Run probes every node on the configured interval until ctx ends.
// Each node gets its own loop so one stuck probe cannot delay the
// others' death certificates.
func (m *Monitor) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for node := range m.urls {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			t := time.NewTicker(m.cfg.Interval)
			defer t.Stop()
			for {
				m.Observe(node, m.probe(ctx, node))
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
			}
		}(node)
	}
	wg.Wait()
}
