// Proxy-side cluster serving: a Proxy fronts a static set of gpsserve
// nodes, routing each binary subscriber to the node hosting its
// session and bridging node deaths invisibly. Three loops cooperate:
//
//   - discovery polls every live node's /cluster/sessions to learn
//     which node hosts which session (and each stream's head epoch);
//   - the checkpoint cache polls /cluster/checkpoint so the proxy
//     always holds a dead node's last periodic checkpoint;
//   - the health monitor probes /healthz, and Threshold consecutive
//     failures trigger failover: the dead node leaves the hash ring,
//     its orphaned sessions are grouped by ring-chosen survivor, and
//     each group is POSTed to its survivor's /cluster/handoff together
//     with the filtered cached checkpoint.
//
// Client relaying keeps per-connection delta-chain continuity across
// an upstream failover: the proxy resubscribes to the survivor with
// the last epoch it relayed as the resume token, forwards the
// survivor's RESUME verdict, and skips replayed FIX frames the client
// already holds — safe precisely because a handed-off session
// regenerates bit-identical frames (TestEngineHandoffDeterminism).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/wire"
)

// NodeAddr is one serving node's pair of addresses.
type NodeAddr struct {
	// Wire is the binary fix-stream listener (gpsserve -wire).
	Wire string
	// Admin is the admin HTTP base URL (http://host:port).
	Admin string
}

// ProxyConfig configures a Proxy.
type ProxyConfig struct {
	// Nodes is the static node set, name → addresses.
	Nodes map[string]NodeAddr
	// Replicas is the hash ring's virtual-node count (≤ 0 means 64).
	Replicas int
	// Health tunes the /healthz monitor.
	Health HealthConfig
	// PollInterval spaces the discovery/checkpoint polls (≤ 0 means 1 s).
	PollInterval time.Duration
	// RetryBudget bounds consecutive upstream failures per client relay
	// before the client connection is dropped (≤ 0 means 16); any
	// relayed frame refills it. BackoffBase/BackoffMax bound the
	// jittered reconnect backoff between attempts (defaults 50 ms / 2 s).
	RetryBudget int
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Registry receives the proxy metrics; nil disables them.
	Registry *telemetry.Registry
	// Log, when set, receives failover and relay events.
	Log *slog.Logger
	// Client overrides the admin HTTP client (tests); nil means a 3 s
	// timeout client.
	Client *http.Client
}

// Proxy routes binary subscribers across serving nodes and re-homes
// sessions when a node dies.
type Proxy struct {
	cfg    ProxyConfig
	ring   *Ring
	mon    *Monitor
	client *http.Client

	mu     sync.Mutex
	owners map[int]string          // session → hosting node
	heads  map[int]int64           // session → last seen head epoch
	hosted map[string]map[int]bool // node → hosted session set

	ckptMu sync.Mutex
	ckpts  map[string]*checkpoint.State // node → last good checkpoint

	failovers    *telemetry.Counter
	handoffsOK   *telemetry.Counter
	handoffsFail *telemetry.Counter
	reconnects   *telemetry.Counter
	relayed      *telemetry.Counter
	relays       *telemetry.Gauge

	wg sync.WaitGroup
}

// NewProxy builds a Proxy over the configured node set.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: proxy needs at least one node")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 16
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 3 * time.Second}
	}
	reg := cfg.Registry
	p := &Proxy{
		cfg:    cfg,
		ring:   NewRing(cfg.Replicas),
		client: cfg.Client,
		owners: make(map[int]string),
		heads:  make(map[int]int64),
		hosted: make(map[string]map[int]bool),
		ckpts:  make(map[string]*checkpoint.State),
		failovers: reg.Counter("gpsproxy_failovers_total",
			"Node deaths that triggered session re-homing."),
		handoffsOK: reg.Counter("gpsproxy_handoffs_total",
			"Checkpoint handoffs accepted by a survivor node."),
		handoffsFail: reg.Counter("gpsproxy_handoff_failures_total",
			"Checkpoint handoffs that exhausted their retries."),
		reconnects: reg.Counter("gpsproxy_upstream_reconnects_total",
			"Upstream connections re-dialed beneath a live client relay."),
		relayed: reg.Counter("gpsproxy_frames_relayed_total",
			"FIX frames forwarded to clients."),
		relays: reg.Gauge("gpsproxy_relays_active",
			"Client relay connections currently open."),
	}
	urls := make(map[string]string, len(cfg.Nodes))
	for name, addr := range cfg.Nodes {
		p.ring.Add(name)
		urls[name] = strings.TrimSuffix(addr.Admin, "/") + "/healthz"
	}
	p.mon = NewMonitor(urls, cfg.Health)
	p.mon.OnDown = p.failover
	p.mon.OnUp = p.revive
	return p, nil
}

// Monitor exposes the health monitor (status surfaces, tests).
func (p *Proxy) Monitor() *Monitor { return p.mon }

// Run drives the health monitor and the discovery/checkpoint polls
// until ctx ends.
func (p *Proxy) Run(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.mon.Run(ctx)
	}()
	t := time.NewTicker(p.cfg.PollInterval)
	defer t.Stop()
	for {
		p.poll(ctx)
		select {
		case <-ctx.Done():
			wg.Wait()
			p.wg.Wait()
			return
		case <-t.C:
		}
	}
}

// poll refreshes session discovery and the checkpoint cache from every
// node currently considered up.
func (p *Proxy) poll(ctx context.Context) {
	for name, addr := range p.cfg.Nodes {
		if !p.mon.Up(name) {
			continue
		}
		p.pollSessions(ctx, name, addr)
		p.pollCheckpoint(ctx, name, addr)
	}
}

func (p *Proxy) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (p *Proxy) pollSessions(ctx context.Context, name string, addr NodeAddr) {
	data, err := p.get(ctx, strings.TrimSuffix(addr.Admin, "/")+"/cluster/sessions")
	if err != nil {
		return
	}
	var body struct {
		Sessions []wire.SessionInfo `json:"sessions"`
	}
	if json.Unmarshal(data, &body) != nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	set := make(map[int]bool, len(body.Sessions))
	for _, si := range body.Sessions {
		set[si.ID] = true
		if si.Head > p.heads[si.ID] {
			p.heads[si.ID] = si.Head
		}
		// Ownership: keep the current owner while it is up and still
		// reporting the session; otherwise this reporter takes it.
		cur, ok := p.owners[si.ID]
		if !ok || cur == name || !p.mon.Up(cur) || !p.hosted[cur][si.ID] {
			p.owners[si.ID] = name
		}
	}
	p.hosted[name] = set
}

func (p *Proxy) pollCheckpoint(ctx context.Context, name string, addr NodeAddr) {
	data, err := p.get(ctx, strings.TrimSuffix(addr.Admin, "/")+"/cluster/checkpoint")
	if err != nil {
		return
	}
	st, err := checkpoint.Decode(data)
	if err != nil || len(st.Sessions) == 0 {
		// An early snapshot before the first refresh interval carries
		// nothing; keep the previous good one.
		return
	}
	p.ckptMu.Lock()
	p.ckpts[name] = st
	p.ckptMu.Unlock()
}

// failover re-homes a dead node's sessions: remove it from the ring,
// group its orphans by the ring's chosen survivors, and hand each
// group the filtered cached checkpoint.
func (p *Proxy) failover(dead string) {
	p.ring.Remove(dead)
	p.ckptMu.Lock()
	ck := p.ckpts[dead]
	p.ckptMu.Unlock()

	p.mu.Lock()
	orphans := make([]int, 0, len(p.hosted[dead]))
	for s := range p.hosted[dead] {
		orphans = append(orphans, s)
	}
	sort.Ints(orphans)
	delete(p.hosted, dead)
	groups := make(map[string][]int)
	resume := make(map[string]int)
	for _, s := range orphans {
		owner, ok := p.ring.OwnerSession(s)
		if !ok {
			continue // no survivors; clients keep retrying
		}
		groups[owner] = append(groups[owner], s)
		r := 0
		if h, seen := p.heads[s]; seen {
			r = int(h) + 1
		}
		if ck != nil && ck.Epoch > r {
			r = ck.Epoch
		}
		if r > resume[owner] {
			resume[owner] = r
		}
	}
	p.mu.Unlock()

	if p.cfg.Log != nil {
		p.cfg.Log.Warn("node down; re-homing sessions", "node", dead,
			"orphans", orphans, "groups", len(groups), "checkpoint", ck != nil)
	}
	if len(orphans) == 0 {
		return
	}
	p.failovers.Inc()
	for owner, ids := range groups {
		p.handoff(owner, ids, resume[owner], ck)
	}
}

// handoff POSTs one orphan group to its survivor, with retries.
func (p *Proxy) handoff(owner string, ids []int, resume int, ck *checkpoint.State) {
	var body []byte
	if ck != nil {
		if data, err := checkpoint.Encode(ck.Filter(ids)); err == nil {
			body = data
		}
	}
	csv := make([]string, len(ids))
	for i, id := range ids {
		csv[i] = strconv.Itoa(id)
	}
	url := fmt.Sprintf("%s/cluster/handoff?sessions=%s&resume=%d",
		strings.TrimSuffix(p.cfg.Nodes[owner].Admin, "/"), strings.Join(csv, ","), resume)
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := p.client.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		var out RestoreOutcome
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("HTTP %d", resp.StatusCode)
			continue
		}
		if err != nil {
			lastErr = err
			continue
		}
		p.mu.Lock()
		for _, s := range ids {
			p.owners[s] = owner
			if p.hosted[owner] == nil {
				p.hosted[owner] = make(map[int]bool)
			}
			p.hosted[owner][s] = true
		}
		p.mu.Unlock()
		p.handoffsOK.Inc()
		if p.cfg.Log != nil {
			p.cfg.Log.Info("handoff accepted", "survivor", owner, "sessions", ids,
				"resume", resume, "outcome", out.Outcome, "restored", out.Sessions)
		}
		return
	}
	p.handoffsFail.Inc()
	if p.cfg.Log != nil {
		p.cfg.Log.Error("handoff failed", "survivor", owner, "sessions", ids, "err", lastErr)
	}
}

// revive returns a recovered node to the failover ring. Its previously
// hosted sessions stay where they were handed; the node simply becomes
// a target for future failovers (and for any sessions it still
// reports that nobody else took over).
func (p *Proxy) revive(node string) {
	p.ring.Add(node)
	if p.cfg.Log != nil {
		p.cfg.Log.Info("node recovered", "node", node)
	}
}

// route resolves the live owner of a session.
func (p *Proxy) route(session int) (NodeAddr, string, bool) {
	p.mu.Lock()
	owner, ok := p.owners[session]
	p.mu.Unlock()
	if !ok || !p.mon.Up(owner) {
		return NodeAddr{}, "", false
	}
	return p.cfg.Nodes[owner], owner, true
}

// Owners snapshots the session routing table (debug surface).
func (p *Proxy) Owners() map[int]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]string, len(p.owners))
	for s, n := range p.owners {
		out[s] = n
	}
	return out
}

// ServeWire accepts binary subscribers on ln and relays each to its
// session's owner until ctx ends.
func (p *Proxy) ServeWire(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.wg.Wait()
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.relay(ctx, conn)
		}()
	}
}

// relay serves one client connection: read its SUBSCRIBE, then bridge
// upstream connections beneath it until the client leaves or the retry
// budget is exhausted. lastRelayed tracks the highest FIX epoch
// forwarded; after an upstream failover the proxy resubscribes with it
// and skips replayed epochs the client already decoded.
func (p *Proxy) relay(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()
	stop := context.AfterFunc(dctx, func() { conn.Close() })
	defer stop()

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := wire.NewFrameReader(conn)
	pl, err := fr.Next()
	if err != nil {
		return
	}
	req, err := wire.DecodeSubscribe(pl)
	if err != nil {
		return
	}
	p.relays.Inc()
	defer p.relays.Dec()

	// Drain the client's read side; EOF tears the relay down.
	go func() {
		conn.SetReadDeadline(time.Time{})
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				dcancel()
				return
			}
		}
	}()

	lastRelayed := req.Ack
	failures := 0
	for dctx.Err() == nil {
		addr, owner, ok := p.route(req.Session)
		var progressed bool
		var err error
		if !ok {
			err = fmt.Errorf("no live owner for session %d", req.Session)
		} else {
			progressed, err = p.pipe(dctx, conn, addr, req, &lastRelayed)
			if errors.Is(err, errClientGone) {
				return
			}
		}
		if dctx.Err() != nil {
			return
		}
		if progressed {
			failures = 0
		}
		failures++
		if failures > p.cfg.RetryBudget {
			if lastRelayed == req.Ack {
				// Nothing was ever relayed: answer the resume token
				// explicitly before hanging up, so a client holding a
				// token no node recognizes gets a verdict, not a hang.
				conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				_, _ = conn.Write(wire.AppendResume(nil, wire.Resume{
					Session: req.Session, Status: wire.StatusUnknown, Head: -1,
				}))
			}
			if p.cfg.Log != nil {
				p.cfg.Log.Warn("relay retry budget exhausted", "session", req.Session, "err", err)
			}
			return
		}
		p.reconnects.Inc()
		if p.cfg.Log != nil {
			p.cfg.Log.Debug("upstream relay retry", "session", req.Session,
				"owner", owner, "attempt", failures, "err", err)
		}
		sleep := p.backoff(failures)
		t := time.NewTimer(sleep)
		select {
		case <-dctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// errClientGone marks a downstream write failure: the client left, so
// the relay must not retry upstream.
var errClientGone = errors.New("cluster: relay client gone")

// backoff returns the full-jitter sleep for consecutive failure n.
func (p *Proxy) backoff(n int) time.Duration {
	max := p.cfg.BackoffBase << uint(n-1)
	if max > p.cfg.BackoffMax || max <= 0 {
		max = p.cfg.BackoffMax
	}
	return time.Duration(rand.Float64() * float64(max))
}

// pipe runs one upstream connection beneath the relay. The dedup rule:
// once any frame beyond the client's original ack has been forwarded,
// frames at or below lastRelayed are skipped — they are bit-identical
// regenerations of frames the client already decoded (the delta chain
// stays consistent because the skipped values equal the client's
// existing chain state). Until then everything is forwarded, so a
// fresh client decoder always sees its chain-priming replay in full.
func (p *Proxy) pipe(ctx context.Context, down net.Conn, addr NodeAddr,
	req wire.Subscribe, lastRelayed *int64) (progressed bool, err error) {
	d := net.Dialer{Timeout: 2 * time.Second}
	up, err := d.DialContext(ctx, "tcp", addr.Wire)
	if err != nil {
		return false, err
	}
	defer up.Close()
	stop := context.AfterFunc(ctx, func() { up.Close() })
	defer stop()

	if _, err := up.Write(wire.AppendSubscribe(nil, req.Session, *lastRelayed)); err != nil {
		return false, err
	}
	ufr := wire.NewFrameReader(up)
	for {
		pl, err := ufr.Next()
		if err != nil {
			return progressed, err
		}
		switch wire.Kind(pl) {
		case wire.KindResume:
			down.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, werr := down.Write(wire.AppendFrame(nil, pl)); werr != nil {
				return progressed, errClientGone
			}
			progressed = true
		case wire.KindFix:
			_, epoch, _, perr := wire.PeekFix(pl)
			if perr != nil {
				return progressed, perr
			}
			if *lastRelayed > req.Ack && int64(epoch) <= *lastRelayed {
				continue // failover replay the client already decoded
			}
			down.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, werr := down.Write(wire.AppendFrame(nil, pl)); werr != nil {
				return progressed, errClientGone
			}
			if int64(epoch) > *lastRelayed {
				*lastRelayed = int64(epoch)
			}
			progressed = true
			p.relayed.Inc()
		default:
			return progressed, fmt.Errorf("cluster: unexpected upstream frame kind %d", wire.Kind(pl))
		}
	}
}
