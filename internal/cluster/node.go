// Node-side cluster serving: one Node owns the wire hub plus every fix
// engine serving sessions on this process — the primary engine built
// from the launch flags and one adopted engine per accepted checkpoint
// handoff. The HTTP handlers it exposes under /cluster/* are the
// control plane a gpsproxy drives:
//
//	GET  /cluster/sessions    hosted sessions and their stream heads
//	GET  /cluster/checkpoint  merged periodic checkpoint (file codec)
//	POST /cluster/handoff     adopt sessions from a dead peer
//
// A handoff never refuses: a checkpoint that is corrupt, rejected by
// the engine, or simply absent degrades to a cold start at the
// requested resume epoch — the adopting node reports the downgrade
// (and counts it on gps_restore_failures_total) instead of leaving the
// sessions homeless.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/engine"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/wire"
)

// RestoreOutcome records how a checkpoint restore attempt ended — the
// satellite observability for both the startup -restore path and every
// handoff adoption.
type RestoreOutcome struct {
	// Outcome is one of:
	//   ok         — sessions restored, fast-forwarded to the resume epoch
	//   cold-start — no usable checkpoint; sessions start cold at resume
	//   corrupt    — checkpoint bytes failed decoding; cold start
	//   rejected   — engine refused the checkpoint (config mismatch); cold start
	//   duplicate  — every requested session is already hosted here; no-op
	Outcome string `json:"outcome"`
	// Detail carries the error behind a non-ok outcome.
	Detail string `json:"detail,omitempty"`
	// Sessions is how many session records were actually restored.
	Sessions int `json:"sessions"`
	// Epoch is the epoch the adopted engine resumed (or cold-started) at.
	Epoch int `json:"epoch"`
}

// NodeConfig configures a serving Node.
type NodeConfig struct {
	// Base is the engine configuration template adopted engines are
	// built from. Seed, solver, stations and step must match the peers'
	// — engine.Restore enforces it — and Base.Sink must publish fix
	// events to this Node's hub (Node.Publish), or handed-off sessions
	// would be adopted but never served. Receivers/SessionIDs, Registry
	// and the journal/incident/quality hooks are overridden per
	// adoption.
	Base engine.Config
	// Rate is the paced serving rate (epochs per second) for adopted
	// engines; ≤ 0 means 1.
	Rate float64
	// Hub sizes the wire hub (keyframe cadence, replay ring, queues).
	Hub wire.HubConfig
	// Registry receives the node's cluster metrics; nil disables them.
	Registry *telemetry.Registry
	// Log, when set, receives adoption and restore events.
	Log *slog.Logger
	// OnRestore, when set, observes every restore outcome (the
	// /debug/status surface hook).
	OnRestore func(RestoreOutcome)
}

// Node is the per-process cluster serving state.
type Node struct {
	// Hub is the wire fan-out every hosted engine publishes into.
	Hub *wire.Hub

	cfg NodeConfig
	ctx context.Context

	restoreFailures *telemetry.Counter
	handoffs        *telemetry.Counter
	adopted         *telemetry.Counter

	mu      sync.Mutex
	engines []*engine.Engine
	runs    sync.WaitGroup
}

// NewNode builds a Node whose adopted engines run until ctx ends.
func NewNode(ctx context.Context, cfg NodeConfig) *Node {
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	reg := cfg.Registry
	return &Node{
		Hub: wire.NewHub(cfg.Hub),
		cfg: cfg,
		ctx: ctx,
		restoreFailures: reg.Counter("gps_restore_failures_total",
			"Checkpoint restore attempts that fell back to cold start (corrupt, unreadable, or rejected checkpoints)."),
		handoffs: reg.Counter("gps_cluster_handoffs_total",
			"Checkpoint handoffs accepted from a dying peer."),
		adopted: reg.Counter("gps_cluster_adopted_sessions_total",
			"Sessions adopted through checkpoint handoffs."),
	}
}

// Publish encodes one fix event onto the wire hub. It is the piece of
// the serving sink that Base.Sink must include; solve failures publish
// MISS frames so subscribers can tell "no fix this epoch" from a
// stream gap.
func (n *Node) Publish(e engine.FixEvent) {
	f := e.Wire()
	n.Hub.Publish(&f)
}

// RecordRestoreFailure counts one failed restore on the shared
// gps_restore_failures_total family (the startup -restore path reports
// through this so node-local and handoff failures share one metric).
func (n *Node) RecordRestoreFailure() { n.restoreFailures.Inc() }

// Track registers an externally built engine (the primary) with the
// node: its sessions are marked hosted on the hub and its state joins
// the merged checkpoint.
func (n *Node) Track(eng *engine.Engine) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.trackLocked(eng)
}

func (n *Node) trackLocked(eng *engine.Engine) {
	n.engines = append(n.engines, eng)
	n.Hub.Register(eng.SessionIDs()...)
}

// hostedLocked reports every session id currently hosted by an engine.
func (n *Node) hostedLocked() map[int]bool {
	out := make(map[int]bool)
	for _, e := range n.engines {
		for _, id := range e.SessionIDs() {
			out[id] = true
		}
	}
	return out
}

// Wait blocks until every adopted engine's paced run has returned
// (they stop when the Node's context ends).
func (n *Node) Wait() { n.runs.Wait() }

// mergeSnapshots unions per-engine checkpoints into one node-wide
// state. Engines refresh their checkpoint cells at the same absolute
// epoch boundaries, so records normally agree on the epoch; a record
// lagging the newest boundary (an engine adopted moments ago) is
// dropped rather than kept — restoring old clock state and then
// fast-forwarding past the missing epochs would silently diverge,
// while a dropped record cold-starts loudly on the next failover.
func mergeSnapshots(snaps []*checkpoint.State) *checkpoint.State {
	out := &checkpoint.State{}
	for i, s := range snaps {
		if i == 0 {
			out.Solver, out.Seed, out.Step = s.Solver, s.Seed, s.Step
		}
		if s.Epoch > out.Epoch {
			out.Epoch = s.Epoch
		}
	}
	for _, s := range snaps {
		for i := range s.Sessions {
			if s.Sessions[i].Epoch == out.Epoch {
				out.Sessions = append(out.Sessions, s.Sessions[i])
			}
		}
	}
	out.Receivers = len(out.Sessions)
	return out
}

// Snapshot merges the periodic lock-free checkpoints of every hosted
// engine — what /cluster/checkpoint serves and the proxy caches.
func (n *Node) Snapshot() *checkpoint.State {
	n.mu.Lock()
	defer n.mu.Unlock()
	snaps := make([]*checkpoint.State, 0, len(n.engines))
	for _, e := range n.engines {
		snaps = append(snaps, e.Snapshot())
	}
	return mergeSnapshots(snaps)
}

// SnapshotFinal merges exact quiescent checkpoints; callers must first
// stop every run (primary and Wait() for adopted).
func (n *Node) SnapshotFinal() *checkpoint.State {
	n.mu.Lock()
	defer n.mu.Unlock()
	snaps := make([]*checkpoint.State, 0, len(n.engines))
	for _, e := range n.engines {
		snaps = append(snaps, e.SnapshotFinal())
	}
	return mergeSnapshots(snaps)
}

// NodeStatus is the /debug/status cluster block.
type NodeStatus struct {
	Engines         int                `json:"engines"`
	Handoffs        uint64             `json:"handoffs"`
	AdoptedSessions uint64             `json:"adopted_sessions"`
	RestoreFailures uint64             `json:"restore_failures"`
	Hub             wire.HubStats      `json:"hub"`
	Sessions        []wire.SessionInfo `json:"sessions"`
}

// Status snapshots the node's cluster state.
func (n *Node) Status() NodeStatus {
	n.mu.Lock()
	engines := len(n.engines)
	n.mu.Unlock()
	return NodeStatus{
		Engines:         engines,
		Handoffs:        n.handoffs.Value(),
		AdoptedSessions: n.adopted.Value(),
		RestoreFailures: n.restoreFailures.Value(),
		Hub:             n.Hub.Stats(),
		Sessions:        n.Hub.Sessions(),
	}
}

// Adopt takes over the given sessions: decode and restore the
// handed-off checkpoint, fast-forward to the resume epoch, and serve
// them paced from a freshly built engine. Graceful degradation is the
// contract — a missing/corrupt/rejected checkpoint cold-starts the
// sessions at resume instead of refusing them. The error return is
// reserved for configuration bugs (the template engine cannot be
// built at all).
func (n *Node) Adopt(ids []int, resume int, ckptData []byte) (RestoreOutcome, error) {
	n.mu.Lock()
	defer n.mu.Unlock()

	// Idempotency guard: re-adopting a session already hosted here
	// would double-publish its stream. A retried handoff whose first
	// attempt succeeded is a no-op, and partially new requests adopt
	// only the missing sessions.
	hosted := n.hostedLocked()
	fresh := ids[:0:0]
	for _, id := range ids {
		if !hosted[id] {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) == 0 {
		out := RestoreOutcome{Outcome: "duplicate", Detail: "sessions already hosted", Epoch: resume}
		n.report(out)
		return out, nil
	}
	ids = fresh

	// Register before restoring so subscribers racing the handoff
	// attach to the streams and catch the first published frames.
	n.Hub.Register(ids...)

	out := RestoreOutcome{Outcome: "cold-start", Epoch: resume}
	var st *checkpoint.State
	if len(ckptData) > 0 {
		var err error
		st, err = checkpoint.Decode(ckptData)
		if err != nil {
			out.Outcome, out.Detail = "corrupt", err.Error()
			n.restoreFailures.Inc()
			st = nil
		} else {
			// Defensive filter: only records for the adopted ids, with
			// the Receivers echo rewritten to match the engine below.
			st = st.Filter(ids)
		}
	}

	build := func() (*engine.Engine, error) {
		cfg := n.cfg.Base
		cfg.Receivers = 0
		cfg.SessionIDs = append([]int(nil), ids...)
		cfg.Registry = nil // the primary engine owns the per-shard families
		cfg.JournalSink = nil
		cfg.OnIncident = nil
		cfg.Quality = nil
		return engine.New(cfg)
	}
	eng, err := build()
	if err != nil {
		return RestoreOutcome{}, fmt.Errorf("cluster: adopt %v: %w", ids, err)
	}
	if st != nil {
		restored, err := eng.Restore(st)
		switch {
		case err != nil:
			// Restore may have half-applied; rebuild cold.
			out.Outcome, out.Detail = "rejected", err.Error()
			n.restoreFailures.Inc()
			if eng, err = build(); err != nil {
				return RestoreOutcome{}, fmt.Errorf("cluster: adopt %v: %w", ids, err)
			}
		case restored == 0:
			out.Detail = "checkpoint held no records for these sessions"
		default:
			out.Outcome, out.Sessions, out.Epoch = "ok", restored, eng.ResumeEpoch()
		}
	}

	if out.Outcome == "ok" {
		// Catch up from the checkpoint to the cluster's resume epoch.
		// Every replayed epoch flows through the sink into the hub's
		// replay ring, so resuming clients bridge the failover without
		// duplicated or silently skipped fixes.
		if err := eng.FastForward(n.ctx, resume); err != nil {
			return RestoreOutcome{}, fmt.Errorf("cluster: adopt %v: fast-forward to %d: %w", ids, resume, err)
		}
	} else {
		eng.SkipTo(resume)
	}

	n.trackLocked(eng)
	n.runs.Add(1)
	go n.pace(eng)
	n.handoffs.Inc()
	n.adopted.Add(uint64(len(ids)))
	if n.cfg.Log != nil {
		n.cfg.Log.Info("sessions adopted", "sessions", ids, "outcome", out.Outcome,
			"restored", out.Sessions, "resume", resume, "detail", out.Detail)
	}
	n.report(out)
	return out, nil
}

func (n *Node) report(out RestoreOutcome) {
	if n.cfg.OnRestore != nil {
		n.cfg.OnRestore(out)
	}
}

// pace drives one adopted engine at the node serving rate until the
// node context ends.
func (n *Node) pace(eng *engine.Engine) {
	defer n.runs.Done()
	t := time.NewTicker(time.Duration(float64(time.Second) / n.cfg.Rate))
	defer t.Stop()
	if err := eng.RunPaced(n.ctx, t.C); err != nil && n.ctx.Err() == nil && n.cfg.Log != nil {
		n.cfg.Log.Error("adopted engine stopped", "err", err)
	}
}

// Routes registers the cluster control-plane handlers on mux.
func (n *Node) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/cluster/sessions", n.SessionsHandler)
	mux.HandleFunc("/cluster/checkpoint", n.CheckpointHandler)
	mux.HandleFunc("/cluster/handoff", n.HandoffHandler)
}

// SessionsHandler serves GET /cluster/sessions: the hosted session ids
// and their latest published epochs.
func (n *Node) SessionsHandler(w http.ResponseWriter, r *http.Request) {
	body := struct {
		Engines  int                `json:"engines"`
		Sessions []wire.SessionInfo `json:"sessions"`
	}{}
	n.mu.Lock()
	body.Engines = len(n.engines)
	n.mu.Unlock()
	body.Sessions = n.Hub.Sessions()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(body)
}

// CheckpointHandler serves GET /cluster/checkpoint: the merged node
// checkpoint in file format, ready to Filter and hand to a survivor.
func (n *Node) CheckpointHandler(w http.ResponseWriter, r *http.Request) {
	data, err := checkpoint.Encode(n.Snapshot())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// HandoffHandler serves POST /cluster/handoff?sessions=1,3&resume=230
// with the filtered checkpoint bytes (possibly empty) as the body.
func (n *Node) HandoffHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ids, err := ParseSessionIDs(r.URL.Query().Get("sessions"))
	if err != nil {
		http.Error(w, fmt.Sprintf("sessions: %v", err), http.StatusBadRequest)
		return
	}
	resume, err := strconv.Atoi(r.URL.Query().Get("resume"))
	if err != nil || resume < 0 {
		http.Error(w, "resume: want a non-negative epoch", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out, err := n.Adopt(ids, resume, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(out)
}

// ParseSessionIDs parses a comma-separated list of non-negative,
// unique session ids ("0,2,5") — the -session-ids flag grammar and the
// handoff query format.
func ParseSessionIDs(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty session id list")
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad session id %q", p)
		}
		if id < 0 {
			return nil, fmt.Errorf("negative session id %d", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("duplicate session id %d", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	return ids, nil
}
