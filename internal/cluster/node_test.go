package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpsdl/internal/checkpoint"
	"gpsdl/internal/engine"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/wire"
)

// testCkptEvery doubles as the hub keyframe cadence so handoff points
// land on keyframe block boundaries (the byte-identity precondition).
const testCkptEvery = 50

// testNode is an in-process serving node: a real engine behind a real
// Node, wire listener, and admin HTTP server — everything a proxy
// talks to, killable mid-stream.
type testNode struct {
	name  string
	node  *Node
	reg   *telemetry.Registry
	wire  string
	admin *httptest.Server
	ln    net.Listener
	stop  context.CancelFunc
	dead  bool

	mu       sync.Mutex
	restores []RestoreOutcome
}

func (tn *testNode) restoreLog() []RestoreOutcome {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return append([]RestoreOutcome(nil), tn.restores...)
}

func startTestNode(t *testing.T, name string, ids []int, seed int64) *testNode {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	reg := telemetry.NewRegistry()
	tn := &testNode{name: name, reg: reg, stop: cancel}
	var node *Node
	base := engine.Config{
		Workers:         2,
		Seed:            seed,
		CheckpointEvery: testCkptEvery,
		Sink:            func(e engine.FixEvent) { node.Publish(e) },
	}
	node = NewNode(ctx, NodeConfig{
		Base:     base,
		Rate:     200,
		Hub:      wire.HubConfig{KeyframeEvery: testCkptEvery},
		Registry: reg,
		OnRestore: func(o RestoreOutcome) {
			tn.mu.Lock()
			tn.restores = append(tn.restores, o)
			tn.mu.Unlock()
		},
	})
	cfg := base
	cfg.SessionIDs = append([]int(nil), ids...)
	eng, err := engine.New(cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	node.Track(eng)
	go func() {
		tk := time.NewTicker(5 * time.Millisecond)
		defer tk.Stop()
		_ = eng.RunPaced(ctx, tk.C)
	}()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	ws := &wire.Server{Hub: node.Hub}
	go func() { _ = ws.Serve(ctx, ln) }()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	node.Routes(mux)
	admin := httptest.NewServer(mux)
	tn.node = node
	tn.wire = ln.Addr().String()
	tn.admin = admin
	tn.ln = ln
	t.Cleanup(tn.kill)
	return tn
}

// kill is the chaos switch: engines stop, listeners close, /healthz
// starts refusing connections — what SIGKILL looks like from outside.
func (tn *testNode) kill() {
	if tn.dead {
		return
	}
	tn.dead = true
	tn.stop()
	tn.ln.Close()
	tn.admin.Close()
}

// collect drains n fixes from a live subscriber to the node.
func collectFixes(t *testing.T, addr string, session int, ack int64, n int) []wire.Fix {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := wire.DialSession(ctx, wire.ClientConfig{Addr: addr, Session: session, Resume: ack})
	defer c.Close()
	var got []wire.Fix
	for len(got) < n {
		select {
		case f, ok := <-c.Fixes():
			if !ok {
				t.Fatalf("client stopped after %d fixes: %v", len(got), c.Err())
			}
			got = append(got, f)
		case <-ctx.Done():
			t.Fatalf("timed out after %d/%d fixes", len(got), n)
		}
	}
	return got
}

// TestNodeWireServing: the e2e resume-semantics satellite at the node
// level — live subscribe, disconnect, resume with the token, and the
// resumed stream continues exactly one past the ack with no duplicates
// and no holes.
func TestNodeWireServing(t *testing.T) {
	tn := startTestNode(t, "a", []int{0, 1}, 11)
	first := collectFixes(t, tn.wire, 1, -1, 30)
	for i := 1; i < len(first); i++ {
		if first[i].Epoch != first[i-1].Epoch+1 {
			t.Fatalf("live stream hole: %d → %d", first[i-1].Epoch, first[i].Epoch)
		}
	}
	ack := int64(first[len(first)-1].Epoch)
	resumed := collectFixes(t, tn.wire, 1, ack, 20)
	if resumed[0].Epoch != uint64(ack)+1 {
		t.Fatalf("resume with ack %d delivered epoch %d first, want %d", ack, resumed[0].Epoch, ack+1)
	}
	for i := 1; i < len(resumed); i++ {
		if resumed[i].Epoch != resumed[i-1].Epoch+1 {
			t.Fatalf("resumed stream hole: %d → %d", resumed[i-1].Epoch, resumed[i].Epoch)
		}
	}
}

// TestNodeHandoffEndpoints drives the /cluster/* control plane over
// real HTTP: discovery, checkpoint fetch, filtered handoff to a
// survivor, and the survivor serving the adopted session.
func TestNodeHandoffEndpoints(t *testing.T) {
	a := startTestNode(t, "a", []int{0, 1}, 21)
	b := startTestNode(t, "b", []int{2}, 21)

	// Discovery answers with hosted sessions.
	var sessions struct {
		Engines  int                `json:"engines"`
		Sessions []wire.SessionInfo `json:"sessions"`
	}
	resp, err := http.Get(a.admin.URL + "/cluster/sessions")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sessions.Engines != 1 || len(sessions.Sessions) != 2 {
		t.Fatalf("sessions = %+v", sessions)
	}

	// Wait for node a to pass a checkpoint refresh boundary, then
	// fetch its periodic checkpoint.
	var st *checkpoint.State
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(a.admin.URL + "/cluster/checkpoint")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		st, err = checkpoint.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Sessions) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node a never produced a non-empty checkpoint")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Hand session 1 to node b with the filtered checkpoint.
	head := a.node.Hub.Head(1)
	if head < int64(st.Epoch) {
		head = int64(st.Epoch)
	}
	resume := int(head) + 1
	body, err := checkpoint.Encode(st.Filter([]int{1}))
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/cluster/handoff?sessions=1&resume=%d", b.admin.URL, resume)
	hr, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out RestoreOutcome
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if out.Outcome != "ok" || out.Sessions != 1 {
		t.Fatalf("handoff outcome = %+v, want ok/1 session", out)
	}

	// The survivor serves the adopted session: resuming with an ack
	// inside the replayed range continues without a hole.
	got := collectFixes(t, b.wire, 1, int64(st.Epoch), 20)
	if got[0].Epoch != uint64(st.Epoch)+1 {
		t.Fatalf("adopted stream starts at %d, want %d", got[0].Epoch, st.Epoch+1)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Epoch != got[i-1].Epoch+1 {
			t.Fatalf("adopted stream hole: %d → %d", got[i-1].Epoch, got[i].Epoch)
		}
	}

	// Re-adopting the same session is a guarded no-op.
	hr2, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if out.Outcome != "duplicate" {
		t.Fatalf("second handoff outcome = %q, want duplicate", out.Outcome)
	}
}

// TestNodeHandoffGracefulDegradation: corrupt checkpoint bytes must
// not refuse the sessions — they cold-start at the resume epoch, the
// downgrade is reported, and gps_restore_failures_total moves.
func TestNodeHandoffGracefulDegradation(t *testing.T) {
	b := startTestNode(t, "b", []int{2}, 33)

	url := b.admin.URL + "/cluster/handoff?sessions=5&resume=40"
	hr, err := http.Post(url, "application/octet-stream", strings.NewReader("GPSCKPT garbage"))
	if err != nil {
		t.Fatal(err)
	}
	var out RestoreOutcome
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if out.Outcome != "corrupt" {
		t.Fatalf("outcome = %q, want corrupt", out.Outcome)
	}
	if got := b.node.Status().RestoreFailures; got != 1 {
		t.Fatalf("restore failures = %d, want 1", got)
	}
	if rep := b.restoreLog(); len(rep) != 1 || rep[0].Outcome != "corrupt" {
		t.Fatalf("OnRestore saw %+v", rep)
	}

	// Despite the corrupt checkpoint the session is served, starting
	// at the requested resume epoch (the declared cold-start gap).
	got := collectFixes(t, b.wire, 5, -1, 10)
	if got[0].Epoch < 40 {
		t.Fatalf("cold-started session served epoch %d before the resume point 40", got[0].Epoch)
	}

	// A mismatched (wrong-seed) checkpoint is rejected, also downgrading
	// to cold start rather than refusal.
	wrong := &checkpoint.State{Solver: "dlg", Seed: 999, Receivers: 1, Epoch: 50,
		Sessions: []checkpoint.Session{{Receiver: 6, Epoch: 50}}}
	data, err := checkpoint.Encode(wrong)
	if err != nil {
		t.Fatal(err)
	}
	hr2, err := http.Post(b.admin.URL+"/cluster/handoff?sessions=6&resume=50",
		"application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if out.Outcome != "rejected" {
		t.Fatalf("outcome = %q, want rejected", out.Outcome)
	}
	if got := b.node.Status().RestoreFailures; got != 2 {
		t.Fatalf("restore failures = %d, want 2", got)
	}
}

// TestNodeHandoffValidation: malformed handoff requests are refused
// loudly.
func TestNodeHandoffValidation(t *testing.T) {
	b := startTestNode(t, "b", []int{0}, 1)
	for _, bad := range []string{
		"/cluster/handoff?sessions=&resume=10",
		"/cluster/handoff?sessions=1&resume=-2",
		"/cluster/handoff?sessions=x&resume=10",
	} {
		resp, err := http.Post(b.admin.URL+bad, "application/octet-stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Get(b.admin.URL + "/cluster/handoff?sessions=1&resume=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET handoff: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestParseSessionIDs covers the -session-ids flag grammar.
func TestParseSessionIDs(t *testing.T) {
	ids, err := ParseSessionIDs(" 3, 0 ,7")
	if err != nil || len(ids) != 3 || ids[0] != 3 || ids[1] != 0 || ids[2] != 7 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	for _, bad := range []string{"", "1,1", "-4", "a"} {
		if _, err := ParseSessionIDs(bad); err == nil {
			t.Errorf("ParseSessionIDs(%q) accepted", bad)
		}
	}
}
