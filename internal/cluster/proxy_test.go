package cluster

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"gpsdl/internal/engine"
	"gpsdl/internal/telemetry"
	"gpsdl/internal/wire"
)

// startTestProxy fronts the given nodes with a fast-probing Proxy and
// a wire relay listener. budget bounds the per-relay upstream retries.
func startTestProxy(t *testing.T, nodes map[string]*testNode, budget int) (*Proxy, string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrs := make(map[string]NodeAddr, len(nodes))
	for name, tn := range nodes {
		addrs[name] = NodeAddr{Wire: tn.wire, Admin: tn.admin.URL}
	}
	p, err := NewProxy(ProxyConfig{
		Nodes: addrs,
		Health: HealthConfig{
			Interval:  20 * time.Millisecond,
			Timeout:   500 * time.Millisecond,
			Threshold: 3,
		},
		PollInterval: 25 * time.Millisecond,
		RetryBudget:  budget,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		Registry:     telemetry.NewRegistry(),
	})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	go p.Run(ctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	go func() { _ = p.ServeWire(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		ln.Close()
	})
	return p, ln.Addr().String()
}

// cachedCheckpointEpoch reads the proxy's cached checkpoint epoch for a
// node (−1 when none cached yet).
func cachedCheckpointEpoch(p *Proxy, node string) int {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	if st := p.ckpts[node]; st != nil {
		return st.Epoch
	}
	return -1
}

// controlStream runs an uninterrupted single-session engine with the
// same seed and round-trips every fix through the wire codec — the
// quantized ground truth a failover-bridged stream must match exactly.
func controlStream(t *testing.T, session int, seed int64, end int) map[uint64]wire.Fix {
	t.Helper()
	var (
		mu    sync.Mutex
		enc   = wire.FixEncoder{KeyframeEvery: testCkptEvery}
		frame []byte
	)
	cfg := engine.Config{
		SessionIDs:      []int{session},
		Workers:         1,
		Seed:            seed,
		CheckpointEvery: testCkptEvery,
		Sink: func(e engine.FixEvent) {
			mu.Lock()
			f := e.Wire()
			frame, _ = enc.AppendFix(frame, &f)
			mu.Unlock()
		},
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), end); err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]wire.Fix, end)
	fr := wire.NewFrameReader(bytes.NewReader(frame))
	var dec wire.FixDecoder
	for {
		pl, err := fr.Next()
		if err != nil {
			break
		}
		f, err := dec.DecodeFix(pl)
		if err != nil {
			t.Fatal(err)
		}
		out[f.Epoch] = f
	}
	if len(out) != end {
		t.Fatalf("control stream decoded %d epochs, want %d", len(out), end)
	}
	return out
}

// TestProxyFailoverKeepsStreamGapless is the tentpole acceptance test:
// a client streaming session 1 through the proxy survives a node death
// with zero duplicated epochs, zero silently-skipped epochs, and
// post-failover fixes bit-identical to an uninterrupted run.
func TestProxyFailoverKeepsStreamGapless(t *testing.T) {
	const seed = 7
	a := startTestNode(t, "a", []int{0, 1}, seed)
	b := startTestNode(t, "b", []int{2}, seed)
	p, relay := startTestProxy(t, map[string]*testNode{"a": a, "b": b}, 100)

	var (
		evMu sync.Mutex
		gaps []wire.Resume
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := wire.DialSession(ctx, wire.ClientConfig{
		Addr:        relay,
		Session:     1,
		Resume:      -1,
		RetryBudget: 100,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		OnEvent: func(e wire.ClientEvent) {
			if e.Kind == "gap" {
				evMu.Lock()
				gaps = append(gaps, e.Resume)
				evMu.Unlock()
			}
		},
	})
	defer c.Close()

	// Phase 1: stream through node a until the kill preconditions hold —
	// the client is past epoch 120 and the proxy holds a checkpoint of
	// node a from epoch ≥ 50, so the handoff has real state to restore.
	var got []wire.Fix
	killed := false
	for {
		select {
		case f, ok := <-c.Fixes():
			if !ok {
				t.Fatalf("client stopped after %d fixes: %v", len(got), c.Err())
			}
			got = append(got, f)
		case <-ctx.Done():
			t.Fatalf("timed out: %d fixes, killed=%v", len(got), killed)
		}
		last := got[len(got)-1].Epoch
		if !killed && last >= 120 && cachedCheckpointEpoch(p, "a") >= testCkptEvery {
			// Phase 2: the chaos event. kill() drops the engines, the
			// wire listener, and /healthz all at once.
			a.kill()
			killed = true
		}
		if killed && last >= 300 {
			break
		}
	}

	// Zero duplicated, zero silently-skipped: strictly consecutive
	// epochs across the failover.
	for i := 1; i < len(got); i++ {
		if got[i].Epoch != got[i-1].Epoch+1 {
			t.Fatalf("epoch %d followed %d at fix %d — stream not gapless across failover",
				got[i].Epoch, got[i-1].Epoch, i)
		}
	}
	evMu.Lock()
	ngaps := len(gaps)
	evMu.Unlock()
	if ngaps != 0 {
		t.Fatalf("client saw %d gap verdicts: %+v", ngaps, gaps)
	}

	// The orphaned sessions were re-homed to the survivor.
	owners := p.Owners()
	if owners[0] != "b" || owners[1] != "b" {
		t.Fatalf("owners after failover = %v, want sessions 0 and 1 on b", owners)
	}
	hosted := make(map[int]bool)
	for _, si := range b.node.Hub.Sessions() {
		hosted[si.ID] = true
	}
	if !hosted[0] || !hosted[1] {
		t.Fatalf("survivor hub hosts %v, want sessions 0 and 1 adopted", b.node.Hub.Sessions())
	}
	if v := p.failovers.Value(); v < 1 {
		t.Fatalf("gpsproxy_failovers_total = %d, want ≥ 1", v)
	}
	if v := p.handoffsOK.Value(); v < 1 {
		t.Fatalf("gpsproxy_handoffs_total = %d, want ≥ 1", v)
	}
	if v := b.node.Status().Handoffs; v < 1 {
		t.Fatalf("survivor gps_cluster_handoffs_total = %d, want ≥ 1", v)
	}

	// Bit-identity: every fix the client saw — before, across, and after
	// the failover — equals the uninterrupted control run's quantized
	// stream.
	maxEpoch := int(got[len(got)-1].Epoch)
	control := controlStream(t, 1, seed, maxEpoch+1)
	for _, f := range got {
		want, ok := control[f.Epoch]
		if !ok {
			t.Fatalf("epoch %d missing from control stream", f.Epoch)
		}
		if f != want {
			t.Fatalf("epoch %d diverged after failover:\n  relayed %+v\n  control %+v", f.Epoch, f, want)
		}
	}
}

// TestProxyUnknownSessionAnswered: a resume token no node recognizes
// gets an explicit StatusUnknown verdict, never a hang.
func TestProxyUnknownSessionAnswered(t *testing.T) {
	a := startTestNode(t, "a", []int{0}, 3)
	_, relay := startTestProxy(t, map[string]*testNode{"a": a}, 4)

	var (
		evMu    sync.Mutex
		unknown bool
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := wire.DialSession(ctx, wire.ClientConfig{
		Addr:        relay,
		Session:     42,
		Resume:      900,
		RetryBudget: 4,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		OnEvent: func(e wire.ClientEvent) {
			if e.Kind == "resume" && e.Resume.Status == wire.StatusUnknown {
				evMu.Lock()
				unknown = true
				evMu.Unlock()
			}
		},
	})
	defer c.Close()

	for {
		select {
		case _, ok := <-c.Fixes():
			if ok {
				t.Fatal("received a fix for a session nobody hosts")
			}
		case <-ctx.Done():
			t.Fatal("client hung on an unknown session")
		}
		break
	}
	if c.Err() == nil {
		t.Fatal("client terminated without an explanatory error")
	}
	evMu.Lock()
	defer evMu.Unlock()
	if !unknown {
		t.Fatal("client never received the StatusUnknown verdict for its resume token")
	}
}
