// Package cluster holds the small, dependency-free pieces of the
// horizontal serving tier: a consistent hash ring that maps receiver
// sessions onto gpsserve nodes, and a health monitor that watches node
// /healthz endpoints and drives failover decisions.
package cluster

import (
	"hash/fnv"
	"sort"
	"sync"

	"gpsdl/internal/rng"
)

// Ring is a consistent hash ring with virtual nodes. Sessions hash to
// points on a 64-bit circle; each node owns the arcs leading to its
// virtual points, so removing a node re-homes only that node's
// sessions and adding one steals ~1/n of each arc. Safe for concurrent
// use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with the given virtual-node count per node
// (≤ 0 means 64).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

func nodePoint(node string, replica int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	return rng.Mix64(h.Sum64() + uint64(replica)*0x9E3779B97F4A7C15)
}

// SessionKey maps a session id onto the circle.
func SessionKey(id int) uint64 { return rng.Mix64(uint64(id) + 1) }

// Add inserts node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: nodePoint(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes node (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes lists the ring's members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key — the first virtual point at or
// after it on the circle. ok is false when the ring is empty.
func (r *Ring) Owner(key uint64) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// OwnerSession returns the node owning session id.
func (r *Ring) OwnerSession(id int) (string, bool) { return r.Owner(SessionKey(id)) }
