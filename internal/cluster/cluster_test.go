package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingStability: removing one node re-homes only that node's
// sessions; everyone else keeps their owner.
func TestRingStability(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	const sessions = 1000
	before := make(map[int]string, sessions)
	for s := 0; s < sessions; s++ {
		n, ok := r.OwnerSession(s)
		if !ok {
			t.Fatal("empty ring")
		}
		before[s] = n
	}
	r.Remove("b")
	moved := 0
	for s := 0; s < sessions; s++ {
		n, _ := r.OwnerSession(s)
		if before[s] == "b" {
			if n == "b" {
				t.Fatalf("session %d still owned by removed node", s)
			}
			moved++
		} else if n != before[s] {
			t.Fatalf("session %d moved %s→%s though its owner survived", s, before[s], n)
		}
	}
	if moved == 0 {
		t.Fatal("node b owned nothing; ring badly unbalanced")
	}
}

// TestRingBalance: with virtual nodes, no node owns a grossly
// disproportionate share.
func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"n0", "n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const sessions = 4000
	for s := 0; s < sessions; s++ {
		n, _ := r.OwnerSession(s)
		counts[n]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / sessions
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.0f%% of sessions; want roughly balanced (counts=%v)", n, 100*share, counts)
		}
	}
}

// TestRingDeterminism: ownership is a pure function of membership.
func TestRingDeterminism(t *testing.T) {
	build := func() *Ring {
		r := NewRing(32)
		r.Add("x")
		r.Add("y")
		return r
	}
	a, b := build(), build()
	for s := 0; s < 200; s++ {
		na, _ := a.OwnerSession(s)
		nb, _ := b.OwnerSession(s)
		if na != nb {
			t.Fatalf("session %d: %s vs %s", s, na, nb)
		}
	}
	if _, ok := NewRing(8).OwnerSession(1); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestMonitorThreshold: a node is declared down only after Threshold
// consecutive failures, and recovers on the first success.
func TestMonitorThreshold(t *testing.T) {
	m := NewMonitor(map[string]string{"a": "unused"}, HealthConfig{Threshold: 3})
	var downs, ups atomic.Int64
	m.OnDown = func(string) { downs.Add(1) }
	m.OnUp = func(string) { ups.Add(1) }

	m.Observe("a", false)
	m.Observe("a", false)
	if !m.Up("a") {
		t.Fatal("down before threshold")
	}
	m.Observe("a", false)
	if m.Up("a") || downs.Load() != 1 {
		t.Fatalf("not down after threshold (downs=%d)", downs.Load())
	}
	m.Observe("a", false)
	if downs.Load() != 1 {
		t.Fatal("OnDown fired more than once per transition")
	}
	m.Observe("a", true)
	if !m.Up("a") || ups.Load() != 1 {
		t.Fatalf("no recovery (ups=%d)", ups.Load())
	}
	// A blip after recovery restarts the count.
	m.Observe("a", false)
	if !m.Up("a") {
		t.Fatal("single post-recovery failure killed the node")
	}
}

// TestMonitorEndToEnd: real HTTP probes against httptest servers; a
// server starting to 500 transitions down within a few intervals.
func TestMonitorEndToEnd(t *testing.T) {
	var sick atomic.Bool
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer healthy.Close()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()

	m := NewMonitor(map[string]string{"good": healthy.URL, "bad": flaky.URL},
		HealthConfig{Interval: 10 * time.Millisecond, Timeout: time.Second, Threshold: 2})
	var mu sync.Mutex
	downed := map[string]bool{}
	m.OnDown = func(n string) { mu.Lock(); downed[n] = true; mu.Unlock() }

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for m.Probes("bad") < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sick.Store(true)
	for time.Now().Before(deadline) {
		if !m.Up("bad") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if !downed["bad"] {
		t.Fatal("sick node never declared down")
	}
	if downed["good"] {
		t.Fatal("healthy node declared down")
	}
	if len(m.UpNodes()) != 1 || m.UpNodes()[0] != "good" {
		t.Fatalf("UpNodes = %v", m.UpNodes())
	}
}
