package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get serves one request against h and returns the recorder.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

// All three handlers must answer 404 with a nil recorder so probes can
// tell "tracing disabled" from "no traces yet".
func TestHandlersNilRecorder(t *testing.T) {
	for name, h := range map[string]http.Handler{
		"traces":    Handler(nil),
		"chrome":    ChromeHandler(nil),
		"exemplars": ExemplarsHandler(nil),
	} {
		rr := get(t, h, "/")
		if rr.Code != http.StatusNotFound {
			t.Errorf("%s nil recorder status = %d, want 404", name, rr.Code)
		}
	}
}

// An empty (but live) recorder must answer 200 with empty collections —
// the "no traces yet" half of the distinction.
func TestHandlersEmptyRecorder(t *testing.T) {
	rec := New(Config{Capacity: 4})
	rr := get(t, Handler(rec), "/debug/trace")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var body struct {
		Count  uint64   `json:"count"`
		Traces []*Trace `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 0 || len(body.Traces) != 0 {
		t.Errorf("empty recorder body = %+v", body)
	}

	rr = get(t, ExemplarsHandler(rec), "/debug/trace/exemplars")
	if rr.Code != http.StatusOK {
		t.Fatalf("exemplars status = %d", rr.Code)
	}
	var ex struct {
		Exemplars []*Exemplar `json:"exemplars"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Exemplars) != 0 {
		t.Errorf("empty recorder exemplars = %+v", ex.Exemplars)
	}
}

// Handler must serve retained traces as indented JSON with the declared
// content type, most recent first.
func TestHandlerServesTraces(t *testing.T) {
	rec := New(Config{Capacity: 8})
	for i := 0; i < 3; i++ {
		tb := rec.StartEpoch(i, float64(i))
		sp := tb.Start("solve/nr")
		sp.End()
		tb.Finish()
	}
	rr := get(t, Handler(rec), "/debug/trace")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Count  uint64   `json:"count"`
		Traces []*Trace `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 3 || len(body.Traces) != 3 {
		t.Fatalf("count = %d traces = %d, want 3/3", body.Count, len(body.Traces))
	}
	if body.Traces[0].Epoch != 2 {
		t.Errorf("first trace epoch = %d, want most recent (2)", body.Traces[0].Epoch)
	}
	if body.Traces[0].Span("solve/nr") == nil {
		t.Error("trace lost its span through the handler")
	}
}

// ChromeHandler must emit a valid trace_event document with a download
// disposition.
func TestChromeHandlerFormat(t *testing.T) {
	rec := New(Config{Capacity: 4})
	tb := rec.StartEpoch(7, 1.5)
	sp := tb.Start("epoch/generate")
	sp.End()
	tb.Finish()
	rr := get(t, ChromeHandler(rec), "/debug/trace/chrome")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if cd := rr.Header().Get("Content-Disposition"); !strings.Contains(cd, "gps_trace.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("chrome body not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "epoch/generate" {
			found = true
		}
	}
	if !found {
		t.Error("span epoch/generate missing from the Chrome export")
	}
}

// ExemplarsHandler output must round-trip through DecodeExemplars — the
// contract that lets a scrape feed gpsrun -replay directly.
func TestExemplarsHandlerRoundTrip(t *testing.T) {
	rec := New(Config{Capacity: 4, SlowThreshold: time.Millisecond})
	if got := rec.ExemplarReason(2*time.Millisecond, 0); got != ReasonSlow {
		t.Fatalf("ExemplarReason = %q, want %q", got, ReasonSlow)
	}
	rec.AddExemplar(&Exemplar{
		CapturedAt: time.Unix(100, 0).UTC(),
		Reason:     ReasonSlow,
		SolveNanos: int64(2 * time.Millisecond),
		Input:      json.RawMessage(`{"solver":"NR"}`),
	})
	rr := get(t, ExemplarsHandler(rec), "/debug/trace/exemplars")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	exs, err := DecodeExemplars(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 1 {
		t.Fatalf("%d exemplars, want 1", len(exs))
	}
	if exs[0].Reason != ReasonSlow {
		t.Errorf("round-tripped reason = %q", exs[0].Reason)
	}
	// The indenting encoder reformats raw JSON; the content must survive.
	var in struct {
		Solver string `json:"solver"`
	}
	if err := json.Unmarshal(exs[0].Input, &in); err != nil || in.Solver != "NR" {
		t.Errorf("round-tripped input = %s (err %v)", exs[0].Input, err)
	}
}
