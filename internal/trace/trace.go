// Package trace is the repository's per-fix tracing layer: lightweight
// nested spans collected into one Trace per epoch, a lock-free ring
// buffer ("flight recorder") retaining the most recent traces, and a
// tail of exemplars — pathological fixes captured with their complete
// input for offline replay.
//
// Where internal/telemetry answers "how many fixes per second, at what
// latency?", this package answers "which stage of which epoch was slow".
// The design rules are the same: stdlib only, every method is a no-op on
// a nil receiver, and an un-instrumented code path pays at most a
// pointer test (never a clock read), so the solve hot paths are
// unchanged when no Recorder is configured.
//
// Usage mirrors the context-based tracers production services use:
//
//	t := recorder.StartEpoch(i, epoch.T)     // nil recorder → nil t
//	ctx = trace.With(ctx, t)
//	sp := trace.Start(ctx, "solve/dlg", trace.Int("sats", len(obs)))
//	... solve ...
//	sp.End()
//	t.Finish()                                // pushes into the ring
package trace

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are kept as `any`
// so they serialize naturally into JSON and Chrome trace_event args.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// SpanRecord is one completed stage of a trace. Times are offsets from
// the trace start so a serialized trace is self-contained.
type SpanRecord struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Trace is the complete span set of one fix attempt.
type Trace struct {
	// ID is assigned by the recorder when the trace is finished
	// (monotonically increasing since process start).
	ID uint64 `json:"id"`
	// Epoch is the epoch index within the stream or dataset.
	Epoch int `json:"epoch"`
	// T is the receiver timestamp of the epoch (seconds).
	T float64 `json:"t"`
	// Start is the wall-clock time the trace began.
	Start time.Time `json:"start"`
	// Spans lists the completed stages in End() order.
	Spans []SpanRecord `json:"spans"`
	// Err carries the solve error for failed fixes ("" on success).
	Err string `json:"err,omitempty"`
}

// Span returns the first span with the given name, or nil.
func (t *Trace) Span(name string) *SpanRecord {
	if t == nil {
		return nil
	}
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// T accumulates spans for one in-flight fix. A nil *T (tracing
// disabled) makes every method a no-op, so callers instrument
// unconditionally. Span appends are mutex-guarded: the epoch pipelines
// are single-goroutine, but the broadcast stage may finish spans while
// an admin scrape snapshots the ring.
type T struct {
	mu  sync.Mutex
	tr  Trace
	rec *Recorder
}

// Start opens a live span; call End on the returned span to record it.
// Nil-safe: a nil *T yields a nil *Span whose methods no-op without
// reading the clock.
func (t *T) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, attrs: attrs, start: time.Now()}
}

// AddSpan records a pre-measured span at the given offset from the
// trace start — used by harnesses (eval.Sweep) that already timed the
// stage and must not add clock reads inside the measured region.
func (t *T) AddSpan(name string, start, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tr.Spans = append(t.tr.Spans, SpanRecord{
		Name:    name,
		StartNs: start.Nanoseconds(),
		DurNs:   dur.Nanoseconds(),
		Attrs:   attrs,
	})
	t.mu.Unlock()
}

// SetT records the epoch's receiver timestamp — used when the trace
// must start before the epoch itself is generated (the generation is
// the first traced stage).
func (t *T) SetT(v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tr.T = v
	t.mu.Unlock()
}

// SetErr marks the trace as a failed fix.
func (t *T) SetErr(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	t.tr.Err = err.Error()
	t.mu.Unlock()
}

// Finish seals the trace and pushes it into the recorder's ring,
// returning the completed Trace (nil for a nil *T).
func (t *T) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tr := t.tr // copy; the ring owns an immutable snapshot
	t.mu.Unlock()
	return t.rec.add(&tr)
}

// Span is one live stage timing. Nil-safe.
type Span struct {
	t     *T
	name  string
	start time.Time
	attrs []Attr
}

// SetAttr appends annotations to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s != nil {
		s.attrs = append(s.attrs, attrs...)
	}
}

// End records the span into its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	s.t.tr.Spans = append(s.t.tr.Spans, SpanRecord{
		Name:    s.name,
		StartNs: s.start.Sub(s.t.tr.Start).Nanoseconds(),
		DurNs:   now.Sub(s.start).Nanoseconds(),
		Attrs:   s.attrs,
	})
	s.t.mu.Unlock()
}

// ctxKey keys the active trace in a context.
type ctxKey struct{}

// With returns a context carrying the active trace. A nil *T returns
// ctx unchanged, so disabled tracing adds no context allocation.
func With(ctx context.Context, t *T) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// From extracts the active trace from ctx (nil when none).
func From(ctx context.Context) *T {
	t, _ := ctx.Value(ctxKey{}).(*T)
	return t
}

// Start opens a span on the context's active trace — the one-line form
// pipeline stages use: trace.Start(ctx, "solve/dlg"). Returns nil (all
// methods no-op) when the context carries no trace.
func Start(ctx context.Context, name string, attrs ...Attr) *Span {
	return From(ctx).Start(name, attrs...)
}
