package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// Config sizes a Recorder and sets its exemplar thresholds.
type Config struct {
	// Capacity is the number of recent traces the ring retains.
	// 0 means 256.
	Capacity int
	// Exemplars is the exemplar tail size. 0 means 32.
	Exemplars int
	// SlowThreshold captures an exemplar when a fix's solve latency
	// exceeds it. 0 disables latency capture.
	SlowThreshold time.Duration
	// ResidualThreshold captures an exemplar when a fix's position
	// residual (meters) exceeds it. 0 disables residual capture.
	ResidualThreshold float64
}

// Exemplar is one pathological fix: its complete trace plus the
// serialized input that produced it, so the epoch can be re-run
// offline (gpsrun -replay). Input is an opaque JSON blob owned by the
// capturing pipeline (see eval.ReplayInput for the canonical schema).
type Exemplar struct {
	CapturedAt     time.Time       `json:"captured_at"`
	Reason         string          `json:"reason"` // "slow" | "residual"
	SolveNanos     int64           `json:"solve_nanos"`
	ResidualMeters float64         `json:"residual_meters,omitempty"`
	Trace          *Trace          `json:"trace,omitempty"`
	Input          json.RawMessage `json:"input,omitempty"`
}

// Exemplar capture reasons.
const (
	ReasonSlow     = "slow"
	ReasonResidual = "residual"
)

// Recorder is the flight recorder: a lock-free ring buffer of the last
// N epoch traces plus a smaller ring of exemplars. Writers never block
// — each publish is one atomic counter bump and one atomic pointer
// store — so the epoch loop cannot stall on a concurrent admin scrape.
// A nil *Recorder disables everything at the cost of a pointer test.
type Recorder struct {
	ring   []atomic.Pointer[Trace]
	next   atomic.Uint64 // total traces recorded; slot = (next-1) % len
	nextID atomic.Uint64

	exRing []atomic.Pointer[Exemplar]
	exNext atomic.Uint64

	slowNanos   int64
	residMeters float64
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	exemplars := cfg.Exemplars
	if exemplars <= 0 {
		exemplars = 32
	}
	return &Recorder{
		ring:        make([]atomic.Pointer[Trace], capacity),
		exRing:      make([]atomic.Pointer[Exemplar], exemplars),
		slowNanos:   cfg.SlowThreshold.Nanoseconds(),
		residMeters: cfg.ResidualThreshold,
	}
}

// StartEpoch opens a trace for one epoch. Nil recorder → nil *T, which
// turns the whole instrumentation path into no-ops.
func (r *Recorder) StartEpoch(epoch int, t float64) *T {
	if r == nil {
		return nil
	}
	return &T{rec: r, tr: Trace{Epoch: epoch, T: t, Start: time.Now()}}
}

// add assigns an ID and publishes the trace into the ring.
func (r *Recorder) add(tr *Trace) *Trace {
	if r == nil {
		return tr
	}
	tr.ID = r.nextID.Add(1)
	slot := (r.next.Add(1) - 1) % uint64(len(r.ring))
	r.ring[slot].Store(tr)
	return tr
}

// Count returns the total number of traces recorded since start.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the retained traces, most recent first. Concurrent
// writers may lap the oldest slots; the snapshot drops any trace whose
// slot was overwritten mid-read (IDs stay strictly decreasing).
func (r *Recorder) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	total := r.next.Load()
	n := uint64(len(r.ring))
	if total < n {
		n = total
	}
	out := make([]*Trace, 0, n)
	lastID := ^uint64(0)
	for i := uint64(0); i < n; i++ {
		slot := (total - 1 - i) % uint64(len(r.ring))
		tr := r.ring[slot].Load()
		if tr == nil || tr.ID >= lastID {
			continue
		}
		lastID = tr.ID
		out = append(out, tr)
	}
	return out
}

// ExemplarReason classifies a completed fix against the capture
// thresholds: ReasonSlow, ReasonResidual, or "" when the fix is
// unremarkable (or the recorder is nil / thresholds disabled).
func (r *Recorder) ExemplarReason(solve time.Duration, residualMeters float64) string {
	if r == nil {
		return ""
	}
	if r.slowNanos > 0 && solve.Nanoseconds() > r.slowNanos {
		return ReasonSlow
	}
	if r.residMeters > 0 && residualMeters > r.residMeters {
		return ReasonResidual
	}
	return ""
}

// AddExemplar publishes one captured exemplar into the tail.
func (r *Recorder) AddExemplar(ex *Exemplar) {
	if r == nil || ex == nil {
		return
	}
	if ex.CapturedAt.IsZero() {
		ex.CapturedAt = time.Now()
	}
	slot := (r.exNext.Add(1) - 1) % uint64(len(r.exRing))
	r.exRing[slot].Store(ex)
}

// Exemplars returns the retained exemplars, most recent first.
func (r *Recorder) Exemplars() []*Exemplar {
	if r == nil {
		return nil
	}
	total := r.exNext.Load()
	n := uint64(len(r.exRing))
	if total < n {
		n = total
	}
	out := make([]*Exemplar, 0, n)
	for i := uint64(0); i < n; i++ {
		slot := (total - 1 - i) % uint64(len(r.exRing))
		if ex := r.exRing[slot].Load(); ex != nil {
			out = append(out, ex)
		}
	}
	return out
}

// Dump is the on-disk flight-recorder snapshot: everything the ring and
// exemplar tail hold, written on SIGTERM or on demand.
type Dump struct {
	Written   time.Time   `json:"written"`
	Traces    []*Trace    `json:"traces"`
	Exemplars []*Exemplar `json:"exemplars"`
}

// WriteDump serializes the current recorder contents as JSON.
func (r *Recorder) WriteDump(w io.Writer) error {
	d := Dump{Written: time.Now(), Traces: r.Snapshot(), Exemplars: r.Exemplars()}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("trace: encode dump: %w", err)
	}
	return bw.Flush()
}

// DumpFile writes the recorder contents to path.
func (r *Recorder) DumpFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	return r.WriteDump(f)
}

// DecodeExemplars reads exemplars from any of the formats the tooling
// emits: a full Dump, an {"exemplars": [...]} object (the admin
// endpoint body), a bare JSON array, or a single exemplar object.
func DecodeExemplars(rd io.Reader) ([]*Exemplar, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("trace: read exemplars: %w", err)
	}
	var wrapped struct {
		Exemplars []*Exemplar `json:"exemplars"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && len(wrapped.Exemplars) > 0 {
		return wrapped.Exemplars, nil
	}
	var list []*Exemplar
	if err := json.Unmarshal(data, &list); err == nil && len(list) > 0 {
		return list, nil
	}
	var one Exemplar
	if err := json.Unmarshal(data, &one); err == nil && (one.Input != nil || one.Trace != nil) {
		return []*Exemplar{&one}, nil
	}
	return nil, fmt.Errorf("trace: no exemplars found in input")
}
