package trace

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildRecorder populates a recorder with two traces and one exemplar.
func buildRecorder() *Recorder {
	rec := New(Config{Capacity: 8, SlowThreshold: time.Millisecond})
	for i := 0; i < 2; i++ {
		tr := rec.StartEpoch(i, float64(i)*5)
		tr.AddSpan("solve/dlg", 0, 3*time.Microsecond, Int("sats", 8))
		tr.AddSpan("nmea/encode", 3*time.Microsecond, time.Microsecond)
		tr.Finish()
	}
	rec.AddExemplar(&Exemplar{
		Reason:     ReasonSlow,
		SolveNanos: int64(2 * time.Millisecond),
		Trace:      rec.Snapshot()[0],
		Input:      json.RawMessage(`{"epoch_index":1}`),
	})
	return rec
}

func TestWriteChrome(t *testing.T) {
	rec := buildRecorder()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 traces × (1 metadata + 2 spans) events.
	if len(out.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6", len(out.TraceEvents))
	}
	var solves, metas int
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "M":
			metas++
		case ev.Name == "solve/dlg":
			solves++
			if ev.Ph != "X" || ev.Dur != 3.0 || ev.Pid != 1 || ev.Tid == 0 {
				t.Errorf("solve event malformed: %+v", ev)
			}
			if ev.Args["sats"] != float64(8) {
				t.Errorf("solve args = %v", ev.Args)
			}
		}
	}
	if solves != 2 || metas != 2 {
		t.Errorf("solves = %d metas = %d, want 2 and 2", solves, metas)
	}
}

func TestWriteChromeFile(t *testing.T) {
	rec := buildRecorder()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteChromeFile(path, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeFile(filepath.Join(t.TempDir(), "no/such/dir.json"), nil); err == nil {
		t.Error("WriteChromeFile to a missing directory must fail")
	}
	_ = path
}

func TestHandlers(t *testing.T) {
	rec := buildRecorder()
	for _, tc := range []struct {
		name    string
		h       http.Handler
		needles []string
	}{
		{"trace", Handler(rec), []string{`"count": 2`, `"solve/dlg"`, `"epoch"`}},
		{"chrome", ChromeHandler(rec), []string{`"traceEvents"`, `"solve/dlg"`, `"ph":"X"`}},
		{"exemplars", ExemplarsHandler(rec), []string{`"exemplars"`, `"reason": "slow"`, `"epoch_index"`}},
	} {
		rw := httptest.NewRecorder()
		tc.h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
		if rw.Code != http.StatusOK {
			t.Errorf("%s status = %d", tc.name, rw.Code)
		}
		if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s Content-Type = %q", tc.name, ct)
		}
		body := rw.Body.String()
		if !json.Valid(rw.Body.Bytes()) {
			t.Errorf("%s body is not valid JSON", tc.name)
		}
		for _, needle := range tc.needles {
			if !strings.Contains(body, needle) {
				t.Errorf("%s body missing %q:\n%s", tc.name, needle, body)
			}
		}
	}
	// Nil recorder: 404 on every route.
	for _, h := range []http.Handler{Handler(nil), ChromeHandler(nil), ExemplarsHandler(nil)} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
		if rw.Code != http.StatusNotFound {
			t.Errorf("nil recorder handler status = %d, want 404", rw.Code)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	rec := buildRecorder()
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := rec.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 2 || len(d.Exemplars) != 1 {
		t.Fatalf("dump has %d traces, %d exemplars", len(d.Traces), len(d.Exemplars))
	}
	// The dump body must be accepted by DecodeExemplars.
	exs, err := DecodeExemplars(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 1 || exs[0].Reason != ReasonSlow {
		t.Fatalf("decoded exemplars = %+v", exs)
	}
}

func TestDecodeExemplarsFormats(t *testing.T) {
	cases := map[string]string{
		"wrapped": `{"exemplars":[{"reason":"slow","solve_nanos":5,"input":{"a":1}}]}`,
		"array":   `[{"reason":"residual","solve_nanos":5,"input":{"a":1}}]`,
		"single":  `{"reason":"slow","solve_nanos":5,"input":{"a":1}}`,
	}
	for name, body := range cases {
		exs, err := DecodeExemplars(strings.NewReader(body))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(exs) != 1 || exs[0].Input == nil {
			t.Errorf("%s: decoded %+v", name, exs)
		}
	}
	if _, err := DecodeExemplars(strings.NewReader(`{"traces":[]}`)); err == nil {
		t.Error("exemplar-free input must error")
	}
	if _, err := DecodeExemplars(strings.NewReader(`not json`)); err == nil {
		t.Error("invalid JSON must error")
	}
}
