package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace_event export: the JSON-object format consumed by
// about:tracing and Perfetto (ui.perfetto.dev). Each trace becomes one
// "thread" (tid = trace ID) of complete ("X") events, so stages line up
// per fix and epochs stack vertically in the viewer.

// chromeEvent is one trace_event entry. Timestamps and durations are in
// microseconds per the format spec; fractional values are allowed and
// preserve the nanosecond timings of sub-microsecond solver stages.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	// Dur is a pointer so metadata ("M") events omit it while complete
	// ("X") events always carry it — a zero-duration stage (e.g. a solve
	// that failed immediately) is still a valid complete event.
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes traces as a Chrome trace_event JSON object. The
// earliest trace start is the time origin, so files are stable across
// process restarts and diffable for identical runs.
func WriteChrome(w io.Writer, traces []*Trace) error {
	events := make([]chromeEvent, 0, len(traces)*8)
	var origin int64
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		if ns := tr.Start.UnixNano(); origin == 0 || ns < origin {
			origin = ns
		}
	}
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		base := float64(tr.Start.UnixNano()-origin) / 1e3
		meta := map[string]any{"name": fmt.Sprintf("epoch %d (t=%.1f)", tr.Epoch, tr.T)}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tr.ID, Args: meta,
		})
		for _, sp := range tr.Spans {
			dur := float64(sp.DurNs) / 1e3
			ev := chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   base + float64(sp.StartNs)/1e3,
				Dur:  &dur,
				Pid:  1,
				Tid:  tr.ID,
			}
			if len(sp.Attrs) > 0 || tr.Err != "" {
				args := make(map[string]any, len(sp.Attrs)+1)
				for _, a := range sp.Attrs {
					args[a.Key] = a.Value
				}
				if tr.Err != "" {
					args["trace_err"] = tr.Err
				}
				ev.Args = args
			}
			events = append(events, ev)
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ns"}
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encode chrome events: %w", err)
	}
	return bw.Flush()
}

// WriteChromeFile writes the Chrome-format trace to path.
func WriteChromeFile(path string, traces []*Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	return WriteChrome(f, traces)
}
