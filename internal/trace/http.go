package trace

import (
	"encoding/json"
	"net/http"
)

// Admin-endpoint handlers for the flight recorder. All three are safe
// to mount with a nil recorder: they answer 404 so probes can tell
// "tracing disabled" from "no traces yet" (200 with an empty list).

// Handler serves the retained traces as JSON:
// {"count": N, "traces": [...]} with the most recent trace first.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		body := struct {
			Count  uint64   `json:"count"`
			Traces []*Trace `json:"traces"`
		}{r.Count(), r.Snapshot()}
		writeJSON(w, body)
	})
}

// ChromeHandler serves the retained traces in Chrome trace_event
// format, loadable in about:tracing and Perfetto.
func ChromeHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="gps_trace.json"`)
		_ = WriteChrome(w, r.Snapshot())
	})
}

// ExemplarsHandler serves the captured exemplar tail as JSON:
// {"exemplars": [...]} — the body DecodeExemplars accepts, so a scrape
// can be fed straight to gpsrun -replay.
func ExemplarsHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if r == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		body := struct {
			Exemplars []*Exemplar `json:"exemplars"`
		}{r.Exemplars()}
		writeJSON(w, body)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
