package trace

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A nil recorder must make the entire instrumentation chain no-op
// without panicking: nil *T, nil *Span, context passthrough.
func TestNilSafety(t *testing.T) {
	var rec *Recorder
	tr := rec.StartEpoch(3, 1.5)
	if tr != nil {
		t.Fatalf("nil recorder StartEpoch = %v, want nil", tr)
	}
	sp := tr.Start("solve/dlg", Int("sats", 8))
	sp.SetAttr(Float("err_m", 1.0))
	sp.End()
	tr.AddSpan("x", 0, time.Millisecond)
	tr.SetErr(errors.New("boom"))
	if got := tr.Finish(); got != nil {
		t.Fatalf("nil T Finish = %v, want nil", got)
	}
	ctx := context.Background()
	if got := With(ctx, nil); got != ctx {
		t.Error("With(ctx, nil) must return ctx unchanged")
	}
	Start(ctx, "solve/nr").End() // no trace in ctx: must not panic
	if rec.ExemplarReason(time.Second, 1e9) != "" {
		t.Error("nil recorder must never classify exemplars")
	}
	if rec.Snapshot() != nil || rec.Exemplars() != nil || rec.Count() != 0 {
		t.Error("nil recorder snapshots must be empty")
	}
}

func TestSpanLifecycle(t *testing.T) {
	rec := New(Config{Capacity: 8})
	tr := rec.StartEpoch(7, 42.5)
	ctx := With(context.Background(), tr)

	sp := Start(ctx, "solve/dlg", Int("sats", 8))
	time.Sleep(time.Millisecond)
	sp.SetAttr(Int("iterations", 1))
	sp.End()
	tr.AddSpan("nmea/encode", 2*time.Millisecond, 50*time.Microsecond, String("kind", "gga"))
	got := tr.Finish()

	if got.Epoch != 7 || got.T != 42.5 {
		t.Errorf("trace identity = epoch %d t %v", got.Epoch, got.T)
	}
	if got.ID == 0 {
		t.Error("finished trace has no ID")
	}
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Spans))
	}
	solve := got.Span("solve/dlg")
	if solve == nil {
		t.Fatal("missing solve/dlg span")
	}
	if solve.DurNs < int64(time.Millisecond) {
		t.Errorf("solve span dur = %d ns, want >= 1ms", solve.DurNs)
	}
	if len(solve.Attrs) != 2 {
		t.Errorf("solve attrs = %v", solve.Attrs)
	}
	enc := got.Span("nmea/encode")
	if enc == nil || enc.StartNs != int64(2*time.Millisecond) || enc.DurNs != int64(50*time.Microsecond) {
		t.Errorf("pre-measured span = %+v", enc)
	}
	if got.Span("missing") != nil {
		t.Error("Span on absent name must be nil")
	}
}

func TestRingRetainsMostRecent(t *testing.T) {
	rec := New(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		tr := rec.StartEpoch(i, float64(i))
		tr.AddSpan("solve/nr", 0, time.Microsecond)
		tr.Finish()
	}
	if rec.Count() != 10 {
		t.Fatalf("count = %d, want 10", rec.Count())
	}
	snap := rec.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, tr := range snap {
		if want := 9 - i; tr.Epoch != want {
			t.Errorf("snapshot[%d].Epoch = %d, want %d", i, tr.Epoch, want)
		}
	}
}

func TestTraceErr(t *testing.T) {
	rec := New(Config{Capacity: 2})
	tr := rec.StartEpoch(0, 0)
	tr.SetErr(errors.New("clock predictor not ready"))
	got := tr.Finish()
	if got.Err != "clock predictor not ready" {
		t.Errorf("Err = %q", got.Err)
	}
}

func TestExemplarThresholds(t *testing.T) {
	rec := New(Config{SlowThreshold: time.Millisecond, ResidualThreshold: 100})
	cases := []struct {
		solve time.Duration
		resid float64
		want  string
	}{
		{time.Microsecond, 5, ""},
		{2 * time.Millisecond, 5, ReasonSlow},
		{time.Microsecond, 500, ReasonResidual},
		{2 * time.Millisecond, 500, ReasonSlow}, // latency wins the tie
	}
	for _, c := range cases {
		if got := rec.ExemplarReason(c.solve, c.resid); got != c.want {
			t.Errorf("ExemplarReason(%v, %g) = %q, want %q", c.solve, c.resid, got, c.want)
		}
	}
	// Disabled thresholds never fire.
	off := New(Config{})
	if off.ExemplarReason(time.Hour, 1e12) != "" {
		t.Error("zero thresholds must disable capture")
	}
}

func TestExemplarTail(t *testing.T) {
	rec := New(Config{Exemplars: 2})
	for i := 0; i < 5; i++ {
		rec.AddExemplar(&Exemplar{Reason: ReasonSlow, SolveNanos: int64(i)})
	}
	exs := rec.Exemplars()
	if len(exs) != 2 {
		t.Fatalf("exemplars = %d, want 2", len(exs))
	}
	if exs[0].SolveNanos != 4 || exs[1].SolveNanos != 3 {
		t.Errorf("exemplar order = %d, %d, want 4, 3", exs[0].SolveNanos, exs[1].SolveNanos)
	}
	if exs[0].CapturedAt.IsZero() {
		t.Error("CapturedAt not stamped")
	}
}

// Concurrent publishes against concurrent snapshots must neither race
// (go test -race) nor produce out-of-order snapshots.
func TestConcurrentRecorder(t *testing.T) {
	rec := New(Config{Capacity: 16})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			tr := rec.StartEpoch(i, float64(i))
			tr.AddSpan("solve/nr", 0, time.Nanosecond)
			tr.Finish()
		}
	}()
	for i := 0; i < 100; i++ {
		snap := rec.Snapshot()
		for j := 1; j < len(snap); j++ {
			if snap[j].ID >= snap[j-1].ID {
				t.Fatalf("snapshot IDs not strictly decreasing: %d then %d", snap[j-1].ID, snap[j].ID)
			}
		}
	}
	<-done
}

// The disabled path must cost no more than a few nanoseconds per stage
// — the tracing analogue of the telemetry nil-instrument guarantee.
func BenchmarkSpanDisabled(b *testing.B) {
	var rec *Recorder
	ctx := With(context.Background(), rec.StartEpoch(0, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(ctx, "solve/dlg")
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	rec := New(Config{Capacity: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := rec.StartEpoch(i, 0)
		sp := tr.Start("solve/dlg", Int("sats", 8))
		sp.End()
		tr.Finish()
	}
}
