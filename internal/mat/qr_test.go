package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolveSquareSystem(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	b := []float64{8, -11, -3}
	x, err := SolveLSQR(a, b)
	if err != nil {
		t.Fatalf("SolveLSQR: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestQRUnderdetermined(t *testing.T) {
	if _, err := FactorizeQR(NewDense(2, 3)); !errors.Is(err, ErrUnderdetermined) {
		t.Errorf("error = %v, want ErrUnderdetermined", err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Second column is zero after elimination of the first.
	a := NewDenseData(3, 2, []float64{1, 2, 2, 4, 3, 6})
	if _, err := FactorizeQR(a); !errors.Is(err, ErrSingular) {
		t.Errorf("error = %v, want ErrSingular", err)
	}
}

func TestQRLeastSquaresKnownFit(t *testing.T) {
	// Fit y = 1 + 2x through points with exact linear relationship.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewDense(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 1 + 2*x
	}
	coef, err := SolveLSQR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-1) > 1e-10 || math.Abs(coef[1]-2) > 1e-10 {
		t.Errorf("coef = %v, want [1 2]", coef)
	}
}

// Property: QR least-squares matches the normal-equation solution for
// well-conditioned random systems.
func TestPropQRMatchesNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		m := n + r.Intn(6)
		a := randomDense(r, m, n)
		b := randomVec(r, m)
		qrX, err := SolveLSQR(a, b)
		if err != nil {
			return true // rank-deficient random draw; skip
		}
		neX, err := SolveSPD(MulATA(a), MulTVec(a, b))
		if err != nil {
			return true
		}
		return VecNorm2(VecSub(qrX, neX)) < 1e-6*(1+VecNorm2(neX))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the least-squares residual is orthogonal to the column space:
// Aᵀ(A*x − b) ≈ 0.
func TestPropQRResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		m := n + 1 + r.Intn(5)
		a := randomDense(r, m, n)
		b := randomVec(r, m)
		x, err := SolveLSQR(a, b)
		if err != nil {
			return true
		}
		resid := VecSub(MulVec(a, x), b)
		return VecNormInf(MulTVec(a, resid)) < 1e-8*(1+VecNorm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQRRFactorIsUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomDense(rng, 6, 4)
	f, err := FactorizeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	rows, cols := r.Dims()
	if rows != 4 || cols != 4 {
		t.Fatalf("R dims = %dx%d, want 4x4", rows, cols)
	}
	for i := 1; i < rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Errorf("R(%d,%d) = %v, want 0", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRSolveLSDimensionPanics(t *testing.T) {
	f, err := FactorizeQR(randomDense(rand.New(rand.NewSource(5)), 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("QR.SolveLS with wrong-length b did not panic")
		}
	}()
	f.SolveLS([]float64{1, 2})
}
