package mat

import "math"

// Norm1 returns the matrix 1-norm (maximum absolute column sum).
func Norm1(a *Dense) float64 {
	var maxSum float64
	for j := 0; j < a.cols; j++ {
		var s float64
		for i := 0; i < a.rows; i++ {
			s += math.Abs(a.data[i*a.cols+j])
		}
		if s > maxSum {
			maxSum = s
		}
	}
	return maxSum
}

// NormInf returns the matrix ∞-norm (maximum absolute row sum).
func NormInf(a *Dense) float64 {
	var maxSum float64
	for i := 0; i < a.rows; i++ {
		var s float64
		for _, v := range a.rawRow(i) {
			s += math.Abs(v)
		}
		if s > maxSum {
			maxSum = s
		}
	}
	return maxSum
}

// NormFrob returns the Frobenius norm of a.
func NormFrob(a *Dense) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecNormInf returns the maximum absolute element of x.
func VecNormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// VecDot returns the dot product of x and y, which must have equal length.
func VecDot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: VecDot with mismatched lengths")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// VecSub returns x−y as a new slice.
func VecSub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: VecSub with mismatched lengths")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - y[i]
	}
	return out
}

// VecAdd returns x+y as a new slice.
func VecAdd(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: VecAdd with mismatched lengths")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + y[i]
	}
	return out
}
