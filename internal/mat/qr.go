package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix with m >= n:
// A = Q*R with Q orthogonal (m×m, stored implicitly as reflectors) and R
// upper trapezoidal.
type QR struct {
	qr   *Dense    // packed reflectors below the diagonal, R on and above
	rdia []float64 // diagonal of R
}

// FactorizeQR computes the QR factorization of a (rows >= cols required).
func FactorizeQR(a *Dense) (*QR, error) {
	if a.rows < a.cols {
		return nil, ErrUnderdetermined
	}
	m, n := a.rows, a.cols
	f := &QR{qr: a.Clone(), rdia: make([]float64, n)}
	qr := f.qr
	// Rank-deficiency threshold relative to the largest column norm.
	var scale float64
	for j := 0; j < n; j++ {
		var cn float64
		for i := 0; i < m; i++ {
			cn = math.Hypot(cn, qr.data[i*n+j])
		}
		if cn > scale {
			scale = cn
		}
	}
	tol := 1e-13 * scale
	for k := 0; k < n; k++ {
		// Householder reflector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.data[i*n+k])
		}
		if norm <= tol {
			return nil, ErrSingular
		}
		if qr.data[k*n+k] < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.data[i*n+k] /= norm
		}
		qr.data[k*n+k] += 1
		// Apply reflector to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.data[i*n+k] * qr.data[i*n+j]
			}
			s = -s / qr.data[k*n+k]
			for i := k; i < m; i++ {
				qr.data[i*n+j] += s * qr.data[i*n+k]
			}
		}
		f.rdia[k] = -norm
	}
	return f, nil
}

// SolveLS returns the least-squares solution x minimizing ‖A*x − b‖₂.
func (f *QR) SolveLS(b []float64) []float64 {
	m, n := f.qr.rows, f.qr.cols
	if len(b) != m {
		panic(fmt.Sprintf("mat: QR.SolveLS with vec(%d) for %dx%d system", len(b), m, n))
	}
	y := make([]float64, m)
	copy(y, b)
	qr := f.qr
	// Compute Qᵀ*b by applying reflectors.
	for k := 0; k < n; k++ {
		var s float64
		for i := k; i < m; i++ {
			s += qr.data[i*n+k] * y[i]
		}
		s = -s / qr.data[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * qr.data[i*n+k]
		}
	}
	// Back substitution with R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += qr.data[i*n+j] * x[j]
		}
		x[i] = (y[i] - s) / f.rdia[i]
	}
	return x
}

// R returns a copy of the n×n upper-triangular factor R.
func (f *QR) R() *Dense {
	n := f.qr.cols
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		r.data[i*n+i] = f.rdia[i]
		for j := i + 1; j < n; j++ {
			r.data[i*n+j] = f.qr.data[i*f.qr.cols+j]
		}
	}
	return r
}

// SolveLSQR solves the full-rank least-squares problem min ‖A*x − b‖₂ via
// Householder QR. It is numerically more robust than the normal equations
// at the cost of more work.
func SolveLSQR(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorizeQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveLS(b), nil
}
