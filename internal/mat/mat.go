// Package mat implements the dense linear algebra needed by the GPS solvers:
// matrix arithmetic, LU/Cholesky/QR factorizations, linear solves, inverses
// and norms. It is deliberately small, allocation-conscious and written
// against the standard library only.
//
// Conventions:
//   - Matrices are dense, row-major, float64.
//   - Dimension mismatches are programmer errors and panic with a
//     descriptive message (as gonum does); numerical failures such as
//     singular or non-positive-definite inputs are returned as errors.
//   - Vectors are plain []float64.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Numerical failure modes reported by factorizations and solvers.
var (
	// ErrSingular is returned when a matrix is singular to working precision.
	ErrSingular = errors.New("mat: matrix is singular")
	// ErrNotSPD is returned by Cholesky when the input is not symmetric
	// positive definite.
	ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")
	// ErrUnderdetermined is returned by least-squares solvers when the
	// system has fewer rows than columns.
	ErrUnderdetermined = errors.New("mat: system is underdetermined (rows < cols)")
)

// Dense is a dense, row-major matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: NewDense with non-positive dims %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData returns a rows×cols matrix initialized with a copy of data,
// which must have exactly rows*cols elements in row-major order.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: NewDenseData with %d elements for %dx%d matrix", len(data), rows, cols))
	}
	m := NewDense(rows, cols)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// rawRow returns the i-th row as a slice aliasing the matrix storage.
func (m *Dense) rawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.rawRow(i))
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow with %d elements for %d columns", len(v), m.cols))
	}
	copy(m.rawRow(i), v)
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.rawRow(i)
		for j, v := range row {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

// Add returns a+b. Panics if shapes differ.
func Add(a, b *Dense) *Dense {
	checkSameShape("Add", a, b)
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a-b. Panics if shapes differ.
func Sub(a, b *Dense) *Dense {
	checkSameShape("Sub", a, b)
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// Scale returns s*a.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

func checkSameShape(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product a*b. Panics if a.cols != b.rows.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.rawRow(i)
		orow := out.rawRow(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.rawRow(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*x. Panics if a.cols != len(x).
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d * vec(%d)", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.rawRow(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulTVec returns aᵀ*x without forming the transpose.
// Panics if a.rows != len(x).
func MulTVec(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulTVec shape mismatch %dx%d with vec(%d)", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.rawRow(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return out
}

// MulATA returns aᵀ*a, exploiting symmetry of the result.
func MulATA(a *Dense) *Dense {
	out := NewDense(a.cols, a.cols)
	for k := 0; k < a.rows; k++ {
		row := a.rawRow(k)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			orow := out.rawRow(i)
			for j := i; j < a.cols; j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	// Mirror the upper triangle into the lower.
	for i := 0; i < a.cols; i++ {
		for j := 0; j < i; j++ {
			out.data[i*a.cols+j] = out.data[j*a.cols+i]
		}
	}
	return out
}

// EqualApprox reports whether a and b have the same shape and all elements
// within tol of each other.
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
