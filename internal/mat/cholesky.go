package mat

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L*Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorizeCholesky computes the Cholesky factorization of the symmetric
// positive definite matrix a. Only the lower triangle of a is read.
// It returns ErrNotSPD if a pivot is non-positive.
func FactorizeCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: FactorizeCholesky of non-square %dx%d matrix", a.rows, a.cols))
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64
		lrowJ := l.rawRow(j)
		for k := 0; k < j; k++ {
			d += lrowJ[k] * lrowJ[k]
		}
		d = a.data[j*n+j] - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		diag := math.Sqrt(d)
		lrowJ[j] = diag
		for i := j + 1; i < n; i++ {
			lrowI := l.rawRow(i)
			var s float64
			for k := 0; k < j; k++ {
				s += lrowI[k] * lrowJ[k]
			}
			lrowI[j] = (a.data[i*n+j] - s) / diag
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// Solve solves A*x = b using the factorization: L*y = b, then Lᵀ*x = y.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky.Solve with vec(%d) for %dx%d system", len(b), n, n))
	}
	x := make([]float64, n)
	copy(x, b)
	l := c.l
	// Forward substitution: L*y = b.
	for i := 0; i < n; i++ {
		row := l.rawRow(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	// Back substitution: Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += l.data[j*n+i] * x[j]
		}
		x[i] = (x[i] - s) / l.data[i*n+i]
	}
	return x
}

// SolveMat solves A*X = B column by column.
func (c *Cholesky) SolveMat(b *Dense) *Dense {
	n := c.l.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: Cholesky.SolveMat with %dx%d rhs for %dx%d system", b.rows, b.cols, n, n))
	}
	out := NewDense(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x := c.Solve(col)
		for i := 0; i < n; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out
}

// Det returns the determinant of the factorized matrix.
func (c *Cholesky) Det() float64 {
	n := c.l.rows
	det := 1.0
	for i := 0; i < n; i++ {
		d := c.l.data[i*n+i]
		det *= d * d
	}
	return det
}

// SolveSPD solves the symmetric positive definite system a*x = b via
// Cholesky, falling back to LU if a is not numerically SPD.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	ch, err := FactorizeCholesky(a)
	if err == nil {
		return ch.Solve(b), nil
	}
	return Solve(a, b)
}
