package mat

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting: P*A = L*U, where L is
// unit lower triangular and U is upper triangular, stored packed in lu.
type LU struct {
	lu    *Dense
	pivot []int // row i of the factorization came from row pivot[i] of A
	sign  int   // +1 or -1, parity of the permutation (for Det)
	ok    bool
}

// FactorizeLU computes the LU factorization of the square matrix a.
// It returns ErrSingular if a pivot is exactly zero; near-singular systems
// succeed but produce large solution errors (check Cond if that matters).
func FactorizeLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: FactorizeLU of non-square %dx%d matrix", a.rows, a.cols))
	}
	n := a.rows
	f := &LU{lu: a.Clone(), pivot: make([]int, n), sign: 1}
	lu := f.lu
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxAbs := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rowK, rowP := lu.rawRow(k), lu.rawRow(p)
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.pivot[k], f.pivot[p] = f.pivot[p], f.pivot[k]
			f.sign = -f.sign
		}
		pivotVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivotVal
			lu.data[i*n+k] = m
			if m == 0 {
				continue
			}
			rowI, rowK := lu.rawRow(i), lu.rawRow(k)
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	f.ok = true
	return f, nil
}

// Solve solves A*x = b for x using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: LU.Solve with vec(%d) for %dx%d system", len(b), n, n))
	}
	x := make([]float64, n)
	// Apply permutation: x = P*b.
	for i, p := range f.pivot {
		x[i] = b[p]
	}
	lu := f.lu
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := lu.rawRow(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := lu.rawRow(i)
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return x
}

// SolveMat solves A*X = B column by column.
func (f *LU) SolveMat(b *Dense) *Dense {
	n := f.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: LU.SolveMat with %dx%d rhs for %dx%d system", b.rows, b.cols, n, n))
	}
	out := NewDense(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x := f.Solve(col)
		for i := 0; i < n; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns A⁻¹ computed from the factorization.
func (f *LU) Inverse() *Dense {
	return f.SolveMat(Identity(f.lu.rows))
}

// Solve solves the square linear system a*x = b.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns the inverse of the square matrix a.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}

// Det returns the determinant of the square matrix a. A singular matrix
// has determinant 0 (no error is returned in that case).
func Det(a *Dense) float64 {
	f, err := FactorizeLU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Cond1 returns the 1-norm condition number estimate ‖A‖₁·‖A⁻¹‖₁, or +Inf
// if a is singular. Intended for diagnostics on the small systems this
// package targets; it forms the inverse explicitly.
func Cond1(a *Dense) float64 {
	inv, err := Inverse(a)
	if err != nil {
		return math.Inf(1)
	}
	return Norm1(a) * Norm1(inv)
}
