package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDensePanicsOnBadDims(t *testing.T) {
	tests := []struct {
		name       string
		rows, cols int
	}{
		{"zero rows", 0, 3},
		{"zero cols", 3, 0},
		{"negative", -1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDense(%d,%d) did not panic", tt.rows, tt.cols)
				}
			}()
			NewDense(tt.rows, tt.cols)
		})
	}
}

func TestNewDenseDataChecksLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDenseData with wrong length did not panic")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestNewDenseDataCopies(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	m := NewDenseData(2, 2, src)
	src[0] = 99
	if got := m.At(0, 0); got != 1 {
		t.Errorf("NewDenseData aliased input: At(0,0) = %v, want 1", got)
	}
}

func TestAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2)
	tests := []struct {
		name string
		i, j int
	}{
		{"row too big", 2, 0},
		{"col too big", 0, 2},
		{"negative row", -1, 0},
		{"negative col", 0, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", tt.i, tt.j)
				}
			}()
			m.At(tt.i, tt.j)
		})
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("Identity(3).At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	want := NewDenseData(3, 3, []float64{1, 0, 0, 0, 2, 0, 0, 0, 3})
	if !EqualApprox(d, want, 0) {
		t.Errorf("Diag = \n%v want \n%v", d, want)
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row returned an aliasing slice")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col returned an aliasing slice")
	}
	if got, want := m.Col(1), []float64{2, 4}; got[0] != 99 && (got[0] != want[0] || got[1] != want[1]) {
		t.Errorf("Col(1) = %v, want %v", got, want)
	}
}

func TestSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{4, 5, 6})
	if got := m.Row(1); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Errorf("Row(1) after SetRow = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	want := NewDenseData(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if got := m.T(); !EqualApprox(got, want, 0) {
		t.Errorf("T() = \n%v want \n%v", got, want)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	if got, want := Add(a, b), NewDenseData(2, 2, []float64{6, 8, 10, 12}); !EqualApprox(got, want, 0) {
		t.Errorf("Add = \n%v", got)
	}
	if got, want := Sub(b, a), NewDenseData(2, 2, []float64{4, 4, 4, 4}); !EqualApprox(got, want, 0) {
		t.Errorf("Sub = \n%v", got)
	}
	if got, want := Scale(2, a), NewDenseData(2, 2, []float64{2, 4, 6, 8}); !EqualApprox(got, want, 0) {
		t.Errorf("Scale = \n%v", got)
	}
}

func TestMul(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if got := Mul(a, b); !EqualApprox(got, want, 1e-12) {
		t.Errorf("Mul = \n%v want \n%v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched shapes did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", got)
	}
}

func TestMulTVecMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 5, 3)
	x := randomVec(rng, 5)
	got := MulTVec(a, x)
	want := MulVec(a.T(), x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulTVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulATAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 6, 4)
	got := MulATA(a)
	want := Mul(a.T(), a)
	if !EqualApprox(got, want, 1e-10) {
		t.Errorf("MulATA = \n%v want \n%v", got, want)
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := NewDenseData(2, 2, []float64{1, 2, 2, 3})
	if !sym.IsSymmetric(0) {
		t.Error("IsSymmetric(sym) = false")
	}
	asym := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if asym.IsSymmetric(0) {
		t.Error("IsSymmetric(asym) = true")
	}
	rect := NewDense(2, 3)
	if rect.IsSymmetric(0) {
		t.Error("IsSymmetric(rect) = true")
	}
}

func TestEqualApproxShapeMismatch(t *testing.T) {
	if EqualApprox(NewDense(2, 2), NewDense(2, 3), 1) {
		t.Error("EqualApprox across shapes = true")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

// Property: (AᵀBᵀ) = (BA)ᵀ for random matrices.
func TestPropTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(rng, m, k)
		b := randomDense(rng, k, n)
		lhs := Mul(b.T(), a.T())
		rhs := Mul(a, b).T()
		return EqualApprox(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication is associative: (AB)C = A(BC).
func TestPropMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, l, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randomDense(r, m, k)
		b := randomDense(r, k, l)
		c := randomDense(r, l, n)
		lhs := Mul(Mul(a, b), c)
		rhs := Mul(a, Mul(b, c))
		return EqualApprox(lhs, rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: A*I = I*A = A.
func TestPropIdentityIsNeutral(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(r, m, n)
		return EqualApprox(Mul(a, Identity(n)), a, 1e-12) &&
			EqualApprox(Mul(Identity(m), a), a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringFormatting(t *testing.T) {
	m := NewDenseData(1, 2, []float64{1.5, -2})
	if got := m.String(); got != "[1.5 -2]\n" {
		t.Errorf("String() = %q", got)
	}
}

// --- helpers ---

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randomSPD returns a random symmetric positive definite matrix.
func randomSPD(rng *rand.Rand, n int) *Dense {
	a := randomDense(rng, n, n)
	spd := MulATA(a)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n)) // ensure well-conditioned
	}
	return spd
}
