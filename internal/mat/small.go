package mat

import "math"

// Fast paths for the tiny fixed-size systems that dominate GPS positioning:
// the normal-equation systems are 3×3 (direct linearization, unknowns
// x,y,z) or 4×4 (Newton–Raphson, unknowns x,y,z,clock). Solving them with
// unrolled Cramer/cofactor arithmetic avoids the factorization and
// bookkeeping overhead of the general LU path. This implements the paper's
// Section 6 extension 3 ("optimize the matrix operations in the context of
// our problem").

// Solve3 solves the 3×3 system a*x = b with a given row-major.
// It returns ErrSingular when |det a| is zero.
func Solve3(a [9]float64, b [3]float64) ([3]float64, error) {
	// Cofactors of the first row.
	c00 := a[4]*a[8] - a[5]*a[7]
	c01 := a[5]*a[6] - a[3]*a[8]
	c02 := a[3]*a[7] - a[4]*a[6]
	det := a[0]*c00 + a[1]*c01 + a[2]*c02
	if det == 0 || math.IsNaN(det) {
		return [3]float64{}, ErrSingular
	}
	inv := 1 / det
	var x [3]float64
	x[0] = inv * (b[0]*c00 + b[1]*(a[2]*a[7]-a[1]*a[8]) + b[2]*(a[1]*a[5]-a[2]*a[4]))
	x[1] = inv * (b[0]*c01 + b[1]*(a[0]*a[8]-a[2]*a[6]) + b[2]*(a[2]*a[3]-a[0]*a[5]))
	x[2] = inv * (b[0]*c02 + b[1]*(a[1]*a[6]-a[0]*a[7]) + b[2]*(a[0]*a[4]-a[1]*a[3]))
	return x, nil
}

// Solve4 solves the 4×4 system a*x = b with a given row-major, using
// Gaussian elimination with partial pivoting unrolled over fixed storage.
// It returns ErrSingular when a pivot vanishes.
func Solve4(a [16]float64, b [4]float64) ([4]float64, error) {
	// Augment in fixed storage.
	var m [4][5]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = a[i*4+j]
		}
		m[i][4] = b[i]
	}
	for k := 0; k < 4; k++ {
		p := k
		maxAbs := math.Abs(m[k][k])
		for i := k + 1; i < 4; i++ {
			if v := math.Abs(m[i][k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return [4]float64{}, ErrSingular
		}
		if p != k {
			m[k], m[p] = m[p], m[k]
		}
		pivotInv := 1 / m[k][k]
		for i := k + 1; i < 4; i++ {
			f := m[i][k] * pivotInv
			if f == 0 {
				continue
			}
			for j := k; j < 5; j++ {
				m[i][j] -= f * m[k][j]
			}
		}
	}
	var x [4]float64
	for i := 3; i >= 0; i-- {
		s := m[i][4]
		for j := i + 1; j < 4; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// Inv4 inverts the 4×4 matrix a (row-major) with Gauss–Jordan elimination
// over fixed storage — no heap allocation, for hot paths that need the
// full inverse (DOP covariance diagonals). It returns ErrSingular when a
// pivot vanishes or the input carries NaNs.
func Inv4(a [16]float64) ([16]float64, error) {
	var m [4][8]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = a[i*4+j]
		}
		m[i][4+i] = 1
	}
	for k := 0; k < 4; k++ {
		p := k
		maxAbs := math.Abs(m[k][k])
		for i := k + 1; i < 4; i++ {
			if v := math.Abs(m[i][k]); v > maxAbs {
				maxAbs, p = v, i
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return [16]float64{}, ErrSingular
		}
		if p != k {
			m[k], m[p] = m[p], m[k]
		}
		inv := 1 / m[k][k]
		for j := 0; j < 8; j++ {
			m[k][j] *= inv
		}
		for i := 0; i < 4; i++ {
			if i == k {
				continue
			}
			f := m[i][k]
			if f == 0 {
				continue
			}
			for j := 0; j < 8; j++ {
				m[i][j] -= f * m[k][j]
			}
		}
	}
	var out [16]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out[i*4+j] = m[i][4+j]
		}
	}
	return out, nil
}

// NormalEq3 forms the 3×3 normal-equation system (AᵀA, Aᵀb) for an m×3
// design matrix given as row slices, without allocating Dense matrices.
func NormalEq3(rows [][3]float64, b []float64) (ata [9]float64, atb [3]float64) {
	for k, r := range rows {
		bk := b[k]
		ata[0] += r[0] * r[0]
		ata[1] += r[0] * r[1]
		ata[2] += r[0] * r[2]
		ata[4] += r[1] * r[1]
		ata[5] += r[1] * r[2]
		ata[8] += r[2] * r[2]
		atb[0] += r[0] * bk
		atb[1] += r[1] * bk
		atb[2] += r[2] * bk
	}
	ata[3], ata[6], ata[7] = ata[1], ata[2], ata[5]
	return ata, atb
}

// NormalEq4 forms the 4×4 normal-equation system (AᵀA, Aᵀb) for an m×4
// design matrix given as row slices.
func NormalEq4(rows [][4]float64, b []float64) (ata [16]float64, atb [4]float64) {
	for k, r := range rows {
		bk := b[k]
		for i := 0; i < 4; i++ {
			ri := r[i]
			if ri == 0 {
				continue
			}
			for j := i; j < 4; j++ {
				ata[i*4+j] += ri * r[j]
			}
			atb[i] += ri * bk
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < i; j++ {
			ata[i*4+j] = ata[j*4+i]
		}
	}
	return ata, atb
}
