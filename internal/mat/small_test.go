package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolve3MatchesLU(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a [9]float64
		var b [3]float64
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x3, err3 := Solve3(a, b)
		xg, errg := Solve(NewDenseData(3, 3, a[:]), b[:])
		if err3 != nil || errg != nil {
			return err3 != nil == (errg != nil) || true // near-singular draws may disagree; accept
		}
		return VecNorm2(VecSub(x3[:], xg)) < 1e-6*(1+VecNorm2(xg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolve3Singular(t *testing.T) {
	a := [9]float64{1, 2, 3, 2, 4, 6, 1, 1, 1}
	if _, err := Solve3(a, [3]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("error = %v, want ErrSingular", err)
	}
}

func TestSolve4MatchesLU(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a [16]float64
		var b [4]float64
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x4, err4 := Solve4(a, b)
		xg, errg := Solve(NewDenseData(4, 4, a[:]), b[:])
		if err4 != nil || errg != nil {
			return true
		}
		return VecNorm2(VecSub(x4[:], xg)) < 1e-6*(1+VecNorm2(xg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolve4Singular(t *testing.T) {
	var a [16]float64 // zero matrix
	if _, err := Solve4(a, [4]float64{1, 0, 0, 0}); !errors.Is(err, ErrSingular) {
		t.Errorf("error = %v, want ErrSingular", err)
	}
}

func TestSolve4Identity(t *testing.T) {
	a := [16]float64{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
	b := [4]float64{4, 3, 2, 1}
	x, err := Solve4(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x != b {
		t.Errorf("x = %v, want %v", x, b)
	}
}

func TestNormalEq3MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := 7
	rows := make([][3]float64, m)
	b := make([]float64, m)
	a := NewDense(m, 3)
	for i := 0; i < m; i++ {
		for j := 0; j < 3; j++ {
			rows[i][j] = rng.NormFloat64()
			a.Set(i, j, rows[i][j])
		}
		b[i] = rng.NormFloat64()
	}
	ata, atb := NormalEq3(rows, b)
	wantATA := MulATA(a)
	wantATb := MulTVec(a, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(ata[i*3+j]-wantATA.At(i, j)) > 1e-10 {
				t.Errorf("ata[%d,%d] = %v, want %v", i, j, ata[i*3+j], wantATA.At(i, j))
			}
		}
		if math.Abs(atb[i]-wantATb[i]) > 1e-10 {
			t.Errorf("atb[%d] = %v, want %v", i, atb[i], wantATb[i])
		}
	}
}

func TestNormalEq4MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := 9
	rows := make([][4]float64, m)
	b := make([]float64, m)
	a := NewDense(m, 4)
	for i := 0; i < m; i++ {
		for j := 0; j < 4; j++ {
			rows[i][j] = rng.NormFloat64()
			a.Set(i, j, rows[i][j])
		}
		b[i] = rng.NormFloat64()
	}
	ata, atb := NormalEq4(rows, b)
	wantATA := MulATA(a)
	wantATb := MulTVec(a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(ata[i*4+j]-wantATA.At(i, j)) > 1e-10 {
				t.Errorf("ata[%d,%d] = %v, want %v", i, j, ata[i*4+j], wantATA.At(i, j))
			}
		}
		if math.Abs(atb[i]-wantATb[i]) > 1e-10 {
			t.Errorf("atb[%d] = %v, want %v", i, atb[i], wantATb[i])
		}
	}
}

func TestVecHelpers(t *testing.T) {
	if got := VecDot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("VecDot = %v, want 32", got)
	}
	if got := VecNorm2([]float64{3, 4}); got != 5 {
		t.Errorf("VecNorm2 = %v, want 5", got)
	}
	if got := VecNormInf([]float64{1, -7, 3}); got != 7 {
		t.Errorf("VecNormInf = %v, want 7", got)
	}
	if got := VecAdd([]float64{1, 2}, []float64{3, 4}); got[0] != 4 || got[1] != 6 {
		t.Errorf("VecAdd = %v, want [4 6]", got)
	}
}

func TestNorms(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, -2, 3, -4})
	if got := Norm1(a); got != 6 {
		t.Errorf("Norm1 = %v, want 6", got)
	}
	if got := NormInf(a); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got, want := NormFrob(a), math.Sqrt(30); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormFrob = %v, want %v", got, want)
	}
}
