package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnownFactor(t *testing.T) {
	// A = L*Lᵀ with L = [[2,0],[1,3]] -> A = [[4,2],[2,10]].
	a := NewDenseData(2, 2, []float64{4, 2, 2, 10})
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatalf("FactorizeCholesky: %v", err)
	}
	want := NewDenseData(2, 2, []float64{2, 0, 1, 3})
	if got := c.L(); !EqualApprox(got, want, 1e-12) {
		t.Errorf("L = \n%v want \n%v", got, want)
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	tests := []struct {
		name string
		a    *Dense
	}{
		{"negative diagonal", NewDenseData(2, 2, []float64{-1, 0, 0, 1})},
		{"indefinite", NewDenseData(2, 2, []float64{1, 2, 2, 1})},
		{"zero matrix", NewDense(3, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FactorizeCholesky(tt.a); !errors.Is(err, ErrNotSPD) {
				t.Errorf("error = %v, want ErrNotSPD", err)
			}
		})
	}
}

func TestCholeskyNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FactorizeCholesky on non-square did not panic")
		}
	}()
	_, _ = FactorizeCholesky(NewDense(2, 3))
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 10; n++ {
		a := randomSPD(rng, n)
		b := randomVec(rng, n)
		c, err := FactorizeCholesky(a)
		if err != nil {
			t.Fatalf("FactorizeCholesky(n=%d): %v", n, err)
		}
		got := c.Solve(b)
		want, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if VecNorm2(VecSub(got, want)) > 1e-8*(1+VecNorm2(want)) {
			t.Errorf("n=%d Cholesky solve %v, LU solve %v", n, got, want)
		}
	}
}

func TestCholeskyDet(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSPD(rng, 5)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := Det(a)
	if got := c.Det(); math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Errorf("Cholesky.Det = %v, LU Det = %v", got, want)
	}
}

func TestCholeskySolveMat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 4)
	b := randomDense(rng, 4, 2)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := c.SolveMat(b)
	if got := Mul(a, x); !EqualApprox(got, b, 1e-8) {
		t.Errorf("A*X != B:\n%v", got)
	}
}

// Property: L*Lᵀ reconstructs A for random SPD matrices.
func TestPropCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomSPD(r, n)
		c, err := FactorizeCholesky(a)
		if err != nil {
			return false
		}
		l := c.L()
		return EqualApprox(Mul(l, l.T()), a, 1e-8*NormFrob(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveSPDFallsBackToLU(t *testing.T) {
	// Symmetric but indefinite: Cholesky fails, LU succeeds.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	x, err := SolveSPD(a, []float64{3, 4})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [4 3]", x)
	}
}
