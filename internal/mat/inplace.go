package mat

import "fmt"

// In-place variants for hot loops (the tracking EKF runs one of these per
// measurement epoch). All require dst to be pre-shaped and, for MulInto,
// not to alias the operands.

// MulInto computes dst = a·b, reusing dst's storage. dst must be
// a.rows×b.cols and must not share storage with a or b.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto dst %dx%d for %dx%d product", dst.rows, dst.cols, a.rows, b.cols))
	}
	if dst == a || dst == b {
		panic("mat: MulInto dst aliases an operand")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.rawRow(i)
		orow := dst.rawRow(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.rawRow(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// AddInto computes dst = a + b elementwise; dst may alias a or b.
func AddInto(dst, a, b *Dense) *Dense {
	checkSameShape("AddInto", a, b)
	checkSameShape("AddInto dst", dst, a)
	for i, v := range a.data {
		dst.data[i] = v + b.data[i]
	}
	return dst
}

// SubInto computes dst = a − b elementwise; dst may alias a or b.
func SubInto(dst, a, b *Dense) *Dense {
	checkSameShape("SubInto", a, b)
	checkSameShape("SubInto dst", dst, a)
	for i, v := range a.data {
		dst.data[i] = v - b.data[i]
	}
	return dst
}

// ScaleInto computes dst = s·a; dst may alias a.
func ScaleInto(dst *Dense, s float64, a *Dense) *Dense {
	checkSameShape("ScaleInto", dst, a)
	for i, v := range a.data {
		dst.data[i] = s * v
	}
	return dst
}

// TransposeInto computes dst = aᵀ. dst must be a.cols×a.rows and must not
// alias a.
func TransposeInto(dst, a *Dense) *Dense {
	if dst.rows != a.cols || dst.cols != a.rows {
		panic(fmt.Sprintf("mat: TransposeInto dst %dx%d for %dx%d input", dst.rows, dst.cols, a.rows, a.cols))
	}
	if dst == a {
		panic("mat: TransposeInto dst aliases input")
	}
	for i := 0; i < a.rows; i++ {
		row := a.rawRow(i)
		for j, v := range row {
			dst.data[j*dst.cols+i] = v
		}
	}
	return dst
}

// CopyInto copies a into dst (same shape).
func CopyInto(dst, a *Dense) *Dense {
	checkSameShape("CopyInto", dst, a)
	copy(dst.data, a.data)
	return dst
}
