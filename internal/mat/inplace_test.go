package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the Into variants match their allocating counterparts.
func TestPropInPlaceMatchesAllocating(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(r, m, k)
		b := randomDense(r, k, n)
		mulDst := NewDense(m, n)
		if !EqualApprox(MulInto(mulDst, a, b), Mul(a, b), 1e-12) {
			return false
		}
		c := randomDense(r, m, k)
		addDst := NewDense(m, k)
		if !EqualApprox(AddInto(addDst, a, c), Add(a, c), 0) {
			return false
		}
		subDst := NewDense(m, k)
		if !EqualApprox(SubInto(subDst, a, c), Sub(a, c), 0) {
			return false
		}
		sclDst := NewDense(m, k)
		if !EqualApprox(ScaleInto(sclDst, 2.5, a), Scale(2.5, a), 0) {
			return false
		}
		tDst := NewDense(k, m)
		if !EqualApprox(TransposeInto(tDst, a), a.T(), 0) {
			return false
		}
		cpDst := NewDense(m, k)
		return EqualApprox(CopyInto(cpDst, a), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInPlaceAliasedAddSub(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{10, 20, 30, 40})
	AddInto(a, a, b) // a += b
	want := NewDenseData(2, 2, []float64{11, 22, 33, 44})
	if !EqualApprox(a, want, 0) {
		t.Errorf("aliased AddInto = \n%v", a)
	}
	SubInto(a, a, b)
	want = NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if !EqualApprox(a, want, 0) {
		t.Errorf("aliased SubInto = \n%v", a)
	}
}

func TestInPlacePanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	tests := []struct {
		name string
		fn   func()
	}{
		{"MulInto wrong dst", func() { MulInto(NewDense(3, 3), a, b) }},
		{"MulInto alias", func() { sq := NewDense(2, 2); _ = sq; MulInto(b, b, b) }},
		{"AddInto shape", func() { AddInto(NewDense(2, 2), a, a) }},
		{"TransposeInto wrong dst", func() { TransposeInto(NewDense(2, 3), a) }},
		{"CopyInto shape", func() { CopyInto(NewDense(1, 1), a) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestMulIntoOverwritesPriorContents(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 0, 0, 1})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	dst := NewDenseData(2, 2, []float64{99, 99, 99, 99})
	MulInto(dst, a, b)
	if !EqualApprox(dst, b, 0) {
		t.Errorf("MulInto left stale data: \n%v", dst)
	}
}
