package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("Solve(singular) error = %v, want ErrSingular", err)
	}
}

func TestLUNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FactorizeLU on non-square did not panic")
		}
	}()
	_, _ = FactorizeLU(NewDense(2, 3))
}

func TestLUDet(t *testing.T) {
	tests := []struct {
		name string
		a    *Dense
		want float64
	}{
		{"identity", Identity(3), 1},
		{"diag", Diag([]float64{2, 3, 4}), 24},
		{"swap rows of identity", NewDenseData(2, 2, []float64{0, 1, 1, 0}), -1},
		{"2x2", NewDenseData(2, 2, []float64{1, 2, 3, 4}), -2},
		{"singular", NewDenseData(2, 2, []float64{1, 1, 1, 1}), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Det(tt.a); math.Abs(got-tt.want) > 1e-10 {
				t.Errorf("Det = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		a := randomSPD(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("Inverse(n=%d): %v", n, err)
		}
		if got := Mul(a, inv); !EqualApprox(got, Identity(n), 1e-8) {
			t.Errorf("A*A⁻¹ != I for n=%d:\n%v", n, got)
		}
	}
}

func TestLUSolveMatMatchesColumnSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomSPD(rng, 4)
	b := randomDense(rng, 4, 3)
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveMat(b)
	if got := Mul(a, x); !EqualApprox(got, b, 1e-8) {
		t.Errorf("A*X != B:\n%v", got)
	}
}

// Property: for random well-conditioned A and x, Solve(A, A*x) ≈ x.
func TestPropLURoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		a := randomSPD(r, n)
		x := randomVec(r, n)
		b := MulVec(a, x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return VecNorm2(VecSub(got, x)) < 1e-7*(1+VecNorm2(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: det(A*B) = det(A)*det(B).
func TestPropDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		lhs := Det(Mul(a, b))
		rhs := Det(a) * Det(b)
		scale := math.Max(1, math.Abs(rhs))
		return math.Abs(lhs-rhs) < 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCond1(t *testing.T) {
	if got := Cond1(Identity(4)); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cond1(I) = %v, want 1", got)
	}
	if got := Cond1(NewDenseData(2, 2, []float64{1, 1, 1, 1})); !math.IsInf(got, 1) {
		t.Errorf("Cond1(singular) = %v, want +Inf", got)
	}
	// An ill-conditioned matrix should have a big condition number.
	ill := NewDenseData(2, 2, []float64{1, 1, 1, 1 + 1e-10})
	if got := Cond1(ill); got < 1e9 {
		t.Errorf("Cond1(ill) = %v, want >= 1e9", got)
	}
}

func TestLUSolveDimensionPanics(t *testing.T) {
	f, err := FactorizeLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LU.Solve with wrong-length b did not panic")
		}
	}()
	f.Solve([]float64{1, 2})
}
