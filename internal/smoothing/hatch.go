// Package smoothing implements the Hatch filter: carrier-smoothed
// pseudo-ranges. The carrier phase tracks range changes with millimeter
// noise but an unknown constant offset; the Hatch filter uses it to
// time-average the meter-level code noise away:
//
//	sm_k = (1/n)·code_k + ((n−1)/n)·(sm_{k−1} + (carrier_k − carrier_{k−1}))
//
// with n capped at the window length. Capping matters: the ionospheric
// term enters code and carrier with opposite signs, so an unbounded
// window diverges at twice the ionospheric rate. Every positioning
// algorithm in this repository can run on smoothed epochs unchanged —
// smoothing is a measurement-layer upgrade, exactly the kind of
// "reasonable accuracy" improvement the paper's direct methods leave on
// the table.
package smoothing

import (
	"gpsdl/internal/scenario"
)

// Hatch carrier-smooths epochs satellite by satellite. Feed epochs in
// time order; a satellite that disappears restarts its filter on return.
// Not safe for concurrent use.
type Hatch struct {
	// Window caps the averaging depth n (epochs). Typical code-minus-
	// carrier divergence allows 100 s windows at 1 Hz; 0 means 100.
	Window int

	state map[int]*hatchState
}

// hatchState is the per-satellite filter memory.
type hatchState struct {
	smoothed    float64
	prevCarrier float64
	prevT       float64
	n           int
}

// NewHatch returns a filter with the given window (0 = 100 epochs).
func NewHatch(window int) *Hatch {
	if window <= 0 {
		window = 100
	}
	return &Hatch{Window: window, state: make(map[int]*hatchState)}
}

// Smooth returns a copy of the epoch with carrier-smoothed pseudo-ranges.
// Satellites without carrier data (Carrier == 0) pass through unsmoothed.
func (h *Hatch) Smooth(epoch scenario.Epoch) scenario.Epoch {
	out := scenario.Epoch{T: epoch.T, Obs: make([]scenario.SatObs, len(epoch.Obs))}
	copy(out.Obs, epoch.Obs)
	for i := range out.Obs {
		o := &out.Obs[i]
		if o.Carrier == 0 {
			h.reset(o.PRN)
			continue
		}
		st, ok := h.state[o.PRN]
		if !ok || epoch.T <= st.prevT || epoch.T-st.prevT > 30 {
			// New pass (or a gap long enough to risk a cycle slip):
			// restart from the raw code measurement.
			h.state[o.PRN] = &hatchState{
				smoothed:    o.Pseudorange,
				prevCarrier: o.Carrier,
				prevT:       epoch.T,
				n:           1,
			}
			continue
		}
		st.n++
		if st.n > h.Window {
			st.n = h.Window
		}
		fn := float64(st.n)
		predicted := st.smoothed + (o.Carrier - st.prevCarrier)
		st.smoothed = o.Pseudorange/fn + predicted*(fn-1)/fn
		st.prevCarrier = o.Carrier
		st.prevT = epoch.T
		o.Pseudorange = st.smoothed
	}
	return out
}

// reset drops a satellite's filter state.
func (h *Hatch) reset(prn int) {
	delete(h.state, prn)
}

// Depth returns the current averaging depth for a satellite (0 when the
// filter holds no state for it) — diagnostics for tests and examples.
func (h *Hatch) Depth(prn int) int {
	if st, ok := h.state[prn]; ok {
		return st.n
	}
	return 0
}
