package smoothing

import (
	"math"
	"testing"

	"gpsdl/internal/core"
	"gpsdl/internal/scenario"
)

func smoothingGenerator(t *testing.T) *scenario.Generator {
	t.Helper()
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	return scenario.NewGenerator(st, scenario.DefaultConfig(77))
}

// residualStd measures the std of (pseudorange − geometric range − mean)
// per epoch sequence, a direct read on measurement noise.
func residualStd(t *testing.T, g *scenario.Generator, h *Hatch, n int) float64 {
	t.Helper()
	st := g.Station()
	type key struct{ prn int }
	sums := map[key][]float64{}
	for i := 0; i < n; i++ {
		epoch, err := g.EpochAt(float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if h != nil {
			epoch = h.Smooth(epoch)
		}
		for _, o := range epoch.Obs {
			resid := o.Pseudorange - st.Pos.DistanceTo(o.Pos)
			sums[key{o.PRN}] = append(sums[key{o.PRN}], resid)
		}
	}
	// Remove each satellite's mean (clock bias + pass biases), pool the
	// centered residuals.
	var pooled []float64
	for _, vals := range sums {
		if len(vals) < 30 {
			continue
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		// Skip the filter's convergence transient.
		for _, v := range vals[20:] {
			pooled = append(pooled, v-mean)
		}
	}
	var ss float64
	for _, v := range pooled {
		ss += v * v
	}
	return math.Sqrt(ss / float64(len(pooled)))
}

func TestHatchReducesCodeNoise(t *testing.T) {
	raw := residualStd(t, smoothingGenerator(t), nil, 200)
	smoothed := residualStd(t, smoothingGenerator(t), NewHatch(100), 200)
	t.Logf("residual std: raw %.3f m, smoothed %.3f m", raw, smoothed)
	if smoothed > raw/2 {
		t.Errorf("Hatch filter reduced noise only from %.3f to %.3f m", raw, smoothed)
	}
}

func TestHatchImprovesPositioning(t *testing.T) {
	g := smoothingGenerator(t)
	st := g.Station()
	h := NewHatch(100)
	var nrRaw, nrSmooth core.NRSolver
	var sumRaw, sumSmooth float64
	var n int
	for i := 0; i < 400; i++ {
		tt := float64(i)
		epoch, err := g.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		smoothed := h.Smooth(epoch)
		if i < 120 {
			continue // filter convergence
		}
		rawSol, err1 := nrRaw.Solve(tt, adapt(epoch))
		smSol, err2 := nrSmooth.Solve(tt, adapt(smoothed))
		if err1 != nil || err2 != nil {
			continue
		}
		sumRaw += rawSol.Pos.DistanceTo(st.Pos)
		sumSmooth += smSol.Pos.DistanceTo(st.Pos)
		n++
	}
	meanRaw, meanSmooth := sumRaw/float64(n), sumSmooth/float64(n)
	t.Logf("NR mean error over %d epochs: raw %.3f m, smoothed %.3f m", n, meanRaw, meanSmooth)
	if meanSmooth > meanRaw*0.75 {
		t.Errorf("smoothing improved NR only from %.3f to %.3f m", meanRaw, meanSmooth)
	}
}

func TestHatchRestartsAfterGap(t *testing.T) {
	g := smoothingGenerator(t)
	h := NewHatch(100)
	e0, err := g.EpochAt(0)
	if err != nil {
		t.Fatal(err)
	}
	h.Smooth(e0)
	prn := e0.Obs[0].PRN
	if h.Depth(prn) != 1 {
		t.Fatalf("depth after first epoch = %d", h.Depth(prn))
	}
	e1, err := g.EpochAt(1)
	if err != nil {
		t.Fatal(err)
	}
	h.Smooth(e1)
	if h.Depth(prn) != 2 {
		t.Fatalf("depth after second epoch = %d", h.Depth(prn))
	}
	// A 60 s gap exceeds the cycle-slip guard: depth restarts.
	e2, err := g.EpochAt(61)
	if err != nil {
		t.Fatal(err)
	}
	h.Smooth(e2)
	if h.Depth(prn) != 1 {
		t.Errorf("depth after gap = %d, want 1", h.Depth(prn))
	}
}

func TestHatchWindowCapsDepth(t *testing.T) {
	g := smoothingGenerator(t)
	h := NewHatch(10)
	var prn int
	for i := 0; i < 50; i++ {
		e, err := g.EpochAt(float64(i))
		if err != nil {
			t.Fatal(err)
		}
		h.Smooth(e)
		prn = e.Obs[0].PRN
	}
	if got := h.Depth(prn); got != 10 {
		t.Errorf("depth = %d, want capped at 10", got)
	}
}

func TestHatchPassesThroughMissingCarrier(t *testing.T) {
	g := smoothingGenerator(t)
	e, err := g.EpochAt(0)
	if err != nil {
		t.Fatal(err)
	}
	e.Obs[0].Carrier = 0
	h := NewHatch(100)
	out := h.Smooth(e)
	if out.Obs[0].Pseudorange != e.Obs[0].Pseudorange {
		t.Error("carrier-less observation was modified")
	}
	if h.Depth(e.Obs[0].PRN) != 0 {
		t.Error("carrier-less observation left filter state")
	}
}

func TestHatchDoesNotMutateInput(t *testing.T) {
	g := smoothingGenerator(t)
	h := NewHatch(100)
	e0, _ := g.EpochAt(0)
	h.Smooth(e0)
	e1, err := g.EpochAt(1)
	if err != nil {
		t.Fatal(err)
	}
	before := e1.Obs[0].Pseudorange
	h.Smooth(e1)
	if e1.Obs[0].Pseudorange != before {
		t.Error("Smooth mutated its input epoch")
	}
}

func adapt(e scenario.Epoch) []core.Observation {
	obs := make([]core.Observation, 0, len(e.Obs))
	for _, o := range e.Obs {
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	return obs
}
