package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func fixSample(epoch uint64, rms float64) Sample {
	return Sample{
		Epoch: epoch, FixOK: true,
		RMS: rms, RMSValid: true,
		Chi2Pass: rms < 10, Chi2Valid: true,
		PDOP: 2.5, HDOP: 1.2, DOPValid: true,
		ClockInnov: rms / 10, ClockValid: true,
	}
}

func TestWindowBasicAggregates(t *testing.T) {
	w := NewWindow(10)
	for e := uint64(0); e < 5; e++ {
		w.Observe(fixSample(e, float64(e+1)))
	}
	w.Observe(Sample{Epoch: 5}) // no-fix epoch
	s := w.Snapshot()
	if s.Count != 6 || s.Fixes != 5 {
		t.Fatalf("count=%d fixes=%d, want 6/5", s.Count, s.Fixes)
	}
	if s.Chi2Checked != 5 || s.Chi2Passed != 5 {
		t.Errorf("chi2 %d/%d, want 5/5", s.Chi2Passed, s.Chi2Checked)
	}
	if s.RMSCount != 5 || math.Abs(s.RMSSum-15) > 1e-12 {
		t.Errorf("rms count=%d sum=%g, want 5/15", s.RMSCount, s.RMSSum)
	}
	d := s.Digest()
	if math.Abs(float64(d.Availability)-5.0/6.0) > 1e-12 {
		t.Errorf("availability = %g", d.Availability)
	}
	if math.Abs(float64(d.RMSMean)-3) > 1e-12 {
		t.Errorf("rms mean = %g, want 3", d.RMSMean)
	}
	if d.Chi2PassRate != 1 {
		t.Errorf("chi2 pass rate = %g, want 1", d.Chi2PassRate)
	}
	if math.Abs(float64(d.ClockMax)-0.5) > 1e-12 {
		t.Errorf("clock max = %g, want 0.5", d.ClockMax)
	}
}

// Sliding eviction: after observing 2×size epochs the window must hold
// exactly the newest size, with aggregates matching a freshly-built
// window over the same tail — the subtract-on-evict bookkeeping cannot
// drift.
func TestWindowEviction(t *testing.T) {
	const size = 16
	w := NewWindow(size)
	for e := uint64(0); e < 2*size; e++ {
		w.Observe(fixSample(e, float64(e%7)+0.5))
	}
	fresh := NewWindow(size)
	for e := uint64(size); e < 2*size; e++ {
		fresh.Observe(fixSample(e, float64(e%7)+0.5))
	}
	a, b := w.Snapshot(), fresh.Snapshot()
	if a.Count != size {
		t.Fatalf("count = %d, want %d", a.Count, size)
	}
	if a != b {
		t.Errorf("evicted window diverged from fresh window:\n%+v\n%+v", a, b)
	}
}

func TestWindowObserveZeroAlloc(t *testing.T) {
	w := NewWindow(64)
	var e uint64
	allocs := testing.AllocsPerRun(1000, func() {
		w.Observe(fixSample(e, 2.5))
		e++
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f/op, want 0", allocs)
	}
	var snap Snapshot
	allocs = testing.AllocsPerRun(100, func() {
		w.SnapshotInto(&snap)
	})
	if allocs != 0 {
		t.Errorf("SnapshotInto allocates %.1f/op, want 0", allocs)
	}
}

// Merging per-session snapshots must equal one window fed the union of
// the streams (for the count fields; float sums merge exactly here
// because the values are dyadic rationals).
func TestSnapshotMerge(t *testing.T) {
	w1, w2 := NewWindow(32), NewWindow(32)
	for e := uint64(0); e < 20; e++ {
		w1.Observe(fixSample(e, 1.5))
		w2.Observe(fixSample(e, 4.0))
	}
	var merged Snapshot
	s1, s2 := w1.Snapshot(), w2.Snapshot()
	merged.Merge(&s1)
	merged.Merge(&s2)
	if merged.Count != 40 || merged.Fixes != 40 {
		t.Fatalf("merged count=%d fixes=%d, want 40/40", merged.Count, merged.Fixes)
	}
	if merged.RMSSum != 20*1.5+20*4.0 {
		t.Errorf("merged rms sum = %g", merged.RMSSum)
	}
	if merged.WindowSize != 32 {
		t.Errorf("merged window size = %d", merged.WindowSize)
	}
	if merged.ClockMax != 0.4 {
		t.Errorf("merged clock max = %g, want 0.4", merged.ClockMax)
	}
	d := merged.Digest()
	// 20 samples at 1.5 (bucket le=1.5), 20 at 4.0 (le=4): p50 must sit
	// at the le=1.5 edge, p99 within the le=4 bucket.
	if d.RMSP50 > 1.5+1e-9 {
		t.Errorf("merged p50 = %g, want ≤ 1.5", d.RMSP50)
	}
	if d.RMSP99 < 3 || d.RMSP99 > 4 {
		t.Errorf("merged p99 = %g, want in (3,4]", d.RMSP99)
	}
	// Merge must not disturb LastEpoch maximality.
	if merged.LastEpoch != 19 {
		t.Errorf("merged last epoch = %d", merged.LastEpoch)
	}
}

func TestDigestEmptyAndNaN(t *testing.T) {
	var s Snapshot
	d := s.Digest()
	if d.Availability != 0 || d.Chi2PassRate != 0 {
		t.Errorf("empty digest rates nonzero: %+v", d)
	}
	if !math.IsNaN(float64(d.RMSMean)) || !math.IsNaN(float64(d.RMSP99)) || !math.IsNaN(float64(d.PDOPMean)) || !math.IsNaN(float64(d.ClockMean)) {
		t.Errorf("empty digest means/quantiles must be NaN: %+v", d)
	}
	// NaN samples are dropped from the RMS/clock aggregates, not folded.
	w := NewWindow(4)
	w.Observe(Sample{Epoch: 0, FixOK: true, RMS: math.NaN(), RMSValid: true, ClockInnov: math.NaN(), ClockValid: true})
	snap := w.Snapshot()
	if snap.RMSCount != 0 || snap.ClockCount != 0 {
		t.Errorf("NaN sample entered aggregates: %+v", snap)
	}
	if snap.Count != 1 || snap.Fixes != 1 {
		t.Errorf("NaN sample must still count as an epoch: %+v", snap)
	}
}

func TestChainDepthClamp(t *testing.T) {
	w := NewWindow(8)
	w.Observe(Sample{Epoch: 0, FixOK: true, ChainIndex: -5})
	w.Observe(Sample{Epoch: 1, FixOK: true, ChainIndex: 3})
	w.Observe(Sample{Epoch: 2, FixOK: true, ChainIndex: 99})
	s := w.Snapshot()
	if s.Chain[0] != 1 || s.Chain[3] != 1 || s.Chain[MaxChainDepth-1] != 1 {
		t.Errorf("chain counts misclamped: %v", s.Chain)
	}
	d := s.Digest()
	if math.Abs(float64(d.DegradedRate)-2.0/3.0) > 1e-12 {
		t.Errorf("degraded rate = %g, want 2/3", d.DegradedRate)
	}
}

// Two windows fed the identical sample stream must produce
// byte-identical snapshots — the property the engine's determinism
// test leans on.
func TestWindowDeterminism(t *testing.T) {
	build := func() Snapshot {
		w := NewWindow(600)
		for e := uint64(0); e < 2000; e++ {
			s := fixSample(e, math.Sqrt(float64(e%13))+0.1)
			s.Chi2Pass = e%17 != 0
			s.Excluded = e%29 == 0
			s.ChainIndex = int(e % 3)
			if e%41 == 0 {
				s = Sample{Epoch: e}
			}
			w.Observe(s)
		}
		return w.Snapshot()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("identical streams produced different snapshots:\n%+v\n%+v", a, b)
	}
}

// Merge must behave as a commutative, associative fold over per-session
// evidence (for same-sized windows), and merging per-session snapshots
// must be indistinguishable from one window that observed the whole
// stream. Sample values are dyadic rationals (multiples of 1/64), so
// every float sum is exact and the comparisons can demand bit equality
// rather than tolerances.
func TestPropMergeCommutativeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dyadic := func(n int) float64 { return float64(r.Intn(n*64)) / 64 }
		sample := func(epoch uint64) Sample {
			if r.Intn(8) == 0 {
				return Sample{Epoch: epoch} // lost epoch
			}
			return Sample{
				Epoch: epoch, FixOK: true,
				RMS: dyadic(12), RMSValid: r.Intn(4) != 0,
				Chi2Pass: r.Intn(5) != 0, Chi2Valid: r.Intn(3) != 0,
				PDOP: dyadic(6), HDOP: dyadic(3), DOPValid: r.Intn(2) == 0,
				ChainIndex: r.Intn(MaxChainDepth),
				Excluded:   r.Intn(7) == 0,
				ClockInnov: dyadic(2), ClockValid: r.Intn(2) == 0,
			}
		}

		const size = 256
		n := 30 + r.Intn(200)
		windows := [3]*Window{NewWindow(size), NewWindow(size), NewWindow(size)}
		union := NewWindow(size)
		// Partition one stream across three sessions; each window sees
		// its own epochs, the union window sees every sample.
		for e := uint64(0); e < uint64(n); e++ {
			s := sample(e)
			windows[r.Intn(3)].Observe(s)
			union.Observe(s)
		}
		a, b, c := windows[0].Snapshot(), windows[1].Snapshot(), windows[2].Snapshot()

		var ab, ba Snapshot
		ab.Merge(&a)
		ab.Merge(&b)
		ba.Merge(&b)
		ba.Merge(&a)
		if ab != ba {
			t.Logf("commutativity: a⊕b != b⊕a\n%+v\n%+v", ab, ba)
			return false
		}

		abC := ab // (a⊕b)⊕c
		abC.Merge(&c)
		bc := b // a⊕(b⊕c)
		bc.Merge(&c)
		aBC := a
		aBC.Merge(&bc)
		if abC != aBC {
			t.Logf("associativity: (a⊕b)⊕c != a⊕(b⊕c)\n%+v\n%+v", abC, aBC)
			return false
		}

		if got, want := abC, union.Snapshot(); got != want {
			t.Logf("merged sessions != union window\n%+v\n%+v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
