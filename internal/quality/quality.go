// Package quality turns per-fix evidence (core.FixQuality, DOP, solver
// chain depth, RAIM exclusions, clock innovation) into sliding-window
// aggregates a serving fleet can alert on.
//
// The design constraint that shapes everything here is determinism:
// windows are keyed by deterministic epoch index, never wall clock, and
// every aggregate is maintained by exactly one goroutine with a fixed
// operation order, so a replay of the same scenario and seed reproduces
// every digest bit-for-bit regardless of worker count. That is what
// makes a quality regression diffable: two runs disagree only if the
// solutions themselves disagreed.
//
// A Window is allocation-free in steady state (fixed ring, fixed bucket
// arrays, subtract-on-evict aggregates). A Snapshot is a plain value —
// mergeable across sessions by commutative sums in a caller-fixed order
// — and a Digest is derived from snapshots on demand, reusing
// telemetry.BucketQuantile so window quantiles and Prometheus
// histogram_quantile agree by construction.
package quality

import (
	"encoding/json"
	"math"

	"gpsdl/internal/telemetry"
)

// Float is a float64 that marshals non-finite values as JSON null
// instead of failing the whole encode — empty windows legitimately
// produce NaN means and quantiles, and /debug/status must still render.
type Float float64

// MarshalJSON renders NaN and ±Inf as null.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// numRMSBounds is the fixed residual-RMS bucket count; bounds are in
// meters. The array (not slice) type keeps Snapshot a flat value so
// copying and merging never allocate.
const numRMSBounds = 17

// RMSBounds are the inclusive upper bounds of the residual-RMS buckets,
// spanning sub-meter open-sky noise through multi-ten-meter faults.
var RMSBounds = [numRMSBounds]float64{0.25, 0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 13, 16, 20, 30, 50}

// MaxChainDepth bounds the per-depth solver-chain counters. The engine
// chain is NR→DLG→DLO→Bancroft (depth 0–3); extra headroom costs 32
// bytes and removes a failure mode.
const MaxChainDepth = 8

// Sample is one epoch's quality evidence for one session. Zero value =
// "epoch with no usable fix".
type Sample struct {
	// Epoch is the deterministic epoch index that keys the window slot.
	Epoch uint64
	// FixOK reports whether this epoch produced a position fix at all.
	FixOK bool
	// RMS is the post-fit residual RMS in meters; only meaningful when
	// RMSValid (fix with redundancy).
	RMS      float64
	RMSValid bool
	// Chi2Pass is the consistency verdict; only counted when Chi2Valid.
	Chi2Pass  bool
	Chi2Valid bool
	// PDOP and HDOP describe the fix geometry; counted when DOPValid.
	PDOP, HDOP float64
	DOPValid   bool
	// ChainIndex is the fallback-chain depth that produced the fix
	// (0 = primary solver). Clamped into [0, MaxChainDepth).
	ChainIndex int
	// Excluded reports that RAIM removed a satellite before the fix.
	Excluded bool
	// ClockInnov is |predicted − solved| clock bias in meters, the
	// innovation magnitude of the paper's Doppler/clock predictor;
	// counted when ClockValid.
	ClockInnov float64
	ClockValid bool
}

// Snapshot is the mergeable, flat-value summary of a window (or of many
// windows merged). All fields are sums or counts except ClockMax, which
// merges by max. The zero Snapshot is the empty summary.
type Snapshot struct {
	// WindowSize is the configured window span in epochs (informational;
	// merging keeps the first non-zero value).
	WindowSize int `json:"window_size"`
	// LastEpoch is the newest epoch observed (max over merges).
	LastEpoch uint64 `json:"last_epoch"`
	// Count is the number of epochs in the window; Fixes of them
	// produced a position.
	Count uint64 `json:"count"`
	Fixes uint64 `json:"fixes"`
	// Chi2Checked/Chi2Passed count epochs where the consistency test ran
	// and where it passed.
	Chi2Checked uint64 `json:"chi2_checked"`
	Chi2Passed  uint64 `json:"chi2_passed"`
	// RAIMExcluded counts epochs where RAIM removed a satellite.
	RAIMExcluded uint64 `json:"raim_excluded"`
	// Chain counts fixes by fallback-chain depth (index 0 = primary).
	Chain [MaxChainDepth]uint64 `json:"chain"`
	// RMS* summarize the residual-RMS distribution over RMSBounds.
	RMSCount   uint64                   `json:"rms_count"`
	RMSSum     float64                  `json:"rms_sum"`
	RMSBuckets [numRMSBounds + 1]uint64 `json:"rms_buckets"`
	// DOP sums over DOPValid epochs.
	PDOPSum  float64 `json:"pdop_sum"`
	HDOPSum  float64 `json:"hdop_sum"`
	DOPCount uint64  `json:"dop_count"`
	// Clock-innovation sum/max over ClockValid epochs.
	ClockSum   float64 `json:"clock_sum"`
	ClockMax   float64 `json:"clock_max"`
	ClockCount uint64  `json:"clock_count"`
}

// Merge folds o into s. Merging is commutative in value but callers
// that need bit-identical float sums must merge in a fixed order
// (receiver order, in the engine).
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	if s.WindowSize == 0 {
		s.WindowSize = o.WindowSize
	}
	if o.LastEpoch > s.LastEpoch {
		s.LastEpoch = o.LastEpoch
	}
	s.Count += o.Count
	s.Fixes += o.Fixes
	s.Chi2Checked += o.Chi2Checked
	s.Chi2Passed += o.Chi2Passed
	s.RAIMExcluded += o.RAIMExcluded
	for i := range s.Chain {
		s.Chain[i] += o.Chain[i]
	}
	s.RMSCount += o.RMSCount
	s.RMSSum += o.RMSSum
	for i := range s.RMSBuckets {
		s.RMSBuckets[i] += o.RMSBuckets[i]
	}
	s.PDOPSum += o.PDOPSum
	s.HDOPSum += o.HDOPSum
	s.DOPCount += o.DOPCount
	s.ClockSum += o.ClockSum
	if o.ClockMax > s.ClockMax {
		s.ClockMax = o.ClockMax
	}
	s.ClockCount += o.ClockCount
}

// Digest is the human/SLO-facing reduction of a Snapshot: rates, means
// and interpolated quantiles.
type Digest struct {
	Count        uint64 `json:"count"`
	Availability Float  `json:"availability"`   // Fixes/Count
	Chi2PassRate Float  `json:"chi2_pass_rate"` // Chi2Passed/Chi2Checked
	ExcludedRate Float  `json:"excluded_rate"`  // RAIMExcluded/Count
	DegradedRate Float  `json:"degraded_rate"`  // fixes at chain depth > 0
	RMSMean      Float  `json:"rms_mean"`
	RMSP50       Float  `json:"rms_p50"`
	RMSP95       Float  `json:"rms_p95"`
	RMSP99       Float  `json:"rms_p99"`
	PDOPMean     Float  `json:"pdop_mean"`
	HDOPMean     Float  `json:"hdop_mean"`
	ClockMean    Float  `json:"clock_innov_mean"`
	ClockMax     Float  `json:"clock_innov_max"`
}

// Digest reduces the snapshot. Rates over an empty denominator are 0;
// quantiles over an empty RMS distribution are NaN (rendered as null
// upstream — JSON marshalling replaces non-finite values).
func (s *Snapshot) Digest() Digest {
	d := Digest{Count: s.Count, ClockMax: Float(s.ClockMax)}
	if s.Count > 0 {
		d.Availability = Float(float64(s.Fixes) / float64(s.Count))
		d.ExcludedRate = Float(float64(s.RAIMExcluded) / float64(s.Count))
	}
	if s.Chi2Checked > 0 {
		d.Chi2PassRate = Float(float64(s.Chi2Passed) / float64(s.Chi2Checked))
	}
	var deep uint64
	for i := 1; i < MaxChainDepth; i++ {
		deep += s.Chain[i]
	}
	if s.Fixes > 0 {
		d.DegradedRate = Float(float64(deep) / float64(s.Fixes))
	}
	if s.RMSCount > 0 {
		d.RMSMean = Float(s.RMSSum / float64(s.RMSCount))
	} else {
		d.RMSMean = Float(math.NaN())
	}
	d.RMSP50 = Float(s.RMSQuantile(0.50))
	d.RMSP95 = Float(s.RMSQuantile(0.95))
	d.RMSP99 = Float(s.RMSQuantile(0.99))
	if s.DOPCount > 0 {
		d.PDOPMean = Float(s.PDOPSum / float64(s.DOPCount))
		d.HDOPMean = Float(s.HDOPSum / float64(s.DOPCount))
	} else {
		d.PDOPMean, d.HDOPMean = Float(math.NaN()), Float(math.NaN())
	}
	if s.ClockCount > 0 {
		d.ClockMean = Float(s.ClockSum / float64(s.ClockCount))
	} else {
		d.ClockMean, d.ClockMax = Float(math.NaN()), Float(math.NaN())
	}
	return d
}

// RMSQuantile estimates the q-th quantile of the window's residual-RMS
// distribution with the same bucket interpolation as
// telemetry.Histogram.Quantile. NaN when the window holds no RMS
// observations.
func (s *Snapshot) RMSQuantile(q float64) float64 {
	if s.RMSCount == 0 {
		return math.NaN()
	}
	var cum [numRMSBounds + 1]uint64
	var running uint64
	for i := range s.RMSBuckets {
		running += s.RMSBuckets[i]
		cum[i] = running
	}
	return telemetry.BucketQuantile(RMSBounds[:], cum[:], s.RMSCount, q)
}

// Window is a sliding window over the last size epochs of one stream of
// Samples. It is NOT safe for concurrent use: the engine gives every
// window exactly one owning goroutine, which is also what makes its
// float aggregates reproducible. Observe is allocation-free.
type Window struct {
	size uint64
	ring []Sample
	occ  []bool
	snap Snapshot // running aggregates (ClockMax recomputed on read)
}

// NewWindow returns a window spanning size epochs (minimum 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{
		size: uint64(size),
		ring: make([]Sample, size),
		occ:  make([]bool, size),
		snap: Snapshot{WindowSize: size},
	}
}

// Observe folds one epoch's sample in, evicting whatever sample
// occupied the same ring slot a window ago. Epochs are expected
// (but not required) to arrive in increasing order.
func (w *Window) Observe(s Sample) {
	if w == nil {
		return
	}
	slot := s.Epoch % w.size
	if w.occ[slot] {
		w.apply(&w.ring[slot], -1)
	}
	w.ring[slot] = s
	w.occ[slot] = true
	w.apply(&s, +1)
	if s.Epoch > w.snap.LastEpoch {
		w.snap.LastEpoch = s.Epoch
	}
}

// apply adds (sign=+1) or subtracts (sign=-1) one sample's contribution
// to the running aggregates. Add and subtract must stay exact mirror
// images or the window drifts; counts use uint64 wraparound symmetry.
func (w *Window) apply(s *Sample, sign int) {
	u := uint64(1)
	if sign < 0 {
		u = ^uint64(0) // adding -1 in two's complement
	}
	f := float64(sign)
	w.snap.Count += u
	if s.FixOK {
		w.snap.Fixes += u
		ci := s.ChainIndex
		if ci < 0 {
			ci = 0
		} else if ci >= MaxChainDepth {
			ci = MaxChainDepth - 1
		}
		w.snap.Chain[ci] += u
	}
	if s.Chi2Valid {
		w.snap.Chi2Checked += u
		if s.Chi2Pass {
			w.snap.Chi2Passed += u
		}
	}
	if s.Excluded {
		w.snap.RAIMExcluded += u
	}
	if s.RMSValid && !math.IsNaN(s.RMS) {
		w.snap.RMSCount += u
		w.snap.RMSSum += f * s.RMS
		w.snap.RMSBuckets[rmsBucket(s.RMS)] += u
	}
	if s.DOPValid {
		w.snap.DOPCount += u
		w.snap.PDOPSum += f * s.PDOP
		w.snap.HDOPSum += f * s.HDOP
	}
	if s.ClockValid && !math.IsNaN(s.ClockInnov) {
		w.snap.ClockCount += u
		w.snap.ClockSum += f * s.ClockInnov
	}
}

// rmsBucket returns the bucket index for an RMS value (last index =
// overflow).
func rmsBucket(v float64) int {
	for i, b := range RMSBounds {
		if v <= b {
			return i
		}
	}
	return numRMSBounds
}

// SnapshotInto writes the window's current summary into dst without
// allocating. ClockMax cannot be maintained by subtract-on-evict, so it
// is recomputed here by an O(size) scan — snapshots are taken every few
// dozen epochs, not every epoch, so the scan amortizes to noise.
func (w *Window) SnapshotInto(dst *Snapshot) {
	if w == nil {
		*dst = Snapshot{}
		return
	}
	*dst = w.snap
	dst.ClockMax = 0
	for i := range w.ring {
		if !w.occ[i] {
			continue
		}
		s := &w.ring[i]
		if s.ClockValid && s.ClockInnov > dst.ClockMax {
			dst.ClockMax = s.ClockInnov
		}
	}
}

// Snapshot returns the window's current summary by value.
func (w *Window) Snapshot() Snapshot {
	var s Snapshot
	w.SnapshotInto(&s)
	return s
}

// Count returns the number of epochs currently in the window.
func (w *Window) Count() uint64 {
	if w == nil {
		return 0
	}
	return w.snap.Count
}
