package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a metric.
type Label struct {
	Key, Value string
}

// metricKind discriminates the families a Registry holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instrument inside a family.
type child struct {
	labels    []Label
	signature string // canonical rendered label set, for lookup + sorting
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family groups every child sharing one metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	bounds   []float64 // histogram families only
	children []*child
}

// Registry holds metric families and exposes them in Prometheus text
// format. The zero value is ready to use. A nil *Registry is also valid:
// every constructor returns a nil instrument whose methods no-op, which
// is the overhead-free "telemetry disabled" mode.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name with the given
// labels, creating it on first use. Repeat registrations with the same
// name and labels return the same instrument. Nil registry → nil
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := r.child(name, help, kindCounter, nil, labels)
	return c.counter
}

// Gauge is Counter's analogue for gauges.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	c := r.child(name, help, kindGauge, nil, labels)
	return c.gauge
}

// Histogram registers a fixed-bucket histogram. bounds are inclusive
// upper bounds (sorted internally); every child of one family shares
// the bounds of the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	c := r.child(name, help, kindHistogram, bounds, labels)
	return c.hist
}

// child finds or creates the instrument for (name, labels). It panics on
// a kind conflict — re-registering one name as two different types is a
// programming error no caller can recover from meaningfully.
func (r *Registry) child(name, help string, kind metricKind, bounds []float64, labels []Label) *child {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*family)
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, kind))
	}
	for _, c := range f.children {
		if c.signature == sig {
			return c
		}
	}
	c := &child{labels: append([]Label(nil), labels...), signature: sig}
	switch kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = newHistogram(f.bounds)
	}
	f.children = append(f.children, c)
	return c
}

// labelSignature renders labels in sorted-key order as they will appear
// inside {...}; it doubles as the child identity.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escaping rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
