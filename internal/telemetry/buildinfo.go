package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Build-info metric names.
const (
	// MetricBuildInfo is the constant-1 gauge whose labels carry the
	// binary's version metadata — the Prometheus idiom for detecting
	// mixed-version fleets (count by(version)(gps_build_info)).
	MetricBuildInfo = "gps_build_info"
	// MetricProcessStartEpoch is the process start time as a Unix epoch
	// gauge, so dashboards can detect restarts (resets of the value) and
	// compute uptime without scraping logs.
	MetricProcessStartEpoch = "gps_process_start_epoch"
)

// RegisterBuildInfo registers the gps_build_info gauge (value 1, labels
// version/goversion/revision from runtime/debug.ReadBuildInfo) and the
// gps_process_start_epoch gauge (Unix seconds, set once at registration)
// in reg. Safe on a nil registry (no-op) and idempotent: repeat calls
// return the same instruments.
//
// Version metadata degrades gracefully: binaries built outside module
// mode (or from a dirty tree without stamping) report "unknown" rather
// than omitting the family, so the series always exists for joins.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	version, revision := "unknown", "unknown"
	goVersion := runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		} else if bi.Main.Version == "(devel)" {
			version = "devel"
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
				if len(revision) > 12 {
					revision = revision[:12]
				}
			}
		}
	}
	reg.Gauge(MetricBuildInfo,
		"Build metadata as labels on a constant-1 gauge (mixed-version fleet detection).",
		Label{Key: "version", Value: version},
		Label{Key: "goversion", Value: goVersion},
		Label{Key: "revision", Value: revision},
	).Set(1)
	start := reg.Gauge(MetricProcessStartEpoch,
		"Process start time as Unix seconds (restart detection).")
	// Only stamp the first registration: a re-register must not move the
	// start time the dashboards diff against.
	if start.Value() == 0 {
		start.Set(float64(time.Now().Unix()))
	}
}
