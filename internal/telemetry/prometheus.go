package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and
// children by label signature, so output is deterministic and diffable.
// A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		children := append([]*child(nil), f.children...)
		sort.Slice(children, func(i, j int) bool { return children[i].signature < children[j].signature })
		for _, c := range children {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, braces(c.signature), c.counter.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braces(c.signature), formatFloat(c.gauge.Value()))
			case kindHistogram:
				writeHistogram(bw, f.name, c)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one labeled histogram child: cumulative
// _bucket series (le is an extra label), then _sum and _count.
func writeHistogram(w io.Writer, name string, c *child) {
	cum, count, sum := c.hist.snapshot()
	for i, bound := range c.hist.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			braces(joinSignatures(c.signature, `le="`+formatFloat(bound)+`"`)), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		braces(joinSignatures(c.signature, `le="+Inf"`)), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braces(c.signature), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braces(c.signature), count)
}

// braces wraps a non-empty label signature in {}.
func braces(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

// joinSignatures concatenates two rendered label lists.
func joinSignatures(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trippable representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
