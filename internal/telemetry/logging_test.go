package telemetry

import (
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// syncBuffer serializes writes: several component handlers may share it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestComponentLoggerCarriesAttribute(t *testing.T) {
	var buf syncBuffer
	l, err := NewLogging(&buf, "text", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	l.Component("broadcaster").Info("client connected", "remote", "1.2.3.4")
	out := buf.String()
	if !strings.Contains(out, "component=broadcaster") {
		t.Errorf("record missing component attr: %q", out)
	}
	if !strings.Contains(out, "remote=1.2.3.4") {
		t.Errorf("record missing call-site attr: %q", out)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf syncBuffer
	l, err := NewLogging(&buf, "", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	lg := l.Component("solver")
	lg.Info("dropped")
	lg.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info record escaped a warn-level logger: %q", out)
	}
	if !strings.Contains(out, "kept") {
		t.Errorf("warn record was dropped: %q", out)
	}
	l.SetLevel(slog.LevelDebug)
	lg.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Error("SetLevel did not lower an existing component's level")
	}
}

func TestPerComponentLevel(t *testing.T) {
	var buf syncBuffer
	l, err := NewLogging(&buf, "", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	l.SetComponentLevel("chatty", slog.LevelError)
	l.Component("chatty").Info("muted")
	l.Component("other").Info("audible")
	out := buf.String()
	if strings.Contains(out, "muted") {
		t.Errorf("per-component override ignored: %q", out)
	}
	if !strings.Contains(out, "audible") {
		t.Errorf("other component silenced too: %q", out)
	}
}

func TestJSONFormat(t *testing.T) {
	var buf syncBuffer
	l, err := NewLogging(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	l.Component("admin").Info("up", "addr", "127.0.0.1:0")
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("output is not JSON: %v (%q)", err, buf.String())
	}
	if rec["component"] != "admin" || rec["addr"] != "127.0.0.1:0" {
		t.Errorf("JSON record = %v", rec)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	if _, err := NewLogging(&syncBuffer{}, "xml", slog.LevelInfo); err == nil {
		t.Error("xml format accepted")
	}
}

func TestNilLoggingIsSilent(t *testing.T) {
	var l *Logging
	lg := l.Component("anything")
	if lg == nil {
		t.Fatal("nil Logging returned nil logger")
	}
	lg.Error("goes nowhere") // must not panic
	l.SetLevel(slog.LevelDebug)
	l.SetComponentLevel("anything", slog.LevelDebug)
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
