package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value() = %d, want 42", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Add(-1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 2 {
		t.Errorf("Value() = %v, want 2", got)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
}

func TestNilRegistryConstructors(t *testing.T) {
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Error("nil registry returned non-nil instruments")
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", buf.String(), err)
	}
}

func TestHistogramBelowFirstBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(-100)
	h.Observe(0)
	h.Observe(0.5)
	cum, count, sum := h.snapshot()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if cum[0] != 3 {
		t.Errorf("first bucket cumulative = %d, want 3 (below-range values must land in the first bucket)", cum[0])
	}
	if sum != -99.5 {
		t.Errorf("sum = %v, want -99.5", sum)
	}
}

func TestHistogramAboveLastBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(4.0001)
	h.Observe(math.Inf(1))
	h.Observe(1e300)
	cum, count, _ := h.snapshot()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if cum[len(cum)-2] != 0 {
		t.Errorf("last finite bucket = %d, want 0", cum[len(cum)-2])
	}
	if cum[len(cum)-1] != 3 {
		t.Errorf("+Inf cumulative = %d, want 3", cum[len(cum)-1])
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" is inclusive
	cum, _, _ := h.snapshot()
	if cum[0] != 1 {
		t.Errorf("bucket le=1 cumulative = %d, want 1", cum[0])
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Errorf("NaN was counted: count = %d", h.Count())
	}
}

func TestHistogramUnsortedDuplicateBounds(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2, 2, math.NaN(), math.Inf(1)})
	if got, want := len(h.bounds), 3; got != want {
		t.Fatalf("bounds = %v, want 3 finite deduplicated bounds", h.bounds)
	}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i-1] >= h.bounds[i] {
			t.Fatalf("bounds not strictly sorted: %v", h.bounds)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1, 2, 8))
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) / 1000)
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*per); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	cum, count, _ := h.snapshot()
	if cum[len(cum)-1] != count {
		t.Errorf("+Inf cumulative %d != count %d", cum[len(cum)-1], count)
	}
}

func TestConcurrentCounterGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("counter = %d, want 16000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %v, want 0", g.Value())
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := ExponentialBuckets(1, 2, 4); len(got) != 4 || got[3] != 8 {
		t.Errorf("ExponentialBuckets = %v", got)
	}
	if got := LinearBuckets(0, 5, 3); len(got) != 3 || got[2] != 10 {
		t.Errorf("LinearBuckets = %v", got)
	}
	if ExponentialBuckets(0, 2, 3) != nil || ExponentialBuckets(1, 1, 3) != nil || LinearBuckets(0, 1, 0) != nil {
		t.Error("invalid bucket parameters not rejected")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "hits", Label{"path", "/x"})
	b := r.Counter("hits_total", "hits", Label{"path", "/x"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	other := r.Counter("hits_total", "hits", Label{"path", "/y"})
	if other == a {
		t.Error("different label values shared an instrument")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared_total", "h").Inc()
				r.Histogram("lat_seconds", "h", []float64{1, 2}).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "h").Value(); got != 4000 {
		t.Errorf("shared counter = %d, want 4000", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "total requests", Label{"code", "200"}).Add(3)
	r.Counter("app_requests_total", "total requests", Label{"code", "500"}).Inc()
	r.Gauge("app_clients", "connected clients").Set(2)
	h := r.Histogram("app_latency_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP app_clients connected clients",
		"# TYPE app_clients gauge",
		"app_clients 2",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 5.55",
		"app_latency_seconds_count 3",
		"# TYPE app_requests_total counter",
		`app_requests_total{code="200"} 3`,
		`app_requests_total{code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families must come out name-sorted.
	if strings.Index(out, "app_clients") > strings.Index(out, "app_requests_total") {
		t.Error("families not sorted by name")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"v", "a\"b\\c\nd"}).Inc()
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{v="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("escaped output missing %q in %q", want, buf.String())
	}
}

// BenchmarkHistogramObserve pins the cost of the binary-search bucket
// lookup on the default 12-bound solve histogram: widening the bucket
// set must not regress the per-solve hot path. Values rotate across the
// full range so every branch of the search is exercised.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", DefSolveBuckets)
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = 1e-8 * float64(uint64(1)<<(uint(i)%28))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i%len(vals)])
	}
}

// BenchmarkHistogramObserveWide doubles the bound count to show the
// lookup scales logarithmically, not linearly.
func BenchmarkHistogramObserveWide(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_wide_seconds", "", ExponentialBuckets(1e-9, 2, 24))
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = 1e-8 * float64(uint64(1)<<(uint(i)%28))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i%len(vals)])
	}
}
