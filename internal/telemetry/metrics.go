// Package telemetry is the repository's dependency-free observability
// layer: typed atomic metrics (Counter, Gauge, Histogram) behind a
// thread-safe Registry with Prometheus text-format exposition, plus a
// log/slog-based structured-logging setup with per-component level
// control.
//
// It is expvar in spirit but typed and labeled, so a production
// positioning service can answer "how many fixes per second, at what
// latency, with how many solver failures?" without importing anything
// outside the standard library.
//
// Every instrument is safe for concurrent use, and every method is a
// no-op on a nil receiver: code paths instrument themselves
// unconditionally and pay nothing (not even a time.Now call, when the
// caller gates on the nil instrument) unless a Registry was wired in.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down (queue depths,
// connected clients, last-fix age).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (which may be negative) atomically. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are defined
// by their inclusive upper bounds; an implicit +Inf bucket catches
// everything above the last bound, and values at or below the first
// bound land in the first bucket, so no observation is ever lost off
// either end. NaN observations are dropped (they carry no magnitude).
//
// Observation is lock-free: one binary search plus two atomic adds.
type Histogram struct {
	bounds  []float64 // sorted inclusive upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram from sorted, deduplicated bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if i > 0 && len(dedup) > 0 && b == dedup[len(dedup)-1] {
			continue
		}
		dedup = append(dedup, b)
	}
	return &Histogram{
		bounds:  dedup,
		buckets: make([]atomic.Uint64, len(dedup)+1), // +1: the +Inf bucket
	}
}

// Observe records one value. No-op on a nil histogram or a NaN value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound is >= v; len(bounds) selects +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the bucket that contains
// the target rank — the same estimate Prometheus' histogram_quantile()
// computes server-side, available here without a scrape round-trip.
//
// Values in the +Inf overflow bucket have no upper bound to interpolate
// against, so a quantile landing there returns the highest finite bound
// (again matching histogram_quantile). The first bucket interpolates
// from 0 when its bound is positive, else from the bound itself.
// Returns NaN on a nil or empty histogram or a NaN q; q outside [0, 1]
// is clamped.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || math.IsNaN(q) {
		return math.NaN()
	}
	cum, count, _ := h.snapshot()
	return BucketQuantile(h.bounds, cum, count, q)
}

// BucketQuantile is the interpolation core of Histogram.Quantile,
// exported so other fixed-bucket aggregates (e.g. quality windows) can
// reuse the exact same estimate: bounds are sorted inclusive upper
// bounds, cum the cumulative counts aligned with bounds plus a final
// +Inf entry, count the total. Returns NaN when count is 0.
func BucketQuantile(bounds []float64, cum []uint64, count uint64, q float64) float64 {
	if count == 0 || len(cum) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample whose value we estimate.
	rank := uint64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	i := 0
	for i < len(cum) && cum[i] < rank {
		i++
	}
	if i >= len(bounds) {
		// Overflow bucket: no finite upper edge to interpolate toward.
		if len(bounds) == 0 {
			return math.NaN()
		}
		return bounds[len(bounds)-1]
	}
	lower := 0.0
	var below uint64
	if i > 0 {
		lower = bounds[i-1]
		below = cum[i-1]
	} else if bounds[0] <= 0 {
		lower = bounds[0]
	}
	in := cum[i] - below
	if in == 0 {
		return bounds[i]
	}
	frac := float64(rank-below) / float64(in)
	return lower + (bounds[i]-lower)*frac
}

// snapshot returns cumulative bucket counts aligned with bounds plus
// the +Inf total, consistent enough for scraping (buckets are read in
// order, so a racing Observe can at worst undercount the tail).
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.buckets))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// ExponentialBuckets returns n upper bounds starting at start (> 0) and
// multiplying by factor (> 1) — the standard latency-histogram shape.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start and stepping
// by width.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// DefSolveBuckets spans 100 ns … ~1.6 s: wide enough for the
// sub-microsecond direct solvers and pathological NR epochs alike.
var DefSolveBuckets = ExponentialBuckets(1e-7, 4, 12)
