package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// Logging is the repository's structured-logging setup: one output
// stream, text or JSON rendering, a global level, and independently
// adjustable per-component levels (a component is a subsystem name such
// as "broadcaster" or "solver"; each component's logger carries a
// component=<name> attribute).
type Logging struct {
	w      io.Writer
	json   bool
	level  slog.LevelVar // global floor for components without overrides
	mu     sync.Mutex
	levels map[string]*slog.LevelVar
	logs   map[string]*slog.Logger
}

// NewLogging returns a logging setup writing to w. format is "text" or
// "json" ("" means text); level is the initial global level.
func NewLogging(w io.Writer, format string, level slog.Level) (*Logging, error) {
	l := &Logging{
		w:      w,
		levels: make(map[string]*slog.LevelVar),
		logs:   make(map[string]*slog.Logger),
	}
	switch strings.ToLower(format) {
	case "", "text":
	case "json":
		l.json = true
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	l.level.Set(level)
	return l, nil
}

// Component returns the logger for one subsystem, creating it on first
// use. All records carry component=<name>. Nil receiver returns a
// logger that discards everything, so call sites need no guards.
func (l *Logging) Component(name string) *slog.Logger {
	if l == nil {
		return slog.New(discardHandler{})
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if lg, ok := l.logs[name]; ok {
		return lg
	}
	lv := &slog.LevelVar{}
	lv.Set(l.level.Level())
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if l.json {
		h = slog.NewJSONHandler(l.w, opts)
	} else {
		h = slog.NewTextHandler(l.w, opts)
	}
	lg := slog.New(h).With("component", name)
	l.levels[name] = lv
	l.logs[name] = lg
	return lg
}

// SetLevel changes the global level and every component that has not
// been given its own level via SetComponentLevel.
func (l *Logging) SetLevel(level slog.Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.level.Set(level)
	for _, lv := range l.levels {
		lv.Set(level)
	}
}

// SetComponentLevel overrides one component's level (creating the
// component if needed).
func (l *Logging) SetComponentLevel(name string, level slog.Level) {
	if l == nil {
		return
	}
	l.Component(name) // ensure it exists
	l.mu.Lock()
	defer l.mu.Unlock()
	l.levels[name].Set(level)
}

// ParseLevel maps "debug", "info", "warn"/"warning", "error" (any case)
// to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q", s)
}

// discardHandler drops every record; it backs nil-Logging loggers.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
