package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantile drives Quantile through the interpolation cases:
// within-bucket linear interpolation, exact bucket edges, the first
// bucket (interpolating from 0), the +Inf overflow bucket (clamped to
// the last finite bound), and degenerate inputs.
func TestHistogramQuantile(t *testing.T) {
	tests := []struct {
		name    string
		bounds  []float64
		observe []float64
		q       float64
		want    float64
	}{
		{
			name:    "median interpolates within bucket",
			bounds:  []float64{1, 2, 4},
			observe: []float64{1.5, 1.5, 1.5, 1.5}, // all 4 in (1,2]
			q:       0.5,
			// rank 2 of 4 in the (1,2] bucket: 1 + (2-1)*2/4 = 1.5
			want: 1.5,
		},
		{
			name:    "quantile at bucket edge",
			bounds:  []float64{1, 2, 4},
			observe: []float64{0.5, 1.5, 3, 3},
			q:       0.25,
			// rank 1 lands in the first bucket: 0 + 1*(1/1) = 1
			want: 1,
		},
		{
			name:    "first bucket interpolates from zero",
			bounds:  []float64{10, 20},
			observe: []float64{3, 7},
			q:       0.5,
			// rank 1 of 2, both in (0,10]: 0 + 10*(1/2) = 5
			want: 5,
		},
		{
			name:    "overflow bucket clamps to last finite bound",
			bounds:  []float64{1, 2},
			observe: []float64{100, 200, 300},
			q:       0.99,
			want:    2,
		},
		{
			name:    "q=0 clamps to lowest rank",
			bounds:  []float64{1, 2, 4},
			observe: []float64{1.5, 3.5},
			q:       0,
			// rank clamps to 1: in (1,2]: 1 + 1*(1/1) = 2
			want: 2,
		},
		{
			name:    "q=1 is the max bucket edge",
			bounds:  []float64{1, 2, 4},
			observe: []float64{0.5, 1.5, 3},
			q:       1,
			// rank 3 in (2,4]: 2 + 2*(1/1) = 4
			want: 4,
		},
		{
			name:    "q>1 clamps like q=1",
			bounds:  []float64{1, 2, 4},
			observe: []float64{0.5, 1.5, 3},
			q:       1.7,
			want:    4,
		},
		{
			name:    "uniform spread p90",
			bounds:  []float64{10, 20, 30, 40, 50},
			observe: []float64{5, 15, 25, 35, 45, 5, 15, 25, 35, 45},
			q:       0.9,
			// rank 9 of 10: bucket (40,50] holds ranks 9-10, so
			// 40 + 10*(1/2) = 45.
			want: 45,
		},
		{
			name:    "negative bounds first bucket returns its edge",
			bounds:  []float64{-5, 0, 5},
			observe: []float64{-7, -6},
			q:       0.5,
			// Both in the (-inf,-5] bucket; no lower edge → the bound.
			want: -5,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			reg := NewRegistry()
			h := reg.Histogram("q_test", "", tt.bounds)
			for _, v := range tt.observe {
				h.Observe(v)
			}
			got := h.Quantile(tt.q)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
			}
		})
	}
}

func TestHistogramQuantileDegenerate(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil histogram Quantile = %g, want NaN", got)
	}
	reg := NewRegistry()
	empty := reg.Histogram("q_empty", "", []float64{1, 2})
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %g, want NaN", got)
	}
	h := reg.Histogram("q_nan", "", []float64{1, 2})
	h.Observe(1)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g, want NaN", got)
	}
}

// Quantile estimates must agree with the exact order statistic to within
// one bucket width on a dense histogram — the contract dashboards rely
// on when they alert on p99 latencies.
func TestHistogramQuantileAccuracy(t *testing.T) {
	bounds := LinearBuckets(1, 1, 100)
	reg := NewRegistry()
	h := reg.Histogram("q_dense", "", bounds)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i%100) + 0.5)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		want := q * 100 // uniform on (0,100)
		if math.Abs(got-want) > 1.5 {
			t.Errorf("Quantile(%g) = %g, want %g ± 1.5", q, got, want)
		}
	}
}

// Regression: a +Inf or NaN passed as a histogram *bound* must be
// dropped at construction (the implicit overflow bucket covers +Inf),
// so the rendered le="..." labels never carry a non-finite edge other
// than the canonical le="+Inf" terminator.
func TestPrometheusNonFiniteBoundsDropped(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge_bounds", "", []float64{1, math.Inf(1), math.NaN(), 2})
	h.Observe(1.5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `le="NaN"`) {
		t.Errorf("rendered a NaN bucket bound:\n%s", out)
	}
	// Exactly one +Inf bucket: the implicit overflow terminator.
	if n := strings.Count(out, `le="+Inf"`); n != 1 {
		t.Errorf("rendered %d le=\"+Inf\" series, want exactly 1:\n%s", n, out)
	}
	if !strings.Contains(out, `edge_bounds_bucket{le="1"} 0`) ||
		!strings.Contains(out, `edge_bounds_bucket{le="2"} 1`) {
		t.Errorf("finite bounds misrendered:\n%s", out)
	}
}

// Regression: non-finite observed values must render in the exact forms
// the Prometheus text format requires — "+Inf", "-Inf" (never "Inf" or
// "inf") — in both histogram sums and gauges, and NaN sums must render
// as "NaN". A scraper that receives Go's default "%g" rendering of
// these values rejects the whole exposition.
func TestPrometheusNonFiniteValueRendering(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q, want \"+Inf\"", got)
	}
	if got := formatFloat(math.Inf(-1)); got != "-Inf" {
		t.Errorf("formatFloat(-Inf) = %q, want \"-Inf\"", got)
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q, want \"NaN\"", got)
	}

	reg := NewRegistry()
	h := reg.Histogram("edge_sum", "", []float64{1})
	h.Observe(math.Inf(1)) // lands in overflow bucket, sum becomes +Inf
	g := reg.Gauge("edge_gauge", "")
	g.Set(math.Inf(-1))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "edge_sum_sum +Inf\n") {
		t.Errorf("+Inf sum misrendered:\n%s", out)
	}
	if !strings.Contains(out, "edge_sum_count 1\n") {
		t.Errorf("count must still advance for a +Inf observation:\n%s", out)
	}
	if !strings.Contains(out, `edge_sum_bucket{le="+Inf"} 1`) {
		t.Errorf("+Inf observation must land in the overflow bucket:\n%s", out)
	}
	if !strings.Contains(out, "edge_gauge -Inf\n") {
		t.Errorf("-Inf gauge misrendered:\n%s", out)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	RegisterBuildInfo(nil) // must not panic
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	RegisterBuildInfo(reg) // idempotent
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, MetricBuildInfo+"{") {
		t.Fatalf("missing %s family:\n%s", MetricBuildInfo, out)
	}
	for _, label := range []string{`version="`, `goversion="`, `revision="`} {
		if !strings.Contains(out, label) {
			t.Errorf("%s missing label %s:\n%s", MetricBuildInfo, label, out)
		}
	}
	// The gauge's value is the constant 1.
	if !strings.Contains(out, "} 1\n") {
		t.Errorf("%s not a constant-1 gauge:\n%s", MetricBuildInfo, out)
	}
	start := reg.Gauge(MetricProcessStartEpoch, "")
	if start.Value() <= 0 {
		t.Errorf("%s = %g, want a positive Unix epoch", MetricProcessStartEpoch, start.Value())
	}
	before := start.Value()
	RegisterBuildInfo(reg)
	if start.Value() != before {
		t.Errorf("re-registration moved %s from %g to %g", MetricProcessStartEpoch, before, start.Value())
	}
}
