// Package dgps implements Differential GPS, the correction scheme the
// paper invokes in Section 3.3: "In the case where there are only clock
// dependent errors, or where satellite dependent errors can be
// compensated, 4 satellites are sufficient. For example, Differential GPS
// (DGPS) technology as described in [24][29] can be used."
//
// A reference station at a surveyed position measures each satellite's
// pseudo-range, computes what the range *should* be, and broadcasts the
// difference as a pseudo-range correction (PRC). A nearby rover adds the
// PRC to its own measurement, cancelling the error components the two
// receivers share: satellite clock error and (for short baselines) the
// atmospheric residuals. Receiver-local effects — thermal noise,
// multipath, and each receiver's own clock bias — do not cancel.
package dgps

import (
	"errors"
	"fmt"

	"gpsdl/internal/core"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

// ErrNoReferenceFix is returned when the reference station cannot resolve
// its own clock bias for an epoch.
var ErrNoReferenceFix = errors.New("dgps: reference station has no valid fix")

// Corrections maps PRN to the pseudo-range correction (meters) for one
// epoch.
type Corrections map[int]float64

// Reference is a DGPS base station: a receiver at a precisely surveyed
// position that generates pseudo-range corrections.
type Reference struct {
	// Pos is the surveyed ECEF position of the reference antenna.
	Pos geo.ECEF
	// Smoothing is the exponential-averaging time constant (seconds)
	// applied per satellite to the raw corrections. The quantities DGPS
	// cancels (satellite clock, atmospheric residuals) vary over minutes,
	// while the reference receiver's own thermal noise is white — without
	// smoothing that noise would be forwarded to every rover and *double*
	// their local noise. Zero disables smoothing.
	Smoothing float64

	// solver resolves the reference receiver's own clock bias each epoch
	// (the bias must be removed from the broadcast corrections, or every
	// rover would inherit it).
	solver core.NRSolver
	state  map[int]*prcState
}

// prcState is the per-PRN smoothing state.
type prcState struct {
	value float64
	lastT float64
}

// NewReference returns a reference station at the surveyed position with
// the default 300 s correction smoothing (common for code-phase DGPS
// services; the cancelable errors vary over tens of minutes).
func NewReference(pos geo.ECEF) *Reference {
	return &Reference{Pos: pos, Smoothing: 300, state: make(map[int]*prcState)}
}

// ComputeCorrections derives per-satellite corrections from one epoch of
// the reference receiver's observations:
//
//	PRC_i = geometricRange_i − (ρᵉ_i − ε̂ᴿ_ref)
//
// where ε̂ᴿ_ref is the reference clock bias estimated by NR from the same
// epoch. At least 4 satellites are required for that estimate.
func (r *Reference) ComputeCorrections(epoch scenario.Epoch) (Corrections, error) {
	obs := make([]core.Observation, 0, len(epoch.Obs))
	for _, o := range epoch.Obs {
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	sol, err := r.solver.Solve(epoch.T, obs)
	if err != nil {
		return nil, fmt.Errorf("dgps: reference clock solve: %w", ErrNoReferenceFix)
	}
	out := make(Corrections, len(epoch.Obs))
	for _, o := range epoch.Obs {
		geom := r.Pos.DistanceTo(o.Pos)
		raw := geom - (o.Pseudorange - sol.ClockBias)
		out[o.PRN] = r.smooth(o.PRN, epoch.T, raw)
	}
	return out, nil
}

// smooth applies the per-PRN exponential average. A satellite that
// disappears for longer than the time constant restarts fresh.
func (r *Reference) smooth(prn int, t, raw float64) float64 {
	if r.Smoothing <= 0 {
		return raw
	}
	if r.state == nil {
		r.state = make(map[int]*prcState)
	}
	st, ok := r.state[prn]
	if !ok || t-st.lastT > r.Smoothing {
		r.state[prn] = &prcState{value: raw, lastT: t}
		return raw
	}
	dt := t - st.lastT
	if dt <= 0 {
		return st.value
	}
	alpha := dt / (r.Smoothing + dt)
	st.value += alpha * (raw - st.value)
	st.lastT = t
	return st.value
}

// Apply returns a copy of the rover epoch with corrections added to each
// matching satellite's pseudo-range. Satellites without a correction are
// dropped (a real rover cannot use an uncorrected satellite in DGPS mode).
func Apply(epoch scenario.Epoch, corr Corrections) scenario.Epoch {
	out := scenario.Epoch{T: epoch.T, Obs: make([]scenario.SatObs, 0, len(epoch.Obs))}
	for _, o := range epoch.Obs {
		prc, ok := corr[o.PRN]
		if !ok {
			continue
		}
		o.Pseudorange += prc
		out.Obs = append(out.Obs, o)
	}
	return out
}
