package dgps

import (
	"testing"

	"gpsdl/internal/clock"
	"gpsdl/internal/core"
	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

// buildPair returns generators for a reference station and a rover ~20 km
// away, sharing the constellation and error seeds (so satellite-coherent
// errors are common while receiver-local noise differs).
func buildPair(t *testing.T) (ref, rover *scenario.Generator, roverPos geo.ECEF) {
	t.Helper()
	st, err := scenario.StationByID("YYR1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(31)
	// Model receivers that apply no broadcast atmospheric corrections —
	// the classic DGPS use case. The shared (cancelable) error component
	// is then the dominant one.
	cfg.IonoRemainder = 1.0
	cfg.TropoRemainder = 0.5
	refGen := scenario.NewGenerator(st, cfg)

	roverStation := st
	roverStation.ID = "ROVR"
	roverPos = geo.FromENU(st.Pos, geo.ENU{E: 15000, N: 12000, U: 20})
	roverStation.Pos = roverPos
	roverGen := scenario.NewGenerator(roverStation, cfg)
	return refGen, roverGen, roverPos
}

func TestComputeCorrectionsRemovesCommonErrors(t *testing.T) {
	refGen, roverGen, roverPos := buildPair(t)
	ref := NewReference(refGen.Station().Pos)

	var plain, corrected core.NRSolver
	var sumPlain, sumCorr float64
	var n int
	// 10-second correction cadence; the first epochs warm the smoother.
	for i := 0; i < 360; i++ {
		tt := 100 + float64(i)*10
		refEpoch, err := refGen.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		roverEpoch, err := roverGen.EpochAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := ref.ComputeCorrections(refEpoch)
		if err != nil {
			t.Fatal(err)
		}
		applied := Apply(roverEpoch, corr)
		if len(applied.Obs) < 4 {
			continue
		}
		if i < 90 {
			continue // smoother warm-up (3 time constants)
		}
		solPlain, err1 := plain.Solve(tt, adapt(roverEpoch))
		solCorr, err2 := corrected.Solve(tt, adapt(applied))
		if err1 != nil || err2 != nil {
			continue
		}
		sumPlain += solPlain.Pos.DistanceTo(roverPos)
		sumCorr += solCorr.Pos.DistanceTo(roverPos)
		n++
	}
	if n < 100 {
		t.Fatalf("only %d comparable epochs", n)
	}
	meanPlain := sumPlain / float64(n)
	meanCorr := sumCorr / float64(n)
	t.Logf("rover NR error: %.3f m plain, %.3f m with DGPS over %d epochs", meanPlain, meanCorr, n)
	// DGPS removes the shared atmospheric errors; for an uncorrected
	// receiver the improvement must be large (paper §3.3: satellite-
	// dependent errors can be compensated).
	if meanCorr >= meanPlain*0.8 {
		t.Errorf("DGPS did not help: %.3f m -> %.3f m", meanPlain, meanCorr)
	}
}

func TestApplyDropsUncorrectedSatellites(t *testing.T) {
	_, roverGen, _ := buildPair(t)
	epoch, err := roverGen.EpochAt(500)
	if err != nil {
		t.Fatal(err)
	}
	corr := Corrections{epoch.Obs[0].PRN: 1.5}
	applied := Apply(epoch, corr)
	if len(applied.Obs) != 1 {
		t.Fatalf("Apply kept %d satellites, want 1", len(applied.Obs))
	}
	if got := applied.Obs[0].Pseudorange - epoch.Obs[0].Pseudorange; got != 1.5 {
		t.Errorf("correction applied = %v, want 1.5", got)
	}
	// The input epoch must be untouched.
	fresh, err := roverGen.EpochAt(500)
	if err != nil {
		t.Fatal(err)
	}
	if epoch.Obs[0].Pseudorange != fresh.Obs[0].Pseudorange {
		t.Error("Apply mutated the input epoch")
	}
}

func TestComputeCorrectionsNeedsFourSatellites(t *testing.T) {
	refGen, _, _ := buildPair(t)
	ref := NewReference(refGen.Station().Pos)
	epoch, err := refGen.EpochAt(500)
	if err != nil {
		t.Fatal(err)
	}
	epoch.Obs = epoch.Obs[:3]
	if _, err := ref.ComputeCorrections(epoch); err == nil {
		t.Error("ComputeCorrections with 3 satellites succeeded")
	}
}

// With zero receiver-local noise, DGPS-corrected pseudo-ranges at the
// reference position itself must equal geometric ranges plus the rover
// clock bias exactly: the corrections fully cancel everything shared.
func TestCorrectionsExactAtReference(t *testing.T) {
	st, err := scenario.StationByID("FAI1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.DefaultConfig(9)
	cfg.NoiseSigma = 0
	cfg.Multipath = false
	cfg.IonoRemainder = 0
	cfg.TropoRemainder = 0
	gen := scenario.NewGenerator(st, cfg, scenario.WithClockModel(&clock.SteeringModel{Offset: 1e-7}))
	ref := NewReference(st.Pos)
	epoch, err := gen.EpochAt(1000)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := ref.ComputeCorrections(epoch)
	if err != nil {
		t.Fatal(err)
	}
	applied := Apply(epoch, corr)
	biasMeters := 1e-7 * geo.SpeedOfLight
	for _, o := range applied.Obs {
		want := st.Pos.DistanceTo(o.Pos) + biasMeters
		if d := o.Pseudorange - want; d > 1e-3 || d < -1e-3 {
			t.Errorf("PRN %d corrected pseudorange off by %v m", o.PRN, d)
		}
	}
}

func adapt(e scenario.Epoch) []core.Observation {
	obs := make([]core.Observation, 0, len(e.Obs))
	for _, o := range e.Obs {
		obs = append(obs, core.Observation{Pos: o.Pos, Pseudorange: o.Pseudorange, Elevation: o.Elevation})
	}
	return obs
}
