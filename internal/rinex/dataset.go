package rinex

import (
	"fmt"

	"gpsdl/internal/geo"
	"gpsdl/internal/orbit"
	"gpsdl/internal/scenario"
)

// ToDataset reconstructs a solvable dataset from an observation file and
// the matching navigation message: for each observation, the satellite
// position at signal emission is recomputed from the broadcast ephemeris
// by iterating the light-time equation from the header's approximate
// receiver position (the standard receiver processing chain).
func ToDataset(obs *ObsFile, sats []orbit.Satellite) (*scenario.Dataset, error) {
	byPRN := make(map[int]orbit.Satellite, len(sats))
	for _, s := range sats {
		byPRN[s.PRN] = s
	}
	ds := &scenario.Dataset{
		Station: scenario.Station{
			ID:  obs.Marker,
			Pos: obs.ApproxPos,
		},
		Config: scenario.Config{Step: obs.Interval},
		Epochs: make([]scenario.Epoch, 0, len(obs.Epochs)),
	}
	for _, oe := range obs.Epochs {
		epoch := scenario.Epoch{T: oe.T, Obs: make([]scenario.SatObs, 0, len(oe.Sats))}
		for _, rec := range oe.Sats {
			sat, ok := byPRN[rec.PRN]
			if !ok {
				return nil, fmt.Errorf("rinex: PRN %d observed but absent from navigation data: %w",
					rec.PRN, ErrBadNav)
			}
			pos, err := emissionPosition(sat, obs.ApproxPos, oe.T)
			if err != nil {
				return nil, fmt.Errorf("rinex: propagate PRN %d at t=%v: %w", rec.PRN, oe.T, err)
			}
			elev, _ := geo.ElevationAzimuth(obs.ApproxPos, pos)
			epoch.Obs = append(epoch.Obs, scenario.SatObs{
				PRN:         rec.PRN,
				Pos:         pos,
				Pseudorange: rec.C1,
				Elevation:   elev,
			})
		}
		ds.Epochs = append(ds.Epochs, epoch)
	}
	return ds, nil
}

// emissionPosition mirrors the scenario generator's light-time solution:
// satellite position at t−τ expressed in the reception-time frame.
func emissionPosition(sat orbit.Satellite, recv geo.ECEF, t float64) (geo.ECEF, error) {
	tau := 0.075
	var pos geo.ECEF
	for i := 0; i < 3; i++ {
		p, err := sat.Orbit.PositionECEF(t - tau)
		if err != nil {
			return geo.ECEF{}, err
		}
		pos = geo.RotateEarth(p, tau)
		tau = recv.DistanceTo(pos) / geo.SpeedOfLight
	}
	return pos, nil
}
