package rinex

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"gpsdl/internal/orbit"
)

// WriteNav writes the constellation's ephemerides as a RINEX 2.11 GPS
// navigation message file: one 8-line record per satellite carrying the
// Keplerian elements the orbit package propagates (unused broadcast fields
// are zero).
func WriteNav(w io.Writer, sats []orbit.Satellite) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(headerLine("     2.11           N: GPS NAV DATA", "RINEX VERSION / TYPE"))   //nolint:errcheck
	bw.WriteString(headerLine("gpsdl               gpsdl reproduction", "PGM / RUN BY / DATE")) //nolint:errcheck
	bw.WriteString(headerLine("", "END OF HEADER"))                                             //nolint:errcheck
	for _, s := range sats {
		e := s.Orbit
		// Line 0: PRN, epoch (zeros: our Toe is seconds-relative), clock.
		fmt.Fprintf(bw, "%2d 00  1  1  0  0  0.0%s%s%s\n",
			s.PRN, formatD(s.ClockAF0), formatD(s.ClockAF1), formatD(0))
		// Broadcast orbit lines, 3X + 4 D19.12 fields each.
		writeNavLine(bw, 0, 0, 0, e.MeanAnomaly)                           // IODE, Crs, Δn, M0
		writeNavLine(bw, 0, e.Eccentricity, 0, math.Sqrt(e.SemiMajorAxis)) // Cuc, e, Cus, sqrtA
		writeNavLine(bw, e.Toe, 0, e.RAAN, 0)                              // Toe, Cic, Ω0, Cis
		writeNavLine(bw, e.Inclination, 0, e.ArgPerigee, e.RAANRate)       // i0, Crc, ω, Ω̇
		writeNavLine(bw, 0, 0, 0, 0)                                       // IDOT, codes, week, L2P
		writeNavLine(bw, 0, 0, 0, 0)                                       // accuracy, health, TGD, IODC
		writeNavLine(bw, 0, 0, 0, 0)                                       // TTM, fit
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("rinex: flush nav: %w", err)
	}
	return nil
}

func writeNavLine(w io.Writer, a, b, c, d float64) {
	fmt.Fprintf(w, "   %s%s%s%s\n", formatD(a), formatD(b), formatD(c), formatD(d))
}

// ReadNav parses a navigation file written by WriteNav and returns the
// reconstructed satellites.
func ReadNav(r io.Reader) ([]orbit.Satellite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	// Skip header.
	headerDone := false
	for sc.Scan() {
		_, label := splitHeader(sc.Text())
		if label == "END OF HEADER" {
			headerDone = true
			break
		}
	}
	if !headerDone {
		return nil, fmt.Errorf("rinex: nav missing END OF HEADER: %w", ErrBadHeader)
	}
	var sats []orbit.Satellite
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		// Record line 0: PRN in cols 1-2, clock terms in the last 3 fields.
		if len(line) < 22 {
			return nil, fmt.Errorf("rinex: short nav record %q: %w", line, ErrBadNav)
		}
		prn, err := strconv.Atoi(strings.TrimSpace(line[:2]))
		if err != nil {
			return nil, fmt.Errorf("rinex: nav PRN in %q: %w", line, ErrBadNav)
		}
		af0, af1, err := parseClockTerms(line)
		if err != nil {
			return nil, err
		}
		var fields [7][4]float64
		for li := 0; li < 7; li++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("rinex: truncated nav record for PRN %d: %w", prn, ErrBadNav)
			}
			vals, err := parseNavLine(sc.Text())
			if err != nil {
				return nil, fmt.Errorf("rinex: PRN %d orbit line %d: %w", prn, li+1, err)
			}
			fields[li] = vals
		}
		sqrtA := fields[1][3]
		sats = append(sats, orbit.Satellite{
			PRN:      prn,
			ClockAF0: af0,
			ClockAF1: af1,
			Orbit: orbit.Elements{
				MeanAnomaly:   fields[0][3],
				Eccentricity:  fields[1][1],
				SemiMajorAxis: sqrtA * sqrtA,
				Toe:           fields[2][0],
				RAAN:          fields[2][2],
				Inclination:   fields[3][0],
				ArgPerigee:    fields[3][2],
				RAANRate:      fields[3][3],
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rinex: scan nav: %w", err)
	}
	return sats, nil
}

// parseClockTerms extracts af0 and af1 from a nav record's first line (the
// last three 19-char fields are af0, af1, af2).
func parseClockTerms(line string) (af0, af1 float64, err error) {
	if len(line) < 22+19*2 {
		return 0, 0, fmt.Errorf("rinex: nav clock line %q: %w", line, ErrBadNav)
	}
	af0, err = parseD(line[22 : 22+19])
	if err != nil {
		return 0, 0, fmt.Errorf("rinex: af0: %w", ErrBadNav)
	}
	af1, err = parseD(line[22+19 : 22+38])
	if err != nil {
		return 0, 0, fmt.Errorf("rinex: af1: %w", ErrBadNav)
	}
	return af0, af1, nil
}

// parseNavLine parses a 3X + 4 D19.12 broadcast orbit line.
func parseNavLine(line string) ([4]float64, error) {
	var out [4]float64
	if len(line) < 3 {
		return out, fmt.Errorf("rinex: short orbit line %q: %w", line, ErrBadNav)
	}
	body := line[3:]
	for i := 0; i < 4; i++ {
		lo := i * 19
		if lo >= len(body) {
			break
		}
		hi := lo + 19
		if hi > len(body) {
			hi = len(body)
		}
		v, err := parseD(body[lo:hi])
		if err != nil {
			return out, fmt.Errorf("rinex: orbit field %d: %w", i, ErrBadNav)
		}
		out[i] = v
	}
	return out, nil
}
