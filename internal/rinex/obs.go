package rinex

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpsdl/internal/geo"
	"gpsdl/internal/scenario"
)

// ObsRecord is one satellite's measurement in an epoch.
type ObsRecord struct {
	PRN int
	C1  float64 // pseudo-range on L1 C/A, meters
}

// ObsEpoch is one observation epoch.
type ObsEpoch struct {
	// T is seconds from the file's first-observation time.
	T    float64
	Sats []ObsRecord
}

// ObsFile is a parsed RINEX observation file.
type ObsFile struct {
	Marker    string
	ApproxPos geo.ECEF
	Interval  float64
	// Year, Month, Day of the first observation.
	Year, Month, Day int
	Epochs           []ObsEpoch
}

// WriteObs writes the dataset's pseudo-ranges as a RINEX 2.11 observation
// file (observation type C1, epoch flag 0).
func WriteObs(w io.Writer, ds *scenario.Dataset) error {
	year, month, day, err := parseDate(ds.Station.Date)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	writeHeader := func(content, label string) {
		bw.WriteString(headerLine(content, label)) //nolint:errcheck // flushed below
	}
	writeHeader("     2.11           OBSERVATION DATA    G (GPS)", "RINEX VERSION / TYPE")
	writeHeader("gpsdl               gpsdl reproduction", "PGM / RUN BY / DATE")
	writeHeader(ds.Station.ID, "MARKER NAME")
	writeHeader(fmt.Sprintf("%14.4f%14.4f%14.4f",
		ds.Station.Pos.X, ds.Station.Pos.Y, ds.Station.Pos.Z), "APPROX POSITION XYZ")
	writeHeader("     1    C1", "# / TYPES OF OBSERV")
	writeHeader(fmt.Sprintf("%10.3f", ds.Config.Step), "INTERVAL")
	writeHeader(fmt.Sprintf("%6d%6d%6d%6d%6d%13.7f     GPS", year, month, day, 0, 0, 0.0),
		"TIME OF FIRST OBS")
	writeHeader("", "END OF HEADER")

	for i := range ds.Epochs {
		e := &ds.Epochs[i]
		h, m, s := secondsToHMS(e.T)
		// Epoch line: yy mm dd hh mm ss.sssssss flag numsats PRN list.
		fmt.Fprintf(bw, " %02d %2d %2d %2d %2d%11.7f  0%3d", year%100, month, day, h, m, s, len(e.Obs))
		for j, o := range e.Obs {
			if j > 0 && j%12 == 0 {
				// Continuation line: PRNs continue in column 33.
				bw.WriteString("\n                                ") //nolint:errcheck
			}
			fmt.Fprintf(bw, "G%02d", o.PRN)
		}
		bw.WriteByte('\n') //nolint:errcheck
		for _, o := range e.Obs {
			fmt.Fprintf(bw, "%14.3f\n", o.Pseudorange)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("rinex: flush obs: %w", err)
	}
	return nil
}

// ReadObs parses a RINEX 2.11 observation file written by WriteObs (or any
// single-type C1 GPS file with flag-0 epochs).
func ReadObs(r io.Reader) (*ObsFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	f := &ObsFile{}
	// Header.
	headerDone := false
	for sc.Scan() {
		content, label := splitHeader(sc.Text())
		switch label {
		case "MARKER NAME":
			f.Marker = strings.TrimSpace(content)
		case "APPROX POSITION XYZ":
			fields := strings.Fields(content)
			if len(fields) != 3 {
				return nil, fmt.Errorf("rinex: approx position %q: %w", content, ErrBadHeader)
			}
			vals := make([]float64, 3)
			for i, fs := range fields {
				v, err := strconv.ParseFloat(fs, 64)
				if err != nil {
					return nil, fmt.Errorf("rinex: approx position %q: %w", content, ErrBadHeader)
				}
				vals[i] = v
			}
			f.ApproxPos = geo.ECEF{X: vals[0], Y: vals[1], Z: vals[2]}
		case "INTERVAL":
			v, err := strconv.ParseFloat(strings.TrimSpace(content), 64)
			if err != nil {
				return nil, fmt.Errorf("rinex: interval %q: %w", content, ErrBadHeader)
			}
			f.Interval = v
		case "TIME OF FIRST OBS":
			fields := strings.Fields(content)
			if len(fields) < 3 {
				return nil, fmt.Errorf("rinex: first obs %q: %w", content, ErrBadHeader)
			}
			var err error
			if f.Year, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("rinex: first obs year: %w", ErrBadHeader)
			}
			if f.Month, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("rinex: first obs month: %w", ErrBadHeader)
			}
			if f.Day, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("rinex: first obs day: %w", ErrBadHeader)
			}
		case "END OF HEADER":
			headerDone = true
		}
		if headerDone {
			break
		}
	}
	if !headerDone {
		return nil, fmt.Errorf("rinex: missing END OF HEADER: %w", ErrBadHeader)
	}
	// Epochs.
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		epoch, prns, err := parseEpochLine(line)
		if err != nil {
			return nil, err
		}
		// PRN continuation lines.
		for len(prns) < epoch.n {
			if !sc.Scan() {
				return nil, fmt.Errorf("rinex: truncated PRN list: %w", ErrBadEpoch)
			}
			cont := sc.Text()
			if len(cont) < 32 {
				return nil, fmt.Errorf("rinex: short PRN continuation %q: %w", cont, ErrBadEpoch)
			}
			more, err := parsePRNList(cont[32:], epoch.n-len(prns))
			if err != nil {
				return nil, err
			}
			if len(more) == 0 {
				return nil, fmt.Errorf("rinex: empty PRN continuation %q: %w", cont, ErrBadEpoch)
			}
			prns = append(prns, more...)
		}
		oe := ObsEpoch{T: epoch.t, Sats: make([]ObsRecord, 0, epoch.n)}
		for _, prn := range prns {
			if !sc.Scan() {
				return nil, fmt.Errorf("rinex: truncated observations: %w", ErrBadEpoch)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(sc.Text()), 64)
			if err != nil {
				return nil, fmt.Errorf("rinex: bad observation %q: %w", sc.Text(), ErrBadEpoch)
			}
			oe.Sats = append(oe.Sats, ObsRecord{PRN: prn, C1: v})
		}
		f.Epochs = append(f.Epochs, oe)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rinex: scan: %w", err)
	}
	return f, nil
}

// epochHeader is the parsed fixed part of an epoch line.
type epochHeader struct {
	t float64
	n int
}

// parseEpochLine parses the fixed fields and the first PRN block of an
// epoch line.
func parseEpochLine(line string) (epochHeader, []int, error) {
	if len(line) < 32 {
		return epochHeader{}, nil, fmt.Errorf("rinex: short epoch line %q: %w", line, ErrBadEpoch)
	}
	fields := strings.Fields(line[:32])
	// yy mm dd hh mm ss.sssssss flag numsats
	if len(fields) < 8 {
		return epochHeader{}, nil, fmt.Errorf("rinex: epoch line %q: %w", line, ErrBadEpoch)
	}
	hh, err1 := strconv.Atoi(fields[3])
	mm, err2 := strconv.Atoi(fields[4])
	ss, err3 := strconv.ParseFloat(fields[5], 64)
	flag, err4 := strconv.Atoi(fields[6])
	n, err5 := strconv.Atoi(fields[7])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
		return epochHeader{}, nil, fmt.Errorf("rinex: epoch fields in %q: %w", line, ErrBadEpoch)
	}
	if flag != 0 {
		return epochHeader{}, nil, fmt.Errorf("rinex: unsupported epoch flag %d: %w", flag, ErrBadEpoch)
	}
	// A GPS epoch carries at most a few dozen satellites; anything outside
	// this band is a corrupt count that would otherwise size allocations.
	if n < 0 || n > 99 {
		return epochHeader{}, nil, fmt.Errorf("rinex: satellite count %d out of range: %w", n, ErrBadEpoch)
	}
	prns, err := parsePRNList(line[32:], n)
	if err != nil {
		return epochHeader{}, nil, err
	}
	return epochHeader{t: float64(hh*3600+mm*60) + ss, n: n}, prns, nil
}

// parsePRNList parses up to limit "Gnn" entries from s.
func parsePRNList(s string, limit int) ([]int, error) {
	out := make([]int, 0, limit)
	for i := 0; i+3 <= len(s) && len(out) < limit; i += 3 {
		entry := s[i : i+3]
		if strings.TrimSpace(entry) == "" {
			break
		}
		if entry[0] != 'G' {
			return nil, fmt.Errorf("rinex: non-GPS satellite %q: %w", entry, ErrBadEpoch)
		}
		prn, err := strconv.Atoi(strings.TrimSpace(entry[1:]))
		if err != nil {
			return nil, fmt.Errorf("rinex: bad PRN %q: %w", entry, ErrBadEpoch)
		}
		out = append(out, prn)
	}
	return out, nil
}
