package rinex

import (
	"math"
	"strings"
	"testing"
)

func TestHeaderLineWidths(t *testing.T) {
	line := headerLine("content", "LABEL")
	if len(line) != 81 { // 80 chars + newline
		t.Errorf("header line length = %d, want 81", len(line))
	}
	if !strings.HasPrefix(line, "content") {
		t.Errorf("content not at start: %q", line)
	}
	if line[60:65] != "LABEL" {
		t.Errorf("label not at column 61: %q", line[60:])
	}
}

func TestSplitHeader(t *testing.T) {
	content, label := splitHeader(headerLine("abc", "MY LABEL")[:80])
	if strings.TrimSpace(content) != "abc" {
		t.Errorf("content = %q", content)
	}
	if label != "MY LABEL" {
		t.Errorf("label = %q", label)
	}
	// Short lines have no label region.
	content, label = splitHeader("short")
	if content != "short" || label != "" {
		t.Errorf("short line split = %q, %q", content, label)
	}
}

func TestSecondsToHMS(t *testing.T) {
	tests := []struct {
		t    float64
		h, m int
		s    float64
	}{
		{0, 0, 0, 0},
		{59.5, 0, 0, 59.5},
		{60, 0, 1, 0},
		{3661.25, 1, 1, 1.25},
		{86399, 23, 59, 59},
	}
	for _, tt := range tests {
		h, m, s := secondsToHMS(tt.t)
		if h != tt.h || m != tt.m || math.Abs(s-tt.s) > 1e-9 {
			t.Errorf("secondsToHMS(%v) = %d:%d:%v, want %d:%d:%v", tt.t, h, m, s, tt.h, tt.m, tt.s)
		}
	}
}

func TestFormatDWidthAlwaysNineteen(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 1e300, -1e-300, 1e89, -1e-89, 3.14159e-7, 2.65e7} {
		if got := formatD(v); len(got) != 19 {
			t.Errorf("formatD(%v) width %d: %q", v, len(got), got)
		}
	}
}

func TestParsePRNListEdgeCases(t *testing.T) {
	prns, err := parsePRNList("G01G02G31", 3)
	if err != nil || len(prns) != 3 || prns[2] != 31 {
		t.Errorf("parsePRNList = %v, %v", prns, err)
	}
	// Limit respected.
	prns, err = parsePRNList("G01G02G03", 2)
	if err != nil || len(prns) != 2 {
		t.Errorf("limited parsePRNList = %v, %v", prns, err)
	}
	// Trailing blanks terminate.
	prns, err = parsePRNList("G07   ", 5)
	if err != nil || len(prns) != 1 {
		t.Errorf("blank-terminated parsePRNList = %v, %v", prns, err)
	}
	if _, err := parsePRNList("Gxx", 1); err == nil {
		t.Error("bad PRN digits accepted")
	}
}
