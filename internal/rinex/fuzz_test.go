package rinex

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gpsdl/internal/orbit"
	"gpsdl/internal/scenario"
)

// Fuzz targets for the two RINEX readers. These parsers face on-disk
// input from outside the repository (IGS archives, receiver logs), so
// they must never panic, and anything they accept must survive a
// write-back round trip: a parsed constellation re-serialized by the
// writer has to parse again. Seed corpora live under testdata/fuzz/.

// fuzzObsSeed renders a small generated dataset as an observation file.
func fuzzObsSeed(f *testing.F) string {
	f.Helper()
	st, err := scenario.StationByID("SRZN")
	if err != nil {
		f.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(17))
	ds, err := g.GenerateRange(0, 10)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteObs(&buf, ds); err != nil {
		f.Fatal(err)
	}
	return buf.String()
}

func FuzzReadObs(f *testing.F) {
	f.Add(fuzzObsSeed(f))
	f.Add(obsHeader())
	f.Add(obsHeader() + " 09  8 12  0  0  0.0000000  0  2G01G02\n 20000000.000\n 21000000.000\n")
	f.Add("garbage with no header\n")
	f.Fuzz(func(t *testing.T, data string) {
		obs, err := ReadObs(strings.NewReader(data))
		if err != nil {
			return
		}
		if obs == nil {
			t.Fatal("ReadObs returned nil file with nil error")
		}
		// The parser enforces the declared satellite count per epoch; a
		// mismatch slipping through would desynchronize every downstream
		// consumer of the epoch stream.
		for i, e := range obs.Epochs {
			for _, s := range e.Sats {
				if s.PRN < 0 || s.PRN > 99 {
					t.Fatalf("epoch %d: PRN %d outside the two-digit field", i, s.PRN)
				}
			}
		}
	})
}

// fitsD reports whether formatD can represent v in its fixed 19-char
// field (12-digit mantissa, two-digit exponent). Parsed files can carry
// values outside that range — parseD delegates to strconv — and those
// are legitimately not write-back-able.
func fitsD(v float64) bool {
	if v == 0 {
		return true
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	a := math.Abs(v)
	return a > 1e-80 && a < 1e80
}

// navWritable reports whether WriteNav can faithfully serialize the
// satellite back into aligned D19.12 columns.
func navWritable(s orbit.Satellite) bool {
	e := s.Orbit
	if e.SemiMajorAxis < 0 || !fitsD(math.Sqrt(e.SemiMajorAxis)) {
		return false
	}
	for _, v := range []float64{s.ClockAF0, s.ClockAF1, e.MeanAnomaly,
		e.Eccentricity, e.Toe, e.RAAN, e.Inclination, e.ArgPerigee, e.RAANRate} {
		if !fitsD(v) {
			return false
		}
	}
	return true
}

func FuzzReadNav(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteNav(&buf, orbit.DefaultConstellation().Satellites()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("no header here\n")
	f.Fuzz(func(t *testing.T, data string) {
		sats, err := ReadNav(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, s := range sats {
			if !navWritable(s) {
				return
			}
		}
		var out bytes.Buffer
		if err := WriteNav(&out, sats); err != nil {
			t.Fatalf("WriteNav failed on parsed satellites: %v", err)
		}
		back, err := ReadNav(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written nav failed: %v", err)
		}
		if len(back) != len(sats) {
			t.Fatalf("round trip kept %d of %d satellites", len(back), len(sats))
		}
		for i := range back {
			if back[i].PRN != sats[i].PRN {
				t.Fatalf("satellite %d PRN %d != %d after round trip", i, back[i].PRN, sats[i].PRN)
			}
		}
	})
}
