// Package rinex reads and writes RINEX 2.11 files — the format the paper's
// CORS datasets were distributed in [8]. Observation files carry the
// per-epoch C1 pseudo-ranges; navigation files carry the Keplerian
// broadcast ephemerides from which satellite coordinates are recomputed.
// Together they round-trip a scenario.Dataset through the same file formats
// a real receiver pipeline would use.
//
// The implementation covers the GPS subset of RINEX 2.11 that the
// reproduction needs: C1 observations, single-epoch flags, and the
// ephemeris fields consumed by the orbit package (unused broadcast fields
// are written as zeros and ignored on read).
package rinex

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Format errors.
var (
	// ErrBadHeader is returned when a required header line is missing or
	// malformed.
	ErrBadHeader = errors.New("rinex: malformed header")
	// ErrBadEpoch is returned when an epoch record cannot be parsed.
	ErrBadEpoch = errors.New("rinex: malformed epoch record")
	// ErrBadNav is returned when a navigation record cannot be parsed.
	ErrBadNav = errors.New("rinex: malformed navigation record")
)

// formatD renders a float in the RINEX D-exponent style: 0.123456789012D+01
// in a 19-character field. The two-digit exponent of the format limits the
// magnitude range to (1e-90, 1e90); values below flush to zero and values
// above saturate — no physical RINEX quantity approaches either bound.
func formatD(v float64) string {
	if v > -1e-90 && v < 1e-90 {
		v = 0
	} else if v > 1e90 {
		v = 1e90
	} else if v < -1e90 {
		v = -1e90
	}
	s := strconv.FormatFloat(v, 'E', 12, 64) // e.g. 1.234567890123E+01
	// Convert to RINEX's leading-zero mantissa: shift the decimal point.
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	ePos := strings.IndexByte(s, 'E')
	mant := s[:ePos]
	exp, err := strconv.Atoi(s[ePos+1:])
	if err != nil {
		// Unreachable for FormatFloat output; keep a safe fallback.
		exp = 0
	}
	digits := strings.Replace(mant, ".", "", 1)
	if v != 0 {
		exp++
	}
	out := "0." + digits[:12] + "D" + fmt.Sprintf("%+03d", exp)
	if neg {
		out = "-" + out
	}
	return fmt.Sprintf("%19s", out)
}

// parseD parses a RINEX D-exponent float (accepts D, d, E, e exponents).
func parseD(s string) (float64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	t = strings.NewReplacer("D", "E", "d", "e").Replace(t)
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("rinex: bad float %q: %w", s, err)
	}
	return v, nil
}

// headerLine renders a RINEX header line: 60 columns of content plus the
// right-aligned label region.
func headerLine(content, label string) string {
	return fmt.Sprintf("%-60s%-20s\n", content, label)
}

// splitHeader splits a header line into content and label.
func splitHeader(line string) (content, label string) {
	if len(line) <= 60 {
		return line, ""
	}
	return line[:60], strings.TrimSpace(line[60:])
}

// parseDate converts the station date format "2009/08/12" to RINEX
// year/month/day components.
func parseDate(date string) (year, month, day int, err error) {
	parts := strings.Split(date, "/")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("rinex: bad date %q: %w", date, ErrBadHeader)
	}
	year, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("rinex: bad year in %q: %w", date, ErrBadHeader)
	}
	month, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("rinex: bad month in %q: %w", date, ErrBadHeader)
	}
	day, err = strconv.Atoi(parts[2])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("rinex: bad day in %q: %w", date, ErrBadHeader)
	}
	return year, month, day, nil
}

// secondsToHMS splits seconds-of-day into h, m and fractional seconds.
func secondsToHMS(t float64) (h, m int, s float64) {
	h = int(t) / 3600
	m = (int(t) % 3600) / 60
	s = t - float64(h*3600+m*60)
	return h, m, s
}
