package rinex

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gpsdl/internal/orbit"
	"gpsdl/internal/scenario"
)

func TestFormatDKnownValues(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, " 0.000000000000D+00"},
		{1, " 0.100000000000D+01"},
		{-2.5, "-0.250000000000D+01"},
		{1e-7, " 0.100000000000D-06"},
	}
	for _, tt := range tests {
		got := formatD(tt.v)
		if len(got) != 19 {
			t.Errorf("formatD(%v) has width %d: %q", tt.v, len(got), got)
		}
		if strings.TrimSpace(got) != strings.TrimSpace(tt.want) {
			t.Errorf("formatD(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

// Property: formatD/parseD round-trips to 12 significant digits.
func TestPropFormatDRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := r.NormFloat64() * math.Pow(10, float64(r.Intn(16)-8))
		// Stay inside the two-digit-exponent range formatD supports.
		s := formatD(v)
		back, err := parseD(s)
		if err != nil {
			return false
		}
		if v == 0 {
			return back == 0
		}
		return math.Abs(back-v) < 1e-11*math.Abs(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseDVariants(t *testing.T) {
	for _, s := range []string{" 0.123D+01", "0.123E+01", "0.123d+01", "0.123e+01"} {
		v, err := parseD(s)
		if err != nil {
			t.Errorf("parseD(%q): %v", s, err)
			continue
		}
		if math.Abs(v-1.23) > 1e-12 {
			t.Errorf("parseD(%q) = %v", s, v)
		}
	}
	if v, err := parseD("   "); err != nil || v != 0 {
		t.Errorf("parseD(blank) = %v, %v", v, err)
	}
	if _, err := parseD("not-a-number"); err == nil {
		t.Error("parseD(garbage) succeeded")
	}
}

func TestParseDate(t *testing.T) {
	y, m, d, err := parseDate("2009/08/12")
	if err != nil || y != 2009 || m != 8 || d != 12 {
		t.Errorf("parseDate = %d/%d/%d, %v", y, m, d, err)
	}
	for _, bad := range []string{"2009-08-12", "2009/08", "y/8/12", "2009/m/12", "2009/08/d"} {
		if _, _, _, err := parseDate(bad); err == nil {
			t.Errorf("parseDate(%q) succeeded", bad)
		}
	}
}

func genDataset(t *testing.T, id string, secs float64) *scenario.Dataset {
	t.Helper()
	st, err := scenario.StationByID(id)
	if err != nil {
		t.Fatal(err)
	}
	g := scenario.NewGenerator(st, scenario.DefaultConfig(17))
	ds, err := g.GenerateRange(0, secs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestObsRoundTrip(t *testing.T) {
	ds := genDataset(t, "SRZN", 30)
	var buf bytes.Buffer
	if err := WriteObs(&buf, ds); err != nil {
		t.Fatal(err)
	}
	f, err := ReadObs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Marker != "SRZN" {
		t.Errorf("marker = %q", f.Marker)
	}
	if f.ApproxPos.DistanceTo(ds.Station.Pos) > 1e-3 {
		t.Errorf("approx position off by %v m", f.ApproxPos.DistanceTo(ds.Station.Pos))
	}
	if f.Interval != 1 {
		t.Errorf("interval = %v", f.Interval)
	}
	if f.Year != 2009 || f.Month != 8 || f.Day != 12 {
		t.Errorf("first obs date = %d/%d/%d", f.Year, f.Month, f.Day)
	}
	if len(f.Epochs) != ds.Len() {
		t.Fatalf("epochs = %d, want %d", len(f.Epochs), ds.Len())
	}
	for i, oe := range f.Epochs {
		want := ds.Epochs[i]
		if oe.T != want.T {
			t.Errorf("epoch %d time %v, want %v", i, oe.T, want.T)
		}
		if len(oe.Sats) != len(want.Obs) {
			t.Fatalf("epoch %d sats = %d, want %d", i, len(oe.Sats), len(want.Obs))
		}
		for j, rec := range oe.Sats {
			if rec.PRN != want.Obs[j].PRN {
				t.Errorf("epoch %d sat %d PRN %d, want %d", i, j, rec.PRN, want.Obs[j].PRN)
			}
			// F14.3 format: mm precision.
			if math.Abs(rec.C1-want.Obs[j].Pseudorange) > 0.0011 {
				t.Errorf("epoch %d sat %d C1 %v, want %v", i, j, rec.C1, want.Obs[j].Pseudorange)
			}
		}
	}
}

func TestObsEpochWithManySatellitesUsesContinuation(t *testing.T) {
	// Build an artificial epoch with 14 satellites to force a PRN
	// continuation line.
	ds := genDataset(t, "YYR1", 1)
	e := &ds.Epochs[0]
	for prn := 40; len(e.Obs) < 14; prn++ {
		o := e.Obs[0]
		o.PRN = prn % 100
		e.Obs = append(e.Obs, o)
	}
	var buf bytes.Buffer
	if err := WriteObs(&buf, ds); err != nil {
		t.Fatal(err)
	}
	f, err := ReadObs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Epochs[0].Sats); got != 14 {
		t.Errorf("read %d sats, want 14", got)
	}
}

func TestReadObsRejectsGarbage(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"no header", "garbage\nmore garbage\n"},
		{"bad epoch flag", obsHeader() + " 09  8 12  0  0  0.0000000  4  1G01\n 20000000.000\n"},
		{"non-GPS sat", obsHeader() + " 09  8 12  0  0  0.0000000  0  1R01\n 20000000.000\n"},
		{"truncated observations", obsHeader() + " 09  8 12  0  0  0.0000000  0  2G01G02\n 20000000.000\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadObs(strings.NewReader(tt.input)); err == nil {
				t.Error("ReadObs succeeded on malformed input")
			}
		})
	}
}

func obsHeader() string {
	var sb strings.Builder
	sb.WriteString(headerLine("     2.11           OBSERVATION DATA    G (GPS)", "RINEX VERSION / TYPE"))
	sb.WriteString(headerLine("SRZN", "MARKER NAME"))
	sb.WriteString(headerLine("  3623420.0320 -5214015.4340   602359.0960", "APPROX POSITION XYZ"))
	sb.WriteString(headerLine("     1.000", "INTERVAL"))
	sb.WriteString(headerLine("  2009     8    12     0     0    0.0000000     GPS", "TIME OF FIRST OBS"))
	sb.WriteString(headerLine("", "END OF HEADER"))
	return sb.String()
}

func TestNavRoundTrip(t *testing.T) {
	sats := orbit.DefaultConstellation().Satellites()
	var buf bytes.Buffer
	if err := WriteNav(&buf, sats); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNav(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sats) {
		t.Fatalf("read %d satellites, want %d", len(back), len(sats))
	}
	for i, s := range sats {
		b := back[i]
		if b.PRN != s.PRN {
			t.Errorf("sat %d PRN %d, want %d", i, b.PRN, s.PRN)
		}
		if math.Abs(b.ClockAF0-s.ClockAF0) > 1e-16 {
			t.Errorf("PRN %d af0 %v, want %v", s.PRN, b.ClockAF0, s.ClockAF0)
		}
		// Orbits must propagate to nearly identical positions.
		p1, err1 := s.Orbit.PositionECEF(43210)
		p2, err2 := b.Orbit.PositionECEF(43210)
		if err1 != nil || err2 != nil {
			t.Fatalf("propagation: %v, %v", err1, err2)
		}
		if d := p1.DistanceTo(p2); d > 0.01 {
			t.Errorf("PRN %d propagated position differs by %v m after round trip", s.PRN, d)
		}
	}
}

func TestReadNavRejectsGarbage(t *testing.T) {
	if _, err := ReadNav(strings.NewReader("no header here\n")); err == nil {
		t.Error("ReadNav succeeded without header")
	}
	header := headerLine("     2.11           N: GPS NAV DATA", "RINEX VERSION / TYPE") +
		headerLine("", "END OF HEADER")
	if _, err := ReadNav(strings.NewReader(header + "xx bad record\n")); err == nil {
		t.Error("ReadNav succeeded on malformed record")
	}
}

// Full pipeline: dataset -> RINEX obs+nav -> reconstructed dataset must be
// solvable with the same accuracy as the original.
func TestToDatasetReconstruction(t *testing.T) {
	ds := genDataset(t, "FAI1", 10)
	var obsBuf, navBuf bytes.Buffer
	if err := WriteObs(&obsBuf, ds); err != nil {
		t.Fatal(err)
	}
	if err := WriteNav(&navBuf, orbit.DefaultConstellation().Satellites()); err != nil {
		t.Fatal(err)
	}
	obsFile, err := ReadObs(&obsBuf)
	if err != nil {
		t.Fatal(err)
	}
	sats, err := ReadNav(&navBuf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToDataset(obsFile, sats)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("reconstructed %d epochs, want %d", back.Len(), ds.Len())
	}
	for i := range ds.Epochs {
		for j := range ds.Epochs[i].Obs {
			orig := ds.Epochs[i].Obs[j]
			rec := back.Epochs[i].Obs[j]
			if rec.PRN != orig.PRN {
				t.Fatalf("epoch %d obs %d PRN mismatch", i, j)
			}
			// Reconstructed satellite positions must match the
			// generator's to sub-meter (same ephemeris, same light-time
			// solution; the only differences are F14.3 quantization of
			// the pseudorange feeding the light-time iteration).
			if d := rec.Pos.DistanceTo(orig.Pos); d > 1 {
				t.Errorf("epoch %d PRN %d position differs by %v m", i, orig.PRN, d)
			}
		}
	}
}

func TestToDatasetMissingEphemeris(t *testing.T) {
	ds := genDataset(t, "FAI1", 2)
	var obsBuf bytes.Buffer
	if err := WriteObs(&obsBuf, ds); err != nil {
		t.Fatal(err)
	}
	obsFile, err := ReadObs(&obsBuf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToDataset(obsFile, nil); err == nil {
		t.Error("ToDataset with empty nav succeeded")
	}
}
