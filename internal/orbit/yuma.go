package orbit

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// YUMA almanac support: the other standard distribution format for GPS
// orbital elements (alongside the RINEX navigation message). Receivers
// use almanacs for acquisition planning; this repository uses them as a
// second on-disk representation of the simulated constellation.
//
// The format is the textual one published by the U.S. Coast Guard
// Navigation Center: one "******** Week NNN almanac for PRN-NN ********"
// block per satellite with labeled fields.

// ErrBadAlmanac is returned when a YUMA block cannot be parsed.
var ErrBadAlmanac = errors.New("orbit: malformed YUMA almanac")

// WriteYuma writes the satellites as a YUMA almanac.
func WriteYuma(w io.Writer, sats []Satellite) error {
	bw := bufio.NewWriter(w)
	for _, s := range sats {
		fmt.Fprintf(bw, "******** Week %4d almanac for PRN-%02d ********\n", 0, s.PRN)
		fmt.Fprintf(bw, "ID:                         %02d\n", s.PRN)
		fmt.Fprintf(bw, "Health:                     000\n")
		fmt.Fprintf(bw, "Eccentricity:               %.10E\n", s.Orbit.Eccentricity)
		fmt.Fprintf(bw, "Time of Applicability(s):   %.4f\n", s.Orbit.Toe)
		fmt.Fprintf(bw, "Orbital Inclination(rad):   %.10E\n", s.Orbit.Inclination)
		fmt.Fprintf(bw, "Rate of Right Ascen(r/s):   %.10E\n", s.Orbit.RAANRate)
		fmt.Fprintf(bw, "SQRT(A)  (m 1/2):           %.6f\n", math.Sqrt(s.Orbit.SemiMajorAxis))
		fmt.Fprintf(bw, "Right Ascen at Week(rad):   %.10E\n", s.Orbit.RAAN)
		fmt.Fprintf(bw, "Argument of Perigee(rad):   %.9f\n", s.Orbit.ArgPerigee)
		fmt.Fprintf(bw, "Mean Anom(rad):             %.10E\n", s.Orbit.MeanAnomaly)
		fmt.Fprintf(bw, "Af0(s):                     %.10E\n", s.ClockAF0)
		fmt.Fprintf(bw, "Af1(s/s):                   %.10E\n", s.ClockAF1)
		fmt.Fprintf(bw, "week:                       0\n")
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("orbit: flush yuma: %w", err)
	}
	return nil
}

// ReadYuma parses a YUMA almanac written by WriteYuma (or downloaded from
// the Navigation Center; unknown labels are ignored).
func ReadYuma(r io.Reader) ([]Satellite, error) {
	sc := bufio.NewScanner(r)
	var sats []Satellite
	var cur *Satellite
	flush := func() {
		if cur != nil {
			sats = append(sats, *cur)
			cur = nil
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "****") {
			flush()
			cur = &Satellite{}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("orbit: field outside almanac block: %q: %w", line, ErrBadAlmanac)
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("orbit: unlabeled line %q: %w", line, ErrBadAlmanac)
		}
		label := strings.TrimSpace(line[:colon])
		value := strings.TrimSpace(line[colon+1:])
		if err := applyYumaField(cur, label, value); err != nil {
			return nil, err
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("orbit: scan yuma: %w", err)
	}
	return sats, nil
}

// applyYumaField assigns one labeled value.
func applyYumaField(s *Satellite, label, value string) error {
	parse := func() (float64, error) {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return 0, fmt.Errorf("orbit: field %q value %q: %w", label, value, ErrBadAlmanac)
		}
		return v, nil
	}
	var err error
	var v float64
	switch label {
	case "ID":
		id, cerr := strconv.Atoi(value)
		if cerr != nil {
			return fmt.Errorf("orbit: ID %q: %w", value, ErrBadAlmanac)
		}
		s.PRN = id
	case "Eccentricity":
		if v, err = parse(); err == nil {
			s.Orbit.Eccentricity = v
		}
	case "Time of Applicability(s)":
		if v, err = parse(); err == nil {
			s.Orbit.Toe = v
		}
	case "Orbital Inclination(rad)":
		if v, err = parse(); err == nil {
			s.Orbit.Inclination = v
		}
	case "Rate of Right Ascen(r/s)":
		if v, err = parse(); err == nil {
			s.Orbit.RAANRate = v
		}
	case "SQRT(A)  (m 1/2)":
		if v, err = parse(); err == nil {
			s.Orbit.SemiMajorAxis = v * v
		}
	case "Right Ascen at Week(rad)":
		if v, err = parse(); err == nil {
			s.Orbit.RAAN = v
		}
	case "Argument of Perigee(rad)":
		if v, err = parse(); err == nil {
			s.Orbit.ArgPerigee = v
		}
	case "Mean Anom(rad)":
		if v, err = parse(); err == nil {
			s.Orbit.MeanAnomaly = v
		}
	case "Af0(s)":
		if v, err = parse(); err == nil {
			s.ClockAF0 = v
		}
	case "Af1(s/s)":
		if v, err = parse(); err == nil {
			s.ClockAF1 = v
		}
	default:
		// Health, week, unknown extensions: ignored.
		return nil
	}
	return err
}
