// Package orbit implements GPS satellite orbital mechanics: Keplerian
// elements, a Kepler-equation solver, IS-GPS-200-style propagation to ECEF
// coordinates, and a default 31-satellite constellation matching the one
// in operation when the paper's data was collected (footnote 2: "In March
// 2008, there were 31 active satellites").
package orbit

import (
	"errors"
	"fmt"
	"math"

	"gpsdl/internal/geo"
)

// ErrKeplerDiverged is returned when the Kepler-equation iteration fails to
// converge (only possible for invalid eccentricities).
var ErrKeplerDiverged = errors.New("orbit: Kepler equation iteration did not converge")

// Nominal GPS constellation parameters.
const (
	// NominalSemiMajorAxis is the GPS orbit semi-major axis in meters
	// (≈26 560 km, a 11 h 58 m period).
	NominalSemiMajorAxis = 2.656175e7
	// NominalInclination is the GPS orbital inclination (55°) in radians.
	NominalInclination = 55 * math.Pi / 180
	// OrbitalPlanes is the number of GPS orbital planes (Section 3.1 of
	// the paper: "6 circular orbital planes").
	OrbitalPlanes = 6
	// DefaultSatCount matches the active constellation of the paper's
	// data-collection era.
	DefaultSatCount = 31
)

// Elements is a set of Keplerian orbital elements relative to a reference
// epoch Toe (seconds). Angles are radians; SemiMajorAxis is meters.
type Elements struct {
	SemiMajorAxis float64 // a
	Eccentricity  float64 // e, in [0, 1)
	Inclination   float64 // i
	RAAN          float64 // Ω₀, right ascension of ascending node at Toe
	RAANRate      float64 // Ω̇, rad/s (nodal precession)
	ArgPerigee    float64 // ω
	MeanAnomaly   float64 // M₀ at Toe
	Toe           float64 // reference epoch, seconds
}

// MeanMotion returns n = sqrt(GM/a³) in rad/s.
func (e Elements) MeanMotion() float64 {
	return math.Sqrt(geo.GM / (e.SemiMajorAxis * e.SemiMajorAxis * e.SemiMajorAxis))
}

// Period returns the orbital period in seconds.
func (e Elements) Period() float64 { return 2 * math.Pi / e.MeanMotion() }

// SolveKepler solves Kepler's equation E − e·sin(E) = M for the eccentric
// anomaly E using Newton's method. M may be any real; e must be in [0, 1).
func SolveKepler(m, ecc float64) (float64, error) {
	if ecc < 0 || ecc >= 1 {
		return 0, fmt.Errorf("orbit: eccentricity %v out of range [0,1): %w", ecc, ErrKeplerDiverged)
	}
	// Normalize M to [-π, π] for a good starting point.
	m = math.Mod(m, 2*math.Pi)
	if m > math.Pi {
		m -= 2 * math.Pi
	} else if m < -math.Pi {
		m += 2 * math.Pi
	}
	e := m
	if ecc > 0.8 {
		e = math.Pi * math.Copysign(1, m)
	}
	const maxIter = 30
	for i := 0; i < maxIter; i++ {
		f := e - ecc*math.Sin(e) - m
		fp := 1 - ecc*math.Cos(e)
		de := f / fp
		e -= de
		if math.Abs(de) < 1e-14 {
			return e, nil
		}
	}
	return 0, ErrKeplerDiverged
}

// PositionECI returns the satellite position at time t (seconds) in an
// Earth-centered inertial frame aligned with ECEF at t = 0.
func (e Elements) PositionECI(t float64) (geo.ECEF, error) {
	dt := t - e.Toe
	m := e.MeanAnomaly + e.MeanMotion()*dt
	ecc := e.Eccentricity
	ea, err := SolveKepler(m, ecc)
	if err != nil {
		return geo.ECEF{}, err
	}
	sinE, cosE := math.Sincos(ea)
	// True anomaly.
	nu := math.Atan2(math.Sqrt(1-ecc*ecc)*sinE, cosE-ecc)
	// Argument of latitude and orbital radius.
	phi := nu + e.ArgPerigee
	r := e.SemiMajorAxis * (1 - ecc*cosE)
	sinPhi, cosPhi := math.Sincos(phi)
	xo, yo := r*cosPhi, r*sinPhi
	// Node at time t (inertial: no Earth-rotation term).
	omega := e.RAAN + e.RAANRate*dt
	sinO, cosO := math.Sincos(omega)
	sinI, cosI := math.Sincos(e.Inclination)
	return geo.ECEF{
		X: xo*cosO - yo*cosI*sinO,
		Y: xo*sinO + yo*cosI*cosO,
		Z: yo * sinI,
	}, nil
}

// PositionECEF returns the satellite position at time t in the rotating
// ECEF frame (the frame broadcast ephemerides use), by rotating the
// inertial position through the Earth rotation accumulated since t = 0.
func (e Elements) PositionECEF(t float64) (geo.ECEF, error) {
	p, err := e.PositionECI(t)
	if err != nil {
		return geo.ECEF{}, err
	}
	return geo.RotateEarth(p, t), nil
}

// VelocityECEF returns the ECEF velocity at time t via a central
// difference; accuracy ≈1e-4 m/s, ample for Doppler-free positioning.
func (e Elements) VelocityECEF(t float64) (geo.ECEF, error) {
	const h = 0.5 // seconds
	p1, err := e.PositionECEF(t - h)
	if err != nil {
		return geo.ECEF{}, err
	}
	p2, err := e.PositionECEF(t + h)
	if err != nil {
		return geo.ECEF{}, err
	}
	return p2.Sub(p1).Scale(1 / (2 * h)), nil
}

// Satellite is one space-segment vehicle: a PRN identifier, its orbit, and
// its broadcast clock model (satellite clocks are high-grade atomic
// standards; af0/af1 are the usual polynomial coefficients).
type Satellite struct {
	PRN      int
	Orbit    Elements
	ClockAF0 float64 // clock bias at Toe, seconds
	ClockAF1 float64 // clock drift, s/s
}

// ClockError returns the satellite clock error at time t in seconds.
func (s Satellite) ClockError(t float64) float64 {
	return s.ClockAF0 + s.ClockAF1*(t-s.Orbit.Toe)
}

// Constellation is a set of satellites.
type Constellation struct {
	sats []Satellite
}

// NewConstellation builds a constellation from explicit satellites.
func NewConstellation(sats []Satellite) *Constellation {
	owned := make([]Satellite, len(sats))
	copy(owned, sats)
	return &Constellation{sats: owned}
}

// DefaultConstellation returns a 31-satellite GPS constellation in 6
// planes: RAANs spaced 60° apart, slots phased evenly within each plane
// with a small inter-plane stagger, near-circular orbits. Per-satellite
// clock coefficients are small deterministic offsets so satellite clock
// error is exercised without randomness.
func DefaultConstellation() *Constellation {
	// Plane occupancy: 6 satellites in plane 0, 5 in each of planes 1-5.
	perPlane := [OrbitalPlanes]int{6, 5, 5, 5, 5, 5}
	sats := make([]Satellite, 0, DefaultSatCount)
	idx := 0
	for plane := 0; plane < OrbitalPlanes; plane++ {
		raan := float64(plane) * 2 * math.Pi / OrbitalPlanes
		for slot := 0; slot < perPlane[plane]; slot++ {
			// Even spacing within the plane; stagger planes so slots in
			// adjacent planes do not align in argument of latitude.
			meanAnom := float64(slot)*2*math.Pi/float64(perPlane[plane]) +
				float64(plane)*(2*math.Pi/14.4)
			sats = append(sats, Satellite{
				PRN: idx + 1,
				Orbit: Elements{
					SemiMajorAxis: NominalSemiMajorAxis,
					Eccentricity:  0.005 + 0.003*float64(idx%5)/5, // realistic 0.005-0.008
					Inclination:   NominalInclination,
					RAAN:          raan,
					RAANRate:      -8.0e-9, // typical nodal precession rad/s
					ArgPerigee:    float64(idx%7) * 2 * math.Pi / 7,
					MeanAnomaly:   meanAnom,
					Toe:           0,
				},
				// ±0.1 ms bias, tiny drift — typical broadcast-clock scale.
				ClockAF0: (float64(idx%9) - 4) * 2.5e-5,
				ClockAF1: (float64(idx%5) - 2) * 1e-12,
			})
			idx++
		}
	}
	return &Constellation{sats: sats}
}

// Satellites returns a copy of the satellite list.
func (c *Constellation) Satellites() []Satellite {
	out := make([]Satellite, len(c.sats))
	copy(out, c.sats)
	return out
}

// Len returns the number of satellites.
func (c *Constellation) Len() int { return len(c.sats) }

// InView is one visible satellite together with its look angles.
type InView struct {
	Sat       Satellite
	Pos       geo.ECEF // ECEF position at time t
	Elevation float64  // radians
	Azimuth   float64  // radians
}

// Visible returns the satellites above elevMask (radians) as seen from the
// receiver at time t, ordered by descending elevation.
func (c *Constellation) Visible(receiver geo.ECEF, t, elevMask float64) ([]InView, error) {
	out := make([]InView, 0, len(c.sats))
	for _, s := range c.sats {
		pos, err := s.Orbit.PositionECEF(t)
		if err != nil {
			return nil, fmt.Errorf("orbit: PRN %d at t=%v: %w", s.PRN, t, err)
		}
		elev, azim := geo.ElevationAzimuth(receiver, pos)
		if elev < elevMask {
			continue
		}
		out = append(out, InView{Sat: s, Pos: pos, Elevation: elev, Azimuth: azim})
	}
	// Insertion sort by descending elevation (lists are ~10 long).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Elevation > out[j-1].Elevation; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
